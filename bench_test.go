package parvqmc

// One benchmark per table and figure of the paper's evaluation section,
// exercising the code path that regenerates it (see DESIGN.md's index and
// cmd/experiments for the full-scale runners). Benchmarks use reduced
// problem sizes so `go test -bench=.` completes in minutes on a laptop; the
// comparisons (MADE+AUTO vs RBM+MCMC per-iteration cost, scaling curves)
// preserve the paper's shape.

import (
	"io"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/cluster"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/dist"
	"github.com/vqmc-scale/parvqmc/internal/experiments"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// --- Table 1: training-time comparison, one iteration per op ---

func benchIterTIM(b *testing.B, model string) {
	b.Helper()
	const n = 50
	r := rng.New(1)
	tim := hamiltonian.RandomTIM(n, r)
	var tr *core.Trainer
	if model == "made" {
		m := nn.NewMADE(n, device.HiddenMADE(n), r.Split())
		smp := sampler.NewAutoMADE(m, true, 0, r.Split())
		tr = core.New(tim, m, smp, optimizer.NewAdam(0.01), core.Config{BatchSize: 128})
	} else {
		m := nn.NewRBM(n, n, r.Split())
		smp := sampler.NewMCMC(m, sampler.MCMCConfig{}, r.Split())
		tr = core.New(tim, m, smp, optimizer.NewAdam(0.01), core.Config{BatchSize: 128})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}

// BenchmarkTable1MADEAutoIteration measures one MADE&AUTO VQMC iteration on
// TIM n=50 — the fast row of Table 1.
func BenchmarkTable1MADEAutoIteration(b *testing.B) { benchIterTIM(b, "made") }

// BenchmarkTable1RBMMCMCIteration measures one RBM&MCMC iteration with the
// paper's burn-in k=3n+100 — the slow row of Table 1.
func BenchmarkTable1RBMMCMCIteration(b *testing.B) { benchIterTIM(b, "rbm") }

// --- Figure 2: training-curve generation ---

// BenchmarkFigure2TrainingCurve measures a short MADE&AUTO training run
// with per-iteration statistics recording, the workload behind Figure 2.
func BenchmarkFigure2TrainingCurve(b *testing.B) {
	p := TIM(16, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Train(p, Options{
			Hidden: 24, BatchSize: 64, Iterations: 20, EvalBatch: 64,
			Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: converged objective values ---

// BenchmarkTable2MaxCutMADE measures a full small Max-Cut training run with
// the paper's default MADE&AUTO&Adam configuration.
func BenchmarkTable2MaxCutMADE(b *testing.B) {
	p := MaxCut(20, 2)
	for i := 0; i < b.N; i++ {
		if _, err := Train(p, Options{
			BatchSize: 128, Iterations: 50, EvalBatch: 128, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ClassicalGW measures the Goemans-Williamson baseline.
func BenchmarkTable2ClassicalGW(b *testing.B) {
	g := MaxCut(50, 3)
	for i := 0; i < b.N; i++ {
		if _, err := SolveMaxCutClassical(g, "gw", uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ClassicalBM measures the Burer-Monteiro + RTR baseline.
func BenchmarkTable2ClassicalBM(b *testing.B) {
	g := MaxCut(50, 4)
	for i := 0; i < b.N; i++ {
		if _, err := SolveMaxCutClassical(g, "bm", uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SRStep measures a stochastic-reconfiguration step (the
// SGD+SR rows), dominated by the matrix-free CG Fisher solve.
func BenchmarkTable2SRStep(b *testing.B) {
	const n = 30
	r := rng.New(5)
	tim := hamiltonian.RandomTIM(n, r)
	m := nn.NewMADE(n, 20, r.Split())
	smp := sampler.NewAutoMADE(m, true, 0, r.Split())
	tr := core.New(tim, m, smp, optimizer.NewSGD(0.1),
		core.Config{BatchSize: 64, SR: optimizer.NewSR(1e-3)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}

// --- Figure 3 / Table 7: weak-scaling model ---

// BenchmarkFigure3WeakScalingSweep evaluates the full modeled weak-scaling
// sweep (4 dimensions x 9 GPU configurations).
func BenchmarkFigure3WeakScalingSweep(b *testing.B) {
	cfgs := cluster.PaperConfigs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1000, 2000, 5000, 10000} {
			mbs := device.V100().MaxBatchTIM(n)
			pts := cluster.WeakScaling(cfgs, n, mbs, 300)
			if len(pts) != len(cfgs) {
				b.Fatal("sweep incomplete")
			}
		}
	}
}

// BenchmarkTable7MemoryLadder evaluates the memory-saturating batch solver
// across all paper dimensions.
func BenchmarkTable7MemoryLadder(b *testing.B) {
	dev := device.V100()
	dims := []int{20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	for i := 0; i < b.N; i++ {
		for _, n := range dims {
			if dev.MaxBatchTIM(n) < 1 {
				b.Fatal("ladder broke")
			}
		}
	}
}

// --- Figure 4 / Table 6: distributed training ---

// BenchmarkFigure4DistributedStep measures one synchronous data-parallel
// iteration with 4 goroutine devices and ring all-reduce (mbs=4, the
// Figure 4 protocol).
func BenchmarkFigure4DistributedStep(b *testing.B) {
	const n, L = 20, 4
	tim := hamiltonian.RandomTIM(n, rng.New(1))
	streams := rng.New(2).SplitN(L)
	reps := make([]dist.Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, 45, rng.New(99))
		reps[r] = dist.Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:   optimizer.NewAdam(0.01),
		}
	}
	tr, err := dist.New(tim, reps, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(i)
	}
}

// BenchmarkDistSR measures one distributed stochastic-reconfiguration step
// (4 replicas x 2 workers): sampling, the two pre-solve collectives, and a
// matrix-free Fisher CG solve with one packed ring all-reduce per
// iteration. Before timing it audits the traffic accounting: the chunked
// ring moves exactly 2(p-1)/p of each payload per rank, i.e. 2(p-1)*m
// doubles per collective summed over ranks, across the 2-float energy
// collective, the 2d-float gradient|obar collective, and one (d+1)-float
// Fisher collective per CG ApplyDot.
func BenchmarkDistSR(b *testing.B) {
	const n, L, mbs, workers = 16, 4, 8, 2
	tim := hamiltonian.RandomTIM(n, rng.New(1))
	streams := rng.New(2).SplitN(L)
	reps := make([]dist.Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, 32, rng.New(99))
		reps[r] = dist.Replica{
			Model:   m,
			Smp:     sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:     optimizer.NewSGD(0.1),
			SR:      optimizer.NewSR(1e-3),
			Workers: workers,
		}
	}
	tr, err := dist.New(tim, reps, mbs)
	if err != nil {
		b.Fatal(err)
	}
	const audit = 3
	d := tr.Reps[0].Model.NumParams()
	tr.Train(audit, nil)
	bytes, _ := tr.Traffic()
	applies := tr.FisherApplies()
	if applies < audit {
		b.Fatalf("only %d Fisher collectives after %d SR steps", applies, audit)
	}
	want := 8 * 2 * int64(L-1) * (audit*int64(2+2*d) + applies*int64(d+1))
	if bytes != want {
		b.Fatalf("ring traffic %d bytes, analytic 2(p-1)/p count gives %d (d=%d, applies=%d)",
			bytes, want, d, applies)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(i)
	}
}

// BenchmarkTable6ModeledTimes evaluates the modeled time table across all
// configurations and dimensions.
func BenchmarkTable6ModeledTimes(b *testing.B) {
	dims := []int{20, 100, 1000, 10000}
	for i := 0; i < b.N; i++ {
		for _, c := range cluster.PaperConfigs() {
			topo := cluster.Default(c[0], c[1])
			for _, n := range dims {
				_ = topo.TrainingTime(n, device.HiddenMADE(n), 4, n, 300)
			}
		}
	}
}

// --- Table 3: latent-size ablation ---

// BenchmarkTable3LatentSmall measures training with the small latent
// (ln n)^2 against BenchmarkTable3LatentLarge's 5n, the endpoints of the
// Table 3 sweep.
func BenchmarkTable3LatentSmall(b *testing.B) { benchLatent(b, 9) }   // (ln 20)^2 ~ 9
func BenchmarkTable3LatentLarge(b *testing.B) { benchLatent(b, 100) } // 5n at n=20

func benchLatent(b *testing.B, h int) {
	b.Helper()
	p := MaxCut(20, 6)
	for i := 0; i < b.N; i++ {
		if _, err := Train(p, Options{
			Hidden: h, BatchSize: 64, Iterations: 20, EvalBatch: 64, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 4: MCMC sampling schemes ---

// BenchmarkTable4BurnInShort and ...Long measure one MCMC batch under
// Scheme 1's burn-in extremes (k=n vs k=10n).
func BenchmarkTable4BurnInShort(b *testing.B) { benchMCMCScheme(b, 50, 1) }
func BenchmarkTable4BurnInLong(b *testing.B)  { benchMCMCScheme(b, 500, 1) }

// BenchmarkTable4Thinning10 measures Scheme 2's x10 thinning.
func BenchmarkTable4Thinning10(b *testing.B) { benchMCMCScheme(b, -1, 10) }

func benchMCMCScheme(b *testing.B, burnIn, thin int) {
	b.Helper()
	const n = 50
	r := rng.New(7)
	m := nn.NewRBM(n, n, r.Split())
	mc := sampler.NewMCMC(m, sampler.MCMCConfig{Chains: 2, BurnIn: burnIn, Thin: thin}, r.Split())
	batch := sampler.NewBatch(128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Sample(batch)
	}
}

// --- Table 5: hitting time ---

// BenchmarkTable5HittingTime measures a TrainUntil run to an easy target.
func BenchmarkTable5HittingTime(b *testing.B) {
	p := MaxCut(16, 8)
	mcH := p.ham.(*hamiltonian.MaxCut)
	target := 0.52 * p.TotalEdgeWeight()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i + 1))
		m := nn.NewMADE(16, 16, r.Split())
		smp := sampler.NewAutoMADE(m, true, 0, r.Split())
		tr := core.New(mcH, m, smp, optimizer.NewAdam(0.05), core.Config{BatchSize: 64})
		tr.TrainUntil(target, mcH.CutFromEnergy, 200, 128)
	}
}

// --- full experiment smoke benchmarks ---

// BenchmarkExperimentHarness runs the complete smoke-scale experiment suite
// (all 10 artifacts), the end-to-end cost of regenerating the paper.
func BenchmarkExperimentHarness(b *testing.B) {
	p := experiments.SmokePreset()
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if err := experiments.Run(e.ID, p, io.Discard, ""); err != nil {
				b.Fatal(err)
			}
		}
	}
}
