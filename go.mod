module github.com/vqmc-scale/parvqmc

go 1.24
