package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(19)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// Parent and child streams should not be correlated: crude check that
	// they do not produce identical runs.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child matched %d times", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	r := New(29)
	kids := r.SplitN(8)
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("two children started with the same output")
		}
		seen[v] = true
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(31).Split()
	b := New(31).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := make([]int, 50)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBitBalance(t *testing.T) {
	r := New(41)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ones += r.Bit()
	}
	if math.Abs(float64(ones)-n/2) > 3*math.Sqrt(n/4) {
		t.Errorf("ones = %d of %d, biased", ones, n)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(43)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestUniformRangeProperty(t *testing.T) {
	r := New(47)
	f := func(a, b float64) bool {
		// Map arbitrary inputs into a well-conditioned interval; the
		// affine transform is only exact when hi-lo does not overflow.
		lo := math.Mod(math.Abs(a), 1e6) * -1
		hi := math.Mod(math.Abs(b), 1e6)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			lo, hi = -1, 1
		}
		if !(lo < hi) {
			lo, hi = -1, 1
		}
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFillHelpers(t *testing.T) {
	r := New(53)
	bits := make([]int, 1000)
	r.FillBits(bits)
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("FillBits produced %d", b)
		}
	}
	u := make([]float64, 1000)
	r.FillUniform(u, 2, 3)
	for _, v := range u {
		if v < 2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	nrm := make([]float64, 1000)
	r.FillNorm(nrm, 0.5)
	var s float64
	for _, v := range nrm {
		s += v * v
	}
	if s/1000 > 0.5 || s/1000 < 0.15 {
		t.Errorf("FillNorm(sigma=0.5) second moment %v, want ~0.25", s/1000)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 13; i++ {
		r.Uint64()
	}
	r.Norm() // leave a Box-Muller second variate pending in the cache
	snap := r.State()
	var ref [64]float64
	for i := range ref {
		switch i % 3 {
		case 0:
			ref[i] = r.Float64()
		case 1:
			ref[i] = r.Norm()
		default:
			ref[i] = float64(r.Intn(1000))
		}
	}
	r.SetState(snap)
	for i := range ref {
		var got float64
		switch i % 3 {
		case 0:
			got = r.Float64()
		case 1:
			got = r.Norm()
		default:
			got = float64(r.Intn(1000))
		}
		if got != ref[i] {
			t.Fatalf("draw %d after restore: %v, want %v", i, got, ref[i])
		}
	}
}

func TestStateRestoreAcrossGenerators(t *testing.T) {
	a := New(7)
	for i := 0; i < 5; i++ {
		a.Uint64()
	}
	b := New(12345) // unrelated stream position
	b.SetState(a.State())
	for i := 0; i < 32; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: transplanted state diverged (%d vs %d)", i, av, bv)
		}
	}
}
