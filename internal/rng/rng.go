// Package rng provides a fast, splittable pseudo-random number generator for
// deterministic parallel simulation.
//
// The generator is xoshiro256** seeded through SplitMix64. Splitting derives a
// statistically independent child stream from a parent, which lets every
// device, Markov chain and worker own a private generator while the whole run
// stays reproducible from a single root seed.
package rng

import "math"

// Rand is a xoshiro256** generator. It is not safe for concurrent use; split
// one child per goroutine instead of sharing.
type Rand struct {
	s0, s1, s2, s3 uint64
	// cached second normal variate from Box-Muller
	normCached bool
	normVal    float64
}

// splitMix64 advances the state and returns the next SplitMix64 output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via SplitMix64, following the
// xoshiro authors' recommendation for filling the initial state.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	r.s0 = splitMix64(&st)
	r.s1 = splitMix64(&st)
	r.s2 = splitMix64(&st)
	r.s3 = splitMix64(&st)
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a child generator whose stream is independent of the parent's
// subsequent outputs. The child is seeded by hashing fresh parent output
// through SplitMix64, so parent and child may be used concurrently afterwards.
func (r *Rand) Split() *Rand {
	seed := r.Uint64()
	return New(seed ^ 0xa3ec647659359acd)
}

// SplitN returns n independent child generators.
func (r *Rand) SplitN(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform variate in [0,1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform variate in [lo,hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }

// Bit returns 0 or 1 with equal probability.
func (r *Rand) Bit() int { return int(r.Uint64() >> 63) }

// Norm returns a standard normal variate via Box-Muller with caching.
func (r *Rand) Norm() float64 {
	if r.normCached {
		r.normCached = false
		return r.normVal
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.normVal = v * f
	r.normCached = true
	return u * f
}

// Perm fills dst with a uniform random permutation of 0..len(dst)-1.
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// FillBits fills dst with independent uniform bits (0 or 1).
func (r *Rand) FillBits(dst []int) {
	for i := range dst {
		dst[i] = r.Bit()
	}
}

// FillUniform fills dst with independent uniform variates in [lo,hi).
func (r *Rand) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}

// FillNorm fills dst with independent N(0, sigma^2) variates.
func (r *Rand) FillNorm(dst []float64, sigma float64) {
	for i := range dst {
		dst[i] = sigma * r.Norm()
	}
}

// State is a snapshot of a generator's exact stream position: the four
// xoshiro256** state words plus the Box-Muller cache. Capturing and later
// restoring it replays the stream bit-identically, which is what lets a
// recovered replica resume a failed rank's random-number stream at the
// precise draw where a checkpoint was taken.
type State struct {
	S [4]uint64
	// Box-Muller cache: whether a second normal variate is pending, and its
	// value. Without these, a restore placed between the two halves of a
	// Box-Muller pair would desynchronize every subsequent normal draw.
	NormCached bool
	NormVal    float64
}

// State captures the generator's current stream position.
func (r *Rand) State() State {
	return State{
		S:          [4]uint64{r.s0, r.s1, r.s2, r.s3},
		NormCached: r.normCached,
		NormVal:    r.normVal,
	}
}

// SetState restores a previously captured stream position; subsequent draws
// are bit-identical to those after the capture.
func (r *Rand) SetState(s State) {
	r.s0, r.s1, r.s2, r.s3 = s.S[0], s.S[1], s.S[2], s.S[3]
	r.normCached = s.NormCached
	r.normVal = s.NormVal
}
