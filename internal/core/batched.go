package core

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// EvalMode selects between the batched GEMM evaluation path and the
// per-sample scalar path for local energies and gradients.
type EvalMode int

const (
	// EvalAuto (the default) uses the batched path whenever the model
	// implements nn.BatchEvaluatorBuilder, falling back to scalar
	// otherwise. The two paths are bitwise interchangeable.
	EvalAuto EvalMode = iota
	// EvalScalar forces the per-sample path (the A/B baseline).
	EvalScalar
	// EvalFullFlip selects the model's full-recompute flip oracle (every
	// flip row re-evaluated from scratch instead of resuming from tail-only
	// snapshots) when the model implements nn.FullFlipBatchEvaluatorBuilder,
	// behaving like EvalAuto otherwise. The oracle is bitwise identical to
	// the tail-only evaluator — this mode exists so the differential
	// reference is a first-class cell in the conformance matrix (serial and
	// distributed) rather than a test-local construction.
	EvalFullFlip
)

// configs reinterprets a sampler batch as the nn-side view, zero-copy.
func configs(b *sampler.Batch) nn.ConfigBatch {
	return nn.ConfigBatch{N: b.N, Sites: b.Sites, Bits: b.Bits}
}

// BatchedEval bundles a model's nn.BatchEvaluator with the reusable flip
// and base log-psi buffers the energy phase needs, so the steady-state
// training loop allocates nothing. Values produced through it are bitwise
// identical to the scalar LocalEnergies/FillOws paths (see the
// nn.BatchEvaluator contract); it is a pure throughput knob.
type BatchedEval struct {
	be   nn.BatchEvaluator
	bits []int
	amps []float64
	flip []float64
}

// NewBatchedEval returns a batched evaluation wrapper for the model, or nil
// if the model has no batched path (mode EvalScalar also returns nil —
// callers treat nil as "use the scalar path"). workers bounds the internal
// fan-out and never affects a produced value.
func NewBatchedEval(model nn.Wavefunction, mode EvalMode, workers int) *BatchedEval {
	if mode == EvalScalar {
		return nil
	}
	if mode == EvalFullFlip {
		if fb, ok := model.(nn.FullFlipBatchEvaluatorBuilder); ok {
			return &BatchedEval{be: fb.NewFullFlipBatchEvaluator(workers)}
		}
		// No oracle (e.g. the RBM, whose incremental delta IS the only
		// convention): behave like EvalAuto.
	}
	bb, ok := model.(nn.BatchEvaluatorBuilder)
	if !ok {
		return nil
	}
	return &BatchedEval{be: bb.NewBatchEvaluator(workers)}
}

// NewBatchedEvalWith wraps an explicitly constructed nn.BatchEvaluator —
// the entry point benchmarks use to drive reference evaluators (e.g.
// MADE's full-flip PR 4 baseline) through the same energy reduction.
func NewBatchedEvalWith(be nn.BatchEvaluator) *BatchedEval {
	return &BatchedEval{be: be}
}

// Evaluator exposes the underlying nn.BatchEvaluator (benchmarks and the
// gradient path use it directly).
func (e *BatchedEval) Evaluator() nn.BatchEvaluator { return e.be }

// LocalEnergies is the batched counterpart of the package-level
// LocalEnergies: one FlipLogPsiBatch call evaluates the whole B x (F+1)
// flip super-batch through blocked GEMMs, then the per-sample reduction
// accumulates the flip terms in the same order as the scalar loop. Outputs
// are bitwise identical to LocalEnergies on the same batch.
func (e *BatchedEval) LocalEnergies(h hamiltonian.Hamiltonian, b *sampler.Batch, workers int, out []float64) {
	flips := h.FlipTerms()
	if len(flips) == 0 {
		parallel.ForGrain(b.N, workers, diagGrainRows, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = h.Diagonal(b.Row(k))
			}
		})
		return
	}
	nf := len(flips)
	if cap(e.bits) < nf {
		e.bits = make([]int, nf)
		e.amps = make([]float64, nf)
	}
	bits, amps := e.bits[:nf], e.amps[:nf]
	for f, ft := range flips {
		bits[f], amps[f] = ft.Bit, ft.Amp
	}
	if cap(e.flip) < b.N*nf {
		e.flip = make([]float64, b.N*nf)
	}
	delta := e.flip[:b.N*nf]
	// nil base: the energy reduction exponentiates the deltas directly, so
	// the evaluator may skip base-only work (the RBM's ln-cosh fold).
	e.be.FlipLogPsiBatch(configs(b), bits, nil, delta)
	// Per row the reduction is nf exponentials — cheap next to the GEMMs
	// above, so small batches stay inline instead of paying dispatch.
	parallel.ForGrain(b.N, workers, diagGrainRows, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			l := h.Diagonal(b.Row(k))
			row := delta[k*nf : (k+1)*nf]
			for f := range row {
				// The evaluator emits the flip DELTAS under the model's own
				// FlipCache convention, so exponentiating them reproduces the
				// scalar loop's exp(cache.Delta(bit)) bit for bit.
				l += amps[f] * math.Exp(row[f])
			}
			out[k] = l
		}
	})
}

// LogPsi fills out[k] = log|psi(row k)| through the batched GEMM path —
// bitwise identical to per-row scalar model.LogPsi calls by the
// nn.BatchEvaluator contract. It is the shared amplitude dispatch the
// serving layer folds coalesced cross-request batches through: because
// every row's value is pinned to the scalar LogPsi of that row alone, the
// result for a given configuration is invariant to which other rows share
// the batch, which is what makes request coalescing invisible in served
// values. len(out) must be b.N.
func (e *BatchedEval) LogPsi(b *sampler.Batch, out []float64) {
	e.be.LogPsiBatch(configs(b), out)
}

// FillOws is the batched counterpart of FillOws: per-sample log-derivative
// rows via one fused forward over the batch plus the shared analytic
// backward. Bitwise identical to the scalar FillOws.
func (e *BatchedEval) FillOws(b *sampler.Batch, ows *tensor.Batch) {
	e.be.GradLogPsiBatch(configs(b), ows)
}

// LocalEnergiesBatched evaluates local energies through the model's batched
// evaluator with a freshly built wrapper — the convenience entry point for
// tests and benchmarks; training loops hold a BatchedEval instead.
func LocalEnergiesBatched(h hamiltonian.Hamiltonian, model nn.Wavefunction, b *sampler.Batch, workers int, out []float64) {
	e := NewBatchedEval(model, EvalAuto, workers)
	if e == nil {
		panic("core: model has no batched evaluation path")
	}
	e.LocalEnergies(h, b, workers, out)
}

// diagGrainRows is the minimum rows per parallel range for the cheap
// per-row loops (diagonal-only energies, flip-delta exponentiation): below
// it, dispatching a worker costs more than its rows. Grain affects only how
// finely rows are partitioned, never per-row arithmetic, so results stay
// bitwise identical at every worker count.
const diagGrainRows = 64

// GradBlockSize is the fixed granule of the weighted row-sum reduction: rows
// are reduced into per-block partials (each block owned by exactly one
// worker, accumulated in ascending row order) and the partials are folded
// serially in ascending block order. The block boundary depends only on
// the row index — never on the worker count — so the reduced vector is
// bitwise invariant to the worker count, the property the distributed
// trainer's replica x worker bit-identity rests on.
const GradBlockSize = 32

// GradBlocks returns the partial count AddWeightedRows needs for n rows
// (callers size the parts workspace once with it).
func GradBlocks(n int) int { return (n + GradBlockSize - 1) / GradBlockSize }

// AddWeightedRows accumulates dst += sum_k w[k] * rows.Sample(k) using the
// fixed-block scheme above, fanning block partials across up to workers
// goroutines. parts must be a GradBlocks(rows.N) x rows.Dim workspace; its
// contents are overwritten. dst is NOT zeroed first.
func AddWeightedRows(dst tensor.Vector, rows *tensor.Batch, w []float64, parts *tensor.Batch, workers int) {
	nb := GradBlocks(rows.N)
	if parts.N < nb || parts.Dim != rows.Dim {
		panic("core: AddWeightedRows parts workspace too small")
	}
	parallel.For(nb, workers, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			p := parts.Sample(bi)
			p.Fill(0)
			k1 := (bi + 1) * GradBlockSize
			if k1 > rows.N {
				k1 = rows.N
			}
			for k := bi * GradBlockSize; k < k1; k++ {
				p.AXPY(w[k], rows.Sample(k))
			}
		}
	})
	for bi := 0; bi < nb; bi++ {
		dst.Add(parts.Sample(bi))
	}
}
