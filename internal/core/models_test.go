package core

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/exact"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// TestAllWavefunctionFamiliesSolveTIM is the cross-model integration test:
// every architecture in the library (MADE, NADE, RNN with exact sampling;
// RBM with MCMC) must drive the same small TIM instance close to its exact
// ground energy through the same trainer.
func TestAllWavefunctionFamiliesSolveTIM(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model integration test skipped in -short mode")
	}
	const n = 7
	r := rng.New(101)
	h := hamiltonian.RandomTIM(n, r)
	ex, err := exact.GroundState(h, 0, 102)
	if err != nil {
		t.Fatal(err)
	}

	type setup struct {
		name   string
		model  Model
		smp    sampler.Sampler
		lr     float64
		maxGap float64
	}
	var setups []setup

	made := nn.NewMADE(n, 14, rng.New(1))
	setups = append(setups, setup{"MADE+AUTO", made,
		sampler.NewAutoMADE(made, true, 2, rng.New(2)), 0.05, 0.06})

	nade := nn.NewNADE(n, 14, rng.New(3))
	setups = append(setups, setup{"NADE+AUTO", nade,
		sampler.NewAuto(n, nade.NewIncrementalEvaluator, 2, rng.New(4)), 0.05, 0.06})

	rnn := nn.NewRNN(n, 12, rng.New(5))
	setups = append(setups, setup{"RNN+AUTO", rnn,
		sampler.NewAuto(n, rnn.NewIncrementalEvaluator, 2, rng.New(6)), 0.02, 0.06})

	rbm := nn.NewRBM(n, n, rng.New(7))
	setups = append(setups, setup{"RBM+MCMC", rbm,
		sampler.NewMCMC(rbm, sampler.MCMCConfig{Chains: 2, BurnIn: 200}, rng.New(8)), 0.02, 0.12})

	for _, s := range setups {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tr := New(h, s.model, s.smp, optimizer.NewAdam(s.lr),
				Config{BatchSize: 256, Workers: 2})
			tr.Train(300, nil)
			mean, _ := tr.Evaluate(512)
			gap := (mean - ex.Energy) / math.Abs(ex.Energy)
			if gap > s.maxGap {
				t.Fatalf("%s: energy %v vs exact %v (gap %.3f > %.3f)",
					s.name, mean, ex.Energy, gap, s.maxGap)
			}
			if mean < ex.Energy-0.5 {
				t.Fatalf("%s: energy %v below exact minimum %v", s.name, mean, ex.Energy)
			}
		})
	}
}

// TestLocalEnergiesAgreeAcrossModels: for the same configuration batch, the
// local-energy machinery must match the dense reference for every
// cache-building wavefunction family.
func TestLocalEnergiesAgreeAcrossModels(t *testing.T) {
	const n = 5
	r := rng.New(103)
	h := hamiltonian.RandomTIM(n, r)
	models := []Model{
		nn.NewMADE(n, 6, rng.New(9)),
		nn.NewNADE(n, 6, rng.New(10)),
		nn.NewRNN(n, 6, rng.New(11)),
		nn.NewRBM(n, 6, rng.New(12)),
	}
	b := sampler.NewBatch(8, n)
	for i := range b.Bits {
		b.Bits[i] = r.Bit()
	}
	for _, m := range models {
		out := make([]float64, b.N)
		LocalEnergies(h, m, b, 2, out)
		for k := 0; k < b.N; k++ {
			want := denseLocalEnergy(h, m, b.Row(k))
			if math.Abs(out[k]-want) > 1e-8 {
				t.Fatalf("%T sample %d: %v vs dense %v", m, k, out[k], want)
			}
		}
	}
}
