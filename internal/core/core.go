// Package core implements the paper's primary contribution: the VQMC
// optimization loop. Each iteration samples a batch from the trial state,
// evaluates local energies l(x) = (H psi)(x)/psi(x) through the sparse row
// structure (Eq. 3), forms the covariance-style gradient estimator (Eq. 5),
// optionally preconditions it with stochastic reconfiguration, and applies
// an optimizer step. The loop also tracks the standard deviation of the
// stochastic objective, which vanishes at an exact eigenstate (Eq. 4) and is
// the blue curve of the paper's Figure 2.
package core

import (
	"math"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/stats"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Model is the wavefunction contract the trainer needs: amplitudes,
// gradients and flip ratios.
type Model interface {
	nn.Wavefunction
	nn.CacheBuilder
}

// LocalEnergies fills out[k] with the local energy of batch row k:
// l(x) = H_xx + sum_b H[x,x^b] * psi(x^b)/psi(x). Workers each own a
// FlipCache so TIM's n flip ratios cost O(h) each for the RBM and one
// forward pass each for MADE. For diagonal Hamiltonians (Max-Cut) no
// wavefunction evaluation happens at all.
func LocalEnergies(h hamiltonian.Hamiltonian, model nn.CacheBuilder, b *sampler.Batch, workers int, out []float64) {
	// Materialize any lazy parameter-derived caches on this goroutine
	// before fanning out, so no worker hits a first-use rebuild.
	nn.Prewarm(model)
	flips := h.FlipTerms()
	if len(flips) == 0 {
		// Diagonal-only Hamiltonians do O(n) work per row; the grain keeps
		// tiny per-worker ranges from being dominated by dispatch overhead.
		parallel.ForGrain(b.N, workers, diagGrainRows, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				out[k] = h.Diagonal(b.Row(k))
			}
		})
		return
	}
	parallel.For(b.N, workers, func(lo, hi int) {
		cache := model.NewFlipCache(b.Row(lo))
		for k := lo; k < hi; k++ {
			if k > lo {
				cache.Reset(b.Row(k))
			}
			l := h.Diagonal(b.Row(k))
			for _, ft := range flips {
				l += ft.Amp * math.Exp(cache.Delta(ft.Bit))
			}
			out[k] = l
		}
	})
}

// IterStats summarizes one training iteration.
type IterStats struct {
	Iter int
	// Batch is the number of samples behind this iteration's statistics:
	// the configured batch size serially, the global effective batch
	// (devices x mini-batch) in distributed training — where elastic
	// membership can change it mid-run, and the honest per-iteration record
	// of that change lives here.
	Batch  int
	Energy float64 // batch mean of the local energy (red curve, Fig. 2)
	Std    float64 // batch std-dev of the local energy (blue curve, Fig. 2)
	// SRIters and SRResidual report the stochastic-reconfiguration CG solve
	// of this iteration (zero when SR is disabled): iterations run and the
	// final relative residual.
	SRIters    int
	SRResidual float64
}

// Timings accumulates wall-clock time per phase across iterations.
type Timings struct {
	Sample, Energy, Grad, Update time.Duration
}

// Total returns the summed training time.
func (t Timings) Total() time.Duration { return t.Sample + t.Energy + t.Grad + t.Update }

// Config tunes the trainer. Zero values select the paper's defaults.
type Config struct {
	BatchSize int // training batch size (paper: 1024)
	Workers   int // CPU parallelism; <=0 means GOMAXPROCS
	SR        *optimizer.SR
	// Eval selects the evaluation path: EvalAuto (default) fuses local
	// energies and gradients into blocked GEMMs over the batch dimension
	// when the model supports it; EvalScalar forces the per-sample path.
	// The choice never changes a produced bit.
	Eval EvalMode
}

// Trainer runs the VQMC loop for one (Hamiltonian, model, sampler,
// optimizer) quadruple.
type Trainer struct {
	H     hamiltonian.Hamiltonian
	Model Model
	Smp   sampler.Sampler
	Opt   optimizer.Optimizer

	cfg     Config
	batch   *sampler.Batch
	locals  []float64
	grad    tensor.Vector
	ows     *tensor.Batch // per-sample O_k, allocated only under SR
	evals   []nn.GradEvaluator
	iter    int
	timings Timings
	// Batched evaluation state: bev is non-nil when the model provides a
	// batched path and Config.Eval allows it; wbuf holds the per-sample
	// gradient coefficients, gparts the fixed-block reduction partials,
	// and slabOws the gradient slab for the batched streaming path.
	bev     *BatchedEval
	wbuf    []float64
	gparts  *tensor.Batch
	slabOws *tensor.Batch
	// Evaluation workspace, cached across EvaluateBest calls so TrainUntil
	// (which evaluates after every iteration) allocates nothing per step.
	evalBatch  *sampler.Batch
	evalLocals []float64
}

// New assembles a trainer. BatchSize defaults to 1024.
func New(h hamiltonian.Hamiltonian, model Model, smp sampler.Sampler, opt optimizer.Optimizer, cfg Config) *Trainer {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.MaxWorkers()
	}
	t := &Trainer{H: h, Model: model, Smp: smp, Opt: opt, cfg: cfg}
	t.batch = sampler.NewBatch(cfg.BatchSize, h.N())
	t.locals = make([]float64, cfg.BatchSize)
	t.grad = tensor.NewVector(model.NumParams())
	if cfg.SR != nil {
		t.ows = tensor.NewBatch(cfg.BatchSize, model.NumParams())
	}
	t.evals = make([]nn.GradEvaluator, cfg.Workers)
	for i := range t.evals {
		t.evals[i] = newGradEvaluator(model)
	}
	t.bev = NewBatchedEval(model, cfg.Eval, cfg.Workers)
	t.wbuf = make([]float64, cfg.BatchSize)
	t.gparts = tensor.NewBatch(GradBlocks(cfg.BatchSize), model.NumParams())
	return t
}

func newGradEvaluator(m Model) nn.GradEvaluator {
	if b, ok := m.(nn.GradEvaluatorBuilder); ok {
		return b.NewGradEvaluator()
	}
	return fallbackEvaluator{m}
}

type fallbackEvaluator struct{ m Model }

func (f fallbackEvaluator) GradLogPsi(x []int, g tensor.Vector) { f.m.GradLogPsi(x, g) }
func (f fallbackEvaluator) LogPsi(x []int) float64              { return f.m.LogPsi(x) }

// PrewarmCaches forwards to the wrapped model so FillOws's coordinator-side
// pre-warm reaches models with lazy parameter-derived caches.
func (f fallbackEvaluator) PrewarmCaches() { nn.Prewarm(f.m) }

// Config returns the effective configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Timings returns cumulative per-phase wall-clock times.
func (t *Trainer) Timings() Timings { return t.timings }

// Step runs one VQMC iteration and returns its statistics.
func (t *Trainer) Step() IterStats {
	t.iter++
	// Rebuild any stale parameter-derived caches once, on this goroutine,
	// before the sampler or the evaluation paths fan work out to workers.
	nn.Prewarm(t.Model)
	t0 := time.Now()
	t.Smp.Sample(t.batch)
	t1 := time.Now()
	t.timings.Sample += t1.Sub(t0)

	if t.bev != nil {
		t.bev.LocalEnergies(t.H, t.batch, t.cfg.Workers, t.locals)
	} else {
		LocalEnergies(t.H, t.Model, t.batch, t.cfg.Workers, t.locals)
	}
	mean, std := stats.MeanStd(t.locals)
	t2 := time.Now()
	t.timings.Energy += t2.Sub(t1)

	t.computeGradient(mean)
	t3 := time.Now()
	t.timings.Grad += t3.Sub(t2)

	step := t.grad
	stats := IterStats{Iter: t.iter, Batch: t.cfg.BatchSize, Energy: mean, Std: std}
	if t.cfg.SR != nil {
		step = t.cfg.SR.Precondition(t.ows, t.grad)
		solve := t.cfg.SR.LastSolve()
		stats.SRIters, stats.SRResidual = solve.Iterations, solve.Residual
	}
	t.Opt.Step(t.Model.Params(), step)
	// The in-place parameter update invalidates any parameter-derived
	// cache (MADE's masked-weight product for the batched GEMM path).
	nn.InvalidateParams(t.Model)
	t.timings.Update += time.Since(t3)

	return stats
}

// FillOws evaluates GradLogPsi of every batch row into the corresponding
// ows row, partitioning rows across the per-worker evaluators (evals must
// hold at least as many evaluators as worker ranges). Rows are independent,
// so the result is bitwise identical for every worker count — the property
// the distributed trainer's two-level replica x worker scheme relies on.
func FillOws(evals []nn.GradEvaluator, b *sampler.Batch, ows *tensor.Batch, workers int) {
	// Pre-warm through the first evaluator in case the per-worker
	// evaluators share one underlying model with lazy caches (the fallback
	// evaluator wraps the model directly; dedicated GradEvaluators own
	// their scratch but may still read shared parameter-derived caches).
	if len(evals) > 0 {
		nn.Prewarm(evals[0])
	}
	ranges := parallel.Partition(b.N, workers)
	parallel.ForEach(len(ranges), workers, func(w int) {
		ev := evals[w]
		for k := ranges[w].Lo; k < ranges[w].Hi; k++ {
			ev.GradLogPsi(b.Row(k), ows.Sample(k))
		}
	})
}

// GradSlabRows is the sample-slab size of the batched streaming gradient
// path (no materialized full O_k batch): a multiple of GradBlockSize, so
// slab boundaries coincide with reduction-block boundaries and the slabbed
// reduction is bitwise identical to one AddWeightedRows over the full
// batch. Shared with the distributed trainer's REINFORCE path.
const GradSlabRows = 128

// computeGradient forms g = (2/B) sum_k (l_k - mean) O_k through the
// fixed-block reduction of AddWeightedRows, so the result is bitwise
// invariant to the worker count on every path. Under SR the per-sample O_k
// rows are also stored for the Fisher solve; otherwise the rows are
// produced slab by slab (batched) or block by block (scalar) and never
// fully materialized.
func (t *Trainer) computeGradient(mean float64) {
	bs := t.batch.N
	d := t.Model.NumParams()
	for k := 0; k < bs; k++ {
		t.wbuf[k] = 2 * (t.locals[k] - mean) / float64(bs)
	}
	for i := range t.grad {
		t.grad[i] = 0
	}
	if t.ows != nil {
		if t.bev != nil {
			t.bev.FillOws(t.batch, t.ows)
		} else {
			FillOws(t.evals, t.batch, t.ows, t.cfg.Workers)
		}
		AddWeightedRows(t.grad, t.ows, t.wbuf, t.gparts, t.cfg.Workers)
		return
	}
	if t.bev != nil {
		// Batched streaming: evaluate O_k rows one GradSlabRows slab at a time
		// through the fused GEMM forward, reducing each slab with the same
		// fixed blocks the one-shot reduction uses.
		if t.slabOws == nil {
			t.slabOws = tensor.NewBatch(GradSlabRows, d)
		}
		for lo := 0; lo < bs; lo += GradSlabRows {
			hi := lo + GradSlabRows
			if hi > bs {
				hi = bs
			}
			slab := &sampler.Batch{N: hi - lo, Sites: t.batch.Sites,
				Bits: t.batch.Bits[lo*t.batch.Sites : hi*t.batch.Sites]}
			rows := &tensor.Batch{N: hi - lo, Dim: d, Data: t.slabOws.Data[:(hi-lo)*d]}
			t.bev.FillOws(slab, rows)
			AddWeightedRows(t.grad, rows, t.wbuf[lo:hi], t.gparts, t.cfg.Workers)
		}
		return
	}
	// Scalar streaming: each worker owns a contiguous range of fixed
	// blocks, computing the per-block partials that are then folded in
	// ascending block order — the same bytes AddWeightedRows produces from
	// materialized rows.
	nb := GradBlocks(bs)
	branges := parallel.Partition(nb, t.cfg.Workers)
	parallel.ForEach(len(branges), t.cfg.Workers, func(w int) {
		ev := t.evals[w]
		gbuf := tensor.NewVector(d)
		for bi := branges[w].Lo; bi < branges[w].Hi; bi++ {
			p := t.gparts.Sample(bi)
			p.Fill(0)
			k1 := (bi + 1) * GradBlockSize
			if k1 > bs {
				k1 = bs
			}
			for k := bi * GradBlockSize; k < k1; k++ {
				ev.GradLogPsi(t.batch.Row(k), gbuf)
				p.AXPY(t.wbuf[k], gbuf)
			}
		}
	})
	for bi := 0; bi < nb; bi++ {
		t.grad.Add(t.gparts.Sample(bi))
	}
}

// Train runs iters iterations, invoking cb (if non-nil) after each, and
// returns the per-iteration statistics.
func (t *Trainer) Train(iters int, cb func(IterStats)) []IterStats {
	out := make([]IterStats, 0, iters)
	for i := 0; i < iters; i++ {
		s := t.Step()
		out = append(out, s)
		if cb != nil {
			cb(s)
		}
	}
	return out
}

// Evaluate draws a fresh batch and returns the mean and standard deviation
// of the local energy without updating parameters (the paper's testing
// protocol: 1024 evaluation samples).
func (t *Trainer) Evaluate(batchSize int) (mean, std float64) {
	mean, std, _, _ = t.EvaluateBest(batchSize)
	return mean, std
}

// EvaluateBest additionally returns the lowest local energy in the
// evaluation batch and the configuration achieving it — the natural metric
// when VQMC is used as a combinatorial-optimization heuristic.
func (t *Trainer) EvaluateBest(batchSize int) (mean, std, best float64, argBest []int) {
	if batchSize <= 0 {
		batchSize = 1024
	}
	if t.evalBatch == nil || t.evalBatch.N != batchSize {
		t.evalBatch = sampler.NewBatch(batchSize, t.H.N())
		t.evalLocals = make([]float64, batchSize)
	}
	b, locals := t.evalBatch, t.evalLocals
	t.Smp.Sample(b)
	if t.bev != nil {
		t.bev.LocalEnergies(t.H, b, t.cfg.Workers, locals)
	} else {
		LocalEnergies(t.H, t.Model, b, t.cfg.Workers, locals)
	}
	mean, std = stats.MeanStd(locals)
	best = locals[0]
	kBest := 0
	for k, l := range locals {
		if l < best {
			best, kBest = l, k
		}
	}
	argBest = append([]int(nil), b.Row(kBest)...)
	return mean, std, best, argBest
}

// HitResult reports a hitting-time run (the paper's Table 5 protocol).
type HitResult struct {
	Hit       bool
	Iters     int
	TrainTime time.Duration // training time only; evaluation excluded
	Score     float64       // final evaluation score
}

// TrainUntil trains until score(evalEnergy) >= target, evaluating a fresh
// batch after every iteration. Evaluation time is excluded from TrainTime,
// matching the paper's measurement protocol.
func (t *Trainer) TrainUntil(target float64, score func(meanEnergy float64) float64, maxIters, evalBatch int) HitResult {
	var trainTime time.Duration
	for i := 0; i < maxIters; i++ {
		start := time.Now()
		t.Step()
		trainTime += time.Since(start)
		mean, _ := t.Evaluate(evalBatch)
		if s := score(mean); s >= target {
			return HitResult{Hit: true, Iters: i + 1, TrainTime: trainTime, Score: s}
		}
	}
	mean, _ := t.Evaluate(evalBatch)
	return HitResult{Hit: false, Iters: maxIters, TrainTime: trainTime, Score: score(mean)}
}

// GradientNorm returns the Euclidean norm of the last computed gradient.
func (t *Trainer) GradientNorm() float64 { return t.grad.Norm2() }
