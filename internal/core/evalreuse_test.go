package core

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// TestEvaluateBestReusesWorkspace pins the evaluation-workspace cache:
// same-size calls must reuse one batch and locals buffer (TrainUntil
// evaluates every iteration, so per-call allocation was a real cost), while
// a size change reallocates, and results stay valid throughout.
func TestEvaluateBestReusesWorkspace(t *testing.T) {
	n := 8
	tim := hamiltonian.RandomTIM(n, rng.New(3))
	r := rng.New(4)
	m := nn.NewMADE(n, 12, r.Split())
	smp := sampler.NewAutoMADE(m, true, 1, r.Split())
	tr := New(tim, m, smp, optimizer.NewAdam(0.01), Config{BatchSize: 32, Workers: 1})

	mean1, _, best1, arg1 := tr.EvaluateBest(64)
	first := tr.evalBatch
	if first == nil || first.N != 64 || len(tr.evalLocals) != 64 {
		t.Fatalf("workspace not cached: %+v", tr.evalBatch)
	}
	mean2, _, best2, arg2 := tr.EvaluateBest(64)
	if tr.evalBatch != first {
		t.Fatal("same-size EvaluateBest reallocated the cached batch")
	}
	if best1 > mean1 {
		t.Fatalf("best %v above mean %v", best1, mean1)
	}
	if len(arg1) != n || len(arg2) != n {
		t.Fatalf("argBest lengths %d, %d", len(arg1), len(arg2))
	}
	// The returned configuration must be a copy, not an alias into the
	// reused workspace (the next call overwrites the batch).
	copy1 := append([]int(nil), arg2...)
	tr.EvaluateBest(64)
	for i := range arg2 {
		if arg2[i] != copy1[i] {
			t.Fatal("argBest aliases the reused evaluation workspace")
		}
	}
	_ = mean2
	_ = best2

	// A different batch size must resize the workspace.
	tr.EvaluateBest(16)
	if tr.evalBatch == first || tr.evalBatch.N != 16 {
		t.Fatalf("size change did not resize workspace: N=%d", tr.evalBatch.N)
	}
}
