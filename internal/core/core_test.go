package core

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/exact"
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// denseLocalEnergy computes l(x) = (H psi)(x) / psi(x) by materializing the
// dense matrix and the full amplitude vector.
func denseLocalEnergy(h hamiltonian.Hamiltonian, wf nn.Wavefunction, x []int) float64 {
	n := h.N()
	dim := 1 << uint(n)
	dense := hamiltonian.Dense(h)
	psi := make([]float64, dim)
	xb := make([]int, n)
	for ix := 0; ix < dim; ix++ {
		hamiltonian.IndexToBits(ix, xb)
		psi[ix] = math.Exp(wf.LogPsi(xb))
	}
	ix := hamiltonian.BitsToIndex(x)
	var hpsi float64
	for iy := 0; iy < dim; iy++ {
		hpsi += dense[ix*dim+iy] * psi[iy]
	}
	return hpsi / psi[ix]
}

func TestLocalEnergiesMatchDense(t *testing.T) {
	r := rng.New(1)
	n := 6
	h := hamiltonian.RandomTIM(n, r)
	for _, model := range []Model{nn.NewMADE(n, 5, r), nn.NewRBM(n, 4, r)} {
		b := sampler.NewBatch(10, n)
		for i := range b.Bits {
			b.Bits[i] = r.Bit()
		}
		out := make([]float64, b.N)
		LocalEnergies(h, model, b, 2, out)
		for k := 0; k < b.N; k++ {
			want := denseLocalEnergy(h, model, b.Row(k))
			if math.Abs(out[k]-want) > 1e-8 {
				t.Fatalf("sample %d: local energy %v, dense %v", k, out[k], want)
			}
		}
	}
}

func TestLocalEnergiesDiagonalFastPath(t *testing.T) {
	r := rng.New(2)
	g := graph.RandomBernoulli(8, r)
	mc := hamiltonian.NewMaxCut(g)
	m := nn.NewMADE(8, 5, r)
	b := sampler.NewBatch(6, 8)
	for i := range b.Bits {
		b.Bits[i] = r.Bit()
	}
	out := make([]float64, 6)
	LocalEnergies(mc, m, b, 1, out)
	for k := 0; k < 6; k++ {
		if math.Abs(out[k]-mc.Diagonal(b.Row(k))) > 1e-12 {
			t.Fatal("diagonal local energy mismatch")
		}
	}
}

func newTIMTrainer(t *testing.T, n int, seed uint64, useSR bool) (*Trainer, float64) {
	t.Helper()
	r := rng.New(seed)
	h := hamiltonian.RandomTIM(n, r)
	ex, err := exact.GroundState(h, 0, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	m := nn.NewMADE(n, 16, r.Split())
	smp := sampler.NewAutoMADE(m, true, 2, r.Split())
	var opt optimizer.Optimizer
	cfg := Config{BatchSize: 256, Workers: 2}
	if useSR {
		opt = optimizer.NewSGD(0.1)
		cfg.SR = optimizer.NewSR(1e-3)
	} else {
		opt = optimizer.NewAdam(0.05)
	}
	return New(h, m, smp, opt, cfg), ex.Energy
}

func TestMADEAutoConvergesToGroundState(t *testing.T) {
	tr, exactE := newTIMTrainer(t, 8, 3, false)
	hist := tr.Train(300, nil)
	final := hist[len(hist)-1]
	// Relative gap to the exact ground energy should be small, and the
	// variational inequality must hold within sampling noise.
	gap := (final.Energy - exactE) / math.Abs(exactE)
	if gap > 0.05 {
		t.Fatalf("final energy %v vs exact %v (gap %.3f)", final.Energy, exactE, gap)
	}
	if final.Energy < exactE-0.5 {
		t.Fatalf("energy %v below exact minimum %v: estimator broken", final.Energy, exactE)
	}
	// Std-dev should have shrunk substantially (Fig. 2 behaviour).
	if final.Std > hist[0].Std {
		t.Fatalf("std did not decrease: %v -> %v", hist[0].Std, final.Std)
	}
}

func TestSRConvergesFasterOrBetter(t *testing.T) {
	trPlain, exactE := newTIMTrainer(t, 8, 5, false)
	trSR, _ := newTIMTrainer(t, 8, 5, true)
	histPlain := trPlain.Train(120, nil)
	histSR := trSR.Train(120, nil)
	ePlain := histPlain[len(histPlain)-1].Energy
	eSR := histSR[len(histSR)-1].Energy
	// SR should be at least competitive on this small instance.
	if eSR > ePlain+0.10*math.Abs(exactE) {
		t.Fatalf("SR final %v much worse than plain %v (exact %v)", eSR, ePlain, exactE)
	}
}

func TestRBMMCMCTrainsOnSmallTIM(t *testing.T) {
	r := rng.New(7)
	n := 6
	h := hamiltonian.RandomTIM(n, r)
	ex, err := exact.GroundState(h, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := nn.NewRBM(n, n, r.Split())
	smp := sampler.NewMCMC(m, sampler.MCMCConfig{Chains: 2, BurnIn: 200}, r.Split())
	tr := New(h, m, smp, optimizer.NewAdam(0.02), Config{BatchSize: 256, Workers: 2})
	hist := tr.Train(250, nil)
	final := hist[len(hist)-1]
	gap := (final.Energy - ex.Energy) / math.Abs(ex.Energy)
	if gap > 0.10 {
		t.Fatalf("RBM+MCMC final %v vs exact %v (gap %.3f)", final.Energy, ex.Energy, gap)
	}
}

func TestMaxCutTrainingFindsGoodCut(t *testing.T) {
	r := rng.New(9)
	n := 10
	g := graph.RandomBernoulli(n, r)
	mc := hamiltonian.NewMaxCut(g)
	bestE, _, err := exact.GroundStateDiagonal(mc, 0)
	if err != nil {
		t.Fatal(err)
	}
	bestCut := mc.CutFromEnergy(bestE)
	m := nn.NewMADE(n, 12, r.Split())
	smp := sampler.NewAutoMADE(m, true, 2, r.Split())
	tr := New(mc, m, smp, optimizer.NewAdam(0.05), Config{BatchSize: 256, Workers: 2})
	tr.Train(300, nil)
	mean, _ := tr.Evaluate(512)
	cut := mc.CutFromEnergy(mean)
	if cut < 0.93*bestCut {
		t.Fatalf("converged cut %v, optimum %v", cut, bestCut)
	}
}

func TestVariationalInequalityDuringTraining(t *testing.T) {
	// Every batch-mean energy should stay above the exact ground energy up
	// to statistical noise (a few standard errors).
	tr, exactE := newTIMTrainer(t, 7, 11, false)
	hist := tr.Train(100, nil)
	for _, s := range hist {
		slack := 5 * s.Std / math.Sqrt(256)
		if s.Energy < exactE-slack-0.3 {
			t.Fatalf("iter %d: energy %v below exact %v beyond noise", s.Iter, s.Energy, exactE)
		}
	}
}

func TestTrainUntilHitsTarget(t *testing.T) {
	r := rng.New(13)
	n := 8
	g := graph.RandomBernoulli(n, r)
	mc := hamiltonian.NewMaxCut(g)
	m := nn.NewMADE(n, 10, r.Split())
	smp := sampler.NewAutoMADE(m, true, 2, r.Split())
	tr := New(mc, m, smp, optimizer.NewAdam(0.05), Config{BatchSize: 128, Workers: 2})
	// Random cut achieves ~|E|/2; target modestly above it.
	target := 0.55 * g.TotalWeight()
	res := tr.TrainUntil(target, mc.CutFromEnergy, 400, 256)
	if !res.Hit {
		t.Fatalf("did not reach target %v; final score %v", target, res.Score)
	}
	if res.TrainTime <= 0 || res.Iters <= 0 {
		t.Fatalf("bogus hit result %+v", res)
	}
}

func TestTimingsAccumulate(t *testing.T) {
	tr, _ := newTIMTrainer(t, 6, 15, false)
	tr.Train(3, nil)
	tm := tr.Timings()
	if tm.Sample <= 0 || tm.Total() < tm.Sample {
		t.Fatalf("timings not accumulated: %+v", tm)
	}
}

func TestTrainCallback(t *testing.T) {
	tr, _ := newTIMTrainer(t, 6, 17, false)
	var iters []int
	tr.Train(5, func(s IterStats) { iters = append(iters, s.Iter) })
	if len(iters) != 5 || iters[0] != 1 || iters[4] != 5 {
		t.Fatalf("callback iterations %v", iters)
	}
}

func TestGradientMatchesSerialReference(t *testing.T) {
	// The parallel on-the-fly reduction must equal the SR path's
	// materialized computation for the same batch: run two trainers with
	// identical models and frozen samplers, compare gradients.
	r := rng.New(19)
	n := 6
	h := hamiltonian.RandomTIM(n, r)
	mkModel := func() *nn.MADE { return nn.NewMADE(n, 5, rng.New(42)) }

	fixed := sampler.NewBatch(32, n)
	for i := range fixed.Bits {
		fixed.Bits[i] = r.Bit()
	}
	frozen1 := &frozenSampler{src: fixed}
	frozen2 := &frozenSampler{src: fixed}

	m1, m2 := mkModel(), mkModel()
	tr1 := New(h, m1, frozen1, &nullOpt{}, Config{BatchSize: 32, Workers: 3})
	tr2 := New(h, m2, frozen2, &nullOpt{}, Config{BatchSize: 32, Workers: 1, SR: optimizer.NewSR(1)})
	tr1.Step()
	tr2.Step()
	for i := range tr1.grad {
		if math.Abs(tr1.grad[i]-tr2.grad[i]) > 1e-10 {
			t.Fatalf("gradient paths disagree at %d: %v vs %v", i, tr1.grad[i], tr2.grad[i])
		}
	}
}

// frozenSampler replays a fixed batch, for deterministic gradient tests.
type frozenSampler struct{ src *sampler.Batch }

func (f *frozenSampler) Sample(b *sampler.Batch) { copy(b.Bits, f.src.Bits) }
func (f *frozenSampler) Cost() sampler.Cost      { return sampler.Cost{} }

// nullOpt performs no update, freezing the model.
type nullOpt struct{}

func (n *nullOpt) Step(p, g tensor.Vector) {}
func (n *nullOpt) Name() string            { return "null" }

func BenchmarkTrainerStepMADE(b *testing.B) {
	r := rng.New(1)
	n := 50
	h := hamiltonian.RandomTIM(n, r)
	m := nn.NewMADE(n, 20, r.Split())
	smp := sampler.NewAutoMADE(m, true, 0, r.Split())
	tr := New(h, m, smp, optimizer.NewAdam(0.01), Config{BatchSize: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}
