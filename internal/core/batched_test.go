package core

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// TestLocalEnergiesBatchedBitIdentical: the batched flip-super-batch path
// must reproduce the scalar FlipCache path with exact ==, across the
// acceptance grid of batch sizes, worker counts and site counts.
func TestLocalEnergiesBatchedBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 19} {
		r := rng.New(uint64(600 + n))
		h := hamiltonian.RandomTIM(n, r)
		m := nn.NewMADE(n, 5+n, r.Split())
		for _, bs := range []int{1, 3, 64} {
			b := sampler.NewBatch(bs, n)
			r.FillBits(b.Bits)
			want := make([]float64, bs)
			LocalEnergies(h, m, b, 1, want)
			for _, workers := range []int{1, 2, 5} {
				// Scalar path must itself be worker-invariant (independent rows).
				got := make([]float64, bs)
				LocalEnergies(h, m, b, workers, got)
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("scalar n=%d B=%d w=%d row %d: %v != %v", n, bs, workers, k, got[k], want[k])
					}
				}
				LocalEnergiesBatched(h, m, b, workers, got)
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("batched n=%d B=%d w=%d row %d: %v != %v", n, bs, workers, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// TestFillOwsBatchedBitIdentical: batched O_k rows equal the scalar rows
// exactly for every worker count.
func TestFillOwsBatchedBitIdentical(t *testing.T) {
	n := 9
	r := rng.New(61)
	m := nn.NewMADE(n, 11, r.Split())
	b := sampler.NewBatch(37, n)
	r.FillBits(b.Bits)
	want := tensor.NewBatch(b.N, m.NumParams())
	evals := []nn.GradEvaluator{m.NewGradEvaluator()}
	FillOws(evals, b, want, 1)
	for _, workers := range []int{1, 2, 5} {
		e := NewBatchedEval(m, EvalAuto, workers)
		got := tensor.NewBatch(b.N, m.NumParams())
		e.FillOws(b, got)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("w=%d: ows element %d batched %v != scalar %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// buildEquivTrainer assembles a trainer in the given eval mode whose
// sampler matches the mode (batched ancestral vs scalar incremental) —
// both stacks end to end, as parvqmc.Train wires them.
func buildEquivTrainer(n, hsz, bs, workers int, mode EvalMode, useSR bool) *Trainer {
	tim := hamiltonian.RandomTIM(n, rng.New(71))
	m := nn.NewMADE(n, hsz, rng.New(72))
	var smp sampler.Sampler
	if mode == EvalScalar {
		smp = sampler.NewAutoMADE(m, true, workers, rng.New(73))
	} else {
		smp = sampler.NewAutoBatched(n, m, workers, rng.New(73))
	}
	cfg := Config{BatchSize: bs, Workers: workers, Eval: mode}
	var opt optimizer.Optimizer = optimizer.NewAdam(0.02)
	if useSR {
		opt = optimizer.NewSGD(0.1)
		cfg.SR = optimizer.NewSR(1e-3)
	}
	return New(tim, m, smp, opt, cfg)
}

// TestTrainerBatchedTrajectoryBitIdentical: 50 full training steps of the
// batched stack (batched sampler + batched energies + batched gradients)
// must leave EXACTLY the parameters, energies and statistics of the scalar
// stack — with and without stochastic reconfiguration, at several worker
// counts.
func TestTrainerBatchedTrajectoryBitIdentical(t *testing.T) {
	for _, useSR := range []bool{false, true} {
		for _, workers := range []int{1, 3} {
			scalar := buildEquivTrainer(7, 9, 64, workers, EvalScalar, useSR)
			batched := buildEquivTrainer(7, 9, 64, workers, EvalAuto, useSR)
			if batched.bev == nil {
				t.Fatal("batched trainer did not engage the batched evaluator")
			}
			hs := scalar.Train(50, nil)
			hb := batched.Train(50, nil)
			for i := range hs {
				if hs[i] != hb[i] {
					t.Fatalf("sr=%v w=%d iter %d: scalar %+v != batched %+v",
						useSR, workers, i, hs[i], hb[i])
				}
			}
			ps, pb := scalar.Model.Params(), batched.Model.Params()
			for i := range ps {
				if ps[i] != pb[i] {
					t.Fatalf("sr=%v w=%d: param %d scalar %v != batched %v",
						useSR, workers, i, ps[i], pb[i])
				}
			}
		}
	}
}

// buildRBMTrainer assembles an RBM trainer on the MCMC (or Gibbs) pipeline
// in the given eval mode. The sampler is scalar in both modes (MCMC chains
// are inherently sequential); the batched path fuses the local-energy and
// gradient evaluation that follows it.
func buildRBMTrainer(gibbs bool, workers int, mode EvalMode, useSR bool) *Trainer {
	tim := hamiltonian.RandomTIM(6, rng.New(171))
	m := nn.NewRBM(6, 8, rng.New(172))
	var smp sampler.Sampler
	if gibbs {
		smp = sampler.NewGibbs(m, sampler.MCMCConfig{Chains: 2, BurnIn: 5}, rng.New(173))
	} else {
		smp = sampler.NewMCMC(m, sampler.MCMCConfig{Chains: 2, BurnIn: 30}, rng.New(173))
	}
	cfg := Config{BatchSize: 48, Workers: workers, Eval: mode}
	var opt optimizer.Optimizer = optimizer.NewAdam(0.02)
	if useSR {
		opt = optimizer.NewSGD(0.1)
		cfg.SR = optimizer.NewSR(1e-3)
	}
	return New(tim, m, smp, opt, cfg)
}

// TestRBMTrainerBatchedTrajectoryBitIdentical: with the RBM now satisfying
// the BatchEvaluator contract, 40 full MCMC- and Gibbs-pipeline training
// steps through the batched evaluator must leave EXACTLY the parameters and
// statistics of the scalar path — the delta-based flip contract is what
// makes exp(delta) interchangeable between the paths for an incremental
// (non-fresh-forward) flip cache.
func TestRBMTrainerBatchedTrajectoryBitIdentical(t *testing.T) {
	for _, gibbs := range []bool{false, true} {
		for _, useSR := range []bool{false, true} {
			scalar := buildRBMTrainer(gibbs, 2, EvalScalar, useSR)
			batched := buildRBMTrainer(gibbs, 2, EvalAuto, useSR)
			if batched.bev == nil {
				t.Fatal("RBM trainer did not engage the batched evaluator")
			}
			hs := scalar.Train(40, nil)
			hb := batched.Train(40, nil)
			for i := range hs {
				if hs[i] != hb[i] {
					t.Fatalf("gibbs=%v sr=%v iter %d: scalar %+v != batched %+v",
						gibbs, useSR, i, hs[i], hb[i])
				}
			}
			ps, pb := scalar.Model.Params(), batched.Model.Params()
			for i := range ps {
				if ps[i] != pb[i] {
					t.Fatalf("gibbs=%v sr=%v: param %d scalar %v != batched %v",
						gibbs, useSR, i, ps[i], pb[i])
				}
			}
		}
	}
}

// TestGradientWorkerInvariance pins the fixed-block reduction: the
// gradient of one step on a frozen batch must be bitwise identical across
// worker counts, on the scalar streaming, scalar materialized (SR) and
// batched paths alike.
func TestGradientWorkerInvariance(t *testing.T) {
	n := 8
	r := rng.New(81)
	h := hamiltonian.RandomTIM(n, r)
	fixed := sampler.NewBatch(70, n) // deliberately not a block multiple
	r.FillBits(fixed.Bits)

	grad := func(workers int, mode EvalMode, useSR bool) tensor.Vector {
		m := nn.NewMADE(n, 10, rng.New(82))
		cfg := Config{BatchSize: fixed.N, Workers: workers, Eval: mode}
		if useSR {
			// SR materializes the O_k rows; nullOpt keeps params frozen so
			// the raw gradient is comparable.
			cfg.SR = optimizer.NewSR(1e-3)
		}
		tr := New(h, m, &frozenSampler{src: fixed}, &nullOpt{}, cfg)
		tr.Step()
		return tr.grad.Clone()
	}

	for _, useSR := range []bool{false, true} {
		for _, mode := range []EvalMode{EvalScalar, EvalAuto} {
			ref := grad(1, mode, useSR)
			for _, workers := range []int{2, 5} {
				got := grad(workers, mode, useSR)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("sr=%v mode=%d: grad[%d] differs between workers 1 and %d: %v vs %v",
							useSR, mode, i, workers, ref[i], got[i])
					}
				}
			}
		}
		// And across modes: the batched gradient equals the scalar one.
		s, b := grad(3, EvalScalar, useSR), grad(2, EvalAuto, useSR)
		for i := range s {
			if s[i] != b[i] {
				t.Fatalf("sr=%v: grad[%d] scalar %v != batched %v", useSR, i, s[i], b[i])
			}
		}
	}
}

// --- the headline perf benchmarks (ISSUE 4 acceptance working point) ---

func benchLocalEnergies(b *testing.B, mode string, workers int) {
	b.Helper()
	const n, hsz, bs = 32, 64, 1024
	r := rng.New(1)
	tim := hamiltonian.RandomTIM(n, r)
	m := nn.NewMADE(n, hsz, r.Split())
	batch := sampler.NewBatch(bs, n)
	r.FillBits(batch.Bits)
	out := make([]float64, bs)
	var bev *BatchedEval
	switch mode {
	case "batched":
		bev = NewBatchedEval(m, EvalAuto, workers)
	case "fullflip":
		bev = NewBatchedEvalWith(m.NewFullFlipBatchEvaluator(workers))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bev != nil {
			bev.LocalEnergies(tim, batch, workers, out)
		} else {
			LocalEnergies(tim, m, batch, workers, out)
		}
	}
}

// BenchmarkLocalEnergiesScalar and BenchmarkLocalEnergiesBatched compare
// the per-sample FlipCache path against the fused flip-super-batch GEMM
// path at the acceptance working point (TIM n=32, h=64, B=1024);
// BenchmarkLocalEnergiesBatchedFullFlip drives the full-recompute reference
// evaluator — the PR 4 batched baseline the tail-only acceptance ratio is
// measured against.
func BenchmarkLocalEnergiesScalar(b *testing.B)          { benchLocalEnergies(b, "scalar", 0) }
func BenchmarkLocalEnergiesBatched(b *testing.B)         { benchLocalEnergies(b, "batched", 0) }
func BenchmarkLocalEnergiesBatchedFullFlip(b *testing.B) { benchLocalEnergies(b, "fullflip", 0) }

func benchFillOws(b *testing.B, batched bool) {
	b.Helper()
	const n, hsz, bs = 32, 64, 1024
	r := rng.New(2)
	m := nn.NewMADE(n, hsz, r.Split())
	batch := sampler.NewBatch(bs, n)
	r.FillBits(batch.Bits)
	ows := tensor.NewBatch(bs, m.NumParams())
	evals := make([]nn.GradEvaluator, 8)
	for i := range evals {
		evals[i] = m.NewGradEvaluator()
	}
	bev := NewBatchedEval(m, EvalAuto, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			bev.FillOws(batch, ows)
		} else {
			FillOws(evals, batch, ows, 8)
		}
	}
}

// BenchmarkFillOwsScalar and BenchmarkFillOwsBatched compare the gradient
// (O_k) evaluation paths at the same working point.
func BenchmarkFillOwsScalar(b *testing.B)  { benchFillOws(b, false) }
func BenchmarkFillOwsBatched(b *testing.B) { benchFillOws(b, true) }

// TestBatchedEvalLogPsiBitIdentical: the serving layer's shared amplitude
// dispatch must reproduce per-row scalar LogPsi with exact ==, for every
// model family and independent of batch composition — the row-local
// property the cross-request coalescer's invariance rests on.
func TestBatchedEvalLogPsiBitIdentical(t *testing.T) {
	const n = 9
	models := []struct {
		name string
		wf   nn.Wavefunction
	}{
		{"made", nn.NewMADE(n, 11, rng.New(901))},
		{"rbm", nn.NewRBM(n, 11, rng.New(902))},
		{"nade", nn.NewNADE(n, 11, rng.New(903))},
		{"rnn", nn.NewRNN(n, 11, rng.New(904))},
	}
	for _, mc := range models {
		for _, bs := range []int{1, 3, 64} {
			b := sampler.NewBatch(bs, n)
			rng.New(uint64(910 + bs)).FillBits(b.Bits)
			e := NewBatchedEval(mc.wf, EvalAuto, 2)
			if e == nil {
				t.Fatalf("%s: no batched path", mc.name)
			}
			got := make([]float64, bs)
			e.LogPsi(b, got)
			for k := 0; k < bs; k++ {
				if want := mc.wf.LogPsi(b.Row(k)); got[k] != want {
					t.Fatalf("%s B=%d row %d: batched %v != scalar %v", mc.name, bs, k, got[k], want)
				}
			}
			// Row-composition invariance: the same row inside a batch of
			// strangers must produce the same bytes as a single-row batch.
			one := sampler.NewBatch(1, n)
			copy(one.Bits, b.Row(bs-1))
			solo := make([]float64, 1)
			e.LogPsi(one, solo)
			if solo[0] != got[bs-1] {
				t.Fatalf("%s: solo %v != coalesced %v", mc.name, solo[0], got[bs-1])
			}
		}
	}
}
