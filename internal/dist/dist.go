// Package dist implements the paper's headline contribution: synchronous
// data-parallel VQMC training (Section 3.2, Figures 3-4). L identical model
// replicas — goroutine "devices" — each sample a private mini-batch from
// their own rng stream, evaluate local energies, and form a local
// gradient contribution; the replicas then synchronize through a real
// chunked ring all-reduce (package comm) that combines the gradient and the
// energy statistics, and every replica applies the identical averaged
// update through its own optimizer instance.
//
// Because the ring all-reduce leaves bit-identical bytes in every rank
// (each chunk is reduced on exactly one owner and then circulated by copy,
// never re-summed), and every optimizer starts from the same state, replica
// parameters remain bit-identical across the whole run *by construction* —
// no broadcast resynchronization is ever needed. The test suite pins this
// invariant with exact (==) comparisons, mirroring what package modelpar
// guarantees for the model-parallel dimension.
//
// Two levels of parallelism compose here, modeling node x GPU hierarchies:
// the replicas are the outer data-parallel dimension, and each replica can
// additionally fan its local-energy and gradient evaluation across Workers
// goroutines. Worker partitioning only changes which goroutine computes
// each independent row, and the per-sample reduction stays a deterministic
// ordered loop, so the trained parameters are bitwise independent of every
// replica's worker count — replicas with different Workers still stay
// bit-identical to each other.
//
// With a Replica.SR preconditioner set, the trainer runs *distributed
// stochastic reconfiguration*: each replica keeps only its private O_k rows
// (miniBatch x d), and the Fisher solve runs matrix-free CG where every
// iteration forms the local partial Fisher-vector product and combines it —
// packed together with the scalar dot-product CG needs — in exactly one
// ring all-reduce (the sample-distributed formulation of Neuscamman,
// Umrigar & Chan, arXiv:1108.0900). The O_k batch is never gathered on one
// device, which is what lets the parameter and sample counts scale
// independently.
//
// With SR.Solver set to optimizer.SolverPipelined the Fisher solve runs
// Gropp's overlapped CG instead: the same per-iteration packed reduction is
// issued NON-blocking (comm.Packed.IAllReduce) right after the local sweep,
// and the recurrence updates execute while it is in flight, so each
// iteration costs max(reduction, update) instead of their sum and the solve
// itself issues zero blocking collectives. The collective schedule is still
// identical on every rank and the reduced bytes are still bit-identical, so
// all bit-identity invariants carry over unchanged.
//
// The effective batch is devices x miniBatch: fixing miniBatch and growing
// the device count grows the batch at near-constant step time, which is the
// mechanism behind the paper's Figure 4 convergence improvements and
// Figure 3 weak scaling.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Model is the wavefunction contract a replica needs: amplitudes,
// per-worker gradient evaluators, and flip caches for local energies. Both
// neural families satisfy it (MADE and RBM), and either may ride the
// batched evaluation path when it additionally implements
// nn.BatchEvaluatorBuilder.
type Model interface {
	nn.Wavefunction
	nn.CacheBuilder
	nn.GradEvaluatorBuilder
}

// Replica is one data-parallel device: a full copy of the model, a sampler
// drawing from that copy with its own rng stream, and a private optimizer
// instance. All replicas must be constructed with identical initial
// parameters (same init seed); New verifies this.
type Replica struct {
	Model Model
	Smp   sampler.Sampler
	Opt   optimizer.Optimizer
	// SR optionally preconditions the gradient with distributed stochastic
	// reconfiguration. Either every replica carries a private SR instance
	// (identical configuration, distinct pointers — use SR.Clone) or none
	// does; New verifies both.
	SR *optimizer.SR
	// Workers fans this replica's local-energy and gradient evaluation
	// across up to Workers goroutines (<=1 means serial). The worker count
	// is a pure throughput knob: trained parameters are bitwise identical
	// for any mix of worker counts across replicas.
	Workers int
	// Eval selects the replica's evaluation path (core.EvalAuto fuses
	// local energies and gradients into blocked GEMMs over the mini-batch;
	// core.EvalScalar forces per-sample evaluation). Like Workers it is a
	// pure throughput knob — the batched path is bitwise identical to the
	// scalar one, so replicas may even mix modes without diverging.
	Eval core.EvalMode
}

// distFisher is the distributed FisherOp: it owns one replica's private O_k
// rows and combines the one-pass partial statistics of every replica with a
// single packed ring all-reduce per ApplyDot. All replicas run the CG
// recurrence in lockstep on bit-identical reduced bytes.
type distFisher struct {
	cm      *comm.Comm
	ows     *tensor.Batch
	pack    *comm.Packed // [ partial Fisher-vector product (d) | partial p.Ap scalar (1) ]
	tbuf    []float64    // miniBatch per-sample dot products
	obar    tensor.Vector
	lambda  float64
	batchN  float64 // global sample count L*miniBatch
	workers int
	applies *int64       // collective counter, non-nil on rank 0 only
	handle  *comm.Handle // in-flight non-blocking reduction (pipelined solve)
	// err is the sticky failure of a mid-solve collective. The FisherOp
	// interface has no error return, so a failed reduction is surfaced by
	// bailing the CG recurrence instead: ApplyDot/FinishApply zero out and
	// return -1, which classic CG treats as loss of positive definiteness
	// (pap <= 0) and the pipelined solve hits one iteration later through
	// delta = p.Dot(s) = 0 on the zeroed direction product. -1, not NaN —
	// NaN compares false against everything and would run the solve to
	// maxIter. srStep inspects err after the solve and propagates it before
	// any parameter update.
	err error
}

func (f *distFisher) Dim() int { return f.ows.Dim }

// fail records the first collective failure and poisons the operator
// output: out is zeroed (garbage from a degraded reduction must not leak
// NaNs into the CG vectors) and the returned -1 makes the solver bail.
func (f *distFisher) fail(err error, out tensor.Vector) float64 {
	if f.err == nil {
		f.err = err
	}
	out.Fill(0)
	return -1
}

func (f *distFisher) ApplyDot(v, out tensor.Vector) float64 {
	// The local sweep writes straight into the packed collective buffer:
	// [partial S-product | partial p.Ap scalar], one all-reduce total.
	// This is the BLOCKING application the classic CG solve uses.
	if f.err != nil {
		return f.fail(f.err, out)
	}
	optimizer.FisherPartial(f.ows, v, f.pack.Buf(), f.tbuf, f.workers)
	if err := f.pack.AllReduce(f.cm); err != nil {
		return f.fail(err, out)
	}
	if f.applies != nil {
		*f.applies++
	}
	return optimizer.FisherFinish(f.pack.Buf(), f.obar, v, out, f.lambda, f.batchN)
}

// StartApply implements optimizer.SplitFisherOp: the local sweep writes the
// packed partials and the ring reduction is launched NON-blocking, so the
// pipelined solve overlaps its recurrence updates with the in-flight
// collective. The packed buffer is owned by the collective until
// FinishApply. On a failed operator the launch is skipped (handle nil);
// FinishApply reports the bail.
func (f *distFisher) StartApply(v tensor.Vector) {
	if f.err != nil {
		f.handle = nil
		return
	}
	optimizer.FisherPartial(f.ows, v, f.pack.Buf(), f.tbuf, f.workers)
	f.handle = f.pack.IAllReduce(f.cm)
	if f.applies != nil {
		*f.applies++
	}
}

// FinishApply waits for the reduction started by StartApply and assembles
// the operator output from the globally reduced bytes — bit-identical on
// every rank, exactly as the blocking path. A reduction that failed in
// flight bails the solve like ApplyDot does.
func (f *distFisher) FinishApply(v, out tensor.Vector) float64 {
	if f.handle == nil {
		return f.fail(f.err, out)
	}
	err := f.handle.Wait()
	f.handle = nil
	if err != nil {
		return f.fail(err, out)
	}
	return optimizer.FisherFinish(f.pack.Buf(), f.obar, v, out, f.lambda, f.batchN)
}

// replicaState is the per-replica workspace reused across iterations so the
// steady-state loop allocates nothing on the hot path.
type replicaState struct {
	cm      *comm.Comm
	evals   []nn.GradEvaluator // one per worker
	batch   *sampler.Batch
	locals  []float64
	gbuf    tensor.Vector // one sample's grad-log-psi (serial streaming path)
	workers int
	// acc packs the REINFORCE collective payload: [gradient (d), energy
	// sum, energy sum of squares]. One ring all-reduce per iteration moves
	// everything.
	acc tensor.Vector
	// ows holds the replica's private O_k rows (miniBatch x d), allocated
	// when SR needs them for the Fisher solve or when workers > 1 on the
	// scalar path materializes rows before the ordered reduction.
	ows *tensor.Batch
	// Batched evaluation state: bev dispatches local energies and O_k
	// rows through blocked GEMMs (nil = scalar path); wbuf holds gradient
	// coefficients, gparts the fixed-block reduction partials, and
	// slabOws the REINFORCE-path gradient slab (the batched non-SR
	// reduction streams core.GradSlabRows rows at a time instead of
	// materializing the full miniBatch x d O_k matrix).
	bev     *core.BatchedEval
	wbuf    []float64
	gparts  *tensor.Batch
	slabOws *tensor.Batch
	pbuf    tensor.Vector // block partial for the scalar streaming path
	// SR-mode collective payloads: ebuf carries [energy sum, energy sum of
	// squares] (the global mean must exist before the gradient is formed),
	// gpack carries [gradient partial (d) | O-row sum (d)].
	ebuf   []float64
	gpack  *comm.Packed
	fisher *distFisher
}

// Timings decomposes one replica's cumulative wall-clock time by phase —
// the per-iteration breakdown behind the paper's Figure 3 discussion. Sync
// covers the pre-solve ring all-reduces (and therefore any load-imbalance
// wait); Precond covers the SR CG solve including the per-iteration
// collectives it issues.
type Timings struct {
	Sample, Energy, Grad, Sync, Precond, Update time.Duration
}

// Total returns the summed time across phases.
func (t Timings) Total() time.Duration {
	return t.Sample + t.Energy + t.Grad + t.Sync + t.Precond + t.Update
}

// Trainer coordinates synchronous data-parallel VQMC across the replicas.
type Trainer struct {
	H    hamiltonian.Hamiltonian
	Reps []Replica

	mb    int     // per-replica mini-batch
	d     int     // parameter count
	bf    float64 // effective batch as float64
	sr    bool    // stochastic reconfiguration enabled
	group *comm.Group
	state []*replicaState
	// timings are replica 0's phase times, representative because the
	// all-reduce barrier equalizes iteration time across replicas.
	timings Timings
	// fisherApplies counts distributed Fisher collectives (one per CG
	// ApplyDot, every replica participating); written by rank 0 only.
	fisherApplies int64
	// link mirrors the group's simulated link so Recover can re-apply it to
	// the rebuilt group (comm exposes no getter).
	link comm.Link
	// Recovery state (see recover.go). Step captures every replica's
	// sampler stream position and SR solver state at entry — before any
	// draw or collective — so a mid-step failure leaves a consistent rewind
	// point: no rank commits a parameter update until after its last
	// collective, so all survivors still hold the previous step's
	// parameters and optimizer state, and only the consumed RNG draws and
	// polluted SR warm starts need rewinding. notRecoverable (non-nil when
	// a sampler is not Resumable or an optimizer not a StateCloner)
	// disables snapshotting and Recover with a reason.
	notRecoverable error
	snapSmp        []sampler.State
	snapSR         []optimizer.SRState
	snapValid      bool
	snapIter       int
	failedIter     int
	// Elastic-membership state (see elastic.go): plan re-arms the next
	// generation of scripted faults on every rebuilt group, and history
	// accumulates one forensic record per failed step ACROSS rebuilds —
	// DeadRanks/FailedStep describe only the current incarnation, so a
	// second failure during recovery would otherwise orphan the first's
	// post-mortem.
	plan    *comm.FaultPlan
	history []FailureRecord
}

// New assembles a data-parallel trainer over the replicas. It validates
// that the replica list is nonempty, miniBatch is positive, every replica
// is fully populated, all models share the Hamiltonian's site count and one
// parameter shape, the SR preconditioners are either absent everywhere or
// private identically-configured instances everywhere, and the initial
// parameter vectors are bit-identical.
func New(h hamiltonian.Hamiltonian, reps []Replica, miniBatch int) (*Trainer, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("dist: no replicas")
	}
	if miniBatch <= 0 {
		return nil, fmt.Errorf("dist: miniBatch must be positive, got %d", miniBatch)
	}
	n := h.N()
	sr0 := reps[0].SR
	seenSR := make(map[*optimizer.SR]int, len(reps))
	for r, rep := range reps {
		if rep.Model == nil || rep.Smp == nil || rep.Opt == nil {
			return nil, fmt.Errorf("dist: replica %d is missing a model, sampler, or optimizer", r)
		}
		if rep.Model.NumSites() != n {
			return nil, fmt.Errorf("dist: replica %d has %d sites, Hamiltonian has %d",
				r, rep.Model.NumSites(), n)
		}
		if rep.Model.NumParams() != reps[0].Model.NumParams() {
			return nil, fmt.Errorf("dist: replica %d has %d parameters, replica 0 has %d",
				r, rep.Model.NumParams(), reps[0].Model.NumParams())
		}
		if (rep.SR != nil) != (sr0 != nil) {
			return nil, fmt.Errorf("dist: replica %d SR presence differs from replica 0 (all or none)", r)
		}
		if rep.SR != nil {
			if prev, dup := seenSR[rep.SR]; dup {
				return nil, fmt.Errorf("dist: replicas %d and %d share one SR instance; each needs a private clone", prev, r)
			}
			seenSR[rep.SR] = r
			if rep.SR.Lambda != sr0.Lambda || rep.SR.Tol != sr0.Tol ||
				rep.SR.MaxIter != sr0.MaxIter || rep.SR.MaxStepNorm != sr0.MaxStepNorm ||
				rep.SR.Solver != sr0.Solver {
				return nil, fmt.Errorf("dist: replica %d SR configuration differs from replica 0; the lockstep CG needs identical settings", r)
			}
		}
	}
	t := &Trainer{
		H:     h,
		Reps:  reps,
		mb:    miniBatch,
		d:     reps[0].Model.NumParams(),
		bf:    float64(len(reps) * miniBatch),
		sr:    sr0 != nil,
		group: comm.NewGroup(len(reps)),
	}
	if err := t.CheckConsistent(); err != nil {
		return nil, fmt.Errorf("dist: replicas must start from identical parameters: %w", err)
	}
	t.state = make([]*replicaState, len(reps))
	for r, rep := range reps {
		workers := rep.Workers
		if workers < 1 {
			workers = 1
		}
		st := &replicaState{
			cm:      t.group.Rank(r),
			evals:   make([]nn.GradEvaluator, workers),
			batch:   sampler.NewBatch(miniBatch, n),
			locals:  make([]float64, miniBatch),
			gbuf:    tensor.NewVector(t.d),
			workers: workers,
			acc:     tensor.NewVector(t.d + 2),
		}
		for w := range st.evals {
			st.evals[w] = rep.Model.NewGradEvaluator()
		}
		st.bev = core.NewBatchedEval(rep.Model, rep.Eval, workers)
		st.wbuf = make([]float64, miniBatch)
		st.gparts = tensor.NewBatch(core.GradBlocks(miniBatch), t.d)
		st.pbuf = tensor.NewVector(t.d)
		if t.sr || (workers > 1 && st.bev == nil) {
			st.ows = tensor.NewBatch(miniBatch, t.d)
		}
		if st.bev != nil && !t.sr {
			rows := core.GradSlabRows
			if rows > miniBatch {
				rows = miniBatch
			}
			st.slabOws = tensor.NewBatch(rows, t.d)
		}
		if t.sr {
			st.ebuf = make([]float64, 2)
			st.gpack = comm.NewPacked(t.d, t.d)
			st.fisher = &distFisher{
				cm:      st.cm,
				ows:     st.ows,
				pack:    comm.NewPacked(t.d, 1),
				tbuf:    make([]float64, miniBatch),
				obar:    tensor.NewVector(t.d),
				lambda:  rep.SR.Lambda,
				batchN:  t.bf,
				workers: workers,
			}
			if r == 0 {
				st.fisher.applies = &t.fisherApplies
			}
		}
		t.state[r] = st
	}
	for r, rep := range reps {
		if _, ok := rep.Smp.(sampler.Resumable); !ok {
			t.notRecoverable = fmt.Errorf("dist: replica %d sampler %T is not sampler.Resumable", r, rep.Smp)
			break
		}
		if _, ok := rep.Opt.(optimizer.StateCloner); !ok {
			t.notRecoverable = fmt.Errorf("dist: replica %d optimizer %s is not optimizer.StateCloner", r, rep.Opt.Name())
			break
		}
	}
	t.snapSmp = make([]sampler.State, len(reps))
	t.snapSR = make([]optimizer.SRState, len(reps))
	return t, nil
}

// Devices returns the replica count L.
func (t *Trainer) Devices() int { return len(t.Reps) }

// MiniBatch returns the per-replica batch size.
func (t *Trainer) MiniBatch() int { return t.mb }

// EffectiveBatch returns devices x miniBatch, the global samples per step.
func (t *Trainer) EffectiveBatch() int { return len(t.Reps) * t.mb }

// SREnabled reports whether the trainer runs distributed stochastic
// reconfiguration.
func (t *Trainer) SREnabled() bool { return t.sr }

// Timings returns replica 0's cumulative per-phase wall-clock times.
func (t *Trainer) Timings() Timings { return t.timings }

// Traffic reports the cumulative all-reduce payload bytes and message count
// summed over replicas — the communication side of the scaling story. Under
// SR it includes the per-step energy and gradient collectives and every
// per-CG-iteration Fisher collective.
func (t *Trainer) Traffic() (bytes, messages int64) {
	for _, st := range t.state {
		bytes += st.cm.BytesSent()
		messages += st.cm.Messages()
	}
	return bytes, messages
}

// FisherApplies reports how many distributed Fisher-vector collectives the
// SR solves have issued so far (one per CG ApplyDot or StartApply, counted
// once per collective — every replica participates in each). Zero without
// SR.
func (t *Trainer) FisherApplies() int64 { return t.fisherApplies }

// Collectives reports the blocking-vs-non-blocking collective counts SUMMED
// over all ranks — not just rank 0's view, which silently under-reports
// (and hides schedule divergence) the moment any rank issues a different
// collective sequence. In a healthy run every rank issues the identical
// schedule, so each total is exactly L times the per-rank count; the
// CollectivesBalanced check pins that. With the classic SR solver every
// Fisher collective is blocking; with the pipelined solver they all move to
// the async side, leaving only the two pre-solve reductions blocking per
// step — the latency-hiding the solver exists for, made countable.
func (t *Trainer) Collectives() (sync, async int64) {
	for _, st := range t.state {
		s, a := st.cm.Collectives()
		sync += s
		async += a
	}
	return sync, async
}

// CollectivesByRank reports each rank's (blocking, non-blocking) collective
// counts individually.
func (t *Trainer) CollectivesByRank() [][2]int64 {
	out := make([][2]int64, len(t.state))
	for r, st := range t.state {
		s, a := st.cm.Collectives()
		out[r] = [2]int64{s, a}
	}
	return out
}

// CollectivesBalanced verifies the lockstep-schedule invariant: every rank
// must have issued exactly the same number of blocking and non-blocking
// collectives. A mismatch on a healthy trainer means a rank diverged from
// the global collective schedule — the precursor of a deadlock.
func (t *Trainer) CollectivesBalanced() error {
	per := t.CollectivesByRank()
	for r := 1; r < len(per); r++ {
		if per[r] != per[0] {
			return fmt.Errorf("dist: rank %d issued %d sync / %d async collectives, rank 0 issued %d / %d",
				r, per[r][0], per[r][1], per[0][0], per[0][1])
		}
	}
	return nil
}

// SetLink attaches a simulated alpha-beta link to the trainer's collective
// group (see comm.Group.SetLink): every collective then costs the modeled
// ring time in wall clock, so classic-vs-pipelined timing comparisons show
// the latency that overlap hides. Call before training starts.
func (t *Trainer) SetLink(l comm.Link) {
	t.link = l
	t.group.SetLink(l)
}

// SetCollectiveDeadline bounds every blocking point of every collective the
// trainer issues (see comm.Group.SetDeadline): a replica that stops
// participating makes every survivor's Step return an error wrapping
// comm.ErrPeerLost within the deadline instead of hanging forever. Call
// before training starts; Recover carries the deadline onto the rebuilt
// group.
func (t *Trainer) SetCollectiveDeadline(d time.Duration) { t.group.SetDeadline(d) }

// InjectFailure scripts replica rank to die at its (after+1)-th collective
// (see comm.Group.FailAt) — the test seam behind the failure-injection
// matrix. Pair with SetCollectiveDeadline so survivors detect the death.
// The script arms only the CURRENT group; use SetFaultPlan to script deaths
// across Recover/Shrink/Grow rebuilds.
func (t *Trainer) InjectFailure(rank, after int) { t.group.FailAt(rank, after) }

// SetFaultPlan attaches a multi-generation fault script (see
// comm.FaultPlan): the plan's next generation is armed on the current group
// immediately, and every trainer a Recover, Shrink or Grow rebuild produces
// arms the following generation on its fresh group — the seam that lets a
// test drive a full shrink -> grow -> shrink failure schedule
// deterministically. Call before training starts.
func (t *Trainer) SetFaultPlan(p *comm.FaultPlan) {
	t.plan = p
	if p != nil {
		p.Apply(t.group)
	}
}

// InjectStraggler scripts replica rank to sleep d before each collective it
// initiates (see comm.Group.Delay).
func (t *Trainer) InjectStraggler(rank int, d time.Duration) { t.group.Delay(rank, d) }

// GroupErr returns the abort cause once the trainer's collective group has
// been condemned, nil while it is healthy. After a non-nil GroupErr every
// subsequent Step fails fast; Recover builds a replacement trainer.
func (t *Trainer) GroupErr() error { return t.group.Err() }

// DeadRanks lists the replicas whose injected failures have fired. Read it
// only after a failed Step has returned.
func (t *Trainer) DeadRanks() []int { return t.group.DeadRanks() }

// FailedStep returns the iteration number of the Step that first returned
// an error (0 if none has).
func (t *Trainer) FailedStep() int { return t.failedIter }

// CheckConsistent verifies that all replicas hold bit-identical parameter
// vectors (exact ==, no tolerance). The synchronous update scheme preserves
// this invariant, so any difference indicates a broken collective or an
// optimizer that diverged from its peers.
func (t *Trainer) CheckConsistent() error {
	ref := t.Reps[0].Model.Params()
	for r := 1; r < len(t.Reps); r++ {
		p := t.Reps[r].Model.Params()
		if len(p) != len(ref) {
			return fmt.Errorf("replica %d has %d parameters, replica 0 has %d", r, len(p), len(ref))
		}
		for i := range ref {
			if p[i] != ref[i] {
				return fmt.Errorf("replica %d parameter %d = %v, replica 0 has %v",
					r, i, p[i], ref[i])
			}
		}
	}
	return nil
}

// stopwatch accumulates phase durations on the timed replica and is a no-op
// everywhere else.
type stopwatch struct {
	on   bool
	last time.Time
}

func startWatch(on bool) stopwatch {
	sw := stopwatch{on: on}
	if on {
		sw.last = time.Now()
	}
	return sw
}

func (s *stopwatch) lap(d *time.Duration) {
	if !s.on {
		return
	}
	now := time.Now()
	*d += now.Sub(s.last)
	s.last = now
}

// replicaStep runs one replica's share of an iteration: sample, evaluate
// local energies, form the gradient contribution, synchronize, update. A
// non-nil error means a collective failed (peer lost, group aborted, or
// this rank killed by fault injection); the replica commits NO state in
// that case — the parameter update is the last action of the step and runs
// only after every collective has succeeded.
func (t *Trainer) replicaStep(r int) error {
	rep, st := t.Reps[r], t.state[r]
	sw := startWatch(r == 0)

	// Rebuild any stale parameter-derived caches on this replica's
	// coordinating goroutine before the sampler or evaluation paths fan
	// out across the replica's workers. Each replica owns a private model,
	// so replicas never contend on each other's caches.
	nn.Prewarm(rep.Model)
	rep.Smp.Sample(st.batch)
	sw.lap(&t.timings.Sample)

	// Intra-replica evaluation fans across the replica's workers; rows are
	// independent, so the values are bitwise identical for every worker
	// count (and for either evaluation path — the batched GEMM dispatch
	// reproduces the scalar bytes exactly).
	if st.bev != nil {
		st.bev.LocalEnergies(t.H, st.batch, st.workers, st.locals)
	} else {
		core.LocalEnergies(t.H, rep.Model, st.batch, st.workers, st.locals)
	}
	// One-pass sums, accumulated in sample order exactly like
	// stats.MeanStd so an L=1 trainer reproduces core.Trainer bitwise.
	var s, s2 float64
	for _, l := range st.locals {
		s += l
		s2 += l * l
	}
	sw.lap(&t.timings.Energy)

	if t.sr {
		if err := t.srStep(rep, st, s, s2, &sw); err != nil {
			return fmt.Errorf("dist: replica %d: %w", r, err)
		}
		return nil
	}

	// REINFORCE path: local covariance-style gradient (Eq. 5) with the
	// local-batch baseline, g = (2/mb) sum_k (l_k - localMean) O_k. The
	// reduction uses core's fixed-block scheme on every path (see
	// core.AddWeightedRows): block boundaries depend only on the sample
	// index, so the reduced bytes are bitwise invariant to the worker
	// count and to the batched/scalar choice.
	localMean := s / float64(t.mb)
	for k := 0; k < t.mb; k++ {
		st.wbuf[k] = 2 * (st.locals[k] - localMean) / float64(t.mb)
	}
	st.acc.Fill(0)
	grad := st.acc[:t.d]
	if st.bev != nil {
		// Batched streaming: O_k rows one core.GradSlabRows slab at a
		// time through the fused GEMM forward; slab boundaries align with
		// the reduction blocks, so the bytes equal a one-shot reduction
		// over a fully materialized O_k batch.
		for lo := 0; lo < t.mb; lo += core.GradSlabRows {
			hi := lo + core.GradSlabRows
			if hi > t.mb {
				hi = t.mb
			}
			slab := &sampler.Batch{N: hi - lo, Sites: st.batch.Sites,
				Bits: st.batch.Bits[lo*st.batch.Sites : hi*st.batch.Sites]}
			rows := &tensor.Batch{N: hi - lo, Dim: t.d, Data: st.slabOws.Data[:(hi-lo)*t.d]}
			st.bev.FillOws(slab, rows)
			core.AddWeightedRows(grad, rows, st.wbuf[lo:hi], st.gparts, st.workers)
		}
	} else if st.ows != nil {
		core.FillOws(st.evals, st.batch, st.ows, st.workers)
		core.AddWeightedRows(grad, st.ows, st.wbuf, st.gparts, st.workers)
	} else {
		// Serial streaming (workers == 1, scalar): the same fixed blocks,
		// folded in ascending order as they complete.
		for lo := 0; lo < t.mb; lo += core.GradBlockSize {
			hi := lo + core.GradBlockSize
			if hi > t.mb {
				hi = t.mb
			}
			st.pbuf.Fill(0)
			for k := lo; k < hi; k++ {
				st.evals[0].GradLogPsi(st.batch.Row(k), st.gbuf)
				st.pbuf.AXPY(st.wbuf[k], st.gbuf)
			}
			grad.Add(st.pbuf)
		}
	}
	st.acc[t.d] = s
	st.acc[t.d+1] = s2
	sw.lap(&t.timings.Grad)

	// One ring all-reduce carries the gradient and the energy statistics.
	if err := st.cm.AllReduceSum(st.acc); err != nil {
		return fmt.Errorf("dist: replica %d: gradient reduction: %w", r, err)
	}
	sw.lap(&t.timings.Sync)

	// Average the summed gradient; every replica performs the identical
	// floating-point operations on identical bytes, so parameters stay
	// bit-identical without any broadcast.
	grad.Scale(1 / float64(len(t.Reps)))
	rep.Opt.Step(rep.Model.Params(), grad)
	nn.InvalidateParams(rep.Model)
	sw.lap(&t.timings.Update)
	return nil
}

// srStep is the distributed stochastic-reconfiguration tail of an
// iteration. Unlike the REINFORCE path it centers the gradient with the
// GLOBAL batch mean, so the update equals serial SR on the pooled batch:
//
//  1. a 2-float all-reduce combines the energy statistics (the global mean
//     must exist before the gradient is formed),
//  2. one packed all-reduce carries [gradient partial | O-row sum] — the
//     latter becomes obar for the Fisher operator,
//  3. the CG solve issues one packed Fisher collective per iteration
//     through the replica's distFisher op.
//
// Every quantity entering the update is reduced to identical bytes first,
// so the bit-identity invariant holds exactly as in the REINFORCE path.
// A failed collective — including one inside the CG solve, surfaced through
// the distFisher's sticky error — returns before the parameter update, so a
// degraded step commits nothing.
func (t *Trainer) srStep(rep Replica, st *replicaState, s, s2 float64, sw *stopwatch) error {
	st.ebuf[0], st.ebuf[1] = s, s2
	if err := st.cm.AllReduceSum(st.ebuf); err != nil {
		return fmt.Errorf("energy reduction: %w", err)
	}
	sw.lap(&t.timings.Sync)
	mean := st.ebuf[0] / t.bf

	if st.bev != nil {
		st.bev.FillOws(st.batch, st.ows)
	} else {
		core.FillOws(st.evals, st.batch, st.ows, st.workers)
	}
	st.gpack.Zero()
	grad := tensor.Vector(st.gpack.Section(0))
	osum := tensor.Vector(st.gpack.Section(1))
	for k := 0; k < t.mb; k++ {
		st.wbuf[k] = 2 * (st.locals[k] - mean) / t.bf
	}
	core.AddWeightedRows(grad, st.ows, st.wbuf, st.gparts, st.workers)
	// The O-row sum stays a plain ordered loop: it must match the serial
	// NewBatchFisher obar accumulation bit-for-bit at L=1.
	for k := 0; k < t.mb; k++ {
		osum.Add(st.ows.Sample(k))
	}
	sw.lap(&t.timings.Grad)

	if err := st.gpack.AllReduce(st.cm); err != nil {
		return fmt.Errorf("gradient reduction: %w", err)
	}
	sw.lap(&t.timings.Sync)

	// obar = (reduced O-row sum)/B, the same arithmetic NewBatchFisher
	// applies serially, so an L=1 trainer matches core.Trainer bitwise.
	copy(st.fisher.obar, osum)
	st.fisher.obar.Scale(1 / t.bf)
	delta := rep.SR.PreconditionOp(st.fisher, grad)
	if err := st.fisher.err; err != nil {
		// A mid-solve collective failed: the solver bailed on the poisoned
		// operator (see distFisher.fail) and delta holds a partial iterate.
		// Commit nothing — the SR warm start is rewound by recovery.
		return fmt.Errorf("fisher solve: %w", err)
	}
	sw.lap(&t.timings.Precond)

	rep.Opt.Step(rep.Model.Params(), delta)
	nn.InvalidateParams(rep.Model)
	sw.lap(&t.timings.Update)
	return nil
}

// Step runs one synchronous data-parallel iteration and returns the global
// batch statistics. iter is echoed into the returned record.
//
// A non-nil error means the group degraded mid-step: at least one replica's
// collective failed (peer lost within the SetCollectiveDeadline bound, rank
// killed by fault injection, or explicit abort) and NO replica committed a
// parameter update — steps are atomic because every collective is
// all-to-all, so no rank can pass the failed collective while another is
// stuck before it, and the update is strictly after the last collective.
// The group is then condemned: further Steps fail fast with the original
// cause, and Recover rebuilds a trainer that resumes bit-identically from
// the pre-step state.
func (t *Trainer) Step(iter int) (core.IterStats, error) {
	if err := t.group.Err(); err != nil {
		// Fail fast WITHOUT taking a new snapshot: the snapshot of the step
		// that failed is the recovery point and must not be overwritten.
		return core.IterStats{}, fmt.Errorf("dist: step %d on condemned group (Recover first): %w", iter, err)
	}
	t.snapshot(iter)
	errs := make([]error, len(t.Reps))
	var wg sync.WaitGroup
	wg.Add(len(t.Reps))
	for r := range t.Reps {
		go func(r int) {
			defer wg.Done()
			errs[r] = t.replicaStep(r)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// Condemn the group even if the failure never reached a deadline
		// (e.g. the killed rank's own immediate error): every rank must see
		// subsequent collectives fail fast.
		t.group.Abort(err)
		if t.failedIter == 0 {
			t.failedIter = iter
			// Record the forensics NOW, while this incarnation's group still
			// owns them: a later Recover/Shrink rebuild starts a fresh group
			// whose DeadRanks/FailedStep describe only its own failure.
			// Reading DeadRanks here is safe — wg.Wait joined the replica
			// goroutines that set the death flags.
			t.history = append(t.history, FailureRecord{Step: iter, Dead: t.group.DeadRanks()})
		}
		return core.IterStats{}, fmt.Errorf("dist: step %d failed: %w", iter, err)
	}
	// Every replica holds the same reduced payload; read replica 0.
	st := t.state[0]
	var mean, v float64
	if t.sr {
		mean = st.ebuf[0] / t.bf
		v = st.ebuf[1]/t.bf - mean*mean
	} else {
		mean = st.acc[t.d] / t.bf
		v = st.acc[t.d+1]/t.bf - mean*mean
	}
	if v < 0 {
		v = 0 // cancellation guard, as in stats.MeanStd
	}
	out := core.IterStats{Iter: iter, Batch: len(t.Reps) * t.mb, Energy: mean, Std: math.Sqrt(v)}
	if t.sr {
		solve := t.Reps[0].SR.LastSolve()
		out.SRIters, out.SRResidual = solve.Iterations, solve.Residual
	}
	return out, nil
}

// snapshot captures every replica's sampler stream position and SR solver
// state at step entry — the rewind point a mid-step failure recovers to.
// It runs serially before the replica goroutines launch, so no capture
// races a draw. No-op on trainers that cannot recover (see notRecoverable).
func (t *Trainer) snapshot(iter int) {
	if t.notRecoverable != nil {
		return
	}
	for r, rep := range t.Reps {
		t.snapSmp[r] = rep.Smp.(sampler.Resumable).Snapshot()
		if rep.SR != nil {
			t.snapSR[r] = rep.SR.CaptureState()
		}
	}
	t.snapIter = iter
	t.snapValid = true
}

// Train runs iters iterations, invoking cb (if non-nil) after each, and
// returns the per-iteration history. Iterations are numbered from 1 as in
// core.Trainer. On a failed step it returns the history of the completed
// steps alongside the error; the failed step committed nothing (see Step)
// and Recover can rebuild a trainer to finish the remaining iterations
// bit-identically.
func (t *Trainer) Train(iters int, cb func(core.IterStats)) ([]core.IterStats, error) {
	hist := make([]core.IterStats, 0, iters)
	for i := 1; i <= iters; i++ {
		s, err := t.Step(i)
		if err != nil {
			return hist, err
		}
		hist = append(hist, s)
		if cb != nil {
			cb(s)
		}
	}
	return hist, nil
}

// Evaluate draws a fresh global batch without updating parameters and
// returns the mean and standard deviation of the local energy. The batch is
// spread across replicas (each sampling from its own stream and evaluating
// with its own workers), and the statistics are combined with the same ring
// collective as training. Error semantics follow Step: a degraded group
// makes every replica's collective return promptly and Evaluate reports the
// cause.
func (t *Trainer) Evaluate(batch int) (mean, std float64, err error) {
	if gerr := t.group.Err(); gerr != nil {
		return 0, 0, fmt.Errorf("dist: evaluate on condemned group (Recover first): %w", gerr)
	}
	if batch <= 0 {
		batch = 1024
	}
	l := len(t.Reps)
	// After the all-reduce every rank holds identical sums; keep rank 0's.
	var reduced tensor.Vector
	errs := make([]error, l)
	var wg sync.WaitGroup
	wg.Add(l)
	for r := 0; r < l; r++ {
		go func(r int) {
			defer wg.Done()
			// Replica r evaluates rows [r*batch/l, (r+1)*batch/l).
			cnt := (r+1)*batch/l - r*batch/l
			acc := tensor.NewVector(3)
			if cnt > 0 {
				b := sampler.NewBatch(cnt, t.H.N())
				t.Reps[r].Smp.Sample(b)
				locals := make([]float64, cnt)
				if t.state[r].bev != nil {
					t.state[r].bev.LocalEnergies(t.H, b, t.state[r].workers, locals)
				} else {
					core.LocalEnergies(t.H, t.Reps[r].Model, b, t.state[r].workers, locals)
				}
				for _, e := range locals {
					acc[0] += e
					acc[1] += e * e
				}
				acc[2] = float64(cnt)
			}
			if rerr := t.state[r].cm.AllReduceSum(acc); rerr != nil {
				errs[r] = fmt.Errorf("dist: replica %d: evaluate reduction: %w", r, rerr)
				return
			}
			if r == 0 {
				reduced = acc
			}
		}(r)
	}
	wg.Wait()
	if jerr := errors.Join(errs...); jerr != nil {
		t.group.Abort(jerr)
		return 0, 0, jerr
	}
	acc := reduced
	if acc[2] == 0 {
		return 0, 0, nil
	}
	mean = acc[0] / acc[2]
	v := acc[1]/acc[2] - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v), nil
}
