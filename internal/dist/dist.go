// Package dist implements the paper's headline contribution: synchronous
// data-parallel VQMC training (Section 3.2, Figures 3-4). L identical model
// replicas — goroutine "devices" — each sample a private mini-batch from
// their own rng stream, evaluate local energies, and form a local
// REINFORCE-style gradient; the replicas then synchronize through a real
// chunked ring all-reduce (package comm) that averages the gradient and
// combines the energy statistics, and every replica applies the identical
// averaged gradient through its own optimizer instance.
//
// Because the ring all-reduce leaves bit-identical bytes in every rank
// (each chunk is reduced on exactly one owner and then circulated by copy,
// never re-summed), and every optimizer starts from the same state, replica
// parameters remain bit-identical across the whole run *by construction* —
// no broadcast resynchronization is ever needed. The test suite pins this
// invariant with exact (==) comparisons, mirroring what package modelpar
// guarantees for the model-parallel dimension.
//
// The effective batch is devices x miniBatch: fixing miniBatch and growing
// the device count grows the batch at near-constant step time, which is the
// mechanism behind the paper's Figure 4 convergence improvements and
// Figure 3 weak scaling.
package dist

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Replica is one data-parallel device: a full copy of the model, a sampler
// drawing from that copy with its own rng stream, and a private optimizer
// instance. All replicas must be constructed with identical initial
// parameters (same init seed); New verifies this.
type Replica struct {
	Model *nn.MADE
	Smp   sampler.Sampler
	Opt   optimizer.Optimizer
}

// replicaState is the per-replica workspace reused across iterations so the
// steady-state loop allocates nothing on the hot path.
type replicaState struct {
	cm     *comm.Comm
	ev     nn.GradEvaluator
	batch  *sampler.Batch
	locals []float64
	gbuf   tensor.Vector // one sample's grad-log-psi
	// acc packs the collective payload: [gradient (d), energy sum, energy
	// sum of squares]. One ring all-reduce per iteration moves everything.
	acc tensor.Vector
}

// Timings decomposes one replica's cumulative wall-clock time by phase —
// the per-iteration breakdown behind the paper's Figure 3 discussion. Sync
// covers the ring all-reduce (and therefore any load-imbalance wait).
type Timings struct {
	Sample, Energy, Grad, Sync, Update time.Duration
}

// Total returns the summed time across phases.
func (t Timings) Total() time.Duration {
	return t.Sample + t.Energy + t.Grad + t.Sync + t.Update
}

// Trainer coordinates synchronous data-parallel VQMC across the replicas.
type Trainer struct {
	H    hamiltonian.Hamiltonian
	Reps []Replica

	mb    int // per-replica mini-batch
	d     int // parameter count
	group *comm.Group
	state []*replicaState
	// timings are replica 0's phase times, representative because the
	// all-reduce barrier equalizes iteration time across replicas.
	timings Timings
}

// New assembles a data-parallel trainer over the replicas. It validates
// that the replica list is nonempty, miniBatch is positive, every replica
// is fully populated, all models share the Hamiltonian's site count and one
// parameter shape, and the initial parameter vectors are bit-identical.
func New(h hamiltonian.Hamiltonian, reps []Replica, miniBatch int) (*Trainer, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("dist: no replicas")
	}
	if miniBatch <= 0 {
		return nil, fmt.Errorf("dist: miniBatch must be positive, got %d", miniBatch)
	}
	n := h.N()
	for r, rep := range reps {
		if rep.Model == nil || rep.Smp == nil || rep.Opt == nil {
			return nil, fmt.Errorf("dist: replica %d is missing a model, sampler, or optimizer", r)
		}
		if rep.Model.NumSites() != n {
			return nil, fmt.Errorf("dist: replica %d has %d sites, Hamiltonian has %d",
				r, rep.Model.NumSites(), n)
		}
		if rep.Model.NumParams() != reps[0].Model.NumParams() {
			return nil, fmt.Errorf("dist: replica %d has %d parameters, replica 0 has %d",
				r, rep.Model.NumParams(), reps[0].Model.NumParams())
		}
	}
	t := &Trainer{
		H:     h,
		Reps:  reps,
		mb:    miniBatch,
		d:     reps[0].Model.NumParams(),
		group: comm.NewGroup(len(reps)),
	}
	if err := t.CheckConsistent(); err != nil {
		return nil, fmt.Errorf("dist: replicas must start from identical parameters: %w", err)
	}
	t.state = make([]*replicaState, len(reps))
	for r, rep := range reps {
		t.state[r] = &replicaState{
			cm:     t.group.Rank(r),
			ev:     rep.Model.NewGradEvaluator(),
			batch:  sampler.NewBatch(miniBatch, n),
			locals: make([]float64, miniBatch),
			gbuf:   tensor.NewVector(t.d),
			acc:    tensor.NewVector(t.d + 2),
		}
	}
	return t, nil
}

// Devices returns the replica count L.
func (t *Trainer) Devices() int { return len(t.Reps) }

// MiniBatch returns the per-replica batch size.
func (t *Trainer) MiniBatch() int { return t.mb }

// EffectiveBatch returns devices x miniBatch, the global samples per step.
func (t *Trainer) EffectiveBatch() int { return len(t.Reps) * t.mb }

// Timings returns replica 0's cumulative per-phase wall-clock times.
func (t *Trainer) Timings() Timings { return t.timings }

// Traffic reports the cumulative all-reduce payload bytes and message count
// summed over replicas — the communication side of the scaling story.
func (t *Trainer) Traffic() (bytes, messages int64) {
	for _, st := range t.state {
		bytes += st.cm.BytesSent()
		messages += st.cm.Messages()
	}
	return bytes, messages
}

// CheckConsistent verifies that all replicas hold bit-identical parameter
// vectors (exact ==, no tolerance). The synchronous update scheme preserves
// this invariant, so any difference indicates a broken collective or an
// optimizer that diverged from its peers.
func (t *Trainer) CheckConsistent() error {
	ref := t.Reps[0].Model.Params()
	for r := 1; r < len(t.Reps); r++ {
		p := t.Reps[r].Model.Params()
		if len(p) != len(ref) {
			return fmt.Errorf("replica %d has %d parameters, replica 0 has %d", r, len(p), len(ref))
		}
		for i := range ref {
			if p[i] != ref[i] {
				return fmt.Errorf("replica %d parameter %d = %v, replica 0 has %v",
					r, i, p[i], ref[i])
			}
		}
	}
	return nil
}

// replicaStep runs one replica's share of an iteration: sample, evaluate
// local energies, form the local gradient, all-reduce, update. On return
// st.acc holds the globally reduced payload (identical bytes on every
// replica): the averaged gradient in [0,d) and the global energy sum and
// sum of squares in the last two slots.
func (t *Trainer) replicaStep(r int) {
	rep, st := t.Reps[r], t.state[r]
	timed := r == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}

	rep.Smp.Sample(st.batch)
	var t1 time.Time
	if timed {
		t1 = time.Now()
		t.timings.Sample += t1.Sub(t0)
	}

	// Each replica is one "device"; intra-replica evaluation is serial
	// (workers=1) because parallelism comes from running L replicas at once.
	core.LocalEnergies(t.H, rep.Model, st.batch, 1, st.locals)
	// One-pass sums, accumulated in sample order exactly like
	// stats.MeanStd so an L=1 trainer reproduces core.Trainer bitwise.
	var s, s2 float64
	for _, l := range st.locals {
		s += l
		s2 += l * l
	}
	localMean := s / float64(t.mb)
	var t2 time.Time
	if timed {
		t2 = time.Now()
		t.timings.Energy += t2.Sub(t1)
	}

	// Local covariance-style gradient (Eq. 5) with the local-batch
	// baseline: g = (2/mb) sum_k (l_k - localMean) O_k. The accumulation
	// order matches core.Trainer's single-worker path.
	st.acc.Fill(0)
	grad := st.acc[:t.d]
	for k := 0; k < t.mb; k++ {
		st.ev.GradLogPsi(st.batch.Row(k), st.gbuf)
		grad.AXPY(2*(st.locals[k]-localMean)/float64(t.mb), st.gbuf)
	}
	st.acc[t.d] = s
	st.acc[t.d+1] = s2
	var t3 time.Time
	if timed {
		t3 = time.Now()
		t.timings.Grad += t3.Sub(t2)
	}

	// One ring all-reduce carries the gradient and the energy statistics.
	st.cm.AllReduceSum(st.acc)
	var t4 time.Time
	if timed {
		t4 = time.Now()
		t.timings.Sync += t4.Sub(t3)
	}

	// Average the summed gradient; every replica performs the identical
	// floating-point operations on identical bytes, so parameters stay
	// bit-identical without any broadcast.
	grad.Scale(1 / float64(len(t.Reps)))
	rep.Opt.Step(rep.Model.Params(), grad)
	if timed {
		t.timings.Update += time.Since(t4)
	}
}

// Step runs one synchronous data-parallel iteration and returns the global
// batch statistics. iter is echoed into the returned record.
func (t *Trainer) Step(iter int) core.IterStats {
	var wg sync.WaitGroup
	wg.Add(len(t.Reps))
	for r := range t.Reps {
		go func(r int) {
			defer wg.Done()
			t.replicaStep(r)
		}(r)
	}
	wg.Wait()
	// Every replica holds the same reduced payload; read replica 0.
	st := t.state[0]
	b := float64(t.EffectiveBatch())
	mean := st.acc[t.d] / b
	v := st.acc[t.d+1]/b - mean*mean
	if v < 0 {
		v = 0 // cancellation guard, as in stats.MeanStd
	}
	return core.IterStats{Iter: iter, Energy: mean, Std: math.Sqrt(v)}
}

// Train runs iters iterations, invoking cb (if non-nil) after each, and
// returns the per-iteration history. Iterations are numbered from 1 as in
// core.Trainer.
func (t *Trainer) Train(iters int, cb func(core.IterStats)) []core.IterStats {
	hist := make([]core.IterStats, 0, iters)
	for i := 1; i <= iters; i++ {
		s := t.Step(i)
		hist = append(hist, s)
		if cb != nil {
			cb(s)
		}
	}
	return hist
}

// Evaluate draws a fresh global batch without updating parameters and
// returns the mean and standard deviation of the local energy. The batch is
// spread across replicas (each sampling from its own stream), and the
// statistics are combined with the same ring collective as training.
func (t *Trainer) Evaluate(batch int) (mean, std float64) {
	if batch <= 0 {
		batch = 1024
	}
	l := len(t.Reps)
	// After the all-reduce every rank holds identical sums; keep rank 0's.
	var reduced tensor.Vector
	var wg sync.WaitGroup
	wg.Add(l)
	for r := 0; r < l; r++ {
		go func(r int) {
			defer wg.Done()
			// Replica r evaluates rows [r*batch/l, (r+1)*batch/l).
			cnt := (r+1)*batch/l - r*batch/l
			acc := tensor.NewVector(3)
			if cnt > 0 {
				b := sampler.NewBatch(cnt, t.H.N())
				t.Reps[r].Smp.Sample(b)
				locals := make([]float64, cnt)
				core.LocalEnergies(t.H, t.Reps[r].Model, b, 1, locals)
				for _, e := range locals {
					acc[0] += e
					acc[1] += e * e
				}
				acc[2] = float64(cnt)
			}
			t.state[r].cm.AllReduceSum(acc)
			if r == 0 {
				reduced = acc
			}
		}(r)
	}
	wg.Wait()
	acc := reduced
	if acc[2] == 0 {
		return 0, 0
	}
	mean = acc[0] / acc[2]
	v := acc[1]/acc[2] - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}
