package dist

// Acceptance suite for the fail-stop recovery path: an injected single-rank
// failure must (a) surface as an error on every survivor within the
// collective deadline — never a hang — and (b) be fully recoverable, with
// the recovered run finishing BIT-IDENTICAL (exact ==, no tolerance) to an
// uninterrupted run. The bit-identity half is the strong claim: recovery is
// not "approximately resumed", it replays the failed step with the exact
// draws, reductions and update the healthy run would have performed.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// recoveryDeadline bounds every collective blocking point in these tests.
// Generous enough for -race on a loaded CI box, small enough that a hang
// regression fails the suite quickly instead of tripping the package
// timeout.
const recoveryDeadline = 250 * time.Millisecond

// madeBuilder is the ReplicaBuilder for MADE-based trainers: a fresh
// autoregressive sampler around the checkpoint-loaded model. The sampler
// seed is deliberately junk — Recover rewinds the replacement to the dead
// rank's exact stream position — and the optimizer/SR fields are likewise
// placeholders Recover overwrites with survivor-derived state.
func madeBuilder(rank int, model Model) (Replica, error) {
	m, ok := model.(*nn.MADE)
	if !ok {
		return Replica{}, errors.New("checkpoint did not round-trip a *MADE")
	}
	return Replica{
		Model: m,
		Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(0xDEAD)),
		Opt:   optimizer.NewSGD(1), // replaced by the survivor clone
	}, nil
}

// rbmBuilder is the ReplicaBuilder for RBM+MCMC trainers; chain count must
// match the dead rank's sampler shape (Restore checks it), everything else
// is overwritten by Recover.
func rbmBuilder(chains int) ReplicaBuilder {
	return func(rank int, model Model) (Replica, error) {
		m, ok := model.(*nn.RBM)
		if !ok {
			return Replica{}, errors.New("checkpoint did not round-trip an *RBM")
		}
		return Replica{
			Model:   m,
			Smp:     sampler.NewMCMC(m, sampler.MCMCConfig{Chains: chains, BurnIn: 20}, rng.New(0xDEAD)),
			Opt:     optimizer.NewSGD(1),
			Workers: 2,
		}, nil
	}
}

// runWithRecovery drives tr for exactly `steps` iterations, recovering (at
// most once) through Recover when a step fails and replaying the failed
// iteration on the rebuilt trainer. Returns the full per-iteration history,
// the final trainer, and the iteration the failure hit (0 if none).
func runWithRecovery(t *testing.T, tr *Trainer, steps int, dir string, build ReplicaBuilder) ([]core.IterStats, *Trainer, int) {
	t.Helper()
	hist := make([]core.IterStats, 0, steps)
	failed := 0
	for step := 1; step <= steps; {
		s, err := tr.Step(step)
		if err == nil {
			hist = append(hist, s)
			step++
			continue
		}
		if failed != 0 {
			t.Fatalf("second failure at step %d after recovering from step %d: %v", step, failed, err)
		}
		failed = step
		if got := tr.FailedStep(); got != step {
			t.Fatalf("FailedStep() = %d, want %d", got, step)
		}
		if tr.GroupErr() == nil {
			t.Fatal("failed step left the group un-condemned")
		}
		if len(tr.DeadRanks()) == 0 {
			t.Fatalf("failed step reported no dead ranks: %v", err)
		}
		nt, rerr := tr.Recover(dir, build)
		if rerr != nil {
			t.Fatalf("Recover after step-%d failure: %v", step, rerr)
		}
		tr = nt // replay the failed step on the rebuilt trainer
	}
	return hist, tr, failed
}

// assertIdenticalRun pins the bit-identity acceptance bound: identical
// iteration statistics (struct ==, covering energy, std and the SR solve
// counters) and exactly equal parameters on every replica.
func assertIdenticalRun(t *testing.T, ref, got []core.IterStats, trRef, trGot *Trainer) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("history length %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("iter %d: recovered stats %+v != uninterrupted %+v", i+1, got[i], ref[i])
		}
	}
	for r := range trRef.Reps {
		pr := trRef.Reps[r].Model.Params()
		pg := trGot.Reps[r].Model.Params()
		for i := range pr {
			if pr[i] != pg[i] {
				t.Fatalf("replica %d param %d: recovered %v != uninterrupted %v (bit-identity broken)",
					r, i, pg[i], pr[i])
			}
		}
	}
	if err := trGot.CheckConsistent(); err != nil {
		t.Fatalf("recovered trainer inconsistent: %v", err)
	}
}

// TestRecoveryBitIdenticalREINFORCE is the tentpole acceptance test on the
// plain REINFORCE path: kill each of rank 0, a middle rank and the last
// rank mid-run; the recovered run must finish bit-identical to an
// uninterrupted one. The REINFORCE step issues exactly one collective per
// rank, so FailAt(victim, k-1) deterministically kills step k.
func TestRecoveryBitIdenticalREINFORCE(t *testing.T) {
	const L, steps, failStep = 4, 24, 10
	ref := buildTrainer(t, 8, 10, L, 8, 101, 102)
	refHist := mustTrain(t, ref, steps)

	for _, victim := range []int{0, 2, L - 1} {
		tr := buildTrainer(t, 8, 10, L, 8, 101, 102)
		tr.SetCollectiveDeadline(recoveryDeadline)
		tr.InjectFailure(victim, failStep-1)
		hist, tr, failed := runWithRecovery(t, tr, steps, "", madeBuilder)
		if failed != failStep {
			t.Fatalf("victim %d: failure hit step %d, want %d", victim, failed, failStep)
		}
		assertIdenticalRun(t, refHist, hist, ref, tr)
	}
}

// TestRecoveryBitIdenticalSR runs the same acceptance bar on both SR
// solvers, where a killed rank poisons a mid-solve Fisher collective: the
// survivors' CG solves bail, the step commits nothing, and the recovered
// run — replacement replica rewound to the dead rank's sampler stream and
// SR warm start — must still be bit-identical. The classic variant also
// exercises the on-disk checkpoint artifact.
func TestRecoveryBitIdenticalSR(t *testing.T) {
	const n, h, mb, steps = 7, 9, 8, 12
	tim := hamiltonian.RandomTIM(n, rng.New(41))
	for _, pipelined := range []bool{false, true} {
		build := buildSRTrainer
		if pipelined {
			build = buildPipelinedSRTrainer
		}
		ref := build(t, tim, n, h, mb, []int{1, 1, 1}, 42, 43)
		refHist := mustTrain(t, ref, steps)

		tr := build(t, tim, n, h, mb, []int{1, 1, 1}, 42, 43)
		tr.SetCollectiveDeadline(recoveryDeadline)
		// The SR schedule has many collectives per step (2 reductions plus
		// every Fisher apply); collective #40 lands mid-run, mid-solve.
		tr.InjectFailure(1, 40)
		dir := ""
		if !pipelined {
			dir = t.TempDir()
		}
		hist, tr, failed := runWithRecovery(t, tr, steps, dir, madeBuilder)
		if failed <= 1 || failed >= steps {
			t.Fatalf("pipelined=%v: failure hit step %d, want mid-run", pipelined, failed)
		}
		assertIdenticalRun(t, refHist, hist, ref, tr)
		if dir != "" {
			// The recovery checkpoint is a durable artifact of the event.
			m, err := filepath.Glob(filepath.Join(dir, "recover-step*.pvq"))
			if err != nil || len(m) != 1 {
				t.Fatalf("recovery checkpoint artifact missing: %v %v", m, err)
			}
			if _, err := nn.LoadFile(m[0]); err != nil {
				t.Fatalf("recovery checkpoint unreadable: %v", err)
			}
		}
	}
}

// TestRecoveryBitIdenticalRBMMCMC covers the second model family end to
// end: RBM replicas with persistent-chain MCMC samplers and SR. The
// replacement's Metropolis chains and rng stream are rewound to the dead
// rank's snapshot, so acceptance decisions replay identically.
func TestRecoveryBitIdenticalRBMMCMC(t *testing.T) {
	const n, h, L, mb, steps = 6, 8, 2, 8, 10
	build := func() *Trainer {
		tim := hamiltonian.RandomTIM(n, rng.New(181))
		streams := rng.New(182).SplitN(L)
		reps := make([]Replica, L)
		for r := 0; r < L; r++ {
			m := nn.NewRBM(n, h, rng.New(183))
			smp := sampler.NewMCMC(m, sampler.MCMCConfig{Chains: 2, BurnIn: 20}, streams[r])
			reps[r] = Replica{Model: m, Smp: smp, Opt: optimizer.NewSGD(0.1),
				SR: optimizer.NewSR(1e-3), Workers: 2}
		}
		tr, err := New(tim, reps, mb)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	ref := build()
	refHist := mustTrain(t, ref, steps)

	tr := build()
	tr.SetCollectiveDeadline(recoveryDeadline)
	tr.InjectFailure(0, 25)
	hist, tr, failed := runWithRecovery(t, tr, steps, "", rbmBuilder(2))
	if failed <= 1 || failed >= steps {
		t.Fatalf("failure hit step %d, want mid-run", failed)
	}
	assertIdenticalRun(t, refHist, hist, ref, tr)
}

// TestStepFailsWithinDeadline is the no-hang regression at the trainer
// level (run under -race in CI): when a rank dies, EVERY surviving
// replica's share of Step must error out within a small multiple of the
// collective deadline — the hang-forever failure class this PR kills.
func TestStepFailsWithinDeadline(t *testing.T) {
	const L = 4
	tr := buildTrainer(t, 8, 10, L, 8, 201, 202)
	tr.SetCollectiveDeadline(recoveryDeadline)
	tr.InjectFailure(2, 3) // dies during step 4
	mustTrain(t, tr, 3)
	start := time.Now()
	_, err := tr.Step(4)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("step with a dead rank returned nil error")
	}
	if !errors.Is(err, comm.ErrRankKilled) {
		t.Fatalf("error does not identify the killed rank: %v", err)
	}
	if !errors.Is(err, comm.ErrPeerLost) {
		t.Fatalf("error does not carry the survivors' peer-loss: %v", err)
	}
	if limit := 20 * recoveryDeadline; elapsed > limit {
		t.Fatalf("failed step took %v, want < %v (survivors must not hang)", elapsed, limit)
	}
	// Condemned group: subsequent calls fail fast, far below the deadline.
	start = time.Now()
	if _, err := tr.Step(5); err == nil {
		t.Fatal("step on condemned group succeeded")
	}
	if _, _, err := tr.Evaluate(64); err == nil {
		t.Fatal("evaluate on condemned group succeeded")
	}
	if elapsed := time.Since(start); elapsed > recoveryDeadline {
		t.Fatalf("fail-fast path took %v", elapsed)
	}
	if got := tr.DeadRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DeadRanks() = %v, want [2]", got)
	}
}

// TestRecoverGuards exercises every refusal path of Recover.
func TestRecoverGuards(t *testing.T) {
	// Healthy group: nothing to recover from.
	tr := buildTrainer(t, 6, 8, 2, 4, 301, 302)
	mustTrain(t, tr, 2)
	if _, err := tr.Recover("", madeBuilder); err == nil {
		t.Fatal("Recover on a healthy trainer succeeded")
	}

	// Non-resumable samplers (playback harness): recovery must refuse with
	// the reason recorded at construction.
	tim := hamiltonian.RandomTIM(6, rng.New(77))
	_, _, rec := runSerialSR(t, tim, 6, 10, 8, 4)
	pb := buildSRPlayback(t, tim, rec, 6, 10, 2, 4)
	pb.SetCollectiveDeadline(recoveryDeadline)
	pb.InjectFailure(1, 5)
	if _, err := pb.Train(4, nil); err == nil {
		t.Fatal("injected failure did not surface")
	}
	if _, err := pb.Recover("", madeBuilder); err == nil {
		t.Fatal("Recover with non-resumable samplers succeeded")
	}

	// Condemned before any Step: no snapshot to rewind to.
	tr2 := buildTrainer(t, 6, 8, 2, 4, 303, 304)
	tr2.SetCollectiveDeadline(recoveryDeadline)
	tr2.InjectFailure(0, 0)
	if _, _, err := tr2.Evaluate(16); err == nil {
		t.Fatal("evaluate with dead rank succeeded")
	}
	if _, err := tr2.Recover("", madeBuilder); err == nil {
		t.Fatal("Recover without a step snapshot succeeded")
	}

	// Aborted without a dead rank (straggler past the deadline): there is
	// no replica to replace, so Recover must refuse rather than guess.
	tr3 := buildTrainer(t, 6, 8, 2, 4, 305, 306)
	tr3.SetCollectiveDeadline(recoveryDeadline)
	tr3.InjectStraggler(1, time.Hour)
	if _, err := tr3.Train(2, nil); err == nil {
		t.Fatal("straggler past the deadline did not surface")
	}
	if len(tr3.DeadRanks()) != 0 {
		t.Fatalf("straggler misreported as dead: %v", tr3.DeadRanks())
	}
	if _, err := tr3.Recover("", madeBuilder); err == nil {
		t.Fatal("Recover with no dead rank succeeded")
	}
}

// TestCollectivesAggregateAcrossRanks pins the repaired accounting: the
// Collectives totals are the SUM over ranks (L x the per-rank count in a
// healthy run), every rank's view is identical, and CollectivesBalanced
// agrees — so a silent schedule divergence can no longer hide behind a
// rank-0-only readout.
func TestCollectivesAggregateAcrossRanks(t *testing.T) {
	const L, steps = 3, 6
	tr := buildTrainer(t, 8, 10, L, 8, 401, 402)
	mustTrain(t, tr, steps)
	per := tr.CollectivesByRank()
	if len(per) != L {
		t.Fatalf("CollectivesByRank returned %d rows, want %d", len(per), L)
	}
	for r := 1; r < L; r++ {
		if per[r] != per[0] {
			t.Fatalf("rank %d collectives %v != rank 0 %v", r, per[r], per[0])
		}
	}
	if per[0][0] != steps { // one blocking reduction per REINFORCE step
		t.Fatalf("per-rank blocking collectives %d, want %d", per[0][0], steps)
	}
	sync, async := tr.Collectives()
	if sync != int64(L)*per[0][0] || async != int64(L)*per[0][1] {
		t.Fatalf("Collectives() = (%d, %d), want L x per-rank (%d, %d)",
			sync, async, int64(L)*per[0][0], int64(L)*per[0][1])
	}
	if err := tr.CollectivesBalanced(); err != nil {
		t.Fatalf("healthy trainer reported unbalanced collectives: %v", err)
	}
}

// TestRecoveryCheckpointDirErrors: an unwritable checkpoint directory must
// fail Recover cleanly (survivors intact), not corrupt anything.
func TestRecoveryCheckpointDirErrors(t *testing.T) {
	const L, steps = 2, 6
	tr := buildTrainer(t, 6, 8, L, 4, 501, 502)
	tr.SetCollectiveDeadline(recoveryDeadline)
	tr.InjectFailure(1, 2)
	if _, err := tr.Train(steps, nil); err == nil {
		t.Fatal("injected failure did not surface")
	}
	bogus := filepath.Join(t.TempDir(), "does", "not", "exist")
	if _, err := tr.Recover(bogus, madeBuilder); err == nil {
		t.Fatal("Recover into a nonexistent directory succeeded")
	}
	if _, err := os.Stat(bogus); !os.IsNotExist(err) {
		t.Fatalf("failed Recover created the directory: %v", err)
	}
	// The trainer is still condemned and still recoverable elsewhere.
	if nt, err := tr.Recover(t.TempDir(), madeBuilder); err != nil {
		t.Fatalf("Recover after a failed attempt: %v", err)
	} else if err := nt.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}
