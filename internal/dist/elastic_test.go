package dist

// Acceptance suite for elastic membership. The doctrine under test: a
// shrunken trainer is a LEGAL SMALLER RUN — bit-identical (exact ==, no
// tolerance) to a fresh L−k trainer constructed from the survivors'
// parameters, optimizer state, and sampler stream positions — and a grown
// trainer is a legal larger run from the admission point. The reference
// trainers here are assembled literally that way: New() over the surviving
// (or augmented) replica structs of an uninterrupted run.

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// shrinkReference builds the doctrine's reference run for a shrink event:
// an uninterrupted L-rank trainer stepped through failStep-1, then a FRESH
// trainer assembled from the survivors' replica structs (their parameters,
// optimizer state, and sampler positions as they stand), stepped from
// failStep through steps. Returns the combined history and the final
// trainer.
func shrinkReference(t *testing.T, ref *Trainer, deadSet map[int]bool, failStep, steps int) ([]core.IterStats, *Trainer) {
	t.Helper()
	hist := make([]core.IterStats, 0, steps)
	for i := 1; i < failStep; i++ {
		hist = append(hist, mustStep(t, ref, i))
	}
	var reps []Replica
	for r := range ref.Reps {
		if !deadSet[r] {
			reps = append(reps, ref.Reps[r])
		}
	}
	small, err := New(ref.H, reps, ref.MiniBatch())
	if err != nil {
		t.Fatalf("assembling reference L-k trainer: %v", err)
	}
	for i := failStep; i <= steps; i++ {
		hist = append(hist, mustStep(t, small, i))
	}
	return hist, small
}

// runShrink drives tr into its scripted failure at failStep, shrinks, and
// replays/continues through steps. Returns the combined history and the
// shrunken trainer.
func runShrink(t *testing.T, tr *Trainer, failStep, steps int) ([]core.IterStats, *Trainer) {
	t.Helper()
	hist := make([]core.IterStats, 0, steps)
	for i := 1; i < failStep; i++ {
		hist = append(hist, mustStep(t, tr, i))
	}
	if _, err := tr.Step(failStep); err == nil {
		t.Fatalf("scripted failure at step %d did not surface", failStep)
	}
	nt, err := tr.Shrink()
	if err != nil {
		t.Fatalf("Shrink after step-%d failure: %v", failStep, err)
	}
	for i := failStep; i <= steps; i++ {
		hist = append(hist, mustStep(t, nt, i))
	}
	return hist, nt
}

// TestShrinkBitIdenticalREINFORCE is the tentpole acceptance test on the
// REINFORCE path: kill rank 0, a middle rank, or the last rank of an L=4
// trainer mid-run, shrink to the three survivors, and demand the
// continuation be bit-identical to a fresh 3-replica trainer built from
// the survivors' state — including the honestly reduced IterStats.Batch.
func TestShrinkBitIdenticalREINFORCE(t *testing.T) {
	const L, mb, steps, failStep = 4, 8, 24, 10
	for _, victim := range []int{0, 2, L - 1} {
		tr := buildTrainer(t, 8, 10, L, mb, 101, 102)
		tr.SetCollectiveDeadline(recoveryDeadline)
		tr.InjectFailure(victim, failStep-1) // one collective per rank per step
		hist, tr := runShrink(t, tr, failStep, steps)

		ref := buildTrainer(t, 8, 10, L, mb, 101, 102)
		refHist, refSmall := shrinkReference(t, ref, map[int]bool{victim: true}, failStep, steps)

		assertIdenticalRun(t, refHist, hist, refSmall, tr)
		if got := tr.EffectiveBatch(); got != (L-1)*mb {
			t.Fatalf("victim %d: EffectiveBatch() = %d after shrink, want %d", victim, got, (L-1)*mb)
		}
		for i, s := range hist {
			want := L * mb
			if i+1 >= failStep {
				want = (L - 1) * mb
			}
			if s.Batch != want {
				t.Fatalf("victim %d: iter %d reports batch %d, want %d", victim, i+1, s.Batch, want)
			}
		}
	}
}

// TestShrinkBitIdenticalSR runs the same acceptance bar under distributed
// stochastic reconfiguration, on both the classic and pipelined solvers: a
// rank killed mid-CG-solve poisons the step, the survivors rewind their
// samplers AND their SR warm starts, and the shrunken continuation — whose
// Fisher solve now normalizes by the smaller global batch — must match the
// fresh L−1 trainer bit-for-bit, CG solve counters included.
func TestShrinkBitIdenticalSR(t *testing.T) {
	const n, h, mb, steps = 7, 9, 8, 12
	tim := hamiltonian.RandomTIM(n, rng.New(41))
	for _, pipelined := range []bool{false, true} {
		build := buildSRTrainer
		if pipelined {
			build = buildPipelinedSRTrainer
		}
		tr := build(t, tim, n, h, mb, []int{1, 1, 1}, 42, 43)
		tr.SetCollectiveDeadline(recoveryDeadline)
		// Collective #40 lands mid-run, mid-solve (the SR schedule issues
		// 2 reductions plus every Fisher apply per step).
		tr.InjectFailure(1, 40)
		var hist []core.IterStats
		failStep := 0
		for i := 1; i <= steps; i++ {
			s, err := tr.Step(i)
			if err != nil {
				failStep = i
				break
			}
			hist = append(hist, s)
		}
		if failStep <= 1 || failStep >= steps {
			t.Fatalf("pipelined=%v: failure hit step %d, want mid-run", pipelined, failStep)
		}
		nt, err := tr.Shrink()
		if err != nil {
			t.Fatalf("pipelined=%v: Shrink: %v", pipelined, err)
		}
		for i := failStep; i <= steps; i++ {
			hist = append(hist, mustStep(t, nt, i))
		}

		ref := build(t, tim, n, h, mb, []int{1, 1, 1}, 42, 43)
		refHist, refSmall := shrinkReference(t, ref, map[int]bool{1: true}, failStep, steps)
		assertIdenticalRun(t, refHist, hist, refSmall, nt)
	}
}

// TestMultiRankDeathShrink: two ranks dying at the same collective must
// leave complete forensics and a shrinkable 2-survivor trainer whose
// continuation is the legal L=2 run.
func TestMultiRankDeathShrink(t *testing.T) {
	const L, mb, steps, failStep = 4, 8, 16, 6
	tr := buildTrainer(t, 8, 10, L, mb, 111, 112)
	tr.SetCollectiveDeadline(recoveryDeadline)
	tr.InjectFailure(1, failStep-1)
	tr.InjectFailure(2, failStep-1)
	hist, tr := runShrink(t, tr, failStep, steps)

	if dead := tr.FailureHistory(); len(dead) != 1 || dead[0].Step != failStep ||
		len(dead[0].Dead) != 2 || dead[0].Dead[0] != 1 || dead[0].Dead[1] != 2 {
		t.Fatalf("FailureHistory() = %+v, want one record {%d [1 2]}", dead, failStep)
	}
	ref := buildTrainer(t, 8, 10, L, mb, 111, 112)
	refHist, refSmall := shrinkReference(t, ref, map[int]bool{1: true, 2: true}, failStep, steps)
	assertIdenticalRun(t, refHist, hist, refSmall, tr)
	if got := tr.EffectiveBatch(); got != 2*mb {
		t.Fatalf("EffectiveBatch() = %d after double shrink, want %d", got, 2*mb)
	}
}

// TestGrowBitIdenticalREINFORCE pins the growth doctrine: admitting a rank
// to a healthy L=2 trainer yields a legal L=3 run — bit-identical to a
// fresh 3-replica trainer built from the two live replicas plus a replica
// holding the checkpointed parameters, a clone of the live optimizer
// state, and the same fresh sampler stream.
func TestGrowBitIdenticalREINFORCE(t *testing.T) {
	const L, mb, preSteps, postSteps = 2, 8, 6, 12
	const newSeed = 0xBEEF

	grownBuilder := func(rank int, model Model) (Replica, error) {
		m, ok := model.(*nn.MADE)
		if !ok {
			return Replica{}, errors.New("checkpoint did not round-trip a *MADE")
		}
		return Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(newSeed)),
			Opt:   optimizer.NewSGD(1), // replaced by the rank-0 clone
		}, nil
	}

	tr := buildTrainer(t, 8, 10, L, mb, 121, 122)
	var hist []core.IterStats
	for i := 1; i <= preSteps; i++ {
		hist = append(hist, mustStep(t, tr, i))
	}
	dir := t.TempDir()
	grown, err := tr.Grow(dir, 1, grownBuilder)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if got := grown.EffectiveBatch(); got != (L+1)*mb {
		t.Fatalf("EffectiveBatch() = %d after grow, want %d", got, (L+1)*mb)
	}
	for i := preSteps + 1; i <= postSteps; i++ {
		hist = append(hist, mustStep(t, grown, i))
	}
	// The growth checkpoint is a durable artifact of the admission.
	if m, err := filepath.Glob(filepath.Join(dir, "grow-step*.pvq")); err != nil || len(m) != 1 {
		t.Fatalf("growth checkpoint artifact missing: %v %v", m, err)
	}

	// Reference: an identical healthy run, manually augmented to L+1 with
	// exactly the state Grow transplants.
	ref := buildTrainer(t, 8, 10, L, mb, 121, 122)
	var refHist []core.IterStats
	for i := 1; i <= preSteps; i++ {
		refHist = append(refHist, mustStep(t, ref, i))
	}
	m3 := nn.NewMADE(8, 10, rng.New(999)) // params overwritten below
	copy(m3.Params(), ref.Reps[0].Model.Params())
	nn.InvalidateParams(m3)
	opt3, err := optimizer.CloneOptimizerState(ref.Reps[0].Opt)
	if err != nil {
		t.Fatal(err)
	}
	reps := append(append([]Replica(nil), ref.Reps...), Replica{
		Model: m3,
		Smp:   sampler.NewAutoMADE(m3, true, 1, rng.New(newSeed)),
		Opt:   opt3,
	})
	refGrown, err := New(ref.H, reps, mb)
	if err != nil {
		t.Fatalf("assembling reference L+1 trainer: %v", err)
	}
	for i := preSteps + 1; i <= postSteps; i++ {
		refHist = append(refHist, mustStep(t, refGrown, i))
	}
	assertIdenticalRun(t, refHist, hist, refGrown, grown)
}

// TestGrowBitIdenticalSR covers the SR warm-start transplant: the admitted
// rank must enter the lockstep CG with rank 0's exact warm start, or the
// first post-grow solve diverges across ranks.
func TestGrowBitIdenticalSR(t *testing.T) {
	const n, h, mb, preSteps, postSteps = 7, 9, 8, 5, 10
	const newSeed = 0xF00D
	tim := hamiltonian.RandomTIM(n, rng.New(51))

	grownBuilder := func(rank int, model Model) (Replica, error) {
		m := model.(*nn.MADE)
		return Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(newSeed)),
			Opt:   optimizer.NewSGD(1),
		}, nil
	}

	tr := buildSRTrainer(t, tim, n, h, mb, []int{1, 1}, 52, 53)
	var hist []core.IterStats
	for i := 1; i <= preSteps; i++ {
		hist = append(hist, mustStep(t, tr, i))
	}
	grown, err := tr.Grow("", 1, grownBuilder)
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	for i := preSteps + 1; i <= postSteps; i++ {
		hist = append(hist, mustStep(t, grown, i))
	}

	ref := buildSRTrainer(t, tim, n, h, mb, []int{1, 1}, 52, 53)
	var refHist []core.IterStats
	for i := 1; i <= preSteps; i++ {
		refHist = append(refHist, mustStep(t, ref, i))
	}
	m3 := nn.NewMADE(n, h, rng.New(999))
	copy(m3.Params(), ref.Reps[0].Model.Params())
	nn.InvalidateParams(m3)
	opt3, err := optimizer.CloneOptimizerState(ref.Reps[0].Opt)
	if err != nil {
		t.Fatal(err)
	}
	sr3 := ref.Reps[0].SR.Clone()
	sr3.RestoreState(ref.Reps[0].SR.CaptureState())
	reps := append(append([]Replica(nil), ref.Reps...), Replica{
		Model: m3,
		Smp:   sampler.NewAutoMADE(m3, true, 1, rng.New(newSeed)),
		Opt:   opt3,
		SR:    sr3,
	})
	refGrown, err := New(ref.H, reps, mb)
	if err != nil {
		t.Fatalf("assembling reference L+1 SR trainer: %v", err)
	}
	for i := preSteps + 1; i <= postSteps; i++ {
		refHist = append(refHist, mustStep(t, refGrown, i))
	}
	assertIdenticalRun(t, refHist, hist, refGrown, grown)
}

// TestForensicsStableAcrossConsecutiveFailures is the regression the
// elastic layer depends on: a second failure observed on the REBUILT
// trainer must not clobber the first failure's DeadRanks/FailedStep (each
// incarnation owns its own group), and FailureHistory must accumulate both
// records across the rebuild.
func TestForensicsStableAcrossConsecutiveFailures(t *testing.T) {
	const L, mb, f1, f2 = 4, 8, 4, 7
	plan := comm.NewFaultPlan().
		Generation(comm.FaultSpec{Rank: 1, After: f1 - 1}).
		// The rebuilt trainer replays step f1, so step f2 is its
		// (f2-f1+1)-th collective per rank.
		Generation(comm.FaultSpec{Rank: 2, After: f2 - f1})
	tr := buildTrainer(t, 8, 10, L, mb, 131, 132)
	tr.SetCollectiveDeadline(recoveryDeadline)
	tr.SetFaultPlan(plan)

	for i := 1; i < f1; i++ {
		mustStep(t, tr, i)
	}
	if _, err := tr.Step(f1); err == nil {
		t.Fatal("first scripted failure did not surface")
	}
	if got := tr.DeadRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first failure DeadRanks() = %v, want [1]", got)
	}
	if got := tr.FailedStep(); got != f1 {
		t.Fatalf("first failure FailedStep() = %d, want %d", got, f1)
	}

	nt, err := tr.Recover("", madeBuilder)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for i := f1; i < f2; i++ {
		mustStep(t, nt, i)
	}
	if _, err := nt.Step(f2); err == nil {
		t.Fatal("second scripted failure (armed by the fault plan) did not surface")
	}

	// The first incarnation's forensics are untouched by the second failure.
	if got := tr.DeadRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first incarnation DeadRanks() clobbered: %v, want [1]", got)
	}
	if got := tr.FailedStep(); got != f1 {
		t.Fatalf("first incarnation FailedStep() clobbered: %d, want %d", got, f1)
	}
	// The second incarnation reports its own failure...
	if got := nt.DeadRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("second incarnation DeadRanks() = %v, want [2]", got)
	}
	if got := nt.FailedStep(); got != f2 {
		t.Fatalf("second incarnation FailedStep() = %d, want %d", got, f2)
	}
	// ...and the cumulative history carries both, in order.
	histRecs := nt.FailureHistory()
	if len(histRecs) != 2 ||
		histRecs[0].Step != f1 || len(histRecs[0].Dead) != 1 || histRecs[0].Dead[0] != 1 ||
		histRecs[1].Step != f2 || len(histRecs[1].Dead) != 1 || histRecs[1].Dead[0] != 2 {
		t.Fatalf("FailureHistory() = %+v, want [{%d [1]} {%d [2]}]", histRecs, f1, f2)
	}
	// A further rebuild still carries the full record.
	small, err := nt.Shrink()
	if err != nil {
		t.Fatalf("Shrink after second failure: %v", err)
	}
	if got := small.FailureHistory(); len(got) != 2 {
		t.Fatalf("shrunken trainer FailureHistory() lost records: %+v", got)
	}
	mustStep(t, small, f2) // the shrunken trainer is live
}

// TestElasticGuards exercises every refusal path of Shrink and Grow.
func TestElasticGuards(t *testing.T) {
	// Shrink on a healthy trainer.
	tr := buildTrainer(t, 6, 8, 2, 4, 141, 142)
	mustTrain(t, tr, 2)
	if _, err := tr.Shrink(); err == nil {
		t.Fatal("Shrink on a healthy trainer succeeded")
	}
	// Grow refusals on the same healthy trainer: bad count, nil builder.
	if _, err := tr.Grow("", 0, madeBuilder); err == nil {
		t.Fatal("Grow with add=0 succeeded")
	}
	if _, err := tr.Grow("", 1, nil); err == nil {
		t.Fatal("Grow with a nil builder succeeded")
	}

	// Aborted without a dead rank (straggler past the deadline): nothing to
	// drop from the membership.
	tr2 := buildTrainer(t, 6, 8, 2, 4, 143, 144)
	tr2.SetCollectiveDeadline(recoveryDeadline)
	tr2.InjectStraggler(1, time.Hour)
	if _, err := tr2.Train(2, nil); err == nil {
		t.Fatal("straggler past the deadline did not surface")
	}
	if _, err := tr2.Shrink(); err == nil {
		t.Fatal("Shrink with no dead rank succeeded")
	}
	// Grow on a condemned trainer.
	if _, err := tr2.Grow("", 1, madeBuilder); err == nil {
		t.Fatal("Grow on a condemned trainer succeeded")
	}

	// All ranks dead: no survivors to shrink to.
	tr3 := buildTrainer(t, 6, 8, 2, 4, 145, 146)
	tr3.SetCollectiveDeadline(recoveryDeadline)
	tr3.InjectFailure(0, 1)
	tr3.InjectFailure(1, 1)
	mustTrain(t, tr3, 1)
	if _, err := tr3.Step(2); err == nil {
		t.Fatal("double death did not surface")
	}
	if _, err := tr3.Shrink(); err == nil {
		t.Fatal("Shrink with zero survivors succeeded")
	}

	// Condemned before any Step: no snapshot to rewind to.
	tr4 := buildTrainer(t, 6, 8, 2, 4, 147, 148)
	tr4.SetCollectiveDeadline(recoveryDeadline)
	tr4.InjectFailure(0, 0)
	if _, _, err := tr4.Evaluate(16); err == nil {
		t.Fatal("evaluate with dead rank succeeded")
	}
	if _, err := tr4.Shrink(); err == nil {
		t.Fatal("Shrink without a step snapshot succeeded")
	}

	// Growth checkpoint into an unwritable directory fails cleanly and the
	// trainer remains usable.
	tr5 := buildTrainer(t, 6, 8, 2, 4, 149, 150)
	mustTrain(t, tr5, 2)
	bogus := filepath.Join(t.TempDir(), "does", "not", "exist")
	if _, err := tr5.Grow(bogus, 1, madeBuilder); err == nil {
		t.Fatal("Grow into a nonexistent directory succeeded")
	}
	mustStep(t, tr5, 3)
}
