package dist

// Conformance suite for the evaluation-path doctrine, now that every model
// family (MADE, RBM, NADE, RNN) carries a batched evaluator: for each
// model x Hamiltonian x topology cell, every evaluation mode — scalar,
// batched (EvalAuto), and the full-recompute flip oracle (EvalFullFlip) —
// must produce EXACTLY the same training trajectory (iteration stats and
// final parameters, compared with ==, no tolerance). Distributed cells must
// additionally stay replica-consistent. The file also extends the fail-stop
// recovery acceptance bar (recover_test.go) to the two autoregressive
// families that previously could not checkpoint: a NADE or RNN rank killed
// mid-run must recover bit-identical through the kindNADE/kindRNN
// checkpoint path.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// nadeBuilder is the ReplicaBuilder for NADE-based trainers. Like
// madeBuilder, sampler seed and optimizer are placeholders: Recover rewinds
// the sampler to the dead rank's stream and clones a survivor's optimizer.
func nadeBuilder(rank int, model Model) (Replica, error) {
	m, ok := model.(*nn.NADE)
	if !ok {
		return Replica{}, errors.New("checkpoint did not round-trip a *NADE")
	}
	return Replica{
		Model:   m,
		Smp:     sampler.NewAutoBatched(m.NumSites(), m, 1, rng.New(0xDEAD)),
		Opt:     optimizer.NewSGD(1),
		Workers: 2,
	}, nil
}

// rnnBuilder is the ReplicaBuilder for RNN-based trainers; see nadeBuilder.
func rnnBuilder(rank int, model Model) (Replica, error) {
	m, ok := model.(*nn.RNNWavefunction)
	if !ok {
		return Replica{}, errors.New("checkpoint did not round-trip an *RNNWavefunction")
	}
	return Replica{
		Model:   m,
		Smp:     sampler.NewAutoBatched(m.NumSites(), m, 1, rng.New(0xDEAD)),
		Opt:     optimizer.NewSGD(1),
		Workers: 2,
	}, nil
}

// TestRecoveryBitIdenticalNADE extends the recovery acceptance bar to the
// NADE family, which until this PR could not checkpoint at all: L NADE
// replicas with batched ancestral samplers and SR, one rank killed
// mid-solve, recovered through the kindNADE checkpoint artifact — the run
// must finish bit-identical to an uninterrupted one and the on-disk
// checkpoint must be a loadable NADE.
func TestRecoveryBitIdenticalNADE(t *testing.T) {
	const n, h, L, mb, steps = 7, 6, 3, 8, 12
	build := func() *Trainer {
		tim := hamiltonian.RandomTIM(n, rng.New(611))
		streams := rng.New(612).SplitN(L)
		reps := make([]Replica, L)
		for r := 0; r < L; r++ {
			m := nn.NewNADE(n, h, rng.New(613))
			smp := sampler.NewAutoBatched(n, m, 1, streams[r])
			reps[r] = Replica{Model: m, Smp: smp, Opt: optimizer.NewSGD(0.1),
				SR: optimizer.NewSR(1e-3), Workers: 2}
		}
		tr, err := New(tim, reps, mb)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	ref := build()
	refHist := mustTrain(t, ref, steps)
	// The SR schedule's collective count per step depends on the CG solve,
	// so aim the injection at half the healthy run's per-rank total: the
	// failure lands mid-run, mid-solve, wherever the solver takes it.
	per := ref.CollectivesByRank()
	inject := int(per[1][0]+per[1][1]) / 2

	tr := build()
	tr.SetCollectiveDeadline(recoveryDeadline)
	tr.InjectFailure(1, inject)
	dir := t.TempDir()
	hist, tr, failed := runWithRecovery(t, tr, steps, dir, nadeBuilder)
	if failed <= 1 || failed >= steps {
		t.Fatalf("failure hit step %d, want mid-run", failed)
	}
	assertIdenticalRun(t, refHist, hist, ref, tr)
	m, err := filepath.Glob(filepath.Join(dir, "recover-step*.pvq"))
	if err != nil || len(m) != 1 {
		t.Fatalf("recovery checkpoint artifact missing: %v %v", m, err)
	}
	w, err := nn.LoadFile(m[0])
	if err != nil {
		t.Fatalf("recovery checkpoint unreadable: %v", err)
	}
	if _, ok := w.(*nn.NADE); !ok {
		t.Fatalf("recovery checkpoint decoded as %T, want *nn.NADE", w)
	}
}

// TestRecoveryBitIdenticalRNN is the same bar for the RNN family on the
// plain REINFORCE path, where one collective per step makes the failure
// step deterministic (FailAt(victim, k-1) kills step k exactly).
func TestRecoveryBitIdenticalRNN(t *testing.T) {
	const n, h, L, mb, steps, failStep = 6, 5, 3, 8, 14, 6
	build := func() *Trainer {
		tim := hamiltonian.RandomTIM(n, rng.New(621))
		streams := rng.New(622).SplitN(L)
		reps := make([]Replica, L)
		for r := 0; r < L; r++ {
			m := nn.NewRNN(n, h, rng.New(623))
			smp := sampler.NewAutoBatched(n, m, 1, streams[r])
			reps[r] = Replica{Model: m, Smp: smp, Opt: optimizer.NewSGD(0.1),
				Workers: 2}
		}
		tr, err := New(tim, reps, mb)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	ref := build()
	refHist := mustTrain(t, ref, steps)

	for _, victim := range []int{0, L - 1} {
		tr := build()
		tr.SetCollectiveDeadline(recoveryDeadline)
		tr.InjectFailure(victim, failStep-1)
		hist, tr, failed := runWithRecovery(t, tr, steps, "", rnnBuilder)
		if failed != failStep {
			t.Fatalf("victim %d: failure hit step %d, want %d", victim, failed, failStep)
		}
		assertIdenticalRun(t, refHist, hist, ref, tr)
	}
}

// Conformance-matrix fixtures: one small problem per Hamiltonian family and
// one constructor per model family, all built from pinned seeds so every
// eval mode inside a cell sees exactly the same model, sampler stream and
// Hamiltonian.
const (
	confN     = 6
	confH     = 7
	confMB    = 8
	confSteps = 8
)

type confModel struct {
	name  string
	build func(r *rng.Rand) Model
	// smp returns the sampler matching the eval mode: autoregressive
	// models pair EvalScalar with the scalar incremental sampler and the
	// batched modes with the batched ancestral sampler (the pairing the
	// production dispatch uses); the RBM always samples via MCMC.
	smp func(m Model, mode core.EvalMode, stream *rng.Rand) sampler.Sampler
}

// autoregSampler builds the ancestral sampler for any model implementing
// both the scalar and batched ancestral interfaces.
func autoregSampler(m Model, mode core.EvalMode, stream *rng.Rand) sampler.Sampler {
	if mode == core.EvalScalar {
		ce := m.(interface{ NewIncrementalEvaluator() nn.ConditionalEvaluator })
		return sampler.NewAuto(m.NumSites(), ce.NewIncrementalEvaluator, 1, stream)
	}
	return sampler.NewAutoBatched(m.NumSites(), m.(nn.BatchAncestralBuilder), 1, stream)
}

func mcmcSampler(m Model, _ core.EvalMode, stream *rng.Rand) sampler.Sampler {
	return sampler.NewMCMC(m.(*nn.RBM), sampler.MCMCConfig{Chains: 2, BurnIn: 20}, stream)
}

func confModels() []confModel {
	return []confModel{
		{"made", func(r *rng.Rand) Model { return nn.NewMADE(confN, confH, r) }, autoregSampler},
		{"rbm", func(r *rng.Rand) Model { return nn.NewRBM(confN, confH, r) }, mcmcSampler},
		{"nade", func(r *rng.Rand) Model { return nn.NewNADE(confN, confH, r) }, autoregSampler},
		{"rnn", func(r *rng.Rand) Model { return nn.NewRNN(confN, confH, r) }, autoregSampler},
	}
}

func evalModeName(mode core.EvalMode) string {
	switch mode {
	case core.EvalScalar:
		return "scalar"
	case core.EvalAuto:
		return "batched"
	case core.EvalFullFlip:
		return "fullflip"
	}
	return "unknown"
}

// confRun is one cell-and-mode execution: the per-iteration history plus
// the final parameters of every replica (one row for the serial topology).
type confRun struct {
	hist   []core.IterStats
	params [][]float64
}

// confWorkers is the trainer/replica worker count of the reference cells.
// The Workers axis below varies ONLY this knob: the samplers are built with
// their own worker count pinned at 1, because sampler workers own RNG
// sub-streams and slabs — a sampler-level worker change legitimately changes
// which uniforms each sample consumes, while trainer workers must never
// change anything.
const confWorkers = 2

func confSerial(t *testing.T, mc confModel, ham hamiltonian.Hamiltonian, mode core.EvalMode, workers int) confRun {
	t.Helper()
	m := mc.build(rng.New(703))
	smp := mc.smp(m, mode, rng.New(704))
	tr := core.New(ham, m, smp, optimizer.NewSGD(0.05),
		core.Config{BatchSize: confMB, Workers: workers, Eval: mode})
	hist := tr.Train(confSteps, nil)
	return confRun{hist: hist, params: [][]float64{append([]float64(nil), m.Params()...)}}
}

func confDist(t *testing.T, mc confModel, ham hamiltonian.Hamiltonian, mode core.EvalMode, L, workers int) confRun {
	t.Helper()
	streams := rng.New(705).SplitN(L)
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := mc.build(rng.New(703))
		reps[r] = Replica{Model: m, Smp: mc.smp(m, mode, streams[r]),
			Opt: optimizer.NewSGD(0.05), Workers: workers, Eval: mode}
	}
	tr, err := New(ham, reps, confMB)
	if err != nil {
		t.Fatal(err)
	}
	if mode != core.EvalScalar && tr.state[0].bev == nil {
		t.Fatalf("%s mode %s did not engage the batched evaluator", mc.name, evalModeName(mode))
	}
	hist := mustTrain(t, tr, confSteps)
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("replicas diverged: %v", err)
	}
	out := confRun{hist: hist, params: make([][]float64, L)}
	for r := 0; r < L; r++ {
		out.params[r] = append([]float64(nil), tr.Reps[r].Model.Params()...)
	}
	return out
}

func assertConfEqual(t *testing.T, ref, got confRun, mode core.EvalMode) {
	t.Helper()
	if len(ref.hist) != len(got.hist) {
		t.Fatalf("%s: history length %d, want %d", evalModeName(mode), len(got.hist), len(ref.hist))
	}
	for i := range ref.hist {
		if ref.hist[i] != got.hist[i] {
			t.Fatalf("%s iter %d: %+v != scalar %+v", evalModeName(mode), i, got.hist[i], ref.hist[i])
		}
	}
	for r := range ref.params {
		for i := range ref.params[r] {
			if ref.params[r][i] != got.params[r][i] {
				t.Fatalf("%s replica %d param %d: %v != scalar %v (bit-identity broken)",
					evalModeName(mode), r, i, got.params[r][i], ref.params[r][i])
			}
		}
	}
}

// assertConfEqualWorkers is assertConfEqual with the worker count in the
// failure message, for the Workers-axis cells.
func assertConfEqualWorkers(t *testing.T, ref, got confRun, mode core.EvalMode, workers int) {
	t.Helper()
	if len(ref.hist) != len(got.hist) {
		t.Fatalf("%s workers=%d: history length %d, want %d",
			evalModeName(mode), workers, len(got.hist), len(ref.hist))
	}
	for i := range ref.hist {
		if ref.hist[i] != got.hist[i] {
			t.Fatalf("%s workers=%d iter %d: %+v != reference %+v (worker count perturbed the trajectory)",
				evalModeName(mode), workers, i, got.hist[i], ref.hist[i])
		}
	}
	for r := range ref.params {
		for i := range ref.params[r] {
			if ref.params[r][i] != got.params[r][i] {
				t.Fatalf("%s workers=%d replica %d param %d: %v != reference %v (bit-identity broken)",
					evalModeName(mode), workers, r, i, got.params[r][i], ref.params[r][i])
			}
		}
	}
}

// TestEvalConformanceMatrix is the table-driven conformance suite capping
// the batched-stack work: model {MADE, RBM, NADE, RNN} x Hamiltonian
// {transverse-field Ising, QUBO} x topology {serial trainer, distributed
// L=1, distributed L=3}. Within every cell the scalar path is the
// reference, and the batched path and the full-recompute flip oracle must
// reproduce its trajectory with exact ==. (For the RBM, whose flip cache is
// already its only evaluation path, EvalFullFlip deliberately falls back to
// EvalAuto and the cell pins that fallback.) Topologies are NOT compared to
// each other — they consume sampler streams differently by design.
//
// The Workers axis (confWorkerCounts) then re-runs the scalar and batched
// paths of every cell at trainer/replica worker counts {1, 3, 4, 8} against
// the same workers=2 reference: worker count is a pure throughput knob, so a
// single diverging bit at any width is a doctrine violation. Sampler workers
// stay pinned at 1 throughout — see confWorkers.
var confWorkerCounts = []int{1, 3, 4, 8}

func TestEvalConformanceMatrix(t *testing.T) {
	hams := []struct {
		name  string
		build func() hamiltonian.Hamiltonian
	}{
		{"tim", func() hamiltonian.Hamiltonian { return hamiltonian.RandomTIM(confN, rng.New(701)) }},
		{"qubo", func() hamiltonian.Hamiltonian { return hamiltonian.RandomQUBO(confN, rng.New(702)) }},
	}
	topos := []struct {
		name string
		run  func(t *testing.T, mc confModel, ham hamiltonian.Hamiltonian, mode core.EvalMode, workers int) confRun
	}{
		{"serial", confSerial},
		{"dist1", func(t *testing.T, mc confModel, ham hamiltonian.Hamiltonian, mode core.EvalMode, workers int) confRun {
			return confDist(t, mc, ham, mode, 1, workers)
		}},
		{"dist3", func(t *testing.T, mc confModel, ham hamiltonian.Hamiltonian, mode core.EvalMode, workers int) confRun {
			return confDist(t, mc, ham, mode, 3, workers)
		}},
	}
	for _, mc := range confModels() {
		for _, hc := range hams {
			for _, tc := range topos {
				t.Run(fmt.Sprintf("%s/%s/%s", mc.name, hc.name, tc.name), func(t *testing.T) {
					ham := hc.build()
					ref := tc.run(t, mc, ham, core.EvalScalar, confWorkers)
					for _, mode := range []core.EvalMode{core.EvalAuto, core.EvalFullFlip} {
						assertConfEqual(t, ref, tc.run(t, mc, ham, mode, confWorkers), mode)
					}
					for _, w := range confWorkerCounts {
						for _, mode := range []core.EvalMode{core.EvalScalar, core.EvalAuto} {
							got := tc.run(t, mc, ham, mode, w)
							assertConfEqualWorkers(t, ref, got, mode, w)
						}
					}
				})
			}
		}
	}
}
