package dist

// Checkpoint-based replica replacement with deterministic re-join.
//
// The recovery doctrine rides the trainer's all-or-nothing step semantics:
// a parameter update is the last action of a step and runs only after every
// collective of that step has succeeded, and the all-to-all collectives
// make a mid-step failure stall every rank before that point. So when Step
// returns an error, every surviving replica still holds the previous step's
// parameters and optimizer state bit-for-bit. The only state the failed
// step consumed is (a) the RNG draws each sampler spent on the doomed batch
// and (b) the SR warm-start vectors a bailed CG solve polluted — both of
// which Step snapshotted at entry (see Trainer.snapshot). Recovery
// therefore:
//
//  1. checkpoints a survivor's parameters (atomic nn.SaveFile when given a
//     directory, in-memory otherwise) and reloads them for each dead rank,
//  2. builds a replacement replica per dead rank via the caller's
//     ReplicaBuilder, transplanting a deep copy of a survivor's optimizer
//     state and rewinding the replacement's sampler and SR solver to the
//     DEAD rank's step-entry snapshot — its exact stream position,
//  3. rewinds every survivor's sampler and SR solver to its own snapshot,
//  4. re-assembles a fresh trainer (fresh communicator group) through New,
//     which re-validates the bit-identity invariant across all replicas.
//
// The rebuilt trainer's next Step replays the failed iteration with the
// identical draws, reductions and update the uninterrupted run would have
// executed — the resumed trajectory is bit-identical (exact ==), which the
// recovery test suite pins.

import (
	"bytes"
	"fmt"
	"path/filepath"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// ReplicaBuilder constructs the replacement replica for a dead rank around
// a checkpoint-loaded model. The builder supplies the replica skeleton —
// sampler (any seed; Recover rewinds it to the dead rank's exact stream
// position, so it only needs the same shape: worker/chain count and kind),
// optimizer and SR (both replaced by survivor-derived state), Workers and
// Eval (pure throughput knobs). It must set Model to the model it is given.
type ReplicaBuilder func(rank int, model Model) (Replica, error)

// Recover builds a replacement trainer after a failed Step. dir, when
// non-empty, is where the survivor checkpoint file is written (atomically;
// the file is left behind as the recovery artifact); an empty dir keeps the
// checkpoint in memory. build constructs the replacement replica for each
// dead rank.
//
// The receiving trainer must be condemned (GroupErr non-nil) with at least
// one dead rank, and must have been recoverable from construction: every
// sampler a sampler.Resumable and every optimizer an optimizer.StateCloner.
// The receiver is consumed — its replicas are rewound in place and carried
// into the returned trainer; it must not be stepped again.
func (t *Trainer) Recover(dir string, build ReplicaBuilder) (*Trainer, error) {
	if t.notRecoverable != nil {
		return nil, fmt.Errorf("dist: trainer cannot recover: %w", t.notRecoverable)
	}
	if t.group.Err() == nil {
		return nil, fmt.Errorf("dist: group is healthy; nothing to recover from")
	}
	if !t.snapValid {
		return nil, fmt.Errorf("dist: no step snapshot to recover to (group condemned before any Step?): %w", t.group.Err())
	}
	dead := t.group.DeadRanks()
	if len(dead) == 0 {
		return nil, fmt.Errorf("dist: group aborted without a dead rank (cause: %w); no replica to replace — rebuild manually", t.group.Err())
	}
	deadSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		deadSet[r] = true
	}
	surv := -1
	for r := range t.Reps {
		if !deadSet[r] {
			surv = r
			break
		}
	}
	if surv < 0 {
		return nil, fmt.Errorf("dist: all %d replicas dead; nothing to recover from", len(t.Reps))
	}

	// Checkpoint the survivor's parameters — still the last committed
	// step's bytes — and prepare a loader for the dead ranks.
	loadModel, err := t.checkpointLoader(dir, "recover", surv, t.snapIter)
	if err != nil {
		return nil, fmt.Errorf("dist: recovery checkpoint: %w", err)
	}

	reps := make([]Replica, len(t.Reps))
	for r := range t.Reps {
		if !deadSet[r] {
			// Survivor: rewind its sampler and SR solver to its own
			// step-entry snapshot, undoing the draws and warm-start
			// pollution of the failed step. Parameters and optimizer state
			// were never touched by the failed step and carry over as-is.
			rep := t.Reps[r]
			rep.Smp.(sampler.Resumable).Restore(t.snapSmp[r])
			if rep.SR != nil {
				rep.SR.RestoreState(t.snapSR[r])
			}
			reps[r] = rep
			continue
		}
		model, err := loadModel()
		if err != nil {
			return nil, fmt.Errorf("dist: reloading checkpoint for rank %d: %w", r, err)
		}
		rep, err := build(r, model)
		if err != nil {
			return nil, fmt.Errorf("dist: building replacement replica %d: %w", r, err)
		}
		if rep.Model == nil {
			rep.Model = model
		}
		rs, ok := rep.Smp.(sampler.Resumable)
		if !ok {
			return nil, fmt.Errorf("dist: replacement sampler %T for rank %d is not sampler.Resumable", rep.Smp, r)
		}
		// Position the replacement at the DEAD rank's exact stream state.
		rs.Restore(t.snapSmp[r])
		// Transplant a survivor's optimizer state: all replicas' optimizer
		// states are bit-identical by the synchronous-update invariant, so
		// any survivor's is the dead rank's.
		opt, err := optimizer.CloneOptimizerState(t.Reps[surv].Opt)
		if err != nil {
			return nil, fmt.Errorf("dist: cloning optimizer state for rank %d: %w", r, err)
		}
		rep.Opt = opt
		if t.sr {
			// Fresh SR with the survivor's configuration, rewound to the
			// dead rank's warm start (warm starts are private per replica
			// but also bit-identical across ranks — the lockstep CG updates
			// them with identical arithmetic on identical bytes).
			rep.SR = t.Reps[surv].SR.Clone()
			rep.SR.RestoreState(t.snapSR[r])
		} else {
			rep.SR = nil
		}
		reps[r] = rep
	}

	nt, err := New(t.H, reps, t.mb)
	if err != nil {
		return nil, fmt.Errorf("dist: re-assembling trainer after recovery: %w", err)
	}
	t.carryElastic(nt)
	return nt, nil
}

// carryElastic copies the collective configuration and elastic bookkeeping
// from t onto a rebuilt trainer: the deadline, the simulated link, the
// cumulative failure history, and — when a FaultPlan is attached — its NEXT
// generation of scripted deaths, armed on the fresh group. Faults injected
// directly with InjectFailure are deliberately NOT carried over: a script
// aimed at one incarnation's membership is meaningless on the next.
func (t *Trainer) carryElastic(nt *Trainer) {
	nt.group.SetDeadline(t.group.Deadline())
	if t.link != (comm.Link{}) {
		nt.SetLink(t.link)
	}
	nt.history = append([]FailureRecord(nil), t.history...)
	if t.plan != nil {
		nt.plan = t.plan
		t.plan.Apply(nt.group)
	}
}

// checkpointLoader saves rank src's model — atomically to
// <dir>/<prefix>-step%04d.pvq when dir is non-empty (the file is left
// behind as the durable artifact of the event), in memory otherwise — and
// returns a loader reconstructing an independent copy per call. The binary
// format stores raw float64 bits, so every round trip is exact.
func (t *Trainer) checkpointLoader(dir, prefix string, src, step int) (func() (Model, error), error) {
	if dir != "" {
		path := filepath.Join(dir, fmt.Sprintf("%s-step%04d.pvq", prefix, step))
		if err := nn.SaveFile(path, t.Reps[src].Model); err != nil {
			return nil, err
		}
		return func() (Model, error) { return loadCheckpointModel(nn.LoadFile(path)) }, nil
	}
	var buf bytes.Buffer
	if err := nn.SaveWavefunction(&buf, t.Reps[src].Model); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	return func() (Model, error) {
		return loadCheckpointModel(nn.LoadWavefunction(bytes.NewReader(data)))
	}, nil
}

// loadCheckpointModel narrows a loaded wavefunction to the trainer's Model
// contract.
func loadCheckpointModel(wf nn.Wavefunction, err error) (Model, error) {
	if err != nil {
		return nil, err
	}
	m, ok := wf.(Model)
	if !ok {
		return nil, fmt.Errorf("dist: checkpointed %T does not satisfy dist.Model", wf)
	}
	return m, nil
}
