package dist

// Elastic membership: continuing on the survivors of a failure (Shrink) and
// re-admitting ranks when capacity returns (Grow).
//
// Recover (recover.go) restores the ORIGINAL membership, which preserves
// the strongest possible equivalence — the resumed trajectory is bit-
// identical to the uninterrupted run. But replacement capacity is not
// always available, and a trainer that blocks waiting for a rank it will
// never get is the same hang-forever failure class the bounded-wait
// collectives were built to kill, one layer up. Shrink therefore reworks
// the equivalence doctrine instead of abandoning it:
//
//	A shrunken trainer IS a legal smaller run — its trajectory is
//	bit-identical (exact ==) to a fresh L−k trainer constructed from the
//	survivors' parameters, optimizer state, and sampler stream positions.
//
// That holds for the same reason recovery replay holds: the failed step
// committed nothing (all-or-nothing step semantics), so rewinding each
// survivor's sampler and SR solver to its step-entry snapshot leaves
// exactly the state a fresh L−k trainer would have been handed. Every
// L-dependent constant (the gradient average, the SR batch normalization)
// is derived from the replica count at construction, so the continuation
// is not an approximation of the L-rank run — it is the (L−k)-rank run.
// The global batch changes from L*mb to (L−k)*mb, and EffectiveBatch and
// IterStats.Batch report that honestly.
//
// Grow is the inverse: a HEALTHY trainer admits fresh ranks built around a
// checkpoint of the current parameters, with optimizer state cloned and SR
// warm starts transplanted from rank 0 (bit-identical on every rank by the
// synchronous-update invariant), so the grown trainer is a legal larger run
// from the admission point onward. New ranks sample from their builder's
// own streams — there is no dead rank whose position they must resume.
//
// Neither operation owns the policy of WHEN to shrink, grow, retry or give
// up; that lives in package elastic, which supervises a trainer through a
// whole failure schedule.

import (
	"fmt"

	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// FailureRecord is one failed step's forensics, kept across trainer
// rebuilds (see Trainer.FailureHistory).
type FailureRecord struct {
	// Step is the iteration whose Step call first returned an error on that
	// trainer incarnation.
	Step int
	// Dead lists the ranks whose deaths had fired by then, ascending; empty
	// when the group was condemned without a rank death (explicit abort, or
	// a straggler past the deadline).
	Dead []int
}

// FailureHistory returns one record per failed step, accumulated ACROSS
// Recover/Shrink/Grow rebuilds — unlike DeadRanks and FailedStep, which
// describe only the current trainer incarnation and would otherwise lose
// the first failure's post-mortem the moment a second failure hits the
// rebuilt trainer. The returned slice is a deep copy.
func (t *Trainer) FailureHistory() []FailureRecord {
	out := make([]FailureRecord, len(t.history))
	for i, rec := range t.history {
		out[i] = FailureRecord{Step: rec.Step, Dead: append([]int(nil), rec.Dead...)}
	}
	return out
}

// Shrink re-assembles the trainer over the SURVIVING ranks only, after a
// failed Step condemned the group: a fresh communicator group of size L−k,
// each survivor rewound to its step-entry snapshot exactly as Recover
// rewinds it. The shrunken trainer continues as a legal smaller run (see
// the doctrine above); replaying the failed iteration on it is bit-
// identical to a fresh L−k trainer built from the survivors' state.
//
// The receiver is consumed — surviving replicas are rewound in place and
// carried into the returned trainer; it must not be stepped again. Guards
// mirror Recover: the trainer must be recoverable from construction,
// condemned, snapshotted, and must have at least one dead rank and at
// least one survivor.
func (t *Trainer) Shrink() (*Trainer, error) {
	if t.notRecoverable != nil {
		return nil, fmt.Errorf("dist: trainer cannot shrink: %w", t.notRecoverable)
	}
	if t.group.Err() == nil {
		return nil, fmt.Errorf("dist: group is healthy; nothing to shrink from")
	}
	if !t.snapValid {
		return nil, fmt.Errorf("dist: no step snapshot to rewind to (group condemned before any Step?): %w", t.group.Err())
	}
	dead := t.group.DeadRanks()
	if len(dead) == 0 {
		return nil, fmt.Errorf("dist: group aborted without a dead rank (cause: %w); no membership to shrink", t.group.Err())
	}
	if len(dead) == len(t.Reps) {
		return nil, fmt.Errorf("dist: all %d replicas dead; no survivors to shrink to", len(t.Reps))
	}
	deadSet := make(map[int]bool, len(dead))
	for _, r := range dead {
		deadSet[r] = true
	}
	reps := make([]Replica, 0, len(t.Reps)-len(dead))
	for r := range t.Reps {
		if deadSet[r] {
			continue
		}
		// Rewind the survivor's sampler and SR solver to its own step-entry
		// snapshot, undoing the draws and warm-start pollution of the failed
		// step. Parameters and optimizer state were never touched by the
		// failed step and carry over as-is — exactly the state a fresh
		// (L−k)-rank trainer would be constructed from.
		rep := t.Reps[r]
		rep.Smp.(sampler.Resumable).Restore(t.snapSmp[r])
		if rep.SR != nil {
			rep.SR.RestoreState(t.snapSR[r])
		}
		reps = append(reps, rep)
	}
	nt, err := New(t.H, reps, t.mb)
	if err != nil {
		return nil, fmt.Errorf("dist: re-assembling shrunken trainer: %w", err)
	}
	t.carryElastic(nt)
	return nt, nil
}

// Grow admits add new ranks to a HEALTHY trainer — the re-expansion after a
// shrink, once capacity returns. It reuses the recovery machinery's
// checkpoint path: rank 0's parameters are checkpointed (atomically to
// <dir>/grow-step*.pvq when dir is non-empty, in memory otherwise) and
// reloaded for each admitted rank, build supplies the replica skeleton
// (indexing continues after the current ranks), the optimizer state is a
// deep clone of rank 0's, and under SR the warm start is transplanted from
// rank 0 — warm starts are bit-identical across ranks, so the lockstep CG
// stays in lockstep. Unlike a Recover replacement, an admitted rank keeps
// its builder's sampler stream as-is: there is no dead rank to resume, the
// grown trainer is a legal larger run from this point on, and the global
// batch honestly grows to (L+add)*mb.
//
// The receiver is consumed — its replicas are carried into the returned
// trainer; it must not be stepped again.
func (t *Trainer) Grow(dir string, add int, build ReplicaBuilder) (*Trainer, error) {
	if t.notRecoverable != nil {
		return nil, fmt.Errorf("dist: trainer cannot grow: %w", t.notRecoverable)
	}
	if err := t.group.Err(); err != nil {
		return nil, fmt.Errorf("dist: cannot grow a condemned trainer (Recover or Shrink first): %w", err)
	}
	if add <= 0 {
		return nil, fmt.Errorf("dist: Grow needs a positive rank count, got %d", add)
	}
	if build == nil {
		return nil, fmt.Errorf("dist: Grow needs a ReplicaBuilder for the admitted ranks")
	}
	loadModel, err := t.checkpointLoader(dir, "grow", 0, t.snapIter)
	if err != nil {
		return nil, fmt.Errorf("dist: growth checkpoint: %w", err)
	}
	reps := make([]Replica, len(t.Reps)+add)
	copy(reps, t.Reps)
	for r := len(t.Reps); r < len(reps); r++ {
		model, err := loadModel()
		if err != nil {
			return nil, fmt.Errorf("dist: reloading checkpoint for admitted rank %d: %w", r, err)
		}
		rep, err := build(r, model)
		if err != nil {
			return nil, fmt.Errorf("dist: building admitted replica %d: %w", r, err)
		}
		if rep.Model == nil {
			rep.Model = model
		}
		opt, err := optimizer.CloneOptimizerState(t.Reps[0].Opt)
		if err != nil {
			return nil, fmt.Errorf("dist: cloning optimizer state for admitted rank %d: %w", r, err)
		}
		rep.Opt = opt
		if t.sr {
			rep.SR = t.Reps[0].SR.Clone()
			rep.SR.RestoreState(t.Reps[0].SR.CaptureState())
		} else {
			rep.SR = nil
		}
		reps[r] = rep
	}
	nt, err := New(t.H, reps, t.mb)
	if err != nil {
		return nil, fmt.Errorf("dist: re-assembling grown trainer: %w", err)
	}
	t.carryElastic(nt)
	return nt, nil
}
