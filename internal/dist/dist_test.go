package dist

import (
	"math"
	"strings"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// buildTrainer assembles L replicas with identical init (initSeed) and
// independent sampler streams (streamSeed), matching the construction the
// facade and the experiment harness use.
func buildTrainer(t testing.TB, n, h, L, mb int, initSeed, streamSeed uint64) *Trainer {
	t.Helper()
	tim := hamiltonian.RandomTIM(n, rng.New(77))
	streams := rng.New(streamSeed).SplitN(L)
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(initSeed))
		reps[r] = Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:   optimizer.NewAdam(0.01),
		}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// mustStep, mustTrain and mustEval run the fault-free paths, failing the
// test on any collective error — healthy trainers must never see one.
func mustStep(t testing.TB, tr *Trainer, iter int) core.IterStats {
	t.Helper()
	s, err := tr.Step(iter)
	if err != nil {
		t.Fatalf("Step(%d): %v", iter, err)
	}
	return s
}

func mustTrain(t testing.TB, tr *Trainer, iters int) []core.IterStats {
	t.Helper()
	hist, err := tr.Train(iters, nil)
	if err != nil {
		t.Fatalf("Train(%d): %v", iters, err)
	}
	return hist
}

func mustEval(t testing.TB, tr *Trainer, batch int) (mean, std float64) {
	t.Helper()
	mean, std, err := tr.Evaluate(batch)
	if err != nil {
		t.Fatalf("Evaluate(%d): %v", batch, err)
	}
	return mean, std
}

// TestReplicaBitIdentity pins the package's core invariant: after every one
// of 50 synchronous steps with L=4 replicas, all parameter vectors are
// bit-identical (exact ==, no tolerance).
func TestReplicaBitIdentity(t *testing.T) {
	const L = 4
	tr := buildTrainer(t, 10, 14, L, 8, 3, 4)
	for step := 1; step <= 50; step++ {
		mustStep(t, tr, step)
		ref := tr.Reps[0].Model.Params()
		for r := 1; r < L; r++ {
			p := tr.Reps[r].Model.Params()
			for i := range ref {
				if p[i] != ref[i] {
					t.Fatalf("step %d: replica %d param %d = %v, replica 0 has %v",
						step, r, i, p[i], ref[i])
				}
			}
		}
		if err := tr.CheckConsistent(); err != nil {
			t.Fatalf("step %d: CheckConsistent: %v", step, err)
		}
	}
}

// TestDivergenceIsCaught tests the test: an injected single-ULP-scale
// divergence in one replica must be flagged by CheckConsistent, proving the
// bit-identity check has teeth.
func TestDivergenceIsCaught(t *testing.T) {
	tr := buildTrainer(t, 8, 10, 4, 8, 5, 6)
	tr.Step(1)
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("consistent trainer flagged: %v", err)
	}
	p := tr.Reps[2].Model.Params()
	old := p[3]
	p[3] = math.Nextafter(p[3], math.Inf(1)) // smallest possible divergence
	err := tr.CheckConsistent()
	if err == nil {
		t.Fatal("one-ULP divergence in replica 2 not caught")
	}
	if !strings.Contains(err.Error(), "replica 2") {
		t.Fatalf("error should name the diverged replica: %v", err)
	}
	p[3] = old
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("restored trainer still flagged: %v", err)
	}
}

// TestSingleDeviceEquivalence: a dist trainer with L=1 is the same
// algorithm as core.Trainer — same model init, same rng stream, same batch
// size must give the same energy trajectory.
func TestSingleDeviceEquivalence(t *testing.T) {
	const (
		n, h     = 8, 12
		bs       = 64
		iters    = 30
		initSeed = 9
		smpSeed  = 10
	)
	tim := hamiltonian.RandomTIM(n, rng.New(77))

	mRef := nn.NewMADE(n, h, rng.New(initSeed))
	ref := core.New(tim, mRef,
		sampler.NewAutoMADE(mRef, true, 1, rng.New(smpSeed)),
		optimizer.NewAdam(0.01), core.Config{BatchSize: bs, Workers: 1})
	want := ref.Train(iters, nil)

	mDist := nn.NewMADE(n, h, rng.New(initSeed))
	tr, err := New(tim, []Replica{{
		Model: mDist,
		Smp:   sampler.NewAutoMADE(mDist, true, 1, rng.New(smpSeed)),
		Opt:   optimizer.NewAdam(0.01),
	}}, bs)
	if err != nil {
		t.Fatal(err)
	}
	got := mustTrain(t, tr, iters)

	if len(got) != len(want) {
		t.Fatalf("trajectory length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Iter != want[i].Iter {
			t.Fatalf("iter %d: Iter=%d, want %d", i, got[i].Iter, want[i].Iter)
		}
		if got[i].Energy != want[i].Energy || got[i].Std != want[i].Std {
			t.Fatalf("iter %d: dist (E=%v, s=%v) != core (E=%v, s=%v)",
				i, got[i].Energy, got[i].Std, want[i].Energy, want[i].Std)
		}
	}
	for i, p := range mDist.Params() {
		if p != mRef.Params()[i] {
			t.Fatalf("final param %d: dist %v != core %v", i, p, mRef.Params()[i])
		}
	}
}

// TestTrainImprovesEnergy: a short distributed run on a small TIM must
// lower the energy from its initial value.
func TestTrainImprovesEnergy(t *testing.T) {
	tr := buildTrainer(t, 8, 12, 4, 16, 11, 12)
	hist := mustTrain(t, tr, 80)
	if len(hist) != 80 {
		t.Fatalf("history length %d", len(hist))
	}
	first, last := hist[0].Energy, hist[len(hist)-1].Energy
	if !(last < first) {
		t.Fatalf("energy did not improve: %v -> %v", first, last)
	}
	for i, s := range hist {
		if s.Iter != i+1 {
			t.Fatalf("hist[%d].Iter = %d, want %d", i, s.Iter, i+1)
		}
		if math.IsNaN(s.Energy) || math.IsNaN(s.Std) {
			t.Fatalf("NaN statistics at iteration %d", i+1)
		}
	}
}

// TestEvaluate checks the collective evaluation path, including batches
// smaller than the replica count (some replicas contribute zero samples but
// must still join the collective).
func TestEvaluate(t *testing.T) {
	tr := buildTrainer(t, 8, 12, 4, 8, 13, 14)
	mustTrain(t, tr, 30)
	mean, std := mustEval(t, tr, 256)
	if math.IsNaN(mean) || math.IsNaN(std) || std < 0 {
		t.Fatalf("bad evaluation: mean=%v std=%v", mean, std)
	}
	// TIM ground energy is negative; a trained model should be below zero.
	if mean >= 0 {
		t.Fatalf("trained TIM energy %v should be negative", mean)
	}
	m2, s2 := mustEval(t, tr, 3) // fewer samples than the 4 replicas
	if math.IsNaN(m2) || math.IsNaN(s2) {
		t.Fatalf("tiny batch evaluation: mean=%v std=%v", m2, s2)
	}
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("Evaluate must not perturb parameters: %v", err)
	}
}

// TestNewValidation exercises every constructor error path.
func TestNewValidation(t *testing.T) {
	n := 6
	tim := hamiltonian.RandomTIM(n, rng.New(1))
	mk := func(h int, seed uint64) Replica {
		m := nn.NewMADE(n, h, rng.New(seed))
		return Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(seed+100)),
			Opt:   optimizer.NewAdam(0.01),
		}
	}
	if _, err := New(tim, nil, 4); err == nil {
		t.Fatal("empty replica list should error")
	}
	if _, err := New(tim, []Replica{mk(8, 1)}, 0); err == nil {
		t.Fatal("miniBatch=0 should error")
	}
	if _, err := New(tim, []Replica{mk(8, 1), {}}, 4); err == nil {
		t.Fatal("nil replica fields should error")
	}
	if _, err := New(tim, []Replica{mk(8, 1), mk(10, 1)}, 4); err == nil {
		t.Fatal("mismatched parameter shapes should error")
	}
	if _, err := New(tim, []Replica{mk(8, 1), mk(8, 2)}, 4); err == nil {
		t.Fatal("mismatched initial parameters should error")
	}
	other := nn.NewMADE(n+1, 8, rng.New(1))
	if _, err := New(tim, []Replica{{
		Model: other,
		Smp:   sampler.NewAutoMADE(other, true, 1, rng.New(2)),
		Opt:   optimizer.NewAdam(0.01),
	}}, 4); err == nil {
		t.Fatal("site-count mismatch with Hamiltonian should error")
	}
	tr, err := New(tim, []Replica{mk(8, 1), mk(8, 1)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Devices() != 2 || tr.MiniBatch() != 4 || tr.EffectiveBatch() != 8 {
		t.Fatalf("accessors: L=%d mb=%d eff=%d", tr.Devices(), tr.MiniBatch(), tr.EffectiveBatch())
	}
}

// TestTrafficAccounting: the per-step collective payload of the ring
// all-reduce is 2(L-1)/L of the (d+2)-vector per replica.
func TestTrafficAccounting(t *testing.T) {
	const L, steps = 4, 10
	tr := buildTrainer(t, 8, 12, L, 8, 15, 16)
	mustTrain(t, tr, steps)
	bytes, msgs := tr.Traffic()
	if msgs != int64(L*2*(L-1)*steps) {
		t.Fatalf("messages = %d, want %d", msgs, L*2*(L-1)*steps)
	}
	payload := int64(tr.Reps[0].Model.NumParams() + 2)
	want := int64(steps) * 2 * int64(L-1) * payload * 8 // all L replicas combined
	if bytes < want-int64(steps*L*64) || bytes > want+int64(steps*L*64) {
		t.Fatalf("bytes = %d, want ~%d", bytes, want)
	}
	if tr.Timings().Total() <= 0 {
		t.Fatal("timings not accumulated")
	}
}
