package dist

import (
	"math"
	"strings"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/exact"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// recordingSampler wraps a sampler and snapshots every batch it serves, so
// a serial training run can be replayed shard-by-shard on a distributed
// trainer.
type recordingSampler struct {
	inner sampler.Sampler
	rec   []*sampler.Batch
}

func (r *recordingSampler) Sample(b *sampler.Batch) {
	r.inner.Sample(b)
	clone := sampler.NewBatch(b.N, b.Sites)
	copy(clone.Bits, b.Bits)
	r.rec = append(r.rec, clone)
}

func (r *recordingSampler) Cost() sampler.Cost { return r.inner.Cost() }

// playbackSampler replays shard `rank` (rows [rank*mb, (rank+1)*mb)) of the
// pre-recorded global batches, one per Sample call. Replaying the exact
// serial batches is what makes the distributed-vs-serial comparison
// well-posed: both trainers see the same pooled samples every step.
type playbackSampler struct {
	rec  []*sampler.Batch
	rank int
	step int
}

func (p *playbackSampler) Sample(b *sampler.Batch) {
	g := p.rec[p.step]
	p.step++
	lo := p.rank * b.N * b.Sites
	copy(b.Bits, g.Bits[lo:lo+b.N*b.Sites])
}

func (p *playbackSampler) Cost() sampler.Cost { return sampler.Cost{} }

// runSerialSR trains a serial SR reference on TIM n=6 and returns the
// trainer's model, the per-iteration stats, and the recorded batches.
func runSerialSR(t *testing.T, tim hamiltonian.Hamiltonian, n, h, B, steps int) (*nn.MADE, []core.IterStats, []*sampler.Batch) {
	t.Helper()
	m := nn.NewMADE(n, h, rng.New(21))
	rec := &recordingSampler{inner: sampler.NewAutoMADE(m, true, 1, rng.New(22))}
	sr := tightSR()
	tr := core.New(tim, m, rec, optimizer.NewSGD(0.1), core.Config{
		BatchSize: B, Workers: 1, SR: sr})
	hist := tr.Train(steps, nil)
	return m, hist, rec.rec
}

// buildSRPlayback assembles an L-replica distributed SR trainer whose
// replicas replay shards of the recorded global batches.
func buildSRPlayback(t *testing.T, tim hamiltonian.Hamiltonian, rec []*sampler.Batch, n, h, L, mb int) *Trainer {
	t.Helper()
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(21))
		reps[r] = Replica{
			Model:   m,
			Smp:     &playbackSampler{rec: rec, rank: r},
			Opt:     optimizer.NewSGD(0.1),
			SR:      tightSR(),
			Workers: 1,
		}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// tightSR returns an SR preconditioner whose CG solves run to near machine
// precision. The default Tol (1e-6) is fine for training but too loose for
// the serial-vs-distributed comparison: serial and distributed solves would
// stop at different points inside the 1e-6 ball, swamping the <= 1e-10
// equivalence bound with solver slack instead of collective error.
func tightSR() *optimizer.SR {
	sr := optimizer.NewSR(1e-3)
	sr.Tol = 1e-13
	sr.MaxIter = 1000
	return sr
}

func maxParamDiff(a, b nn.Wavefunction) float64 {
	pa, pb := a.Params(), b.Params()
	var m float64
	for i := range pa {
		if d := math.Abs(pa[i] - pb[i]); d > m {
			m = d
		}
	}
	return m
}

// TestDistSRMatchesSerial is the core numerical-equivalence property of
// distributed stochastic reconfiguration: on L in {1,2,3} replicas holding
// shards of the SAME total batch B, the trained parameters match the serial
// core.Trainer SR run on the pooled batch to <= 1e-10 — and for L=1 the
// whole trajectory (parameters AND iteration statistics, including the CG
// solve counters) is bit-identical, because every floating-point operation
// is performed in the same order.
func TestDistSRMatchesSerial(t *testing.T) {
	const (
		n, h  = 6, 10
		B     = 24
		steps = 12
	)
	tim := hamiltonian.RandomTIM(n, rng.New(77))
	mRef, refHist, rec := runSerialSR(t, tim, n, h, B, steps)

	for _, L := range []int{1, 2, 3} {
		mb := B / L
		if mb*L != B {
			t.Fatalf("L=%d does not divide B=%d", L, B)
		}
		tr := buildSRPlayback(t, tim, rec, n, h, L, mb)
		hist := mustTrain(t, tr, steps)
		if err := tr.CheckConsistent(); err != nil {
			t.Fatalf("L=%d: replicas diverged: %v", L, err)
		}

		diff := maxParamDiff(tr.Reps[0].Model, mRef)
		if L == 1 {
			if diff != 0 {
				t.Fatalf("L=1: parameters not bit-identical to serial SR (max diff %g)", diff)
			}
			for i := range refHist {
				if hist[i] != refHist[i] {
					t.Fatalf("L=1 iter %d: stats %+v != serial %+v", i+1, hist[i], refHist[i])
				}
			}
		} else if diff > 1e-10 {
			t.Fatalf("L=%d: max parameter diff %g vs serial SR, want <= 1e-10", L, diff)
		}
		for i := range refHist {
			if math.Abs(hist[i].Energy-refHist[i].Energy) > 1e-10 {
				t.Fatalf("L=%d iter %d: energy %v vs serial %v", L, i+1, hist[i].Energy, refHist[i].Energy)
			}
			if hist[i].SRIters == 0 {
				t.Fatalf("L=%d iter %d: SR solve stats not reported", L, i+1)
			}
		}
		if L > 1 {
			if applies := tr.FisherApplies(); applies == 0 {
				t.Fatalf("L=%d: no distributed Fisher collectives counted", L)
			}
		}
	}
}

// TestDistSRComparisonHasTeeth injects a single flipped bit into one
// replica's replayed shard and demands the comparison FAIL: the final
// parameters must drift past the 1e-10 tolerance the equivalence test
// enforces. This proves the equivalence test would catch a real divergence
// (a wrong collective, a skipped sample, a mis-centered gradient).
func TestDistSRComparisonHasTeeth(t *testing.T) {
	const (
		n, h  = 6, 10
		B     = 24
		steps = 12
		L     = 2
	)
	tim := hamiltonian.RandomTIM(n, rng.New(77))
	mRef, _, rec := runSerialSR(t, tim, n, h, B, steps)

	// Corrupt one bit of replica 1's shard in the step-3 batch.
	corrupt := make([]*sampler.Batch, len(rec))
	for i, b := range rec {
		c := sampler.NewBatch(b.N, b.Sites)
		copy(c.Bits, b.Bits)
		corrupt[i] = c
	}
	row := corrupt[3].Row(B / L) // first row of replica 1's shard
	row[2] ^= 1

	tr := buildSRPlayback(t, tim, corrupt, n, h, L, B/L)
	mustTrain(t, tr, steps)
	if err := tr.CheckConsistent(); err != nil {
		// Different data must not break replica consistency — it enters
		// through the collectives, identically on every rank.
		t.Fatalf("corrupted data broke replica consistency: %v", err)
	}
	if diff := maxParamDiff(tr.Reps[0].Model, mRef); diff <= 1e-10 {
		t.Fatalf("injected divergence not detected: max parameter diff %g <= 1e-10", diff)
	}
}

// buildSRTrainer assembles an L-replica SR trainer with live autoregressive
// samplers and the given per-replica worker counts.
func buildSRTrainer(t testing.TB, tim hamiltonian.Hamiltonian, n, h, mb int, workers []int, initSeed, streamSeed uint64) *Trainer {
	t.Helper()
	L := len(workers)
	streams := rng.New(streamSeed).SplitN(L)
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(initSeed))
		reps[r] = Replica{
			Model:   m,
			Smp:     sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:     optimizer.NewSGD(0.1),
			SR:      optimizer.NewSR(1e-3),
			Workers: workers[r],
		}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTwoLevelSRRace exercises the full two-level path — 3 replicas x 4
// workers with distributed SR — for 20 steps. Its main value is under `go
// test -race`, where it sweeps the replica goroutines, the intra-replica
// parallel.For workers, and the per-CG-iteration collectives for data
// races.
func TestTwoLevelSRRace(t *testing.T) {
	const n, h, mb, steps = 8, 10, 12, 20
	tim := hamiltonian.RandomTIM(n, rng.New(31))
	tr := buildSRTrainer(t, tim, n, h, mb, []int{4, 4, 4}, 32, 33)
	hist := mustTrain(t, tr, steps)
	if len(hist) != steps {
		t.Fatalf("history length %d", len(hist))
	}
	for _, s := range hist {
		if math.IsNaN(s.Energy) || math.IsNaN(s.Std) {
			t.Fatalf("NaN statistics at iteration %d", s.Iter)
		}
	}
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("two-level SR run broke bit-identity: %v", err)
	}
}

// TestWorkerCountInvariance pins the two-level scheme's core numerical
// property: worker partitioning only changes WHICH goroutine computes each
// independent row (local energies, O_k rows, Fisher sweep columns), never
// the reduction order — so a run with heterogeneous per-replica worker
// counts is bitwise identical to the same run with workers=1 everywhere,
// and the replicas stay bit-identical to each other despite their different
// worker counts.
func TestWorkerCountInvariance(t *testing.T) {
	const n, h, mb, steps = 7, 9, 8, 10
	tim := hamiltonian.RandomTIM(n, rng.New(41))

	serial := buildSRTrainer(t, tim, n, h, mb, []int{1, 1, 1}, 42, 43)
	serialHist := mustTrain(t, serial, steps)

	hetero := buildSRTrainer(t, tim, n, h, mb, []int{1, 2, 5}, 42, 43)
	heteroHist := mustTrain(t, hetero, steps)

	if err := hetero.CheckConsistent(); err != nil {
		t.Fatalf("heterogeneous workers broke replica bit-identity: %v", err)
	}
	if diff := maxParamDiff(serial.Reps[0].Model, hetero.Reps[0].Model); diff != 0 {
		t.Fatalf("worker count changed the trained parameters (max diff %g)", diff)
	}
	for i := range serialHist {
		if serialHist[i] != heteroHist[i] {
			t.Fatalf("iter %d: stats %+v != workers=1 stats %+v", i+1, heteroHist[i], serialHist[i])
		}
	}
}

// TestDistSRConvergesTIM7 is the acceptance bar: distributed SR with L=4
// replicas x 4 workers must converge on TIM n=7 to within 15% of the exact
// ground energy in 50 steps, with replica parameters still bit-identical.
func TestDistSRConvergesTIM7(t *testing.T) {
	const n, h, mb, steps = 7, 14, 32, 50
	tim := hamiltonian.RandomTIM(n, rng.New(51))
	res, err := exact.GroundState(tim, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := buildSRTrainer(t, tim, n, h, mb, []int{4, 4, 4, 4}, 52, 53)
	mustTrain(t, tr, steps)
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("replicas diverged after %d SR steps: %v", steps, err)
	}
	mean, _ := mustEval(t, tr, 1024)
	gap := (mean - res.Energy) / math.Abs(res.Energy)
	if gap > 0.15 {
		t.Fatalf("distributed SR energy %v vs exact %v (gap %.3f > 0.15)", mean, res.Energy, gap)
	}
}

// TestSRValidation exercises the SR-specific constructor error paths.
func TestSRValidation(t *testing.T) {
	const n, h = 6, 8
	tim := hamiltonian.RandomTIM(n, rng.New(1))
	mk := func(seed uint64, sr *optimizer.SR) Replica {
		m := nn.NewMADE(n, h, rng.New(3))
		return Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(seed)),
			Opt:   optimizer.NewSGD(0.1),
			SR:    sr,
		}
	}
	if _, err := New(tim, []Replica{mk(1, optimizer.NewSR(1e-3)), mk(2, nil)}, 4); err == nil {
		t.Fatal("mixed SR presence should error")
	}
	shared := optimizer.NewSR(1e-3)
	if _, err := New(tim, []Replica{mk(1, shared), mk(2, shared)}, 4); err == nil {
		t.Fatal("shared SR instance should error")
	} else if !strings.Contains(err.Error(), "private") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Sharing between two NON-ZERO replicas must be caught too (a pairwise
	// check, not just replica-0 comparisons): concurrent PreconditionOp on
	// one instance would race on the warm-start state.
	if _, err := New(tim, []Replica{mk(1, optimizer.NewSR(1e-3)), mk(2, shared), mk(3, shared)}, 4); err == nil {
		t.Fatal("SR instance shared between replicas 1 and 2 should error")
	} else if !strings.Contains(err.Error(), "replicas 1 and 2") {
		t.Fatalf("unexpected error: %v", err)
	}
	other := optimizer.NewSR(1e-2)
	if _, err := New(tim, []Replica{mk(1, optimizer.NewSR(1e-3)), mk(2, other)}, 4); err == nil {
		t.Fatal("mismatched SR configuration should error")
	}
	tr, err := New(tim, []Replica{mk(1, optimizer.NewSR(1e-3)), mk(2, optimizer.NewSR(1e-3))}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SREnabled() {
		t.Fatal("SREnabled should report true")
	}
}
