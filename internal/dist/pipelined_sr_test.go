package dist

// Record/playback equivalence harness for the PIPELINED distributed SR
// path, mirroring sr_test.go: a serial training run records its batches,
// distributed trainers replay shards of them, and the trained parameters
// are compared — against serial classic SR at the 1e-10 level (Gropp's
// variant is the same Krylov process), and bitwise against serial
// *pipelined* SR at L=1 (identical floating-point order by construction).

import (
	"math"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/exact"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// tightPipelinedSR is tightSR with the pipelined solver selected.
func tightPipelinedSR() *optimizer.SR {
	sr := tightSR()
	sr.Solver = optimizer.SolverPipelined
	return sr
}

// runSerialSRRef trains a serial SR reference (solver selectable) on a TIM
// instance, recording every batch it draws.
func runSerialSRRef(tb testing.TB, tim hamiltonian.Hamiltonian, n, h, B, steps int, sr *optimizer.SR) (*nn.MADE, []core.IterStats, []*sampler.Batch) {
	tb.Helper()
	m := nn.NewMADE(n, h, rng.New(21))
	rec := &recordingSampler{inner: sampler.NewAutoMADE(m, true, 1, rng.New(22))}
	tr := core.New(tim, m, rec, optimizer.NewSGD(0.1), core.Config{
		BatchSize: B, Workers: 1, SR: sr})
	hist := tr.Train(steps, nil)
	return m, hist, rec.rec
}

// replaySerialSR replays previously recorded batches through a fresh serial
// trainer (rank 0 of a 1-shard split is the whole batch), so two serial
// solvers can be compared on identical data.
func replaySerialSR(tb testing.TB, tim hamiltonian.Hamiltonian, rec []*sampler.Batch, n, h, B int, sr *optimizer.SR) (*nn.MADE, []core.IterStats) {
	tb.Helper()
	m := nn.NewMADE(n, h, rng.New(21))
	tr := core.New(tim, m, &playbackSampler{rec: rec, rank: 0}, optimizer.NewSGD(0.1), core.Config{
		BatchSize: B, Workers: 1, SR: sr})
	hist := tr.Train(len(rec), nil)
	return m, hist
}

// buildPipelinedSRPlayback assembles an L-replica distributed trainer with
// the pipelined solver whose replicas replay shards of recorded batches.
func buildPipelinedSRPlayback(tb testing.TB, tim hamiltonian.Hamiltonian, rec []*sampler.Batch, n, h, L, mb int) *Trainer {
	tb.Helper()
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(21))
		reps[r] = Replica{
			Model:   m,
			Smp:     &playbackSampler{rec: rec, rank: r},
			Opt:     optimizer.NewSGD(0.1),
			SR:      tightPipelinedSR(),
			Workers: 1,
		}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// TestPipelinedDistSRMatchesSerial is the numerical-equivalence property of
// the pipelined distributed Fisher solve: on L in {1,2,3} replicas holding
// shards of the SAME total batch, the trained parameters match serial
// classic-CG SR on the pooled batch to <= 1e-10 — and for L=1 the whole
// trajectory is bit-identical to serial PIPELINED SR, because the
// distributed solver performs the identical floating-point operations with
// only the (no-op at L=1) collective spliced in.
func TestPipelinedDistSRMatchesSerial(t *testing.T) {
	const (
		n, h  = 6, 10
		B     = 24
		steps = 12
	)
	tim := hamiltonian.RandomTIM(n, rng.New(77))
	mClassic, classicHist, rec := runSerialSRRef(t, tim, n, h, B, steps, tightSR())
	mPipe, pipeHist := replaySerialSR(t, tim, rec, n, h, B, tightPipelinedSR())

	// The two serial solvers must already agree — otherwise the 1e-10
	// comparisons below test nothing about the distribution.
	if diff := maxParamDiff(mClassic, mPipe); diff > 1e-10 {
		t.Fatalf("serial pipelined SR drifted %g from serial classic SR", diff)
	}

	for _, L := range []int{1, 2, 3} {
		mb := B / L
		if mb*L != B {
			t.Fatalf("L=%d does not divide B=%d", L, B)
		}
		tr := buildPipelinedSRPlayback(t, tim, rec, n, h, L, mb)
		hist := mustTrain(t, tr, steps)
		if err := tr.CheckConsistent(); err != nil {
			t.Fatalf("L=%d: replicas diverged: %v", L, err)
		}

		if L == 1 {
			if diff := maxParamDiff(tr.Reps[0].Model, mPipe); diff != 0 {
				t.Fatalf("L=1: parameters not bit-identical to serial pipelined SR (max diff %g)", diff)
			}
			for i := range pipeHist {
				if hist[i] != pipeHist[i] {
					t.Fatalf("L=1 iter %d: stats %+v != serial pipelined %+v", i+1, hist[i], pipeHist[i])
				}
			}
		}
		if diff := maxParamDiff(tr.Reps[0].Model, mClassic); diff > 1e-10 {
			t.Fatalf("L=%d: max parameter diff %g vs serial classic SR, want <= 1e-10", L, diff)
		}
		for i := range classicHist {
			if math.Abs(hist[i].Energy-classicHist[i].Energy) > 1e-10 {
				t.Fatalf("L=%d iter %d: energy %v vs serial %v", L, i+1, hist[i].Energy, classicHist[i].Energy)
			}
			if hist[i].SRIters == 0 {
				t.Fatalf("L=%d iter %d: SR solve stats not reported", L, i+1)
			}
		}
		// Every Fisher collective of the solve must be non-blocking: per
		// step only the energy and gradient reductions block — on EVERY rank,
		// so the rank-summed count is exactly L x 2 x steps.
		sync, async := tr.Collectives()
		if want := int64(L * 2 * steps); sync != want {
			t.Fatalf("L=%d: %d blocking collectives, want %d (pipelined solve must not block)", L, sync, want)
		}
		if err := tr.CollectivesBalanced(); err != nil {
			t.Fatalf("L=%d: %v", L, err)
		}
		if L > 1 && async == 0 {
			t.Fatalf("L=%d: no non-blocking collectives counted", L)
		}
	}
}

// TestPipelinedDistSRComparisonHasTeeth corrupts one bit of one replica's
// replayed shard and demands the equivalence comparison FAIL, proving the
// 1e-10 bound would catch a real divergence in the pipelined collective
// schedule (a dropped Wait, a stale handle, a mis-packed section).
func TestPipelinedDistSRComparisonHasTeeth(t *testing.T) {
	const (
		n, h  = 6, 10
		B     = 24
		steps = 12
		L     = 2
	)
	tim := hamiltonian.RandomTIM(n, rng.New(77))
	mRef, _, rec := runSerialSRRef(t, tim, n, h, B, steps, tightSR())

	corrupt := make([]*sampler.Batch, len(rec))
	for i, b := range rec {
		c := sampler.NewBatch(b.N, b.Sites)
		copy(c.Bits, b.Bits)
		corrupt[i] = c
	}
	row := corrupt[3].Row(B / L) // first row of replica 1's shard
	row[2] ^= 1

	tr := buildPipelinedSRPlayback(t, tim, corrupt, n, h, L, B/L)
	mustTrain(t, tr, steps)
	if err := tr.CheckConsistent(); err != nil {
		// Different data must not break replica consistency — it enters
		// through the collectives, identically on every rank.
		t.Fatalf("corrupted data broke replica consistency: %v", err)
	}
	if diff := maxParamDiff(tr.Reps[0].Model, mRef); diff <= 1e-10 {
		t.Fatalf("injected divergence not detected: max parameter diff %g <= 1e-10", diff)
	}
}

// buildPipelinedSRTrainer assembles an L-replica pipelined-SR trainer with
// live autoregressive samplers and per-replica worker counts.
func buildPipelinedSRTrainer(tb testing.TB, tim hamiltonian.Hamiltonian, n, h, mb int, workers []int, initSeed, streamSeed uint64) *Trainer {
	tb.Helper()
	L := len(workers)
	streams := rng.New(streamSeed).SplitN(L)
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(initSeed))
		sr := optimizer.NewSR(1e-3)
		sr.Solver = optimizer.SolverPipelined
		reps[r] = Replica{
			Model:   m,
			Smp:     sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:     optimizer.NewSGD(0.1),
			SR:      sr,
			Workers: workers[r],
		}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// TestTwoLevelPipelinedSRRace exercises the full two-level path — 3
// replicas x 4 workers with the pipelined solver — for 20 steps. Its main
// value is under `go test -race`, where it sweeps the replica goroutines,
// the intra-replica parallel.For workers, AND the background goroutines the
// non-blocking collectives run on, all concurrently.
func TestTwoLevelPipelinedSRRace(t *testing.T) {
	const n, h, mb, steps = 8, 10, 12, 20
	tim := hamiltonian.RandomTIM(n, rng.New(31))
	tr := buildPipelinedSRTrainer(t, tim, n, h, mb, []int{4, 4, 4}, 32, 33)
	hist := mustTrain(t, tr, steps)
	if len(hist) != steps {
		t.Fatalf("history length %d", len(hist))
	}
	for _, s := range hist {
		if math.IsNaN(s.Energy) || math.IsNaN(s.Std) {
			t.Fatalf("NaN statistics at iteration %d", s.Iter)
		}
	}
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("two-level pipelined SR run broke bit-identity: %v", err)
	}
}

// TestPipelinedWorkerCountInvariance pins worker-count bitwise invariance
// on the pipelined path: heterogeneous per-replica worker counts {1,2,5}
// must produce bit-identical trained parameters to workers=1 everywhere —
// the local sweep partitioning and the overlap window change WHO computes,
// never the reduction order.
func TestPipelinedWorkerCountInvariance(t *testing.T) {
	const n, h, mb, steps = 7, 9, 8, 10
	tim := hamiltonian.RandomTIM(n, rng.New(41))

	serial := buildPipelinedSRTrainer(t, tim, n, h, mb, []int{1, 1, 1}, 42, 43)
	serialHist := mustTrain(t, serial, steps)

	hetero := buildPipelinedSRTrainer(t, tim, n, h, mb, []int{1, 2, 5}, 42, 43)
	heteroHist := mustTrain(t, hetero, steps)

	if err := hetero.CheckConsistent(); err != nil {
		t.Fatalf("heterogeneous workers broke replica bit-identity: %v", err)
	}
	if diff := maxParamDiff(serial.Reps[0].Model, hetero.Reps[0].Model); diff != 0 {
		t.Fatalf("worker count changed the trained parameters (max diff %g)", diff)
	}
	for i := range serialHist {
		if serialHist[i] != heteroHist[i] {
			t.Fatalf("iter %d: stats %+v != workers=1 stats %+v", i+1, heteroHist[i], serialHist[i])
		}
	}
}

// TestPipelinedSolverValidation checks that mixing solver kinds across
// replicas is rejected — the two solvers issue different collective
// schedules, so a mixed group would deadlock or corrupt the ring.
func TestPipelinedSolverValidation(t *testing.T) {
	const n, h = 6, 8
	tim := hamiltonian.RandomTIM(n, rng.New(1))
	mk := func(seed uint64, sr *optimizer.SR) Replica {
		m := nn.NewMADE(n, h, rng.New(3))
		return Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(seed)),
			Opt:   optimizer.NewSGD(0.1),
			SR:    sr,
		}
	}
	pipe := optimizer.NewSR(1e-3)
	pipe.Solver = optimizer.SolverPipelined
	if _, err := New(tim, []Replica{mk(1, optimizer.NewSR(1e-3)), mk(2, pipe)}, 4); err == nil {
		t.Fatal("mixed solver kinds should error")
	}
	tr, err := New(tim, []Replica{mk(1, pipe.Clone()), mk(2, pipe.Clone())}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SREnabled() {
		t.Fatal("SREnabled should report true")
	}
}

// auditPipelinedTrajectoryTIM7 runs the acceptance trajectory: 50 SR steps
// on TIM n=7, serial classic SR recorded, L=2 pipelined playback replayed —
// final parameters and every per-step energy within 1e-10.
func auditPipelinedTrajectoryTIM7(tb testing.TB) {
	const (
		n, h  = 7, 10
		B     = 24
		steps = 50
		L     = 2
	)
	tim := hamiltonian.RandomTIM(n, rng.New(51))
	mRef, refHist, rec := runSerialSRRef(tb, tim, n, h, B, steps, tightSR())
	tr := buildPipelinedSRPlayback(tb, tim, rec, n, h, L, B/L)
	hist := mustTrain(tb, tr, steps)
	if err := tr.CheckConsistent(); err != nil {
		tb.Fatalf("replicas diverged: %v", err)
	}
	if diff := maxParamDiff(tr.Reps[0].Model, mRef); diff > 1e-10 {
		tb.Fatalf("L=2 pipelined SR drifted %g from serial SR after %d steps (want <= 1e-10)", diff, steps)
	}
	for i := range refHist {
		if math.Abs(hist[i].Energy-refHist[i].Energy) > 1e-10 {
			tb.Fatalf("iter %d: energy %v vs serial %v", i+1, hist[i].Energy, refHist[i].Energy)
		}
	}
}

// TestPipelinedSRTrajectoryTIM7 is the acceptance bar as a plain test.
func TestPipelinedSRTrajectoryTIM7(t *testing.T) {
	auditPipelinedTrajectoryTIM7(t)
}

// TestPipelinedSRConvergesTIM7 mirrors the classic acceptance run with the
// pipelined solver end to end on live samplers: L=4 replicas x 4 workers,
// 50 steps, within 15% of the exact ground energy, replicas bit-identical.
func TestPipelinedSRConvergesTIM7(t *testing.T) {
	const n, h, mb, steps = 7, 14, 32, 50
	tim := hamiltonian.RandomTIM(n, rng.New(51))
	res, err := exact.GroundState(tim, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := buildPipelinedSRTrainer(t, tim, n, h, mb, []int{4, 4, 4, 4}, 52, 53)
	mustTrain(t, tr, steps)
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("replicas diverged after %d pipelined SR steps: %v", steps, err)
	}
	mean, _ := mustEval(t, tr, 1024)
	gap := (mean - res.Energy) / math.Abs(res.Energy)
	if gap > 0.15 {
		t.Fatalf("pipelined SR energy %v vs exact %v (gap %.3f > 0.15)", mean, res.Energy, gap)
	}
}

// BenchmarkPipelinedSR audits the collective schedule of the pipelined
// distributed Fisher solve, then times its SR step. The audits assert:
//
//  1. the 50-step TIM n=7 trajectory equivalence (L=2 pipelined vs serial
//     SR, <= 1e-10);
//  2. the blocking-collective count: per SR step the pipelined path blocks
//     on exactly the 2 pre-solve reductions — ZERO per CG solve, the
//     analytic pipelined value, vs classic's one-per-iteration — while
//     every per-iteration Fisher reduction is initiated non-blocking
//     (async count = applies = sum over steps of iters+2);
//  3. ring traffic within 2x of the classic solver on the same run length
//     (the overlap costs one extra operator application per solve, nothing
//     more).
func BenchmarkPipelinedSR(b *testing.B) {
	auditPipelinedTrajectoryTIM7(b)

	const n, h, L, mb, steps = 12, 16, 4, 8, 3
	tim := hamiltonian.RandomTIM(n, rng.New(61))
	classic := buildSRTrainer(b, tim, n, h, mb, []int{2, 2, 2, 2}, 62, 63)
	classicHist := mustTrain(b, classic, steps)
	syncC, asyncC := classic.Collectives()
	var itersC int64
	for _, s := range classicHist {
		itersC += int64(s.SRIters)
	}
	if asyncC != 0 {
		b.Fatalf("classic solver issued %d non-blocking collectives", asyncC)
	}
	if want := L * (2*steps + classic.FisherApplies()); syncC != want {
		b.Fatalf("classic blocking collectives %d, want %d (L x (2 pre-solve + 1 per CG apply))", syncC, want)
	}
	if want := itersC + steps; classic.FisherApplies() != want {
		b.Fatalf("classic Fisher applies %d, want %d (one per iteration + the initial residual)", classic.FisherApplies(), want)
	}

	pipe := buildPipelinedSRTrainer(b, tim, n, h, mb, []int{2, 2, 2, 2}, 62, 63)
	pipeHist := mustTrain(b, pipe, steps)
	syncP, asyncP := pipe.Collectives()
	var itersP int64
	for _, s := range pipeHist {
		itersP += int64(s.SRIters)
	}
	if syncP != L*2*steps {
		b.Fatalf("pipelined blocking collectives %d, want %d: the solve itself must block on none", syncP, L*2*steps)
	}
	if want := itersP + 2*steps; asyncP != L*want || pipe.FisherApplies() != want {
		b.Fatalf("pipelined async collectives %d (applies %d), want %d x L (iters+2 per solve)",
			asyncP, pipe.FisherApplies(), want)
	}
	bytesC, _ := classic.Traffic()
	bytesP, _ := pipe.Traffic()
	if bytesP > 2*bytesC {
		b.Fatalf("pipelined traffic %d bytes exceeds 2x classic %d", bytesP, bytesC)
	}

	// A modeled 200us link makes the hidden latency visible in -bench
	// wall time (compare BenchmarkDistSR, which blocks on every apply).
	pipe.SetLink(comm.Link{Latency: 200 * time.Microsecond})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Step(i); err != nil {
			b.Fatal(err)
		}
	}
}
