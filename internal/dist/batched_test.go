package dist

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// buildEvalTrainer assembles an L-replica trainer whose replicas all use
// the given evaluation mode end to end (matching sampler + evaluator), with
// SR optionally enabled.
func buildEvalTrainer(t *testing.T, mode core.EvalMode, n, h, L, mb, workers int, useSR bool) *Trainer {
	t.Helper()
	tim := hamiltonian.RandomTIM(n, rng.New(91))
	streams := rng.New(92).SplitN(L)
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(93))
		var smp sampler.Sampler
		if mode == core.EvalScalar {
			smp = sampler.NewAutoMADE(m, true, 1, streams[r])
		} else {
			smp = sampler.NewAutoBatched(n, m, 1, streams[r])
		}
		var opt optimizer.Optimizer = optimizer.NewAdam(0.01)
		var sr *optimizer.SR
		if useSR {
			opt = optimizer.NewSGD(0.1)
			sr = optimizer.NewSR(1e-3)
		}
		reps[r] = Replica{Model: m, Smp: smp, Opt: opt, SR: sr,
			Workers: workers, Eval: mode}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDistBatchedTrajectoryBitIdentical is the distributed acceptance
// property of the batched evaluation path: a 50-step distributed SR
// trajectory (and a plain REINFORCE one) run entirely through the batched
// stack — batched ancestral sampling, batched local energies, batched O_k
// rows — must leave parameters and statistics EXACTLY equal to the scalar
// stack, replica consistency intact throughout.
func TestDistBatchedTrajectoryBitIdentical(t *testing.T) {
	const (
		n, h, L, mb = 7, 9, 2, 8
		steps       = 50
	)
	for _, useSR := range []bool{false, true} {
		scalar := buildEvalTrainer(t, core.EvalScalar, n, h, L, mb, 2, useSR)
		batched := buildEvalTrainer(t, core.EvalAuto, n, h, L, mb, 2, useSR)
		if batched.state[0].bev == nil {
			t.Fatal("batched trainer did not engage the batched evaluator")
		}
		hs := mustTrain(t, scalar, steps)
		hb := mustTrain(t, batched, steps)
		for i := range hs {
			if hs[i] != hb[i] {
				t.Fatalf("sr=%v iter %d: scalar %+v != batched %+v", useSR, i, hs[i], hb[i])
			}
		}
		for r := 0; r < L; r++ {
			ps := scalar.Reps[r].Model.Params()
			pb := batched.Reps[r].Model.Params()
			for i := range ps {
				if ps[i] != pb[i] {
					t.Fatalf("sr=%v replica %d param %d: scalar %v != batched %v",
						useSR, r, i, ps[i], pb[i])
				}
			}
		}
		if err := batched.CheckConsistent(); err != nil {
			t.Fatalf("sr=%v: batched replicas diverged: %v", useSR, err)
		}
	}
}

// TestDistRBMBatchedTrajectoryBitIdentical: the RBM BatchEvaluator rides
// the distributed trainer unchanged — L MCMC-sampling RBM replicas trained
// through the batched evaluator must leave exactly the scalar stack's
// parameters, with replica consistency intact (the two-level replica x
// worker scheme never sees which path produced the local energies).
func TestDistRBMBatchedTrajectoryBitIdentical(t *testing.T) {
	const (
		n, h, L, mb = 6, 8, 2, 8
		steps       = 30
	)
	build := func(mode core.EvalMode) *Trainer {
		tim := hamiltonian.RandomTIM(n, rng.New(181))
		streams := rng.New(182).SplitN(L)
		reps := make([]Replica, L)
		for r := 0; r < L; r++ {
			m := nn.NewRBM(n, h, rng.New(183))
			smp := sampler.NewMCMC(m, sampler.MCMCConfig{Chains: 2, BurnIn: 20}, streams[r])
			reps[r] = Replica{Model: m, Smp: smp, Opt: optimizer.NewSGD(0.1),
				SR: optimizer.NewSR(1e-3), Workers: 2, Eval: mode}
		}
		tr, err := New(tim, reps, mb)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	scalar := build(core.EvalScalar)
	batched := build(core.EvalAuto)
	if batched.state[0].bev == nil {
		t.Fatal("RBM replicas did not engage the batched evaluator")
	}
	hs := mustTrain(t, scalar, steps)
	hb := mustTrain(t, batched, steps)
	for i := range hs {
		if hs[i] != hb[i] {
			t.Fatalf("iter %d: scalar %+v != batched %+v", i, hs[i], hb[i])
		}
	}
	for r := 0; r < L; r++ {
		ps := scalar.Reps[r].Model.Params()
		pb := batched.Reps[r].Model.Params()
		for i := range ps {
			if ps[i] != pb[i] {
				t.Fatalf("replica %d param %d: scalar %v != batched %v", r, i, ps[i], pb[i])
			}
		}
	}
	if err := batched.CheckConsistent(); err != nil {
		t.Fatalf("batched RBM replicas diverged: %v", err)
	}
}

// TestDistMixedEvalModesStayConsistent: because the batched path is
// bitwise identical to the scalar one, replicas may MIX evaluation modes
// (like they may mix worker counts) and still remain bit-identical to each
// other — the strongest form of the interchangeability guarantee.
func TestDistMixedEvalModesStayConsistent(t *testing.T) {
	const (
		n, h, L, mb = 6, 8, 3, 8
		steps       = 25
	)
	tim := hamiltonian.RandomTIM(n, rng.New(95))
	streams := rng.New(96).SplitN(L)
	reps := make([]Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, h, rng.New(97))
		mode := core.EvalScalar
		if r%2 == 0 {
			mode = core.EvalAuto
		}
		// Samplers must stay scalar-equivalent streams; both modes are,
		// so mix them too.
		var smp sampler.Sampler
		if mode == core.EvalScalar {
			smp = sampler.NewAutoMADE(m, true, 1, streams[r])
		} else {
			smp = sampler.NewAutoBatched(n, m, 1, streams[r])
		}
		reps[r] = Replica{Model: m, Smp: smp, Opt: optimizer.NewSGD(0.1),
			SR: optimizer.NewSR(1e-3), Workers: 1 + r, Eval: mode}
	}
	tr, err := New(tim, reps, mb)
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, tr, steps)
	if err := tr.CheckConsistent(); err != nil {
		t.Fatalf("mixed-mode replicas diverged: %v", err)
	}
}
