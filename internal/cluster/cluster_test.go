package cluster

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/device"
)

func TestWeakScalingNearFlat(t *testing.T) {
	// The headline claim of Figure 3: with per-device batch fixed,
	// normalized execution times stay close to 1 across configurations.
	for _, tc := range []struct {
		n, mbs int
	}{
		{1000, 512}, {2000, 128}, {5000, 16}, {10000, 4},
	} {
		pts := WeakScaling(PaperConfigs(), tc.n, tc.mbs, 300)
		for _, p := range pts {
			// The paper's Figure 3 spans roughly [0.965, 1.005]; allow a
			// touch more (configs with more nodes than the 6x4 reference,
			// like 8x2, can exceed 1 slightly).
			if p.Normalized < 0.9 || p.Normalized > 1.02 {
				t.Errorf("n=%d %s: normalized time %.4f outside [0.9, 1.02]",
					tc.n, p.Topology, p.Normalized)
			}
		}
		if eff := Efficiency(pts); eff < 0.9 {
			t.Errorf("n=%d: weak-scaling efficiency %.3f < 0.9", tc.n, eff)
		}
	}
}

func TestSingleGPUFastestButBarely(t *testing.T) {
	// Communication adds a small monotone-ish overhead: 1x1 must be the
	// cheapest configuration and 6x4 the reference (normalized 1.0).
	pts := WeakScaling(PaperConfigs(), 1000, 512, 300)
	if pts[0].Topology.GPUs() != 1 {
		t.Fatal("first paper config should be 1x1")
	}
	for _, p := range pts[1:] {
		if p.Time < pts[0].Time {
			t.Errorf("%s (%v) faster than single GPU (%v)", p.Topology, p.Time, pts[0].Time)
		}
	}
	last := pts[len(pts)-1]
	if last.Topology.String() != "6x4" || last.Normalized != 1.0 {
		t.Errorf("6x4 should normalize to 1.0, got %s %.4f", last.Topology, last.Normalized)
	}
}

func TestInterNodeCostsMoreThanIntraNode(t *testing.T) {
	// 4 GPUs in one node vs 4 nodes with 1 GPU each: same compute, the
	// spread-out topology pays the slower link.
	oneNode := Default(1, 4)
	fourNodes := Default(4, 1)
	d := device.MADEParams(1000, device.HiddenMADE(1000))
	if oneNode.AllReduceTime(d) >= fourNodes.AllReduceTime(d) {
		t.Fatal("inter-node all-reduce should cost more than intra-node")
	}
}

func TestIterTimeSingleVsMulti(t *testing.T) {
	n, h := 1000, device.HiddenMADE(1000)
	single := Default(1, 1).IterTime(n, h, 512, n)
	multi := Default(2, 2).IterTime(n, h, 512, n)
	if multi <= single {
		t.Fatal("multi-GPU iteration must include communication time")
	}
	// But the overhead should be small relative to compute (weak scaling).
	if float64(multi-single)/float64(single) > 0.1 {
		t.Fatalf("communication overhead %.1f%% too large for weak scaling",
			100*float64(multi-single)/float64(single))
	}
}

func TestTable6TimesGrowWithDimension(t *testing.T) {
	// Fixed mbs=4 across dimensions (Table 6): time grows ~linearly in n
	// because sampling is n sequential passes.
	prev := Default(1, 1).TrainingTime(20, device.HiddenMADE(20), 4, 20, 300)
	for _, n := range []int{50, 100, 200, 500, 1000, 2000, 5000, 10000} {
		cur := Default(1, 1).TrainingTime(n, device.HiddenMADE(n), 4, n, 300)
		if cur <= prev {
			t.Fatalf("training time not increasing at n=%d", n)
		}
		prev = cur
	}
	// Modeled 10K-dim run should land near the paper's ~1070 s.
	t10k := Default(1, 1).TrainingTime(10000, device.HiddenMADE(10000), 4, 10000, 300)
	if t10k.Seconds() < 500 || t10k.Seconds() > 2200 {
		t.Fatalf("10K-dim modeled time %.0fs, paper ~1070s", t10k.Seconds())
	}
}

func TestTopologyString(t *testing.T) {
	if Default(6, 4).String() != "6x4" {
		t.Fatalf("String = %s", Default(6, 4).String())
	}
	if Default(6, 4).GPUs() != 24 {
		t.Fatalf("GPUs = %d", Default(6, 4).GPUs())
	}
}

func TestMCMCParallelEfficiencyDecaysWithBurnIn(t *testing.T) {
	// Eq. 14: with zero burn-in and thinning 1 the efficiency is perfect;
	// as k grows it decays toward 1/L.
	if e := MCMCParallelEfficiency(0, 1, 100, 8); e < 0.999 {
		t.Fatalf("k=0 efficiency %v, want 1", e)
	}
	e1 := MCMCParallelEfficiency(100, 1, 100, 8)
	e2 := MCMCParallelEfficiency(10000, 1, 100, 8)
	if !(e2 < e1 && e1 < 1) {
		t.Fatalf("efficiency should decay with burn-in: %v, %v", e1, e2)
	}
	if lim := MCMCParallelEfficiency(1<<30, 1, 100, 8); lim > 0.13 {
		t.Fatalf("large-k efficiency %v, want ~1/8", lim)
	}
}

func TestPaperConfigsCoverTable(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 9 {
		t.Fatalf("paper uses 9 configurations, got %d", len(cfgs))
	}
	seen := map[int]bool{}
	for _, c := range cfgs {
		seen[c[0]*c[1]] = true
	}
	for _, gpus := range []int{1, 2, 4, 8, 16, 24} {
		if !seen[gpus] {
			t.Errorf("missing a configuration with %d total GPUs", gpus)
		}
	}
}
