// Package cluster composes the device model and the alpha-beta collective
// model into multi-node topologies (L1 nodes x L2 GPUs per node) and
// evaluates the weak-scaling behaviour the paper reports in Figure 3 and
// Tables 6-7: per-iteration time = local compute + hierarchical gradient
// all-reduce, with distinct intra-node (NVLink-class) and inter-node
// (network-class) links.
package cluster

import (
	"fmt"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/device"
)

// Topology is a homogeneous GPU cluster.
type Topology struct {
	Nodes       int
	GPUsPerNode int
	Device      device.Device
	Intra       comm.Link // links among GPUs within a node
	Inter       comm.Link // links among nodes
}

// Default returns the modeled testbed: V100 GPUs, NVLink-class intra-node
// links (~50 GB/s effective, 5 us) and a network-class inter-node link
// (~10 GB/s effective, 20 us).
func Default(nodes, gpusPerNode int) Topology {
	return Topology{
		Nodes:       nodes,
		GPUsPerNode: gpusPerNode,
		Device:      device.V100(),
		Intra:       comm.Link{Latency: 5 * time.Microsecond, Bandwidth: 50e9},
		Inter:       comm.Link{Latency: 20 * time.Microsecond, Bandwidth: 10e9},
	}
}

// GPUs is the total device count L = L1 * L2.
func (t Topology) GPUs() int { return t.Nodes * t.GPUsPerNode }

// String formats the topology as the paper writes it, e.g. "6x4".
func (t Topology) String() string { return fmt.Sprintf("%dx%d", t.Nodes, t.GPUsPerNode) }

// AllReduceTime is the modeled hierarchical ring all-reduce of d float32
// gradients (the paper trains in single precision).
func (t Topology) AllReduceTime(params int) time.Duration {
	bytes := float64(params) * 4
	return comm.HierarchicalAllReduceTime(bytes, t.Nodes, t.GPUsPerNode, t.Intra, t.Inter)
}

// IterTime models one distributed MADE+AUTO iteration: every device
// computes on its local mini-batch concurrently, then gradients are
// all-reduced. mbs is the per-device batch.
func (t Topology) IterTime(n, h, mbs, flips int) time.Duration {
	compute := t.Device.MADEAutoIter(n, h, mbs, flips).Total()
	if t.GPUs() == 1 {
		return compute
	}
	return compute + t.AllReduceTime(device.MADEParams(n, h))
}

// TrainingTime is the modeled wall time of iters distributed iterations.
func (t Topology) TrainingTime(n, h, mbs, flips, iters int) time.Duration {
	return time.Duration(iters) * t.IterTime(n, h, mbs, flips)
}

// WeakScalingPoint is one (topology, time) measurement of a sweep.
type WeakScalingPoint struct {
	Topology   Topology
	GPUs       int
	Time       time.Duration
	Normalized float64 // filled by WeakScaling
}

// WeakScaling evaluates the modeled training time across GPU configurations
// with the per-device batch held fixed (the paper's weak-scaling protocol)
// and normalizes by the largest configuration's time, exactly as in
// Figure 3. configs are (nodes, gpusPerNode) pairs.
func WeakScaling(configs [][2]int, n, mbs, iters int) []WeakScalingPoint {
	h := device.HiddenMADE(n)
	pts := make([]WeakScalingPoint, len(configs))
	for i, c := range configs {
		topo := Default(c[0], c[1])
		pts[i] = WeakScalingPoint{
			Topology: topo,
			GPUs:     topo.GPUs(),
			Time:     topo.TrainingTime(n, h, mbs, n, iters),
		}
	}
	// Normalize by the largest configuration (most GPUs; ties broken by
	// order, matching the paper's "largest GPU configuration (6x4)").
	ref := pts[0]
	for _, p := range pts[1:] {
		if p.GPUs > ref.GPUs {
			ref = p
		}
	}
	for i := range pts {
		pts[i].Normalized = float64(pts[i].Time) / float64(ref.Time)
	}
	return pts
}

// PaperConfigs are the GPU configurations of Tables 6-7: 1x1 up to 6x4.
func PaperConfigs() [][2]int {
	return [][2]int{{1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}, {4, 2}, {4, 4}, {8, 2}, {6, 4}}
}

// Efficiency returns the weak-scaling efficiency T(1)/T(L) of a sweep that
// includes a single-GPU point; 1.0 is perfect.
func Efficiency(pts []WeakScalingPoint) float64 {
	var t1, tL time.Duration
	maxGPUs := 0
	for _, p := range pts {
		if p.GPUs == 1 {
			t1 = p.Time
		}
		if p.GPUs > maxGPUs {
			maxGPUs = p.GPUs
			tL = p.Time
		}
	}
	if t1 == 0 || tL == 0 {
		return 0
	}
	return float64(t1) / float64(tL)
}

// MCMCParallelEfficiency evaluates the paper's Eq. 14: the parallel
// efficiency of MCMC sampling with burn-in k and thinning j when producing
// nSamples per unit on L units is (k + (n L - 1) j + 1)/(k + (n-1) j + 1);
// the slope in L decays as burn-in grows, capping MCMC scalability.
func MCMCParallelEfficiency(k, j, nSamples, L int) float64 {
	num := float64(k + (nSamples*L-1)*j + 1)
	den := float64(k + (nSamples-1)*j + 1)
	return num / den / float64(L)
}
