package exact

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/linalg"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestGroundStateSingleSite(t *testing.T) {
	// H = -(alpha X + beta Z): eigenvalues -+sqrt(alpha^2+beta^2).
	tim := hamiltonian.NewTIM([]float64{0.6}, []float64{0.8}, nil)
	res, err := GroundState(tim, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(-1.0)) > 1e-9 {
		t.Fatalf("ground energy %v, want -1", res.Energy)
	}
}

func TestGroundStateMatchesDenseJacobi(t *testing.T) {
	r := rng.New(2)
	tim := hamiltonian.RandomTIM(6, r)
	dense := hamiltonian.Dense(tim)
	want, _, err := linalg.MinEigDense(dense, 1<<6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroundState(tim, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-want) > 1e-7 {
		t.Fatalf("Lanczos %v vs dense %v", res.Energy, want)
	}
}

func TestGroundVectorNonNegative(t *testing.T) {
	// Perron-Frobenius: with alpha > 0 the ground vector has a definite
	// sign; after fixing the global phase all entries are >= 0.
	r := rng.New(3)
	tim := hamiltonian.RandomTIM(7, r)
	res, err := GroundState(tim, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fix sign so the largest-magnitude entry is positive.
	imax, vmax := 0, 0.0
	for i, v := range res.Vector {
		if math.Abs(v) > vmax {
			vmax, imax = math.Abs(v), i
		}
	}
	sign := 1.0
	if res.Vector[imax] < 0 {
		sign = -1
	}
	for i, v := range res.Vector {
		if sign*v < -1e-8 {
			t.Fatalf("entry %d = %v has wrong sign", i, sign*v)
		}
	}
}

func TestGroundStateVarianceNearZero(t *testing.T) {
	r := rng.New(4)
	tim := hamiltonian.RandomTIM(6, r)
	res, err := GroundState(tim, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v := Variance(tim, res.Vector); v > 1e-8 {
		t.Fatalf("variance of eigenvector = %v, want ~0", v)
	}
}

func TestVarianceOfNonEigenvectorPositive(t *testing.T) {
	r := rng.New(5)
	tim := hamiltonian.RandomTIM(5, r)
	dim := 1 << 5
	psi := make([]float64, dim)
	r.FillUniform(psi, 0.1, 1)
	var norm float64
	for _, v := range psi {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for i := range psi {
		psi[i] /= norm
	}
	if v := Variance(tim, psi); v < 1e-3 {
		t.Fatalf("variance of random state = %v, suspiciously small", v)
	}
}

func TestGroundStateDiagonalMaxCut(t *testing.T) {
	r := rng.New(6)
	g := graph.RandomBernoulli(10, r)
	mc := hamiltonian.NewMaxCut(g)
	e, x, err := GroundStateDiagonal(mc, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive max cut for comparison.
	best := 0.0
	tmp := make([]int, 10)
	for ix := 0; ix < 1<<10; ix++ {
		hamiltonian.IndexToBits(ix, tmp)
		if c := g.CutValue(tmp); c > best {
			best = c
		}
	}
	if got := mc.CutFromEnergy(e); math.Abs(got-best) > 1e-9 {
		t.Fatalf("diagonal ground cut %v, want %v", got, best)
	}
	if math.Abs(g.CutValue(x)-best) > 1e-9 {
		t.Fatalf("returned configuration has cut %v, want %v", g.CutValue(x), best)
	}
}

func TestGroundStateDiagonalRejectsOffDiagonal(t *testing.T) {
	tim := hamiltonian.RandomTIM(4, rng.New(7))
	if _, _, err := GroundStateDiagonal(tim, 0); err == nil {
		t.Fatal("expected error for non-diagonal Hamiltonian")
	}
}

func TestGroundStateSizeLimit(t *testing.T) {
	alpha := make([]float64, MaxSites+1)
	beta := make([]float64, MaxSites+1)
	tim := hamiltonian.NewTIM(alpha, beta, nil)
	if _, err := GroundState(tim, 0, 1); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestGroundStateDeterministicInSeed(t *testing.T) {
	tim := hamiltonian.RandomTIM(5, rng.New(8))
	a, err := GroundState(tim, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GroundState(tim, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Fatal("same seed produced different energies")
	}
}

func BenchmarkGroundState12(b *testing.B) {
	tim := hamiltonian.RandomTIM(12, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroundState(tim, 60, 1); err != nil {
			b.Fatal(err)
		}
	}
}
