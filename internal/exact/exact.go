// Package exact computes exact ground states of the paper's Hamiltonians by
// matrix-free Lanczos iteration over the full 2^n-dimensional space. It is
// the reference oracle the VQMC tests validate against, practical up to
// about n = 20 (a 1M-dimensional eigenproblem).
package exact

import (
	"errors"
	"fmt"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/linalg"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Result is an exact ground-state eigenpair.
type Result struct {
	Energy float64
	// Vector is the normalized ground eigenvector over the computational
	// basis, indexed by hamiltonian.BitsToIndex.
	Vector []float64
}

// MaxSites bounds the problem size GroundState accepts.
const MaxSites = 22

// GroundState computes the minimal eigenpair of h by Lanczos with a random
// start vector. maxKrylov <= 0 selects a sensible default.
func GroundState(h hamiltonian.Hamiltonian, maxKrylov int, seed uint64) (Result, error) {
	n := h.N()
	if n > MaxSites {
		return Result{}, fmt.Errorf("exact: n = %d exceeds limit %d", n, MaxSites)
	}
	dim := 1 << uint(n)
	if maxKrylov <= 0 {
		maxKrylov = 80
		if maxKrylov > dim {
			maxKrylov = dim
		}
	}
	v0 := make([]float64, dim)
	rng.New(seed).FillUniform(v0, 0.1, 1) // positive start overlaps the PF ground state
	mv := func(v, out []float64) { hamiltonian.Apply(h, v, out) }
	res, err := linalg.LanczosMin(mv, dim, v0, maxKrylov, 1e-10)
	if err != nil {
		return Result{}, err
	}
	if !res.Converged && maxKrylov < dim {
		return Result{Energy: res.Eigenvalue, Vector: res.Eigenvector},
			errors.New("exact: Lanczos did not reach tolerance; increase maxKrylov")
	}
	return Result{Energy: res.Eigenvalue, Vector: res.Eigenvector}, nil
}

// GroundStateDiagonal exactly minimizes a diagonal Hamiltonian (such as
// Max-Cut) by exhaustive scan, returning the energy and an optimal
// configuration. Practical up to about n = 24.
func GroundStateDiagonal(h hamiltonian.Hamiltonian, nLimit int) (float64, []int, error) {
	n := h.N()
	if nLimit <= 0 {
		nLimit = 24
	}
	if n > nLimit {
		return 0, nil, fmt.Errorf("exact: n = %d exceeds scan limit %d", n, nLimit)
	}
	if len(h.FlipTerms()) != 0 {
		return 0, nil, errors.New("exact: Hamiltonian is not diagonal")
	}
	x := make([]int, n)
	best := make([]int, n)
	bestE := 0.0
	first := true
	for ix := 0; ix < 1<<uint(n); ix++ {
		hamiltonian.IndexToBits(ix, x)
		e := h.Diagonal(x)
		if first || e < bestE {
			bestE = e
			copy(best, x)
			first = false
		}
	}
	return bestE, best, nil
}

// Variance returns <psi|H^2|psi> - <psi|H|psi>^2 for a normalized state
// vector; it is zero exactly when psi is an eigenvector (Eq. 4).
func Variance(h hamiltonian.Hamiltonian, psi []float64) float64 {
	dim := len(psi)
	hv := make([]float64, dim)
	hamiltonian.Apply(h, psi, hv)
	var e, e2 float64
	for i := range psi {
		e += psi[i] * hv[i]
		e2 += hv[i] * hv[i]
	}
	return e2 - e*e
}
