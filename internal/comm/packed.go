package comm

// Packed is a reusable collective payload that lays several logical pieces
// (vectors and scalars) out in one contiguous buffer, so a single ring
// AllReduceSum moves all of them. Fusing pieces matters for latency-bound
// collectives: the chunked ring pays 2(p-1) message latencies per call
// regardless of payload size, so k separate small reductions cost k times
// the latency of one packed reduction.
//
// The distributed stochastic-reconfiguration path uses it to ship the local
// partial Fisher-vector product together with the scalar dot-products the
// CG recurrence needs, keeping the solve at exactly one collective per
// iteration.
//
// Because every rank packs with the same layout, the reduced buffer is
// bit-identical on all ranks (the ring reduces each chunk on exactly one
// owner), and so is every section view of it.
type Packed struct {
	buf  []float64
	offs []int // offs[i] is the start of section i; offs[len] == len(buf)
}

// NewPacked builds a packed payload with one section per length. Lengths
// must be non-negative and sum to at least 1.
func NewPacked(lens ...int) *Packed {
	offs := make([]int, len(lens)+1)
	for i, l := range lens {
		if l < 0 {
			panic("comm: negative section length")
		}
		offs[i+1] = offs[i] + l
	}
	if offs[len(lens)] == 0 {
		panic("comm: empty packed payload")
	}
	return &Packed{buf: make([]float64, offs[len(lens)]), offs: offs}
}

// Buf returns the whole contiguous buffer (all sections back to back).
func (p *Packed) Buf() []float64 { return p.buf }

// Len returns the total element count.
func (p *Packed) Len() int { return len(p.buf) }

// Section returns section i as a slice aliasing the buffer.
func (p *Packed) Section(i int) []float64 {
	return p.buf[p.offs[i]:p.offs[i+1]]
}

// Zero clears every section.
func (p *Packed) Zero() {
	for i := range p.buf {
		p.buf[i] = 0
	}
}

// AllReduce sums the packed payload elementwise across all ranks of c's
// group with one ring all-reduce, leaving identical bytes in every rank's
// buffer. A non-nil error means the group degraded mid-collective (see
// AllReduceSum) and the buffer holds garbage.
func (p *Packed) AllReduce(c *Comm) error { return c.AllReduceSum(p.buf) }

// IAllReduce starts the same packed reduction non-blocking: the buffer (and
// every section view) holds the reduced, cross-rank bit-identical result
// once the returned handle's Wait returns, and must not be touched before.
func (p *Packed) IAllReduce(c *Comm) *Handle { return c.IAllReduceSum(p.buf) }
