package comm

// Native Go fuzz targets for the two pieces of comm arithmetic everything
// else leans on: the ring's chunk partitioning and the Packed section
// layout. CI runs each for a few seconds of fuzzing on top of the seeded
// cases executed by every plain `go test`.

import (
	"testing"
)

// FuzzChunkBounds fuzzes the ring chunk partition invariants: for any
// vector length n >= 0 and rank count p >= 1, the p chunks must be ordered,
// contiguous and cover [0, n) exactly — the property that makes the
// reduce-scatter own each element exactly once.
func FuzzChunkBounds(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(7, 3)
	f.Add(103, 7)
	f.Add(1024, 16)
	f.Fuzz(func(t *testing.T, n, p int) {
		if n < 0 || p < 1 {
			t.Skip()
		}
		n %= 1 << 20
		p = 1 + p%1024
		prev := 0
		for i := 0; i < p; i++ {
			lo, hi := chunkBounds(n, p, i)
			if lo != prev {
				t.Fatalf("n=%d p=%d chunk %d starts at %d, previous ended at %d (gap or overlap)", n, p, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d p=%d chunk %d inverted: [%d,%d)", n, p, i, lo, hi)
			}
			if lo < 0 || hi > n {
				t.Fatalf("n=%d p=%d chunk %d out of range: [%d,%d)", n, p, i, lo, hi)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d p=%d: chunks cover [0,%d), want [0,%d)", n, p, prev, n)
		}
	})
}

// FuzzPackedRoundTrip fuzzes the Packed layout on ragged section lengths:
// sections must tile the buffer contiguously in declaration order, values
// written through section views must round-trip through the flat buffer,
// and Zero must clear everything.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{3, 1, 4, 1, 5})
	f.Add([]byte{0, 0, 7})
	f.Add([]byte{255, 0, 1, 128})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 32 {
			t.Skip()
		}
		lens := make([]int, len(raw))
		total := 0
		for i, b := range raw {
			lens[i] = int(b)
			total += lens[i]
		}
		if total == 0 {
			t.Skip() // NewPacked rejects empty payloads by contract
		}
		p := NewPacked(lens...)
		if p.Len() != total {
			t.Fatalf("Len()=%d, want %d", p.Len(), total)
		}
		// Fill each section with a value encoding (section, offset) and
		// check the flat buffer sees the sections tiled in order.
		for i, l := range lens {
			s := p.Section(i)
			if len(s) != l {
				t.Fatalf("section %d has length %d, want %d", i, len(s), l)
			}
			for j := range s {
				s[j] = float64(i*1000 + j)
			}
		}
		buf := p.Buf()
		k := 0
		for i, l := range lens {
			for j := 0; j < l; j++ {
				if buf[k] != float64(i*1000+j) {
					t.Fatalf("buf[%d]=%v, want section %d offset %d", k, buf[k], i, j)
				}
				k++
			}
		}
		if k != len(buf) {
			t.Fatalf("sections tile %d elements, buffer has %d", k, len(buf))
		}
		p.Zero()
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("Zero left buf[%d]=%v", i, v)
			}
		}
	})
}
