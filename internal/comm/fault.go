package comm

// Fault injection and bounded-wait failure semantics.
//
// The in-memory transport makes the hang-forever failure mode of a fixed-
// membership ring painfully easy to reproduce: a dead rank simply never
// sends, and every surviving rank blocks on a bare channel receive. This
// file turns that silent hang into a reported, recoverable error:
//
//   - SetDeadline bounds every blocking point of every collective. A rank
//     that waits longer than the deadline for a peer (or for its own send
//     buffer to drain) aborts the whole group with an error wrapping
//     ErrPeerLost, and returns it.
//   - The group-level abort channel fans the failure out: every other rank
//     blocked anywhere inside a collective — including the background
//     goroutine of a non-blocking IAllReduceSum — observes the abort and
//     returns the same cause promptly, so no goroutine leaks and no rank
//     waits longer than one deadline.
//   - Once aborted, a group is condemned: every subsequent collective on
//     any rank fails fast with the original cause. Recovery rebuilds a
//     fresh group (see package dist).
//
// The injection seam mirrors Group.SetLink: FailAt scripts a rank to die at
// a chosen collective (it stops participating, exactly like a crashed
// process — detection is the survivors' deadline, not a courtesy message),
// and Delay scripts a straggler. Both must be configured before collectives
// start, like SetLink.

import (
	"errors"
	"fmt"
	"time"
)

// ErrPeerLost is wrapped by the error every surviving rank's collective
// returns when a peer stops participating: the rank that first exceeds the
// group deadline wraps it with who/what/how-long context and aborts the
// group, and every other rank inherits that cause through the abort
// channel.
var ErrPeerLost = errors.New("comm: peer lost")

// ErrRankKilled is wrapped by the error a collective returns on a rank that
// fault injection has killed (see Group.FailAt). The dead rank itself gets
// this error immediately; its peers detect the death by deadline and get
// ErrPeerLost.
var ErrRankKilled = errors.New("comm: rank killed by fault injection")

// ErrAborted is the cause recorded when Group.Abort is called with a nil
// error.
var ErrAborted = errors.New("comm: group aborted")

// SetDeadline bounds every blocking point of every subsequent collective:
// a rank that waits longer than d for a peer's message (or for a stalled
// peer to drain its send) aborts the group with an ErrPeerLost-wrapping
// error and returns it, and every other rank's in-flight collective returns
// the same cause promptly. d <= 0 restores unbounded waits (the abort
// channel still provides liveness once any rank aborts explicitly). Like
// SetLink it must be called before collectives run; it must not race with
// in-flight collectives.
func (g *Group) SetDeadline(d time.Duration) { g.deadline = d }

// Deadline returns the configured per-blocking-point collective deadline
// (0 = unbounded).
func (g *Group) Deadline() time.Duration { return g.deadline }

// FailAt scripts rank r to die at its (after+1)-th collective initiation:
// after it has begun `after` collectives, the next one returns an
// ErrRankKilled-wrapping error without participating, and the rank stays
// dead for the life of the group. The death is silent, exactly like a
// crashed process — surviving ranks detect it only by exceeding the group
// deadline, so pair FailAt with SetDeadline or the survivors will block
// until an explicit Abort. Call before collectives start; scripting at most
// one failure per test keeps the post-mortem deterministic, but multiple
// dead ranks are supported.
func (g *Group) FailAt(rank, after int) {
	if rank < 0 || rank >= g.size {
		panic(fmt.Sprintf("comm: FailAt rank %d out of range [0,%d)", rank, g.size))
	}
	if after < 0 {
		panic("comm: FailAt needs a non-negative collective count")
	}
	g.failAt[rank] = after
}

// Delay scripts rank r as a straggler: every collective it initiates first
// sleeps d (on the background goroutine for non-blocking collectives, so
// initiation itself stays prompt). A straggler below the group deadline
// slows everyone but errors no one; at or above the deadline it is
// indistinguishable from a dead rank and the survivors abort. Call before
// collectives start.
func (g *Group) Delay(rank int, d time.Duration) {
	if rank < 0 || rank >= g.size {
		panic(fmt.Sprintf("comm: Delay rank %d out of range [0,%d)", rank, g.size))
	}
	g.delay[rank] = d
}

// Abort condemns the group: every rank blocked inside a collective returns
// an error carrying cause promptly, and every subsequent collective on any
// rank fails fast with it. The first cause wins; later calls are no-ops.
// A nil cause records ErrAborted.
func (g *Group) Abort(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	g.abortMu.Lock()
	if g.abortErr == nil {
		g.abortErr = cause
		close(g.abort)
	}
	g.abortMu.Unlock()
}

// Err returns the abort cause, or nil while the group is healthy. Once
// non-nil it never changes.
func (g *Group) Err() error {
	g.abortMu.Lock()
	defer g.abortMu.Unlock()
	return g.abortErr
}

// DeadRanks lists the ranks whose scripted FailAt has fired, in ascending
// order. It must only be read after the rank goroutines have quiesced (the
// caller's join establishes the happens-before edge); recovery uses it to
// decide which replicas to rebuild.
func (g *Group) DeadRanks() []int {
	var dead []int
	for r, d := range g.dead {
		if d {
			dead = append(dead, r)
		}
	}
	return dead
}

// abortCause wraps the group's abort cause with the observing rank.
func (c *Comm) abortCause() error {
	return fmt.Errorf("comm: rank %d: collective aborted: %w", c.rank, c.g.Err())
}

// injectDelay sleeps the rank's scripted straggler delay, if any. The sleep
// observes the group abort channel: a straggler whose peers have already
// condemned the group wakes immediately with the abort cause instead of
// wedging its goroutine for the full scripted delay.
func (c *Comm) injectDelay() error {
	d := c.g.delay[c.rank]
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.g.abort:
		return c.abortCause()
	}
}

// recvOn receives the next message from ch (fed by peer `from`), bounded by
// the group deadline and the abort channel. On deadline expiry it aborts
// the group so every other rank unblocks too.
func (c *Comm) recvOn(ch chan []float64, from int) ([]float64, error) {
	select {
	case m := <-ch:
		return m, nil
	default:
	}
	var timeout <-chan time.Time
	if d := c.g.deadline; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m := <-ch:
		return m, nil
	case <-c.g.abort:
		return nil, c.abortCause()
	case <-timeout:
		err := fmt.Errorf("comm: rank %d: no message from rank %d within %v: %w",
			c.rank, from, c.g.deadline, ErrPeerLost)
		c.g.Abort(err)
		return nil, err
	}
}

// sendOn delivers data into ch (drained by peer `to`) under the same
// deadline/abort bounds as recvOn: a dead peer eventually stops draining
// its mailbox, so sends must be bounded-wait too or a survivor can hang one
// buffered message after the crash.
func (c *Comm) sendOn(ch chan []float64, data []float64, to int) error {
	select {
	case ch <- data:
		return nil
	default:
	}
	var timeout <-chan time.Time
	if d := c.g.deadline; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case ch <- data:
		return nil
	case <-c.g.abort:
		return c.abortCause()
	case <-timeout:
		err := fmt.Errorf("comm: rank %d: rank %d did not drain a message within %v: %w",
			c.rank, to, c.g.deadline, ErrPeerLost)
		c.g.Abort(err)
		return err
	}
}
