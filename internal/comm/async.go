package comm

// Non-blocking collectives. IAllReduceSum initiates the same chunked ring
// all-reduce as AllReduceSum but returns immediately with a Handle; the
// exchange (and any simulated link time) runs on a background goroutine so
// the caller overlaps local compute with the in-flight reduction and pays
// only max(compute, communication) instead of their sum. This is the
// MPI_Iallreduce shape the pipelined CG solve is built on.
//
// Semantics mirror MPI's one-outstanding-request discipline, enforced at
// runtime: a rank may have at most one collective (blocking or non-blocking)
// in flight, every rank must issue its collectives in the same global order,
// and the buffer passed to IAllReduceSum must not be read or written until
// Wait returns. Wait must be called exactly once, from the goroutine that
// owns the Comm; it establishes the happens-before edge that makes the
// reduced buffer and the traffic counters safe to read.
//
// Failure semantics follow the blocking collectives (see fault.go): the
// background goroutine observes the group deadline and abort channel at
// every blocking point, so a dead or wedged peer makes Wait return an error
// within one deadline instead of hanging — and the goroutine itself exits
// rather than leaking. A failed initiation (dead rank, aborted group)
// returns a pre-completed Handle whose Wait reports the error.

// Handle is an in-flight non-blocking collective. Wait blocks until the
// reduction has completed — or failed — on this rank; on success the result
// is visible in the buffer passed at initiation.
type Handle struct {
	c      *Comm
	done   chan struct{}
	err    error // written before done is closed, read after Wait observes it
	waited bool
}

// Wait completes the collective and reports how it ended: nil on a fully
// reduced buffer, an ErrPeerLost/ErrRankKilled-wrapping error if the group
// degraded while the reduction was in flight (the buffer then holds
// garbage). It must be called exactly once per Handle.
func (h *Handle) Wait() error {
	if h.waited {
		panic("comm: Handle.Wait called twice")
	}
	h.waited = true
	<-h.done
	h.c.end()
	return h.err
}

// IAllReduceSum starts a non-blocking elementwise sum of x across all ranks
// and returns a Handle. x holds the reduced result after Wait; until then it
// must not be touched. The traffic moved is identical to AllReduceSum —
// only the blocking point changes.
func (c *Comm) IAllReduceSum(x []float64) *Handle {
	h := &Handle{c: c, done: make(chan struct{})}
	if err := c.begin(); err != nil {
		// Failed initiation (dead rank or condemned group): hand back a
		// completed handle carrying the error so the caller's
		// Start/Finish discipline stays uniform.
		h.err = err
		close(h.done)
		return h
	}
	c.asyncColl++
	if c.g.size == 1 {
		// Nothing to exchange and RingAllReduceTime(p=1) is zero: complete
		// immediately so single-rank groups stay goroutine-free and
		// deterministic.
		close(h.done)
		return h
	}
	go func() {
		if err := c.injectDelay(); err != nil {
			h.err = err
			close(h.done)
			return
		}
		if err := c.ringReduce(x); err != nil {
			h.err = err
			close(h.done)
			return
		}
		c.simulate(len(x))
		close(h.done)
	}()
	return h
}
