package comm

// Multi-rank simultaneous death coverage plus the FaultPlan generation
// machinery. The single-victim kill matrix (fault_test.go) pins that ONE
// lost peer condemns the group within the deadline; these tests pin the
// harder variant the elastic-membership layer depends on — k ranks dying at
// the same collective must still surface as ErrPeerLost on every survivor,
// bounded-wait, with complete DeadRanks forensics and no leaked goroutines.

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestFaultInjectionMultiRankDeath drives every collective kind with TWO
// ranks scripted to die at the same collective index: each survivor must
// return an ErrPeerLost-wrapping error within a small multiple of the
// deadline, both dead ranks must report ErrRankKilled, and DeadRanks must
// list exactly the scripted pair.
func TestFaultInjectionMultiRankDeath(t *testing.T) {
	const p = 5
	const deadline = 100 * time.Millisecond
	pairs := [][2]int{{1, 3}, {0, p - 1}, {2, 3}}
	for _, kind := range collectiveKinds() {
		for _, victims := range pairs {
			t.Run(kind.name+"/kill"+string(rune('0'+victims[0]))+string(rune('0'+victims[1])), func(t *testing.T) {
				g := NewGroup(p)
				g.SetDeadline(deadline)
				g.FailAt(victims[0], 0)
				g.FailAt(victims[1], 0)
				start := time.Now()
				errs := runWithErrors(g, func(c *Comm) error {
					x := make([]float64, 64)
					x[0] = float64(c.Rank())
					return kind.run(c, x)
				})
				elapsed := time.Since(start)
				if elapsed > 20*deadline {
					t.Fatalf("survivors took %v to fail with 2 dead ranks, deadline is %v", elapsed, deadline)
				}
				for r, err := range errs {
					if err == nil {
						t.Fatalf("rank %d returned nil error with ranks %v dead", r, victims)
					}
					if r == victims[0] || r == victims[1] {
						if !errors.Is(err, ErrRankKilled) {
							t.Fatalf("killed rank %d error %v, want ErrRankKilled", r, err)
						}
					} else if !errors.Is(err, ErrPeerLost) {
						t.Fatalf("survivor %d error %v, want ErrPeerLost", r, err)
					}
				}
				dead := g.DeadRanks()
				if len(dead) != 2 || dead[0] != min(victims[0], victims[1]) || dead[1] != max(victims[0], victims[1]) {
					t.Fatalf("DeadRanks() = %v, want both of %v", dead, victims)
				}
				if g.Err() == nil {
					t.Fatal("group must be condemned after losing two peers")
				}
			})
		}
	}
}

// TestMultiRankDeathNoGoroutineLeak repeats the goroutine-leak regression
// with two simultaneous deaths on the non-blocking path: every survivor's
// background worker must exit after Wait surfaces the abort.
func TestMultiRankDeathNoGoroutineLeak(t *testing.T) {
	const p, trials = 5, 8
	before := runtime.NumGoroutine()
	for trial := 0; trial < trials; trial++ {
		g := NewGroup(p)
		g.SetDeadline(50 * time.Millisecond)
		g.FailAt(1, 0)
		g.FailAt(3, 0)
		errs := runWithErrors(g, func(c *Comm) error {
			return c.IAllReduceSum(make([]float64, 128)).Wait()
		})
		for r, err := range errs {
			if err == nil {
				t.Fatalf("trial %d rank %d: nil error with two dead ranks", trial, r)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after %d doubly-aborted async collectives",
				before, after, p*trials)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFaultPlanGenerations pins the multi-incarnation script: each Apply
// consumes exactly one generation, empty generations leave their group
// fault-free, out-of-range specs are dropped, and a drained plan is inert.
func TestFaultPlanGenerations(t *testing.T) {
	plan := NewFaultPlan().
		Generation(FaultSpec{Rank: 1, After: 0}).
		Generation(). // fault-free incarnation
		Generation(FaultSpec{Rank: 0, After: 0}, FaultSpec{Rank: 7, After: 0})
	if got := plan.Remaining(); got != 3 {
		t.Fatalf("Remaining() = %d, want 3", got)
	}

	// Generation 0: rank 1 dies at the first collective.
	g1 := NewGroup(3)
	g1.SetDeadline(100 * time.Millisecond)
	plan.Apply(g1)
	errs := runWithErrors(g1, func(c *Comm) error { return c.Barrier() })
	if errs[1] == nil || !errors.Is(errs[1], ErrRankKilled) {
		t.Fatalf("generation 0 did not kill rank 1: %v", errs[1])
	}

	// Generation 1: no faults, the collective must succeed.
	g2 := NewGroup(3)
	g2.SetDeadline(100 * time.Millisecond)
	plan.Apply(g2)
	for r, err := range runWithErrors(g2, func(c *Comm) error { return c.Barrier() }) {
		t.Helper()
		if err != nil {
			t.Fatalf("fault-free generation errored rank %d: %v", r, err)
		}
	}

	// Generation 2 on a 2-rank group: rank 7 no longer exists and is
	// dropped; rank 0 still dies.
	g3 := NewGroup(2)
	g3.SetDeadline(100 * time.Millisecond)
	plan.Apply(g3)
	errs = runWithErrors(g3, func(c *Comm) error { return c.Barrier() })
	if errs[0] == nil || !errors.Is(errs[0], ErrRankKilled) {
		t.Fatalf("generation 2 did not kill rank 0: %v", errs[0])
	}
	if dead := g3.DeadRanks(); len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("DeadRanks() = %v, want [0]", dead)
	}

	// Drained: applying past the last generation changes nothing.
	if got := plan.Remaining(); got != 0 {
		t.Fatalf("Remaining() after 3 applies = %d, want 0", got)
	}
	g4 := NewGroup(2)
	plan.Apply(g4)
	for r, err := range runWithErrors(g4, func(c *Comm) error { return c.Barrier() }) {
		if err != nil {
			t.Fatalf("drained plan injected a fault: rank %d: %v", r, err)
		}
	}
}
