package comm

// Multi-incarnation fault scripting. FailAt and Delay arm faults on ONE
// group, but the elastic-membership layer (package dist) rebuilds the group
// on every Recover/Shrink/Grow, deliberately leaving injected scripts
// behind. A FaultPlan closes that gap for tests that need a deterministic
// multi-failure schedule — e.g. shrink, re-grow, then fail again — without
// the test ever touching the intermediate trainer incarnations: each
// rebuilt group consumes the plan's next generation of scripted deaths.

import "sync"

// FaultSpec schedules one scripted rank death within a single group
// incarnation: the rank dies at its (After+1)-th collective initiation,
// exactly as Group.FailAt. Several specs in one generation script
// simultaneous multi-rank death.
type FaultSpec struct {
	Rank  int
	After int
}

// FaultPlan is an ordered sequence of fault GENERATIONS, one per group
// incarnation: the first Apply arms generation 0 on its group, the next
// Apply arms generation 1 on the next group, and so on. An empty generation
// leaves its incarnation fault-free; Apply past the last generation is a
// no-op. A FaultPlan is safe for concurrent use, but each Apply must (like
// FailAt itself) happen before the target group's collectives start.
type FaultPlan struct {
	mu   sync.Mutex
	gens [][]FaultSpec
	next int
}

// NewFaultPlan returns an empty plan; chain Generation calls to script it.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// Generation appends one incarnation's scripted deaths (none for a
// fault-free incarnation) and returns the plan for chaining.
func (p *FaultPlan) Generation(specs ...FaultSpec) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gens = append(p.gens, specs)
	return p
}

// Apply consumes the next unconsumed generation and arms its deaths on g.
// A spec whose rank does not exist in g — the membership the script
// anticipated has shrunk — is dropped silently: the schedule stays
// deterministic for the incarnations that do match.
func (p *FaultPlan) Apply(g *Group) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.next >= len(p.gens) {
		return
	}
	specs := p.gens[p.next]
	p.next++
	for _, s := range specs {
		if s.Rank < 0 || s.Rank >= g.Size() {
			continue
		}
		g.FailAt(s.Rank, s.After)
	}
}

// Remaining reports how many generations have not yet been applied.
func (p *FaultPlan) Remaining() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.gens) - p.next
}
