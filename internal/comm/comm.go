// Package comm provides the collective-communication layer for data-parallel
// VQMC: a group of in-process "ranks" connected by channels, with a real
// chunked ring all-reduce (reduce-scatter + all-gather), broadcast and
// barrier. It stands in for NCCL/MPI in the paper's multi-GPU setup — the
// algorithms are the real ones; only the transport is in-memory.
//
// Collectives return errors instead of hanging when the group degrades: a
// configurable deadline (Group.SetDeadline) bounds every blocking point, a
// group-level abort channel fans the first failure out to every rank —
// including the background goroutines of non-blocking collectives — and a
// fault-injection seam (Group.FailAt, Group.Delay, mirroring SetLink)
// scripts rank deaths and stragglers so the failure paths are testable.
// See fault.go. On a healthy group with no deadline the behavior (and the
// fast path) is unchanged and every error is nil.
//
// The package also exposes the standard alpha-beta cost model used to
// predict collective latency on modeled cluster links (see package cluster).
package comm

import (
	"fmt"
	"sync"
	"time"
)

// Group is a set of ranks that can perform collectives. Create it once,
// hand Rank endpoints to goroutines.
type Group struct {
	size  int
	right []chan []float64 // right[r]: messages flowing r -> (r+1)%size
	bcast []chan []float64 // per-rank broadcast mailboxes
	link  Link             // zero value: ideal network, no simulated cost

	// Bounded-wait failure machinery (see fault.go). deadline bounds every
	// blocking point; abort is closed (once, with abortErr recorded first)
	// when any rank declares the group dead; failAt/delay are the scripted
	// per-rank fault plans; dead and coll are per-rank, owner-goroutine
	// state: which ranks have died and how many collectives each has begun.
	deadline time.Duration
	abort    chan struct{}
	abortMu  sync.Mutex
	abortErr error
	failAt   []int // collective index at which the rank dies; -1 = never
	delay    []time.Duration
	dead     []bool
	coll     []int
}

// SetLink attaches an alpha-beta link model to the group: every subsequent
// collective additionally sleeps the modeled ring (or gather) time on each
// rank, so wall-clock measurements expose the latency that non-blocking
// collectives can hide behind compute. Call it before any collective runs;
// it must not race with in-flight collectives.
func (g *Group) SetLink(l Link) { g.link = l }

// NewGroup creates a communicator group of the given size.
func NewGroup(size int) *Group {
	if size < 1 {
		panic("comm: group size must be >= 1")
	}
	g := &Group{size: size}
	g.right = make([]chan []float64, size)
	g.bcast = make([]chan []float64, size)
	for i := range g.right {
		g.right[i] = make(chan []float64, 1)
		g.bcast[i] = make(chan []float64, 1)
	}
	g.abort = make(chan struct{})
	g.failAt = make([]int, size)
	for i := range g.failAt {
		g.failAt[i] = -1
	}
	g.delay = make([]time.Duration, size)
	g.dead = make([]bool, size)
	g.coll = make([]int, size)
	return g
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.size }

// Rank returns the endpoint for rank r.
func (g *Group) Rank(r int) *Comm {
	if r < 0 || r >= g.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", r, g.size))
	}
	return &Comm{g: g, rank: r}
}

// Comm is one rank's endpoint. Methods must be called collectively: every
// rank of the group calls the same method with compatible arguments, in the
// same order. A Comm is owned by one goroutine: all collective calls
// (including Handle.Wait) must come from that goroutine, and at most one
// collective — blocking or non-blocking — may be in flight per rank at a
// time. Traffic and collective counters are safe to read once every
// outstanding Handle has been waited on.
type Comm struct {
	g    *Group
	rank int
	// traffic accounting
	bytesSent int64
	messages  int64
	// collective accounting: blocking calls vs non-blocking initiations.
	syncColl  int64
	asyncColl int64
	inflight  bool
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.g.size }

// BytesSent reports cumulative payload bytes sent by this rank.
func (c *Comm) BytesSent() int64 { return c.bytesSent }

// Messages reports cumulative messages sent by this rank.
func (c *Comm) Messages() int64 { return c.messages }

// Collectives reports how many blocking collectives this rank has completed
// and how many non-blocking ones it has initiated. The split is the
// pipelining metric: a latency-bound solve wants its per-iteration
// reductions on the async side, where Wait lands after useful local work.
func (c *Comm) Collectives() (sync, async int64) { return c.syncColl, c.asyncColl }

// begin marks a collective in flight, enforcing the one-outstanding-per-rank
// rule that keeps ring messages of successive collectives from interleaving.
// It is also the fault-injection choke point: it fails fast on an aborted
// group, and fires the rank's scripted death at the configured collective
// index (counted per rank across all collective kinds).
func (c *Comm) begin() error {
	if c.inflight {
		panic("comm: collective started while another is still in flight on this rank (Wait first)")
	}
	g := c.g
	if err := g.Err(); err != nil {
		return fmt.Errorf("comm: rank %d: collective on aborted group: %w", c.rank, err)
	}
	if g.dead[c.rank] {
		return fmt.Errorf("comm: rank %d is dead: %w", c.rank, ErrRankKilled)
	}
	seq := g.coll[c.rank]
	g.coll[c.rank]++
	if g.failAt[c.rank] >= 0 && seq >= g.failAt[c.rank] {
		g.dead[c.rank] = true
		return fmt.Errorf("comm: rank %d killed at collective %d: %w", c.rank, seq, ErrRankKilled)
	}
	c.inflight = true
	return nil
}

func (c *Comm) end() { c.inflight = false }

// simulate sleeps the modeled ring all-reduce time for an n-element payload
// when the group carries a link model; a no-op otherwise.
func (c *Comm) simulate(n int) {
	c.sleepModeled(RingAllReduceTime(float64(n)*8, c.g.size, c.g.link))
}

func (c *Comm) sleepModeled(t time.Duration) {
	if c.g.link == (Link{}) || t <= 0 {
		return
	}
	time.Sleep(t)
}

func (c *Comm) sendRight(data []float64) error {
	c.bytesSent += int64(len(data)) * 8
	c.messages++
	return c.sendOn(c.g.right[c.rank], data, (c.rank+1)%c.g.size)
}

func (c *Comm) recvLeft() ([]float64, error) {
	left := (c.rank - 1 + c.g.size) % c.g.size
	return c.recvOn(c.g.right[left], left)
}

// chunkBounds splits [0,n) into p contiguous chunks.
func chunkBounds(n, p, i int) (lo, hi int) {
	return i * n / p, (i + 1) * n / p
}

// AllReduceSum sums x elementwise across all ranks, leaving the result in
// every rank's x. It is the chunked ring algorithm: p-1 reduce-scatter steps
// followed by p-1 all-gather steps, moving 2(p-1)/p of the vector per rank.
// The call blocks until this rank's participation (and any simulated link
// time) completes; IAllReduceSum is the non-blocking variant. A non-nil
// error means the group degraded (deadline exceeded waiting on a peer, the
// group aborted, or this rank was killed by fault injection) and x holds
// partially reduced garbage; the group is condemned and every subsequent
// collective fails fast.
func (c *Comm) AllReduceSum(x []float64) error {
	if err := c.begin(); err != nil {
		return err
	}
	defer c.end()
	c.syncColl++
	if err := c.injectDelay(); err != nil {
		return err
	}
	if err := c.ringReduce(x); err != nil {
		return err
	}
	c.simulate(len(x))
	return nil
}

// ringReduce is the raw chunked ring all-reduce shared by the blocking and
// non-blocking entry points.
func (c *Comm) ringReduce(x []float64) error {
	p := c.g.size
	if p == 1 {
		return nil
	}
	n := len(x)
	// Reduce-scatter: after step s, the chunk (rank-s-1) accumulated one
	// more contribution; after p-1 steps rank r owns the fully reduced
	// chunk (r+1) mod p.
	for s := 0; s < p-1; s++ {
		sendIdx := (c.rank - s + p) % p
		recvIdx := (c.rank - s - 1 + p) % p
		lo, hi := chunkBounds(n, p, sendIdx)
		out := make([]float64, hi-lo)
		copy(out, x[lo:hi])
		if err := c.sendRight(out); err != nil {
			return err
		}
		in, err := c.recvLeft()
		if err != nil {
			return err
		}
		lo, hi = chunkBounds(n, p, recvIdx)
		for i := range in {
			x[lo+i] += in[i]
		}
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < p-1; s++ {
		sendIdx := (c.rank + 1 - s + p) % p
		recvIdx := (c.rank - s + p) % p
		lo, hi := chunkBounds(n, p, sendIdx)
		out := make([]float64, hi-lo)
		copy(out, x[lo:hi])
		if err := c.sendRight(out); err != nil {
			return err
		}
		in, err := c.recvLeft()
		if err != nil {
			return err
		}
		lo, hi = chunkBounds(n, p, recvIdx)
		copy(x[lo:hi], in)
	}
	return nil
}

// NaiveAllReduceSum is the gather-to-root-then-broadcast alternative kept
// for the ablation benchmark: it moves (p-1)*n to the root link instead of
// spreading traffic around the ring. Error semantics match AllReduceSum.
func (c *Comm) NaiveAllReduceSum(x []float64) error {
	if err := c.begin(); err != nil {
		return err
	}
	defer c.end()
	c.syncColl++
	if err := c.injectDelay(); err != nil {
		return err
	}
	defer c.sleepModeled(NaiveAllReduceTime(float64(len(x))*8, c.g.size, c.g.link))
	p := c.g.size
	if p == 1 {
		return nil
	}
	if c.rank == 0 {
		for r := 1; r < p; r++ {
			in, err := c.recvOn(c.g.bcast[0], r)
			if err != nil {
				return err
			}
			for i := range in {
				x[i] += in[i]
			}
		}
		for r := 1; r < p; r++ {
			out := make([]float64, len(x))
			copy(out, x)
			c.bytesSent += int64(len(x)) * 8
			c.messages++
			if err := c.sendOn(c.g.bcast[r], out, r); err != nil {
				return err
			}
		}
		return nil
	}
	out := make([]float64, len(x))
	copy(out, x)
	c.bytesSent += int64(len(x)) * 8
	c.messages++
	if err := c.sendOn(c.g.bcast[0], out, 0); err != nil {
		return err
	}
	in, err := c.recvOn(c.g.bcast[c.rank], 0)
	if err != nil {
		return err
	}
	copy(x, in)
	return nil
}

// Broadcast copies root's x into every rank's x by passing it around the
// ring (p-1 payload hops), then circulates a one-element acknowledgement
// token around the full ring, originated by the last payload recipient.
// The ack makes Broadcast synchronizing: no rank returns until every rank
// holds the payload, so a dead rank anywhere on the ring surfaces as a
// bounded-wait error on every survivor — none of them can complete locally
// against a lost peer and sail past the failure. Error semantics match
// AllReduceSum.
func (c *Comm) Broadcast(x []float64, root int) error {
	if err := c.begin(); err != nil {
		return err
	}
	defer c.end()
	c.syncColl++
	if err := c.injectDelay(); err != nil {
		return err
	}
	// Modeled cost: p-1 sequential full-vector hops around the ring (the
	// one-element ack round is not charged).
	defer c.sleepModeled(time.Duration(c.g.size-1) * c.g.link.Transfer(float64(len(x))*8))
	p := c.g.size
	if p == 1 {
		return nil
	}
	// Distance from root along the ring.
	dist := (c.rank - root + p) % p
	if dist > 0 {
		in, err := c.recvLeft()
		if err != nil {
			return err
		}
		copy(x, in)
	}
	if dist < p-1 {
		out := make([]float64, len(x))
		copy(out, x)
		if err := c.sendRight(out); err != nil {
			return err
		}
	}
	// Ack round: the last payload recipient (dist p-1) originates a token
	// that travels the full ring and is consumed one hop before it (dist
	// p-2; the root for p == 2). Receiving the token proves every rank at
	// greater ring distance — i.e. all of them — got the payload.
	ack := []float64{1}
	if dist < p-1 {
		var err error
		if ack, err = c.recvLeft(); err != nil {
			return err
		}
	}
	if dist != (p-2+p)%p {
		if err := c.sendRight(ack); err != nil {
			return err
		}
	}
	return nil
}

// Barrier blocks until every rank has entered it (or the group degrades, in
// which case it returns the abort cause like every other collective).
func (c *Comm) Barrier() error {
	tok := []float64{1}
	return c.AllReduceSum(tok)
}

// Link is an alpha-beta communication link: per-message latency plus
// inverse bandwidth.
type Link struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second
}

// Transfer returns the modeled time to move nBytes across the link.
func (l Link) Transfer(nBytes float64) time.Duration {
	if l.Bandwidth <= 0 {
		return l.Latency
	}
	return l.Latency + time.Duration(nBytes/l.Bandwidth*float64(time.Second))
}

// RingAllReduceTime is the alpha-beta cost of a p-rank ring all-reduce of
// nBytes: 2(p-1) steps, each moving nBytes/p over the slowest link.
func RingAllReduceTime(nBytes float64, p int, link Link) time.Duration {
	if p <= 1 {
		return 0
	}
	steps := 2 * (p - 1)
	return time.Duration(steps) * link.Transfer(nBytes/float64(p))
}

// NaiveAllReduceTime is the gather+broadcast cost: the root link carries
// (p-1) full-vector messages in, then (p-1) out.
func NaiveAllReduceTime(nBytes float64, p int, link Link) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(2*(p-1)) * link.Transfer(nBytes)
}

// HierarchicalAllReduceTime models the two-level collective used on
// L1 nodes x L2 GPUs-per-node clusters: ring reduce within each node over
// the fast intra link, ring across node leaders over the slow inter link,
// then an intra-node broadcast.
func HierarchicalAllReduceTime(nBytes float64, nodes, perNode int, intra, inter Link) time.Duration {
	var t time.Duration
	if perNode > 1 {
		t += RingAllReduceTime(nBytes, perNode, intra)
	}
	if nodes > 1 {
		t += RingAllReduceTime(nBytes, nodes, inter)
	}
	if perNode > 1 && nodes > 1 {
		// Leaders rebroadcast the cross-node result inside each node.
		t += intra.Transfer(nBytes)
	}
	return t
}
