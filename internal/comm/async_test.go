package comm

import (
	"math"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// TestIAllReduceMatchesBlocking checks that the non-blocking all-reduce
// produces exactly the bytes of the blocking one — same algorithm, same
// reduction order — for group sizes 1, 2, 3 and 7 and a ragged length.
func TestIAllReduceMatchesBlocking(t *testing.T) {
	const n = 103
	for _, p := range []int{1, 2, 3, 7} {
		r := rng.New(uint64(100 + p))
		syncData := make([][]float64, p)
		asyncData := make([][]float64, p)
		for rank := 0; rank < p; rank++ {
			syncData[rank] = make([]float64, n)
			r.FillUniform(syncData[rank], -10, 10)
			asyncData[rank] = append([]float64(nil), syncData[rank]...)
		}
		runCollective(NewGroup(p), func(c *Comm) { c.AllReduceSum(syncData[c.Rank()]) })
		runCollective(NewGroup(p), func(c *Comm) { c.IAllReduceSum(asyncData[c.Rank()]).Wait() })
		for rank := 0; rank < p; rank++ {
			for i := range syncData[rank] {
				if syncData[rank][i] != asyncData[rank][i] {
					t.Fatalf("p=%d rank %d elem %d: async %v != sync %v",
						p, rank, i, asyncData[rank][i], syncData[rank][i])
				}
			}
		}
	}
}

// TestIAllReduceOverlapsCompute pins the point of the non-blocking variant:
// local work performed between initiation and Wait proceeds while the
// reduction is in flight, and the reduced result is correct afterwards.
func TestIAllReduceOverlapsCompute(t *testing.T) {
	const p, n = 3, 64
	g := NewGroup(p)
	sums := make([]float64, p)
	runCollective(g, func(c *Comm) {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(c.Rank() + 1)
		}
		h := c.IAllReduceSum(x)
		// Overlap window: local compute that must not touch x.
		var local float64
		for i := 0; i < 1000; i++ {
			local += math.Sqrt(float64(i))
		}
		h.Wait()
		sums[c.Rank()] = x[0] + local - local
	})
	for rank := 0; rank < p; rank++ {
		if sums[rank] != 1+2+3 {
			t.Fatalf("rank %d reduced value %v, want 6", rank, sums[rank])
		}
	}
}

// TestIAllReduceBackToBack issues several async collectives in sequence per
// rank (each waited before the next starts) to verify the per-channel FIFO
// keeps successive reductions from interleaving even when ranks run ahead.
func TestIAllReduceBackToBack(t *testing.T) {
	const p, n, rounds = 4, 37, 8
	g := NewGroup(p)
	results := make([][]float64, p)
	runCollective(g, func(c *Comm) {
		got := make([]float64, rounds)
		for round := 0; round < rounds; round++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = float64((round+1)*(c.Rank()+1)) + float64(i)
			}
			h := c.IAllReduceSum(x)
			h.Wait()
			got[round] = x[0]
		}
		results[c.Rank()] = got
	})
	for rank := 0; rank < p; rank++ {
		for round := 0; round < rounds; round++ {
			want := float64((round + 1) * (1 + 2 + 3 + 4))
			if results[rank][round] != want {
				t.Fatalf("rank %d round %d: got %v want %v", rank, round, results[rank][round], want)
			}
		}
	}
}

// TestCollectiveAccounting verifies the sync/async counters and that async
// traffic equals blocking traffic.
func TestCollectiveAccounting(t *testing.T) {
	const p, n = 3, 48 // n divisible by p so every rank moves equal bytes
	g := NewGroup(p)
	runCollective(g, func(c *Comm) {
		x := make([]float64, n)
		c.AllReduceSum(x)
		c.IAllReduceSum(x).Wait()
		c.IAllReduceSum(x).Wait()
		sync, async := c.Collectives()
		if sync != 1 || async != 2 {
			t.Errorf("rank %d: collectives (%d,%d), want (1,2)", c.Rank(), sync, async)
		}
		// Each collective moves 2(p-1)/p of the vector: 2(p-1) chunk
		// messages of n/p elements each, n divisible by p here.
		wantBytes := int64(3 * 2 * (p - 1) * (n / p) * 8)
		if c.BytesSent() != wantBytes {
			t.Errorf("rank %d: %d bytes sent, want %d", c.Rank(), c.BytesSent(), wantBytes)
		}
	})
}

// TestOneOutstandingCollective demands a panic when a rank starts a second
// collective while one is still in flight — the interleaving guard.
func TestOneOutstandingCollective(t *testing.T) {
	g := NewGroup(2)
	c0, c1 := g.Rank(0), g.Rank(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		x := make([]float64, 4)
		c1.AllReduceSum(x)
	}()
	x := make([]float64, 4)
	h := c0.IAllReduceSum(x)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second collective with one in flight should panic")
			}
		}()
		c0.IAllReduceSum(make([]float64, 4))
	}()
	h.Wait()
	<-done
	// Double Wait is a bug too.
	defer func() {
		if recover() == nil {
			t.Error("second Wait should panic")
		}
	}()
	h.Wait()
}

// TestSimulatedLinkOverlap measures the mechanism the pipelined solver
// exploits: with a simulated-latency link, a blocking collective costs the
// modeled ring time inline, while a non-blocking one lets the same modeled
// time run concurrently with local compute of comparable duration — so the
// overlapped sequence finishes measurably sooner than the blocking one.
func TestSimulatedLinkOverlap(t *testing.T) {
	const p, n, rounds = 2, 256, 5
	link := Link{Latency: 5 * time.Millisecond}
	// Local compute is simulated with a sleep rather than a spin so the
	// test stays meaningful on single-CPU machines: what is measured is
	// whether the modeled link time runs concurrently with it.
	busy := time.Sleep
	run := func(async bool) time.Duration {
		g := NewGroup(p)
		g.SetLink(link)
		start := time.Now()
		runCollective(g, func(c *Comm) {
			x := make([]float64, n)
			for round := 0; round < rounds; round++ {
				if async {
					h := c.IAllReduceSum(x)
					busy(RingAllReduceTime(float64(n)*8, p, link))
					h.Wait()
				} else {
					c.AllReduceSum(x)
					busy(RingAllReduceTime(float64(n)*8, p, link))
				}
			}
		})
		return time.Since(start)
	}
	blocking := run(false)
	overlapped := run(true)
	// Perfect overlap would halve the time; demand at least a 25% cut to
	// stay robust on loaded CI machines.
	if overlapped > blocking*3/4 {
		t.Fatalf("overlap hid no latency: async %v vs blocking %v", overlapped, blocking)
	}
}
