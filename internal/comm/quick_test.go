package comm

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// TestAllReduceProperty drives the ring all-reduce with randomized group
// sizes, vector lengths and payloads via testing/quick: the result must
// always equal the serial sum on every rank.
func TestAllReduceProperty(t *testing.T) {
	f := func(pRaw, nRaw uint8, seed uint64) bool {
		p := 1 + int(pRaw)%8
		n := 1 + int(nRaw)%257
		r := rng.New(seed)
		data := make([][]float64, p)
		want := make([]float64, n)
		for rank := range data {
			data[rank] = make([]float64, n)
			r.FillUniform(data[rank], -10, 10)
			for i, v := range data[rank] {
				want[i] += v
			}
		}
		g := NewGroup(p)
		runCollective(g, func(c *Comm) { c.AllReduceSum(data[c.Rank()]) })
		for rank := 0; rank < p; rank++ {
			for i := range want {
				if math.Abs(data[rank][i]-want[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBroadcastProperty checks that broadcast delivers the root payload for
// arbitrary group sizes and roots.
func TestBroadcastProperty(t *testing.T) {
	f := func(pRaw, rootRaw uint8, payload float64) bool {
		p := 1 + int(pRaw)%8
		root := int(rootRaw) % p
		if math.IsNaN(payload) {
			payload = 0
		}
		data := make([][]float64, p)
		for rank := range data {
			data[rank] = []float64{float64(rank)}
		}
		data[root][0] = payload
		g := NewGroup(p)
		runCollective(g, func(c *Comm) { c.Broadcast(data[c.Rank()], root) })
		for rank := 0; rank < p; rank++ {
			if data[rank][0] != payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
