package comm

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// TestAllReduceProperty drives the ring all-reduce with randomized group
// sizes, vector lengths and payloads via testing/quick: the result must
// always equal the serial sum on every rank.
func TestAllReduceProperty(t *testing.T) {
	f := func(pRaw, nRaw uint8, seed uint64) bool {
		p := 1 + int(pRaw)%8
		n := 1 + int(nRaw)%257
		r := rng.New(seed)
		data := make([][]float64, p)
		want := make([]float64, n)
		for rank := range data {
			data[rank] = make([]float64, n)
			r.FillUniform(data[rank], -10, 10)
			for i, v := range data[rank] {
				want[i] += v
			}
		}
		g := NewGroup(p)
		runCollective(g, func(c *Comm) { c.AllReduceSum(data[c.Rank()]) })
		for rank := 0; rank < p; rank++ {
			for i := range want {
				if math.Abs(data[rank][i]-want[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPackedAllReduceProperty drives the packed [vector | scalars] payload
// with randomized vector lengths (deliberately non-divisible by the group
// size) and scalar counts, for group sizes 1, 2, 3 and 7: one all-reduce of
// the packed buffer must match per-piece all-reduces of the vector and each
// scalar, and the packed result must be bit-identical across ranks — the
// property the distributed SR solve's one-collective-per-CG-iteration
// packing relies on.
func TestPackedAllReduceProperty(t *testing.T) {
	f := func(nRaw, sRaw uint8, seed uint64) bool {
		for _, p := range []int{1, 2, 3, 7} {
			n := 1 + int(nRaw)%211
			if p > 1 && n%p == 0 {
				n++ // force ragged ring chunking
			}
			ns := 1 + int(sRaw)%5
			r := rng.New(seed + uint64(p))

			packs := make([]*Packed, p)
			vecs := make([][]float64, p)    // separate vector payloads
			scals := make([][][]float64, p) // separate 1-elem scalar payloads
			for rank := 0; rank < p; rank++ {
				lens := make([]int, 1+ns)
				lens[0] = n
				for i := 1; i <= ns; i++ {
					lens[i] = 1
				}
				packs[rank] = NewPacked(lens...)
				r.FillUniform(packs[rank].Buf(), -10, 10)
				vecs[rank] = append([]float64(nil), packs[rank].Section(0)...)
				scals[rank] = make([][]float64, ns)
				for i := 0; i < ns; i++ {
					scals[rank][i] = append([]float64(nil), packs[rank].Section(1+i)...)
				}
			}

			g := NewGroup(p)
			runCollective(g, func(c *Comm) { packs[c.Rank()].AllReduce(c) })
			// Per-piece references, each reduced in its own collective.
			gv := NewGroup(p)
			runCollective(gv, func(c *Comm) { c.AllReduceSum(vecs[c.Rank()]) })
			for i := 0; i < ns; i++ {
				gs := NewGroup(p)
				runCollective(gs, func(c *Comm) { c.AllReduceSum(scals[c.Rank()][i]) })
			}

			for rank := 0; rank < p; rank++ {
				vec := packs[rank].Section(0)
				for j := range vec {
					if math.Abs(vec[j]-vecs[rank][j]) > 1e-8 {
						return false
					}
				}
				for i := 0; i < ns; i++ {
					if math.Abs(packs[rank].Section(1+i)[0]-scals[rank][i][0]) > 1e-8 {
						return false
					}
				}
				// Cross-rank bit-identity of the packed result.
				for j, v := range packs[rank].Buf() {
					if v != packs[0].Buf()[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPackedLayout pins the section bookkeeping: aliasing, offsets, Zero.
func TestPackedLayout(t *testing.T) {
	p := NewPacked(3, 0, 2, 1)
	if p.Len() != 6 {
		t.Fatalf("Len = %d, want 6", p.Len())
	}
	if len(p.Section(0)) != 3 || len(p.Section(1)) != 0 || len(p.Section(2)) != 2 || len(p.Section(3)) != 1 {
		t.Fatal("section lengths wrong")
	}
	p.Section(0)[2] = 7
	p.Section(2)[0] = 8
	p.Section(3)[0] = 9
	want := []float64{0, 0, 7, 8, 0, 9}
	for i, v := range p.Buf() {
		if v != want[i] {
			t.Fatalf("buf[%d] = %v, want %v (sections must alias the buffer)", i, v, want[i])
		}
	}
	p.Zero()
	for i, v := range p.Buf() {
		if v != 0 {
			t.Fatalf("buf[%d] = %v after Zero", i, v)
		}
	}
	for _, bad := range []func(){
		func() { NewPacked(-1) },
		func() { NewPacked() },
		func() { NewPacked(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid layout should panic")
				}
			}()
			bad()
		}()
	}
}

// TestBroadcastProperty checks that broadcast delivers the root payload for
// arbitrary group sizes and roots.
func TestBroadcastProperty(t *testing.T) {
	f := func(pRaw, rootRaw uint8, payload float64) bool {
		p := 1 + int(pRaw)%8
		root := int(rootRaw) % p
		if math.IsNaN(payload) {
			payload = 0
		}
		data := make([][]float64, p)
		for rank := range data {
			data[rank] = []float64{float64(rank)}
		}
		data[root][0] = payload
		g := NewGroup(p)
		runCollective(g, func(c *Comm) { c.Broadcast(data[c.Rank()], root) })
		for rank := 0; rank < p; rank++ {
			if data[rank][0] != payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
