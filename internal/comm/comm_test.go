package comm

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// runCollective executes body on every rank concurrently.
func runCollective(g *Group, body func(c *Comm)) {
	var wg sync.WaitGroup
	wg.Add(g.Size())
	for r := 0; r < g.Size(); r++ {
		go func(r int) {
			defer wg.Done()
			body(g.Rank(r))
		}(r)
	}
	wg.Wait()
}

func TestAllReduceSumMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for _, n := range []int{1, 2, 5, 64, 1000} {
			r := rng.New(uint64(p*1000 + n))
			data := make([][]float64, p)
			want := make([]float64, n)
			for rank := range data {
				data[rank] = make([]float64, n)
				r.FillUniform(data[rank], -1, 1)
				for i, v := range data[rank] {
					want[i] += v
				}
			}
			g := NewGroup(p)
			runCollective(g, func(c *Comm) {
				c.AllReduceSum(data[c.Rank()])
			})
			for rank := 0; rank < p; rank++ {
				for i := range want {
					if math.Abs(data[rank][i]-want[i]) > 1e-9 {
						t.Fatalf("p=%d n=%d rank %d elem %d: %v want %v",
							p, n, rank, i, data[rank][i], want[i])
					}
				}
			}
		}
	}
}

func TestNaiveAllReduceMatchesRing(t *testing.T) {
	p, n := 5, 200
	r := rng.New(9)
	ring := make([][]float64, p)
	naive := make([][]float64, p)
	for rank := 0; rank < p; rank++ {
		ring[rank] = make([]float64, n)
		r.FillUniform(ring[rank], -1, 1)
		naive[rank] = append([]float64(nil), ring[rank]...)
	}
	g1 := NewGroup(p)
	runCollective(g1, func(c *Comm) { c.AllReduceSum(ring[c.Rank()]) })
	g2 := NewGroup(p)
	runCollective(g2, func(c *Comm) { c.NaiveAllReduceSum(naive[c.Rank()]) })
	for rank := 0; rank < p; rank++ {
		for i := 0; i < n; i++ {
			if math.Abs(ring[rank][i]-naive[rank][i]) > 1e-9 {
				t.Fatalf("ring and naive disagree at rank %d elem %d", rank, i)
			}
		}
	}
}

// TestRingMatchesNaiveProperty is a property test over random vector
// lengths chosen to NOT be divisible by the group size — the chunk-boundary
// edge cases of the ring algorithm, including lengths smaller than the
// group (empty chunks) — for group sizes 1, 2, 3, and 7. The chunked ring
// and the gather-broadcast reference must agree elementwise on every rank.
func TestRingMatchesNaiveProperty(t *testing.T) {
	r := rng.New(424242)
	for _, p := range []int{1, 2, 3, 7} {
		lengths := []int{1, 2, p - 1, p + 1} // deliberate sub- and near-group sizes
		for trial := 0; trial < 16; trial++ {
			lengths = append(lengths, 1+r.Intn(200))
		}
		for _, n := range lengths {
			if n < 1 {
				continue
			}
			if p > 1 && n%p == 0 {
				n++ // force a ragged chunking
			}
			ring := make([][]float64, p)
			naive := make([][]float64, p)
			for rank := 0; rank < p; rank++ {
				ring[rank] = make([]float64, n)
				r.FillUniform(ring[rank], -10, 10)
				naive[rank] = append([]float64(nil), ring[rank]...)
			}
			g1 := NewGroup(p)
			runCollective(g1, func(c *Comm) { c.AllReduceSum(ring[c.Rank()]) })
			g2 := NewGroup(p)
			runCollective(g2, func(c *Comm) { c.NaiveAllReduceSum(naive[c.Rank()]) })
			for rank := 0; rank < p; rank++ {
				for i := 0; i < n; i++ {
					if math.Abs(ring[rank][i]-naive[rank][i]) > 1e-9 {
						t.Fatalf("p=%d n=%d rank=%d elem=%d: ring %v naive %v",
							p, n, rank, i, ring[rank][i], naive[rank][i])
					}
				}
			}
			// All ranks of the ring result must also be bit-identical to
			// each other — the invariant the dist trainer builds on.
			for rank := 1; rank < p; rank++ {
				for i := 0; i < n; i++ {
					if ring[rank][i] != ring[0][i] {
						t.Fatalf("p=%d n=%d: ranks 0 and %d differ bitwise at elem %d",
							p, n, rank, i)
					}
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		for root := 0; root < p; root++ {
			data := make([][]float64, p)
			for rank := range data {
				data[rank] = []float64{float64(rank), float64(rank * 2)}
			}
			g := NewGroup(p)
			runCollective(g, func(c *Comm) { c.Broadcast(data[c.Rank()], root) })
			for rank := 0; rank < p; rank++ {
				if data[rank][0] != float64(root) || data[rank][1] != float64(root*2) {
					t.Fatalf("p=%d root=%d rank=%d got %v", p, root, rank, data[rank])
				}
			}
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	g := NewGroup(6)
	done := make(chan struct{})
	go func() {
		runCollective(g, func(c *Comm) {
			for i := 0; i < 10; i++ {
				c.Barrier()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("barrier deadlocked")
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// The same group must be reusable for many rounds without deadlock or
	// cross-round interference.
	p, n := 4, 33
	g := NewGroup(p)
	data := make([][]float64, p)
	for rank := range data {
		data[rank] = make([]float64, n)
	}
	runCollective(g, func(c *Comm) {
		for round := 0; round < 50; round++ {
			x := data[c.Rank()]
			for i := range x {
				x[i] = float64(c.Rank() + round)
			}
			c.AllReduceSum(x)
			// Sum over ranks of (rank + round) = p*round + p(p-1)/2.
			want := float64(p*round + p*(p-1)/2)
			for i := range x {
				if x[i] != want {
					t.Errorf("round %d rank %d: got %v want %v", round, c.Rank(), x[i], want)
					return
				}
			}
		}
	})
}

func TestTrafficAccounting(t *testing.T) {
	p, n := 4, 100
	g := NewGroup(p)
	var bytes [4]int64
	data := make([][]float64, p)
	for rank := range data {
		data[rank] = make([]float64, n)
	}
	runCollective(g, func(c *Comm) {
		c.AllReduceSum(data[c.Rank()])
		bytes[c.Rank()] = c.BytesSent()
	})
	// Ring all-reduce sends 2(p-1) chunks of ~n/p elements per rank.
	wantApprox := int64(2 * (p - 1) * (n / p) * 8)
	for rank, b := range bytes {
		if b < wantApprox-64 || b > wantApprox+64 {
			t.Fatalf("rank %d sent %d bytes, want ~%d", rank, b, wantApprox)
		}
	}
}

func TestRingTimeModel(t *testing.T) {
	link := Link{Latency: time.Microsecond, Bandwidth: 1e9}
	if RingAllReduceTime(1e6, 1, link) != 0 {
		t.Fatal("single rank should cost nothing")
	}
	t2 := RingAllReduceTime(1e6, 2, link)
	// 2 steps of 0.5MB at 1GB/s = 1ms + 2us latency.
	want := 2*time.Microsecond + time.Duration(1e6/1e9*1e9)*time.Nanosecond
	if t2 < want*9/10 || t2 > want*11/10 {
		t.Fatalf("ring time %v, want ~%v", t2, want)
	}
	// Ring moves 2(p-1)/p of the data regardless of p: time should be
	// nearly flat in p for bandwidth-dominated transfers.
	t16 := RingAllReduceTime(1e6, 16, link)
	if t16 > 3*t2 {
		t.Fatalf("ring time grew too fast with p: %v -> %v", t2, t16)
	}
	// Naive should be much worse at large p.
	if NaiveAllReduceTime(1e6, 16, link) < 5*t16 {
		t.Fatalf("naive all-reduce model should dominate ring at p=16")
	}
}

func TestHierarchicalTimeModel(t *testing.T) {
	intra := Link{Latency: 5 * time.Microsecond, Bandwidth: 100e9}
	inter := Link{Latency: 20 * time.Microsecond, Bandwidth: 10e9}
	single := HierarchicalAllReduceTime(1e6, 1, 1, intra, inter)
	if single != 0 {
		t.Fatal("1x1 should cost nothing")
	}
	intraOnly := HierarchicalAllReduceTime(1e6, 1, 4, intra, inter)
	multi := HierarchicalAllReduceTime(1e6, 4, 4, intra, inter)
	if multi <= intraOnly {
		t.Fatal("adding inter-node stage should cost more")
	}
	// Inter-node stage should dominate: slower link.
	interOnly := HierarchicalAllReduceTime(1e6, 4, 1, intra, inter)
	if interOnly <= intraOnly {
		t.Fatal("inter-node ring should be slower than intra-node ring")
	}
}

func TestRankBounds(t *testing.T) {
	g := NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range rank")
		}
	}()
	g.Rank(2)
}

func BenchmarkRingAllReduce8x4096(b *testing.B) {
	g := NewGroup(8)
	data := make([][]float64, 8)
	for i := range data {
		data[i] = make([]float64, 4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollective(g, func(c *Comm) { c.AllReduceSum(data[c.Rank()]) })
	}
}

func BenchmarkNaiveAllReduce8x4096(b *testing.B) {
	g := NewGroup(8)
	data := make([][]float64, 8)
	for i := range data {
		data[i] = make([]float64, 4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCollective(g, func(c *Comm) { c.NaiveAllReduceSum(data[c.Rank()]) })
	}
}
