package comm

// Fault-injection and bounded-wait regression tests: the hang-forever
// failure class. Every test here would deadlock (and time out the whole
// suite) on the pre-deadline implementation, so they double as liveness
// regressions: a surviving rank must ERROR, within the configured deadline,
// never block forever — and the background goroutines of non-blocking
// collectives must exit rather than leak.

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// collectiveKind enumerates the collective entry points the kill matrix
// drives; the CI race job runs the full matrix (rank x kind).
type collectiveKind struct {
	name string
	run  func(c *Comm, x []float64) error
}

func collectiveKinds() []collectiveKind {
	return []collectiveKind{
		{"AllReduceSum", func(c *Comm, x []float64) error { return c.AllReduceSum(x) }},
		{"NaiveAllReduceSum", func(c *Comm, x []float64) error { return c.NaiveAllReduceSum(x) }},
		{"Broadcast", func(c *Comm, x []float64) error { return c.Broadcast(x, 0) }},
		{"Barrier", func(c *Comm, x []float64) error { return c.Barrier() }},
		{"IAllReduceSum", func(c *Comm, x []float64) error { return c.IAllReduceSum(x).Wait() }},
		{"PackedAllReduce", func(c *Comm, x []float64) error {
			p := NewPacked(len(x) - 1, 1)
			copy(p.Buf(), x)
			return p.AllReduce(c)
		}},
	}
}

// runWithErrors executes body on every rank concurrently and returns the
// per-rank errors.
func runWithErrors(g *Group, body func(c *Comm) error) []error {
	errs := make([]error, g.Size())
	var wg sync.WaitGroup
	wg.Add(g.Size())
	for r := 0; r < g.Size(); r++ {
		go func(r int) {
			defer wg.Done()
			errs[r] = body(g.Rank(r))
		}(r)
	}
	wg.Wait()
	return errs
}

// TestFaultInjectionKillMatrix is the deadlock-regression matrix: kill rank
// r in {0, mid, last} at collective 0 under every collective kind, and
// demand that EVERY surviving rank returns an ErrPeerLost-wrapping error
// within a small multiple of the deadline while the killed rank reports
// ErrRankKilled. Any hang fails the suite's timeout.
func TestFaultInjectionKillMatrix(t *testing.T) {
	const p = 5
	const deadline = 100 * time.Millisecond
	for _, kind := range collectiveKinds() {
		for _, victim := range []int{0, p / 2, p - 1} {
			t.Run(kind.name+"/kill"+string(rune('0'+victim)), func(t *testing.T) {
				g := NewGroup(p)
				g.SetDeadline(deadline)
				g.FailAt(victim, 0)
				start := time.Now()
				errs := runWithErrors(g, func(c *Comm) error {
					x := make([]float64, 64)
					x[0] = float64(c.Rank())
					return kind.run(c, x)
				})
				elapsed := time.Since(start)
				// Generous bound: one deadline for detection, slack for a
				// loaded CI box. The point is "bounded", not "instant".
				if elapsed > 20*deadline {
					t.Fatalf("survivors took %v to fail, deadline is %v", elapsed, deadline)
				}
				for r, err := range errs {
					if err == nil {
						t.Fatalf("rank %d returned nil error with rank %d dead", r, victim)
					}
					if r == victim {
						if !errors.Is(err, ErrRankKilled) {
							t.Fatalf("killed rank %d error %v, want ErrRankKilled", r, err)
						}
					} else if !errors.Is(err, ErrPeerLost) {
						t.Fatalf("survivor %d error %v, want ErrPeerLost", r, err)
					}
				}
				if dead := g.DeadRanks(); len(dead) != 1 || dead[0] != victim {
					t.Fatalf("DeadRanks() = %v, want [%d]", dead, victim)
				}
				if g.Err() == nil {
					t.Fatal("group must be condemned after a lost peer")
				}
			})
		}
	}
}

// TestFailAtLaterCollective kills a rank only at its third collective: the
// first two must succeed on every rank, the third must fail everywhere.
func TestFailAtLaterCollective(t *testing.T) {
	const p = 3
	g := NewGroup(p)
	g.SetDeadline(100 * time.Millisecond)
	g.FailAt(1, 2)
	errs := runWithErrors(g, func(c *Comm) error {
		for round := 0; round < 3; round++ {
			x := []float64{1, 2, 3}
			if err := c.AllReduceSum(x); err != nil {
				if round != 2 {
					return errors.Join(errors.New("failed before the scripted collective"), err)
				}
				return err
			}
			if x[0] != p {
				t.Errorf("rank %d round %d: bad reduction %v", c.Rank(), round, x[0])
			}
		}
		return errors.New("third collective did not fail")
	})
	for r, err := range errs {
		if err == nil || !errors.Is(err, ErrPeerLost) && !errors.Is(err, ErrRankKilled) {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestStragglerBelowDeadlineSucceeds pins the distinction between slow and
// dead: a straggler sleeping well under the deadline slows the collective
// but must not error any rank or abort the group.
func TestStragglerBelowDeadlineSucceeds(t *testing.T) {
	const p = 4
	g := NewGroup(p)
	g.SetDeadline(2 * time.Second)
	g.Delay(2, 20*time.Millisecond)
	errs := runWithErrors(g, func(c *Comm) error {
		x := []float64{1}
		if err := c.AllReduceSum(x); err != nil {
			return err
		}
		if x[0] != p {
			t.Errorf("rank %d: reduced %v, want %d", c.Rank(), x[0], p)
		}
		return c.IAllReduceSum(x).Wait()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d errored with a sub-deadline straggler: %v", r, err)
		}
	}
	if g.Err() != nil {
		t.Fatalf("group aborted: %v", g.Err())
	}
}

// TestStragglerBeyondDeadlineAborts: a straggler slower than the deadline
// is indistinguishable from a crash and must produce the same bounded-wait
// abort on the survivors.
func TestStragglerBeyondDeadlineAborts(t *testing.T) {
	const p = 3
	g := NewGroup(p)
	g.SetDeadline(30 * time.Millisecond)
	g.Delay(1, 10*time.Second) // far beyond: survivors must not wait it out
	start := time.Now()
	errs := runWithErrors(g, func(c *Comm) error {
		return c.AllReduceSum([]float64{1})
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("survivors waited %v for a wedged rank", elapsed)
	}
	for r, err := range errs {
		if r == 1 {
			continue // the straggler itself wakes into an aborted group; any outcome is fine
		}
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("survivor %d: %v, want ErrPeerLost", r, err)
		}
	}
}

// TestAbortIsSticky: after a failure, every subsequent collective on every
// rank fails fast with the original cause instead of re-blocking for a
// deadline.
func TestAbortIsSticky(t *testing.T) {
	const p = 3
	g := NewGroup(p)
	g.SetDeadline(50 * time.Millisecond)
	g.FailAt(0, 0)
	runWithErrors(g, func(c *Comm) error { return c.Barrier() })
	cause := g.Err()
	if cause == nil {
		t.Fatal("no abort cause recorded")
	}
	start := time.Now()
	errs := runWithErrors(g, func(c *Comm) error { return c.AllReduceSum([]float64{1}) })
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("condemned-group collective took %v, want fail-fast", elapsed)
	}
	for r, err := range errs {
		if err == nil || !errors.Is(err, cause) && !errors.Is(err, ErrPeerLost) && !errors.Is(err, ErrRankKilled) {
			t.Fatalf("rank %d: %v does not carry the abort cause", r, err)
		}
	}
}

// TestExplicitAbortUnblocksRanks: Abort from outside (no injected fault, no
// deadline) must release ranks blocked inside a collective — the liveness
// hook a coordinator uses when it learns about a failure out of band.
func TestExplicitAbortUnblocksRanks(t *testing.T) {
	const p = 2
	g := NewGroup(p) // deliberately no deadline
	done := make(chan error, 1)
	go func() {
		// Rank 0 enters alone; rank 1 never shows up.
		done <- g.Rank(0).AllReduceSum([]float64{1, 2, 3})
	}()
	time.Sleep(20 * time.Millisecond)
	g.Abort(nil)
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, ErrAborted) {
			t.Fatalf("aborted collective returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock the waiting rank")
	}
}

// TestIAllReduceNoGoroutineLeakOnAbort is the goroutine-leak regression for
// the non-blocking path: kill one rank, have every survivor initiate an
// IAllReduceSum and Wait out the failure, and demand the background worker
// goroutines all exit. Counted over enough trials that a leak of even one
// goroutine per aborted collective is unmissable.
func TestIAllReduceNoGoroutineLeakOnAbort(t *testing.T) {
	const p, trials = 4, 8
	before := runtime.NumGoroutine()
	for trial := 0; trial < trials; trial++ {
		g := NewGroup(p)
		g.SetDeadline(50 * time.Millisecond)
		g.FailAt(1, 0)
		errs := runWithErrors(g, func(c *Comm) error {
			h := c.IAllReduceSum(make([]float64, 128))
			return h.Wait()
		})
		for r, err := range errs {
			if err == nil {
				t.Fatalf("trial %d rank %d: nil error under an aborted collective", trial, r)
			}
		}
	}
	// The workers exit asynchronously after Wait returns; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+1 { // +1 tolerance for runtime bookkeeping goroutines
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after %d aborted async collectives",
				before, after, p*trials)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineWithoutFaultIsFree: a configured deadline on a healthy group
// must change nothing — same reduced bytes, no errors.
func TestDeadlineWithoutFaultIsFree(t *testing.T) {
	const p, n = 4, 37
	g := NewGroup(p)
	g.SetDeadline(time.Second)
	errs := runWithErrors(g, func(c *Comm) error {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(c.Rank() + i)
		}
		if err := c.AllReduceSum(x); err != nil {
			return err
		}
		for i := range x {
			want := float64(p*i) + float64(p*(p-1)/2)
			if x[i] != want {
				t.Errorf("rank %d elem %d: %v want %v", c.Rank(), i, x[i], want)
			}
		}
		return c.IAllReduceSum(x).Wait()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("healthy deadline-bounded rank %d errored: %v", r, err)
		}
	}
}

// TestSingleRankFaultFree: the p=1 fast paths must stay error-free and
// goroutine-free with a deadline configured.
func TestSingleRankFaultFree(t *testing.T) {
	g := NewGroup(1)
	g.SetDeadline(time.Millisecond)
	c := g.Rank(0)
	if err := c.AllReduceSum([]float64{4}); err != nil {
		t.Fatal(err)
	}
	if err := c.IAllReduceSum([]float64{4}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
}
