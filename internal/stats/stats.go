// Package stats provides the summary statistics and Monte Carlo diagnostics
// used across the VQMC training loop and the experiment harness.
package stats

import "math"

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (divide by N).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divide by N-1).
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean using the sample variance.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return math.Sqrt(SampleVariance(xs) / float64(len(xs)))
}

// MeanStd returns mean and population standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	n := float64(len(xs))
	mean = s / n
	v := s2/n - mean*mean
	if v < 0 {
		v = 0 // guard against cancellation
	}
	return mean, math.Sqrt(v)
}

// Min and Max of a non-empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of a non-empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Autocorrelation returns the normalized autocorrelation function of xs at
// lags 0..maxLag (inclusive). Lag 0 is 1 by construction. A constant series
// returns 1 at every lag.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	out := make([]float64, maxLag+1)
	m := Mean(xs)
	var c0 float64
	for _, x := range xs {
		c0 += (x - m) * (x - m)
	}
	if c0 == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (xs[i] - m) * (xs[i+lag] - m)
		}
		out[lag] = c / c0
	}
	return out
}

// IntegratedAutocorrTime estimates tau = 1 + 2 sum_k rho(k), truncating the
// sum at the first non-positive autocorrelation (Geyer's initial positive
// sequence heuristic, simplified).
func IntegratedAutocorrTime(xs []float64) float64 {
	maxLag := len(xs) / 2
	if maxLag < 1 {
		return 1
	}
	rho := Autocorrelation(xs, maxLag)
	tau := 1.0
	for k := 1; k <= maxLag; k++ {
		if rho[k] <= 0 {
			break
		}
		tau += 2 * rho[k]
	}
	return tau
}

// EffectiveSampleSize returns N / tau, the number of effectively independent
// samples in a correlated series.
func EffectiveSampleSize(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(len(xs)) / IntegratedAutocorrTime(xs)
}

// Normalize divides xs elementwise by the largest magnitude among them (the
// normalization used in the paper's Figure 4); it returns the divisor. A
// zero slice is left unchanged and returns 0.
func Normalize(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	if m == 0 {
		return 0
	}
	for i := range xs {
		xs[i] /= m
	}
	return m
}
