package stats

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 1.25 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if math.Abs(SampleVariance(xs)-5.0/3) > 1e-14 {
		t.Errorf("SampleVariance = %v", SampleVariance(xs))
	}
	if StdDev(xs) != math.Sqrt(1.25) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
	if SampleVariance([]float64{5}) != 0 || StdErr([]float64{5}) != 0 {
		t.Fatal("singleton sample variance should be 0")
	}
}

func TestMeanStdMatchesSeparate(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	r.FillNorm(xs, 2.5)
	m, s := MeanStd(xs)
	if math.Abs(m-Mean(xs)) > 1e-12 || math.Abs(s-StdDev(xs)) > 1e-10 {
		t.Fatalf("MeanStd (%v,%v) vs (%v,%v)", m, s, Mean(xs), StdDev(xs))
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min=%v Max=%v", Min(xs), Max(xs))
	}
}

func TestStdErrShrinks(t *testing.T) {
	r := rng.New(2)
	small := make([]float64, 100)
	big := make([]float64, 10000)
	r.FillNorm(small, 1)
	r.FillNorm(big, 1)
	if StdErr(big) >= StdErr(small) {
		t.Fatalf("StdErr did not shrink with sample size: %v vs %v", StdErr(big), StdErr(small))
	}
}

func TestAutocorrelationIID(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 20000)
	r.FillNorm(xs, 1)
	rho := Autocorrelation(xs, 5)
	if rho[0] != 1 {
		t.Fatalf("rho(0) = %v", rho[0])
	}
	for k := 1; k <= 5; k++ {
		if math.Abs(rho[k]) > 0.05 {
			t.Errorf("iid rho(%d) = %v, want ~0", k, rho[k])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient phi has rho(k) ~ phi^k.
	r := rng.New(4)
	const phi = 0.8
	xs := make([]float64, 50000)
	x := 0.0
	for i := range xs {
		x = phi*x + r.Norm()
		xs[i] = x
	}
	rho := Autocorrelation(xs, 3)
	for k := 1; k <= 3; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(rho[k]-want) > 0.05 {
			t.Errorf("AR1 rho(%d) = %v, want ~%v", k, rho[k], want)
		}
	}
	// tau = (1+phi)/(1-phi) = 9 for phi=0.8.
	tau := IntegratedAutocorrTime(xs)
	if tau < 6 || tau > 12 {
		t.Errorf("tau = %v, want ~9", tau)
	}
	if ess := EffectiveSampleSize(xs); ess > float64(len(xs))/5 {
		t.Errorf("ESS = %v, should be much less than N for correlated series", ess)
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	rho := Autocorrelation([]float64{2, 2, 2, 2}, 2)
	for _, v := range rho {
		if v != 1 {
			t.Fatalf("constant series rho = %v", rho)
		}
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{-10, 5, 2}
	div := Normalize(xs)
	if div != 10 {
		t.Fatalf("divisor = %v", div)
	}
	if xs[0] != -1 || xs[1] != 0.5 || xs[2] != 0.2 {
		t.Fatalf("normalized = %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 || zero[0] != 0 {
		t.Fatal("zero slice mishandled")
	}
}
