// Package modelpar implements the paper's *other* parallelization avenue —
// model parallelism (Section 4, item 1) — which the paper describes but
// defers: "Distribute the model parameters across computing units, so that
// each unit needs to store and update a small part of the model."
//
// The MADE hidden layer is sharded across K units: shard k owns hidden
// units [lo_k, hi_k), i.e. rows lo:hi of W1/b1 and columns lo:hi of W2.
// A forward pass computes each shard's hidden slice locally and all-reduces
// the shards' partial output contributions — an n-vector per pass — so the
// communication pattern is tied to the network architecture exactly as the
// paper warns. The sharded model is bit-identical to the dense MADE it was
// split from; tests enforce this.
package modelpar

import (
	"fmt"
	"math"
	"sync"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Shard is one unit's slice of the model: hidden units [Lo, Hi).
type Shard struct {
	Lo, Hi int
	W1     *tensor.Matrix // (Hi-Lo) x n, rows Lo:Hi of the full W1
	B1     tensor.Vector  // Hi-Lo
	W2T    *tensor.Matrix // (Hi-Lo) x n: column slice of full W2, transposed for locality
	M1     *tensor.Matrix // masks for the owned rows
	M2T    *tensor.Matrix
	// z1 is the shard's hidden pre-activation workspace.
	z1 tensor.Vector
}

// Params returns the shard's parameter count (the paper's memory argument:
// each unit stores ~d/K parameters).
func (s *Shard) Params() int {
	return s.W1.Rows*s.W1.Cols + len(s.B1) + s.W2T.Rows*s.W2T.Cols
}

// ShardedMADE is a MADE whose hidden layer is split across K shards. B2 is
// replicated (it is only n values).
type ShardedMADE struct {
	n, h   int
	Shards []*Shard
	B2     tensor.Vector
	group  *comm.Group
}

// Split shards an existing MADE across k units. The sharded model
// references copies of the original weights; it computes identical outputs.
func Split(m *nn.MADE, k int) (*ShardedMADE, error) {
	n, h := m.NumSites(), m.Hidden()
	if k < 1 || k > h {
		return nil, fmt.Errorf("modelpar: shard count %d outside [1, h=%d]", k, h)
	}
	sm := &ShardedMADE{n: n, h: h, B2: m.B2.Clone(), group: comm.NewGroup(k)}
	for s := 0; s < k; s++ {
		lo := s * h / k
		hi := (s + 1) * h / k
		rows := hi - lo
		sh := &Shard{Lo: lo, Hi: hi,
			W1:  tensor.NewMatrix(rows, n),
			B1:  tensor.NewVector(rows),
			W2T: tensor.NewMatrix(rows, n),
			M1:  tensor.NewMatrix(rows, n),
			M2T: tensor.NewMatrix(rows, n),
			z1:  tensor.NewVector(rows),
		}
		for r := 0; r < rows; r++ {
			copy(sh.W1.Row(r), m.W1.Row(lo+r))
			copy(sh.M1.Row(r), m.M1.Row(lo+r))
			sh.B1[r] = m.B1[lo+r]
			for j := 0; j < n; j++ {
				sh.W2T.Set(r, j, m.W2.At(j, lo+r))
				sh.M2T.Set(r, j, m.M2.At(j, lo+r))
			}
		}
		sm.Shards = append(sm.Shards, sh)
	}
	return sm, nil
}

// NumSites returns n.
func (sm *ShardedMADE) NumSites() int { return sm.n }

// Hidden returns the full hidden width h.
func (sm *ShardedMADE) Hidden() int { return sm.h }

// K returns the shard count.
func (sm *ShardedMADE) K() int { return len(sm.Shards) }

// forwardShard computes the shard's hidden slice for input x and
// accumulates its partial output contribution into partial (length n).
func (sh *Shard) forwardShard(xf tensor.Vector, partial tensor.Vector) {
	rows := sh.Hi - sh.Lo
	n := len(xf)
	for r := 0; r < rows; r++ {
		w := sh.W1.Row(r)
		mk := sh.M1.Row(r)
		var z float64
		for j := 0; j < n; j++ {
			z += w[j] * mk[j] * xf[j]
		}
		z += sh.B1[r]
		sh.z1[r] = z
		if z > 0 { // ReLU
			wt := sh.W2T.Row(r)
			mt := sh.M2T.Row(r)
			for j := 0; j < n; j++ {
				partial[j] += wt[j] * mt[j] * z
			}
		}
	}
}

// ForwardSerial computes output pre-activations z2 by visiting shards
// serially — the reference implementation used to validate the collective
// path.
func (sm *ShardedMADE) ForwardSerial(x []int, z2 tensor.Vector) {
	xf := tensor.NewVector(sm.n)
	for i, b := range x {
		xf[i] = float64(b)
	}
	copy(z2, sm.B2)
	for _, sh := range sm.Shards {
		sh.forwardShard(xf, z2)
	}
}

// Forward computes z2 with one goroutine per shard and a real ring
// all-reduce of the partial activations — the model-parallel communication
// pattern. The result is identical to ForwardSerial up to floating-point
// summation order; tests bound the difference.
func (sm *ShardedMADE) Forward(x []int, z2 tensor.Vector) {
	k := sm.K()
	xf := tensor.NewVector(sm.n)
	for i, b := range x {
		xf[i] = float64(b)
	}
	partials := make([]tensor.Vector, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			p := tensor.NewVector(sm.n)
			if s == 0 {
				copy(p, sm.B2) // exactly one shard contributes the bias
			}
			sm.Shards[s].forwardShard(xf, p)
			if err := sm.group.Rank(s).AllReduceSum(p); err != nil {
				// The sharded model owns its private group and never attaches
				// a deadline or fault script, so a collective error here means
				// the harness itself is broken — fail loudly, not silently.
				panic(err)
			}
			partials[s] = p
		}(s)
	}
	wg.Wait()
	copy(z2, partials[0])
}

// LogProb evaluates log pi(x) through the collective forward pass.
func (sm *ShardedMADE) LogProb(x []int) float64 {
	z2 := tensor.NewVector(sm.n)
	sm.Forward(x, z2)
	var lp float64
	for j, b := range x {
		if b == 1 {
			lp += logSigmoid(z2[j])
		} else {
			lp += logSigmoid(-z2[j])
		}
	}
	return lp
}

func logSigmoid(z float64) float64 {
	if z < -35 {
		return z
	}
	return -math.Log1p(math.Exp(-z))
}

// CommCost characterizes the communication volume of the two
// parallelization avenues for one training iteration, the trade-off the
// paper sketches in Section 4.
type CommCost struct {
	// ModelParallelFloats: sampling bit i needs only output i, so each of
	// the n sequential steps all-reduces one scalar per sample (n*bs
	// floats total), plus one full-output all-reduce (n*bs) for the
	// gradient pass.
	ModelParallelFloats int64
	// DataParallelFloats: one d-vector gradient all-reduce per iteration.
	DataParallelFloats int64
}

// IterationCommCost returns the per-iteration communication volumes for a
// MADE of size (n, h) at batch bs. At production batch sizes the
// model-parallel activation traffic dominates the single gradient
// all-reduce — and it is latency-bound (n sequential rounds) — which is why
// the paper parallelizes sampling instead; at tiny batches the ordering
// flips, which is when model parallelism becomes the only way to fit the
// model.
func IterationCommCost(n, h, bs int) CommCost {
	d := int64(device.MADEParams(n, h))
	return CommCost{
		ModelParallelFloats: 2 * int64(n) * int64(bs),
		DataParallelFloats:  d,
	}
}
