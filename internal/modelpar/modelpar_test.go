package modelpar

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

func TestSplitValidation(t *testing.T) {
	m := nn.NewMADE(6, 8, rng.New(1))
	if _, err := Split(m, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Split(m, 9); err == nil {
		t.Fatal("k > h should error")
	}
	sm, err := Split(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sm.K() != 3 || sm.NumSites() != 6 || sm.Hidden() != 8 {
		t.Fatalf("accessors wrong: %d %d %d", sm.K(), sm.NumSites(), sm.Hidden())
	}
}

func TestShardsPartitionHiddenUnits(t *testing.T) {
	m := nn.NewMADE(5, 11, rng.New(2))
	sm, err := Split(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	last := 0
	for _, sh := range sm.Shards {
		if sh.Lo != last || sh.Hi <= sh.Lo {
			t.Fatalf("shard bounds broken: [%d,%d) after %d", sh.Lo, sh.Hi, last)
		}
		covered += sh.Hi - sh.Lo
		last = sh.Hi
	}
	if covered != 11 {
		t.Fatalf("shards cover %d hidden units, want 11", covered)
	}
}

func TestShardMemoryIsFraction(t *testing.T) {
	// The paper's memory argument: each unit stores ~d/K parameters.
	m := nn.NewMADE(50, 40, rng.New(3))
	sm, err := Split(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := m.NumParams()
	for _, sh := range sm.Shards {
		frac := float64(sh.Params()) / float64(full)
		if frac > 0.30 { // 1/K = 0.25 plus a little slack
			t.Fatalf("shard holds %.0f%% of parameters, want ~25%%", 100*frac)
		}
	}
}

func TestSerialForwardMatchesFullModel(t *testing.T) {
	r := rng.New(4)
	for _, k := range []int{1, 2, 3, 5} {
		m := nn.NewMADE(7, 10, r.Split())
		sm, err := Split(m, k)
		if err != nil {
			t.Fatal(err)
		}
		s := m.NewScratch()
		x := make([]int, 7)
		for trial := 0; trial < 30; trial++ {
			r.FillBits(x)
			m.Forward(x, s)
			z2 := tensor.NewVector(7)
			sm.ForwardSerial(x, z2)
			for j := range z2 {
				if math.Abs(z2[j]-s.Z2[j]) > 1e-12 {
					t.Fatalf("k=%d output %d: sharded %v vs full %v", k, j, z2[j], s.Z2[j])
				}
			}
		}
	}
}

func TestCollectiveForwardMatchesSerial(t *testing.T) {
	r := rng.New(5)
	m := nn.NewMADE(9, 12, r.Split())
	sm, err := Split(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]int, 9)
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		serial := tensor.NewVector(9)
		sm.ForwardSerial(x, serial)
		collective := tensor.NewVector(9)
		sm.Forward(x, collective)
		for j := range serial {
			if math.Abs(serial[j]-collective[j]) > 1e-9 {
				t.Fatalf("collective forward diverged at %d: %v vs %v",
					j, collective[j], serial[j])
			}
		}
	}
}

func TestLogProbMatchesFullModel(t *testing.T) {
	r := rng.New(6)
	m := nn.NewMADE(8, 9, r.Split())
	sm, err := Split(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]int, 8)
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		if diff := math.Abs(sm.LogProb(x) - m.LogProb(x)); diff > 1e-9 {
			t.Fatalf("sharded LogProb differs by %v", diff)
		}
	}
}

func TestShardedPreservesAutoregressiveProperty(t *testing.T) {
	// Sharding must not break masking: output j independent of inputs >= j.
	r := rng.New(7)
	m := nn.NewMADE(6, 8, r.Split())
	sm, err := Split(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]int, 6)
	y := make([]int, 6)
	for trial := 0; trial < 50; trial++ {
		r.FillBits(x)
		copy(y, x)
		j := r.Intn(6)
		for i := j; i < 6; i++ {
			y[i] = r.Bit()
		}
		zx := tensor.NewVector(6)
		zy := tensor.NewVector(6)
		sm.ForwardSerial(x, zx)
		sm.ForwardSerial(y, zy)
		if zx[j] != zy[j] {
			t.Fatalf("sharded output %d depends on inputs >= %d", j, j)
		}
	}
}

func TestIterationCommCostTradeoff(t *testing.T) {
	// The paper's qualitative claim: data-parallel communication is one
	// gradient per iteration, while model parallelism communicates
	// activations on every sequential sampling step — far more volume at
	// large batch.
	c := IterationCommCost(1000, 424, 4096)
	if c.ModelParallelFloats <= c.DataParallelFloats {
		t.Fatalf("expected model-parallel volume (%d) to dominate data-parallel (%d) at bs=4096",
			c.ModelParallelFloats, c.DataParallelFloats)
	}
	// At tiny batch the gradient all-reduce dominates instead: model
	// parallelism becomes attractive exactly when the model no longer fits
	// on one device and batches are small.
	tiny := IterationCommCost(10000, 500, 4)
	if tiny.DataParallelFloats <= tiny.ModelParallelFloats {
		t.Fatalf("expected gradient volume (%d) to dominate at bs=4 (%d)",
			tiny.DataParallelFloats, tiny.ModelParallelFloats)
	}
}

func BenchmarkShardedForward4(b *testing.B) {
	m := nn.NewMADE(100, 107, rng.New(1))
	sm, err := Split(m, 4)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	z2 := tensor.NewVector(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.Forward(x, z2)
	}
}

func BenchmarkShardedForwardSerial(b *testing.B) {
	m := nn.NewMADE(100, 107, rng.New(1))
	sm, err := Split(m, 4)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	z2 := tensor.NewVector(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.ForwardSerial(x, z2)
	}
}
