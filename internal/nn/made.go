package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// MADE is the masked autoencoder for distribution estimation (Germain et
// al.) used as an autoregressive neural quantum state, matching the paper's
// architecture:
//
//	Input -> MaskedFC1 -> ReLU -> MaskedFC2 -> Sigmoid -> Output
//
// with a single hidden layer of width h. Output j is the conditional
// probability p_j = P(x_j = 1 | x_0..x_{j-1}); the masks enforce that p_j
// depends only on earlier inputs (natural ordering). The model represents
// the non-negative wavefunction psi(x) = sqrt(pi(x)).
//
// Parameter count d = 2hn + h + n, laid out [W1 | b1 | W2 | b2] in one flat
// vector; the matrix and bias views alias that vector.
type MADE struct {
	n, h  int
	theta tensor.Vector
	// Layer views into theta.
	W1 *tensor.Matrix // h x n
	B1 tensor.Vector  // h
	W2 *tensor.Matrix // n x h
	B2 tensor.Vector  // n
	// Binary masks (not trained).
	M1 *tensor.Matrix // h x n: M1[k][i] = 1 iff deg(k) >= i+1
	M2 *tensor.Matrix // n x h: M2[j][k] = 1 iff j+1 > deg(k)
	// deg[k] in 1..n-1 is the hidden unit's autoregressive degree.
	deg []int
	// Masked-weight cache for the batched GEMM path: wm1t/wm2t hold the
	// TRANSPOSED elementwise products (W1.M1)^T (n x h) and (W2.M2)^T
	// (h x n), materialized once per parameter version and reused by every
	// batched evaluation until the optimizer mutates theta. The transposed
	// layout lets the batched forward run as dst = X * (W.M)^T in the ikj
	// loop order, which keeps independent accumulators per output column
	// (throughput-bound instead of latency-bound) while still summing each
	// element in the scalar kernels' ascending contraction order. version
	// is bumped by InvalidateParams; wmVersion records the version the
	// cache was built at (0 = never built).
	version    uint64
	wmVersion  uint64
	wm1t, wm2t *tensor.Matrix
}

// MADEScratch holds per-worker forward/backward buffers so concurrent
// evaluation never shares mutable state.
type MADEScratch struct {
	Z1, A   tensor.Vector // hidden pre-activation and activation (h)
	Z2      tensor.Vector // output pre-activation (n)
	dZ2     tensor.Vector // n
	dA      tensor.Vector // h
	xf      tensor.Vector // float copy of input bits (n)
	flipBuf []int         // n, scratch configuration for flip evaluation
}

// NewMADE builds a MADE with n input sites and hidden width h, with masks
// assigned deterministically (degrees cycle through 1..n-1) and weights
// initialized U(-1/sqrt(fan-in), +1/sqrt(fan-in)) from r.
func NewMADE(n, h int, r *rng.Rand) *MADE {
	if n < 1 || h < 1 {
		panic("nn: MADE requires n >= 1 and h >= 1")
	}
	d := 2*h*n + h + n
	theta := tensor.NewVector(d)
	m := &MADE{n: n, h: h, theta: theta}
	off := 0
	m.W1 = &tensor.Matrix{Rows: h, Cols: n, Data: theta[off : off+h*n]}
	off += h * n
	m.B1 = theta[off : off+h]
	off += h
	m.W2 = &tensor.Matrix{Rows: n, Cols: h, Data: theta[off : off+n*h]}
	off += n * h
	m.B2 = theta[off : off+n]

	// Hidden degrees cycle 1..n-1 (n=1 degenerates to all-zero masks and a
	// bias-only model, which is still the correct autoregressive family).
	m.deg = make([]int, h)
	m.M1 = tensor.NewMatrix(h, n)
	m.M2 = tensor.NewMatrix(n, h)
	for k := 0; k < h; k++ {
		if n > 1 {
			m.deg[k] = 1 + k%(n-1)
		}
		for i := 0; i < n; i++ {
			if m.deg[k] >= i+1 {
				m.M1.Set(k, i, 1)
			}
		}
		for j := 0; j < n; j++ {
			if j+1 > m.deg[k] && m.deg[k] > 0 {
				m.M2.Set(j, k, 1)
			}
		}
	}

	uniformInit(m.W1.Data, n, r)
	uniformInit(m.B1, n, r)
	uniformInit(m.W2.Data, h, r)
	uniformInit(m.B2, h, r)
	m.version = 1
	return m
}

// InvalidateParams marks the masked-weight cache stale. It must be called
// after any in-place mutation of Params() (optimizer steps, checkpoint
// loads); trainers do this through nn.InvalidateParams.
func (m *MADE) InvalidateParams() { m.version++ }

// maskedWeights returns (W1.M1)^T and (W2.M2)^T, rebuilding the cached
// products if the parameters changed since the last build. Because the
// masks hold exact 0/1 entries, each cached element w*m is either w or a
// signed zero — bit-for-bit the first factor of the scalar kernel's w*m*x
// product — so GEMMs over the cache reproduce MaskedMulVec exactly
// (multiplication commutes bitwise, and transposition is pure layout).
// Not safe for concurrent first use; the batched paths call it from the
// coordinating goroutine before fanning out.
func (m *MADE) maskedWeights() (wm1t, wm2t *tensor.Matrix) {
	if m.wmVersion != m.version {
		if m.wm1t == nil {
			m.wm1t = tensor.NewMatrix(m.n, m.h)
			m.wm2t = tensor.NewMatrix(m.h, m.n)
		}
		for k := 0; k < m.h; k++ {
			for i := 0; i < m.n; i++ {
				m.wm1t.Data[i*m.h+k] = m.W1.Data[k*m.n+i] * m.M1.Data[k*m.n+i]
			}
		}
		for j := 0; j < m.n; j++ {
			for k := 0; k < m.h; k++ {
				m.wm2t.Data[k*m.n+j] = m.W2.Data[j*m.h+k] * m.M2.Data[j*m.h+k]
			}
		}
		m.wmVersion = m.version
	}
	return m.wm1t, m.wm2t
}

// NewScratch allocates evaluation buffers for one worker.
func (m *MADE) NewScratch() *MADEScratch {
	return &MADEScratch{
		Z1:      tensor.NewVector(m.h),
		A:       tensor.NewVector(m.h),
		Z2:      tensor.NewVector(m.n),
		dZ2:     tensor.NewVector(m.n),
		dA:      tensor.NewVector(m.h),
		xf:      tensor.NewVector(m.n),
		flipBuf: make([]int, m.n),
	}
}

// NumSites implements Wavefunction.
func (m *MADE) NumSites() int { return m.n }

// Hidden returns the hidden-layer width h.
func (m *MADE) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *MADE) NumParams() int { return len(m.theta) }

// Params implements Wavefunction; the returned vector aliases the model.
func (m *MADE) Params() tensor.Vector { return m.theta }

// Forward runs the masked network on x, filling s.Z1, s.A and s.Z2.
// Output probabilities are sigma(s.Z2) but are not materialized; the
// log-probability path works on pre-activations for numerical stability.
func (m *MADE) Forward(x []int, s *MADEScratch) {
	for i, b := range x {
		s.xf[i] = float64(b)
	}
	m.W1.MaskedMulVec(s.Z1, s.xf, m.M1)
	s.Z1.Add(m.B1)
	copy(s.A, s.Z1)
	tensor.ReLU(s.A)
	m.W2.MaskedMulVec(s.Z2, s.A, m.M2)
	s.Z2.Add(m.B2)
}

// logProbFromZ2 computes log pi(x) = sum_j [x_j ln p_j + (1-x_j) ln(1-p_j)]
// from output pre-activations.
func logProbFromZ2(x []int, z2 tensor.Vector) float64 {
	var lp float64
	for j, b := range x {
		if b == 1 {
			lp += logSigmoid(z2[j])
		} else {
			lp += logSigmoid(-z2[j])
		}
	}
	return lp
}

// LogProbScratch evaluates log pi(x) using caller-owned buffers.
func (m *MADE) LogProbScratch(x []int, s *MADEScratch) float64 {
	m.Forward(x, s)
	return logProbFromZ2(x, s.Z2)
}

// LogProb implements Normalized. It allocates scratch; hot paths should use
// LogProbScratch with a per-worker scratch.
func (m *MADE) LogProb(x []int) float64 {
	return m.LogProbScratch(x, m.NewScratch())
}

// LogPsi implements Wavefunction: log psi = (1/2) log pi.
func (m *MADE) LogPsi(x []int) float64 { return 0.5 * m.LogProb(x) }

// LogPsiScratch is the buffer-reusing variant of LogPsi.
func (m *MADE) LogPsiScratch(x []int, s *MADEScratch) float64 {
	return 0.5 * m.LogProbScratch(x, s)
}

// Conditional implements Autoregressive: P(x_i = 1 | x_<i). Bits at
// positions >= i are ignored by masking.
func (m *MADE) Conditional(x []int, i int) float64 {
	return m.ConditionalScratch(x, i, m.NewScratch())
}

// ConditionalScratch is the buffer-reusing variant of Conditional.
func (m *MADE) ConditionalScratch(x []int, i int, s *MADEScratch) float64 {
	m.Forward(x, s)
	return 1 / (1 + math.Exp(-s.Z2[i]))
}

// ConditionalRow computes P(x_i = 1 | x_<i) in O(h) given hidden
// pre-activations z1 that already reflect x_<i (the incremental sampling
// fast path used by NewIncrementalEvaluator).
func (m *MADE) ConditionalRow(z1 tensor.Vector, i int) float64 {
	row := m.W2.Row(i)
	mrow := m.M2.Row(i)
	z := m.B2[i]
	for k, w := range row {
		if mrow[k] != 0 {
			a := z1[k]
			if a > 0 {
				z += w * a
			}
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// AccumulateInput adds bit i's contribution to the hidden pre-activation
// vector z1 (incremental sampling fast path). z1 must start as a copy of B1.
func (m *MADE) AccumulateInput(z1 tensor.Vector, i, bit int) {
	if bit == 0 {
		return
	}
	for k := 0; k < m.h; k++ {
		if m.M1.At(k, i) != 0 {
			z1[k] += m.W1.At(k, i)
		}
	}
}

// RemoveInput subtracts bit i's contribution from the hidden pre-activation
// vector z1, the inverse of AccumulateInput (incremental flip fast path).
func (m *MADE) RemoveInput(z1 tensor.Vector, i, bit int) {
	if bit == 0 {
		return
	}
	for k := 0; k < m.h; k++ {
		if m.M1.At(k, i) != 0 {
			z1[k] -= m.W1.At(k, i)
		}
	}
}

// GradLogProbScratch accumulates d log pi / d theta into grad (overwritten).
func (m *MADE) GradLogProbScratch(x []int, grad tensor.Vector, s *MADEScratch) {
	m.Forward(x, s)
	m.gradFromForward(x, s.Z1, s.A, s.Z2, s.dZ2, s.dA, grad)
}

// gradFromForward runs the analytic backward pass from an already computed
// forward state (z1 pre-activation, a activation, z2 output pre-activation)
// into grad. It is shared verbatim by the scalar and batched gradient paths
// — identical forward bytes in, identical gradient bytes out — which is
// how GradLogPsiBatch inherits the scalar path's exact values. dz2 (n) and
// da (h) are caller-owned scratch.
func (m *MADE) gradFromForward(x []int, z1, a, z2, dz2, da, grad tensor.Vector) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	// dlogpi/dz2_j = x_j - sigma(z2_j).
	for j, b := range x {
		dz2[j] = float64(b) - 1/(1+math.Exp(-z2[j]))
	}
	// dA = (M2 .* W2)^T dZ2.
	for k := range da {
		da[k] = 0
	}
	for j := 0; j < m.n; j++ {
		dj := dz2[j]
		if dj == 0 {
			continue
		}
		row := m.W2.Row(j)
		mrow := m.M2.Row(j)
		for k := range row {
			if mrow[k] != 0 {
				da[k] += row[k] * dj
			}
		}
	}
	// Views into grad with the same layout as theta.
	h, n := m.h, m.n
	gW1 := grad[0 : h*n]
	gB1 := grad[h*n : h*n+h]
	gW2 := grad[h*n+h : h*n+h+n*h]
	gB2 := grad[h*n+h+n*h:]
	// Output layer.
	for j := 0; j < n; j++ {
		dj := dz2[j]
		gB2[j] = dj
		base := j * h
		mrow := m.M2.Row(j)
		for k := 0; k < h; k++ {
			if mrow[k] != 0 {
				gW2[base+k] = dj * a[k]
			} else {
				gW2[base+k] = 0
			}
		}
	}
	// Hidden layer through ReLU.
	for k := 0; k < h; k++ {
		dz1 := da[k]
		if z1[k] <= 0 {
			dz1 = 0
		}
		gB1[k] = dz1
		base := k * n
		mrow := m.M1.Row(k)
		for i := 0; i < n; i++ {
			if mrow[i] != 0 && x[i] == 1 {
				gW1[base+i] = dz1
			} else {
				gW1[base+i] = 0
			}
		}
	}
}

// GradLogPsi implements Wavefunction: grad log psi = (1/2) grad log pi.
func (m *MADE) GradLogPsi(x []int, grad tensor.Vector) {
	m.GradLogPsiScratch(x, grad, m.NewScratch())
}

// GradLogPsiScratch is the buffer-reusing variant of GradLogPsi.
func (m *MADE) GradLogPsiScratch(x []int, grad tensor.Vector, s *MADEScratch) {
	m.GradLogProbScratch(x, grad, s)
	grad.Scale(0.5)
}

// NewFlipCache implements CacheBuilder with an incremental cache: the base
// configuration's hidden pre-activation z1 is maintained through
// AccumulateInput/RemoveInput, so Reset costs one set-bit accumulation plus
// one output-layer pass and Flip costs O(h) for the hidden update plus the
// O(hn) output layer — no full layer-1 recompute. Delta still evaluates the
// flipped configuration with a fresh full forward (it must not disturb the
// cached state), in contrast to the RBM's O(h) delta; this asymmetry is why
// the paper pairs MADE with exact sampling rather than MCMC. The batched
// FlipLogPsiBatch path reproduces both conventions bit-for-bit.
func (m *MADE) NewFlipCache(x []int) FlipCache {
	c := &madeFlipCache{m: m, s: m.NewScratch(), x: make([]int, m.n),
		z1: tensor.NewVector(m.h)}
	c.Reset(x)
	return c
}

type madeFlipCache struct {
	m      *MADE
	s      *MADEScratch
	x      []int
	z1     tensor.Vector // incremental hidden pre-activation of x
	logPsi float64
}

// refresh recomputes the output layer and log psi from the cached z1,
// using the same "dot in k order, then bias" convention as Forward so the
// batched path's layer-2 GEMM reproduces it exactly.
func (c *madeFlipCache) refresh() {
	copy(c.s.A, c.z1)
	tensor.ReLU(c.s.A)
	c.m.W2.MaskedMulVec(c.s.Z2, c.s.A, c.m.M2)
	c.s.Z2.Add(c.m.B2)
	c.logPsi = 0.5 * logProbFromZ2(c.x, c.s.Z2)
}

func (c *madeFlipCache) LogPsi() float64 { return c.logPsi }

func (c *madeFlipCache) Delta(bit int) float64 {
	copy(c.s.flipBuf, c.x)
	c.s.flipBuf[bit] = 1 - c.s.flipBuf[bit]
	return c.m.LogPsiScratch(c.s.flipBuf, c.s) - c.logPsi
}

func (c *madeFlipCache) Flip(bit int) {
	if c.x[bit] == 1 {
		c.m.RemoveInput(c.z1, bit, 1)
		c.x[bit] = 0
	} else {
		c.m.AccumulateInput(c.z1, bit, 1)
		c.x[bit] = 1
	}
	c.refresh()
}

func (c *madeFlipCache) State() []int { return c.x }

func (c *madeFlipCache) Reset(x []int) {
	copy(c.x, x)
	copy(c.z1, c.m.B1)
	for i, b := range c.x {
		c.m.AccumulateInput(c.z1, i, b)
	}
	c.refresh()
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *MADE) NewGradEvaluator() GradEvaluator {
	return &madeGradEvaluator{m: m, s: m.NewScratch()}
}

type madeGradEvaluator struct {
	m *MADE
	s *MADEScratch
}

func (e *madeGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *madeGradEvaluator) LogPsi(x []int) float64 {
	return e.m.LogPsiScratch(x, e.s)
}

// Degrees exposes the hidden-unit degree assignment (for tests).
func (m *MADE) Degrees() []int { return m.deg }

var (
	_ Autoregressive = (*MADE)(nil)
	_ CacheBuilder   = (*MADE)(nil)
)
