package nn

import (
	"math"
	"sync"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// MADE is the masked autoencoder for distribution estimation (Germain et
// al.) used as an autoregressive neural quantum state, matching the paper's
// architecture:
//
//	Input -> MaskedFC1 -> ReLU -> MaskedFC2 -> Sigmoid -> Output
//
// with a single hidden layer of width h. Output j is the conditional
// probability p_j = P(x_j = 1 | x_0..x_{j-1}); the masks enforce that p_j
// depends only on earlier inputs (natural ordering). The model represents
// the non-negative wavefunction psi(x) = sqrt(pi(x)).
//
// Parameter count d = 2hn + h + n, laid out [W1 | b1 | W2 | b2] in one flat
// vector; the matrix and bias views alias that vector.
type MADE struct {
	n, h  int
	theta tensor.Vector
	// Layer views into theta.
	W1 *tensor.Matrix // h x n
	B1 tensor.Vector  // h
	W2 *tensor.Matrix // n x h
	B2 tensor.Vector  // n
	// Binary masks (not trained).
	M1 *tensor.Matrix // h x n: M1[k][i] = 1 iff deg(k) >= i+1
	M2 *tensor.Matrix // n x h: M2[j][k] = 1 iff j+1 > deg(k)
	// deg[k] in 1..n-1 is the hidden unit's autoregressive degree.
	deg []int
	// flipRuns[b] lists the maximal contiguous ranges [lo, hi) of hidden
	// units whose mask sees input bit b (deg(k) > b) — the only hidden
	// columns a flip of bit b can change, and therefore the only layer-1
	// columns the tail-only flip evaluation recomputes (scalar and batched
	// alike; with the cyclic degree assignment each period of n-1 units
	// contributes one run).
	flipRuns [][][2]int
	// runsAscending records that every flipRuns[b] range starts at degree
	// b+1 and increments by one per unit (true for the cyclic assignment).
	// When set, input i's mask support inside a run of flipRuns[b] is the
	// suffix starting at run[0]+(i-b), letting the batched tail fold skip
	// the masked-zero (+/-0, exact no-op) additions; when not, the folds
	// fall back to full-width adds, which are bitwise identical.
	runsAscending bool
	// Masked-weight cache for the batched GEMM path: wm1t/wm2t hold the
	// TRANSPOSED elementwise products (W1.M1)^T (n x h) and (W2.M2)^T
	// (h x n), materialized once per parameter version and reused by every
	// batched evaluation until the optimizer mutates theta. The transposed
	// layout lets the batched forward run as dst = X * (W.M)^T in the ikj
	// loop order, which keeps independent accumulators per output column
	// (throughput-bound instead of latency-bound) while still summing each
	// element in the scalar kernels' ascending contraction order. version
	// is bumped by InvalidateParams; wmVersion records the version the
	// cache was built at (0 = never built). cacheMu serializes rebuilds so
	// concurrent first use from several goroutines (e.g. two BatchEvaluators
	// sharing one model) builds the cache exactly once; see PrewarmCaches.
	cacheMu    sync.Mutex
	version    uint64
	wmVersion  uint64
	wm1t, wm2t *tensor.Matrix
}

// MADEScratch holds per-worker forward/backward buffers so concurrent
// evaluation never shares mutable state.
type MADEScratch struct {
	Z1, A   tensor.Vector // hidden pre-activation and activation (h)
	Z2      tensor.Vector // output pre-activation (n)
	dZ2     tensor.Vector // n
	dA      tensor.Vector // h
	xf      tensor.Vector // float copy of input bits (n)
	flipBuf []int         // n, scratch configuration for flip evaluation
}

// NewMADE builds a MADE with n input sites and hidden width h, with masks
// assigned deterministically (degrees cycle through 1..n-1) and weights
// initialized U(-1/sqrt(fan-in), +1/sqrt(fan-in)) from r.
func NewMADE(n, h int, r *rng.Rand) *MADE {
	if n < 1 || h < 1 {
		panic("nn: MADE requires n >= 1 and h >= 1")
	}
	d := 2*h*n + h + n
	theta := tensor.NewVector(d)
	m := &MADE{n: n, h: h, theta: theta}
	off := 0
	m.W1 = &tensor.Matrix{Rows: h, Cols: n, Data: theta[off : off+h*n]}
	off += h * n
	m.B1 = theta[off : off+h]
	off += h
	m.W2 = &tensor.Matrix{Rows: n, Cols: h, Data: theta[off : off+n*h]}
	off += n * h
	m.B2 = theta[off : off+n]

	// Hidden degrees cycle 1..n-1 (n=1 degenerates to all-zero masks and a
	// bias-only model, which is still the correct autoregressive family).
	m.deg = make([]int, h)
	m.M1 = tensor.NewMatrix(h, n)
	m.M2 = tensor.NewMatrix(n, h)
	for k := 0; k < h; k++ {
		if n > 1 {
			m.deg[k] = 1 + k%(n-1)
		}
		for i := 0; i < n; i++ {
			if m.deg[k] >= i+1 {
				m.M1.Set(k, i, 1)
			}
		}
		for j := 0; j < n; j++ {
			if j+1 > m.deg[k] && m.deg[k] > 0 {
				m.M2.Set(j, k, 1)
			}
		}
	}

	m.flipRuns = make([][][2]int, n)
	m.runsAscending = true
	for b := 0; b < n; b++ {
		for k := 0; k < h; k++ {
			if m.deg[k] <= b {
				continue
			}
			runs := m.flipRuns[b]
			if len(runs) > 0 && runs[len(runs)-1][1] == k {
				runs[len(runs)-1][1] = k + 1
			} else {
				runs = append(runs, [2]int{k, k + 1})
			}
			m.flipRuns[b] = runs
		}
		for _, run := range m.flipRuns[b] {
			for k := run[0]; k < run[1]; k++ {
				if m.deg[k] != b+1+(k-run[0]) {
					m.runsAscending = false
				}
			}
		}
	}

	uniformInit(m.W1.Data, n, r)
	uniformInit(m.B1, n, r)
	uniformInit(m.W2.Data, h, r)
	uniformInit(m.B2, h, r)
	m.version = 1
	return m
}

// InvalidateParams marks the masked-weight cache stale. It must be called
// after any in-place mutation of Params() (optimizer steps, checkpoint
// loads); trainers do this through nn.InvalidateParams. Parameter mutation
// itself still requires evaluation quiescence — the mutex below only makes
// cache rebuilds safe, not in-place writes to Params().
func (m *MADE) InvalidateParams() {
	m.cacheMu.Lock()
	m.version++
	m.cacheMu.Unlock()
}

// PrewarmCaches materializes the masked-weight cache for the current
// parameter version. Coordinators call it (via nn.Prewarm) before fanning
// work out to workers so no worker pays the rebuild; rebuilds are
// mutex-serialized either way, so this is a latency optimization, not a
// safety requirement.
func (m *MADE) PrewarmCaches() { m.maskedWeights() }

// maskedWeights returns (W1.M1)^T and (W2.M2)^T, rebuilding the cached
// products if the parameters changed since the last build. Because the
// masks hold exact 0/1 entries, each cached element w*m is either w or a
// signed zero — bit-for-bit the first factor of the scalar kernel's w*m*x
// product — so GEMMs over the cache reproduce MaskedMulVec exactly
// (multiplication commutes bitwise, and transposition is pure layout).
// Safe for concurrent use: rebuilds are serialized by cacheMu, so racing
// first users build once and share the result. The cached matrices are
// immutable between InvalidateParams calls, and InvalidateParams requires
// evaluation quiescence, so returned pointers stay valid for the whole
// parallel section.
func (m *MADE) maskedWeights() (wm1t, wm2t *tensor.Matrix) {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	if m.wmVersion != m.version {
		if m.wm1t == nil {
			m.wm1t = tensor.NewMatrix(m.n, m.h)
			m.wm2t = tensor.NewMatrix(m.h, m.n)
		}
		for k := 0; k < m.h; k++ {
			for i := 0; i < m.n; i++ {
				m.wm1t.Data[i*m.h+k] = m.W1.Data[k*m.n+i] * m.M1.Data[k*m.n+i]
			}
		}
		for j := 0; j < m.n; j++ {
			for k := 0; k < m.h; k++ {
				m.wm2t.Data[k*m.n+j] = m.W2.Data[j*m.h+k] * m.M2.Data[j*m.h+k]
			}
		}
		m.wmVersion = m.version
	}
	return m.wm1t, m.wm2t
}

// NewScratch allocates evaluation buffers for one worker.
func (m *MADE) NewScratch() *MADEScratch {
	return &MADEScratch{
		Z1:      tensor.NewVector(m.h),
		A:       tensor.NewVector(m.h),
		Z2:      tensor.NewVector(m.n),
		dZ2:     tensor.NewVector(m.n),
		dA:      tensor.NewVector(m.h),
		xf:      tensor.NewVector(m.n),
		flipBuf: make([]int, m.n),
	}
}

// NumSites implements Wavefunction.
func (m *MADE) NumSites() int { return m.n }

// Hidden returns the hidden-layer width h.
func (m *MADE) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *MADE) NumParams() int { return len(m.theta) }

// Params implements Wavefunction; the returned vector aliases the model.
func (m *MADE) Params() tensor.Vector { return m.theta }

// Forward runs the masked network on x, filling s.Z1, s.A and s.Z2.
// Output probabilities are sigma(s.Z2) but are not materialized; the
// log-probability path works on pre-activations for numerical stability.
func (m *MADE) Forward(x []int, s *MADEScratch) {
	for i, b := range x {
		s.xf[i] = float64(b)
	}
	m.W1.MaskedMulVec(s.Z1, s.xf, m.M1)
	s.Z1.Add(m.B1)
	copy(s.A, s.Z1)
	tensor.ReLU(s.A)
	m.W2.MaskedMulVec(s.Z2, s.A, m.M2)
	s.Z2.Add(m.B2)
}

// logProbFromZ2 computes log pi(x) = sum_j [x_j ln p_j + (1-x_j) ln(1-p_j)]
// from output pre-activations.
func logProbFromZ2(x []int, z2 tensor.Vector) float64 {
	var lp float64
	for j, b := range x {
		if b == 1 {
			lp += logSigmoid(z2[j])
		} else {
			lp += logSigmoid(-z2[j])
		}
	}
	return lp
}

// LogProbScratch evaluates log pi(x) using caller-owned buffers.
func (m *MADE) LogProbScratch(x []int, s *MADEScratch) float64 {
	m.Forward(x, s)
	return logProbFromZ2(x, s.Z2)
}

// LogProb implements Normalized. It allocates scratch; hot paths should use
// LogProbScratch with a per-worker scratch.
func (m *MADE) LogProb(x []int) float64 {
	return m.LogProbScratch(x, m.NewScratch())
}

// LogPsi implements Wavefunction: log psi = (1/2) log pi.
func (m *MADE) LogPsi(x []int) float64 { return 0.5 * m.LogProb(x) }

// LogPsiScratch is the buffer-reusing variant of LogPsi.
func (m *MADE) LogPsiScratch(x []int, s *MADEScratch) float64 {
	return 0.5 * m.LogProbScratch(x, s)
}

// Conditional implements Autoregressive: P(x_i = 1 | x_<i). Bits at
// positions >= i are ignored by masking.
func (m *MADE) Conditional(x []int, i int) float64 {
	return m.ConditionalScratch(x, i, m.NewScratch())
}

// ConditionalScratch is the buffer-reusing variant of Conditional.
func (m *MADE) ConditionalScratch(x []int, i int, s *MADEScratch) float64 {
	m.Forward(x, s)
	return 1 / (1 + math.Exp(-s.Z2[i]))
}

// ConditionalRow computes P(x_i = 1 | x_<i) in O(h) given hidden
// pre-activations z1 that already reflect x_<i (the incremental sampling
// fast path used by NewIncrementalEvaluator).
func (m *MADE) ConditionalRow(z1 tensor.Vector, i int) float64 {
	row := m.W2.Row(i)
	mrow := m.M2.Row(i)
	z := m.B2[i]
	for k, w := range row {
		if mrow[k] != 0 {
			a := z1[k]
			if a > 0 {
				z += w * a
			}
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// AccumulateInput adds bit i's contribution to the hidden pre-activation
// vector z1 (incremental sampling fast path). z1 must start as a copy of B1.
func (m *MADE) AccumulateInput(z1 tensor.Vector, i, bit int) {
	if bit == 0 {
		return
	}
	for k := 0; k < m.h; k++ {
		if m.M1.At(k, i) != 0 {
			z1[k] += m.W1.At(k, i)
		}
	}
}

// GradLogProbScratch accumulates d log pi / d theta into grad (overwritten).
func (m *MADE) GradLogProbScratch(x []int, grad tensor.Vector, s *MADEScratch) {
	m.Forward(x, s)
	m.gradFromForward(x, s.Z1, s.A, s.Z2, s.dZ2, s.dA, grad)
}

// gradFromForward runs the analytic backward pass from an already computed
// forward state (z1 pre-activation, a activation, z2 output pre-activation)
// into grad. It is shared verbatim by the scalar and batched gradient paths
// — identical forward bytes in, identical gradient bytes out — which is
// how GradLogPsiBatch inherits the scalar path's exact values. dz2 (n) and
// da (h) are caller-owned scratch.
func (m *MADE) gradFromForward(x []int, z1, a, z2, dz2, da, grad tensor.Vector) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	// dlogpi/dz2_j = x_j - sigma(z2_j).
	for j, b := range x {
		dz2[j] = float64(b) - 1/(1+math.Exp(-z2[j]))
	}
	// dA = (M2 .* W2)^T dZ2.
	for k := range da {
		da[k] = 0
	}
	for j := 0; j < m.n; j++ {
		dj := dz2[j]
		if dj == 0 {
			continue
		}
		row := m.W2.Row(j)
		mrow := m.M2.Row(j)
		for k := range row {
			if mrow[k] != 0 {
				da[k] += row[k] * dj
			}
		}
	}
	// Views into grad with the same layout as theta.
	h, n := m.h, m.n
	gW1 := grad[0 : h*n]
	gB1 := grad[h*n : h*n+h]
	gW2 := grad[h*n+h : h*n+h+n*h]
	gB2 := grad[h*n+h+n*h:]
	// Output layer.
	for j := 0; j < n; j++ {
		dj := dz2[j]
		gB2[j] = dj
		base := j * h
		mrow := m.M2.Row(j)
		for k := 0; k < h; k++ {
			if mrow[k] != 0 {
				gW2[base+k] = dj * a[k]
			} else {
				gW2[base+k] = 0
			}
		}
	}
	// Hidden layer through ReLU.
	for k := 0; k < h; k++ {
		dz1 := da[k]
		if z1[k] <= 0 {
			dz1 = 0
		}
		gB1[k] = dz1
		base := k * n
		mrow := m.M1.Row(k)
		for i := 0; i < n; i++ {
			if mrow[i] != 0 && x[i] == 1 {
				gW1[base+i] = dz1
			} else {
				gW1[base+i] = 0
			}
		}
	}
}

// GradLogPsi implements Wavefunction: grad log psi = (1/2) grad log pi.
func (m *MADE) GradLogPsi(x []int, grad tensor.Vector) {
	m.GradLogPsiScratch(x, grad, m.NewScratch())
}

// GradLogPsiScratch is the buffer-reusing variant of GradLogPsi.
func (m *MADE) GradLogPsiScratch(x []int, grad tensor.Vector, s *MADEScratch) {
	m.GradLogProbScratch(x, grad, s)
	grad.Scale(0.5)
}

// freshHiddenUnit recomputes hidden pre-activation k of the fresh forward
// pass for the float-encoded configuration xf: the masked row dot in
// ascending input order followed by the bias, exactly the per-element
// arithmetic of MaskedMulVec + Vector.Add in Forward. Used by the tail-only
// flip evaluation to refresh only the hidden units whose mask sees the
// flipped bit.
func (m *MADE) freshHiddenUnit(k int, xf tensor.Vector) float64 {
	row := m.W1.Row(k)
	mrow := m.M1.Row(k)
	var s float64
	for i, w := range row {
		s += w * mrow[i] * xf[i]
	}
	return s + m.B1[k]
}

// freshOutputUnit recomputes output pre-activation j of the fresh forward
// pass from hidden activations a, mirroring Forward's layer-2 MaskedMulVec
// + bias element for element.
func (m *MADE) freshOutputUnit(j int, a tensor.Vector) float64 {
	row := m.W2.Row(j)
	mrow := m.M2.Row(j)
	var s float64
	for k, w := range row {
		s += w * mrow[k] * a[k]
	}
	return s + m.B2[j]
}

// NewFlipCache implements CacheBuilder with the mask-aware TAIL-ONLY cache.
//
// Flip-cache convention (load-bearing; the batched FlipLogPsiBatch path
// reproduces it bit for bit): the cache holds the base configuration's
// FRESH forward state — z1/a/z2 exactly as Forward computes them — plus the
// prefix sums p[j] of the log-probability fold, p[j] = sum of the first j
// log-sigmoid terms accumulated in the ascending site order logProbFromZ2
// uses. LogPsi() is therefore bitwise identical to a fresh LogPsi(x).
//
// The autoregressive masks guarantee that flipping bit b leaves every
// hidden unit with deg(k) <= b and every output site j < b bitwise
// untouched (output j only sees inputs i < j through hidden units of
// degree <= j). Delta and Flip exploit that: they recompute only the
// hidden units whose mask row contains bit b, only the output sites
// j > b (site b's pre-activation is unchanged; only its term re-branches
// on the flipped bit), and resume the log-probability fold from p[b] —
// halving layer-2 work and the log-sigmoid tail on average while staying
// bitwise identical to a fresh forward pass of the flipped configuration.
// The cache also implements TailFlipCache: FlipLogPsi(b) returns that
// absolute flipped log-psi, and Delta(b) = FlipLogPsi(b) - LogPsi().
func (m *MADE) NewFlipCache(x []int) FlipCache {
	c := &madeFlipCache{m: m, s: m.NewScratch(), x: make([]int, m.n),
		p:  tensor.NewVector(m.n + 1),
		za: tensor.NewVector(m.h), xff: tensor.NewVector(m.n)}
	c.Reset(x)
	return c
}

type madeFlipCache struct {
	m *MADE
	s *MADEScratch // s.Z1, s.A, s.Z2 hold the base FRESH forward state
	x []int
	// p[j] is the log-probability fold after the first j sites, in
	// logProbFromZ2's exact accumulation order; p[n] = log pi(x).
	p      tensor.Vector
	za     tensor.Vector // scratch: flipped hidden activations (Delta only)
	xff    tensor.Vector // scratch: float-encoded flipped configuration
	logPsi float64
}

func (c *madeFlipCache) LogPsi() float64 { return c.logPsi }

// tailLogProb computes log pi of the base configuration with bit flipped,
// evaluating only the tail: hidden units seeing the bit are refreshed from
// a fresh masked dot, output sites j > bit are refreshed from the mixed
// activations, and the fold resumes from the cached prefix p[bit]. The
// result is bitwise identical to a fresh Forward + logProbFromZ2 of the
// flipped configuration. za receives the flipped activations (length h).
func (c *madeFlipCache) tailLogProb(bit int, za tensor.Vector) float64 {
	m := c.m
	nb := 1 - c.x[bit]
	copy(c.xff, c.s.xf)
	c.xff[bit] = float64(nb)
	copy(za, c.s.A)
	for k := 0; k < m.h; k++ {
		if m.M1.At(k, bit) != 0 {
			z := m.freshHiddenUnit(k, c.xff)
			if z < 0 {
				z = 0
			}
			za[k] = z
		}
	}
	lp := c.p[bit]
	// Site bit: pre-activation unchanged by the mask, term re-branches on
	// the flipped value.
	if nb == 1 {
		lp += logSigmoid(c.s.Z2[bit])
	} else {
		lp += logSigmoid(-c.s.Z2[bit])
	}
	for j := bit + 1; j < m.n; j++ {
		z := m.freshOutputUnit(j, za)
		if c.x[j] == 1 {
			lp += logSigmoid(z)
		} else {
			lp += logSigmoid(-z)
		}
	}
	return lp
}

// FlipLogPsi implements TailFlipCache: the absolute log psi of the current
// configuration with bit flipped, bitwise identical to a fresh LogPsi.
func (c *madeFlipCache) FlipLogPsi(bit int) float64 {
	return 0.5 * c.tailLogProb(bit, c.za)
}

func (c *madeFlipCache) Delta(bit int) float64 {
	return c.FlipLogPsi(bit) - c.logPsi
}

// Flip commits bit, updating only the tail of the cached fresh-forward
// state: hidden units seeing the bit, output sites j > bit, and the prefix
// sums from p[bit+1] on. Everything it leaves in place is bitwise what a
// full Reset would recompute.
func (c *madeFlipCache) Flip(bit int) {
	m := c.m
	nb := 1 - c.x[bit]
	c.x[bit] = nb
	c.s.xf[bit] = float64(nb)
	for k := 0; k < m.h; k++ {
		if m.M1.At(k, bit) != 0 {
			z := m.freshHiddenUnit(k, c.s.xf)
			c.s.Z1[k] = z
			if z < 0 {
				z = 0
			}
			c.s.A[k] = z
		}
	}
	lp := c.p[bit]
	if nb == 1 {
		lp += logSigmoid(c.s.Z2[bit])
	} else {
		lp += logSigmoid(-c.s.Z2[bit])
	}
	c.p[bit+1] = lp
	for j := bit + 1; j < m.n; j++ {
		z := m.freshOutputUnit(j, c.s.A)
		c.s.Z2[j] = z
		if c.x[j] == 1 {
			lp += logSigmoid(z)
		} else {
			lp += logSigmoid(-z)
		}
		c.p[j+1] = lp
	}
	c.logPsi = 0.5 * lp
}

func (c *madeFlipCache) State() []int { return c.x }

func (c *madeFlipCache) Reset(x []int) {
	copy(c.x, x)
	c.m.Forward(c.x, c.s)
	var lp float64
	c.p[0] = 0
	for j, b := range c.x {
		if b == 1 {
			lp += logSigmoid(c.s.Z2[j])
		} else {
			lp += logSigmoid(-c.s.Z2[j])
		}
		c.p[j+1] = lp
	}
	c.logPsi = 0.5 * lp
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *MADE) NewGradEvaluator() GradEvaluator {
	return &madeGradEvaluator{m: m, s: m.NewScratch()}
}

type madeGradEvaluator struct {
	m *MADE
	s *MADEScratch
}

func (e *madeGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *madeGradEvaluator) LogPsi(x []int) float64 {
	return e.m.LogPsiScratch(x, e.s)
}

// Degrees exposes the hidden-unit degree assignment (for tests).
func (m *MADE) Degrees() []int { return m.deg }

var (
	_ Autoregressive = (*MADE)(nil)
	_ CacheBuilder   = (*MADE)(nil)
	_ TailFlipCache  = (*madeFlipCache)(nil)
)
