package nn

import (
	"math"
	"sync"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// NADE is the neural autoregressive distribution estimator of Larochelle &
// Murray (2011), the architecture MADE improves on (paper Section 3). One
// shared weight matrix feeds a per-site hidden state that accumulates as
// sites are consumed:
//
//	a_0 = c;   a_{i+1} = a_i + W[:,i] x_i
//	p_i = sigma(v_i . relu(a_i) + b_i)
//
// Evaluation and sampling are O(nh) per configuration without any masking —
// the accumulation makes conditionals autoregressive by construction. Like
// MADE it is normalized, so exact (AUTO) sampling applies.
//
// Parameters: W (h x n), c (h), V (n x h), b (n); d = 2hn + h + n, the same
// count as MADE at equal width.
type NADE struct {
	n, h  int
	theta tensor.Vector
	W     *tensor.Matrix // h x n, input-to-hidden accumulation weights
	C     tensor.Vector  // h, initial hidden state
	V     *tensor.Matrix // n x h, per-site output weights
	B     tensor.Vector  // n, output biases
	// Transposed-layout caches for the batched GEMM path: vt holds V^T
	// (h x n) so per-site conditional columns batch as column-range GEMMs,
	// and wt holds W^T (n x h, row i = column i of W) so the batched
	// accumulate adds one contiguous row per set bit. Both are materialized
	// once per parameter version (the RBM weightsT idiom); version is bumped
	// by InvalidateParams, tVersion records the build version (0 = never).
	// cacheMu serializes rebuilds so concurrent first use builds once; see
	// PrewarmCaches.
	cacheMu  sync.Mutex
	version  uint64
	tVersion uint64
	vt, wt   *tensor.Matrix
	// pool recycles evaluation scratch for the convenience entry points
	// (LogProb, Conditional, GradLogPsi), which previously allocated a fresh
	// NADEScratch per call — a hidden per-sample allocation in any hot loop
	// driving the model through the interface types.
	pool sync.Pool
}

// NADEScratch holds per-worker evaluation buffers.
type NADEScratch struct {
	A    tensor.Vector // running hidden accumulator (h)
	Relu tensor.Vector // relu(A) workspace (h)
	// backward workspaces
	As  *tensor.Matrix // n x h: a_i before consuming site i (for backprop)
	dA  tensor.Vector
	buf []int
}

// NewNADE builds a NADE with n sites and hidden width h.
func NewNADE(n, h int, r *rng.Rand) *NADE {
	if n < 1 || h < 1 {
		panic("nn: NADE requires n >= 1 and h >= 1")
	}
	d := 2*h*n + h + n
	theta := tensor.NewVector(d)
	m := &NADE{n: n, h: h, theta: theta}
	off := 0
	m.W = &tensor.Matrix{Rows: h, Cols: n, Data: theta[off : off+h*n]}
	off += h * n
	m.C = theta[off : off+h]
	off += h
	m.V = &tensor.Matrix{Rows: n, Cols: h, Data: theta[off : off+n*h]}
	off += n * h
	m.B = theta[off : off+n]
	// Fan-in = the trailing dimension of each block, matching the vectors'
	// roles: c seeds the h-wide hidden state, b biases the n-wide output.
	// (The draw COUNT and order are unchanged — uniformInit always fills
	// len(w) values — so MADE/RBM init streams are unaffected.)
	uniformInit(m.W.Data, n, r)
	uniformInit(m.C, h, r)
	uniformInit(m.V.Data, h, r)
	uniformInit(m.B, n, r)
	m.version = 1
	return m
}

// NewScratch allocates evaluation buffers for one worker.
func (m *NADE) NewScratch() *NADEScratch {
	return &NADEScratch{
		A:    tensor.NewVector(m.h),
		Relu: tensor.NewVector(m.h),
		As:   tensor.NewMatrix(m.n, m.h),
		dA:   tensor.NewVector(m.h),
		buf:  make([]int, m.n),
	}
}

// getScratch borrows a scratch from the model's pool (concurrency-safe;
// allocation-free in steady state). Pair with putScratch.
func (m *NADE) getScratch() *NADEScratch {
	if s, ok := m.pool.Get().(*NADEScratch); ok {
		return s
	}
	return m.NewScratch()
}

func (m *NADE) putScratch(s *NADEScratch) { m.pool.Put(s) }

// NumSites implements Wavefunction.
func (m *NADE) NumSites() int { return m.n }

// Hidden returns the hidden width h.
func (m *NADE) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *NADE) NumParams() int { return len(m.theta) }

// Params implements Wavefunction.
func (m *NADE) Params() tensor.Vector { return m.theta }

// InvalidateParams marks the transposed-layout caches stale. It must be
// called after every in-place parameter mutation (optimizer steps,
// checkpoint loads); trainers do this through nn.InvalidateParams.
// Parameter mutation itself still requires evaluation quiescence — the
// mutex below only makes cache rebuilds safe, not in-place Params() writes.
func (m *NADE) InvalidateParams() {
	m.cacheMu.Lock()
	m.version++
	m.cacheMu.Unlock()
}

// PrewarmCaches materializes the transposed-layout caches for the current
// parameter version. Coordinators call it (via nn.Prewarm) before fanning
// work out to workers so no worker pays the rebuild; rebuilds are
// mutex-serialized either way, so this is a latency optimization, not a
// safety requirement.
func (m *NADE) PrewarmCaches() { m.transposed() }

// transposed returns the cached V^T (h x n) and W^T (n x h) layouts the
// batched paths contract against, rebuilding them if the parameters changed
// since the last build. Safe for concurrent use: rebuilds are serialized by
// cacheMu, and the cached matrices are immutable between InvalidateParams
// calls (which require evaluation quiescence), so returned pointers stay
// valid for the whole parallel section.
func (m *NADE) transposed() (vt, wt *tensor.Matrix) {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	if m.tVersion != m.version {
		if m.vt == nil {
			m.vt = tensor.NewMatrix(m.h, m.n)
			m.wt = tensor.NewMatrix(m.n, m.h)
		}
		for i := 0; i < m.n; i++ {
			for k := 0; k < m.h; k++ {
				m.vt.Data[k*m.n+i] = m.V.Data[i*m.h+k]
				m.wt.Data[i*m.h+k] = m.W.Data[k*m.n+i]
			}
		}
		m.tVersion = m.version
	}
	return m.vt, m.wt
}

// conditionalZ computes the output pre-activation for site i given the
// current hidden accumulator.
func (m *NADE) conditionalZ(a tensor.Vector, relu tensor.Vector, i int) float64 {
	copy(relu, a)
	tensor.ReLU(relu)
	return m.V.Row(i).Dot(relu) + m.B[i]
}

// accumulate folds site i's bit into the hidden state.
func (m *NADE) accumulate(a tensor.Vector, i, bit int) {
	if bit == 0 {
		return
	}
	for k := 0; k < m.h; k++ {
		a[k] += m.W.At(k, i)
	}
}

// LogProbScratch evaluates log pi(x) in O(nh).
func (m *NADE) LogProbScratch(x []int, s *NADEScratch) float64 {
	copy(s.A, m.C)
	var lp float64
	for i, b := range x {
		z := m.conditionalZ(s.A, s.Relu, i)
		lp += condTerm(z, b)
		m.accumulate(s.A, i, b)
	}
	return lp
}

// LogProb implements Normalized. It borrows pooled scratch, so repeated
// calls do not allocate; hot paths with a per-worker scratch should still
// prefer LogProbScratch.
func (m *NADE) LogProb(x []int) float64 {
	s := m.getScratch()
	lp := m.LogProbScratch(x, s)
	m.putScratch(s)
	return lp
}

// LogPsi implements Wavefunction: psi = sqrt(pi).
func (m *NADE) LogPsi(x []int) float64 { return 0.5 * m.LogProb(x) }

// LogPsiScratch is the buffer-reusing variant.
func (m *NADE) LogPsiScratch(x []int, s *NADEScratch) float64 {
	return 0.5 * m.LogProbScratch(x, s)
}

// Conditional implements Autoregressive: P(x_i = 1 | x_<i). It borrows
// pooled scratch; hot paths should use ConditionalScratch.
func (m *NADE) Conditional(x []int, i int) float64 {
	s := m.getScratch()
	p := m.ConditionalScratch(x, i, s)
	m.putScratch(s)
	return p
}

// ConditionalScratch is the buffer-reusing variant of Conditional.
func (m *NADE) ConditionalScratch(x []int, i int, s *NADEScratch) float64 {
	copy(s.A, m.C)
	for j := 0; j < i; j++ {
		m.accumulate(s.A, j, x[j])
	}
	return 1 / (1 + math.Exp(-m.conditionalZ(s.A, s.Relu, i)))
}

// GradLogPsiScratch accumulates d log psi / d theta into grad (overwritten).
// Backprop through the accumulation chain: dz_i flows to V_i, b_i and
// relu(a_i); the hidden-state gradient is then pushed back through every
// earlier accumulation step.
func (m *NADE) GradLogPsiScratch(x []int, grad tensor.Vector, s *NADEScratch) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	h, n := m.h, m.n
	for i := range grad {
		grad[i] = 0
	}
	gW := grad[0 : h*n]
	gC := grad[h*n : h*n+h]
	gV := grad[h*n+h : h*n+h+n*h]
	gB := grad[h*n+h+n*h:]

	// Forward, recording a_i before site i consumes its bit.
	copy(s.A, m.C)
	for i, b := range x {
		copy(s.As.Row(i), s.A)
		m.accumulate(s.A, i, b)
	}
	// Backward. dA accumulates gradients flowing into the hidden state
	// from later sites' conditionals.
	for k := range s.dA {
		s.dA[k] = 0
	}
	for i := n - 1; i >= 0; i-- {
		// The accumulation a_{i+1} = a_i + W[:,i] x_i happened after the
		// conditional at site i, so dA currently holds d/d a_{i+1}:
		// route it into W[:,i] before adding site i's own contribution.
		if x[i] == 1 {
			for k := 0; k < h; k++ {
				gW[k*n+i] += s.dA[k]
			}
		}
		ai := s.As.Row(i)
		z := m.conditionalZ(tensor.Vector(ai), s.Relu, i) // also fills s.Relu
		dz := float64(x[i]) - 1/(1+math.Exp(-z))
		gB[i] += dz
		vrow := m.V.Row(i)
		base := i * h
		for k := 0; k < h; k++ {
			gV[base+k] += dz * s.Relu[k]
			if ai[k] > 0 {
				s.dA[k] += dz * vrow[k]
			}
		}
	}
	copy(gC, s.dA)
	// psi = sqrt(pi): halve the log-prob gradient.
	grad.Scale(0.5)
}

// GradLogPsi implements Wavefunction. It borrows pooled scratch; hot paths
// use NewGradEvaluator's per-worker instances instead.
func (m *NADE) GradLogPsi(x []int, grad tensor.Vector) {
	s := m.getScratch()
	m.GradLogPsiScratch(x, grad, s)
	m.putScratch(s)
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *NADE) NewGradEvaluator() GradEvaluator {
	return &nadeGradEvaluator{m: m, s: m.NewScratch()}
}

type nadeGradEvaluator struct {
	m *NADE
	s *NADEScratch
}

func (e *nadeGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *nadeGradEvaluator) LogPsi(x []int) float64 { return e.m.LogPsiScratch(x, e.s) }

// NewFlipCache implements CacheBuilder with a tail-only TailFlipCache:
// NADE's hidden accumulator consumes sites in ascending order, so a flip of
// bit b leaves every a_i with i <= b — and therefore site b's conditional
// pre-activation z_b — bitwise untouched. The cache records, per site, the
// accumulator snapshot a_i, the pre-activation z_i, and the log-probability
// prefix sums; FlipLogPsi resumes the accumulation chain and the fold from
// site b in O((n-b) h) instead of the O(nh) full recompute, producing
// flipped log-psi values bitwise identical to a fresh LogPsi.
func (m *NADE) NewFlipCache(x []int) FlipCache {
	c := &nadeFlipCache{
		m: m, s: m.NewScratch(), x: make([]int, m.n),
		z: tensor.NewVector(m.n), p: tensor.NewVector(m.n + 1),
	}
	copy(c.x, x)
	c.rebase(0)
	return c
}

// nadeFlipCache is NADE's tail-only TailFlipCache; see NADE.NewFlipCache.
// s.As row i holds a_i (the accumulator before site i consumes its bit),
// z[i] the site's conditional pre-activation, and p[i] the log-probability
// fold over sites < i (p[n] is the total; p[0] stays 0).
type nadeFlipCache struct {
	m      *NADE
	s      *NADEScratch
	x      []int
	z, p   tensor.Vector
	logPsi float64
}

// rebase recomputes the recorded base trajectory from site `from` onward,
// reusing the prefix records (sites < from are unaffected by whatever change
// prompted the rebase). The resumed chain performs the identical operations
// a from-scratch rebuild would, so the records are bitwise independent of
// the rebase history.
func (c *nadeFlipCache) rebase(from int) {
	m, s := c.m, c.s
	if from == 0 {
		copy(s.A, m.C)
	} else {
		copy(s.A, s.As.Row(from))
	}
	for i := from; i < m.n; i++ {
		copy(s.As.Row(i), s.A)
		c.z[i] = m.conditionalZ(s.A, s.Relu, i)
		c.p[i+1] = c.p[i] + condTerm(c.z[i], c.x[i])
		m.accumulate(s.A, i, c.x[i])
	}
	c.logPsi = 0.5 * c.p[m.n]
}

func (c *nadeFlipCache) LogPsi() float64 { return c.logPsi }

// FlipLogPsi implements TailFlipCache: re-branch site bit on the unchanged
// base z, resume the accumulation chain from the recorded a_bit snapshot
// with the flipped bit folded in, and fold the tail terms onto the recorded
// prefix sum — bitwise a fresh LogPsi of the flipped configuration.
func (c *nadeFlipCache) FlipLogPsi(bit int) float64 {
	m, s := c.m, c.s
	nb := 1 - c.x[bit]
	lp := c.p[bit] + condTerm(c.z[bit], nb)
	copy(s.A, s.As.Row(bit))
	m.accumulate(s.A, bit, nb)
	for j := bit + 1; j < m.n; j++ {
		lp += condTerm(m.conditionalZ(s.A, s.Relu, j), c.x[j])
		m.accumulate(s.A, j, c.x[j])
	}
	return 0.5 * lp
}

func (c *nadeFlipCache) Delta(bit int) float64 { return c.FlipLogPsi(bit) - c.logPsi }

func (c *nadeFlipCache) Flip(bit int) {
	c.x[bit] = 1 - c.x[bit]
	c.rebase(bit)
}

func (c *nadeFlipCache) State() []int { return c.x }

func (c *nadeFlipCache) Reset(x []int) {
	copy(c.x, x)
	c.rebase(0)
}

// NewIncrementalEvaluator returns the natural O(h)-per-bit NADE evaluator
// (NADE's accumulation is incremental by construction).
func (m *NADE) NewIncrementalEvaluator() ConditionalEvaluator {
	s := m.NewScratch()
	e := &nadeEvaluator{m: m, s: s}
	e.Reset()
	return e
}

type nadeEvaluator struct {
	m      *NADE
	s      *NADEScratch
	fixed  int
	passes int64
}

func (e *nadeEvaluator) Reset() {
	copy(e.s.A, e.m.C)
	e.fixed = 0
}

func (e *nadeEvaluator) Prob(i int) float64 {
	return 1 / (1 + math.Exp(-e.m.conditionalZ(e.s.A, e.s.Relu, i)))
}

func (e *nadeEvaluator) Fix(i, bit int) {
	e.m.accumulate(e.s.A, i, bit)
	if e.fixed++; e.fixed == e.m.n {
		e.passes++
	}
}

func (e *nadeEvaluator) ForwardPasses() int64 { return e.passes }

var (
	_ Autoregressive       = (*NADE)(nil)
	_ CacheBuilder         = (*NADE)(nil)
	_ GradEvaluatorBuilder = (*NADE)(nil)
	_ ConditionalEvaluator = (*nadeEvaluator)(nil)
	_ TailFlipCache        = (*nadeFlipCache)(nil)
)
