package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// NADE is the neural autoregressive distribution estimator of Larochelle &
// Murray (2011), the architecture MADE improves on (paper Section 3). One
// shared weight matrix feeds a per-site hidden state that accumulates as
// sites are consumed:
//
//	a_0 = c;   a_{i+1} = a_i + W[:,i] x_i
//	p_i = sigma(v_i . relu(a_i) + b_i)
//
// Evaluation and sampling are O(nh) per configuration without any masking —
// the accumulation makes conditionals autoregressive by construction. Like
// MADE it is normalized, so exact (AUTO) sampling applies.
//
// Parameters: W (h x n), c (h), V (n x h), b (n); d = 2hn + h + n, the same
// count as MADE at equal width.
type NADE struct {
	n, h  int
	theta tensor.Vector
	W     *tensor.Matrix // h x n, input-to-hidden accumulation weights
	C     tensor.Vector  // h, initial hidden state
	V     *tensor.Matrix // n x h, per-site output weights
	B     tensor.Vector  // n, output biases
}

// NADEScratch holds per-worker evaluation buffers.
type NADEScratch struct {
	A    tensor.Vector // running hidden accumulator (h)
	Relu tensor.Vector // relu(A) workspace (h)
	// backward workspaces
	As  *tensor.Matrix // n x h: a_i before consuming site i (for backprop)
	dA  tensor.Vector
	buf []int
}

// NewNADE builds a NADE with n sites and hidden width h.
func NewNADE(n, h int, r *rng.Rand) *NADE {
	if n < 1 || h < 1 {
		panic("nn: NADE requires n >= 1 and h >= 1")
	}
	d := 2*h*n + h + n
	theta := tensor.NewVector(d)
	m := &NADE{n: n, h: h, theta: theta}
	off := 0
	m.W = &tensor.Matrix{Rows: h, Cols: n, Data: theta[off : off+h*n]}
	off += h * n
	m.C = theta[off : off+h]
	off += h
	m.V = &tensor.Matrix{Rows: n, Cols: h, Data: theta[off : off+n*h]}
	off += n * h
	m.B = theta[off : off+n]
	uniformInit(m.W.Data, n, r)
	uniformInit(m.C, n, r)
	uniformInit(m.V.Data, h, r)
	uniformInit(m.B, h, r)
	return m
}

// NewScratch allocates evaluation buffers for one worker.
func (m *NADE) NewScratch() *NADEScratch {
	return &NADEScratch{
		A:    tensor.NewVector(m.h),
		Relu: tensor.NewVector(m.h),
		As:   tensor.NewMatrix(m.n, m.h),
		dA:   tensor.NewVector(m.h),
		buf:  make([]int, m.n),
	}
}

// NumSites implements Wavefunction.
func (m *NADE) NumSites() int { return m.n }

// Hidden returns the hidden width h.
func (m *NADE) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *NADE) NumParams() int { return len(m.theta) }

// Params implements Wavefunction.
func (m *NADE) Params() tensor.Vector { return m.theta }

// conditionalZ computes the output pre-activation for site i given the
// current hidden accumulator.
func (m *NADE) conditionalZ(a tensor.Vector, relu tensor.Vector, i int) float64 {
	copy(relu, a)
	tensor.ReLU(relu)
	return m.V.Row(i).Dot(relu) + m.B[i]
}

// accumulate folds site i's bit into the hidden state.
func (m *NADE) accumulate(a tensor.Vector, i, bit int) {
	if bit == 0 {
		return
	}
	for k := 0; k < m.h; k++ {
		a[k] += m.W.At(k, i)
	}
}

// LogProbScratch evaluates log pi(x) in O(nh).
func (m *NADE) LogProbScratch(x []int, s *NADEScratch) float64 {
	copy(s.A, m.C)
	var lp float64
	for i, b := range x {
		z := m.conditionalZ(s.A, s.Relu, i)
		if b == 1 {
			lp += logSigmoid(z)
		} else {
			lp += logSigmoid(-z)
		}
		m.accumulate(s.A, i, b)
	}
	return lp
}

// LogProb implements Normalized.
func (m *NADE) LogProb(x []int) float64 { return m.LogProbScratch(x, m.NewScratch()) }

// LogPsi implements Wavefunction: psi = sqrt(pi).
func (m *NADE) LogPsi(x []int) float64 { return 0.5 * m.LogProb(x) }

// LogPsiScratch is the buffer-reusing variant.
func (m *NADE) LogPsiScratch(x []int, s *NADEScratch) float64 {
	return 0.5 * m.LogProbScratch(x, s)
}

// Conditional implements Autoregressive.
func (m *NADE) Conditional(x []int, i int) float64 {
	s := m.NewScratch()
	copy(s.A, m.C)
	for j := 0; j < i; j++ {
		m.accumulate(s.A, j, x[j])
	}
	return 1 / (1 + math.Exp(-m.conditionalZ(s.A, s.Relu, i)))
}

// GradLogPsiScratch accumulates d log psi / d theta into grad (overwritten).
// Backprop through the accumulation chain: dz_i flows to V_i, b_i and
// relu(a_i); the hidden-state gradient is then pushed back through every
// earlier accumulation step.
func (m *NADE) GradLogPsiScratch(x []int, grad tensor.Vector, s *NADEScratch) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	h, n := m.h, m.n
	for i := range grad {
		grad[i] = 0
	}
	gW := grad[0 : h*n]
	gC := grad[h*n : h*n+h]
	gV := grad[h*n+h : h*n+h+n*h]
	gB := grad[h*n+h+n*h:]

	// Forward, recording a_i before site i consumes its bit.
	copy(s.A, m.C)
	for i, b := range x {
		copy(s.As.Row(i), s.A)
		m.accumulate(s.A, i, b)
	}
	// Backward. dA accumulates gradients flowing into the hidden state
	// from later sites' conditionals.
	for k := range s.dA {
		s.dA[k] = 0
	}
	for i := n - 1; i >= 0; i-- {
		// The accumulation a_{i+1} = a_i + W[:,i] x_i happened after the
		// conditional at site i, so dA currently holds d/d a_{i+1}:
		// route it into W[:,i] before adding site i's own contribution.
		if x[i] == 1 {
			for k := 0; k < h; k++ {
				gW[k*n+i] += s.dA[k]
			}
		}
		ai := s.As.Row(i)
		z := m.conditionalZ(tensor.Vector(ai), s.Relu, i) // also fills s.Relu
		dz := float64(x[i]) - 1/(1+math.Exp(-z))
		gB[i] += dz
		vrow := m.V.Row(i)
		base := i * h
		for k := 0; k < h; k++ {
			gV[base+k] += dz * s.Relu[k]
			if ai[k] > 0 {
				s.dA[k] += dz * vrow[k]
			}
		}
	}
	copy(gC, s.dA)
	// psi = sqrt(pi): halve the log-prob gradient.
	grad.Scale(0.5)
}

// GradLogPsi implements Wavefunction.
func (m *NADE) GradLogPsi(x []int, grad tensor.Vector) {
	m.GradLogPsiScratch(x, grad, m.NewScratch())
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *NADE) NewGradEvaluator() GradEvaluator {
	return &nadeGradEvaluator{m: m, s: m.NewScratch()}
}

type nadeGradEvaluator struct {
	m *NADE
	s *NADEScratch
}

func (e *nadeGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *nadeGradEvaluator) LogPsi(x []int) float64 { return e.m.LogPsiScratch(x, e.s) }

// NewFlipCache implements CacheBuilder (recompute-on-flip; O(nh) per Delta).
func (m *NADE) NewFlipCache(x []int) FlipCache {
	c := &nadeFlipCache{m: m, s: m.NewScratch(), x: make([]int, m.n)}
	copy(c.x, x)
	c.logPsi = m.LogPsiScratch(c.x, c.s)
	return c
}

type nadeFlipCache struct {
	m      *NADE
	s      *NADEScratch
	x      []int
	logPsi float64
}

func (c *nadeFlipCache) LogPsi() float64 { return c.logPsi }

func (c *nadeFlipCache) Delta(bit int) float64 {
	copy(c.s.buf, c.x)
	c.s.buf[bit] = 1 - c.s.buf[bit]
	return c.m.LogPsiScratch(c.s.buf, c.s) - c.logPsi
}

func (c *nadeFlipCache) Flip(bit int) {
	c.x[bit] = 1 - c.x[bit]
	c.logPsi = c.m.LogPsiScratch(c.x, c.s)
}

func (c *nadeFlipCache) State() []int { return c.x }

func (c *nadeFlipCache) Reset(x []int) {
	copy(c.x, x)
	c.logPsi = c.m.LogPsiScratch(c.x, c.s)
}

// NewIncrementalEvaluator returns the natural O(h)-per-bit NADE evaluator
// (NADE's accumulation is incremental by construction).
func (m *NADE) NewIncrementalEvaluator() ConditionalEvaluator {
	s := m.NewScratch()
	e := &nadeEvaluator{m: m, s: s}
	e.Reset()
	return e
}

type nadeEvaluator struct {
	m      *NADE
	s      *NADEScratch
	fixed  int
	passes int64
}

func (e *nadeEvaluator) Reset() {
	copy(e.s.A, e.m.C)
	e.fixed = 0
}

func (e *nadeEvaluator) Prob(i int) float64 {
	return 1 / (1 + math.Exp(-e.m.conditionalZ(e.s.A, e.s.Relu, i)))
}

func (e *nadeEvaluator) Fix(i, bit int) {
	e.m.accumulate(e.s.A, i, bit)
	if e.fixed++; e.fixed == e.m.n {
		e.passes++
	}
}

func (e *nadeEvaluator) ForwardPasses() int64 { return e.passes }

var (
	_ Autoregressive       = (*NADE)(nil)
	_ CacheBuilder         = (*NADE)(nil)
	_ GradEvaluatorBuilder = (*NADE)(nil)
	_ ConditionalEvaluator = (*nadeEvaluator)(nil)
)
