package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// ConditionalEvaluator walks the autoregressive chain rule for one sample:
// Reset, then alternately Prob(i) / Fix(i, bit) for i = 0..n-1 in order.
// Implementations are not safe for concurrent use; create one per worker.
type ConditionalEvaluator interface {
	// Reset starts a fresh sample.
	Reset()
	// Prob returns P(x_i = 1 | bits fixed so far). Bits 0..i-1 must have
	// been fixed already.
	Prob(i int) float64
	// Fix commits bit i of the sample being built.
	Fix(i, bit int)
	// ForwardPasses reports the cumulative number of full-network forward
	// passes consumed (the paper's cost unit for Figure 1).
	ForwardPasses() int64
}

// naiveEvaluator reruns the whole masked network for every conditional:
// exactly Algorithm 1 of the paper, n forward passes per sample.
type naiveEvaluator struct {
	m      *MADE
	s      *MADEScratch
	x      []int
	passes int64
}

// NewNaiveEvaluator returns the paper-faithful evaluator (one full forward
// pass per conditional).
func (m *MADE) NewNaiveEvaluator() ConditionalEvaluator {
	return &naiveEvaluator{m: m, s: m.NewScratch(), x: make([]int, m.n)}
}

func (e *naiveEvaluator) Reset() {
	for i := range e.x {
		e.x[i] = 0
	}
}

func (e *naiveEvaluator) Prob(i int) float64 {
	e.m.Forward(e.x, e.s)
	e.passes++
	return 1 / (1 + math.Exp(-e.s.Z2[i]))
}

func (e *naiveEvaluator) Fix(i, bit int) { e.x[i] = bit }

func (e *naiveEvaluator) ForwardPasses() int64 { return e.passes }

// incrementalEvaluator maintains the running hidden pre-activation so each
// conditional costs O(h) instead of O(hn): the optimization ablated in
// DESIGN.md. One full forward-pass-equivalent is charged per completed
// sample (n Fix calls), matching its true O(hn) total cost.
type incrementalEvaluator struct {
	m      *MADE
	z1     tensor.Vector
	fixed  int
	passes int64
}

// NewIncrementalEvaluator returns the O(h)-per-bit fast-path evaluator.
func (m *MADE) NewIncrementalEvaluator() ConditionalEvaluator {
	return &incrementalEvaluator{m: m, z1: m.B1.Clone()}
}

func (e *incrementalEvaluator) Reset() {
	copy(e.z1, e.m.B1)
	e.fixed = 0
}

func (e *incrementalEvaluator) Prob(i int) float64 {
	return e.m.ConditionalRow(e.z1, i)
}

func (e *incrementalEvaluator) Fix(i, bit int) {
	e.m.AccumulateInput(e.z1, i, bit)
	if e.fixed++; e.fixed == e.m.n {
		e.passes++
	}
}

func (e *incrementalEvaluator) ForwardPasses() int64 { return e.passes }
