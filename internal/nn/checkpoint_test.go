package nn

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

func TestCheckpointRoundTripMADE(t *testing.T) {
	r := rng.New(1)
	m := NewMADE(9, 7, r)
	// Move parameters off their init values.
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-1, 1)
	}
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, m); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadWavefunction(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := wf.(*MADE)
	if !ok {
		t.Fatalf("loaded %T, want *MADE", wf)
	}
	if m2.NumSites() != 9 || m2.Hidden() != 7 {
		t.Fatalf("shape lost: n=%d h=%d", m2.NumSites(), m2.Hidden())
	}
	x := make([]int, 9)
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		if m.LogProb(x) != m2.LogProb(x) {
			t.Fatal("loaded model disagrees with original")
		}
	}
}

func TestCheckpointRoundTripRBM(t *testing.T) {
	r := rng.New(2)
	m := NewRBM(6, 11, r)
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, m); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadWavefunction(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := wf.(*RBM)
	if !ok {
		t.Fatalf("loaded %T, want *RBM", wf)
	}
	x := make([]int, 6)
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		if m.LogPsi(x) != m2.LogPsi(x) {
			t.Fatal("loaded RBM disagrees with original")
		}
	}
}

// TestCheckpointRoundTripNADERNN: NADE and RNN checkpoints must round-trip
// with bitwise-identical evaluations — the prerequisite for these models
// riding dist.Trainer.Recover (before PR 7 SaveWavefunction rejected them).
func TestCheckpointRoundTripNADERNN(t *testing.T) {
	r := rng.New(21)
	models := []Wavefunction{NewNADE(8, 5, r), NewRNN(7, 6, r)}
	for _, m := range models {
		for i := range m.Params() {
			m.Params()[i] += r.Uniform(-1, 1)
		}
		InvalidateParams(m)
		var buf bytes.Buffer
		if err := SaveWavefunction(&buf, m); err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		wf, err := LoadWavefunction(&buf)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if wf.NumSites() != m.NumSites() || wf.NumParams() != m.NumParams() {
			t.Fatalf("%T: shape lost (n=%d d=%d)", m, wf.NumSites(), wf.NumParams())
		}
		x := make([]int, m.NumSites())
		for trial := 0; trial < 20; trial++ {
			r.FillBits(x)
			if m.LogPsi(x) != wf.LogPsi(x) {
				t.Fatalf("loaded %T disagrees with original", m)
			}
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pvq")
	m := NewMADE(5, 4, rng.New(3))
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if wf.NumParams() != m.NumParams() {
		t.Fatal("param count lost")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadWavefunction(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	m := NewMADE(4, 3, rng.New(4))
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-7]
	if _, err := LoadWavefunction(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, fakeWavefunction{}); err == nil {
		t.Fatal("unknown wavefunction type accepted")
	}
}

type fakeWavefunction struct{}

func (fakeWavefunction) NumSites() int                       { return 1 }
func (fakeWavefunction) NumParams() int                      { return 1 }
func (fakeWavefunction) Params() tensor.Vector               { return tensor.Vector{0} }
func (fakeWavefunction) LogPsi(x []int) float64              { return 0 }
func (fakeWavefunction) GradLogPsi(x []int, g tensor.Vector) {}

// header builds a raw checkpoint header (magic, kind, n, h, d) followed by
// payload float64 zeros, for the corrupt-header table.
func header(magic string, kind byte, n, h, d uint32, payloadFloats int) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(kind)
	for _, v := range []uint32{n, h, d} {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	buf.Write(make([]byte, 8*payloadFloats))
	return buf.Bytes()
}

// TestCheckpointCorruptHeaders is the hardening table: every corrupt header
// must be rejected with an error BEFORE the O(n*h) model allocation — in
// particular the absurd-dims rows would OOM the test process if validation
// ran after construction.
func TestCheckpointCorruptHeaders(t *testing.T) {
	// MADE(4,3): d = 2*3*4 + 3 + 4 = 31. RBM(4,3): d = 3*4 + 4 + 3 + 1 = 20.
	// NADE(4,3): d = 2*3*4 + 3 + 4 = 31 (same as MADE; kind disambiguates).
	// RNN(4,3): d = 3*3 + 4*3 + 4 = 25.
	cases := []struct {
		name string
		raw  []byte
	}{
		{"bad magic", header("PVQ2", 1, 4, 3, 31, 31)},
		{"bad kind", header("PVQ1", 9, 4, 3, 31, 31)},
		{"kind zero", header("PVQ1", 0, 4, 3, 31, 31)},
		{"truncated payload", header("PVQ1", 1, 4, 3, 31, 30)},
		{"truncated header", header("PVQ1", 1, 4, 3, 31, 31)[:9]},
		{"zero sites", header("PVQ1", 1, 0, 3, 3, 3)},
		{"zero hidden", header("PVQ1", 2, 4, 0, 5, 5)},
		{"param count mismatch MADE", header("PVQ1", 1, 4, 3, 30, 30)},
		{"param count mismatch RBM", header("PVQ1", 2, 4, 3, 31, 31)},
		{"param count mismatch NADE", header("PVQ1", 3, 4, 3, 30, 30)},
		{"param count mismatch RNN", header("PVQ1", 4, 4, 3, 31, 31)},
		{"zero sites NADE", header("PVQ1", 3, 0, 3, 3, 3)},
		{"zero hidden RNN", header("PVQ1", 4, 4, 0, 4, 4)},
		{"truncated payload RNN", header("PVQ1", 4, 4, 3, 25, 24)},
		// 2*(2^31-1)*(2^31-1) params claimed: must fail the derived-count
		// check in int64 arithmetic without ever allocating.
		{"absurd dims MADE", header("PVQ1", 1, 1<<31 - 1, 1<<31 - 1, 1<<31 - 1, 0)},
		{"absurd dims RBM", header("PVQ1", 2, 1<<31 - 1, 1<<31 - 1, 1<<31 - 1, 0)},
		{"absurd dims NADE", header("PVQ1", 3, 1<<31 - 1, 1<<31 - 1, 1<<31 - 1, 0)},
		{"absurd dims RNN", header("PVQ1", 4, 1<<31 - 1, 1<<31 - 1, 1<<31 - 1, 0)},
		// Dims whose derived count is internally consistent but past the
		// plausibility cap (MADE 2^14 x 2^14: d = 2*2^28 + 2^15 > 2^28).
		{"over cap consistent MADE", header("PVQ1", 1, 1<<14, 1<<14, 0, 0)},
	}
	// Make the over-cap row's d header-consistent so only the cap rejects it.
	want, err := expectedParamCount(kindMADE, 1<<14, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if want <= 1<<28 || want > 1<<32-1 {
		t.Fatalf("over-cap row needs 2^28 < d < 2^32, got %d", want)
	}
	// d sits at byte 13: magic (4) + kind (1) + n (4) + h (4).
	binary.LittleEndian.PutUint32(cases[len(cases)-1].raw[13:], uint32(want))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wf, err := LoadWavefunction(bytes.NewReader(tc.raw))
			if err == nil {
				t.Fatalf("corrupt checkpoint accepted, loaded %T", wf)
			}
		})
	}
}

// TestSaveFileAtomic: overwriting an existing checkpoint must leave either
// the old or the new complete file, and no temp droppings on success or on
// failure.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pvq")
	old := NewMADE(5, 4, rng.New(6))
	if err := SaveFile(path, old); err != nil {
		t.Fatal(err)
	}
	nu := NewMADE(5, 4, rng.New(7))
	if err := SaveFile(path, nu); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []int{1, 0, 1, 1, 0}
	if wf.LogPsi(x) != nu.LogPsi(x) {
		t.Fatal("overwrite did not land the new model")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "model.pvq" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp droppings left behind: %v", names)
	}
}

// TestSaveFileFailureLeavesOldCheckpoint: a failing save (unserializable
// model) must not clobber or remove the existing good checkpoint.
func TestSaveFileFailureLeavesOldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pvq")
	good := NewRBM(4, 3, rng.New(8))
	if err := SaveFile(path, good); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, fakeWavefunction{}); err == nil {
		t.Fatal("unserializable model saved without error")
	}
	wf, err := LoadFile(path)
	if err != nil {
		t.Fatalf("old checkpoint destroyed by failed save: %v", err)
	}
	x := []int{0, 1, 1, 0}
	if wf.LogPsi(x) != good.LogPsi(x) {
		t.Fatal("old checkpoint corrupted by failed save")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("failed save left %d entries in dir, want 1", len(ents))
	}
}

// TestSaveFileRelativePath: the temp file must be created next to the
// target even for a bare relative filename (filepath.Dir gives ".", not "",
// which would silently fall back to the system temp dir and break the
// same-filesystem rename guarantee).
func TestSaveFileRelativePath(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	m := NewMADE(4, 3, rng.New(9))
	if err := SaveFile("bare.pvq", m); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile("bare.pvq"); err != nil {
		t.Fatal(err)
	}
}
