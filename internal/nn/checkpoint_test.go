package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

func TestCheckpointRoundTripMADE(t *testing.T) {
	r := rng.New(1)
	m := NewMADE(9, 7, r)
	// Move parameters off their init values.
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-1, 1)
	}
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, m); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadWavefunction(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := wf.(*MADE)
	if !ok {
		t.Fatalf("loaded %T, want *MADE", wf)
	}
	if m2.NumSites() != 9 || m2.Hidden() != 7 {
		t.Fatalf("shape lost: n=%d h=%d", m2.NumSites(), m2.Hidden())
	}
	x := make([]int, 9)
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		if m.LogProb(x) != m2.LogProb(x) {
			t.Fatal("loaded model disagrees with original")
		}
	}
}

func TestCheckpointRoundTripRBM(t *testing.T) {
	r := rng.New(2)
	m := NewRBM(6, 11, r)
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, m); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadWavefunction(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := wf.(*RBM)
	if !ok {
		t.Fatalf("loaded %T, want *RBM", wf)
	}
	x := make([]int, 6)
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		if m.LogPsi(x) != m2.LogPsi(x) {
			t.Fatal("loaded RBM disagrees with original")
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pvq")
	m := NewMADE(5, 4, rng.New(3))
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	wf, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if wf.NumParams() != m.NumParams() {
		t.Fatal("param count lost")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadWavefunction(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	m := NewMADE(4, 3, rng.New(4))
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-7]
	if _, err := LoadWavefunction(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, fakeWavefunction{}); err == nil {
		t.Fatal("unknown wavefunction type accepted")
	}
}

type fakeWavefunction struct{}

func (fakeWavefunction) NumSites() int                       { return 1 }
func (fakeWavefunction) NumParams() int                      { return 1 }
func (fakeWavefunction) Params() tensor.Vector               { return tensor.Vector{0} }
func (fakeWavefunction) LogPsi(x []int) float64              { return 0 }
func (fakeWavefunction) GradLogPsi(x []int, g tensor.Vector) {}
