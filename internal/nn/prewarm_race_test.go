package nn

import (
	"sync"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// raceGoroutines is the fan-out width of the first-use race regressions —
// at least 4 per the worker-scaling issue, wider to give the race detector
// more interleavings to bite on.
const raceGoroutines = 8

// lazyCacheModels builds one instance of every model family. MADE, NADE and
// the RBM keep lazy parameter-version caches (masked weights, V^T/W^T, W^T);
// the RNN keeps none but rides along to pin that its batched path really has
// no shared mutable state either.
func lazyCacheModels(n, h int) map[string]interface {
	Wavefunction
	BatchEvaluatorBuilder
} {
	return map[string]interface {
		Wavefunction
		BatchEvaluatorBuilder
	}{
		"made": NewMADE(n, h, rng.New(81)),
		"nade": NewNADE(n, h, rng.New(82)),
		"rbm":  NewRBM(n, h, rng.New(83)),
		"rnn":  NewRNN(n, h, rng.New(84)),
	}
}

// TestLazyCacheConcurrentFirstUse is the -race regression for the lazy
// parameter-version caches: several goroutines, each owning a private
// BatchEvaluator over ONE shared model, evaluate concurrently with no
// coordinator-side pre-warm, so the very first cache build races unless the
// rebuild is serialized. Every goroutine must also read back exactly the
// scalar reference values, pinning that the winning build is the right one.
func TestLazyCacheConcurrentFirstUse(t *testing.T) {
	const n, h, bs = 11, 13, 16
	for name, m := range lazyCacheModels(n, h) {
		t.Run(name, func(t *testing.T) {
			b := randomConfigs(bs, n, rng.New(85))
			want := make([]float64, bs)
			ref := lazyCacheModels(n, h)[name] // same seeds => same params
			for k := 0; k < bs; k++ {
				want[k] = ref.LogPsi(b.Row(k))
			}
			var wg sync.WaitGroup
			errs := make([]string, raceGoroutines)
			for g := 0; g < raceGoroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					e := m.NewBatchEvaluator(2)
					out := make([]float64, bs)
					e.LogPsiBatch(b, out)
					for k := range out {
						if out[k] != want[k] {
							errs[g] = "batched output diverged from scalar reference"
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g, e := range errs {
				if e != "" {
					t.Fatalf("goroutine %d: %s", g, e)
				}
			}
		})
	}
}

// TestLazyCacheConcurrentReuseAfterInvalidate covers the second half of the
// cache lifecycle: after a quiescent InvalidateParams (the optimizer-step /
// checkpoint-load path), the next parallel section hits first use of the NEW
// version concurrently. The rebuild must again be race-free and produce the
// scalar reference values for the mutated parameters.
func TestLazyCacheConcurrentReuseAfterInvalidate(t *testing.T) {
	const n, h, bs = 9, 10, 12
	for name, m := range lazyCacheModels(n, h) {
		t.Run(name, func(t *testing.T) {
			b := randomConfigs(bs, n, rng.New(86))
			// Warm the caches at version 1, then mutate params while
			// quiescent.
			Prewarm(m)
			theta := m.Params()
			for i := range theta {
				theta[i] *= 1.0625 // exact scaling, keeps values tame
			}
			InvalidateParams(m)
			want := make([]float64, bs)
			for k := 0; k < bs; k++ {
				want[k] = m.LogPsi(b.Row(k))
			}
			var wg sync.WaitGroup
			errs := make([]string, raceGoroutines)
			for g := 0; g < raceGoroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					e := m.NewBatchEvaluator(2)
					out := make([]float64, bs)
					e.LogPsiBatch(b, out)
					for k := range out {
						if out[k] != want[k] {
							errs[g] = "post-invalidate batched output diverged from scalar reference"
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g, e := range errs {
				if e != "" {
					t.Fatalf("goroutine %d: %s", g, e)
				}
			}
		})
	}
}

// TestPrewarmIdempotent pins Prewarm's contract: repeated and concurrent
// calls are safe, and a pre-warmed model evaluates identically to a
// cold one.
func TestPrewarmIdempotent(t *testing.T) {
	const n, h, bs = 7, 8, 6
	for name, m := range lazyCacheModels(n, h) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < raceGoroutines; g++ {
				wg.Add(1)
				go func() { defer wg.Done(); Prewarm(m) }()
			}
			wg.Wait()
			Prewarm(m)
			cold := lazyCacheModels(n, h)[name]
			b := randomConfigs(bs, n, rng.New(87))
			warm := make([]float64, bs)
			ref := make([]float64, bs)
			m.NewBatchEvaluator(1).LogPsiBatch(b, warm)
			cold.NewBatchEvaluator(1).LogPsiBatch(b, ref)
			for k := range warm {
				if warm[k] != ref[k] {
					t.Fatalf("row %d: pre-warmed %v != cold %v", k, warm[k], ref[k])
				}
			}
		})
	}
}
