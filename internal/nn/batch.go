package nn

import "github.com/vqmc-scale/parvqmc/internal/tensor"

// ConfigBatch is a flat batch of n-bit configurations, row-major N x Sites.
// It is structurally identical to sampler.Batch and exists so the batched
// evaluation contract can live here without an import cycle; callers
// holding a sampler.Batch alias its storage zero-copy.
type ConfigBatch struct {
	N, Sites int
	Bits     []int
}

// Row returns configuration i, aliasing the batch storage.
func (b ConfigBatch) Row(i int) []int { return b.Bits[i*b.Sites : (i+1)*b.Sites] }

// BatchEvaluator evaluates a whole batch of configurations through blocked
// matrix products over the sample dimension instead of per-sample
// matrix-vector calls — the evaluation fusion the paper's scalability
// argument rests on (amplitude work is embarrassingly parallel across
// samples, so it should saturate the hardware as GEMMs).
//
// Bitwise-equivalence guarantee: every method produces EXACTLY the bytes
// the corresponding scalar path produces — LogPsiBatch matches per-row
// LogPsi, GradLogPsiBatch matches per-row GradLogPsi, and FlipLogPsiBatch
// matches the model's FlipCache (base log-psi as Reset computes it, deltas
// as Delta computes them) — and is invariant to the worker count the
// evaluator was built with. Implementations achieve this by accumulating
// every fused product in the same fixed contraction order as the scalar
// kernels (see tensor.MatMul and tensor.MatMulReLU, which MADE drives
// against pre-transposed masked weights; tensor.MatMulT is the same
// contract for untransposed operands) and by sharing the per-row reduction
// code with the scalar path verbatim. The guarantee is load-bearing:
// package dist checks replica consistency with exact ==, and the batched
// and scalar paths must remain interchangeable underneath it.
//
// Tail-only invariant (MADE): the flip super-batch is evaluated under the
// mask-aware tail-only convention of MADE.NewFlipCache — for a flip of bit
// b only output sites j >= b are re-evaluated (column-range GEMMs over the
// tail), with the head of the log-probability fold resumed from the base
// row's prefix sums — and the resulting flipped log-psi values are bitwise
// identical to a fresh LogPsi of each flipped configuration. Halving
// layer-2 work and the log-sigmoid tail is therefore invisible in the
// values: scalar FlipCache.Delta and the batched delta agree with exact ==.
//
// Implementations own growable scratch and are NOT safe for concurrent
// use; they parallelize internally across the workers they were built with.
type BatchEvaluator interface {
	// LogPsiBatch fills out[k] = log|psi(row k)| for every row of b.
	// len(out) must be b.N.
	LogPsiBatch(b ConfigBatch, out []float64)
	// GradLogPsiBatch fills ows row k with grad log|psi(row k)|.
	// ows must be b.N x NumParams.
	GradLogPsiBatch(b ConfigBatch, ows *tensor.Batch)
	// FlipLogPsiBatch evaluates the B x (F+1) flip super-batch: base[k]
	// receives log|psi(row k)| computed exactly as the model's FlipCache
	// base (the fresh forward convention), and delta[k*len(flips)+f]
	// receives log|psi(row k with bit flips[f] flipped)| - base[k],
	// computed exactly as FlipCache.Delta computes it (for MADE: the
	// tail-only fresh flipped log-psi minus the base; for RBM: the O(h)
	// incremental ln-cosh delta). Returning deltas rather than absolute
	// flipped amplitudes is what keeps core.LocalEnergies bitwise
	// interchangeable between the scalar and batched paths for EVERY model
	// family — the scalar loop exponentiates Delta directly, and
	// subtracting a batched absolute from a batched base would re-round.
	// base may be nil when the caller needs only the deltas (the
	// local-energy hot path) — implementations then skip any base-only
	// work their convention allows (the RBM's per-row ln-cosh fold).
	// Otherwise len(base) must be b.N; len(delta) must be b.N*len(flips).
	FlipLogPsiBatch(b ConfigBatch, flips []int, base, delta []float64)
}

// BatchEvaluatorBuilder is implemented by wavefunctions that provide a
// batched evaluation path. workers bounds the internal parallelism
// (<= 0 means GOMAXPROCS); the returned evaluator is worker-count invariant
// in its VALUES, workers only set the fan-out.
type BatchEvaluatorBuilder interface {
	NewBatchEvaluator(workers int) BatchEvaluator
}

// FullFlipBatchEvaluatorBuilder is implemented by wavefunctions whose
// batched path additionally provides a full-recompute flip oracle: a
// BatchEvaluator whose FlipLogPsiBatch re-evaluates every flip row from
// scratch instead of resuming from tail-only snapshots. The oracle produces
// bitwise the same outputs as the tail-only evaluator (the tail resume is
// provably an exact suffix of the full fold) and exists as the
// differential-testing reference and the A/B perf baseline; core.EvalFullFlip
// selects it through this interface.
type FullFlipBatchEvaluatorBuilder interface {
	NewFullFlipBatchEvaluator(workers int) BatchEvaluator
}

// BatchAncestralSampler advances a whole batch of ancestral samples
// site-major: one fused pass over the B x h hidden state per site instead
// of B independent site loops, so the per-site weight column stays hot in
// cache across the entire batch.
//
// Sample fills b's bits from pre-drawn uniforms u (row-major, u[k*Sites+i]
// drives bit i of sample k): bit = 1 iff u < P(x_i = 1 | x_<i). Because the
// per-sample conditional arithmetic is identical to the scalar incremental
// evaluator's (same ConditionalRow/AccumulateInput calls in the same
// per-sample order), the sampled bits are bitwise identical to scalar
// ancestral sampling fed the same uniforms.
type BatchAncestralSampler interface {
	Sample(b ConfigBatch, u []float64, workers int)
}

// BatchAncestralBuilder is implemented by autoregressive models that
// provide a batched ancestral sampler.
type BatchAncestralBuilder interface {
	NewBatchAncestralSampler() BatchAncestralSampler
}

// InvalidateParams notifies w, if it caches parameter-derived state (such
// as MADE's masked-weight product W.M), that its parameter vector was
// mutated in place. Trainers must call this after every optimizer step;
// it is a no-op for models without derived caches.
func InvalidateParams(w Wavefunction) {
	if v, ok := w.(interface{ InvalidateParams() }); ok {
		v.InvalidateParams()
	}
}

// Prewarm materializes any lazy parameter-derived caches the model keeps
// (MADE's masked-weight products, NADE's V^T/W^T layouts, the RBM's W^T;
// the RNN has none) for the current parameter version. Coordinators call it
// before fanning evaluation out to workers so the rebuild happens once, up
// front, on the coordinating goroutine instead of surprising the first
// worker that needs it. Rebuilds are mutex-serialized inside each model, so
// skipping Prewarm is a latency cost, never a data race; it is a no-op for
// models without derived caches. The parameter is any (rather than
// Wavefunction) so call sites that only hold a narrower view of the model
// (CacheBuilder, GradEvaluator) can still pre-warm it.
func Prewarm(model any) {
	if p, ok := model.(interface{ PrewarmCaches() }); ok {
		p.PrewarmCaches()
	}
}
