package nn

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// autoregressiveModel is what these shared tests need.
type autoregressiveModel interface {
	Autoregressive
	GradEvaluatorBuilder
	CacheBuilder
}

func perturb(m Wavefunction, r *rng.Rand, scale float64) {
	p := m.Params()
	for i := range p {
		p[i] += r.Uniform(-scale, scale)
	}
}

func checkNormalized(t *testing.T, name string, m Normalized) {
	t.Helper()
	n := m.NumSites()
	var total float64
	x := make([]int, n)
	for ix := 0; ix < 1<<uint(n); ix++ {
		hamiltonian.IndexToBits(ix, x)
		total += math.Exp(m.LogProb(x))
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("%s: sum_x pi(x) = %v, want 1", name, total)
	}
}

func TestNADENormalization(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		m := NewNADE(n, 6, rng.New(uint64(n)))
		perturb(m, rng.New(99), 0.7)
		checkNormalized(t, "NADE", m)
	}
}

func TestRNNNormalization(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		m := NewRNN(n, 6, rng.New(uint64(n)))
		perturb(m, rng.New(99), 0.7)
		checkNormalized(t, "RNN", m)
	}
}

func TestNADEChainRuleConsistency(t *testing.T) {
	r := rng.New(3)
	m := NewNADE(6, 7, r)
	x := make([]int, 6)
	for trial := 0; trial < 30; trial++ {
		r.FillBits(x)
		var lp float64
		for i := 0; i < 6; i++ {
			p := m.Conditional(x, i)
			if x[i] == 1 {
				lp += math.Log(p)
			} else {
				lp += math.Log(1 - p)
			}
		}
		if math.Abs(lp-m.LogProb(x)) > 1e-10 {
			t.Fatalf("NADE chain rule product %v != LogProb %v", lp, m.LogProb(x))
		}
	}
}

func TestRNNChainRuleConsistency(t *testing.T) {
	r := rng.New(4)
	m := NewRNN(6, 5, r)
	x := make([]int, 6)
	for trial := 0; trial < 30; trial++ {
		r.FillBits(x)
		var lp float64
		for i := 0; i < 6; i++ {
			p := m.Conditional(x, i)
			if x[i] == 1 {
				lp += math.Log(p)
			} else {
				lp += math.Log(1 - p)
			}
		}
		if math.Abs(lp-m.LogProb(x)) > 1e-10 {
			t.Fatalf("RNN chain rule product %v != LogProb %v", lp, m.LogProb(x))
		}
	}
}

func TestNADEConditionalIgnoresFutureBits(t *testing.T) {
	r := rng.New(5)
	m := NewNADE(7, 6, r)
	x := make([]int, 7)
	y := make([]int, 7)
	for trial := 0; trial < 50; trial++ {
		r.FillBits(x)
		copy(y, x)
		i := r.Intn(7)
		for j := i; j < 7; j++ {
			y[j] = r.Bit()
		}
		if m.Conditional(x, i) != m.Conditional(y, i) {
			t.Fatal("NADE conditional depends on future bits")
		}
	}
}

func TestRNNConditionalIgnoresFutureBits(t *testing.T) {
	r := rng.New(6)
	m := NewRNN(7, 6, r)
	x := make([]int, 7)
	y := make([]int, 7)
	for trial := 0; trial < 50; trial++ {
		r.FillBits(x)
		copy(y, x)
		i := r.Intn(7)
		for j := i; j < 7; j++ {
			y[j] = r.Bit()
		}
		if m.Conditional(x, i) != m.Conditional(y, i) {
			t.Fatal("RNN conditional depends on future bits")
		}
	}
}

func gradFiniteDiffCheck(t *testing.T, name string, m Wavefunction, x []int) {
	t.Helper()
	grad := tensor.NewVector(m.NumParams())
	m.GradLogPsi(x, grad)
	const eps = 1e-6
	p := m.Params()
	for i := 0; i < m.NumParams(); i++ {
		orig := p[i]
		p[i] = orig + eps
		fp := m.LogPsi(x)
		p[i] = orig - eps
		fm := m.LogPsi(x)
		p[i] = orig
		fd := (fp - fm) / (2 * eps)
		if math.Abs(fd-grad[i]) > 2e-5 {
			t.Fatalf("%s param %d: analytic %v vs finite-diff %v", name, i, grad[i], fd)
		}
	}
}

func TestNADEGradMatchesFiniteDifference(t *testing.T) {
	m := NewNADE(5, 4, rng.New(7))
	gradFiniteDiffCheck(t, "NADE", m, []int{1, 0, 1, 1, 0})
	gradFiniteDiffCheck(t, "NADE", m, []int{0, 0, 0, 0, 0})
	gradFiniteDiffCheck(t, "NADE", m, []int{1, 1, 1, 1, 1})
}

func TestRNNGradMatchesFiniteDifference(t *testing.T) {
	m := NewRNN(5, 4, rng.New(8))
	gradFiniteDiffCheck(t, "RNN", m, []int{1, 0, 1, 1, 0})
	gradFiniteDiffCheck(t, "RNN", m, []int{0, 1, 0, 0, 1})
}

func TestNADEIncrementalEvaluatorMatchesConditional(t *testing.T) {
	r := rng.New(9)
	m := NewNADE(8, 6, r)
	e := m.NewIncrementalEvaluator()
	x := make([]int, 8)
	r.FillBits(x)
	e.Reset()
	for i := 0; i < 8; i++ {
		if math.Abs(e.Prob(i)-m.Conditional(x, i)) > 1e-12 {
			t.Fatalf("NADE evaluator diverges at bit %d", i)
		}
		e.Fix(i, x[i])
	}
	if e.ForwardPasses() != 1 {
		t.Fatalf("passes = %d, want 1 per completed sample", e.ForwardPasses())
	}
}

func TestRNNIncrementalEvaluatorMatchesConditional(t *testing.T) {
	r := rng.New(10)
	m := NewRNN(8, 6, r)
	e := m.NewIncrementalEvaluator()
	x := make([]int, 8)
	r.FillBits(x)
	e.Reset()
	for i := 0; i < 8; i++ {
		if math.Abs(e.Prob(i)-m.Conditional(x, i)) > 1e-12 {
			t.Fatalf("RNN evaluator diverges at bit %d", i)
		}
		e.Fix(i, x[i])
	}
}

func TestNADEFlipCacheConsistent(t *testing.T) {
	r := rng.New(11)
	m := NewNADE(7, 5, r)
	x := make([]int, 7)
	r.FillBits(x)
	c := m.NewFlipCache(x)
	for trial := 0; trial < 20; trial++ {
		b := r.Intn(7)
		y := append([]int(nil), c.State()...)
		y[b] = 1 - y[b]
		want := m.LogPsi(y) - m.LogPsi(c.State())
		if got := c.Delta(b); math.Abs(got-want) > 1e-10 {
			t.Fatalf("NADE Delta = %v, want %v", got, want)
		}
		c.Flip(b)
	}
	c.Reset(x)
	if math.Abs(c.LogPsi()-m.LogPsi(x)) > 1e-12 {
		t.Fatal("NADE Reset broken")
	}
}

func TestRNNFlipCacheConsistent(t *testing.T) {
	r := rng.New(12)
	m := NewRNN(7, 5, r)
	x := make([]int, 7)
	r.FillBits(x)
	c := m.NewFlipCache(x)
	for trial := 0; trial < 20; trial++ {
		b := r.Intn(7)
		y := append([]int(nil), c.State()...)
		y[b] = 1 - y[b]
		want := m.LogPsi(y) - m.LogPsi(c.State())
		if got := c.Delta(b); math.Abs(got-want) > 1e-10 {
			t.Fatalf("RNN Delta = %v, want %v", got, want)
		}
		c.Flip(b)
	}
}

func TestNADEParamCountMatchesMADE(t *testing.T) {
	// Same width, same budget: d = 2hn + h + n for both.
	nade := NewNADE(10, 8, rng.New(13))
	made := NewMADE(10, 8, rng.New(13))
	if nade.NumParams() != made.NumParams() {
		t.Fatalf("NADE d=%d, MADE d=%d", nade.NumParams(), made.NumParams())
	}
}

func TestRNNParamCount(t *testing.T) {
	m := NewRNN(10, 8, rng.New(14))
	if m.NumParams() != 8*8+4*8+10 {
		t.Fatalf("RNN d=%d, want %d", m.NumParams(), 8*8+4*8+10)
	}
	p := m.Params()
	p[0] = 42
	if m.Wh.At(0, 0) != 42 {
		t.Fatal("Wh does not alias Params")
	}
}

func BenchmarkNADELogProb(b *testing.B) {
	m := NewNADE(100, 107, rng.New(1))
	s := m.NewScratch()
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LogProbScratch(x, s)
	}
}

func BenchmarkRNNLogProb(b *testing.B) {
	m := NewRNN(100, 32, rng.New(1))
	s := m.NewScratch()
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LogProbScratch(x, s)
	}
}

var _ = []autoregressiveModel{(*NADE)(nil), (*RNNWavefunction)(nil)}
