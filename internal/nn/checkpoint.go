package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Checkpointing serializes a wavefunction's architecture header and flat
// parameter vector in a small self-describing little-endian binary format,
// so long optimizations can be stopped and resumed and trained models
// shipped. Format: magic "PVQ1", kind byte (1=MADE, 2=RBM, 3=NADE, 4=RNN),
// n, h, d as uint32, then d float64 parameters.

const checkpointMagic = "PVQ1"

const (
	kindMADE byte = 1
	kindRBM  byte = 2
	kindNADE byte = 3
	kindRNN  byte = 4
)

// SaveWavefunction writes a MADE, RBM, NADE, or RNN checkpoint to w.
func SaveWavefunction(w io.Writer, wf Wavefunction) error {
	bw := bufio.NewWriter(w)
	var kind byte
	var n, h int
	switch m := wf.(type) {
	case *MADE:
		kind, n, h = kindMADE, m.NumSites(), m.Hidden()
	case *RBM:
		kind, n, h = kindRBM, m.NumSites(), m.Hidden()
	case *NADE:
		kind, n, h = kindNADE, m.NumSites(), m.Hidden()
	case *RNNWavefunction:
		kind, n, h = kindRNN, m.NumSites(), m.Hidden()
	default:
		return fmt.Errorf("nn: cannot checkpoint %T", wf)
	}
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	params := wf.Params()
	for _, v := range []uint32{uint32(n), uint32(h), uint32(len(params))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, p := range params {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(p))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWavefunction reads a checkpoint, reconstructing the model with its
// masks and loading the saved parameters. The returned value is a *MADE,
// *RBM, *NADE, or *RNNWavefunction.
func LoadWavefunction(r io.Reader) (Wavefunction, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var n32, h32, d32 uint32
	for _, p := range []*uint32{&n32, &h32, &d32} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	n, h, d := int(n32), int(h32), int(d32)
	if n < 1 || h < 1 || d < 1 {
		return nil, fmt.Errorf("nn: corrupt checkpoint header (n=%d h=%d d=%d)", n, h, d)
	}
	// Validate the header against the architecture's derived parameter
	// count BEFORE constructing the model: the O(n*h) mask and weight
	// allocations must never run on attacker-or-corruption-controlled
	// dimensions that the payload cannot back up. The arithmetic is done in
	// int64 so absurd n/h cannot overflow the check itself.
	want, err := expectedParamCount(kind, n, h)
	if err != nil {
		return nil, err
	}
	if int64(d) != want {
		return nil, fmt.Errorf("nn: checkpoint header says %d params, kind %d with n=%d h=%d needs %d",
			d, kind, n, h, want)
	}
	const maxParams = 1 << 28 // ~2 GiB of float64s; far beyond any real model
	if want > maxParams {
		return nil, fmt.Errorf("nn: checkpoint dims n=%d h=%d imply %d params, over the %d cap",
			n, h, want, int64(maxParams))
	}
	// Construct with an arbitrary seed; every parameter is overwritten by
	// the checkpoint payload (masks are deterministic in (n, h)).
	var wf Wavefunction
	switch kind {
	case kindMADE:
		wf = NewMADE(n, h, rng.New(0))
	case kindRBM:
		wf = NewRBM(n, h, rng.New(0))
	case kindNADE:
		wf = NewNADE(n, h, rng.New(0))
	case kindRNN:
		wf = NewRNN(n, h, rng.New(0))
	}
	params := wf.Params()
	if len(params) != d {
		return nil, fmt.Errorf("nn: checkpoint has %d params, model needs %d", d, len(params))
	}
	buf := make([]byte, 8)
	for i := range params {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	InvalidateParams(wf)
	return wf, nil
}

// expectedParamCount returns the flat parameter count a (kind, n, h)
// architecture derives to, in int64 so huge headers cannot overflow the
// validation arithmetic. It rejects unknown kinds.
func expectedParamCount(kind byte, n, h int) (int64, error) {
	N, H := int64(n), int64(h)
	switch kind {
	case kindMADE:
		// W1 (h x n) + b1 (h) + W2 (n x h) + b2 (n); see NewMADE.
		return 2*H*N + H + N, nil
	case kindRBM:
		// W (h x n) + A (n) + C (h) + scale; see NewRBM.
		return H*N + N + H + 1, nil
	case kindNADE:
		// W (h x n) + c (h) + V (n x h) + b (n); see NewNADE. Same count as
		// MADE at equal width — the kind byte disambiguates.
		return 2*H*N + H + N, nil
	case kindRNN:
		// Wh (h x h) + Wx (h) + Bh (h) + S0 (h) + V (h) + Bout (n); see NewRNN.
		return H*H + 4*H + N, nil
	default:
		return 0, fmt.Errorf("nn: unknown checkpoint kind %d", kind)
	}
}

// SaveFile writes a checkpoint to path atomically: the bytes go to a
// temporary file in the same directory, are fsynced, and replace path with
// a rename. A crash mid-write (or mid-failure-recovery, which leans on
// checkpoints being trustworthy) therefore leaves either the old complete
// file or the new complete file — never a truncated hybrid.
func SaveFile(path string, wf Wavefunction) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := SaveWavefunction(f, wf); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile loads a checkpoint from a file.
func LoadFile(path string) (Wavefunction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWavefunction(f)
}
