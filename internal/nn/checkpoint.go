package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Checkpointing serializes a wavefunction's architecture header and flat
// parameter vector in a small self-describing little-endian binary format,
// so long optimizations can be stopped and resumed and trained models
// shipped. Format: magic "PVQ1", kind byte (1=MADE, 2=RBM), n, h, d as
// uint32, then d float64 parameters.

const checkpointMagic = "PVQ1"

const (
	kindMADE byte = 1
	kindRBM  byte = 2
)

// SaveWavefunction writes a MADE or RBM checkpoint to w.
func SaveWavefunction(w io.Writer, wf Wavefunction) error {
	bw := bufio.NewWriter(w)
	var kind byte
	var n, h int
	switch m := wf.(type) {
	case *MADE:
		kind, n, h = kindMADE, m.NumSites(), m.Hidden()
	case *RBM:
		kind, n, h = kindRBM, m.NumSites(), m.Hidden()
	default:
		return fmt.Errorf("nn: cannot checkpoint %T", wf)
	}
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	params := wf.Params()
	for _, v := range []uint32{uint32(n), uint32(h), uint32(len(params))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, p := range params {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(p))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWavefunction reads a checkpoint, reconstructing the model with its
// masks and loading the saved parameters. The returned value is a *MADE or
// *RBM.
func LoadWavefunction(r io.Reader) (Wavefunction, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var n32, h32, d32 uint32
	for _, p := range []*uint32{&n32, &h32, &d32} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	n, h, d := int(n32), int(h32), int(d32)
	if n < 1 || h < 1 || d < 1 || d > 1<<31 {
		return nil, fmt.Errorf("nn: corrupt checkpoint header (n=%d h=%d d=%d)", n, h, d)
	}
	// Construct with an arbitrary seed; every parameter is overwritten by
	// the checkpoint payload (masks are deterministic in (n, h)).
	var wf Wavefunction
	switch kind {
	case kindMADE:
		wf = NewMADE(n, h, rng.New(0))
	case kindRBM:
		wf = NewRBM(n, h, rng.New(0))
	default:
		return nil, fmt.Errorf("nn: unknown checkpoint kind %d", kind)
	}
	params := wf.Params()
	if len(params) != d {
		return nil, fmt.Errorf("nn: checkpoint has %d params, model needs %d", d, len(params))
	}
	buf := make([]byte, 8)
	for i := range params {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	InvalidateParams(wf)
	return wf, nil
}

// SaveFile and LoadFile are path-based conveniences.
func SaveFile(path string, wf Wavefunction) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveWavefunction(f, wf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile loads a checkpoint from a file.
func LoadFile(path string) (Wavefunction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWavefunction(f)
}
