package nn

import (
	"math"
	"sync"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// RNNWavefunction is a recurrent neural wavefunction in the spirit of
// Hibat-Allah et al. (2020), the other autoregressive family the paper's
// related-work section discusses. A vanilla tanh RNN consumes sites in
// order; the hidden state after seeing x_<i parameterizes the conditional
// for site i:
//
//	s_0 = s0;  s_{i} = tanh(Wh s_{i-1} + wx * x_{i-1} + bh)  (i >= 1)
//	p_i = sigma(v . s_i + b_i)
//
// Like MADE and NADE it is normalized and exactly sampleable, with O(h^2)
// work per site. Parameters: Wh (h x h), Wx (h), Bh (h), S0 (h), V (h),
// Bout (n); d = h^2 + 4h + n.
//
// The RNN needs no transposed parameter caches for its batched path: the
// batched kernels contract against Wh directly (tensor.MatMulT computes
// rows of S . Wh^T with the exact MulVec dot chains) and view V as a 1 x h
// matrix aliasing theta, so InvalidateParams has nothing to rebuild here.
type RNNWavefunction struct {
	n, h  int
	theta tensor.Vector
	Wh    *tensor.Matrix // h x h recurrence
	Wx    tensor.Vector  // h, input weight (bit is scalar)
	Bh    tensor.Vector  // h, recurrence bias
	S0    tensor.Vector  // h, learned initial state
	V     tensor.Vector  // h, output projection (shared across sites)
	Bout  tensor.Vector  // n, per-site output bias
	// pool recycles evaluation scratch for the convenience entry points
	// (LogProb, Conditional, GradLogPsi); see the NADE pool for rationale.
	pool sync.Pool
}

// RNNScratch holds per-worker buffers.
type RNNScratch struct {
	S    tensor.Vector  // current hidden state (h)
	Pre  tensor.Vector  // pre-activation workspace (h)
	Ss   *tensor.Matrix // (n+1) x h recorded states for backprop
	dS   tensor.Vector
	dPre tensor.Vector
	buf  []int
}

// NewRNN builds an RNN wavefunction with n sites and hidden width h.
func NewRNN(n, h int, r *rng.Rand) *RNNWavefunction {
	if n < 1 || h < 1 {
		panic("nn: RNN requires n >= 1 and h >= 1")
	}
	d := h*h + 4*h + n
	theta := tensor.NewVector(d)
	m := &RNNWavefunction{n: n, h: h, theta: theta}
	off := 0
	m.Wh = &tensor.Matrix{Rows: h, Cols: h, Data: theta[off : off+h*h]}
	off += h * h
	m.Wx = theta[off : off+h]
	off += h
	m.Bh = theta[off : off+h]
	off += h
	m.S0 = theta[off : off+h]
	off += h
	m.V = theta[off : off+h]
	off += h
	m.Bout = theta[off : off+n]
	uniformInit(m.Wh.Data, h, r)
	uniformInit(m.Wx, h, r)
	uniformInit(m.Bh, h, r)
	uniformInit(m.S0, h, r)
	uniformInit(m.V, h, r)
	// Bout biases the n-wide output layer; its fan-in is n, not h. (Draw
	// count and order are unchanged, so other models' init streams are
	// unaffected.)
	uniformInit(m.Bout, n, r)
	return m
}

// NewScratch allocates evaluation buffers.
func (m *RNNWavefunction) NewScratch() *RNNScratch {
	return &RNNScratch{
		S:    tensor.NewVector(m.h),
		Pre:  tensor.NewVector(m.h),
		Ss:   tensor.NewMatrix(m.n+1, m.h),
		dS:   tensor.NewVector(m.h),
		dPre: tensor.NewVector(m.h),
		buf:  make([]int, m.n),
	}
}

// getScratch borrows a scratch from the model's pool (concurrency-safe;
// allocation-free in steady state). Pair with putScratch.
func (m *RNNWavefunction) getScratch() *RNNScratch {
	if s, ok := m.pool.Get().(*RNNScratch); ok {
		return s
	}
	return m.NewScratch()
}

func (m *RNNWavefunction) putScratch(s *RNNScratch) { m.pool.Put(s) }

// NumSites implements Wavefunction.
func (m *RNNWavefunction) NumSites() int { return m.n }

// Hidden returns h.
func (m *RNNWavefunction) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *RNNWavefunction) NumParams() int { return len(m.theta) }

// Params implements Wavefunction.
func (m *RNNWavefunction) Params() tensor.Vector { return m.theta }

// stepState advances s through one recurrence consuming bit: the Wh matvec
// into pre followed by stepActivate.
func (m *RNNWavefunction) stepState(s, pre tensor.Vector, bit int) {
	m.Wh.MulVec(pre, s)
	m.stepActivate(s, pre, bit)
}

// stepActivate finishes a recurrence step given pre already holding Wh s:
// pre[k] += Wx[k] x + Bh[k]; s[k] = tanh(pre[k]). It is shared verbatim
// between the scalar path (stepState) and the batched path (which fills the
// batch's pre rows via one tensor.MatMulT against Wh and then activates each
// row through this function), so the two produce bitwise-identical states.
func (m *RNNWavefunction) stepActivate(s, pre tensor.Vector, bit int) {
	xb := float64(bit)
	for k := 0; k < m.h; k++ {
		pre[k] += m.Wx[k]*xb + m.Bh[k]
		s[k] = math.Tanh(pre[k])
	}
}

// outputZ is the conditional pre-activation for site i.
func (m *RNNWavefunction) outputZ(s tensor.Vector, i int) float64 {
	return m.V.Dot(s) + m.Bout[i]
}

// LogProbScratch evaluates log pi(x) in O(n h^2).
func (m *RNNWavefunction) LogProbScratch(x []int, s *RNNScratch) float64 {
	copy(s.S, m.S0)
	var lp float64
	for i, b := range x {
		lp += condTerm(m.outputZ(s.S, i), b)
		if i < m.n-1 {
			m.stepState(s.S, s.Pre, b)
		}
	}
	return lp
}

// LogProb implements Normalized. It borrows pooled scratch, so repeated
// calls do not allocate; hot paths with a per-worker scratch should still
// prefer LogProbScratch.
func (m *RNNWavefunction) LogProb(x []int) float64 {
	s := m.getScratch()
	lp := m.LogProbScratch(x, s)
	m.putScratch(s)
	return lp
}

// LogPsi implements Wavefunction.
func (m *RNNWavefunction) LogPsi(x []int) float64 { return 0.5 * m.LogProb(x) }

// LogPsiScratch is the buffer-reusing variant.
func (m *RNNWavefunction) LogPsiScratch(x []int, s *RNNScratch) float64 {
	return 0.5 * m.LogProbScratch(x, s)
}

// Conditional implements Autoregressive. It borrows pooled scratch; hot
// paths should use ConditionalScratch.
func (m *RNNWavefunction) Conditional(x []int, i int) float64 {
	s := m.getScratch()
	p := m.ConditionalScratch(x, i, s)
	m.putScratch(s)
	return p
}

// ConditionalScratch is the buffer-reusing variant of Conditional.
func (m *RNNWavefunction) ConditionalScratch(x []int, i int, s *RNNScratch) float64 {
	copy(s.S, m.S0)
	for j := 0; j < i; j++ {
		m.stepState(s.S, s.Pre, x[j])
	}
	return 1 / (1 + math.Exp(-m.outputZ(s.S, i)))
}

// GradLogPsiScratch runs backpropagation through time.
func (m *RNNWavefunction) GradLogPsiScratch(x []int, grad tensor.Vector, s *RNNScratch) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	h, n := m.h, m.n
	for i := range grad {
		grad[i] = 0
	}
	gWh := grad[0 : h*h]
	gWx := grad[h*h : h*h+h]
	gBh := grad[h*h+h : h*h+2*h]
	gS0 := grad[h*h+2*h : h*h+3*h]
	gV := grad[h*h+3*h : h*h+4*h]
	gBout := grad[h*h+4*h:]

	// Forward, recording s_i (the state used for site i's conditional).
	copy(s.S, m.S0)
	copy(s.Ss.Row(0), s.S)
	for i := 0; i < n-1; i++ {
		m.stepState(s.S, s.Pre, x[i])
		copy(s.Ss.Row(i+1), s.S)
	}

	// Backward through time.
	for k := range s.dS {
		s.dS[k] = 0
	}
	for i := n - 1; i >= 0; i-- {
		si := tensor.Vector(s.Ss.Row(i))
		z := m.V.Dot(si) + m.Bout[i]
		dz := float64(x[i]) - 1/(1+math.Exp(-z))
		gBout[i] += dz
		for k := 0; k < h; k++ {
			gV[k] += dz * si[k]
			s.dS[k] += dz * m.V[k]
		}
		if i == 0 {
			break
		}
		// Push dS back through s_i = tanh(Wh s_{i-1} + Wx x_{i-1} + Bh).
		prev := tensor.Vector(s.Ss.Row(i - 1))
		xb := float64(x[i-1])
		for k := 0; k < h; k++ {
			s.dPre[k] = s.dS[k] * (1 - si[k]*si[k])
		}
		for k := 0; k < h; k++ {
			dp := s.dPre[k]
			if dp == 0 {
				continue
			}
			gBh[k] += dp
			gWx[k] += dp * xb
			row := gWh[k*h : (k+1)*h]
			for j := 0; j < h; j++ {
				row[j] += dp * prev[j]
			}
		}
		// dS for the previous state.
		for j := 0; j < h; j++ {
			var acc float64
			for k := 0; k < h; k++ {
				acc += s.dPre[k] * m.Wh.At(k, j)
			}
			s.dS[j] = acc
		}
	}
	copy(gS0, s.dS)
	grad.Scale(0.5)
}

// GradLogPsi implements Wavefunction. It borrows pooled scratch; hot paths
// use NewGradEvaluator's per-worker instances instead.
func (m *RNNWavefunction) GradLogPsi(x []int, grad tensor.Vector) {
	s := m.getScratch()
	m.GradLogPsiScratch(x, grad, s)
	m.putScratch(s)
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *RNNWavefunction) NewGradEvaluator() GradEvaluator {
	return &rnnGradEvaluator{m: m, s: m.NewScratch()}
}

type rnnGradEvaluator struct {
	m *RNNWavefunction
	s *RNNScratch
}

func (e *rnnGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *rnnGradEvaluator) LogPsi(x []int) float64 { return e.m.LogPsiScratch(x, e.s) }

// NewFlipCache implements CacheBuilder with a tail-only TailFlipCache: the
// recurrence consumes sites in ascending order, so a flip of bit b leaves
// s_i for i <= b — and therefore site b's conditional pre-activation —
// bitwise untouched. The cache records per-site hidden-state snapshots,
// pre-activations, and log-probability prefix sums; FlipLogPsi restarts the
// recurrence from the recorded s_b with the flipped bit and folds the tail
// in O((n-b) h^2) instead of the O(n h^2) full recompute, bitwise identical
// to a fresh LogPsi of the flipped configuration.
func (m *RNNWavefunction) NewFlipCache(x []int) FlipCache {
	c := &rnnFlipCache{
		m: m, s: m.NewScratch(), x: make([]int, m.n),
		z: tensor.NewVector(m.n), p: tensor.NewVector(m.n + 1),
	}
	copy(c.x, x)
	c.rebase(0)
	return c
}

// rnnFlipCache is the RNN's tail-only TailFlipCache; see
// RNNWavefunction.NewFlipCache. s.Ss row i holds s_i (the state site i's
// conditional reads), z[i] the site's pre-activation, and p[i] the
// log-probability fold over sites < i (p[n] is the total; p[0] stays 0).
type rnnFlipCache struct {
	m      *RNNWavefunction
	s      *RNNScratch
	x      []int
	z, p   tensor.Vector
	logPsi float64
}

// rebase recomputes the recorded base trajectory from site `from` onward,
// reusing the prefix records; the resumed recurrence performs exactly the
// operations a from-scratch rebuild would.
func (c *rnnFlipCache) rebase(from int) {
	m, s := c.m, c.s
	copy(s.S, s.Ss.Row(from))
	if from == 0 {
		copy(s.S, m.S0)
	}
	for i := from; i < m.n; i++ {
		copy(s.Ss.Row(i), s.S)
		c.z[i] = m.outputZ(s.S, i)
		c.p[i+1] = c.p[i] + condTerm(c.z[i], c.x[i])
		if i < m.n-1 {
			m.stepState(s.S, s.Pre, c.x[i])
		}
	}
	c.logPsi = 0.5 * c.p[m.n]
}

func (c *rnnFlipCache) LogPsi() float64 { return c.logPsi }

// FlipLogPsi implements TailFlipCache: re-branch site bit on the unchanged
// base pre-activation, restart the recurrence from the recorded s_bit
// snapshot consuming the flipped bit, and fold the tail onto the recorded
// prefix sum — bitwise a fresh LogPsi of the flipped configuration.
func (c *rnnFlipCache) FlipLogPsi(bit int) float64 {
	m, s := c.m, c.s
	nb := 1 - c.x[bit]
	lp := c.p[bit] + condTerm(c.z[bit], nb)
	if bit < m.n-1 {
		copy(s.S, s.Ss.Row(bit))
		m.stepState(s.S, s.Pre, nb)
		for j := bit + 1; j < m.n; j++ {
			lp += condTerm(m.outputZ(s.S, j), c.x[j])
			if j < m.n-1 {
				m.stepState(s.S, s.Pre, c.x[j])
			}
		}
	}
	return 0.5 * lp
}

func (c *rnnFlipCache) Delta(bit int) float64 { return c.FlipLogPsi(bit) - c.logPsi }

func (c *rnnFlipCache) Flip(bit int) {
	c.x[bit] = 1 - c.x[bit]
	c.rebase(bit)
}

func (c *rnnFlipCache) State() []int { return c.x }

func (c *rnnFlipCache) Reset(x []int) {
	copy(c.x, x)
	c.rebase(0)
}

// NewIncrementalEvaluator returns the natural sequential RNN evaluator
// (one recurrence step per bit).
func (m *RNNWavefunction) NewIncrementalEvaluator() ConditionalEvaluator {
	e := &rnnEvaluator{m: m, s: m.NewScratch()}
	e.Reset()
	return e
}

type rnnEvaluator struct {
	m      *RNNWavefunction
	s      *RNNScratch
	fixed  int
	passes int64
}

func (e *rnnEvaluator) Reset() {
	copy(e.s.S, e.m.S0)
	e.fixed = 0
}

func (e *rnnEvaluator) Prob(i int) float64 {
	return 1 / (1 + math.Exp(-e.m.outputZ(e.s.S, i)))
}

func (e *rnnEvaluator) Fix(i, bit int) {
	if i < e.m.n-1 {
		e.m.stepState(e.s.S, e.s.Pre, bit)
	}
	if e.fixed++; e.fixed == e.m.n {
		e.passes++
	}
}

func (e *rnnEvaluator) ForwardPasses() int64 { return e.passes }

var (
	_ Autoregressive       = (*RNNWavefunction)(nil)
	_ CacheBuilder         = (*RNNWavefunction)(nil)
	_ GradEvaluatorBuilder = (*RNNWavefunction)(nil)
	_ TailFlipCache        = (*rnnFlipCache)(nil)
)
