package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// RNNWavefunction is a recurrent neural wavefunction in the spirit of
// Hibat-Allah et al. (2020), the other autoregressive family the paper's
// related-work section discusses. A vanilla tanh RNN consumes sites in
// order; the hidden state after seeing x_<i parameterizes the conditional
// for site i:
//
//	s_0 = s0;  s_{i} = tanh(Wh s_{i-1} + wx * x_{i-1} + bh)  (i >= 1)
//	p_i = sigma(v . s_i + b_i)
//
// Like MADE and NADE it is normalized and exactly sampleable, with O(h^2)
// work per site. Parameters: Wh (h x h), Wx (h), Bh (h), S0 (h), V (h),
// Bout (n); d = h^2 + 4h + n.
type RNNWavefunction struct {
	n, h  int
	theta tensor.Vector
	Wh    *tensor.Matrix // h x h recurrence
	Wx    tensor.Vector  // h, input weight (bit is scalar)
	Bh    tensor.Vector  // h, recurrence bias
	S0    tensor.Vector  // h, learned initial state
	V     tensor.Vector  // h, output projection (shared across sites)
	Bout  tensor.Vector  // n, per-site output bias
}

// RNNScratch holds per-worker buffers.
type RNNScratch struct {
	S    tensor.Vector  // current hidden state (h)
	Pre  tensor.Vector  // pre-activation workspace (h)
	Ss   *tensor.Matrix // (n+1) x h recorded states for backprop
	dS   tensor.Vector
	dPre tensor.Vector
	buf  []int
}

// NewRNN builds an RNN wavefunction with n sites and hidden width h.
func NewRNN(n, h int, r *rng.Rand) *RNNWavefunction {
	if n < 1 || h < 1 {
		panic("nn: RNN requires n >= 1 and h >= 1")
	}
	d := h*h + 4*h + n
	theta := tensor.NewVector(d)
	m := &RNNWavefunction{n: n, h: h, theta: theta}
	off := 0
	m.Wh = &tensor.Matrix{Rows: h, Cols: h, Data: theta[off : off+h*h]}
	off += h * h
	m.Wx = theta[off : off+h]
	off += h
	m.Bh = theta[off : off+h]
	off += h
	m.S0 = theta[off : off+h]
	off += h
	m.V = theta[off : off+h]
	off += h
	m.Bout = theta[off : off+n]
	uniformInit(m.Wh.Data, h, r)
	uniformInit(m.Wx, h, r)
	uniformInit(m.Bh, h, r)
	uniformInit(m.S0, h, r)
	uniformInit(m.V, h, r)
	uniformInit(m.Bout, h, r)
	return m
}

// NewScratch allocates evaluation buffers.
func (m *RNNWavefunction) NewScratch() *RNNScratch {
	return &RNNScratch{
		S:    tensor.NewVector(m.h),
		Pre:  tensor.NewVector(m.h),
		Ss:   tensor.NewMatrix(m.n+1, m.h),
		dS:   tensor.NewVector(m.h),
		dPre: tensor.NewVector(m.h),
		buf:  make([]int, m.n),
	}
}

// NumSites implements Wavefunction.
func (m *RNNWavefunction) NumSites() int { return m.n }

// Hidden returns h.
func (m *RNNWavefunction) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *RNNWavefunction) NumParams() int { return len(m.theta) }

// Params implements Wavefunction.
func (m *RNNWavefunction) Params() tensor.Vector { return m.theta }

// stepState advances s through one recurrence consuming bit.
func (m *RNNWavefunction) stepState(s, pre tensor.Vector, bit int) {
	m.Wh.MulVec(pre, s)
	xb := float64(bit)
	for k := 0; k < m.h; k++ {
		pre[k] += m.Wx[k]*xb + m.Bh[k]
		s[k] = math.Tanh(pre[k])
	}
}

// outputZ is the conditional pre-activation for site i.
func (m *RNNWavefunction) outputZ(s tensor.Vector, i int) float64 {
	return m.V.Dot(s) + m.Bout[i]
}

// LogProbScratch evaluates log pi(x) in O(n h^2).
func (m *RNNWavefunction) LogProbScratch(x []int, s *RNNScratch) float64 {
	copy(s.S, m.S0)
	var lp float64
	for i, b := range x {
		z := m.outputZ(s.S, i)
		if b == 1 {
			lp += logSigmoid(z)
		} else {
			lp += logSigmoid(-z)
		}
		if i < m.n-1 {
			m.stepState(s.S, s.Pre, b)
		}
	}
	return lp
}

// LogProb implements Normalized.
func (m *RNNWavefunction) LogProb(x []int) float64 {
	return m.LogProbScratch(x, m.NewScratch())
}

// LogPsi implements Wavefunction.
func (m *RNNWavefunction) LogPsi(x []int) float64 { return 0.5 * m.LogProb(x) }

// LogPsiScratch is the buffer-reusing variant.
func (m *RNNWavefunction) LogPsiScratch(x []int, s *RNNScratch) float64 {
	return 0.5 * m.LogProbScratch(x, s)
}

// Conditional implements Autoregressive.
func (m *RNNWavefunction) Conditional(x []int, i int) float64 {
	s := m.NewScratch()
	copy(s.S, m.S0)
	for j := 0; j < i; j++ {
		m.stepState(s.S, s.Pre, x[j])
	}
	return 1 / (1 + math.Exp(-m.outputZ(s.S, i)))
}

// GradLogPsiScratch runs backpropagation through time.
func (m *RNNWavefunction) GradLogPsiScratch(x []int, grad tensor.Vector, s *RNNScratch) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	h, n := m.h, m.n
	for i := range grad {
		grad[i] = 0
	}
	gWh := grad[0 : h*h]
	gWx := grad[h*h : h*h+h]
	gBh := grad[h*h+h : h*h+2*h]
	gS0 := grad[h*h+2*h : h*h+3*h]
	gV := grad[h*h+3*h : h*h+4*h]
	gBout := grad[h*h+4*h:]

	// Forward, recording s_i (the state used for site i's conditional).
	copy(s.S, m.S0)
	copy(s.Ss.Row(0), s.S)
	for i := 0; i < n-1; i++ {
		m.stepState(s.S, s.Pre, x[i])
		copy(s.Ss.Row(i+1), s.S)
	}

	// Backward through time.
	for k := range s.dS {
		s.dS[k] = 0
	}
	for i := n - 1; i >= 0; i-- {
		si := tensor.Vector(s.Ss.Row(i))
		z := m.V.Dot(si) + m.Bout[i]
		dz := float64(x[i]) - 1/(1+math.Exp(-z))
		gBout[i] += dz
		for k := 0; k < h; k++ {
			gV[k] += dz * si[k]
			s.dS[k] += dz * m.V[k]
		}
		if i == 0 {
			break
		}
		// Push dS back through s_i = tanh(Wh s_{i-1} + Wx x_{i-1} + Bh).
		prev := tensor.Vector(s.Ss.Row(i - 1))
		xb := float64(x[i-1])
		for k := 0; k < h; k++ {
			s.dPre[k] = s.dS[k] * (1 - si[k]*si[k])
		}
		for k := 0; k < h; k++ {
			dp := s.dPre[k]
			if dp == 0 {
				continue
			}
			gBh[k] += dp
			gWx[k] += dp * xb
			row := gWh[k*h : (k+1)*h]
			for j := 0; j < h; j++ {
				row[j] += dp * prev[j]
			}
		}
		// dS for the previous state.
		for j := 0; j < h; j++ {
			var acc float64
			for k := 0; k < h; k++ {
				acc += s.dPre[k] * m.Wh.At(k, j)
			}
			s.dS[j] = acc
		}
	}
	copy(gS0, s.dS)
	grad.Scale(0.5)
}

// GradLogPsi implements Wavefunction.
func (m *RNNWavefunction) GradLogPsi(x []int, grad tensor.Vector) {
	m.GradLogPsiScratch(x, grad, m.NewScratch())
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *RNNWavefunction) NewGradEvaluator() GradEvaluator {
	return &rnnGradEvaluator{m: m, s: m.NewScratch()}
}

type rnnGradEvaluator struct {
	m *RNNWavefunction
	s *RNNScratch
}

func (e *rnnGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *rnnGradEvaluator) LogPsi(x []int) float64 { return e.m.LogPsiScratch(x, e.s) }

// NewFlipCache implements CacheBuilder (recompute; O(nh^2) per Delta).
func (m *RNNWavefunction) NewFlipCache(x []int) FlipCache {
	c := &rnnFlipCache{m: m, s: m.NewScratch(), x: make([]int, m.n)}
	copy(c.x, x)
	c.logPsi = m.LogPsiScratch(c.x, c.s)
	return c
}

type rnnFlipCache struct {
	m      *RNNWavefunction
	s      *RNNScratch
	x      []int
	logPsi float64
}

func (c *rnnFlipCache) LogPsi() float64 { return c.logPsi }

func (c *rnnFlipCache) Delta(bit int) float64 {
	copy(c.s.buf, c.x)
	c.s.buf[bit] = 1 - c.s.buf[bit]
	return c.m.LogPsiScratch(c.s.buf, c.s) - c.logPsi
}

func (c *rnnFlipCache) Flip(bit int) {
	c.x[bit] = 1 - c.x[bit]
	c.logPsi = c.m.LogPsiScratch(c.x, c.s)
}

func (c *rnnFlipCache) State() []int { return c.x }

func (c *rnnFlipCache) Reset(x []int) {
	copy(c.x, x)
	c.logPsi = c.m.LogPsiScratch(c.x, c.s)
}

// NewIncrementalEvaluator returns the natural sequential RNN evaluator
// (one recurrence step per bit).
func (m *RNNWavefunction) NewIncrementalEvaluator() ConditionalEvaluator {
	e := &rnnEvaluator{m: m, s: m.NewScratch()}
	e.Reset()
	return e
}

type rnnEvaluator struct {
	m      *RNNWavefunction
	s      *RNNScratch
	fixed  int
	passes int64
}

func (e *rnnEvaluator) Reset() {
	copy(e.s.S, e.m.S0)
	e.fixed = 0
}

func (e *rnnEvaluator) Prob(i int) float64 {
	return 1 / (1 + math.Exp(-e.m.outputZ(e.s.S, i)))
}

func (e *rnnEvaluator) Fix(i, bit int) {
	if i < e.m.n-1 {
		e.m.stepState(e.s.S, e.s.Pre, bit)
	}
	if e.fixed++; e.fixed == e.m.n {
		e.passes++
	}
}

func (e *rnnEvaluator) ForwardPasses() int64 { return e.passes }

var (
	_ Autoregressive       = (*RNNWavefunction)(nil)
	_ CacheBuilder         = (*RNNWavefunction)(nil)
	_ GradEvaluatorBuilder = (*RNNWavefunction)(nil)
)
