package nn

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// TestMADENormalizationProperty: for random shapes and random parameters
// the autoregressive construction must stay exactly normalized.
func TestMADENormalizationProperty(t *testing.T) {
	f := func(nRaw, hRaw uint8, seed uint64) bool {
		n := 1 + int(nRaw)%8
		h := 1 + int(hRaw)%12
		m := NewMADE(n, h, rng.New(seed))
		r := rng.New(seed ^ 0xdead)
		for i := range m.Params() {
			m.Params()[i] += r.Uniform(-1.5, 1.5)
		}
		var total float64
		x := make([]int, n)
		for ix := 0; ix < 1<<uint(n); ix++ {
			hamiltonian.IndexToBits(ix, x)
			total += math.Exp(m.LogProb(x))
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRBMFlipDeltaProperty: the O(h) cached flip delta must equal the
// recomputed log-psi difference for random models, states and bits.
func TestRBMFlipDeltaProperty(t *testing.T) {
	f := func(nRaw, hRaw, bitRaw uint8, seed uint64) bool {
		n := 1 + int(nRaw)%10
		h := 1 + int(hRaw)%10
		bit := int(bitRaw) % n
		m := NewRBM(n, h, rng.New(seed))
		x := make([]int, n)
		rng.New(seed ^ 0xbeef).FillBits(x)
		c := m.NewFlipCache(x)
		y := append([]int(nil), x...)
		y[bit] = 1 - y[bit]
		want := m.LogPsi(y) - m.LogPsi(x)
		return math.Abs(c.Delta(bit)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointRoundTripProperty: save/load must be the identity on
// parameters for random shapes.
func TestCheckpointRoundTripProperty(t *testing.T) {
	f := func(nRaw, hRaw uint8, seed uint64, rbm bool) bool {
		n := 1 + int(nRaw)%12
		h := 1 + int(hRaw)%12
		var wf Wavefunction
		if rbm {
			wf = NewRBM(n, h, rng.New(seed))
		} else {
			wf = NewMADE(n, h, rng.New(seed))
		}
		var buf writerBuffer
		if err := SaveWavefunction(&buf, wf); err != nil {
			return false
		}
		loaded, err := LoadWavefunction(&buf)
		if err != nil {
			return false
		}
		a, b := wf.Params(), loaded.Params()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// writerBuffer is a minimal in-memory io.ReadWriter.
type writerBuffer struct {
	data []byte
	pos  int
}

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.pos >= len(w.data) {
		return 0, errEOF
	}
	n := copy(p, w.data[w.pos:])
	w.pos += n
	return n, nil
}

var errEOF = errString("EOF")

type errString string

func (e errString) Error() string { return string(e) }
