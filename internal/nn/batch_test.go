package nn

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// batchCases are the (B, workers, n) grids the batched-vs-scalar
// bit-identity properties run over (the ISSUE's acceptance matrix).
var (
	batchSizes   = []int{1, 3, 64}
	workerCounts = []int{1, 2, 5}
	siteCounts   = []int{1, 2, 7, 19}
)

func randomConfigs(bs, n int, r *rng.Rand) ConfigBatch {
	b := ConfigBatch{N: bs, Sites: n, Bits: make([]int, bs*n)}
	r.FillBits(b.Bits)
	return b
}

// TestLogPsiBatchBitIdentical: LogPsiBatch must equal per-row LogPsi with
// exact ==, for every batch size, worker count and site count.
func TestLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 6+n, rng.New(uint64(100+n)))
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(7*bs+n)))
				out := make([]float64, bs)
				e.LogPsiBatch(b, out)
				s := m.NewScratch()
				for k := 0; k < bs; k++ {
					want := m.LogPsiScratch(b.Row(k), s)
					if out[k] != want {
						t.Fatalf("n=%d w=%d B=%d row %d: batched %v != scalar %v",
							n, workers, bs, k, out[k], want)
					}
				}
			}
		}
	}
}

// TestGradLogPsiBatchBitIdentical: every ows row must equal the scalar
// GradLogPsi of that configuration with exact ==.
func TestGradLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 5+n/2, rng.New(uint64(200+n)))
		d := m.NumParams()
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(13*bs+n)))
				ows := tensor.NewBatch(bs, d)
				e.GradLogPsiBatch(b, ows)
				s := m.NewScratch()
				want := tensor.NewVector(d)
				for k := 0; k < bs; k++ {
					m.GradLogPsiScratch(b.Row(k), want, s)
					row := ows.Sample(k)
					for i := range want {
						if row[i] != want[i] {
							t.Fatalf("n=%d w=%d B=%d row %d param %d: batched %v != scalar %v",
								n, workers, bs, k, i, row[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestFlipLogPsiBatchBitIdentical: base values must match the flip cache's
// base LogPsi (and, under the fresh-forward convention, a fresh LogPsi) and
// delta values must match FlipCache.Delta, exactly — the property
// core.LocalEnergies' batched dispatch relies on.
func TestFlipLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 4+n, rng.New(uint64(300+n)))
		// All single-bit flips, the TIM local-energy pattern.
		flips := make([]int, n)
		for i := range flips {
			flips[i] = i
		}
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(17*bs+n)))
				base := make([]float64, bs)
				delta := make([]float64, bs*n)
				e.FlipLogPsiBatch(b, flips, base, delta)
				cache := m.NewFlipCache(b.Row(0))
				s := m.NewScratch()
				for k := 0; k < bs; k++ {
					if k > 0 {
						cache.Reset(b.Row(k))
					}
					if base[k] != cache.LogPsi() {
						t.Fatalf("n=%d w=%d B=%d row %d: batched base %v != cache %v",
							n, workers, bs, k, base[k], cache.LogPsi())
					}
					if want := m.LogPsiScratch(b.Row(k), s); base[k] != want {
						t.Fatalf("n=%d w=%d B=%d row %d: batched base %v != fresh LogPsi %v",
							n, workers, bs, k, base[k], want)
					}
					for f, bit := range flips {
						if want := cache.Delta(bit); delta[k*n+f] != want {
							t.Fatalf("n=%d w=%d B=%d row %d flip %d: batched delta %v != cache %v",
								n, workers, bs, k, bit, delta[k*n+f], want)
						}
					}
				}
			}
		}
	}
}

// TestFlipLogPsiBatchMatchesFullRecompute: the tail-only super-batch and
// the full-recompute reference evaluator must agree byte for byte on every
// base and delta — the differential proof that skipping output sites j < b
// is invisible in the values.
func TestFlipLogPsiBatchMatchesFullRecompute(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 4+n, rng.New(uint64(350+n)))
		flips := make([]int, n)
		for i := range flips {
			flips[i] = i
		}
		tail := m.NewBatchEvaluator(2)
		full := m.NewFullFlipBatchEvaluator(3)
		for _, bs := range batchSizes {
			b := randomConfigs(bs, n, rng.New(uint64(23*bs+n)))
			baseT := make([]float64, bs)
			baseF := make([]float64, bs)
			deltaT := make([]float64, bs*n)
			deltaF := make([]float64, bs*n)
			tail.FlipLogPsiBatch(b, flips, baseT, deltaT)
			full.FlipLogPsiBatch(b, flips, baseF, deltaF)
			for k := range baseT {
				if baseT[k] != baseF[k] {
					t.Fatalf("n=%d B=%d row %d: tail base %v != full base %v", n, bs, k, baseT[k], baseF[k])
				}
			}
			for i := range deltaT {
				if deltaT[i] != deltaF[i] {
					t.Fatalf("n=%d B=%d delta %d: tail %v != full %v", n, bs, i, deltaT[i], deltaF[i])
				}
			}
		}
	}
}

// TestFlipLogPsiBatchRandomSites pins the tail-only flip path against
// fresh LogPsi for RANDOM flip-site subsets (not just the all-bits TIM
// pattern) across the full B x n acceptance grid: for every row and flip,
// base + delta must reproduce exactly the values the scalar tail-only
// cache derives from a fresh forward of the flipped configuration.
func TestFlipLogPsiBatchRandomSites(t *testing.T) {
	r := rng.New(41)
	for _, n := range siteCounts {
		m := NewMADE(n, 6+n, r.Split())
		e := m.NewBatchEvaluator(3)
		s := m.NewScratch()
		y := make([]int, n)
		for _, bs := range batchSizes {
			nf := 1 + r.Intn(n)
			flips := make([]int, nf)
			for f := range flips {
				flips[f] = r.Intn(n)
			}
			b := randomConfigs(bs, n, r.Split())
			base := make([]float64, bs)
			delta := make([]float64, bs*nf)
			e.FlipLogPsiBatch(b, flips, base, delta)
			for k := 0; k < bs; k++ {
				baseWant := m.LogPsiScratch(b.Row(k), s)
				if base[k] != baseWant {
					t.Fatalf("n=%d B=%d row %d: base %v != fresh %v", n, bs, k, base[k], baseWant)
				}
				for f, bit := range flips {
					copy(y, b.Row(k))
					y[bit] = 1 - y[bit]
					want := m.LogPsiScratch(y, s) - baseWant
					if delta[k*nf+f] != want {
						t.Fatalf("n=%d B=%d row %d flip site %d: delta %v != fresh %v",
							n, bs, k, bit, delta[k*nf+f], want)
					}
				}
			}
		}
	}
}

// TestBatchAncestralBitIdentical: fed the same uniforms, the batched
// site-major sampler must produce exactly the bits of the scalar
// incremental evaluator walked sample-major.
func TestBatchAncestralBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 6+n, rng.New(uint64(400+n)))
		bsmp := m.NewBatchAncestralSampler()
		for _, bs := range batchSizes {
			u := make([]float64, bs*n)
			rng.New(uint64(19*bs+n)).FillUniform(u, 0, 1)
			// Scalar reference: incremental evaluator, one sample at a time.
			want := make([]int, bs*n)
			ev := m.NewIncrementalEvaluator()
			for k := 0; k < bs; k++ {
				ev.Reset()
				for i := 0; i < n; i++ {
					bit := 0
					if u[k*n+i] < ev.Prob(i) {
						bit = 1
					}
					want[k*n+i] = bit
					ev.Fix(i, bit)
				}
			}
			for _, workers := range workerCounts {
				b := ConfigBatch{N: bs, Sites: n, Bits: make([]int, bs*n)}
				bsmp.Sample(b, u, workers)
				for i := range want {
					if b.Bits[i] != want[i] {
						t.Fatalf("n=%d B=%d w=%d: bit %d = %d, scalar %d",
							n, bs, workers, i, b.Bits[i], want[i])
					}
				}
			}
		}
	}
}

// TestMaskedWeightCacheInvalidation: the W.M cache must be rebuilt after
// InvalidateParams and must poison results if it is NOT invalidated — the
// teeth that prove the version counter is load-bearing.
func TestMaskedWeightCacheInvalidation(t *testing.T) {
	n := 6
	m := NewMADE(n, 8, rng.New(5))
	e := m.NewBatchEvaluator(2)
	b := randomConfigs(4, n, rng.New(6))
	out := make([]float64, 4)
	e.LogPsiBatch(b, out) // builds the cache

	// Mutate a weight that is inside the mask support and invalidate: the
	// batched value must track the scalar one.
	m.Params()[0] += 0.125
	InvalidateParams(m)
	e.LogPsiBatch(b, out)
	for k := 0; k < 4; k++ {
		if want := m.LogPsi(b.Row(k)); out[k] != want {
			t.Fatalf("after invalidation row %d: batched %v != scalar %v", k, out[k], want)
		}
	}

	// Teeth: mutate again WITHOUT invalidating; the stale cache must now
	// disagree with the scalar path (if it silently agreed, the cache
	// would not actually be caching anything).
	m.Params()[0] += 0.125
	e.LogPsiBatch(b, out)
	stale := false
	for k := 0; k < 4; k++ {
		if out[k] != m.LogPsi(b.Row(k)) {
			stale = true
		}
	}
	if !stale {
		t.Fatal("stale masked-weight cache still matched fresh weights; cache is not engaged")
	}
	InvalidateParams(m)
}

// TestTailFlipCacheExactRegression pins the tail-only flip cache against
// fresh LogPsi calls with exact ==: after arbitrary interleavings of Flip,
// Delta and Reset the cached base log psi, the absolute flipped log psi
// (FlipLogPsi) and every delta must agree bitwise with a full
// recomputation — the tentpole invariant that evaluating only output sites
// j >= b changes nothing but the work done.
func TestTailFlipCacheExactRegression(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{1, 2, 7, 19} {
		m := NewMADE(n, 5+n, r.Split())
		x := make([]int, n)
		r.FillBits(x)
		c := m.NewFlipCache(x).(TailFlipCache)
		y := make([]int, n)
		for trial := 0; trial < 200; trial++ {
			if c.LogPsi() != m.LogPsi(c.State()) {
				t.Fatalf("n=%d trial %d: cache logPsi %v != fresh %v",
					n, trial, c.LogPsi(), m.LogPsi(c.State()))
			}
			bit := r.Intn(n)
			copy(y, c.State())
			y[bit] = 1 - y[bit]
			if got, want := c.FlipLogPsi(bit), m.LogPsi(y); got != want {
				t.Fatalf("n=%d trial %d: FlipLogPsi(%d) = %v != fresh %v", n, trial, bit, got, want)
			}
			if got, want := c.Delta(bit), m.LogPsi(y)-c.LogPsi(); got != want {
				t.Fatalf("n=%d trial %d: Delta(%d) = %v != fresh difference %v", n, trial, bit, got, want)
			}
			switch trial % 3 {
			case 0:
				c.Flip(bit)
			case 1:
				r.FillBits(y)
				c.Reset(y)
			}
		}
	}
}
