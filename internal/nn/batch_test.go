package nn

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// batchCases are the (B, workers, n) grids the batched-vs-scalar
// bit-identity properties run over (the ISSUE's acceptance matrix).
var (
	batchSizes   = []int{1, 3, 64}
	workerCounts = []int{1, 2, 5}
	siteCounts   = []int{1, 2, 7, 19}
)

func randomConfigs(bs, n int, r *rng.Rand) ConfigBatch {
	b := ConfigBatch{N: bs, Sites: n, Bits: make([]int, bs*n)}
	r.FillBits(b.Bits)
	return b
}

// TestLogPsiBatchBitIdentical: LogPsiBatch must equal per-row LogPsi with
// exact ==, for every batch size, worker count and site count.
func TestLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 6+n, rng.New(uint64(100+n)))
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(7*bs+n)))
				out := make([]float64, bs)
				e.LogPsiBatch(b, out)
				s := m.NewScratch()
				for k := 0; k < bs; k++ {
					want := m.LogPsiScratch(b.Row(k), s)
					if out[k] != want {
						t.Fatalf("n=%d w=%d B=%d row %d: batched %v != scalar %v",
							n, workers, bs, k, out[k], want)
					}
				}
			}
		}
	}
}

// TestGradLogPsiBatchBitIdentical: every ows row must equal the scalar
// GradLogPsi of that configuration with exact ==.
func TestGradLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 5+n/2, rng.New(uint64(200+n)))
		d := m.NumParams()
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(13*bs+n)))
				ows := tensor.NewBatch(bs, d)
				e.GradLogPsiBatch(b, ows)
				s := m.NewScratch()
				want := tensor.NewVector(d)
				for k := 0; k < bs; k++ {
					m.GradLogPsiScratch(b.Row(k), want, s)
					row := ows.Sample(k)
					for i := range want {
						if row[i] != want[i] {
							t.Fatalf("n=%d w=%d B=%d row %d param %d: batched %v != scalar %v",
								n, workers, bs, k, i, row[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestFlipLogPsiBatchBitIdentical: base values must match the flip cache's
// base LogPsi and flip values must match base + Delta, exactly — the
// property core.LocalEnergies' batched dispatch relies on.
func TestFlipLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 4+n, rng.New(uint64(300+n)))
		// All single-bit flips, the TIM local-energy pattern.
		flips := make([]int, n)
		for i := range flips {
			flips[i] = i
		}
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(17*bs+n)))
				base := make([]float64, bs)
				flipLP := make([]float64, bs*n)
				e.FlipLogPsiBatch(b, flips, base, flipLP)
				cache := m.NewFlipCache(b.Row(0))
				for k := 0; k < bs; k++ {
					if k > 0 {
						cache.Reset(b.Row(k))
					}
					if base[k] != cache.LogPsi() {
						t.Fatalf("n=%d w=%d B=%d row %d: batched base %v != cache %v",
							n, workers, bs, k, base[k], cache.LogPsi())
					}
					for f, bit := range flips {
						want := cache.LogPsi() + cache.Delta(bit)
						if flipLP[k*n+f] != want {
							t.Fatalf("n=%d w=%d B=%d row %d flip %d: batched %v != cache %v",
								n, workers, bs, k, bit, flipLP[k*n+f], want)
						}
					}
				}
			}
		}
	}
}

// TestBatchAncestralBitIdentical: fed the same uniforms, the batched
// site-major sampler must produce exactly the bits of the scalar
// incremental evaluator walked sample-major.
func TestBatchAncestralBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewMADE(n, 6+n, rng.New(uint64(400+n)))
		bsmp := m.NewBatchAncestralSampler()
		for _, bs := range batchSizes {
			u := make([]float64, bs*n)
			rng.New(uint64(19*bs+n)).FillUniform(u, 0, 1)
			// Scalar reference: incremental evaluator, one sample at a time.
			want := make([]int, bs*n)
			ev := m.NewIncrementalEvaluator()
			for k := 0; k < bs; k++ {
				ev.Reset()
				for i := 0; i < n; i++ {
					bit := 0
					if u[k*n+i] < ev.Prob(i) {
						bit = 1
					}
					want[k*n+i] = bit
					ev.Fix(i, bit)
				}
			}
			for _, workers := range workerCounts {
				b := ConfigBatch{N: bs, Sites: n, Bits: make([]int, bs*n)}
				bsmp.Sample(b, u, workers)
				for i := range want {
					if b.Bits[i] != want[i] {
						t.Fatalf("n=%d B=%d w=%d: bit %d = %d, scalar %d",
							n, bs, workers, i, b.Bits[i], want[i])
					}
				}
			}
		}
	}
}

// TestMaskedWeightCacheInvalidation: the W.M cache must be rebuilt after
// InvalidateParams and must poison results if it is NOT invalidated — the
// teeth that prove the version counter is load-bearing.
func TestMaskedWeightCacheInvalidation(t *testing.T) {
	n := 6
	m := NewMADE(n, 8, rng.New(5))
	e := m.NewBatchEvaluator(2)
	b := randomConfigs(4, n, rng.New(6))
	out := make([]float64, 4)
	e.LogPsiBatch(b, out) // builds the cache

	// Mutate a weight that is inside the mask support and invalidate: the
	// batched value must track the scalar one.
	m.Params()[0] += 0.125
	InvalidateParams(m)
	e.LogPsiBatch(b, out)
	for k := 0; k < 4; k++ {
		if want := m.LogPsi(b.Row(k)); out[k] != want {
			t.Fatalf("after invalidation row %d: batched %v != scalar %v", k, out[k], want)
		}
	}

	// Teeth: mutate again WITHOUT invalidating; the stale cache must now
	// disagree with the scalar path (if it silently agreed, the cache
	// would not actually be caching anything).
	m.Params()[0] += 0.125
	e.LogPsiBatch(b, out)
	stale := false
	for k := 0; k < 4; k++ {
		if out[k] != m.LogPsi(b.Row(k)) {
			stale = true
		}
	}
	if !stale {
		t.Fatal("stale masked-weight cache still matched fresh weights; cache is not engaged")
	}
	InvalidateParams(m)
}

// TestFlipCacheIncrementalRegression pins the incremental flip cache
// against fresh LogPsi calls: after arbitrary interleavings of Flip, Delta
// and Reset the cached base log psi and every delta must agree with a full
// recomputation to near machine precision (the incremental z1 reorders
// sums, so exact == is not expected here — the batched path instead
// matches the cache itself exactly).
func TestFlipCacheIncrementalRegression(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{1, 2, 7, 19} {
		m := NewMADE(n, 5+n, r.Split())
		x := make([]int, n)
		r.FillBits(x)
		c := m.NewFlipCache(x)
		y := make([]int, n)
		for trial := 0; trial < 200; trial++ {
			if math.Abs(c.LogPsi()-m.LogPsi(c.State())) > 1e-12 {
				t.Fatalf("n=%d trial %d: cache logPsi %v, fresh %v",
					n, trial, c.LogPsi(), m.LogPsi(c.State()))
			}
			bit := r.Intn(n)
			copy(y, c.State())
			y[bit] = 1 - y[bit]
			want := m.LogPsi(y) - m.LogPsi(c.State())
			if got := c.Delta(bit); math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d trial %d: Delta(%d) = %v, fresh %v", n, trial, bit, got, want)
			}
			switch trial % 3 {
			case 0:
				c.Flip(bit)
			case 1:
				r.FillBits(y)
				c.Reset(y)
			}
		}
	}
}
