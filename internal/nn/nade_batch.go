package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// nadeBatchEvaluator is NADE's BatchEvaluator. NADE's forward is site-major
// by construction — the hidden accumulator a_i is shared by all later
// conditionals — so the batched path keeps the whole slab's B x h
// accumulator state resident and fuses each site's V_i . relu(a_i)
// conditional into one column-range GEMM (tensor.MatMulReLUCols against the
// cached V^T layout) before folding the site's log-sigmoid terms and
// applying the site's accumulation to every row. Per element the kernels
// accumulate in the exact ascending order the scalar conditionalZ/accumulate
// pair uses, so all values are bitwise identical to the scalar paths; see
// the BatchEvaluator contract.
type nadeBatchEvaluator struct {
	m       *NADE
	workers int
	// fullFlip disables the tail-only flip evaluation and replays every flip
	// row's accumulation chain from a_0 = c with a full log-probability fold
	// — the differential-test oracle. Outputs are bitwise identical to the
	// tail-only path (the tail resume is an exact suffix of the full fold).
	fullFlip bool
	// Slab workspaces, grown on demand and reused across calls: bufA/bufZ
	// back the base forward (accumulators and conditional pre-activations),
	// bufP the per-row log-probability prefix sums, bufSnap the per-site
	// accumulator snapshots the tail-only flip groups resume from,
	// bufAf/bufZf/bufLp the flip-group accumulators/pre-activations/folds,
	// and bufBase stages the base log-psi when the caller passes nil.
	bufA, bufZ, bufP    []float64
	bufSnap             []float64
	bufAf, bufZf, bufLp []float64
	bufBase             []float64
	gs                  []*NADEScratch // per-worker backward scratch
}

// NewBatchEvaluator implements BatchEvaluatorBuilder. workers bounds the
// internal fan-out (<= 0 means GOMAXPROCS) and does not affect any output
// value. The evaluator is not safe for concurrent use.
func (m *NADE) NewBatchEvaluator(workers int) BatchEvaluator {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	e := &nadeBatchEvaluator{m: m, workers: workers, gs: make([]*NADEScratch, workers)}
	for w := 0; w < workers; w++ {
		e.gs[w] = m.NewScratch()
	}
	return e
}

// NewFullFlipBatchEvaluator implements FullFlipBatchEvaluatorBuilder: a
// BatchEvaluator whose FlipLogPsiBatch replays every flip row from a_0 = c
// instead of resuming from the per-site accumulator snapshots. Bitwise
// identical to NewBatchEvaluator — the differential-testing oracle and A/B
// perf baseline for the tail-only path.
func (m *NADE) NewFullFlipBatchEvaluator(workers int) BatchEvaluator {
	e := m.NewBatchEvaluator(workers).(*nadeBatchEvaluator)
	e.fullFlip = true
	return e
}

// initRows fills rows [0, s) of a with the initial hidden state c.
func (e *nadeBatchEvaluator) initRows(a *tensor.Matrix, s int) {
	m := e.m
	parallel.For(s, e.workers, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			copy(a.Row(si), m.C)
		}
	})
}

// siteZ fills column i of z with each row's conditional pre-activation
// V_i . relu(a) + b_i — bitwise the scalar conditionalZ (the column-range
// GEMM accumulates each element over hidden units in the same ascending
// order as Vector.Dot, with the implicit ReLU matching the scalar's
// copy+ReLU; skipped zero activations are exact no-op terms).
func (e *nadeBatchEvaluator) siteZ(z, a, vt *tensor.Matrix, i int) {
	tensor.MatMulReLUCols(z, a, vt, i, i+1, e.workers)
	tensor.AddRowBiasCols(z, e.m.B, i, i+1, e.workers)
}

// LogPsiBatch implements BatchEvaluator; out[k] matches LogPsi(row k)
// bitwise.
func (e *nadeBatchEvaluator) LogPsiBatch(b ConfigBatch, out []float64) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: LogPsiBatch sites mismatch")
	}
	if len(out) != b.N {
		panic("nn: LogPsiBatch output length mismatch")
	}
	vt, wt := m.transposed()
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		s := hi - lo
		a := growMat(&e.bufA, s, m.h)
		z := growMat(&e.bufZ, s, m.n)
		e.initRows(a, s)
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				out[lo+si] = 0
			}
		})
		for i := 0; i < m.n; i++ {
			e.siteZ(z, a, vt, i)
			wtRow := wt.Row(i)
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					bit := b.Row(lo + si)[i]
					out[lo+si] += condTerm(z.Row(si)[i], bit)
					if bit == 1 {
						arow := a.Row(si)
						for k, wv := range wtRow {
							arow[k] += wv
						}
					}
				}
			})
		}
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				out[lo+si] *= 0.5
			}
		})
	}
}

// GradLogPsiBatch implements BatchEvaluator. NADE's analytic backward is
// O(nh) per row with a per-row recorded forward, so the batched path shares
// the scalar GradLogPsiScratch verbatim across per-worker scratches — the
// same shape rbm_batch.go uses; there is no cross-row GEMM to fuse without
// changing the per-element arithmetic.
func (e *nadeBatchEvaluator) GradLogPsiBatch(b ConfigBatch, ows *tensor.Batch) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: GradLogPsiBatch sites mismatch")
	}
	if ows.N != b.N || ows.Dim != m.NumParams() {
		panic("nn: GradLogPsiBatch ows shape mismatch")
	}
	ranges := parallel.Partition(b.N, e.workers)
	parallel.ForEach(len(ranges), e.workers, func(w int) {
		s := e.gs[w]
		for r := ranges[w].Lo; r < ranges[w].Hi; r++ {
			m.GradLogPsiScratch(b.Row(r), ows.Sample(r), s)
		}
	})
}

// FlipLogPsiBatch implements BatchEvaluator under the tail-only flip
// convention. The base pass runs the site-major forward once per slab,
// snapshotting the B x h accumulator before every flipped site and the
// per-row log-probability prefix sums. Each flip group (all slab rows with
// bit f flipped) then re-branches the flipped site on the UNCHANGED base
// pre-activation — a flip of bit b cannot touch a_i for i <= b — reseeds
// the accumulators from the snapshot with the flipped bit folded in, and
// re-runs only the tail sites j > b as column-range GEMMs, resuming each
// row's fold from its recorded prefix. Flipped log-psi values are bitwise
// identical to a fresh LogPsi of the flipped configuration (the resumed
// chain is an exact suffix of the full chain), and the emitted deltas
// subtract the base exactly as the scalar FlipCache.Delta does.
func (e *nadeBatchEvaluator) FlipLogPsiBatch(b ConfigBatch, flips []int, base, delta []float64) {
	m := e.m
	nf := len(flips)
	if b.Sites != m.n {
		panic("nn: FlipLogPsiBatch sites mismatch")
	}
	if (base != nil && len(base) != b.N) || len(delta) != b.N*nf {
		panic("nn: FlipLogPsiBatch output length mismatch")
	}
	if base == nil {
		// NADE's deltas subtract the base log-psi, and the prefix fold
		// computes it as a byproduct — stage it in a reusable buffer.
		if cap(e.bufBase) < b.N {
			e.bufBase = make([]float64, b.N)
		}
		base = e.bufBase[:b.N]
	}
	vt, wt := m.transposed()
	needSnap := make([]bool, m.n)
	for _, bit := range flips {
		needSnap[bit] = true
	}
	slab := batchSlabRows / (nf + 1)
	if slab < 1 {
		slab = 1
	}
	for lo := 0; lo < b.N; lo += slab {
		hi := lo + slab
		if hi > b.N {
			hi = b.N
		}
		s := hi - lo
		a := growMat(&e.bufA, s, m.h)
		z := growMat(&e.bufZ, s, m.n)
		p := growMat(&e.bufP, s, m.n+1)
		var snap *tensor.Matrix
		if !e.fullFlip && nf > 0 {
			snap = growMat(&e.bufSnap, m.n*s, m.h)
		}
		// Base forward, recording z, prefix sums, and snapshot bands.
		e.initRows(a, s)
		for i := 0; i < m.n; i++ {
			if snap != nil && needSnap[i] {
				copy(snap.Data[i*s*m.h:(i+1)*s*m.h], a.Data[:s*m.h])
			}
			e.siteZ(z, a, vt, i)
			wtRow := wt.Row(i)
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					prow := p.Row(si)
					if i == 0 {
						prow[0] = 0
					}
					bit := b.Row(lo + si)[i]
					prow[i+1] = prow[i] + condTerm(z.Row(si)[i], bit)
					if bit == 1 {
						arow := a.Row(si)
						for k, wv := range wtRow {
							arow[k] += wv
						}
					}
				}
			})
		}
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				base[lo+si] = 0.5 * p.Row(si)[m.n]
			}
		})
		if nf == 0 {
			continue
		}
		af := growMat(&e.bufAf, s, m.h)
		zf := growMat(&e.bufZf, s, m.n)
		lpf := growMat(&e.bufLp, s, 1)
		for f, bit := range flips {
			j0 := bit + 1
			if e.fullFlip {
				// Oracle: replay the whole chain from a_0 = c with the
				// flipped bit substituted at its site.
				e.initRows(af, s)
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						lpf.Data[si] = 0
					}
				})
				j0 = 0
			} else {
				// Tail-only: re-branch site bit on the unchanged base
				// pre-activation, reseed from the recorded snapshot with the
				// flipped bit, resume the fold from the recorded prefix.
				snapBand := snap.Data[bit*s*m.h : (bit+1)*s*m.h]
				wtRow := wt.Row(bit)
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						nb := 1 - b.Row(lo+si)[bit]
						lpf.Data[si] = p.Row(si)[bit] + condTerm(z.Row(si)[bit], nb)
						arow := af.Row(si)
						copy(arow, snapBand[si*m.h:(si+1)*m.h])
						if nb == 1 {
							for k, wv := range wtRow {
								arow[k] += wv
							}
						}
					}
				})
			}
			for j := j0; j < m.n; j++ {
				e.siteZ(zf, af, vt, j)
				wtRow := wt.Row(j)
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						bj := b.Row(lo + si)[j]
						if j == bit {
							bj = 1 - bj
						}
						lpf.Data[si] += condTerm(zf.Row(si)[j], bj)
						if bj == 1 {
							arow := af.Row(si)
							for k, wv := range wtRow {
								arow[k] += wv
							}
						}
					}
				})
			}
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					delta[(lo+si)*nf+f] = 0.5*lpf.Data[si] - base[lo+si]
				}
			})
		}
	}
}

// nadeBatchAncestral advances all samples of a batch site-by-site: one
// column-range GEMM per site over the resident B x h accumulator state, so
// weight column i of every sample is touched before moving to site i+1. The
// per-sample arithmetic is exactly the incremental evaluator's
// (conditionalZ + accumulate), so given the same uniforms the sampled bits
// are identical to scalar ancestral sampling.
type nadeBatchAncestral struct {
	m          *NADE
	bufA, bufZ []float64
}

// NewBatchAncestralSampler implements BatchAncestralBuilder.
func (m *NADE) NewBatchAncestralSampler() BatchAncestralSampler {
	return &nadeBatchAncestral{m: m}
}

// Sample implements BatchAncestralSampler.
func (a *nadeBatchAncestral) Sample(b ConfigBatch, u []float64, workers int) {
	m := a.m
	if b.Sites != m.n {
		panic("nn: batched ancestral sites mismatch")
	}
	if len(u) < b.N*m.n {
		panic("nn: batched ancestral uniforms too short")
	}
	vt, wt := m.transposed()
	acc := growMat(&a.bufA, b.N, m.h)
	z := growMat(&a.bufZ, b.N, m.n)
	parallel.For(b.N, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			copy(acc.Row(r), m.C)
		}
	})
	for i := 0; i < m.n; i++ {
		tensor.MatMulReLUCols(z, acc, vt, i, i+1, workers)
		tensor.AddRowBiasCols(z, m.B, i, i+1, workers)
		wtRow := wt.Row(i)
		parallel.For(b.N, workers, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				pr := 1 / (1 + math.Exp(-z.Row(r)[i]))
				bit := 0
				if u[r*m.n+i] < pr {
					bit = 1
				}
				b.Bits[r*b.Sites+i] = bit
				if bit == 1 {
					arow := acc.Row(r)
					for k, wv := range wtRow {
						arow[k] += wv
					}
				}
			}
		})
	}
}

var (
	_ BatchEvaluatorBuilder         = (*NADE)(nil)
	_ FullFlipBatchEvaluatorBuilder = (*NADE)(nil)
	_ BatchAncestralBuilder         = (*NADE)(nil)
)
