package nn

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// The RBM batched-evaluation suite mirrors batch_test.go: every method of
// the RBM's BatchEvaluator must reproduce the scalar path with exact ==
// across the acceptance grid of batch sizes, worker counts and site counts.

// TestRBMLogPsiBatchBitIdentical: LogPsiBatch must equal per-row
// LogPsiScratch with exact ==.
func TestRBMLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewRBM(n, 6+n, rng.New(uint64(500+n)))
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(29*bs+n)))
				out := make([]float64, bs)
				e.LogPsiBatch(b, out)
				s := m.NewScratch()
				for k := 0; k < bs; k++ {
					if want := m.LogPsiScratch(b.Row(k), s); out[k] != want {
						t.Fatalf("n=%d w=%d B=%d row %d: batched %v != scalar %v",
							n, workers, bs, k, out[k], want)
					}
				}
			}
		}
	}
}

// TestRBMGradLogPsiBatchBitIdentical: every ows row must equal the scalar
// GradLogPsiScratch of that configuration with exact ==.
func TestRBMGradLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewRBM(n, 5+n/2, rng.New(uint64(600+n)))
		d := m.NumParams()
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(31*bs+n)))
				ows := tensor.NewBatch(bs, d)
				e.GradLogPsiBatch(b, ows)
				s := m.NewScratch()
				want := tensor.NewVector(d)
				for k := 0; k < bs; k++ {
					m.GradLogPsiScratch(b.Row(k), want, s)
					row := ows.Sample(k)
					for i := range want {
						if row[i] != want[i] {
							t.Fatalf("n=%d w=%d B=%d row %d param %d: batched %v != scalar %v",
								n, workers, bs, k, i, row[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestRBMFlipLogPsiBatchBitIdentical: base values must match the RBM flip
// cache's base LogPsi and deltas must match the O(h) incremental
// FlipCache.Delta, with exact == — the property that keeps the batched
// MCMC-pipeline local energies interchangeable with the scalar loop.
func TestRBMFlipLogPsiBatchBitIdentical(t *testing.T) {
	for _, n := range siteCounts {
		m := NewRBM(n, 4+n, rng.New(uint64(700+n)))
		flips := make([]int, n)
		for i := range flips {
			flips[i] = i
		}
		for _, workers := range workerCounts {
			e := m.NewBatchEvaluator(workers)
			for _, bs := range batchSizes {
				b := randomConfigs(bs, n, rng.New(uint64(37*bs+n)))
				base := make([]float64, bs)
				delta := make([]float64, bs*n)
				e.FlipLogPsiBatch(b, flips, base, delta)
				cache := m.NewFlipCache(b.Row(0))
				for k := 0; k < bs; k++ {
					if k > 0 {
						cache.Reset(b.Row(k))
					}
					if base[k] != cache.LogPsi() {
						t.Fatalf("n=%d w=%d B=%d row %d: batched base %v != cache %v",
							n, workers, bs, k, base[k], cache.LogPsi())
					}
					for f, bit := range flips {
						if want := cache.Delta(bit); delta[k*n+f] != want {
							t.Fatalf("n=%d w=%d B=%d row %d flip %d: batched delta %v != cache %v",
								n, workers, bs, k, bit, delta[k*n+f], want)
						}
					}
				}
			}
		}
	}
}

// TestRBMWeightCacheInvalidation: the W^T cache must be rebuilt after
// InvalidateParams and must poison results when it is NOT invalidated —
// the teeth proving the version counter is load-bearing for the RBM too.
func TestRBMWeightCacheInvalidation(t *testing.T) {
	n := 6
	m := NewRBM(n, 8, rng.New(51))
	e := m.NewBatchEvaluator(2)
	b := randomConfigs(4, n, rng.New(52))
	out := make([]float64, 4)
	e.LogPsiBatch(b, out) // builds the cache

	m.Params()[0] += 0.125
	InvalidateParams(m)
	e.LogPsiBatch(b, out)
	for k := 0; k < 4; k++ {
		if want := m.LogPsi(b.Row(k)); out[k] != want {
			t.Fatalf("after invalidation row %d: batched %v != scalar %v", k, out[k], want)
		}
	}

	m.Params()[0] += 0.125
	e.LogPsiBatch(b, out)
	stale := false
	for k := 0; k < 4; k++ {
		if out[k] != m.LogPsi(b.Row(k)) {
			stale = true
		}
	}
	if !stale {
		t.Fatal("stale transposed-weight cache still matched fresh weights; cache is not engaged")
	}
	InvalidateParams(m)
}
