package nn

import (
	"bytes"
	"strings"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// TestHotSwapParams pins the hot-swap primitive: after swapping a live
// model onto a checkpoint's parameters, LogPsi must be bitwise equal to the
// checkpoint source's LogPsi (the derived caches rebuild through
// InvalidateParams, so the masked-weight products see the new version).
func TestHotSwapParams(t *testing.T) {
	cases := []struct {
		name string
		mk   func(seed uint64) Wavefunction
	}{
		{"made", func(s uint64) Wavefunction { return NewMADE(9, 11, rng.New(s)) }},
		{"rbm", func(s uint64) Wavefunction { return NewRBM(9, 11, rng.New(s)) }},
		{"nade", func(s uint64) Wavefunction { return NewNADE(9, 11, rng.New(s)) }},
		{"rnn", func(s uint64) Wavefunction { return NewRNN(9, 11, rng.New(s)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live, src := tc.mk(1), tc.mk(2)
			x := make([]int, 9)
			rng.New(5).FillBits(x)
			// Force the live model's lazy caches to materialize on the OLD
			// parameters first, so the swap's invalidation is load-bearing.
			_ = live.LogPsi(x)
			if err := HotSwapParams(live, src); err != nil {
				t.Fatalf("HotSwapParams: %v", err)
			}
			if got, want := live.LogPsi(x), src.LogPsi(x); got != want {
				t.Fatalf("%s: post-swap LogPsi %v != source %v", tc.name, got, want)
			}
		})
	}
}

// TestHotSwapParamsRoundTripsCheckpoint pins the serving path end to end:
// save a model, load it back through the checkpoint reader, hot-swap a live
// model onto it, and require bitwise-equal amplitudes.
func TestHotSwapParamsRoundTripsCheckpoint(t *testing.T) {
	src := NewMADE(8, 10, rng.New(3))
	var buf bytes.Buffer
	if err := SaveWavefunction(&buf, src); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadWavefunction(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	live := NewMADE(8, 10, rng.New(4))
	if err := HotSwapParams(live, loaded); err != nil {
		t.Fatalf("swap: %v", err)
	}
	x := make([]int, 8)
	rng.New(6).FillBits(x)
	if got, want := live.LogPsi(x), src.LogPsi(x); got != want {
		t.Fatalf("round-tripped swap LogPsi %v != original %v", got, want)
	}
}

// TestHotSwapParamsRejectsMismatches locks the validation teeth: family,
// site-count, and width mismatches must all refuse to swap.
func TestHotSwapParamsRejectsMismatches(t *testing.T) {
	made := NewMADE(8, 10, rng.New(1))
	cases := []struct {
		name string
		src  Wavefunction
		frag string
	}{
		{"family", NewRBM(8, 10, rng.New(2)), "family mismatch"},
		{"sites", NewMADE(9, 10, rng.New(2)), "architecture mismatch"},
		{"width", NewMADE(8, 12, rng.New(2)), "architecture mismatch"},
	}
	for _, tc := range cases {
		err := HotSwapParams(made, tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: want error containing %q, got %v", tc.name, tc.frag, err)
		}
	}
}

// TestKindName pins the family-name vocabulary shared with the CLI flags.
func TestKindName(t *testing.T) {
	if got := KindName(NewMADE(4, 4, rng.New(1))); got != "made" {
		t.Fatalf("made: %q", got)
	}
	if got := KindName(NewRBM(4, 4, rng.New(1))); got != "rbm" {
		t.Fatalf("rbm: %q", got)
	}
	if got := KindName(NewNADE(4, 4, rng.New(1))); got != "nade" {
		t.Fatalf("nade: %q", got)
	}
	if got := KindName(NewRNN(4, 4, rng.New(1))); got != "rnn" {
		t.Fatalf("rnn: %q", got)
	}
	if got := KindName(nil); got != "" {
		t.Fatalf("nil: %q", got)
	}
}
