package nn

import (
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// rbmBatchEvaluator is the RBM's BatchEvaluator: the per-sample hidden
// pre-activation MulVec (theta = W s + c) of a whole batch is fused into
// one blocked GEMM against the cached transposed weights (theta = S W^T,
// see RBM.weightsT), then the per-row reductions — the ln-cosh log-psi
// fold, the closed-form gradient, and the O(h) flip delta — run the exact
// scalar code (logPsiFromTheta / gradFromTheta / flipDelta) on the GEMM
// rows. All values are bitwise identical to the scalar paths; see the
// BatchEvaluator contract.
//
// Spins never vanish (s_i = +/-1), so the GEMM's zero-skip never fires and
// every element accumulates the same ascending-j product chain MulVec runs.
type rbmBatchEvaluator struct {
	m       *RBM
	workers int
	// Slab workspaces, grown on demand and reused across calls: bufS holds
	// the float spin rows, bufTh the hidden pre-activation rows.
	bufS, bufTh []float64
}

// NewBatchEvaluator implements BatchEvaluatorBuilder for the RBM. workers
// bounds the internal fan-out (<= 0 means GOMAXPROCS) and does not affect
// any output value. The evaluator is not safe for concurrent use.
func (m *RBM) NewBatchEvaluator(workers int) BatchEvaluator {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	return &rbmBatchEvaluator{m: m, workers: workers}
}

// thetaSlab converts rows [lo, hi) of b to spins and runs the fused
// theta = S W^T + c forward, returning the spin and pre-activation slabs.
func (e *rbmBatchEvaluator) thetaSlab(b ConfigBatch, lo, hi int) (sp, th *tensor.Matrix) {
	m := e.m
	rows := hi - lo
	wt := m.weightsT()
	sp = growMat(&e.bufS, rows, m.n)
	th = growMat(&e.bufTh, rows, m.h)
	parallel.For(rows, e.workers, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			x := b.Row(lo + r)
			row := sp.Row(r)
			for i, bit := range x {
				row[i] = float64(1 - 2*bit)
			}
		}
	})
	tensor.MatMul(th, sp, wt, e.workers)
	tensor.AddRowBias(th, m.C, e.workers)
	return sp, th
}

// LogPsiBatch implements BatchEvaluator; out[k] matches LogPsi(row k)
// bitwise.
func (e *rbmBatchEvaluator) LogPsiBatch(b ConfigBatch, out []float64) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: LogPsiBatch sites mismatch")
	}
	if len(out) != b.N {
		panic("nn: LogPsiBatch output length mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		sp, th := e.thetaSlab(b, lo, hi)
		parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				out[lo+r] = m.logPsiFromTheta(sp.Row(r), th.Row(r))
			}
		})
	}
}

// GradLogPsiBatch implements BatchEvaluator: one fused theta GEMM per slab,
// then the shared closed-form gradient fills each ows row.
func (e *rbmBatchEvaluator) GradLogPsiBatch(b ConfigBatch, ows *tensor.Batch) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: GradLogPsiBatch sites mismatch")
	}
	if ows.N != b.N || ows.Dim != m.NumParams() {
		panic("nn: GradLogPsiBatch ows shape mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		sp, th := e.thetaSlab(b, lo, hi)
		parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				m.gradFromTheta(sp.Row(r), th.Row(r), ows.Sample(lo+r))
			}
		})
	}
}

// FlipLogPsiBatch implements BatchEvaluator: base[k] is the flip cache's
// base log psi (logPsiFromTheta over the GEMM rows) and delta[k*F+f] is the
// shared O(h) incremental flipDelta — both bitwise the scalar FlipCache's
// values, so core.LocalEnergies is interchangeable between the paths. The
// deltas never read the base, so a nil base skips the per-row ln-cosh fold
// entirely (the local-energy hot path).
func (e *rbmBatchEvaluator) FlipLogPsiBatch(b ConfigBatch, flips []int, base, delta []float64) {
	m := e.m
	nf := len(flips)
	if b.Sites != m.n {
		panic("nn: FlipLogPsiBatch sites mismatch")
	}
	if (base != nil && len(base) != b.N) || len(delta) != b.N*nf {
		panic("nn: FlipLogPsiBatch output length mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		sp, th := e.thetaSlab(b, lo, hi)
		parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				srow, throw := sp.Row(r), th.Row(r)
				if base != nil {
					base[lo+r] = m.logPsiFromTheta(srow, throw)
				}
				drow := delta[(lo+r)*nf : (lo+r+1)*nf]
				for f, bit := range flips {
					drow[f] = m.flipDelta(srow, throw, bit)
				}
			}
		})
	}
}

var _ BatchEvaluatorBuilder = (*RBM)(nil)
