package nn

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

func TestMADEParamLayout(t *testing.T) {
	m := NewMADE(5, 7, rng.New(1))
	if m.NumParams() != 2*7*5+7+5 {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), 2*7*5+7+5)
	}
	// Views alias the flat vector: writing through Params must change W1.
	p := m.Params()
	p[0] = 42
	if m.W1.At(0, 0) != 42 {
		t.Fatal("W1 does not alias Params")
	}
	p[len(p)-1] = 7
	if m.B2[4] != 7 {
		t.Fatal("B2 does not alias Params tail")
	}
}

func TestMADENormalization(t *testing.T) {
	// sum_x pi(x) must equal 1 for any parameters: the defining property of
	// the autoregressive construction.
	for _, n := range []int{1, 2, 4, 8} {
		m := NewMADE(n, 6, rng.New(uint64(n)))
		// Perturb weights to a non-trivial point.
		r := rng.New(77)
		for i := range m.Params() {
			m.Params()[i] += r.Uniform(-1, 1)
		}
		var total float64
		x := make([]int, n)
		for ix := 0; ix < 1<<uint(n); ix++ {
			hamiltonian.IndexToBits(ix, x)
			total += math.Exp(m.LogProb(x))
		}
		if math.Abs(total-1) > 1e-10 {
			t.Fatalf("n=%d sum_x pi(x) = %v, want 1", n, total)
		}
	}
}

func TestMADEAutoregressiveProperty(t *testing.T) {
	// Output j must not depend on inputs at positions >= j.
	r := rng.New(3)
	n, h := 7, 11
	m := NewMADE(n, h, r)
	s := m.NewScratch()
	x := make([]int, n)
	y := make([]int, n)
	for trial := 0; trial < 200; trial++ {
		r.FillBits(x)
		copy(y, x)
		j := r.Intn(n)
		// Toggle an arbitrary subset of positions >= j.
		for i := j; i < n; i++ {
			if r.Bit() == 1 {
				y[i] = 1 - y[i]
			}
		}
		m.Forward(x, s)
		zx := s.Z2[j]
		m.Forward(y, s)
		zy := s.Z2[j]
		if zx != zy {
			t.Fatalf("output %d depends on inputs >= %d: %v vs %v", j, j, zx, zy)
		}
	}
}

func TestMADEConditionalConsistency(t *testing.T) {
	// pi(x) must equal prod_i Conditional(x, i)-style factors.
	r := rng.New(4)
	n := 6
	m := NewMADE(n, 9, r)
	s := m.NewScratch()
	x := make([]int, n)
	for trial := 0; trial < 50; trial++ {
		r.FillBits(x)
		var lp float64
		for i := 0; i < n; i++ {
			p := m.ConditionalScratch(x, i, s)
			if x[i] == 1 {
				lp += math.Log(p)
			} else {
				lp += math.Log(1 - p)
			}
		}
		if math.Abs(lp-m.LogProbScratch(x, s)) > 1e-10 {
			t.Fatalf("chain-rule product %v != LogProb %v", lp, m.LogProbScratch(x, s))
		}
	}
}

func TestMADEConditionalRowMatchesForward(t *testing.T) {
	// The O(h) incremental conditional must agree with the full forward
	// pass when z1 reflects the prefix.
	r := rng.New(5)
	n, h := 8, 13
	m := NewMADE(n, h, r)
	s := m.NewScratch()
	x := make([]int, n)
	r.FillBits(x)
	z1 := m.B1.Clone()
	for i := 0; i < n; i++ {
		fast := m.ConditionalRow(z1, i)
		slow := m.ConditionalScratch(x, i, s)
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("bit %d: incremental %v vs forward %v", i, fast, slow)
		}
		m.AccumulateInput(z1, i, x[i])
	}
}

func TestMADEGradMatchesFiniteDifference(t *testing.T) {
	r := rng.New(6)
	n, h := 5, 4
	m := NewMADE(n, h, r)
	s := m.NewScratch()
	x := []int{1, 0, 1, 1, 0}
	grad := tensor.NewVector(m.NumParams())
	m.GradLogPsiScratch(x, grad, s)
	const eps = 1e-6
	p := m.Params()
	for i := 0; i < m.NumParams(); i++ {
		orig := p[i]
		p[i] = orig + eps
		fp := m.LogPsiScratch(x, s)
		p[i] = orig - eps
		fm := m.LogPsiScratch(x, s)
		p[i] = orig
		fd := (fp - fm) / (2 * eps)
		if math.Abs(fd-grad[i]) > 1e-5 {
			t.Fatalf("param %d: analytic %v vs finite-diff %v", i, grad[i], fd)
		}
	}
}

func TestMADEGradLogProbIsTwiceGradLogPsi(t *testing.T) {
	r := rng.New(7)
	m := NewMADE(6, 5, r)
	s := m.NewScratch()
	x := []int{0, 1, 1, 0, 1, 0}
	g1 := tensor.NewVector(m.NumParams())
	g2 := tensor.NewVector(m.NumParams())
	m.GradLogProbScratch(x, g1, s)
	m.GradLogPsiScratch(x, g2, s)
	for i := range g1 {
		if math.Abs(g1[i]-2*g2[i]) > 1e-14 {
			t.Fatalf("grad log pi != 2 grad log psi at %d", i)
		}
	}
}

func TestMADEFlipCache(t *testing.T) {
	r := rng.New(8)
	n := 7
	m := NewMADE(n, 6, r)
	x := make([]int, n)
	r.FillBits(x)
	c := m.NewFlipCache(x)
	if math.Abs(c.LogPsi()-m.LogPsi(x)) > 1e-12 {
		t.Fatal("cache LogPsi mismatch at init")
	}
	for trial := 0; trial < 30; trial++ {
		b := r.Intn(n)
		y := append([]int(nil), c.State()...)
		y[b] = 1 - y[b]
		wantDelta := m.LogPsi(y) - m.LogPsi(c.State())
		if got := c.Delta(b); math.Abs(got-wantDelta) > 1e-10 {
			t.Fatalf("Delta(%d) = %v, want %v", b, got, wantDelta)
		}
		// Delta must not mutate state.
		if math.Abs(c.LogPsi()-m.LogPsi(c.State())) > 1e-12 {
			t.Fatal("Delta mutated cache state")
		}
		c.Flip(b)
		if math.Abs(c.LogPsi()-m.LogPsi(c.State())) > 1e-10 {
			t.Fatal("Flip left cache inconsistent")
		}
	}
}

func TestMADEDegreesValid(t *testing.T) {
	for _, n := range []int{2, 3, 10} {
		m := NewMADE(n, 17, rng.New(uint64(n)))
		for _, d := range m.Degrees() {
			if d < 1 || d > n-1 {
				t.Fatalf("n=%d degree %d out of range [1,%d]", n, d, n-1)
			}
		}
	}
}

func TestMADEFirstOutputIsConstant(t *testing.T) {
	// p_0 has degree 1 and must not depend on any input.
	r := rng.New(9)
	m := NewMADE(6, 8, r)
	s := m.NewScratch()
	x := make([]int, 6)
	m.Forward(x, s)
	z0 := s.Z2[0]
	for trial := 0; trial < 20; trial++ {
		r.FillBits(x)
		m.Forward(x, s)
		if s.Z2[0] != z0 {
			t.Fatal("output 0 depends on inputs")
		}
	}
}

func TestMADESingleSite(t *testing.T) {
	// n = 1: the model is a single Bernoulli with p = sigma(b2).
	m := NewMADE(1, 4, rng.New(10))
	p := 1 / (1 + math.Exp(-m.B2[0]))
	if got := math.Exp(m.LogProb([]int{1})); math.Abs(got-p) > 1e-12 {
		t.Fatalf("pi(1) = %v, want %v", got, p)
	}
	if got := math.Exp(m.LogProb([]int{0})); math.Abs(got-(1-p)) > 1e-12 {
		t.Fatalf("pi(0) = %v, want %v", got, 1-p)
	}
}

func BenchmarkMADEForward(b *testing.B) {
	m := NewMADE(100, 107, rng.New(1))
	s := m.NewScratch()
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, s)
	}
}

func BenchmarkMADEGrad(b *testing.B) {
	m := NewMADE(100, 107, rng.New(1))
	s := m.NewScratch()
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	g := tensor.NewVector(m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GradLogPsiScratch(x, g, s)
	}
}
