package nn

import "fmt"

// KindName returns the stable lowercase family name of a wavefunction
// ("made", "rbm", "nade", "rnn") — the same vocabulary the CLI -model
// flags and the checkpoint kind byte use — or "" for an unknown type.
// The serving layer's model listings and hot-swap validation key off it.
func KindName(wf Wavefunction) string {
	switch wf.(type) {
	case *MADE:
		return "made"
	case *RBM:
		return "rbm"
	case *NADE:
		return "nade"
	case *RNNWavefunction:
		return "rnn"
	}
	return ""
}

// HotSwapParams replaces dst's parameters with src's in place and
// invalidates dst's derived caches — the checkpoint hot-swap primitive the
// serving layer uses to move a live model to a new checkpoint without
// rebuilding evaluators: every BatchEvaluator holding dst sees the new
// parameter version through the InvalidateParams counter and lazily
// rebuilds its transposed-weight caches on next use.
//
// The swap is legal only between models of the same family and
// architecture; (kind, NumSites, NumParams) pins the hidden width for every
// family, so those three checks suffice. dst must not be concurrently
// evaluating — callers serialize the swap against dispatch (the serve
// coalescer applies it as a queue barrier between batches).
func HotSwapParams(dst, src Wavefunction) error {
	dk, sk := KindName(dst), KindName(src)
	if dk == "" {
		return fmt.Errorf("nn: cannot hot-swap into %T", dst)
	}
	if sk == "" {
		return fmt.Errorf("nn: cannot hot-swap from %T", src)
	}
	if dk != sk {
		return fmt.Errorf("nn: hot-swap family mismatch: live model is %s, checkpoint is %s", dk, sk)
	}
	if dst.NumSites() != src.NumSites() || dst.NumParams() != src.NumParams() {
		return fmt.Errorf("nn: hot-swap architecture mismatch: live %s has n=%d d=%d, checkpoint n=%d d=%d",
			dk, dst.NumSites(), dst.NumParams(), src.NumSites(), src.NumParams())
	}
	copy(dst.Params(), src.Params())
	InvalidateParams(dst)
	return nil
}
