package nn

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// batchModel is the full batched contract the autoregressive families share;
// the table-driven suites below run every property over each family through
// this one interface so adding a model is a row, not a file.
type batchModel interface {
	Wavefunction
	CacheBuilder
	BatchEvaluatorBuilder
	FullFlipBatchEvaluatorBuilder
	BatchAncestralBuilder
	NewIncrementalEvaluator() ConditionalEvaluator
}

// autoregFamilies enumerates the autoregressive model families under the
// batched bit-identity doctrine (MADE keeps its original suite in
// batch_test.go; NADE/RNN joined in PR 7).
var autoregFamilies = []struct {
	name  string
	build func(n, h int, r *rng.Rand) batchModel
}{
	{"MADE", func(n, h int, r *rng.Rand) batchModel { return NewMADE(n, h, r) }},
	{"NADE", func(n, h int, r *rng.Rand) batchModel { return NewNADE(n, h, r) }},
	{"RNN", func(n, h int, r *rng.Rand) batchModel { return NewRNN(n, h, r) }},
}

// TestAutoregBatchForwardBitIdentical: LogPsiBatch must equal per-row LogPsi
// and GradLogPsiBatch per-row GradLogPsi with exact ==, for every family x
// batch size x worker count x site count.
func TestAutoregBatchForwardBitIdentical(t *testing.T) {
	for _, fam := range autoregFamilies {
		t.Run(fam.name, func(t *testing.T) {
			for _, n := range siteCounts {
				m := fam.build(n, 6+n/2, rng.New(uint64(500+n)))
				d := m.NumParams()
				for _, workers := range workerCounts {
					e := m.NewBatchEvaluator(workers)
					for _, bs := range batchSizes {
						b := randomConfigs(bs, n, rng.New(uint64(29*bs+n)))
						out := make([]float64, bs)
						e.LogPsiBatch(b, out)
						ows := tensor.NewBatch(bs, d)
						e.GradLogPsiBatch(b, ows)
						want := tensor.NewVector(d)
						for k := 0; k < bs; k++ {
							if lp := m.LogPsi(b.Row(k)); out[k] != lp {
								t.Fatalf("n=%d w=%d B=%d row %d: batched %v != scalar %v",
									n, workers, bs, k, out[k], lp)
							}
							m.GradLogPsi(b.Row(k), want)
							row := ows.Sample(k)
							for i := range want {
								if row[i] != want[i] {
									t.Fatalf("n=%d w=%d B=%d row %d param %d: batched grad %v != scalar %v",
										n, workers, bs, k, i, row[i], want[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestAutoregFlipBatchBitIdentical is the tentpole acceptance matrix:
// FlipLogPsiBatch must match the scalar FlipCache (base and deltas) AND the
// full-recompute oracle evaluator byte for byte, over B in {1,3,64} x
// workers in {1,2,5} x n in {1,2,7,19}, for every family.
func TestAutoregFlipBatchBitIdentical(t *testing.T) {
	for _, fam := range autoregFamilies {
		t.Run(fam.name, func(t *testing.T) {
			for _, n := range siteCounts {
				m := fam.build(n, 4+n, rng.New(uint64(600+n)))
				// All single-bit flips, the TIM local-energy pattern.
				flips := make([]int, n)
				for i := range flips {
					flips[i] = i
				}
				for _, workers := range workerCounts {
					tail := m.NewBatchEvaluator(workers)
					full := m.NewFullFlipBatchEvaluator(workers)
					for _, bs := range batchSizes {
						b := randomConfigs(bs, n, rng.New(uint64(31*bs+n)))
						base := make([]float64, bs)
						delta := make([]float64, bs*n)
						tail.FlipLogPsiBatch(b, flips, base, delta)
						baseF := make([]float64, bs)
						deltaF := make([]float64, bs*n)
						full.FlipLogPsiBatch(b, flips, baseF, deltaF)
						cache := m.NewFlipCache(b.Row(0))
						for k := 0; k < bs; k++ {
							if k > 0 {
								cache.Reset(b.Row(k))
							}
							if base[k] != cache.LogPsi() {
								t.Fatalf("n=%d w=%d B=%d row %d: batched base %v != cache %v",
									n, workers, bs, k, base[k], cache.LogPsi())
							}
							if base[k] != baseF[k] {
								t.Fatalf("n=%d w=%d B=%d row %d: tail base %v != oracle base %v",
									n, workers, bs, k, base[k], baseF[k])
							}
							for f, bit := range flips {
								if want := cache.Delta(bit); delta[k*n+f] != want {
									t.Fatalf("n=%d w=%d B=%d row %d flip %d: batched delta %v != cache %v",
										n, workers, bs, k, bit, delta[k*n+f], want)
								}
								if delta[k*n+f] != deltaF[k*n+f] {
									t.Fatalf("n=%d w=%d B=%d row %d flip %d: tail delta %v != oracle %v",
										n, workers, bs, k, bit, delta[k*n+f], deltaF[k*n+f])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestAutoregFlipBatchRandomSites pins the tail-only flip paths against
// fresh LogPsi for RANDOM flip-site subsets (repeats included), nil base
// included — the QUBO/mixed-Hamiltonian pattern.
func TestAutoregFlipBatchRandomSites(t *testing.T) {
	for _, fam := range autoregFamilies {
		t.Run(fam.name, func(t *testing.T) {
			r := rng.New(43)
			for _, n := range siteCounts {
				m := fam.build(n, 6+n, r.Split())
				e := m.NewBatchEvaluator(3)
				y := make([]int, n)
				for _, bs := range batchSizes {
					nf := 1 + r.Intn(n)
					flips := make([]int, nf)
					for f := range flips {
						flips[f] = r.Intn(n)
					}
					b := randomConfigs(bs, n, r.Split())
					base := make([]float64, bs)
					delta := make([]float64, bs*nf)
					e.FlipLogPsiBatch(b, flips, base, delta)
					// nil base must leave the deltas unchanged.
					delta2 := make([]float64, bs*nf)
					e.FlipLogPsiBatch(b, flips, nil, delta2)
					for i := range delta {
						if delta[i] != delta2[i] {
							t.Fatalf("n=%d B=%d: nil-base delta %d differs: %v != %v",
								n, bs, i, delta2[i], delta[i])
						}
					}
					for k := 0; k < bs; k++ {
						baseWant := m.LogPsi(b.Row(k))
						if base[k] != baseWant {
							t.Fatalf("n=%d B=%d row %d: base %v != fresh %v", n, bs, k, base[k], baseWant)
						}
						for f, bit := range flips {
							copy(y, b.Row(k))
							y[bit] = 1 - y[bit]
							want := m.LogPsi(y) - baseWant
							if delta[k*nf+f] != want {
								t.Fatalf("n=%d B=%d row %d flip site %d: delta %v != fresh %v",
									n, bs, k, bit, delta[k*nf+f], want)
							}
						}
					}
				}
			}
		})
	}
}

// TestAutoregBatchAncestralBitIdentical: fed the same uniforms, each
// family's batched site-major sampler must produce exactly the bits of its
// scalar incremental evaluator walked sample-major.
func TestAutoregBatchAncestralBitIdentical(t *testing.T) {
	for _, fam := range autoregFamilies {
		t.Run(fam.name, func(t *testing.T) {
			for _, n := range siteCounts {
				m := fam.build(n, 6+n, rng.New(uint64(700+n)))
				bsmp := m.NewBatchAncestralSampler()
				for _, bs := range batchSizes {
					u := make([]float64, bs*n)
					rng.New(uint64(37*bs+n)).FillUniform(u, 0, 1)
					want := make([]int, bs*n)
					ev := m.NewIncrementalEvaluator()
					for k := 0; k < bs; k++ {
						ev.Reset()
						for i := 0; i < n; i++ {
							bit := 0
							if u[k*n+i] < ev.Prob(i) {
								bit = 1
							}
							want[k*n+i] = bit
							ev.Fix(i, bit)
						}
					}
					for _, workers := range workerCounts {
						b := ConfigBatch{N: bs, Sites: n, Bits: make([]int, bs*n)}
						bsmp.Sample(b, u, workers)
						for i := range want {
							if b.Bits[i] != want[i] {
								t.Fatalf("n=%d B=%d w=%d: bit %d = %d, scalar %d",
									n, bs, workers, i, b.Bits[i], want[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestAutoregTailFlipCacheExactRegression pins every family's tail-only
// flip cache against fresh LogPsi with exact == across arbitrary
// interleavings of Flip, Delta and Reset (the MADE-only original lives in
// batch_test.go; this is the family matrix).
func TestAutoregTailFlipCacheExactRegression(t *testing.T) {
	for _, fam := range autoregFamilies {
		t.Run(fam.name, func(t *testing.T) {
			r := rng.New(11)
			for _, n := range siteCounts {
				m := fam.build(n, 5+n, r.Split())
				x := make([]int, n)
				r.FillBits(x)
				c := m.NewFlipCache(x).(TailFlipCache)
				y := make([]int, n)
				for trial := 0; trial < 200; trial++ {
					if c.LogPsi() != m.LogPsi(c.State()) {
						t.Fatalf("n=%d trial %d: cache logPsi %v != fresh %v",
							n, trial, c.LogPsi(), m.LogPsi(c.State()))
					}
					bit := r.Intn(n)
					copy(y, c.State())
					y[bit] = 1 - y[bit]
					if got, want := c.FlipLogPsi(bit), m.LogPsi(y); got != want {
						t.Fatalf("n=%d trial %d: FlipLogPsi(%d) = %v != fresh %v", n, trial, bit, got, want)
					}
					if got, want := c.Delta(bit), m.LogPsi(y)-c.LogPsi(); got != want {
						t.Fatalf("n=%d trial %d: Delta(%d) = %v != fresh difference %v", n, trial, bit, got, want)
					}
					switch trial % 3 {
					case 0:
						c.Flip(bit)
					case 1:
						r.FillBits(y)
						c.Reset(y)
					}
				}
			}
		})
	}
}

// TestNADETransposedCacheInvalidation: NADE's V^T/W^T caches must rebuild
// after InvalidateParams and must poison results if it is NOT called — the
// teeth that prove the version counter is load-bearing (the RNN needs no
// such test: its batched path aliases theta directly).
func TestNADETransposedCacheInvalidation(t *testing.T) {
	n := 6
	m := NewNADE(n, 8, rng.New(15))
	e := m.NewBatchEvaluator(2)
	b := randomConfigs(4, n, rng.New(16))
	out := make([]float64, 4)
	e.LogPsiBatch(b, out) // builds the caches

	m.Params()[0] += 0.125
	InvalidateParams(m)
	e.LogPsiBatch(b, out)
	for k := 0; k < 4; k++ {
		if want := m.LogPsi(b.Row(k)); out[k] != want {
			t.Fatalf("after invalidation row %d: batched %v != scalar %v", k, out[k], want)
		}
	}

	m.Params()[0] += 0.125
	e.LogPsiBatch(b, out)
	stale := false
	for k := 0; k < 4; k++ {
		if out[k] != m.LogPsi(b.Row(k)) {
			stale = true
		}
	}
	if !stale {
		t.Fatal("stale transposed cache still matched fresh weights; cache is not engaged")
	}
	InvalidateParams(m)
}

// FuzzNADEPrefixResume fuzzes the NADE prefix-resume invariant the tail-only
// doctrine rests on: for any configuration and flip site, the cache's
// resumed FlipLogPsi must equal a fresh LogPsi of the flipped configuration
// with exact ==, and committing the flip must land the cache on exactly the
// fresh base of the new configuration.
func FuzzNADEPrefixResume(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint8(0))
	f.Add(uint64(7), uint64(0x5a5a5a5a), uint8(3))
	f.Add(uint64(19), uint64(0xffffffffffffffff), uint8(18))
	f.Fuzz(func(t *testing.T, seed, xbits uint64, bitRaw uint8) {
		n := 1 + int(seed%19)
		bit := int(bitRaw) % n
		m := NewNADE(n, 5+n/2, rng.New(seed))
		x := make([]int, n)
		for i := range x {
			x[i] = int(xbits>>uint(i)) & 1
		}
		c := m.NewFlipCache(x).(TailFlipCache)
		y := make([]int, n)
		copy(y, x)
		y[bit] = 1 - y[bit]
		if got, want := c.FlipLogPsi(bit), m.LogPsi(y); got != want {
			t.Fatalf("n=%d bit=%d: FlipLogPsi %v != fresh %v", n, bit, got, want)
		}
		c.Flip(bit)
		if got, want := c.LogPsi(), m.LogPsi(y); got != want {
			t.Fatalf("n=%d bit=%d: post-Flip LogPsi %v != fresh %v", n, bit, got, want)
		}
	})
}
