package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// rnnBatchEvaluator is the RNN's BatchEvaluator. The recurrence is
// site-major by construction, so the batched path keeps the whole slab's
// B x h hidden state resident and fuses each step's Wh matvecs into one
// B-row GEMM against Wh (tensor.MatMulT accumulates each element over the
// hidden index in the exact ascending order MulVec uses), finishing the
// step with the scalar stepActivate per row — shared verbatim with the
// scalar path, so the states are bitwise identical. The per-site output
// dots V . s batch the same way against a 1 x h matrix view of V (no
// transposed caches needed: both operands alias theta directly). All values
// are bitwise identical to the scalar paths; see the BatchEvaluator
// contract.
type rnnBatchEvaluator struct {
	m       *RNNWavefunction
	workers int
	// fullFlip disables the tail-only flip evaluation and replays every flip
	// row's recurrence from s_0 with a full log-probability fold — the
	// differential-test oracle. Outputs are bitwise identical to the
	// tail-only path (the tail resume is an exact suffix of the full fold).
	fullFlip bool
	// Slab workspaces, grown on demand and reused across calls: bufS/bufPre
	// back the base recurrence (hidden states and step pre-activations),
	// bufZc the per-site output-dot column, bufZ the recorded base
	// pre-activations, bufP the per-row log-probability prefix sums, bufSnap
	// the per-site hidden-state snapshots the tail-only flip groups resume
	// from, bufSf/bufLp the flip-group states and folds, and bufBase stages
	// the base log-psi when the caller passes nil.
	bufS, bufPre, bufZc []float64
	bufZ, bufP, bufSnap []float64
	bufSf, bufLp        []float64
	bufBase             []float64
	gs                  []*RNNScratch // per-worker backward scratch
}

// NewBatchEvaluator implements BatchEvaluatorBuilder. workers bounds the
// internal fan-out (<= 0 means GOMAXPROCS) and does not affect any output
// value. The evaluator is not safe for concurrent use.
func (m *RNNWavefunction) NewBatchEvaluator(workers int) BatchEvaluator {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	e := &rnnBatchEvaluator{m: m, workers: workers, gs: make([]*RNNScratch, workers)}
	for w := 0; w < workers; w++ {
		e.gs[w] = m.NewScratch()
	}
	return e
}

// NewFullFlipBatchEvaluator implements FullFlipBatchEvaluatorBuilder: a
// BatchEvaluator whose FlipLogPsiBatch replays every flip row's recurrence
// from s_0 instead of resuming from the per-site state snapshots. Bitwise
// identical to NewBatchEvaluator — the differential-testing oracle and A/B
// perf baseline for the tail-only path.
func (m *RNNWavefunction) NewFullFlipBatchEvaluator(workers int) BatchEvaluator {
	e := m.NewBatchEvaluator(workers).(*rnnBatchEvaluator)
	e.fullFlip = true
	return e
}

// vMat views the output projection V as a 1 x h matrix (aliasing theta, so
// it is always current — no InvalidateParams bookkeeping needed).
func (e *rnnBatchEvaluator) vMat() *tensor.Matrix {
	return &tensor.Matrix{Rows: 1, Cols: e.m.h, Data: e.m.V}
}

// initRows fills rows [0, s) of st with the initial hidden state s_0.
func (e *rnnBatchEvaluator) initRows(st *tensor.Matrix, s int) {
	m := e.m
	parallel.For(s, e.workers, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			copy(st.Row(si), m.S0)
		}
	})
}

// LogPsiBatch implements BatchEvaluator; out[k] matches LogPsi(row k)
// bitwise.
func (e *rnnBatchEvaluator) LogPsiBatch(b ConfigBatch, out []float64) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: LogPsiBatch sites mismatch")
	}
	if len(out) != b.N {
		panic("nn: LogPsiBatch output length mismatch")
	}
	vmat := e.vMat()
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		s := hi - lo
		st := growMat(&e.bufS, s, m.h)
		pre := growMat(&e.bufPre, s, m.h)
		zc := growMat(&e.bufZc, s, 1)
		e.initRows(st, s)
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				out[lo+si] = 0
			}
		})
		for i := 0; i < m.n; i++ {
			// Both GEMMs read the pre-step states; the row loop then folds
			// site i's term and (except at the last site) activates the step.
			tensor.MatMulT(zc, st, vmat, e.workers)
			if i < m.n-1 {
				tensor.MatMulT(pre, st, m.Wh, e.workers)
			}
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					bit := b.Row(lo + si)[i]
					out[lo+si] += condTerm(zc.Data[si]+m.Bout[i], bit)
					if i < m.n-1 {
						m.stepActivate(st.Row(si), pre.Row(si), bit)
					}
				}
			})
		}
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				out[lo+si] *= 0.5
			}
		})
	}
}

// GradLogPsiBatch implements BatchEvaluator. The BPTT backward is
// inherently per-row (the recorded states differ per sample), so the
// batched path shares the scalar GradLogPsiScratch verbatim across
// per-worker scratches — the rbm_batch.go shape.
func (e *rnnBatchEvaluator) GradLogPsiBatch(b ConfigBatch, ows *tensor.Batch) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: GradLogPsiBatch sites mismatch")
	}
	if ows.N != b.N || ows.Dim != m.NumParams() {
		panic("nn: GradLogPsiBatch ows shape mismatch")
	}
	ranges := parallel.Partition(b.N, e.workers)
	parallel.ForEach(len(ranges), e.workers, func(w int) {
		s := e.gs[w]
		for r := ranges[w].Lo; r < ranges[w].Hi; r++ {
			m.GradLogPsiScratch(b.Row(r), ows.Sample(r), s)
		}
	})
}

// FlipLogPsiBatch implements BatchEvaluator under the tail-only flip
// convention. The base pass runs the recurrence once per slab, recording
// every site's output pre-activation, the per-row log-probability prefix
// sums, and (for flipped sites) the B x h hidden-state snapshot s_b the
// site's conditional reads. Each flip group then re-branches the flipped
// site on the UNCHANGED base pre-activation — a flip of bit b cannot touch
// s_i for i <= b — restarts the recurrence from the snapshot consuming the
// flipped bit, and re-runs only the O((n-b) h^2) tail as B-row GEMMs
// against Wh, resuming each row's fold from its recorded prefix. Flipped
// log-psi values are bitwise identical to a fresh LogPsi of the flipped
// configuration, and the emitted deltas subtract the base exactly as the
// scalar FlipCache.Delta does.
func (e *rnnBatchEvaluator) FlipLogPsiBatch(b ConfigBatch, flips []int, base, delta []float64) {
	m := e.m
	nf := len(flips)
	if b.Sites != m.n {
		panic("nn: FlipLogPsiBatch sites mismatch")
	}
	if (base != nil && len(base) != b.N) || len(delta) != b.N*nf {
		panic("nn: FlipLogPsiBatch output length mismatch")
	}
	if base == nil {
		// The RNN's deltas subtract the base log-psi, and the prefix fold
		// computes it as a byproduct — stage it in a reusable buffer.
		if cap(e.bufBase) < b.N {
			e.bufBase = make([]float64, b.N)
		}
		base = e.bufBase[:b.N]
	}
	vmat := e.vMat()
	needSnap := make([]bool, m.n)
	for _, bit := range flips {
		needSnap[bit] = true
	}
	slab := batchSlabRows / (nf + 1)
	if slab < 1 {
		slab = 1
	}
	for lo := 0; lo < b.N; lo += slab {
		hi := lo + slab
		if hi > b.N {
			hi = b.N
		}
		s := hi - lo
		st := growMat(&e.bufS, s, m.h)
		pre := growMat(&e.bufPre, s, m.h)
		zc := growMat(&e.bufZc, s, 1)
		z := growMat(&e.bufZ, s, m.n)
		p := growMat(&e.bufP, s, m.n+1)
		var snap *tensor.Matrix
		if !e.fullFlip && nf > 0 {
			snap = growMat(&e.bufSnap, m.n*s, m.h)
		}
		// Base recurrence, recording z, prefix sums, and snapshot bands.
		e.initRows(st, s)
		for i := 0; i < m.n; i++ {
			if snap != nil && needSnap[i] {
				copy(snap.Data[i*s*m.h:(i+1)*s*m.h], st.Data[:s*m.h])
			}
			tensor.MatMulT(zc, st, vmat, e.workers)
			if i < m.n-1 {
				tensor.MatMulT(pre, st, m.Wh, e.workers)
			}
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					prow := p.Row(si)
					if i == 0 {
						prow[0] = 0
					}
					bit := b.Row(lo + si)[i]
					zv := zc.Data[si] + m.Bout[i]
					z.Row(si)[i] = zv
					prow[i+1] = prow[i] + condTerm(zv, bit)
					if i < m.n-1 {
						m.stepActivate(st.Row(si), pre.Row(si), bit)
					}
				}
			})
		}
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				base[lo+si] = 0.5 * p.Row(si)[m.n]
			}
		})
		if nf == 0 {
			continue
		}
		sf := growMat(&e.bufSf, s, m.h)
		lpf := growMat(&e.bufLp, s, 1)
		for f, bit := range flips {
			j0 := bit + 1
			if e.fullFlip {
				// Oracle: replay the whole recurrence from s_0 with the
				// flipped bit substituted at its site.
				e.initRows(sf, s)
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						lpf.Data[si] = 0
					}
				})
				j0 = 0
			} else {
				// Tail-only: re-branch site bit on the unchanged base
				// pre-activation, restart the recurrence from the recorded
				// s_bit snapshot consuming the flipped bit, resume the fold
				// from the recorded prefix.
				snapBand := snap.Data[bit*s*m.h : (bit+1)*s*m.h]
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						nb := 1 - b.Row(lo+si)[bit]
						lpf.Data[si] = p.Row(si)[bit] + condTerm(z.Row(si)[bit], nb)
						copy(sf.Row(si), snapBand[si*m.h:(si+1)*m.h])
					}
				})
				if bit < m.n-1 {
					tensor.MatMulT(pre, sf, m.Wh, e.workers)
					parallel.For(s, e.workers, func(slo, shi int) {
						for si := slo; si < shi; si++ {
							nb := 1 - b.Row(lo+si)[bit]
							m.stepActivate(sf.Row(si), pre.Row(si), nb)
						}
					})
				}
			}
			for j := j0; j < m.n; j++ {
				tensor.MatMulT(zc, sf, vmat, e.workers)
				if j < m.n-1 {
					tensor.MatMulT(pre, sf, m.Wh, e.workers)
				}
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						bj := b.Row(lo + si)[j]
						if j == bit {
							bj = 1 - bj
						}
						lpf.Data[si] += condTerm(zc.Data[si]+m.Bout[j], bj)
						if j < m.n-1 {
							m.stepActivate(sf.Row(si), pre.Row(si), bj)
						}
					}
				})
			}
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					delta[(lo+si)*nf+f] = 0.5*lpf.Data[si] - base[lo+si]
				}
			})
		}
	}
}

// rnnBatchAncestral advances all samples of a batch site-by-site: one B-row
// GEMM against Wh per recurrence step over the resident B x h hidden state,
// with the per-sample arithmetic exactly the incremental evaluator's
// (outputZ + stepState), so given the same uniforms the sampled bits are
// identical to scalar ancestral sampling.
type rnnBatchAncestral struct {
	m                  *RNNWavefunction
	bufS, bufPre, bufZ []float64
}

// NewBatchAncestralSampler implements BatchAncestralBuilder.
func (m *RNNWavefunction) NewBatchAncestralSampler() BatchAncestralSampler {
	return &rnnBatchAncestral{m: m}
}

// Sample implements BatchAncestralSampler.
func (a *rnnBatchAncestral) Sample(b ConfigBatch, u []float64, workers int) {
	m := a.m
	if b.Sites != m.n {
		panic("nn: batched ancestral sites mismatch")
	}
	if len(u) < b.N*m.n {
		panic("nn: batched ancestral uniforms too short")
	}
	vmat := &tensor.Matrix{Rows: 1, Cols: m.h, Data: m.V}
	st := growMat(&a.bufS, b.N, m.h)
	pre := growMat(&a.bufPre, b.N, m.h)
	zc := growMat(&a.bufZ, b.N, 1)
	parallel.For(b.N, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			copy(st.Row(r), m.S0)
		}
	})
	for i := 0; i < m.n; i++ {
		tensor.MatMulT(zc, st, vmat, workers)
		if i < m.n-1 {
			tensor.MatMulT(pre, st, m.Wh, workers)
		}
		parallel.For(b.N, workers, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				pr := 1 / (1 + math.Exp(-(zc.Data[r] + m.Bout[i])))
				bit := 0
				if u[r*m.n+i] < pr {
					bit = 1
				}
				b.Bits[r*b.Sites+i] = bit
				if i < m.n-1 {
					m.stepActivate(st.Row(r), pre.Row(r), bit)
				}
			}
		})
	}
}

var (
	_ BatchEvaluatorBuilder         = (*RNNWavefunction)(nil)
	_ FullFlipBatchEvaluatorBuilder = (*RNNWavefunction)(nil)
	_ BatchAncestralBuilder         = (*RNNWavefunction)(nil)
)
