package nn

import (
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// batchSlabRows caps the number of network rows materialized at once by the
// batched evaluator, bounding workspace memory independently of the batch
// size (a B=1024, n=32 TIM flip super-batch is 33k rows; slabs keep the
// activations a few MB). Rows are independent, so slabbing cannot change a
// single output bit.
const batchSlabRows = 4096

// growMat returns a rows x cols matrix view over buf, growing it as needed.
// Contents are fully overwritten by the kernels, so no zeroing happens.
func growMat(buf *[]float64, rows, cols int) *tensor.Matrix {
	need := rows * cols
	if cap(*buf) < need {
		*buf = make([]float64, need)
	}
	return &tensor.Matrix{Rows: rows, Cols: cols, Data: (*buf)[:need]}
}

// reluRows applies ReLU to every row of m in parallel.
func reluRows(m *tensor.Matrix, workers int) {
	parallel.For(m.Rows, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			tensor.ReLU(m.Row(r))
		}
	})
}

// logProbFromZ2F is logProbFromZ2 for a float-encoded configuration (the
// flip super-batch stores inputs as the exact 0.0/1.0 floats the GEMM
// consumed, so the branch decisions match the int version bit-for-bit).
func logProbFromZ2F(xf []float64, z2 tensor.Vector) float64 {
	var lp float64
	for j, b := range xf {
		if b == 1 {
			lp += logSigmoid(z2[j])
		} else {
			lp += logSigmoid(-z2[j])
		}
	}
	return lp
}

// madeBatchEvaluator is MADE's BatchEvaluator: it fuses the per-sample
// masked matvecs of a whole batch into blocked GEMMs against the cached
// masked weights (see MADE.maskedWeights), slab by slab. All values are
// bitwise identical to the scalar paths; see the BatchEvaluator contract.
type madeBatchEvaluator struct {
	m       *MADE
	workers int
	// fullFlip disables the tail-only flip evaluation and recomputes every
	// flip row with full GEMMs and a full log-probability fold — the PR 4
	// reference path. Outputs are bitwise identical to the tail-only path
	// (the tail-only fold is an exact suffix of the full fold), so it
	// serves as the differential-test oracle and the A/B perf baseline.
	fullFlip bool
	// Slab workspaces, grown on demand and reused across calls: bufXF/Z1/A/
	// Z2 back the dense forward, bufZB1/ZB2 the flip super-batch layers,
	// bufP the per-row log-probability prefix sums, bufXB the base float
	// configurations of a flip slab, and bufPre the per-site layer-1
	// prefix snapshots the tail-only flip rows resume from.
	bufXF, bufZ1, bufA, bufZ2 []float64
	bufZB1, bufZB2, bufP      []float64
	bufXB, bufPre, bufPre2    []float64
	bufBase                   []float64
	dz2, da                   []tensor.Vector // per-worker backward scratch
}

// NewBatchEvaluator implements BatchEvaluatorBuilder. workers bounds the
// internal fan-out (<= 0 means GOMAXPROCS) and does not affect any output
// value. The evaluator is not safe for concurrent use.
func (m *MADE) NewBatchEvaluator(workers int) BatchEvaluator {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	e := &madeBatchEvaluator{m: m, workers: workers,
		dz2: make([]tensor.Vector, workers), da: make([]tensor.Vector, workers)}
	for w := 0; w < workers; w++ {
		e.dz2[w] = tensor.NewVector(m.n)
		e.da[w] = tensor.NewVector(m.h)
	}
	return e
}

// NewFullFlipBatchEvaluator returns a BatchEvaluator whose FlipLogPsiBatch
// recomputes every flip row in full (two dense GEMMs over all output sites
// plus a full log-sigmoid fold) instead of the mask-aware tail. It produces
// bitwise the same outputs as NewBatchEvaluator — the tail-only path is
// provably an exact suffix of the full fold — and exists as the
// differential-testing oracle and the pre-tail-only (PR 4) performance
// baseline for cmd/vqmcbench.
func (m *MADE) NewFullFlipBatchEvaluator(workers int) BatchEvaluator {
	e := m.NewBatchEvaluator(workers).(*madeBatchEvaluator)
	e.fullFlip = true
	return e
}

// toFloats converts configuration rows [lo, hi) of b into xf rows [0, ...).
func (e *madeBatchEvaluator) toFloats(b ConfigBatch, lo, hi int, xf *tensor.Matrix) {
	parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			x := b.Row(lo + r)
			row := xf.Row(r)
			for i, bit := range x {
				row[i] = float64(bit)
			}
		}
	})
}

// forwardSlab runs the dense two-GEMM forward for rows [lo, hi) of b,
// returning the xf/z1/a/z2 slab views (z1 is the pre-activation, a the
// ReLU activation). The arithmetic per row is exactly MADE.Forward's.
func (e *madeBatchEvaluator) forwardSlab(b ConfigBatch, lo, hi int, needPre bool) (xf, z1, a, z2 *tensor.Matrix) {
	m := e.m
	rows := hi - lo
	wm1t, wm2t := m.maskedWeights()
	xf = growMat(&e.bufXF, rows, m.n)
	z1 = growMat(&e.bufZ1, rows, m.h)
	z2 = growMat(&e.bufZ2, rows, m.n)
	e.toFloats(b, lo, hi, xf)
	tensor.MatMul(z1, xf, wm1t, e.workers)
	tensor.AddRowBias(z1, m.B1, e.workers)
	if needPre {
		// The backward pass needs the activation alongside the ReLU gate,
		// so materialize it (the scalar Forward's copy+ReLU); otherwise the
		// fused MatMulReLU consumes the pre-activation directly.
		a = growMat(&e.bufA, rows, m.h)
		copy(a.Data, z1.Data)
		reluRows(a, e.workers)
	} else {
		a = z1
	}
	tensor.MatMulReLU(z2, a, wm2t, e.workers)
	tensor.AddRowBias(z2, m.B2, e.workers)
	return xf, z1, a, z2
}

// LogPsiBatch implements BatchEvaluator; out[k] matches LogPsi(row k)
// bitwise.
func (e *madeBatchEvaluator) LogPsiBatch(b ConfigBatch, out []float64) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: LogPsiBatch sites mismatch")
	}
	if len(out) != b.N {
		panic("nn: LogPsiBatch output length mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		_, _, _, z2 := e.forwardSlab(b, lo, hi, false)
		parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				out[lo+r] = 0.5 * logProbFromZ2(b.Row(lo+r), z2.Row(r))
			}
		})
	}
}

// GradLogPsiBatch implements BatchEvaluator: the forward runs as two
// blocked GEMMs shared across the slab, then the analytic backward
// (gradFromForward, the same code the scalar path runs) fills each ows row.
func (e *madeBatchEvaluator) GradLogPsiBatch(b ConfigBatch, ows *tensor.Batch) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: GradLogPsiBatch sites mismatch")
	}
	if ows.N != b.N || ows.Dim != m.NumParams() {
		panic("nn: GradLogPsiBatch ows shape mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		_, z1, a, z2 := e.forwardSlab(b, lo, hi, true)
		ranges := parallel.Partition(hi-lo, e.workers)
		parallel.ForEach(len(ranges), e.workers, func(w int) {
			dz2, da := e.dz2[w], e.da[w]
			for r := ranges[w].Lo; r < ranges[w].Hi; r++ {
				grad := ows.Sample(lo + r)
				m.gradFromForward(b.Row(lo+r), z1.Row(r), a.Row(r), z2.Row(r), dz2, da, grad)
				grad.Scale(0.5)
			}
		})
	}
}

// FlipLogPsiBatch implements BatchEvaluator under the tail-only flip
// convention. Base rows run the fresh two-GEMM forward (the flip cache's
// base convention) and record the per-site prefix sums of the
// log-probability fold. Flip rows are laid out group-major (all B rows of
// flip f contiguous) so each group shares one column range: layer 1 is
// seeded by copying the base pre-activations and recomputing only the
// hidden-unit runs whose mask sees the flipped bit (MADE.flipRuns), layer 2
// runs a column-range GEMM over output sites j > b only, and the fold
// resumes from the base prefix p[b] — on average halving layer-2 and
// log-sigmoid work while producing flipped log-psi values bitwise identical
// to a fresh LogPsi. The emitted deltas subtract the base exactly as the
// scalar FlipCache.Delta does.
func (e *madeBatchEvaluator) FlipLogPsiBatch(b ConfigBatch, flips []int, base, delta []float64) {
	m := e.m
	nf := len(flips)
	if b.Sites != m.n {
		panic("nn: FlipLogPsiBatch sites mismatch")
	}
	if (base != nil && len(base) != b.N) || len(delta) != b.N*nf {
		panic("nn: FlipLogPsiBatch output length mismatch")
	}
	if base == nil {
		// MADE's deltas subtract the base log-psi, and the prefix fold
		// computes it as a byproduct — stage it in a reusable buffer.
		if cap(e.bufBase) < b.N {
			e.bufBase = make([]float64, b.N)
		}
		base = e.bufBase[:b.N]
	}
	wm1t, wm2t := m.maskedWeights()
	// Layer-2 prefix snapshots are taken at the first hidden unit each
	// flip bit can change (the start of its first flipRuns range): every
	// unit before it is bitwise untouched by that flip, so the flip row's
	// layer-2 fold can resume from the base fold there.
	maxK0 := -1
	needSnap := make([]bool, m.h)
	needPre := make([]bool, m.n)
	for _, bit := range flips {
		if runs := m.flipRuns[bit]; len(runs) > 0 {
			needPre[bit] = true
			k0 := runs[0][0]
			needSnap[k0] = true
			if k0 > maxK0 {
				maxK0 = k0
			}
		}
	}
	slab := batchSlabRows / (nf + 1)
	if slab < 1 {
		slab = 1
	}
	for lo := 0; lo < b.N; lo += slab {
		hi := lo + slab
		if hi > b.N {
			hi = b.N
		}
		s := hi - lo
		// Fresh base forward. The tail-only path runs layer 1 as an
		// explicit ascending-site fold so it can snapshot, for every site
		// i, the partial sums over inputs < i (pre rows [i*s, (i+1)*s)):
		// a flip of bit i resumes each element's accumulation chain from
		// that snapshot, which is bitwise the same chain MatMul runs. The
		// fold adds wm1t row i to every sample with bit i set — exactly
		// MatMul's ascending-k skip-zero / multiply-elided accumulation.
		xfb := growMat(&e.bufXB, s, m.n)
		e.toFloats(b, lo, hi, xfb)
		zb1 := growMat(&e.bufZ1, s, m.h)
		var pre *tensor.Matrix
		if e.fullFlip || nf == 0 {
			tensor.MatMul(zb1, xfb, wm1t, e.workers)
		} else {
			pre = growMat(&e.bufPre, m.n*s, m.h)
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					row := zb1.Row(si)
					for k := range row {
						row[k] = 0
					}
				}
			})
			for i := 0; i < m.n; i++ {
				if needPre[i] {
					// Only sites actually flipped (with a non-empty run)
					// are ever resumed from; skip the other bands' copies.
					copy(pre.Data[i*s*m.h:(i+1)*s*m.h], zb1.Data[:s*m.h])
				}
				// Input i's mask support is exactly flipRuns[i] (units of
				// degree > i); the masked-out weights are +/-0, so adding
				// only the support is bitwise MatMul's full-row add.
				wrow := wm1t.Row(i)
				iruns := m.flipRuns[i]
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						if xfb.Row(si)[i] == 1 {
							drow := zb1.Row(si)
							for _, run := range iruns {
								dst := drow[run[0]:run[1]]
								src := wrow[run[0]:run[1]]
								for k := range dst {
									dst[k] += src[k]
								}
							}
						}
					}
				})
			}
		}
		tensor.AddRowBias(zb1, m.B1, e.workers)
		// Base layer 2, with the tail-only path running the explicit
		// ascending-unit fold (bitwise MatMulReLU's chain) so it can
		// snapshot the partial sums the flip rows resume from.
		zb2 := growMat(&e.bufZ2, s, m.n)
		var pre2 *tensor.Matrix
		if e.fullFlip || nf == 0 || maxK0 < 0 {
			tensor.MatMulReLU(zb2, zb1, wm2t, e.workers)
		} else {
			pre2 = growMat(&e.bufPre2, (maxK0+1)*s, m.n)
			parallel.For(s, e.workers, func(slo, shi int) {
				for si := slo; si < shi; si++ {
					row := zb2.Row(si)
					for j := range row {
						row[j] = 0
					}
				}
			})
			for k := 0; k < m.h; k++ {
				if k <= maxK0 && needSnap[k] {
					copy(pre2.Data[k*s*m.n:(k+1)*s*m.n], zb2.Data[:s*m.n])
				}
				// Unit k's layer-2 mask support is the output suffix
				// [deg(k), n) (empty at degree 0); masked-out weights are
				// +/-0, so restricting the add is bitwise MatMulReLU.
				d0 := m.deg[k]
				if d0 == 0 {
					continue
				}
				wsub := wm2t.Row(k)[d0:]
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						if av := zb1.Row(si)[k]; av > 0 {
							dsub := zb2.Row(si)[d0:]
							for j, wv := range wsub {
								dsub[j] += av * wv
							}
						}
					}
				})
			}
		}
		tensor.AddRowBias(zb2, m.B2, e.workers)
		p := growMat(&e.bufP, s, m.n+1)
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				x := b.Row(lo + si)
				zrow := zb2.Row(si)
				prow := p.Row(si)
				var lp float64
				prow[0] = 0
				for j, xb := range x {
					if xb == 1 {
						lp += logSigmoid(zrow[j])
					} else {
						lp += logSigmoid(-zrow[j])
					}
					prow[j+1] = lp
				}
				base[lo+si] = 0.5 * lp
			}
		})
		if nf == 0 {
			continue
		}
		fr := s * nf
		xff := growMat(&e.bufXF, fr, m.n)
		zf1 := growMat(&e.bufZB1, fr, m.h)
		zf2 := growMat(&e.bufZB2, fr, m.n)
		// Group-major super-batch: row f*s+si is sample si with bit
		// flips[f] flipped. In tail-only mode layer 1 is seeded with the
		// base pre-activations — bitwise valid for every hidden unit the
		// mask hides from the flipped bit — and only the flipRuns columns
		// are recomputed; the full-flip reference recomputes everything
		// with whole-super-batch GEMMs (the PR 4 shape).
		parallel.For(fr, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				f, si := r/s, r%s
				x := b.Row(lo + si)
				row := xff.Row(r)
				for i, xb := range x {
					row[i] = float64(xb)
				}
				row[flips[f]] = float64(1 - x[flips[f]])
				if !e.fullFlip {
					copy(zf1.Row(r), zb1.Row(si))
				}
			}
		})
		if e.fullFlip {
			tensor.MatMul(zf1, xff, wm1t, e.workers)
			tensor.AddRowBias(zf1, m.B1, e.workers)
			tensor.MatMulReLU(zf2, zf1, wm2t, e.workers)
			tensor.AddRowBias(zf2, m.B2, e.workers)
		} else {
			for f, bit := range flips {
				xb := &tensor.Matrix{Rows: s, Cols: m.n, Data: xff.Data[f*s*m.n : (f+1)*s*m.n]}
				z1b := &tensor.Matrix{Rows: s, Cols: m.h, Data: zf1.Data[f*s*m.h : (f+1)*s*m.h]}
				z2b := &tensor.Matrix{Rows: s, Cols: m.n, Data: zf2.Data[f*s*m.n : (f+1)*s*m.n]}
				runs := m.flipRuns[bit]
				if len(runs) == 0 {
					// No hidden unit sees this bit: every tail output
					// pre-activation is bitwise the base one; only the
					// flipped site's term re-branches, which the fold stage
					// reads from zb2 directly.
					if bit+1 < m.n {
						parallel.For(s, e.workers, func(slo, shi int) {
							for si := slo; si < shi; si++ {
								copy(z2b.Row(si)[bit+1:], zb2.Row(si)[bit+1:])
							}
						})
					}
					continue
				}
				{
					// Changed hidden columns: restart each element from the
					// base fold's snapshot before site `bit`, re-run the
					// suffix of the accumulation chain against the flipped
					// float row (identical adds for every site > bit), then
					// apply the bias — bitwise the fresh layer-1 fold at a
					// fraction of its cost. Unchanged columns keep the base
					// z1 bytes they were seeded with.
					preBand := pre.Data[bit*s*m.h : (bit+1)*s*m.h]
					parallel.For(s, e.workers, func(slo, shi int) {
						for si := slo; si < shi; si++ {
							zrow := z1b.Row(si)
							prow := preBand[si*m.h : (si+1)*m.h]
							for _, run := range runs {
								copy(zrow[run[0]:run[1]], prow[run[0]:run[1]])
							}
							xrow := xb.Row(si)
							for i := bit; i < m.n; i++ {
								if xrow[i] != 1 {
									continue
								}
								wrow := wm1t.Row(i)
								off := 0
								if m.runsAscending {
									// Within an ascending run, input i's
									// mask support is the suffix starting
									// i-bit units in (the rest would add
									// exact +/-0 terms).
									off = i - bit
								}
								for _, run := range runs {
									r0 := run[0] + off
									if r0 >= run[1] {
										continue
									}
									dst := zrow[r0:run[1]]
									src := wrow[r0:run[1]]
									for k := range dst {
										dst[k] += src[k]
									}
								}
							}
						}
					})
					for _, run := range runs {
						tensor.AddRowBiasCols(z1b, m.B1, run[0], run[1], e.workers)
					}
				}
				if bit+1 >= m.n {
					continue
				}
				// Layer-2 tail: resume each element's fold from the base
				// snapshot before the first changed hidden unit, then run
				// the suffix against the flip row's activations (ReLU as
				// the same skip-on-nonpositive MatMulReLU uses).
				k0 := runs[0][0]
				preBand2 := pre2.Data[k0*s*m.n : (k0+1)*s*m.n]
				parallel.For(s, e.workers, func(slo, shi int) {
					for si := slo; si < shi; si++ {
						zrow := z2b.Row(si)[bit+1:]
						copy(zrow, preBand2[si*m.n+bit+1:(si+1)*m.n])
						arow := z1b.Row(si)
						for k := k0; k < m.h; k++ {
							av := arow[k]
							if av <= 0 {
								continue
							}
							// Unit k only feeds outputs j >= deg(k); the
							// masked-out head of the row is +/-0.
							lo2 := bit + 1
							if d := m.deg[k]; d > lo2 {
								lo2 = d
							} else if d == 0 {
								continue
							}
							if lo2 >= m.n {
								continue
							}
							wsub := wm2t.Row(k)[lo2:]
							dsub := zrow[lo2-bit-1:]
							for j, wv := range wsub {
								dsub[j] += av * wv
							}
						}
					}
				})
				tensor.AddRowBiasCols(z2b, m.B2, bit+1, m.n, e.workers)
			}
		}
		// Fold the tails (full fold in fullFlip mode) and emit deltas.
		parallel.For(fr, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				f, si := r/s, r%s
				bit := flips[f]
				x := b.Row(lo + si)
				var lp float64
				if e.fullFlip {
					lp = logProbFromZ2F(xff.Row(r), zf2.Row(r))
				} else {
					lp = p.Row(si)[bit]
					if x[bit] == 0 { // flipped value is 1
						lp += logSigmoid(zb2.Row(si)[bit])
					} else {
						lp += logSigmoid(-zb2.Row(si)[bit])
					}
					zrow := zf2.Row(r)
					for j := bit + 1; j < m.n; j++ {
						if x[j] == 1 {
							lp += logSigmoid(zrow[j])
						} else {
							lp += logSigmoid(-zrow[j])
						}
					}
				}
				delta[(lo+si)*nf+f] = 0.5*lp - base[lo+si]
			}
		})
	}
}

// madeBatchAncestral advances all samples of a batch site-by-site, keeping
// the whole B x h hidden state resident and touching weight column i of
// every sample before moving to site i+1. The per-sample arithmetic is
// exactly the incremental evaluator's (ConditionalRow + AccumulateInput),
// so given the same uniforms the sampled bits are identical to scalar
// ancestral sampling.
type madeBatchAncestral struct {
	m   *MADE
	buf []float64
}

// NewBatchAncestralSampler implements BatchAncestralBuilder.
func (m *MADE) NewBatchAncestralSampler() BatchAncestralSampler {
	return &madeBatchAncestral{m: m}
}

// Sample implements BatchAncestralSampler.
func (a *madeBatchAncestral) Sample(b ConfigBatch, u []float64, workers int) {
	m := a.m
	if b.Sites != m.n {
		panic("nn: batched ancestral sites mismatch")
	}
	if len(u) < b.N*m.n {
		panic("nn: batched ancestral uniforms too short")
	}
	z1 := growMat(&a.buf, b.N, m.h)
	parallel.For(b.N, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			copy(z1.Row(r), m.B1)
		}
	})
	for i := 0; i < m.n; i++ {
		parallel.For(b.N, workers, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := z1.Row(r)
				bit := 0
				if u[r*m.n+i] < m.ConditionalRow(row, i) {
					bit = 1
				}
				b.Bits[r*b.Sites+i] = bit
				m.AccumulateInput(row, i, bit)
			}
		})
	}
}

var (
	_ BatchEvaluatorBuilder         = (*MADE)(nil)
	_ FullFlipBatchEvaluatorBuilder = (*MADE)(nil)
	_ BatchAncestralBuilder         = (*MADE)(nil)
)
