package nn

import (
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// batchSlabRows caps the number of network rows materialized at once by the
// batched evaluator, bounding workspace memory independently of the batch
// size (a B=1024, n=32 TIM flip super-batch is 33k rows; slabs keep the
// activations a few MB). Rows are independent, so slabbing cannot change a
// single output bit.
const batchSlabRows = 4096

// growMat returns a rows x cols matrix view over buf, growing it as needed.
// Contents are fully overwritten by the kernels, so no zeroing happens.
func growMat(buf *[]float64, rows, cols int) *tensor.Matrix {
	need := rows * cols
	if cap(*buf) < need {
		*buf = make([]float64, need)
	}
	return &tensor.Matrix{Rows: rows, Cols: cols, Data: (*buf)[:need]}
}

// reluRows applies ReLU to every row of m in parallel.
func reluRows(m *tensor.Matrix, workers int) {
	parallel.For(m.Rows, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			tensor.ReLU(m.Row(r))
		}
	})
}

// logProbFromZ2F is logProbFromZ2 for a float-encoded configuration (the
// flip super-batch stores inputs as the exact 0.0/1.0 floats the GEMM
// consumed, so the branch decisions match the int version bit-for-bit).
func logProbFromZ2F(xf []float64, z2 tensor.Vector) float64 {
	var lp float64
	for j, b := range xf {
		if b == 1 {
			lp += logSigmoid(z2[j])
		} else {
			lp += logSigmoid(-z2[j])
		}
	}
	return lp
}

// madeBatchEvaluator is MADE's BatchEvaluator: it fuses the per-sample
// masked matvecs of a whole batch into blocked GEMMs against the cached
// masked weights (see MADE.maskedWeights), slab by slab. All values are
// bitwise identical to the scalar paths; see the BatchEvaluator contract.
type madeBatchEvaluator struct {
	m       *MADE
	workers int
	// Slab workspaces, grown on demand and reused across calls.
	bufXF, bufZ1, bufA, bufZ2 []float64
	bufZB1, bufZB2            []float64
	dz2, da                   []tensor.Vector // per-worker backward scratch
}

// NewBatchEvaluator implements BatchEvaluatorBuilder. workers bounds the
// internal fan-out (<= 0 means GOMAXPROCS) and does not affect any output
// value. The evaluator is not safe for concurrent use.
func (m *MADE) NewBatchEvaluator(workers int) BatchEvaluator {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	e := &madeBatchEvaluator{m: m, workers: workers,
		dz2: make([]tensor.Vector, workers), da: make([]tensor.Vector, workers)}
	for w := 0; w < workers; w++ {
		e.dz2[w] = tensor.NewVector(m.n)
		e.da[w] = tensor.NewVector(m.h)
	}
	return e
}

// toFloats converts configuration rows [lo, hi) of b into xf rows [0, ...).
func (e *madeBatchEvaluator) toFloats(b ConfigBatch, lo, hi int, xf *tensor.Matrix) {
	parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			x := b.Row(lo + r)
			row := xf.Row(r)
			for i, bit := range x {
				row[i] = float64(bit)
			}
		}
	})
}

// forwardSlab runs the dense two-GEMM forward for rows [lo, hi) of b,
// returning the xf/z1/a/z2 slab views (z1 is the pre-activation, a the
// ReLU activation). The arithmetic per row is exactly MADE.Forward's.
func (e *madeBatchEvaluator) forwardSlab(b ConfigBatch, lo, hi int, needPre bool) (xf, z1, a, z2 *tensor.Matrix) {
	m := e.m
	rows := hi - lo
	wm1t, wm2t := m.maskedWeights()
	xf = growMat(&e.bufXF, rows, m.n)
	z1 = growMat(&e.bufZ1, rows, m.h)
	z2 = growMat(&e.bufZ2, rows, m.n)
	e.toFloats(b, lo, hi, xf)
	tensor.MatMul(z1, xf, wm1t, e.workers)
	tensor.AddRowBias(z1, m.B1, e.workers)
	if needPre {
		// The backward pass needs the activation alongside the ReLU gate,
		// so materialize it (the scalar Forward's copy+ReLU); otherwise the
		// fused MatMulReLU consumes the pre-activation directly.
		a = growMat(&e.bufA, rows, m.h)
		copy(a.Data, z1.Data)
		reluRows(a, e.workers)
	} else {
		a = z1
	}
	tensor.MatMulReLU(z2, a, wm2t, e.workers)
	tensor.AddRowBias(z2, m.B2, e.workers)
	return xf, z1, a, z2
}

// LogPsiBatch implements BatchEvaluator; out[k] matches LogPsi(row k)
// bitwise.
func (e *madeBatchEvaluator) LogPsiBatch(b ConfigBatch, out []float64) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: LogPsiBatch sites mismatch")
	}
	if len(out) != b.N {
		panic("nn: LogPsiBatch output length mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		_, _, _, z2 := e.forwardSlab(b, lo, hi, false)
		parallel.For(hi-lo, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				out[lo+r] = 0.5 * logProbFromZ2(b.Row(lo+r), z2.Row(r))
			}
		})
	}
}

// GradLogPsiBatch implements BatchEvaluator: the forward runs as two
// blocked GEMMs shared across the slab, then the analytic backward
// (gradFromForward, the same code the scalar path runs) fills each ows row.
func (e *madeBatchEvaluator) GradLogPsiBatch(b ConfigBatch, ows *tensor.Batch) {
	m := e.m
	if b.Sites != m.n {
		panic("nn: GradLogPsiBatch sites mismatch")
	}
	if ows.N != b.N || ows.Dim != m.NumParams() {
		panic("nn: GradLogPsiBatch ows shape mismatch")
	}
	for lo := 0; lo < b.N; lo += batchSlabRows {
		hi := lo + batchSlabRows
		if hi > b.N {
			hi = b.N
		}
		_, z1, a, z2 := e.forwardSlab(b, lo, hi, true)
		ranges := parallel.Partition(hi-lo, e.workers)
		parallel.ForEach(len(ranges), e.workers, func(w int) {
			dz2, da := e.dz2[w], e.da[w]
			for r := ranges[w].Lo; r < ranges[w].Hi; r++ {
				grad := ows.Sample(lo + r)
				m.gradFromForward(b.Row(lo+r), z1.Row(r), a.Row(r), z2.Row(r), dz2, da, grad)
				grad.Scale(0.5)
			}
		})
	}
}

// FlipLogPsiBatch implements BatchEvaluator. Base rows reproduce the flip
// cache's incremental site-order accumulation; the B x F flipped rows are
// materialized as a super-batch and evaluated through the layer-1 GEMM
// (Delta's fresh forward); one layer-2 GEMM pass covers both (split into a
// base call and a flip call over the same cached masked weights).
func (e *madeBatchEvaluator) FlipLogPsiBatch(b ConfigBatch, flips []int, base, flipLP []float64) {
	m := e.m
	nf := len(flips)
	if b.Sites != m.n {
		panic("nn: FlipLogPsiBatch sites mismatch")
	}
	if len(base) != b.N || len(flipLP) != b.N*nf {
		panic("nn: FlipLogPsiBatch output length mismatch")
	}
	wm1t, wm2t := m.maskedWeights()
	slab := batchSlabRows / (nf + 1)
	if slab < 1 {
		slab = 1
	}
	for lo := 0; lo < b.N; lo += slab {
		hi := lo + slab
		if hi > b.N {
			hi = b.N
		}
		s := hi - lo
		fr := s * nf
		zb1 := growMat(&e.bufZB1, s, m.h)
		zb2 := growMat(&e.bufZB2, s, m.n)
		xf := growMat(&e.bufXF, fr, m.n)
		// Build the incremental base z1 rows and the flip super-batch rows.
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				x := b.Row(lo + si)
				z1row := zb1.Row(si)
				copy(z1row, m.B1)
				for i, bit := range x {
					m.AccumulateInput(z1row, i, bit)
				}
				for f, bit := range flips {
					row := xf.Row(si*nf + f)
					for i, xb := range x {
						row[i] = float64(xb)
					}
					row[bit] = float64(1 - x[bit])
				}
			}
		})
		// Base rows: output layer over ReLU(z1), as flip-cache refresh does
		// (the ReLU is fused into the GEMM's skip condition).
		tensor.MatMulReLU(zb2, zb1, wm2t, e.workers)
		tensor.AddRowBias(zb2, m.B2, e.workers)
		parallel.For(s, e.workers, func(slo, shi int) {
			for si := slo; si < shi; si++ {
				base[lo+si] = 0.5 * logProbFromZ2(b.Row(lo+si), zb2.Row(si))
			}
		})
		if nf == 0 {
			continue
		}
		// Flip rows: the full fresh forward as two GEMMs.
		zf1 := growMat(&e.bufZ1, fr, m.h)
		zf2 := growMat(&e.bufZ2, fr, m.n)
		tensor.MatMul(zf1, xf, wm1t, e.workers)
		tensor.AddRowBias(zf1, m.B1, e.workers)
		tensor.MatMulReLU(zf2, zf1, wm2t, e.workers)
		tensor.AddRowBias(zf2, m.B2, e.workers)
		parallel.For(fr, e.workers, func(rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				flipLP[lo*nf+r] = 0.5 * logProbFromZ2F(xf.Row(r), zf2.Row(r))
			}
		})
	}
}

// madeBatchAncestral advances all samples of a batch site-by-site, keeping
// the whole B x h hidden state resident and touching weight column i of
// every sample before moving to site i+1. The per-sample arithmetic is
// exactly the incremental evaluator's (ConditionalRow + AccumulateInput),
// so given the same uniforms the sampled bits are identical to scalar
// ancestral sampling.
type madeBatchAncestral struct {
	m   *MADE
	buf []float64
}

// NewBatchAncestralSampler implements BatchAncestralBuilder.
func (m *MADE) NewBatchAncestralSampler() BatchAncestralSampler {
	return &madeBatchAncestral{m: m}
}

// Sample implements BatchAncestralSampler.
func (a *madeBatchAncestral) Sample(b ConfigBatch, u []float64, workers int) {
	m := a.m
	if b.Sites != m.n {
		panic("nn: batched ancestral sites mismatch")
	}
	if len(u) < b.N*m.n {
		panic("nn: batched ancestral uniforms too short")
	}
	z1 := growMat(&a.buf, b.N, m.h)
	parallel.For(b.N, workers, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			copy(z1.Row(r), m.B1)
		}
	})
	for i := 0; i < m.n; i++ {
		parallel.For(b.N, workers, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := z1.Row(r)
				bit := 0
				if u[r*m.n+i] < m.ConditionalRow(row, i) {
					bit = 1
				}
				b.Bits[r*b.Sites+i] = bit
				m.AccumulateInput(row, i, bit)
			}
		})
	}
}

var (
	_ BatchEvaluatorBuilder = (*MADE)(nil)
	_ BatchAncestralBuilder = (*MADE)(nil)
)
