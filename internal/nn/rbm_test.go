package nn

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// bruteLogPsi evaluates the RBM definition directly.
func bruteLogPsi(m *RBM, x []int) float64 {
	n, h := m.n, m.h
	s := make([]float64, n)
	for i, b := range x {
		s[i] = float64(1 - 2*b)
	}
	lp := m.theta[len(m.theta)-1]
	for k := 0; k < h; k++ {
		var th float64
		for i := 0; i < n; i++ {
			th += m.W.At(k, i) * s[i]
		}
		th += m.C[k]
		lp += math.Log(math.Cosh(th))
	}
	for i := 0; i < n; i++ {
		lp += m.A[i] * s[i]
	}
	return lp
}

func TestRBMParamLayout(t *testing.T) {
	m := NewRBM(5, 7, rng.New(1))
	if m.NumParams() != 7*5+7+5+1 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	p := m.Params()
	p[0] = 3.5
	if m.W.At(0, 0) != 3.5 {
		t.Fatal("W does not alias Params")
	}
}

func TestRBMLogPsiMatchesBrute(t *testing.T) {
	r := rng.New(2)
	m := NewRBM(8, 6, r)
	x := make([]int, 8)
	for trial := 0; trial < 50; trial++ {
		r.FillBits(x)
		got := m.LogPsi(x)
		want := bruteLogPsi(m, x)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("LogPsi = %v, brute = %v", got, want)
		}
	}
}

func TestLnCoshStable(t *testing.T) {
	for _, z := range []float64{0, 0.5, -0.5, 3, -3, 10, -10} {
		if got, want := lnCosh(z), math.Log(math.Cosh(z)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("lnCosh(%v) = %v, want %v", z, got, want)
		}
	}
	// Large arguments where math.Cosh overflows: ln cosh z ~ |z| - ln 2.
	for _, z := range []float64{800, -800} {
		want := math.Abs(z) - math.Ln2
		if got := lnCosh(z); math.Abs(got-want) > 1e-9 {
			t.Fatalf("lnCosh(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestSoftplusAndLogSigmoid(t *testing.T) {
	for _, z := range []float64{-50, -5, 0, 5, 50} {
		wantSP := math.Log(1 + math.Exp(z))
		if z > 30 {
			wantSP = z // avoid overflow in reference
		}
		if got := softplus(z); math.Abs(got-wantSP) > 1e-9 {
			t.Fatalf("softplus(%v) = %v, want %v", z, got, wantSP)
		}
		if got, want := logSigmoid(z), math.Log(1/(1+math.Exp(-z))); z > -30 && math.Abs(got-want) > 1e-9 {
			t.Fatalf("logSigmoid(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestRBMGradMatchesFiniteDifference(t *testing.T) {
	r := rng.New(3)
	m := NewRBM(5, 4, r)
	s := m.NewScratch()
	x := []int{1, 0, 0, 1, 1}
	grad := tensor.NewVector(m.NumParams())
	m.GradLogPsiScratch(x, grad, s)
	const eps = 1e-6
	p := m.Params()
	for i := 0; i < m.NumParams(); i++ {
		orig := p[i]
		p[i] = orig + eps
		fp := m.LogPsiScratch(x, s)
		p[i] = orig - eps
		fm := m.LogPsiScratch(x, s)
		p[i] = orig
		fd := (fp - fm) / (2 * eps)
		if math.Abs(fd-grad[i]) > 1e-5 {
			t.Fatalf("param %d: analytic %v vs finite-diff %v", i, grad[i], fd)
		}
	}
}

func TestRBMFlipCacheDeltaExact(t *testing.T) {
	r := rng.New(4)
	n := 9
	m := NewRBM(n, 7, r)
	x := make([]int, n)
	r.FillBits(x)
	c := m.NewFlipCache(x)
	for b := 0; b < n; b++ {
		y := append([]int(nil), x...)
		y[b] = 1 - y[b]
		want := m.LogPsi(y) - m.LogPsi(x)
		if got := c.Delta(b); math.Abs(got-want) > 1e-10 {
			t.Fatalf("Delta(%d) = %v, want %v", b, got, want)
		}
	}
}

func TestRBMFlipCacheLongWalk(t *testing.T) {
	// After many flips the cached log psi and hidden pre-activations must
	// stay consistent with a fresh evaluation (no drift).
	r := rng.New(5)
	n := 12
	m := NewRBM(n, 10, r)
	x := make([]int, n)
	r.FillBits(x)
	c := m.NewFlipCache(x)
	for step := 0; step < 500; step++ {
		c.Flip(r.Intn(n))
	}
	if math.Abs(c.LogPsi()-m.LogPsi(c.State())) > 1e-8 {
		t.Fatalf("cache drifted: %v vs %v", c.LogPsi(), m.LogPsi(c.State()))
	}
}

func TestRBMFlipCacheStateIsolated(t *testing.T) {
	m := NewRBM(4, 3, rng.New(6))
	x := []int{1, 0, 1, 0}
	c := m.NewFlipCache(x)
	c.Flip(0)
	if x[0] != 1 {
		t.Fatal("FlipCache mutated the caller's configuration")
	}
}

func TestRBMDeterministicInit(t *testing.T) {
	a := NewRBM(6, 5, rng.New(7))
	b := NewRBM(6, 5, rng.New(7))
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("same seed gave different parameters")
		}
	}
}

func BenchmarkRBMLogPsi(b *testing.B) {
	m := NewRBM(100, 100, rng.New(1))
	s := m.NewScratch()
	x := make([]int, 100)
	rng.New(2).FillBits(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LogPsiScratch(x, s)
	}
}

// BenchmarkRBMRatioCacheVsRecompute quantifies the ablation called out in
// DESIGN.md: O(h) cached flip ratios vs O(hn) full re-evaluation.
func BenchmarkRBMRatioCache(b *testing.B) {
	m := NewRBM(200, 200, rng.New(1))
	x := make([]int, 200)
	rng.New(2).FillBits(x)
	c := m.NewFlipCache(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Delta(i % 200)
	}
}

func BenchmarkRBMRatioRecompute(b *testing.B) {
	m := NewRBM(200, 200, rng.New(1))
	s := m.NewScratch()
	x := make([]int, 200)
	rng.New(2).FillBits(x)
	base := m.LogPsiScratch(x, s)
	y := make([]int, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(y, x)
		bit := i % 200
		y[bit] = 1 - y[bit]
		_ = m.LogPsiScratch(y, s) - base
	}
}
