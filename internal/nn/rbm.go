package nn

import (
	"math"
	"sync"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// RBM is the restricted-Boltzmann-machine wavefunction of Carleo & Troyer,
// matching the paper's architecture (FC -> Lncoshsum, plus a linear visible
// term added to the output):
//
//	log psi(s) = sum_k ln cosh(w_k . s + c_k) + a . s + a0
//
// where s_i = 1-2x_i in {+1,-1} are spins. The amplitude is unnormalized,
// so sampling pi(x) proportional to psi(x)^2 requires MCMC.
//
// Parameter count d = hn + h + n + 1, laid out [W | c | a | a0] in one flat
// vector; layer views alias that vector.
type RBM struct {
	n, h  int
	theta tensor.Vector
	W     *tensor.Matrix // h x n
	C     tensor.Vector  // h
	A     tensor.Vector  // n
	// A0 is theta[d-1], a constant offset (irrelevant to ratios but kept
	// to mirror the paper's FC_{n,1} output head).

	// Transposed-weight cache for the batched GEMM path: wt holds W^T
	// (n x h), materialized once per parameter version so LogPsiBatch/
	// GradLogPsiBatch/FlipLogPsiBatch can run theta = S * W^T as a blocked
	// MatMul with per-column accumulators (transposition is pure layout;
	// every product S_i * W_ki is the scalar MulVec product with operands
	// commuted, which is bitwise identical). version is bumped by
	// InvalidateParams; wtVersion records the build version (0 = never).
	// cacheMu serializes rebuilds so concurrent first use builds once; see
	// PrewarmCaches.
	cacheMu   sync.Mutex
	version   uint64
	wtVersion uint64
	wt        *tensor.Matrix
}

// RBMScratch holds per-worker buffers for RBM evaluation.
type RBMScratch struct {
	S     tensor.Vector // spins (n)
	Theta tensor.Vector // hidden pre-activations (h)
}

// NewRBM builds an RBM with n sites and h hidden units, weights initialized
// U(-1/sqrt(n), 1/sqrt(n)) scaled down to keep initial amplitudes tame.
func NewRBM(n, h int, r *rng.Rand) *RBM {
	if n < 1 || h < 1 {
		panic("nn: RBM requires n >= 1 and h >= 1")
	}
	d := h*n + h + n + 1
	theta := tensor.NewVector(d)
	m := &RBM{n: n, h: h, theta: theta}
	m.W = &tensor.Matrix{Rows: h, Cols: n, Data: theta[0 : h*n]}
	m.C = theta[h*n : h*n+h]
	m.A = theta[h*n+h : h*n+h+n]
	uniformInit(m.W.Data, n, r)
	uniformInit(m.C, n, r)
	uniformInit(m.A, n, r)
	// Scale down: ln cosh grows linearly, and n terms of O(1) would start
	// the chain in a very peaked distribution.
	tensor.Vector(m.W.Data).Scale(0.1)
	m.C.Scale(0.1)
	m.A.Scale(0.1)
	m.version = 1
	return m
}

// InvalidateParams marks the transposed-weight cache stale. It must be
// called after any in-place mutation of Params() (optimizer steps,
// checkpoint loads); trainers do this through nn.InvalidateParams.
// Parameter mutation itself still requires evaluation quiescence — the
// mutex below only makes cache rebuilds safe, not in-place Params() writes.
func (m *RBM) InvalidateParams() {
	m.cacheMu.Lock()
	m.version++
	m.cacheMu.Unlock()
}

// PrewarmCaches materializes the transposed-weight cache for the current
// parameter version. Coordinators call it (via nn.Prewarm) before fanning
// work out to workers so no worker pays the rebuild; rebuilds are
// mutex-serialized either way, so this is a latency optimization, not a
// safety requirement.
func (m *RBM) PrewarmCaches() { m.weightsT() }

// weightsT returns W^T, rebuilding the cached transpose if the parameters
// changed since the last build. Safe for concurrent use: rebuilds are
// serialized by cacheMu, and the cached matrix is immutable between
// InvalidateParams calls (which require evaluation quiescence), so the
// returned pointer stays valid for the whole parallel section.
func (m *RBM) weightsT() *tensor.Matrix {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	if m.wtVersion != m.version {
		if m.wt == nil {
			m.wt = tensor.NewMatrix(m.n, m.h)
		}
		for k := 0; k < m.h; k++ {
			for i := 0; i < m.n; i++ {
				m.wt.Data[i*m.h+k] = m.W.Data[k*m.n+i]
			}
		}
		m.wtVersion = m.version
	}
	return m.wt
}

// NewScratch allocates evaluation buffers for one worker.
func (m *RBM) NewScratch() *RBMScratch {
	return &RBMScratch{S: tensor.NewVector(m.n), Theta: tensor.NewVector(m.h)}
}

// NumSites implements Wavefunction.
func (m *RBM) NumSites() int { return m.n }

// Hidden returns the number of hidden units h.
func (m *RBM) Hidden() int { return m.h }

// NumParams implements Wavefunction.
func (m *RBM) NumParams() int { return len(m.theta) }

// Params implements Wavefunction; the returned vector aliases the model.
func (m *RBM) Params() tensor.Vector { return m.theta }

// hiddenPre fills s.S with spins and s.Theta with w_k.s + c_k.
func (m *RBM) hiddenPre(x []int, s *RBMScratch) {
	for i, b := range x {
		s.S[i] = float64(1 - 2*b)
	}
	m.W.MulVec(s.Theta, s.S)
	s.Theta.Add(m.C)
}

// logPsiFromTheta reduces hidden pre-activations and spins to log psi:
// a0 first, then the ln-cosh terms in ascending hidden order, then the
// visible dot product. Shared verbatim by the scalar and batched paths —
// identical theta/spin bytes in, identical log psi out.
func (m *RBM) logPsiFromTheta(spins, theta tensor.Vector) float64 {
	lp := m.theta[len(m.theta)-1] // a0
	for _, th := range theta {
		lp += lnCosh(th)
	}
	lp += m.A.Dot(spins)
	return lp
}

// flipDelta computes log psi(x^bit) - log psi(x) in O(h) from the current
// hidden pre-activations and spins: flipping bit sends s_b -> -s_b, so
// theta_k -> theta_k - 2 W_kb s_b and the visible term changes by
// -2 a_b s_b. Shared verbatim by rbmFlipCache.Delta and the batched
// FlipLogPsiBatch — the flip-cache delta convention in one place.
func (m *RBM) flipDelta(spins, theta tensor.Vector, bit int) float64 {
	sb := spins[bit]
	var d float64
	for k := 0; k < m.h; k++ {
		old := theta[k]
		d += lnCosh(old-2*m.W.At(k, bit)*sb) - lnCosh(old)
	}
	d -= 2 * m.A[bit] * sb
	return d
}

// gradFromTheta runs the closed-form gradient from hidden pre-activations
// and spins into grad (overwritten): dW_ki = tanh(theta_k) s_i,
// dc_k = tanh(theta_k), da_i = s_i, da0 = 1. Shared verbatim by the scalar
// and batched gradient paths.
func (m *RBM) gradFromTheta(spins, theta tensor.Vector, grad tensor.Vector) {
	if len(grad) != m.NumParams() {
		panic("nn: gradient buffer has wrong length")
	}
	h, n := m.h, m.n
	gW := grad[0 : h*n]
	gC := grad[h*n : h*n+h]
	gA := grad[h*n+h : h*n+h+n]
	for k := 0; k < h; k++ {
		t := math.Tanh(theta[k])
		gC[k] = t
		base := k * n
		for i := 0; i < n; i++ {
			gW[base+i] = t * spins[i]
		}
	}
	copy(gA, spins)
	grad[len(grad)-1] = 1
}

// LogPsiScratch evaluates log psi(x) with caller-owned buffers.
func (m *RBM) LogPsiScratch(x []int, s *RBMScratch) float64 {
	m.hiddenPre(x, s)
	return m.logPsiFromTheta(s.S, s.Theta)
}

// LogPsi implements Wavefunction. Hot paths should use LogPsiScratch.
func (m *RBM) LogPsi(x []int) float64 { return m.LogPsiScratch(x, m.NewScratch()) }

// GradLogPsi implements Wavefunction.
func (m *RBM) GradLogPsi(x []int, grad tensor.Vector) {
	m.GradLogPsiScratch(x, grad, m.NewScratch())
}

// GradLogPsiScratch accumulates d log psi / d theta into grad
// (overwritten), through the shared gradFromTheta closed form.
func (m *RBM) GradLogPsiScratch(x []int, grad tensor.Vector, s *RBMScratch) {
	m.hiddenPre(x, s)
	m.gradFromTheta(s.S, s.Theta, grad)
}

// NewFlipCache implements CacheBuilder with the O(h)-per-flip cache: the
// hidden pre-activations theta_k = w_k.s + c_k are maintained under spin
// flips, so Metropolis proposals and TIM local energies cost O(h) each.
func (m *RBM) NewFlipCache(x []int) FlipCache {
	c := &rbmFlipCache{m: m, x: make([]int, m.n), s: m.NewScratch()}
	copy(c.x, x)
	c.logPsi = m.LogPsiScratch(c.x, c.s)
	return c
}

type rbmFlipCache struct {
	m      *RBM
	x      []int
	s      *RBMScratch // s.S and s.Theta track the current configuration
	logPsi float64
}

func (c *rbmFlipCache) LogPsi() float64 { return c.logPsi }

// Delta computes log psi(x^b) - log psi(x) in O(h) through the shared
// flipDelta closed form.
func (c *rbmFlipCache) Delta(bit int) float64 {
	return c.m.flipDelta(c.s.S, c.s.Theta, bit)
}

func (c *rbmFlipCache) Flip(bit int) {
	d := c.Delta(bit)
	sb := c.s.S[bit]
	for k := 0; k < c.m.h; k++ {
		c.s.Theta[k] -= 2 * c.m.W.At(k, bit) * sb
	}
	c.s.S[bit] = -sb
	c.x[bit] = 1 - c.x[bit]
	c.logPsi += d
}

func (c *rbmFlipCache) State() []int { return c.x }

func (c *rbmFlipCache) Reset(x []int) {
	copy(c.x, x)
	c.logPsi = c.m.LogPsiScratch(c.x, c.s)
}

// NewGradEvaluator implements GradEvaluatorBuilder.
func (m *RBM) NewGradEvaluator() GradEvaluator {
	return &rbmGradEvaluator{m: m, s: m.NewScratch()}
}

type rbmGradEvaluator struct {
	m *RBM
	s *RBMScratch
}

func (e *rbmGradEvaluator) GradLogPsi(x []int, grad tensor.Vector) {
	e.m.GradLogPsiScratch(x, grad, e.s)
}

func (e *rbmGradEvaluator) LogPsi(x []int) float64 {
	return e.m.LogPsiScratch(x, e.s)
}

var (
	_ Wavefunction = (*RBM)(nil)
	_ CacheBuilder = (*RBM)(nil)
)
