// Package nn implements the two neural wavefunction families the paper
// compares: the masked autoencoder MADE (autoregressive, normalized, exactly
// sampleable) and the restricted Boltzmann machine RBM (unnormalized,
// requires MCMC). Gradients are analytic closed forms of the 1-2 layer
// architectures, standing in for the autograd engine of the paper's PyTorch
// implementation; tests validate them against finite differences.
//
// Configurations are bit strings x in {0,1}^n. Every model stores its
// parameters in one flat backing vector so optimizers can update in place;
// layer views (weight matrices, bias vectors) alias that storage.
package nn

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Wavefunction is a parametric trial state psi_theta over {0,1}^n.
// LogPsi returns log|psi(x)|; for normalized models exp(2 LogPsi) is a
// probability distribution.
type Wavefunction interface {
	// NumSites returns n, the input dimension.
	NumSites() int
	// NumParams returns d, the length of the flattened parameter vector.
	NumParams() int
	// Params returns the flat parameter vector aliasing model storage;
	// mutating it mutates the model.
	Params() tensor.Vector
	// LogPsi evaluates log |psi_theta(x)|.
	LogPsi(x []int) float64
	// GradLogPsi accumulates d log|psi|/d theta into grad (grad is
	// overwritten, length NumParams). Implementations must be safe for
	// concurrent calls on distinct grad buffers.
	GradLogPsi(x []int, grad tensor.Vector)
}

// Normalized is implemented by wavefunctions with a tractable normalized
// distribution pi(x) = psi(x)^2.
type Normalized interface {
	Wavefunction
	// LogProb returns log pi(x) = 2 log |psi(x)| with sum_x pi(x) = 1.
	LogProb(x []int) float64
}

// Autoregressive is implemented by models that factor pi(x) into a product
// of conditionals in site order and can therefore be sampled exactly
// (Algorithm 1 of the paper).
type Autoregressive interface {
	Normalized
	// Conditional returns P(x_i = 1 | x_0..x_{i-1}). Only bits before i
	// are read.
	Conditional(x []int, i int) float64
}

// FlipCache evaluates log-psi differences under single-bit flips of a fixed
// base configuration; it is the kernel of both Metropolis-Hastings and
// local-energy evaluation. Implementations are not safe for concurrent use.
type FlipCache interface {
	// LogPsi returns log |psi| of the current configuration.
	LogPsi() float64
	// Delta returns log|psi(x^b)| - log|psi(x)| without changing state.
	Delta(bit int) float64
	// Flip commits bit b, updating internal caches.
	Flip(bit int)
	// State returns the current configuration (aliases internal storage).
	State() []int
	// Reset rebases the cache on a new configuration, reusing buffers.
	Reset(x []int)
}

// CacheBuilder is implemented by wavefunctions that provide a FlipCache.
type CacheBuilder interface {
	NewFlipCache(x []int) FlipCache
}

// TailFlipCache is implemented by flip caches whose Delta is derived from
// an absolute flipped log-psi that is bitwise identical to a fresh LogPsi
// of the flipped configuration (MADE's tail-only cache: the autoregressive
// mask leaves conditionals j < b untouched under a flip of bit b, so only
// output sites j >= b are re-evaluated and the log-probability fold resumes
// from a cached prefix sum). Delta(b) == FlipLogPsi(b) - LogPsi() exactly,
// by construction.
type TailFlipCache interface {
	FlipCache
	// FlipLogPsi returns log |psi| of the current configuration with bit
	// flipped, without changing state — bitwise equal to a fresh LogPsi.
	FlipLogPsi(bit int) float64
}

// GradEvaluator computes log-psi gradients with per-worker buffers.
type GradEvaluator interface {
	GradLogPsi(x []int, grad tensor.Vector)
	LogPsi(x []int) float64
}

// GradEvaluatorBuilder is implemented by wavefunctions that provide
// buffer-reusing gradient evaluators for parallel workers.
type GradEvaluatorBuilder interface {
	NewGradEvaluator() GradEvaluator
}

// softplus computes ln(1+e^z) stably.
func softplus(z float64) float64 {
	if z > 35 {
		return z
	}
	if z < -35 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}

// logSigmoid computes ln sigma(z) = -softplus(-z) stably.
func logSigmoid(z float64) float64 { return -softplus(-z) }

// condTerm is one site's contribution to an autoregressive log-probability
// fold: ln sigma(z) when the bit is 1, ln sigma(-z) when it is 0. The scalar
// folds, the flip caches' prefix/tail resumes, and the batched paths all add
// terms through this one function so every path folds bitwise-identical
// values.
func condTerm(z float64, bit int) float64 {
	if bit == 1 {
		return logSigmoid(z)
	}
	return logSigmoid(-z)
}

// lnCosh computes ln cosh(z) stably for large |z|.
func lnCosh(z float64) float64 {
	a := math.Abs(z)
	return a + softplus(-2*a) - math.Ln2
}

// uniformInit fills w with U(-1/sqrt(fanIn), 1/sqrt(fanIn)) entries, the
// conventional dense-layer initialization.
func uniformInit(w []float64, fanIn int, rnd interface{ Uniform(lo, hi float64) float64 }) {
	bound := 1.0
	if fanIn > 0 {
		bound = 1 / math.Sqrt(float64(fanIn))
	}
	for i := range w {
		w[i] = rnd.Uniform(-bound, bound)
	}
}
