// Package linalg provides the iterative solvers that back the stochastic
// reconfiguration optimizer and the exact diagonalizer: matrix-free conjugate
// gradients, Lanczos tridiagonalization with full reorthogonalization, a
// symmetric tridiagonal eigensolver (implicit QL), and a dense Jacobi
// eigensolver used for cross-validation in tests.
package linalg

import (
	"errors"
	"math"
)

// MatVec applies a symmetric linear operator: out = A*v. Implementations must
// not retain v or out.
type MatVec func(v, out []float64)

// CGResult reports the outcome of a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final ||Ax-b|| / ||b||
	Converged  bool
}

// CG solves A x = b for symmetric positive definite A using conjugate
// gradients, starting from the current contents of x. It stops when the
// relative residual drops below tol or after maxIter iterations.
func CG(a MatVec, b, x []float64, tol float64, maxIter int) CGResult {
	n := len(b)
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a(x, ap)
	var bnorm float64
	for i := range b {
		r[i] = b[i] - ap[i]
		bnorm += b[i] * b[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{Converged: true}
	}
	copy(p, r)
	rr := dot(r, r)
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rr)/bnorm < tol {
			return CGResult{Iterations: k, Residual: math.Sqrt(rr) / bnorm, Converged: true}
		}
		a(p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			// Not positive definite along p; bail out with best iterate.
			return CGResult{Iterations: k, Residual: math.Sqrt(rr) / bnorm, Converged: false}
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return CGResult{Iterations: maxIter, Residual: math.Sqrt(rr) / bnorm, Converged: math.Sqrt(rr)/bnorm < tol}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// LanczosResult holds the lowest Ritz pair from a Lanczos run.
type LanczosResult struct {
	Eigenvalue  float64
	Eigenvector []float64 // normalized, length n; nil if vector not requested
	Iterations  int
	Converged   bool
}

// LanczosMin computes the minimal eigenvalue (and eigenvector) of the
// symmetric operator a of dimension n, using at most maxKrylov Lanczos
// vectors with full reorthogonalization. The start vector is v0 (copied),
// or e_1-like pseudo-random if v0 is nil. tol bounds the residual estimate
// |beta_m * y_m| on the Ritz value.
func LanczosMin(a MatVec, n int, v0 []float64, maxKrylov int, tol float64) (LanczosResult, error) {
	if maxKrylov < 2 {
		return LanczosResult{}, errors.New("linalg: maxKrylov must be >= 2")
	}
	if maxKrylov > n {
		maxKrylov = n
	}
	// Krylov basis, kept for reorthogonalization and eigenvector recovery.
	basis := make([][]float64, 0, maxKrylov)
	alpha := make([]float64, 0, maxKrylov)
	beta := make([]float64, 0, maxKrylov) // beta[j] links v_j and v_{j+1}

	v := make([]float64, n)
	if v0 != nil {
		copy(v, v0)
	} else {
		for i := range v {
			v[i] = 1 / math.Sqrt(float64(n))
			if i%2 == 1 {
				v[i] = -v[i]
			}
		}
	}
	nv := norm(v)
	if nv == 0 {
		return LanczosResult{}, errors.New("linalg: zero start vector")
	}
	for i := range v {
		v[i] /= nv
	}

	w := make([]float64, n)
	best := LanczosResult{Eigenvalue: math.Inf(1)}
	for j := 0; j < maxKrylov; j++ {
		vj := make([]float64, n)
		copy(vj, v)
		basis = append(basis, vj)

		a(vj, w)
		aj := dot(vj, w)
		alpha = append(alpha, aj)
		// w = w - alpha_j v_j - beta_{j-1} v_{j-1}
		for i := range w {
			w[i] -= aj * vj[i]
		}
		if j > 0 {
			bj := beta[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= bj * prev[i]
			}
		}
		// Full reorthogonalization for numerical robustness.
		for _, u := range basis {
			c := dot(u, w)
			if c != 0 {
				for i := range w {
					w[i] -= c * u[i]
				}
			}
		}
		bNext := norm(w)

		// Solve the (j+1)x(j+1) tridiagonal eigenproblem.
		m := j + 1
		d := make([]float64, m)
		e := make([]float64, m)
		copy(d, alpha)
		for k := 0; k < j; k++ {
			e[k+1] = beta[k]
		}
		z := identity(m)
		if err := tqli(d, e, m, z); err != nil {
			return LanczosResult{}, err
		}
		// Find minimal Ritz value.
		kMin := 0
		for k := 1; k < m; k++ {
			if d[k] < d[kMin] {
				kMin = k
			}
		}
		resid := math.Abs(bNext * z[(m-1)*m+kMin])
		best = LanczosResult{Eigenvalue: d[kMin], Iterations: m, Converged: resid < tol}
		if best.Converged || bNext < 1e-14 || m == maxKrylov {
			// Recover the eigenvector in the original space.
			vec := make([]float64, n)
			for k := 0; k < m; k++ {
				c := z[k*m+kMin]
				for i := range vec {
					vec[i] += c * basis[k][i]
				}
			}
			nv := norm(vec)
			for i := range vec {
				vec[i] /= nv
			}
			best.Eigenvector = vec
			best.Converged = best.Converged || bNext < 1e-14
			return best, nil
		}
		beta = append(beta, bNext)
		for i := range v {
			v[i] = w[i] / bNext
		}
	}
	return best, nil
}

func identity(m int) []float64 {
	z := make([]float64, m*m)
	for i := 0; i < m; i++ {
		z[i*m+i] = 1
	}
	return z
}

// tqli diagonalizes a symmetric tridiagonal matrix with diagonal d[0..n-1]
// and subdiagonal e[1..n-1] (e[0] unused) using the implicit QL algorithm
// with Wilkinson shifts. On return d holds eigenvalues and z (n x n,
// row-major, initialized by the caller, typically to identity) accumulates
// the rotations so column k of z is the eigenvector for d[k].
func tqli(d, e []float64, n int, z []float64) error {
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter++; iter == 50 {
				return errors.New("linalg: tqli failed to converge")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f := z[k*n+i+1]
					z[k*n+i+1] = s*z[k*n+i] + c*f
					z[k*n+i] = c*z[k*n+i] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// TridiagEigen diagonalizes a symmetric tridiagonal matrix given its
// diagonal diag and subdiagonal sub (len(sub) == len(diag)-1). It returns
// the eigenvalues and the row-major eigenvector matrix (column k for
// eigenvalue k).
func TridiagEigen(diag, sub []float64) ([]float64, []float64, error) {
	n := len(diag)
	d := make([]float64, n)
	e := make([]float64, n)
	copy(d, diag)
	for i := 0; i < n-1; i++ {
		e[i+1] = sub[i]
	}
	z := identity(n)
	if err := tqli(d, e, n, z); err != nil {
		return nil, nil, err
	}
	return d, z, nil
}

// JacobiEigen diagonalizes a dense symmetric matrix (row-major n x n) with
// the cyclic Jacobi method. It returns eigenvalues (unsorted) and the
// row-major eigenvector matrix (column k for eigenvalue k). Intended for
// modest n in tests and the SDP baseline.
func JacobiEigen(a []float64, n int) ([]float64, []float64, error) {
	m := make([]float64, len(a))
	copy(m, a)
	v := identity(n)
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i*n+j] * m[i*n+j]
			}
		}
		if off < 1e-22 {
			d := make([]float64, n)
			for i := 0; i < n; i++ {
				d[i] = m[i*n+i]
			}
			return d, v, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := m[p*n+p], m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m[k*n+p], m[k*n+q]
					m[k*n+p] = c*akp - s*akq
					m[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := m[p*n+k], m[q*n+k]
					m[p*n+k] = c*apk - s*aqk
					m[q*n+k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	return nil, nil, errors.New("linalg: Jacobi failed to converge")
}

// MinEigDense returns the minimal eigenvalue and its eigenvector of a dense
// symmetric matrix via Jacobi.
func MinEigDense(a []float64, n int) (float64, []float64, error) {
	d, v, err := JacobiEigen(a, n)
	if err != nil {
		return 0, nil, err
	}
	k := 0
	for i := 1; i < n; i++ {
		if d[i] < d[k] {
			k = i
		}
	}
	vec := make([]float64, n)
	for i := 0; i < n; i++ {
		vec[i] = v[i*n+k]
	}
	return d[k], vec, nil
}
