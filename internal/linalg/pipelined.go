// Pipelined (communication-avoiding) conjugate gradients: Gropp's two-dot
// overlap variant. Classic CG has two global synchronization points per
// iteration — the p.Ap and r.r inner products — and each one sits on the
// critical path right where it blocks all following work. Gropp's
// restructuring keeps the exact same Krylov recurrence but maintains
// s = A p by the update s <- w + beta*s (with w = A r the only fresh
// operator application per iteration), which detaches each reduction from
// its consumer: the residual-norm reduction is in flight while the operator
// is applied, so a distributed run pays max(reduction, matvec) instead of
// their sum.
//
// The synchronization points are expressed through the DotReducer hook: the
// solver computes local partial inner products, hands them to the reducer,
// overlaps whatever the recurrence allows, and only then waits. A nil
// reducer means the dots are already global (serial callers, or callers
// whose vectors are replicated on every rank) and the algorithm degenerates
// to exactly the classic arithmetic in a different evaluation order — same
// solution, iteration counts within one of CG's.
package linalg

import "math"

// DotReducer begins a global reduction of locally computed partial inner
// products: vals holds this rank's partials on entry and must hold the
// reduced global values once the returned wait function has been called.
// Between the call and the wait, the reduction is in flight and the caller
// overlaps independent local work. Implementations are typically backed by
// a non-blocking all-reduce; a nil DotReducer (or NoopReducer) leaves vals
// untouched for callers whose dots are already global.
type DotReducer func(vals []float64) (wait func())

// NoopReducer is the DotReducer for serial or replicated-vector callers:
// the partials already are the global values.
func NoopReducer(vals []float64) (wait func()) { return func() {} }

// PipelinedCG solves A x = b for symmetric positive definite A with Gropp's
// overlapped conjugate-gradient variant, starting from the current contents
// of x. It stops when the relative residual (from the recurrence) drops
// below tol or after maxIter iterations, and returns a best-effort result
// with Converged=false if a non-positive p.Ap curvature is detected —
// mirroring CG's breakdown handling. reduce carries the two per-iteration
// inner-product reductions; nil means serial.
func PipelinedCG(a MatVec, b, x []float64, tol float64, maxIter int, reduce DotReducer) CGResult {
	if reduce == nil {
		reduce = NoopReducer
	}
	n := len(b)
	r := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n) // s = A p, maintained by recurrence
	w := make([]float64, n) // w = A r, the fresh product each iteration

	// One reusable reduction payload: each reduction completes (wait) before
	// the next write, so the buffer never carries two values at once.
	dots := make([]float64, 1)

	// r0 = b - A x0; the ||b||^2 reduction is in flight while the residual
	// is assembled.
	a(x, w)
	dots[0] = dot(b, b)
	wait := reduce(dots)
	for i := range b {
		r[i] = b[i] - w[i]
	}
	wait()
	bnorm := math.Sqrt(dots[0])
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{Converged: true}
	}
	copy(p, r)
	// s0 = A p0, overlapped with the gamma0 = (r0, r0) reduction.
	dots[0] = dot(r, r)
	wait = reduce(dots)
	a(p, s)
	wait()
	gamma := dots[0]

	for k := 0; k < maxIter; k++ {
		if math.Sqrt(gamma)/bnorm < tol {
			return CGResult{Iterations: k, Residual: math.Sqrt(gamma) / bnorm, Converged: true}
		}
		// delta = (p, s) = p.Ap. Gropp's variant overlaps this reduction
		// with the preconditioner application; unpreconditioned there is
		// nothing to hide it behind, so the wait follows immediately.
		dots[0] = dot(p, s)
		wait = reduce(dots)
		wait()
		delta := dots[0]
		if delta <= 0 {
			// Not positive definite along p; bail out with best iterate.
			return CGResult{Iterations: k, Residual: math.Sqrt(gamma) / bnorm, Converged: false}
		}
		alpha := gamma / delta
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * s[i]
		}
		// gamma' = (r, r) rides behind the one fresh operator application
		// of the iteration — the overlap this variant exists for.
		dots[0] = dot(r, r)
		wait = reduce(dots)
		a(r, w)
		wait()
		gammaNew := dots[0]
		beta := gammaNew / gamma
		for i := range p {
			p[i] = r[i] + beta*p[i]
			s[i] = w[i] + beta*s[i]
		}
		gamma = gammaNew
	}
	return CGResult{Iterations: maxIter, Residual: math.Sqrt(gamma) / bnorm, Converged: math.Sqrt(gamma)/bnorm < tol}
}
