package linalg

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// randWellSPD builds a random symmetric positive definite matrix
// A = B^T B / n + I with a modest condition number, so both solvers can be
// driven to near machine precision and compared at the 1e-12 level.
func randWellSPD(r *rng.Rand, n int) []float64 {
	b := make([]float64, n*n)
	r.FillUniform(b, -1, 1)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k*n+i] * b[k*n+j]
			}
			a[i*n+j] = s / float64(n)
		}
		a[i*n+i] += 1
	}
	return a
}

// TestPipelinedCGMatchesCGProperty is the equivalence property of Gropp's
// variant: on random SPD systems of every dimension 1..64 it must produce
// the same solution as classic CG to <= 1e-12 with iteration counts within
// +-1 — the recurrences are the same Krylov process, only the reduction
// schedule differs.
func TestPipelinedCGMatchesCGProperty(t *testing.T) {
	r := rng.New(7)
	for n := 1; n <= 64; n++ {
		a := randWellSPD(r, n)
		xTrue := make([]float64, n)
		r.FillUniform(xTrue, -1, 1)
		b := make([]float64, n)
		denseMV(a, n)(xTrue, b)

		// Shared warm start exercises the nonzero-x0 path every other dim.
		x0 := make([]float64, n)
		if n%2 == 0 {
			r.FillUniform(x0, -0.5, 0.5)
		}
		xCG := append([]float64(nil), x0...)
		xP := append([]float64(nil), x0...)
		resCG := CG(denseMV(a, n), b, xCG, 1e-13, 3*n+10)
		resP := PipelinedCG(denseMV(a, n), b, xP, 1e-13, 3*n+10, nil)

		if !resCG.Converged || !resP.Converged {
			t.Fatalf("n=%d: CG converged=%v, pipelined converged=%v", n, resCG.Converged, resP.Converged)
		}
		if d := resP.Iterations - resCG.Iterations; d < -1 || d > 1 {
			t.Fatalf("n=%d: pipelined took %d iterations, CG %d (want within +-1)",
				n, resP.Iterations, resCG.Iterations)
		}
		scale := 1.0
		for _, v := range xTrue {
			if math.Abs(v) > scale {
				scale = math.Abs(v)
			}
		}
		for i := range xCG {
			if d := math.Abs(xCG[i] - xP[i]); d > 1e-12*scale {
				t.Fatalf("n=%d: solutions differ at %d: CG %v vs pipelined %v (diff %g)",
					n, i, xCG[i], xP[i], d)
			}
		}
	}
}

// TestPipelinedCGBreakdown drives both solvers into the pAp <= 0 breakdown
// on indefinite operators: they must return a finite residual with
// Converged=false — never NaN — and agree on where they stopped.
func TestPipelinedCGBreakdown(t *testing.T) {
	cases := []struct {
		name string
		diag []float64
		b    []float64
	}{
		{"negative-definite", []float64{-1, -1, -1}, []float64{1, 2, 3}},
		{"zero-curvature", []float64{1, -1}, []float64{1, 1}}, // pAp = 0 exactly
		{"indefinite", []float64{2, -3, 1, -5}, []float64{1, 1, 1, 1}},
	}
	for _, tc := range cases {
		n := len(tc.diag)
		mv := func(v, out []float64) {
			for i := range v {
				out[i] = tc.diag[i] * v[i]
			}
		}
		xCG := make([]float64, n)
		xP := make([]float64, n)
		resCG := CG(mv, tc.b, xCG, 1e-12, 50)
		resP := PipelinedCG(mv, tc.b, xP, 1e-12, 50, nil)
		for _, res := range []CGResult{resCG, resP} {
			if res.Converged {
				t.Fatalf("%s: breakdown reported as converged: %+v", tc.name, res)
			}
			if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
				t.Fatalf("%s: non-finite residual %v", tc.name, res.Residual)
			}
		}
		for i := range xCG {
			if math.IsNaN(xCG[i]) || math.IsNaN(xP[i]) {
				t.Fatalf("%s: NaN in iterate (CG %v, pipelined %v)", tc.name, xCG[i], xP[i])
			}
		}
		if resCG.Iterations != resP.Iterations {
			t.Fatalf("%s: breakdown at different iterations: CG %d, pipelined %d",
				tc.name, resCG.Iterations, resP.Iterations)
		}
	}
}

// TestPipelinedCGDistributedDots runs PipelinedCG with its inner products
// genuinely sharded across ranks: each rank computes partial dots over its
// slice of the index space and the DotReducer combines them with a
// NON-BLOCKING ring all-reduce, so the gamma reduction really is in flight
// while the operator is applied (which itself gathers on a second
// communicator — the reason one rank may not have two collectives
// outstanding on one Comm). Every rank must converge to the serial solution.
func TestPipelinedCGDistributedDots(t *testing.T) {
	const n, p = 24, 3
	r := rng.New(11)
	a := randWellSPD(r, n)
	xTrue := make([]float64, n)
	r.FillUniform(xTrue, -1, 1)
	b := make([]float64, n)
	denseMV(a, n)(xTrue, b)

	xSerial := make([]float64, n)
	resSerial := PipelinedCG(denseMV(a, n), b, xSerial, 1e-12, 10*n, nil)
	if !resSerial.Converged {
		t.Fatalf("serial reference did not converge: %+v", resSerial)
	}

	dotGroup := comm.NewGroup(p)  // carries the async inner-product reductions
	gathGroup := comm.NewGroup(p) // carries the matvec's row gather
	results := make([][]float64, p)
	iters := make([]int, p)
	doneCh := make(chan int, p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			dc := dotGroup.Rank(rank)
			gc := gathGroup.Rank(rank)
			lo, hi := rank*n/p, (rank+1)*n/p

			// The rank owns rows [lo, hi) of every vector.
			localB := append([]float64(nil), b[lo:hi]...)
			localX := make([]float64, hi-lo)
			mv := func(v, out []float64) {
				// Gather the full input vector (blocking collective on the
				// second communicator), then apply the owned rows.
				full := make([]float64, n)
				copy(full[lo:hi], v)
				gc.AllReduceSum(full)
				for i := lo; i < hi; i++ {
					var s float64
					for j := 0; j < n; j++ {
						s += a[i*n+j] * full[j]
					}
					out[i-lo] = s
				}
			}
			reduce := func(vals []float64) func() {
				// Wait now reports collective errors; no faults are injected
				// here, so an error would be a harness bug worth crashing on.
				wait := dc.IAllReduceSum(vals).Wait
				return func() {
					if err := wait(); err != nil {
						panic(err)
					}
				}
			}
			res := PipelinedCG(mv, localB, localX, 1e-12, 10*n, reduce)
			results[rank] = localX
			iters[rank] = res.Iterations
			doneCh <- rank
		}(rank)
	}
	for i := 0; i < p; i++ {
		<-doneCh
	}
	for rank := 0; rank < p; rank++ {
		lo, hi := rank*n/p, (rank+1)*n/p
		if iters[rank] != iters[0] {
			t.Fatalf("rank %d ran %d iterations, rank 0 ran %d (lockstep broken)", rank, iters[rank], iters[0])
		}
		for i := lo; i < hi; i++ {
			if d := math.Abs(results[rank][i-lo] - xSerial[i]); d > 1e-10 {
				t.Fatalf("rank %d element %d: distributed %v vs serial %v (diff %g)",
					rank, i, results[rank][i-lo], xSerial[i], d)
			}
		}
	}
}
