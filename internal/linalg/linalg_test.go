package linalg

import (
	"math"
	"sort"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// randSPD builds a random symmetric positive definite matrix A = B^T B + I.
func randSPD(r *rng.Rand, n int) []float64 {
	b := make([]float64, n*n)
	r.FillUniform(b, -1, 1)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k*n+i] * b[k*n+j]
			}
			a[i*n+j] = s
		}
		a[i*n+i] += 1
	}
	return a
}

func denseMV(a []float64, n int) MatVec {
	return func(v, out []float64) {
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a[i*n+j] * v[j]
			}
			out[i] = s
		}
	}
}

func TestCGSolvesSPD(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(r, n)
		xTrue := make([]float64, n)
		r.FillUniform(xTrue, -1, 1)
		b := make([]float64, n)
		denseMV(a, n)(xTrue, b)
		x := make([]float64, n)
		res := CG(denseMV(a, n), b, x, 1e-12, 10*n)
		if !res.Converged {
			t.Fatalf("n=%d CG did not converge: %+v", n, res)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("n=%d x[%d]=%v want %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := []float64{2, 0, 0, 3}
	x := []float64{5, -7}
	res := CG(denseMV(a, 2), []float64{0, 0}, x, 1e-10, 10)
	if !res.Converged || x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero RHS: x=%v res=%+v", x, res)
	}
}

func TestCGWarmStart(t *testing.T) {
	r := rng.New(2)
	n := 10
	a := randSPD(r, n)
	b := make([]float64, n)
	r.FillUniform(b, -1, 1)
	cold := make([]float64, n)
	CG(denseMV(a, n), b, cold, 1e-12, 100)
	// Warm start from the exact answer should converge immediately.
	warm := make([]float64, n)
	copy(warm, cold)
	res := CG(denseMV(a, n), b, warm, 1e-10, 100)
	if res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
}

func TestTridiagEigenKnown(t *testing.T) {
	// Tridiagonal [[2,-1,0],[-1,2,-1],[0,-1,2]] has eigenvalues 2-sqrt2, 2, 2+sqrt2.
	d, _, err := TridiagEigen([]float64{2, 2, 2}, []float64{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(d)
	want := []float64{2 - math.Sqrt2, 2, 2 + math.Sqrt2}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-10 {
			t.Fatalf("eigenvalues %v, want %v", d, want)
		}
	}
}

func TestTridiagEigenVectors(t *testing.T) {
	diag := []float64{1, -2, 0.5, 3}
	sub := []float64{0.3, -0.7, 1.1}
	d, z, err := TridiagEigen(diag, sub)
	if err != nil {
		t.Fatal(err)
	}
	n := len(diag)
	// Verify A z_k = d_k z_k.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			var av float64
			av += diag[i] * z[i*n+k]
			if i > 0 {
				av += sub[i-1] * z[(i-1)*n+k]
			}
			if i < n-1 {
				av += sub[i] * z[(i+1)*n+k]
			}
			if math.Abs(av-d[k]*z[i*n+k]) > 1e-9 {
				t.Fatalf("eigenpair %d violates A z = lambda z at row %d", k, i)
			}
		}
	}
}

func TestJacobiEigenAgainstKnown(t *testing.T) {
	// [[2,1],[1,2]] -> 1, 3.
	d, _, err := JacobiEigen([]float64{2, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(d)
	if math.Abs(d[0]-1) > 1e-10 || math.Abs(d[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [1 3]", d)
	}
}

func TestJacobiEigenpairs(t *testing.T) {
	r := rng.New(3)
	n := 12
	a := randSPD(r, n)
	d, v, err := JacobiEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += a[i*n+j] * v[j*n+k]
			}
			if math.Abs(av-d[k]*v[i*n+k]) > 1e-8 {
				t.Fatalf("Jacobi eigenpair %d invalid", k)
			}
		}
	}
	// Eigenvectors orthonormal.
	for k := 0; k < n; k++ {
		for l := k; l < n; l++ {
			var s float64
			for i := 0; i < n; i++ {
				s += v[i*n+k] * v[i*n+l]
			}
			want := 0.0
			if k == l {
				want = 1.0
			}
			if math.Abs(s-want) > 1e-9 {
				t.Fatalf("eigenvectors not orthonormal: <%d,%d> = %v", k, l, s)
			}
		}
	}
}

func TestLanczosMinMatchesJacobi(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{4, 10, 30} {
		a := randSPD(r, n)
		// Make it indefinite to exercise the general case.
		for i := 0; i < n; i++ {
			a[i*n+i] -= 3
		}
		want, _, err := MinEigDense(a, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LanczosMin(denseMV(a, n), n, nil, n, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Eigenvalue-want) > 1e-7 {
			t.Fatalf("n=%d Lanczos %v vs Jacobi %v", n, res.Eigenvalue, want)
		}
		// Residual check on the eigenvector.
		av := make([]float64, n)
		denseMV(a, n)(res.Eigenvector, av)
		for i := range av {
			if math.Abs(av[i]-res.Eigenvalue*res.Eigenvector[i]) > 1e-6 {
				t.Fatalf("n=%d eigenvector residual too large at %d", n, i)
			}
		}
	}
}

func TestLanczosDiagonalMatrix(t *testing.T) {
	// Diagonal matrix: minimal eigenvalue is the smallest entry.
	n := 16
	diag := make([]float64, n)
	r := rng.New(5)
	r.FillUniform(diag, -5, 5)
	mv := func(v, out []float64) {
		for i := range v {
			out[i] = diag[i] * v[i]
		}
	}
	res, err := LanczosMin(mv, n, nil, n, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	minD := diag[0]
	for _, d := range diag {
		if d < minD {
			minD = d
		}
	}
	if math.Abs(res.Eigenvalue-minD) > 1e-8 {
		t.Fatalf("Lanczos %v, want %v", res.Eigenvalue, minD)
	}
}

func TestLanczosBadInput(t *testing.T) {
	mv := func(v, out []float64) { copy(out, v) }
	if _, err := LanczosMin(mv, 4, nil, 1, 1e-8); err == nil {
		t.Fatal("maxKrylov=1 should error")
	}
	if _, err := LanczosMin(mv, 4, []float64{0, 0, 0, 0}, 4, 1e-8); err == nil {
		t.Fatal("zero start vector should error")
	}
}

func BenchmarkCG100(b *testing.B) {
	r := rng.New(1)
	n := 100
	a := randSPD(r, n)
	rhs := make([]float64, n)
	r.FillUniform(rhs, -1, 1)
	mv := denseMV(a, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		CG(mv, rhs, x, 1e-8, 200)
	}
}

func BenchmarkLanczos64(b *testing.B) {
	r := rng.New(1)
	n := 64
	a := randSPD(r, n)
	mv := denseMV(a, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LanczosMin(mv, n, nil, 30, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}
