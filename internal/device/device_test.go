package device

import (
	"testing"
	"time"
)

func TestHiddenMADE(t *testing.T) {
	// h = 5 (ln n)^2: spot values.
	cases := map[int]int{20: 45, 100: 106, 500: 193, 10000: 424}
	for n, want := range cases {
		if got := HiddenMADE(n); got < want-2 || got > want+2 {
			t.Errorf("HiddenMADE(%d) = %d, want ~%d", n, got, want)
		}
	}
	if HiddenMADE(1) < 1 {
		t.Error("HiddenMADE must be >= 1")
	}
}

func TestParamCounts(t *testing.T) {
	if MADEParams(10000, 500) != 2*500*10000+500+10000 {
		t.Fatal("MADE param formula wrong")
	}
	// The paper's memory anecdote: ~10M parameters at n=10K, h=500.
	if p := MADEParams(10000, 500); p < 10_000_000 || p > 10_100_000 {
		t.Fatalf("10K-dim model has %d params, expected ~10M", p)
	}
	if RBMParams(5, 3) != 3*5+3+5+1 {
		t.Fatal("RBM param formula wrong")
	}
}

func TestMaxBatchLadderMatchesPaperTable7(t *testing.T) {
	// The paper saturates GPU memory with these per-GPU batch sizes.
	d := V100()
	want := map[int]int{
		20:    1 << 19,
		50:    1 << 17,
		100:   1 << 15,
		200:   1 << 13,
		500:   1 << 11,
		1000:  1 << 9,
		2000:  1 << 7,
		5000:  1 << 4,
		10000: 1 << 2,
	}
	for n, w := range want {
		if got := d.MaxBatchTIM(n); got != w {
			t.Errorf("MaxBatchTIM(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestMaxBatchMonotone(t *testing.T) {
	d := V100()
	prev := d.MaxBatchTIM(10)
	for _, n := range []int{20, 50, 100, 1000, 10000} {
		cur := d.MaxBatchTIM(n)
		if cur > prev {
			t.Fatalf("MaxBatchTIM not non-increasing at n=%d", n)
		}
		if cur < 1 {
			t.Fatalf("MaxBatchTIM(%d) = %d", n, cur)
		}
		prev = cur
	}
}

func TestMADEAutoIterLinearInN(t *testing.T) {
	// With fixed bs, MADE+AUTO iteration time must grow ~linearly in n
	// (Table 1 behaviour: latency-dominated sequential sampling).
	d := V100()
	t100 := d.MADEAutoIter(100, HiddenMADE(100), 1024, 100).Total()
	t500 := d.MADEAutoIter(500, HiddenMADE(500), 1024, 500).Total()
	ratio := float64(t500) / float64(t100)
	if ratio < 3.5 || ratio > 9 {
		t.Fatalf("time ratio 500/100 = %v, want ~5 (linear)", ratio)
	}
}

func TestTable1ShapeMADEVsRBM(t *testing.T) {
	// RBM+MCMC must be slower than MADE+AUTO at every paper dimension, by
	// a factor that shrinks as n grows (paper: 47x at n=20, 9x at n=500).
	d := V100()
	prevRatio := 1e9
	for _, n := range []int{20, 50, 100, 200, 500} {
		made := TrainingTime(d.MADEAutoIter(n, HiddenMADE(n), 1024, n), 300)
		rbm := TrainingTime(d.RBMMCMCIter(n, n, 1024, 2, 3*n+100, 1, n), 300)
		if rbm <= made {
			t.Fatalf("n=%d: RBM (%v) not slower than MADE (%v)", n, rbm, made)
		}
		ratio := float64(rbm) / float64(made)
		if ratio > prevRatio*1.2 {
			t.Fatalf("n=%d: speedup ratio grew (%v -> %v), want shrinking", n, prevRatio, ratio)
		}
		prevRatio = ratio
	}
}

func TestTable1AbsoluteCalibration(t *testing.T) {
	// Within 2x of the paper's reported seconds for 300 iterations.
	d := V100()
	paperMADE := map[int]float64{20: 2.85, 50: 5.74, 100: 10.63, 200: 20.45, 500: 49.62}
	paperRBM := map[int]float64{20: 135.64, 50: 154.25, 100: 189.91, 200: 249.40, 500: 456.68}
	for n, want := range paperMADE {
		got := TrainingTime(d.MADEAutoIter(n, HiddenMADE(n), 1024, n), 300).Seconds()
		if got < want/2 || got > want*2 {
			t.Errorf("MADE n=%d modeled %.2fs, paper %.2fs (off >2x)", n, got, want)
		}
	}
	for n, want := range paperRBM {
		got := TrainingTime(d.RBMMCMCIter(n, n, 1024, 2, 3*n+100, 1, n), 300).Seconds()
		if got < want/2 || got > want*2 {
			t.Errorf("RBM n=%d modeled %.2fs, paper %.2fs (off >2x)", n, got, want)
		}
	}
}

func TestMCMCChainTradeoff(t *testing.T) {
	// More chains shorten the per-iteration wall time (bs/c steps) but
	// burn-in stays sequential: the paper's Eq. 14 structure.
	d := V100()
	t1 := d.RBMMCMCIter(100, 100, 1024, 1, 400, 1, 100).Sample
	t4 := d.RBMMCMCIter(100, 100, 1024, 4, 400, 1, 100).Sample
	if t4 >= t1 {
		t.Fatal("more chains should reduce sampling time")
	}
	// With huge burn-in the chain count hardly matters.
	b1 := d.RBMMCMCIter(100, 100, 64, 1, 100000, 1, 100).Sample
	b4 := d.RBMMCMCIter(100, 100, 64, 4, 100000, 1, 100).Sample
	if float64(b1)/float64(b4) > 1.01 {
		t.Fatal("burn-in-dominated regime should not parallelize")
	}
}

func TestThinningScalesTime(t *testing.T) {
	d := V100()
	base := d.RBMMCMCIter(100, 100, 1024, 2, 0, 1, 100).Sample
	x5 := d.RBMMCMCIter(100, 100, 1024, 2, 0, 5, 100).Sample
	ratio := float64(x5) / float64(base)
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("thinning x5 time ratio %v, want ~5 (Table 4 behaviour)", ratio)
	}
}

func TestDiagonalHamiltonianCheaperEnergy(t *testing.T) {
	d := V100()
	tim := d.MADEAutoIter(200, 120, 1024, 200)
	mc := d.MADEAutoIter(200, 120, 1024, 0)
	if mc.Energy >= tim.Energy {
		t.Fatal("Max-Cut (diagonal) energy phase should be cheaper than TIM")
	}
}

func TestIterCostComponentsPositive(t *testing.T) {
	d := V100()
	c := d.MADEAutoIter(50, 76, 256, 50)
	for _, v := range []time.Duration{c.Sample, c.Energy, c.Grad, c.Update} {
		if v <= 0 {
			t.Fatalf("non-positive phase cost: %+v", c)
		}
	}
	if c.Total() != c.Sample+c.Energy+c.Grad+c.Update {
		t.Fatal("Total mismatch")
	}
}
