// Package device models the GPU the paper ran on (NVIDIA Tesla V100,
// 32 GB). Real hardware is not available to this reproduction, so the
// model captures the three effects that shape the paper's timing tables:
//
//  1. Kernel-launch / framework latency: each of the n sequential
//     autoregressive sampling steps, and each MCMC step, pays a fixed
//     overhead regardless of batch size. This is what makes MADE+AUTO time
//     linear in n (Table 1) and RBM+MCMC time linear in the chain length
//     (Tables 1, 4).
//  2. Floating-point throughput: per-iteration matrix work 4*h*n*bs flops
//     per forward pass.
//  3. Memory capacity: the TIM local-energy evaluation materializes all
//     single-flip configurations, O(bs * n^2) words, which bounds the
//     memory-saturating batch ladder of Table 7 (2^19 samples at n=20 down
//     to 2^2 at n=10000).
//
// The latency/throughput constants are calibrated once against the paper's
// Table 1 and Table 6 (see EXPERIMENTS.md); they are not fit per-experiment.
package device

import (
	"math"
	"time"
)

// Device is a modeled accelerator.
type Device struct {
	Name string
	// WorkspaceBytes is the memory budget available for the activation /
	// flip-configuration workspace (a fraction of total device memory).
	WorkspaceBytes float64
	// Throughput is sustained FLOP/s on the dense kernels involved.
	Throughput float64
	// KernelLatency is the fixed overhead per launched kernel sequence
	// (one autoregressive sampling step).
	KernelLatency time.Duration
	// MCMCStepLatency is the fixed overhead per Metropolis-Hastings step
	// (framework loop iteration driving a tiny kernel).
	MCMCStepLatency time.Duration
	// MaxBatch caps the per-device batch regardless of memory.
	MaxBatch int
	// BytesPerWord is the storage width of the workspace (8 = fp64).
	BytesPerWord float64
}

// V100 returns the model calibrated against the paper's testbed
// (Tesla V100, 32 GB): KernelLatency 0.3 ms and MCMCStepLatency 0.65 ms
// reproduce Table 1 within ~15%, and the 4.2 GB flip workspace reproduces
// the exact memory-saturating batch ladder of Table 7.
func V100() Device {
	return Device{
		Name:            "V100-32GB(model)",
		WorkspaceBytes:  4.2e9,
		Throughput:      5e12,
		KernelLatency:   300 * time.Microsecond,
		MCMCStepLatency: 650 * time.Microsecond,
		MaxBatch:        1 << 19,
		BytesPerWord:    8,
	}
}

// ForwardFlops is the flop count of one MADE/RBM-style forward pass over a
// batch: two dense layers of shape (h x n) and (n x h) at 2 flops per MAC.
func ForwardFlops(n, h, bs int) float64 {
	return 4 * float64(h) * float64(n) * float64(bs)
}

// MADEParams is the parameter count d = 2hn + h + n of the paper's MADE.
func MADEParams(n, h int) int { return 2*h*n + h + n }

// RBMParams is the parameter count d = hn + h + n + 1 of the paper's RBM.
func RBMParams(n, h int) int { return h*n + h + n + 1 }

// HiddenMADE is the paper's latent-size rule h = 5 (ln n)^2, rounded.
func HiddenMADE(n int) int {
	l := math.Log(float64(n))
	h := int(math.Round(5 * l * l))
	if h < 1 {
		h = 1
	}
	return h
}

// MaxBatchTIM returns the largest power-of-two batch whose TIM local-energy
// flip workspace bs * n^2 words fits the device budget. It reproduces the
// paper's Table 7 ladder exactly: 2^19 at n=20 ... 2^2 at n=10000.
func (d Device) MaxBatchTIM(n int) int {
	perSample := float64(n) * float64(n) * d.BytesPerWord
	max := d.WorkspaceBytes / perSample
	bs := 1
	for bs*2 <= d.MaxBatch && float64(bs*2) <= max {
		bs *= 2
	}
	return bs
}

// IterCost decomposes one modeled training iteration.
type IterCost struct {
	Sample time.Duration // drawing the batch
	Energy time.Duration // local-energy measurement
	Grad   time.Duration // backward pass
	Update time.Duration // optimizer step
}

// Total is the summed iteration time.
func (c IterCost) Total() time.Duration { return c.Sample + c.Energy + c.Grad + c.Update }

func (d Device) flopTime(flops float64) time.Duration {
	return time.Duration(flops / d.Throughput * float64(time.Second))
}

// MADEAutoIter models one MADE+AUTO VQMC iteration on this device:
// n sequential sampling passes (Algorithm 1), a batched local-energy
// evaluation over bs*(flips+1) configurations, and a backward pass.
// flips is the number of off-diagonal terms per row (n for TIM, 0 for
// Max-Cut).
func (d Device) MADEAutoIter(n, h, bs, flips int) IterCost {
	var c IterCost
	c.Sample = time.Duration(n)*d.KernelLatency + d.flopTime(float64(n)*ForwardFlops(n, h, bs))
	evals := bs * (flips + 1)
	c.Energy = 2*d.KernelLatency + d.flopTime(ForwardFlops(n, h, evals))
	c.Grad = 2*d.KernelLatency + d.flopTime(2*ForwardFlops(n, h, bs))
	c.Update = d.KernelLatency + d.flopTime(float64(MADEParams(n, h)))
	return c
}

// RBMMCMCIter models one RBM+MCMC iteration: (burnIn + thin*bs/chains)
// sequential MH steps (chains advance in lockstep on-device, so wall time
// scales with steps per chain), then the same measurement/backward phases.
func (d Device) RBMMCMCIter(n, h, bs, chains, burnIn, thin int, flips int) IterCost {
	if chains < 1 {
		chains = 1
	}
	if thin < 1 {
		thin = 1
	}
	steps := burnIn + thin*bs/chains
	var c IterCost
	// Each MH step evaluates an O(h) amplitude ratio per chain.
	stepFlops := 4 * float64(h) * float64(chains)
	c.Sample = time.Duration(steps)*d.MCMCStepLatency + d.flopTime(float64(steps)*stepFlops)
	evals := bs * (flips + 1)
	c.Energy = 2*d.KernelLatency + d.flopTime(ForwardFlops(n, h, evals))
	c.Grad = 2*d.KernelLatency + d.flopTime(2*ForwardFlops(n, h, bs))
	c.Update = d.KernelLatency + d.flopTime(float64(RBMParams(n, h)))
	return c
}

// TrainingTime is the modeled wall time for iters iterations.
func TrainingTime(c IterCost, iters int) time.Duration {
	return time.Duration(iters) * c.Total()
}
