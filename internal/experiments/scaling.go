package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"github.com/vqmc-scale/parvqmc/internal/cluster"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/dist"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/stats"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// fig3MBS maps the paper's Figure 3 dimensions to their per-GPU batch
// (chosen to saturate GPU memory; the device model reproduces the ladder).
func fig3MBS(n int) int { return device.V100().MaxBatchTIM(n) }

// Figure3 evaluates the weak-scaling panels of the paper's Figure 3:
// normalized training time across GPU configurations for the large TIM
// dimensions, from the cluster model (compute + hierarchical ring
// all-reduce). The numbers should hover near 1.0 — near-optimal weak
// scaling.
func Figure3(p Preset, out io.Writer, csvDir string) error {
	dims := []int{}
	for _, n := range p.BigDims {
		if n >= 1000 {
			dims = append(dims, n)
		}
	}
	if len(dims) == 0 {
		dims = []int{1000, 2000, 5000, 10000}
	}
	configs := cluster.PaperConfigs()
	header := []string{"config", "GPUs"}
	for _, n := range dims {
		header = append(header, fmt.Sprintf("n=%d (mbs=%d)", n, fig3MBS(n)))
	}
	tbl := trace.NewTable(
		"Figure 3: normalized execution time (modeled cluster, 300 iters)", header...)

	perDim := make([][]cluster.WeakScalingPoint, len(dims))
	for j, n := range dims {
		perDim[j] = cluster.WeakScaling(configs, n, fig3MBS(n), 300)
	}
	for i, c := range configs {
		row := []interface{}{fmt.Sprintf("%dx%d", c[0], c[1]), c[0] * c[1]}
		for j := range dims {
			row = append(row, fmt.Sprintf("%.4f", perDim[j][i].Normalized))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	eff := trace.NewTable("Weak-scaling efficiency T(1x1)/T(max)", "n", "efficiency")
	for j, n := range dims {
		eff.AddRow(n, fmt.Sprintf("%.4f", cluster.Efficiency(perDim[j])))
	}
	if err := eff.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		if err := tbl.WriteCSV(filepath.Join(csvDir, "fig3.csv")); err != nil {
			return err
		}
		return eff.WriteCSV(filepath.Join(csvDir, "fig3_efficiency.csv"))
	}
	return nil
}

// buildDistTrainer assembles L identical replicas with independent sampler
// streams for a TIM instance. workers fans each replica's evaluation across
// that many goroutines (1 = the plain data-parallel scheme); srLambda > 0
// additionally enables distributed stochastic reconfiguration with a
// private SR clone per replica, solved by the given CG variant.
func buildDistTrainer(n, hsz, L, mbs, workers int, srLambda float64, solver optimizer.SolverKind, seed uint64) (*dist.Trainer, error) {
	tim := timInstance(n)
	streams := rng.New(seed).SplitN(L)
	var proto *optimizer.SR
	if srLambda > 0 {
		proto = optimizer.NewSR(srLambda)
		proto.Solver = solver
	}
	reps := make([]dist.Replica, L)
	for r := 0; r < L; r++ {
		m := nn.NewMADE(n, hsz, rng.New(seed+999)) // identical init everywhere
		var opt optimizer.Optimizer = optimizer.NewAdam(0.01)
		var sr *optimizer.SR
		if proto != nil {
			opt = optimizer.NewSGD(0.1) // the paper pairs SR with SGD
			sr = proto.Clone()
		}
		reps[r] = dist.Replica{
			Model:   m,
			Smp:     sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:     opt,
			SR:      sr,
			Workers: workers,
		}
	}
	return dist.New(tim, reps, mbs)
}

// DistSR evaluates the distributed stochastic-reconfiguration path: for a
// sweep of replica counts at fixed per-replica batch, it reports the
// converged energy, the mean CG iteration count of the Fisher solves, and
// the measured ring traffic per step — the communication cost the
// one-collective-per-CG-iteration packing keeps linear in the parameter
// count.
func DistSR(p Preset, out io.Writer, csvDir string) error {
	dims := realDims(p)
	tbl := trace.NewTable(
		fmt.Sprintf("Distributed SR: energy, CG iterations and traffic (mbs=%d, workers=2, preset %s)", p.MBS, p.Name),
		"n", "L", "energy", "mean CG iters", "last residual", "MB/step", "fisher collectives")
	for _, n := range dims {
		for _, L := range p.GPUCounts {
			tr, err := buildDistTrainer(n, hiddenMADE(n), L, p.MBS, 2, 1e-3, optimizer.SolverCG, uint64(80+L))
			if err != nil {
				return err
			}
			hist, err := tr.Train(p.Iters, nil)
			if err != nil {
				return err
			}
			var cg float64
			for _, s := range hist {
				cg += float64(s.SRIters)
			}
			cg /= float64(len(hist))
			bytes, _ := tr.Traffic()
			last := hist[len(hist)-1]
			tbl.AddRow(n, L, fmt.Sprintf("%.4f", last.Energy), fmt.Sprintf("%.1f", cg),
				fmt.Sprintf("%.2e", last.SRResidual),
				fmt.Sprintf("%.3f", float64(bytes)/float64(p.Iters)/1e6),
				tr.FisherApplies())
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "distsr.csv"))
	}
	return nil
}

// Figure4 reproduces the batch-size-vs-convergence result: with a fixed
// per-device batch (mbs=4), more devices mean a larger effective batch and
// a better converged energy, saturating for small problems. Runs are real
// distributed training with goroutine devices and ring all-reduce.
func Figure4(p Preset, out io.Writer, csvDir string) error {
	dims := realDims(p)
	header := []string{"n"}
	for _, L := range p.GPUCounts {
		header = append(header, fmt.Sprintf("L=%d (bs=%d)", L, L*p.MBS))
	}
	tbl := trace.NewTable(fmt.Sprintf(
		"Figure 4: normalized converged energy vs #GPUs (mbs=%d, preset %s)", p.MBS, p.Name),
		header...)
	raw := trace.NewTable("Figure 4 raw energies", header...)

	for _, n := range dims {
		energies := make([]float64, len(p.GPUCounts))
		for i, L := range p.GPUCounts {
			tr, err := buildDistTrainer(n, hiddenMADE(n), L, p.MBS, 1, 0, optimizer.SolverCG, uint64(60+i))
			if err != nil {
				return err
			}
			hist, err := tr.Train(p.Iters, nil)
			if err != nil {
				return err
			}
			// Average the final quarter to damp small-batch noise.
			q := len(hist) / 4
			var e float64
			for _, s := range hist[len(hist)-q:] {
				e += s.Energy
			}
			energies[i] = e / float64(q)
		}
		rawRow := []interface{}{n}
		for _, e := range energies {
			rawRow = append(rawRow, e)
		}
		raw.AddRow(rawRow...)
		norm := append([]float64(nil), energies...)
		stats.Normalize(norm)
		row := []interface{}{n}
		for _, e := range norm {
			row = append(row, fmt.Sprintf("%.4f", e))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if err := raw.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		if err := tbl.WriteCSV(filepath.Join(csvDir, "fig4.csv")); err != nil {
			return err
		}
		return raw.WriteCSV(filepath.Join(csvDir, "fig4_raw.csv"))
	}
	return nil
}

// Table6 regenerates the appendix raw data: converged energy (real
// distributed runs at runnable dimensions) and modeled training time for
// every GPU configuration and dimension, at fixed mbs=4.
func Table6(p Preset, out io.Writer, csvDir string) error {
	configs := cluster.PaperConfigs()
	timeHeader := []string{"config", "GPUs"}
	for _, n := range p.BigDims {
		timeHeader = append(timeHeader, fmt.Sprintf("n=%d", n))
	}
	timeTbl := trace.NewTable(
		fmt.Sprintf("Table 6 (time side): modeled seconds, 300 iters, mbs=%d", p.MBS), timeHeader...)
	for _, c := range configs {
		topo := cluster.Default(c[0], c[1])
		row := []interface{}{topo.String(), topo.GPUs()}
		for _, n := range p.BigDims {
			t := topo.TrainingTime(n, device.HiddenMADE(n), p.MBS, n, 300)
			row = append(row, fmt.Sprintf("%.2f", t.Seconds()))
		}
		timeTbl.AddRow(row...)
	}
	if err := timeTbl.Render(out); err != nil {
		return err
	}

	// Energy side: real runs at runnable dimensions across L = GPUs.
	dims := realDims(p)
	energyHeader := []string{"GPUs"}
	for _, n := range dims {
		energyHeader = append(energyHeader, fmt.Sprintf("n=%d", n))
	}
	energyTbl := trace.NewTable(
		fmt.Sprintf("Table 6 (energy side): converged energy, real runs (preset %s)", p.Name),
		energyHeader...)
	for _, L := range p.GPUCounts {
		row := []interface{}{L}
		for _, n := range dims {
			tr, err := buildDistTrainer(n, hiddenMADE(n), L, p.MBS, 1, 0, optimizer.SolverCG, uint64(70+L))
			if err != nil {
				return err
			}
			hist, err := tr.Train(p.Iters, nil)
			if err != nil {
				return err
			}
			q := len(hist) / 4
			var e float64
			for _, s := range hist[len(hist)-q:] {
				e += s.Energy
			}
			row = append(row, e/float64(q))
		}
		energyTbl.AddRow(row...)
	}
	if err := energyTbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		if err := timeTbl.WriteCSV(filepath.Join(csvDir, "table6_time.csv")); err != nil {
			return err
		}
		return energyTbl.WriteCSV(filepath.Join(csvDir, "table6_energy.csv"))
	}
	return nil
}

// Table7 regenerates the weak-scaling raw data at memory-saturating batch
// sizes: the per-GPU sample ladder (from the device memory model) and the
// modeled training time per configuration and dimension.
func Table7(p Preset, out io.Writer, csvDir string) error {
	dev := device.V100()
	configs := cluster.PaperConfigs()
	header := []string{"config", "GPUs"}
	for _, n := range p.BigDims {
		header = append(header, fmt.Sprintf("n=%d", n))
	}
	tbl := trace.NewTable("Table 7: modeled seconds, 300 iters, memory-saturating mbs", header...)
	ladder := []interface{}{"samples/GPU", "-"}
	for _, n := range p.BigDims {
		ladder = append(ladder, fmt.Sprintf("%d", dev.MaxBatchTIM(n)))
	}
	tbl.AddRow(ladder...)
	for _, c := range configs {
		topo := cluster.Default(c[0], c[1])
		row := []interface{}{topo.String(), topo.GPUs()}
		for _, n := range p.BigDims {
			t := topo.TrainingTime(n, device.HiddenMADE(n), dev.MaxBatchTIM(n), n, 300)
			row = append(row, fmt.Sprintf("%.2f", t.Seconds()))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "table7.csv"))
	}
	return nil
}
