package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// pipeLink is the simulated interconnect for the pipelined-CG comparison: a
// latency-dominated link, the regime the paper's timing breakdown puts the
// per-iteration SR collective in once the network saturates.
var pipeLink = comm.Link{Latency: 100 * time.Microsecond}

// PipeCG compares the classic and pipelined distributed SR Fisher solves on
// a simulated-latency interconnect. Classic CG blocks on one ring
// all-reduce per iteration, so solve wall-time carries iters x ring
// latency; Gropp's pipelined variant issues the same reductions
// non-blocking and overlaps them with the recurrence updates, moving every
// per-iteration collective off the blocking path (the "blocking/step"
// column drops to the two pre-solve reductions) at the cost of one extra
// operator application per solve. The table reports measured wall time per
// step, the blocking vs non-blocking collective split, ring traffic, and
// the converged energy (which must agree between solvers — same Krylov
// process).
func PipeCG(p Preset, out io.Writer, csvDir string) error {
	dims := realDims(p)
	if len(dims) > 1 {
		dims = dims[:1] // one runnable dimension carries the comparison
	}
	ls := []int{}
	for _, l := range p.GPUCounts {
		if l > 1 {
			ls = append(ls, l)
		}
	}
	if len(ls) > 2 {
		ls = ls[:2]
	}
	iters := p.Iters / 10
	if iters < 6 {
		iters = 6
	}

	tbl := trace.NewTable(
		fmt.Sprintf("Pipelined CG: blocking collectives off the critical path (link latency %v, mbs=%d, preset %s)",
			pipeLink.Latency, p.MBS, p.Name),
		"n", "L", "solver", "ms/step", "blocking/step", "async/step", "MB/step", "energy")
	for _, n := range dims {
		for _, L := range ls {
			for _, solver := range []optimizer.SolverKind{optimizer.SolverCG, optimizer.SolverPipelined} {
				tr, err := buildDistTrainer(n, hiddenMADE(n), L, p.MBS, 2, 1e-3, solver, uint64(90+L))
				if err != nil {
					return err
				}
				tr.SetLink(pipeLink)
				start := time.Now()
				hist, err := tr.Train(iters, nil)
				if err != nil {
					return err
				}
				elapsed := time.Since(start)
				sync, async := tr.Collectives()
				bytes, _ := tr.Traffic()
				last := hist[len(hist)-1]
				tbl.AddRow(n, L, solver.String(),
					fmt.Sprintf("%.2f", elapsed.Seconds()*1e3/float64(iters)),
					fmt.Sprintf("%.1f", float64(sync)/float64(iters)),
					fmt.Sprintf("%.1f", float64(async)/float64(iters)),
					fmt.Sprintf("%.3f", float64(bytes)/float64(iters)/1e6),
					fmt.Sprintf("%.4f", last.Energy))
			}
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}

	// Overlap timing model: what one Fisher collective costs on the link
	// (the latency classic CG pays per iteration) vs the recurrence work
	// the pipelined solve runs inside the window (~4d flops: the residual
	// norm and the direction update), on the calibrated V100. The window
	// only covers the ring time at large parameter counts — which is
	// exactly the regime whose latency wall this solver attacks; at
	// laptop-test dimensions the measured win is the blocking count, not
	// wall clock.
	dev := device.V100()
	model := trace.NewTable(
		"Modeled per-iteration ring latency vs the recurrence window that hides it (V100, payload d+1 doubles)",
		"n", "params d", "L=4 ring", "L=16 ring", "overlap window", "hidden @ L=16")
	for _, n := range p.BigDims {
		d := device.MADEParams(n, device.HiddenMADE(n))
		payload := float64(d+1) * 8
		window := time.Duration(4 * float64(d) / dev.Throughput * float64(time.Second))
		ring16 := comm.RingAllReduceTime(payload, 16, pipeLink)
		hidden := 1.0
		if ring16 > 0 && window < ring16 {
			hidden = float64(window) / float64(ring16)
		}
		model.AddRow(n, d,
			comm.RingAllReduceTime(payload, 4, pipeLink).String(),
			ring16.String(), window.String(), fmt.Sprintf("%.0f%%", 100*hidden))
	}
	if err := model.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "pipecg.csv"))
	}
	return nil
}
