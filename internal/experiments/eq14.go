package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"github.com/vqmc-scale/parvqmc/internal/cluster"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// Eq14 is a supplementary artifact (not a numbered paper table): it
// tabulates the paper's Equation 14, the parallel efficiency of MCMC
// sampling with burn-in k and thinning j across L computing units. As k
// grows, the efficiency slope decays from 1 (perfect scaling) toward 1/L —
// the analytic statement of why MCMC cannot weak-scale and AUTO can.
func Eq14(p Preset, out io.Writer, csvDir string) error {
	samplesPerUnit := 512
	burnIns := []int{0, 100, 1000, 10000, 100000}
	units := []int{2, 4, 8, 16, 24}

	header := []string{"burn-in k"}
	for _, L := range units {
		header = append(header, fmt.Sprintf("L=%d", L))
	}
	tbl := trace.NewTable(
		fmt.Sprintf("Eq. 14: MCMC parallel efficiency (j=1, n=%d samples/unit)", samplesPerUnit),
		header...)
	for _, k := range burnIns {
		row := []interface{}{k}
		for _, L := range units {
			row = append(row, fmt.Sprintf("%.4f", cluster.MCMCParallelEfficiency(k, 1, samplesPerUnit, L)))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "eq14.csv"))
	}
	return nil
}
