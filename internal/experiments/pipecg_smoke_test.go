package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestPipeCGSmoke runs the pipelined-CG experiment at smoke scale and
// checks that both solvers appear and that the pipelined rows report the
// collective split the experiment exists to show.
func TestPipeCGSmoke(t *testing.T) {
	var buf bytes.Buffer
	p := SmokePreset()
	p.Iters = 60 // /10 -> 6 measured steps per configuration
	p.GPUCounts = []int{1, 2}
	if err := Run("pipecg", p, &buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Pipelined CG") {
		t.Fatalf("missing table header:\n%s", out)
	}
	if !strings.Contains(out, "pipelined") || !strings.Contains(out, "cg") {
		t.Fatalf("missing solver rows:\n%s", out)
	}
	if !strings.Contains(out, "ring latency") {
		t.Fatalf("missing overlap timing model table:\n%s", out)
	}
}
