package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestDistSRSmoke runs the distributed-SR experiment at smoke scale and
// sanity-checks that the table reports nonzero CG work and traffic.
func TestDistSRSmoke(t *testing.T) {
	var buf bytes.Buffer
	p := SmokePreset()
	p.Iters = 10
	p.GPUCounts = []int{1, 2}
	if err := Run("distsr", p, &buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Distributed SR") {
		t.Fatalf("missing table header:\n%s", out)
	}
}
