package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/maxcut"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// Table1 reproduces the paper's Table 1: training time for 300 iterations
// of RBM&MCMC vs MADE&AUTO on TIM across dimensions. The V100 columns come
// from the calibrated device model (we have no GPU); the CPU columns are
// real wall-clock measurements at the preset's runnable dimensions, showing
// the same ordering.
func Table1(p Preset, out io.Writer, csvDir string) error {
	dev := device.V100()
	dims := PaperPreset().Dims // the modeled columns always use paper dims

	modelTable := trace.NewTable(
		fmt.Sprintf("Table 1 (modeled V100 seconds, %d iterations, bs=%d)", 300, 1024),
		append([]string{"Model", "Optimizer", "Sampler"}, dimHeaders(dims)...)...)
	rbmRow := []interface{}{"RBM", "ADAM", "MCMC"}
	madeRow := []interface{}{"MADE", "ADAM", "AUTO"}
	for _, n := range dims {
		rbm := device.TrainingTime(dev.RBMMCMCIter(n, n, 1024, 2, 3*n+100, 1, n), 300)
		made := device.TrainingTime(dev.MADEAutoIter(n, device.HiddenMADE(n), 1024, n), 300)
		rbmRow = append(rbmRow, fmt.Sprintf("%.2f", rbm.Seconds()))
		madeRow = append(madeRow, fmt.Sprintf("%.2f", made.Seconds()))
	}
	modelTable.AddRow(rbmRow...)
	modelTable.AddRow(madeRow...)
	if err := modelTable.Render(out); err != nil {
		return err
	}

	// Real CPU measurements at runnable dimensions.
	cpuTable := trace.NewTable(
		fmt.Sprintf("Table 1 (measured CPU seconds, %d iterations, bs=%d, preset %s)",
			p.Iters, p.BatchSize, p.Name),
		append([]string{"Model", "Optimizer", "Sampler"}, dimHeaders(realDims(p))...)...)
	rbmCPU := []interface{}{"RBM", "ADAM", "MCMC"}
	madeCPU := []interface{}{"MADE", "ADAM", "AUTO"}
	for _, n := range realDims(p) {
		tim := timInstance(n)
		spec := runSpec{h: tim, model: "RBM", opt: "ADAM", iters: p.Iters,
			batchSize: p.BatchSize, evalBatch: p.EvalBatch, workers: p.Workers, seed: 11}
		rbmCPU = append(rbmCPU, fmt.Sprintf("%.2f", train(spec).TrainTime.Seconds()))
		spec.model = "MADE"
		madeCPU = append(madeCPU, fmt.Sprintf("%.2f", train(spec).TrainTime.Seconds()))
	}
	cpuTable.AddRow(rbmCPU...)
	cpuTable.AddRow(madeCPU...)
	if err := cpuTable.Render(out); err != nil {
		return err
	}

	if csvDir != "" {
		if err := modelTable.WriteCSV(filepath.Join(csvDir, "table1_modeled.csv")); err != nil {
			return err
		}
		return cpuTable.WriteCSV(filepath.Join(csvDir, "table1_cpu.csv"))
	}
	return nil
}

// Table5 reproduces the hitting-time comparison: iterations and time until
// a fresh evaluation batch's mean cut surpasses a target. Targets are set
// from a Burer-Monteiro reference cut, mirroring the paper's heuristically
// chosen targets. Reported times: measured CPU seconds and modeled V100
// seconds (measured iterations x modeled per-iteration cost).
func Table5(p Preset, out io.Writer, csvDir string) error {
	dev := device.V100()
	tbl := trace.NewTable(
		fmt.Sprintf("Table 5: time to reach target cut (preset %s)", p.Name),
		"Method", "n", "target", "hit", "iters", "CPU s", "modeled V100 s")

	for _, n := range realDims(p) {
		g, mc := maxCutInstance(n)
		target := targetCut(g, n)
		for _, method := range []string{"MADE+AUTO", "RBM+MCMC"} {
			spec := runSpec{h: mc, iters: p.Iters, batchSize: p.BatchSize,
				evalBatch: p.EvalBatch, workers: p.Workers, seed: 21, opt: "ADAM"}
			var modelName string
			if method == "MADE+AUTO" {
				spec.model, modelName = "MADE", "MADE"
			} else {
				spec.model, modelName = "RBM", "RBM"
			}
			res := buildAndHit(spec, target, p)
			var perIter float64
			if modelName == "MADE" {
				perIter = dev.MADEAutoIter(n, device.HiddenMADE(n), p.BatchSize, 0).Total().Seconds()
			} else {
				perIter = dev.RBMMCMCIter(n, n, p.BatchSize, 2, 3*n+100, 1, 0).Total().Seconds()
			}
			tbl.AddRow(method, n, target, fmt.Sprintf("%v", res.hit),
				res.iters, fmt.Sprintf("%.2f", res.cpuSeconds),
				fmt.Sprintf("%.2f", float64(res.iters)*perIter))
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "table5.csv"))
	}
	return nil
}

type hitOutcome struct {
	hit        bool
	iters      int
	cpuSeconds float64
}

// buildAndHit constructs a trainer per the spec and runs TrainUntil.
func buildAndHit(spec runSpec, target float64, p Preset) hitOutcome {
	mc := spec.h.(interface{ CutFromEnergy(float64) float64 })
	n := spec.h.N()
	r := rng.New(spec.seed)
	opt, sr := buildOptimizer(spec.opt)
	cfg := core.Config{BatchSize: spec.batchSize, Workers: spec.workers, SR: sr}
	var tr *core.Trainer
	if spec.model == "MADE" {
		m := nn.NewMADE(n, hiddenMADE(n), r.Split())
		smp := sampler.NewAutoMADE(m, true, spec.workers, r.Split())
		tr = core.New(spec.h, m, smp, opt, cfg)
	} else {
		m := nn.NewRBM(n, n, r.Split())
		smp := sampler.NewMCMC(m, sampler.MCMCConfig{}, r.Split())
		tr = core.New(spec.h, m, smp, opt, cfg)
	}
	res := tr.TrainUntil(target, mc.CutFromEnergy, p.Iters*3, p.EvalBatch)
	return hitOutcome{hit: res.Hit, iters: res.Iters, cpuSeconds: res.TrainTime.Seconds()}
}

// targetCut picks a target the way the paper did: heuristically just below
// a strong solver's result — 95% of the Burer-Monteiro cut for the same
// instance (the paper's targets sit 95-98% below its Table 2 values).
func targetCut(g *graph.Graph, n int) float64 {
	if n > 64 {
		// BM is too slow to serve as an oracle at large n; fall back to a
		// fixed fraction above the random baseline.
		return 0.55 * g.TotalWeight()
	}
	ref := maxcut.BurerMonteiro(g, maxcut.BMConfig{MaxIter: 60, Rounds: 50}, rng.New(uint64(n)))
	return 0.95 * ref.Cut
}

func dimHeaders(dims []int) []string {
	out := make([]string, len(dims))
	for i, n := range dims {
		out[i] = fmt.Sprintf("n=%d", n)
	}
	return out
}

// realDims filters the preset's dims to those trainable on this machine.
func realDims(p Preset) []int {
	out := []int{}
	for _, n := range p.Dims {
		if n <= p.MaxRealDim {
			out = append(out, n)
		}
	}
	return out
}
