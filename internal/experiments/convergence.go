package experiments

import (
	"fmt"
	"io"
	"math"
	"path/filepath"

	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/maxcut"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// Figure2 records the training curves (mean local energy and its std-dev
// per iteration) for RBM&MCMC and MADE&AUTO on TIM instances, the data
// behind the paper's Figure 2. Full curves go to CSV; the table summarizes
// start/end energy and std so the stability comparison is visible in text.
func Figure2(p Preset, out io.Writer, csvDir string) error {
	tbl := trace.NewTable(
		fmt.Sprintf("Figure 2 summary: TIM training curves (preset %s, %d iters)", p.Name, p.Iters),
		"Method", "n", "E first", "E last", "std first", "std last", "stable")
	for _, n := range realDims(p) {
		tim := timInstance(n)
		for _, model := range []string{"RBM", "MADE"} {
			spec := runSpec{h: tim, model: model, opt: "ADAM", iters: p.Iters,
				batchSize: p.BatchSize, evalBatch: p.EvalBatch, workers: p.Workers, seed: 31}
			res := train(spec)
			first, last := res.Curve[0], res.Curve[len(res.Curve)-1]
			// "Stable" means monotone-ish: the last-quarter mean energy is
			// below the first-quarter mean.
			q := len(res.Curve) / 4
			var e0, e1 float64
			for i := 0; i < q; i++ {
				e0 += res.Curve[i].Energy
				e1 += res.Curve[len(res.Curve)-1-i].Energy
			}
			stable := e1 < e0
			method := model + "&MCMC"
			if model == "MADE" {
				method = model + "&AUTO"
			}
			tbl.AddRow(method, n, first.Energy, last.Energy, first.Std, last.Std,
				fmt.Sprintf("%v", stable))
			if csvDir != "" {
				c := trace.NewCurve(fmt.Sprintf("%s_n%d", method, n))
				for _, s := range res.Curve {
					c.Append(s.Iter, map[string]float64{"energy": s.Energy, "std": s.Std})
				}
				path := filepath.Join(csvDir, fmt.Sprintf("fig2_%s_n%d.csv", model, n))
				if err := c.WriteCSV(path); err != nil {
					return err
				}
			}
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "fig2_summary.csv"))
	}
	return nil
}

// Table2 reproduces the converged-objective comparison: classical Max-Cut
// baselines (Random, Goemans-Williamson, Burer-Monteiro) against
// {RBM&MCMC, MADE&AUTO} x {SGD, ADAM, SGD+SR}, on both Max-Cut (maximize
// cut) and TIM (minimize energy), averaged over seeds.
func Table2(p Preset, out io.Writer, csvDir string) error {
	dims := realDims(p)
	tbl := trace.NewTable(
		fmt.Sprintf("Table 2: optimized objectives (preset %s, %d seeds)", p.Name, p.Seeds),
		append([]string{"Problem", "Model", "Sampler", "Optimizer"}, dimHeaders(dims)...)...)

	addRow := func(problem, model, smp, opt string, cells []string) {
		row := []interface{}{problem, model, smp, opt}
		for _, c := range cells {
			row = append(row, c)
		}
		tbl.AddRow(row...)
	}

	// --- Max-Cut section: classical baselines ---
	classical := []struct {
		name string
		run  func(n int, seed uint64) float64
	}{
		{"Random", func(n int, seed uint64) float64 {
			g, _ := maxCutInstance(n)
			return maxcut.Random(g, rng.New(seed)).Cut
		}},
		{"Goemans-Williamson", func(n int, seed uint64) float64 {
			g, _ := maxCutInstance(n)
			return maxcut.GoemansWilliamson(g, maxcut.GWConfig{}, rng.New(seed)).Cut
		}},
		{"Burer-Monteiro", func(n int, seed uint64) float64 {
			g, _ := maxCutInstance(n)
			return maxcut.BurerMonteiro(g, maxcut.BMConfig{}, rng.New(seed)).Cut
		}},
	}
	for _, c := range classical {
		cells := []string{}
		for _, n := range dims {
			vals := make([]float64, p.Seeds)
			for s := 0; s < p.Seeds; s++ {
				vals[s] = c.run(n, uint64(100+s))
			}
			cells = append(cells, meanStdOver(vals))
		}
		addRow("Max-Cut", "Classical: "+c.name, "-", "-", cells)
	}

	// --- Max-Cut section: VQMC ---
	for _, model := range []string{"RBM", "MADE"} {
		smpName := map[string]string{"RBM": "MCMC", "MADE": "AUTO"}[model]
		for _, opt := range []string{"SGD", "ADAM", "SGD+SR"} {
			cells := []string{}
			for _, n := range dims {
				_, mc := maxCutInstance(n)
				vals := make([]float64, p.Seeds)
				for s := 0; s < p.Seeds; s++ {
					spec := runSpec{h: mc, model: model, opt: opt, iters: p.Iters,
						batchSize: p.BatchSize, evalBatch: p.EvalBatch,
						workers: p.Workers, seed: uint64(200 + s)}
					res := train(spec)
					vals[s] = mc.CutFromEnergy(res.EvalEnergy)
				}
				cells = append(cells, meanStdOver(vals))
			}
			addRow("Max-Cut", model, smpName, opt, cells)
		}
	}

	// --- TIM section: VQMC ---
	for _, model := range []string{"RBM", "MADE"} {
		smpName := map[string]string{"RBM": "MCMC", "MADE": "AUTO"}[model]
		for _, opt := range []string{"SGD", "ADAM", "SGD+SR"} {
			cells := []string{}
			for _, n := range dims {
				tim := timInstance(n)
				vals := make([]float64, p.Seeds)
				for s := 0; s < p.Seeds; s++ {
					spec := runSpec{h: tim, model: model, opt: opt, iters: p.Iters,
						batchSize: p.BatchSize, evalBatch: p.EvalBatch,
						workers: p.Workers, seed: uint64(300 + s)}
					vals[s] = train(spec).EvalEnergy
				}
				cells = append(cells, meanStdOver(vals))
			}
			addRow("TIM", model, smpName, opt, cells)
		}
	}

	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "table2.csv"))
	}
	return nil
}

// Table3 runs the latent-size ablation: converged cut (real runs) and
// training time (modeled V100 seconds) across hidden sizes
// {(ln n)^2, 3(ln n)^2, 5(ln n)^2, n, 5n} for MADE and
// {(ln n)^2, 3(ln n)^2, n, 5n} for RBM on Max-Cut with Adam.
func Table3(p Preset, out io.Writer, csvDir string) error {
	dev := device.V100()
	latents := func(n int) map[string]int {
		l2 := math.Log(float64(n)) * math.Log(float64(n))
		return map[string]int{
			"(ln n)^2":  maxInt(2, int(math.Round(l2))),
			"3(ln n)^2": maxInt(2, int(math.Round(3*l2))),
			"5(ln n)^2": maxInt(2, int(math.Round(5*l2))),
			"n":         n,
			"5n":        5 * n,
		}
	}
	order := []string{"(ln n)^2", "3(ln n)^2", "5(ln n)^2", "n", "5n"}

	tbl := trace.NewTable(
		fmt.Sprintf("Table 3: latent-size ablation on Max-Cut (preset %s)", p.Name),
		"Model", "n", "latent", "h", "cut", "modeled V100 s")
	for _, model := range []string{"MADE", "RBM"} {
		for _, n := range realDims(p) {
			g, mc := maxCutInstance(n)
			_ = g
			for _, name := range order {
				if model == "RBM" && name == "5(ln n)^2" {
					continue // paper omits this cell for RBM
				}
				h := latents(n)[name]
				spec := runSpec{h: mc, model: model, opt: "ADAM", latent: h,
					iters: p.Iters, batchSize: p.BatchSize, evalBatch: p.EvalBatch,
					workers: p.Workers, seed: 41}
				res := train(spec)
				cut := mc.CutFromEnergy(res.EvalEnergy)
				var modeled float64
				if model == "MADE" {
					modeled = device.TrainingTime(dev.MADEAutoIter(n, h, 1024, 0), 300).Seconds()
				} else {
					modeled = device.TrainingTime(dev.RBMMCMCIter(n, h, 1024, 2, 3*n+100, 1, 0), 300).Seconds()
				}
				tbl.AddRow(model, n, name, h, cut, fmt.Sprintf("%.2f", modeled))
			}
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "table3.csv"))
	}
	return nil
}

// Table4 runs the MCMC sampling-scheme ablation: burn-in {n, 3n+100, 10n}
// (Scheme 1) and thinning {x2, x5, x10} (Scheme 2) for RBM&ADAM on Max-Cut.
// Cut values are real runs; times are modeled V100 seconds, which reproduce
// the paper's observation that time scales with the chain length only.
func Table4(p Preset, out io.Writer, csvDir string) error {
	dev := device.V100()
	tbl := trace.NewTable(
		fmt.Sprintf("Table 4: MCMC sampling-scheme ablation (preset %s)", p.Name),
		"Scheme", "n", "burn-in", "thin", "cut", "modeled V100 s")
	type scheme struct {
		name   string
		burnIn func(n int) int
		thin   int
	}
	schemes := []scheme{
		{"1: k=n", func(n int) int { return n }, 1},
		{"1: k=3n+100", func(n int) int { return 3*n + 100 }, 1},
		{"1: k=10n", func(n int) int { return 10 * n }, 1},
		{"2: x2", func(n int) int { return 0 }, 2},
		{"2: x5", func(n int) int { return 0 }, 5},
		{"2: x10", func(n int) int { return 0 }, 10},
	}
	for _, sc := range schemes {
		for _, n := range realDims(p) {
			_, mc := maxCutInstance(n)
			k := sc.burnIn(n)
			mcfg := sampler.MCMCConfig{Chains: 2, BurnIn: k, Thin: sc.thin}
			if k == 0 {
				mcfg.BurnIn = -1 // sentinel: zero burn-in, not default
			}
			spec := runSpec{h: mc, model: "RBM", opt: "ADAM", mcmc: mcfg,
				iters: p.Iters, batchSize: p.BatchSize, evalBatch: p.EvalBatch,
				workers: p.Workers, seed: 51}
			res := train(spec)
			cut := mc.CutFromEnergy(res.EvalEnergy)
			modeled := device.TrainingTime(
				dev.RBMMCMCIter(n, n, 1024, 2, k, sc.thin, 0), 300).Seconds()
			tbl.AddRow(sc.name, n, k, sc.thin, cut, fmt.Sprintf("%.2f", modeled))
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "table4.csv"))
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
