// Package experiments regenerates every table and figure of the paper's
// evaluation section (see the per-experiment index in DESIGN.md).
//
// Two presets control scale. "paper" uses the paper's dimensions and
// iteration counts — faithful but extremely slow without the original GPU
// cluster. "ci" shrinks dimensions and iterations so every experiment runs
// on a laptop-class CPU in minutes while preserving the comparisons each
// table is about (who wins, how costs scale). Timing columns that the paper
// measured on V100 GPUs are additionally reported from the calibrated
// device model (internal/device), which is dimension-faithful at any scale.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/device"
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// Preset bundles the scale knobs of a full experiment sweep.
type Preset struct {
	Name      string
	Dims      []int // problem sizes for Tables 1-5 / Figure 2
	BigDims   []int // dimensions for Figures 3-4 / Tables 6-7
	Iters     int   // training iterations per run
	BatchSize int   // training batch size
	EvalBatch int   // evaluation batch size
	Seeds     int   // independent repetitions
	GPUCounts []int // Figure 4 device counts
	MBS       int   // per-device batch for Figures 3-4 / Table 6
	// MaxRealDim bounds the dimensions actually trained on this machine;
	// larger dimensions appear in modeled-time columns only.
	MaxRealDim int
	Workers    int // CPU workers per run
}

// PaperPreset reproduces the paper's exact parameters. Expect days of CPU
// time at the large dimensions.
func PaperPreset() Preset {
	return Preset{
		Name:       "paper",
		Dims:       []int{20, 50, 100, 200, 500},
		BigDims:    []int{20, 50, 100, 200, 500, 1000, 2000, 5000, 10000},
		Iters:      300,
		BatchSize:  1024,
		EvalBatch:  1024,
		Seeds:      5,
		GPUCounts:  []int{1, 2, 4, 8, 16, 24},
		MBS:        4,
		MaxRealDim: 500,
		Workers:    0,
	}
}

// CIPreset shrinks everything to minutes of CPU time while keeping every
// comparison qualitative: it is the preset EXPERIMENTS.md records.
func CIPreset() Preset {
	return Preset{
		Name:       "ci",
		Dims:       []int{12, 16, 24},
		BigDims:    []int{20, 50, 100, 200, 500, 1000, 2000, 5000, 10000},
		Iters:      200,
		BatchSize:  256,
		EvalBatch:  512,
		Seeds:      2,
		GPUCounts:  []int{1, 2, 4, 8, 16},
		MBS:        4,
		MaxRealDim: 32,
		Workers:    0,
	}
}

// SmokePreset is the tiny preset used by unit tests of this package.
func SmokePreset() Preset {
	return Preset{
		Name:       "smoke",
		Dims:       []int{8, 10},
		BigDims:    []int{20, 100, 1000, 10000},
		Iters:      40,
		BatchSize:  64,
		EvalBatch:  128,
		Seeds:      1,
		GPUCounts:  []int{1, 2, 4},
		MBS:        4,
		MaxRealDim: 12,
		Workers:    2,
	}
}

// PresetByName resolves "paper", "ci" or "smoke".
func PresetByName(name string) (Preset, error) {
	switch name {
	case "paper":
		return PaperPreset(), nil
	case "ci", "":
		return CIPreset(), nil
	case "smoke":
		return SmokePreset(), nil
	}
	return Preset{}, fmt.Errorf("experiments: unknown preset %q", name)
}

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Preset, out io.Writer, csvDir string) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Training time, 300 iterations, one GPU (TIM)", Table1},
		{"fig2", "Training curves for TIM (energy and std-dev)", Figure2},
		{"table2", "Converged objective values (Max-Cut and TIM)", Table2},
		{"fig3", "Weak scaling of sampling time across GPU configurations", Figure3},
		{"fig4", "Converged energy vs number of GPUs (effective batch)", Figure4},
		{"table3", "Ablation: latent size (cut and time)", Table3},
		{"table4", "Ablation: MCMC sampling scheme (cut and time)", Table4},
		{"table5", "Hitting time to target cut", Table5},
		{"batched", "Batched GEMM evaluation vs per-sample path (A/B timing)", Batched},
		{"distsr", "Distributed SR: energy, CG iterations, ring traffic", DistSR},
		{"pipecg", "Pipelined CG: classic vs overlapped SR solve on a latency link", PipeCG},
		{"table6", "Raw data: converged energy and time per GPU config", Table6},
		{"table7", "Raw data: weak-scaling times at memory-saturating batch", Table7},
		{"eq14", "Supplementary: Eq. 14 MCMC parallel efficiency", Eq14},
	}
}

// Run executes one experiment by ID.
func Run(id string, p Preset, out io.Writer, csvDir string) error {
	for _, e := range All() {
		if e.ID == id {
			fmt.Fprintf(out, "== %s: %s (preset %s) ==\n", e.ID, e.Title, p.Name)
			return e.Run(p, out, csvDir)
		}
	}
	ids := make([]string, 0)
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// ---- shared run helpers ----

// hiddenMADE applies the paper's latent rule, with a floor for tiny CI dims.
func hiddenMADE(n int) int {
	h := device.HiddenMADE(n)
	if h < 8 {
		h = 8
	}
	return h
}

// runSpec describes one VQMC training run.
type runSpec struct {
	h         hamiltonian.Hamiltonian
	model     string // "MADE" or "RBM"
	opt       string // "SGD", "ADAM", "SGD+SR"
	latent    int    // hidden size; 0 = paper default for the model
	mcmc      sampler.MCMCConfig
	iters     int
	batchSize int
	evalBatch int
	workers   int
	seed      uint64
}

// runResult is the outcome of one training run.
type runResult struct {
	EvalEnergy float64
	EvalStd    float64
	Curve      []core.IterStats
	TrainTime  time.Duration
	Trainer    *core.Trainer
}

// buildOptimizer maps a spec name to an optimizer and optional SR.
func buildOptimizer(name string) (optimizer.Optimizer, *optimizer.SR) {
	switch name {
	case "SGD":
		return optimizer.NewSGD(0.1), nil
	case "ADAM":
		return optimizer.NewAdam(0.01), nil
	case "SGD+SR":
		return optimizer.NewSGD(0.1), optimizer.NewSR(1e-3)
	}
	panic("experiments: unknown optimizer " + name)
}

// train executes a run spec end to end.
func train(spec runSpec) runResult {
	n := spec.h.N()
	r := rng.New(spec.seed)
	opt, sr := buildOptimizer(spec.opt)
	cfg := core.Config{BatchSize: spec.batchSize, Workers: spec.workers, SR: sr}

	var model core.Model
	var smp sampler.Sampler
	switch spec.model {
	case "MADE":
		hsz := spec.latent
		if hsz <= 0 {
			hsz = hiddenMADE(n)
		}
		m := nn.NewMADE(n, hsz, r.Split())
		model, smp = m, sampler.NewAutoMADE(m, true, spec.workers, r.Split())
	case "RBM":
		hsz := spec.latent
		if hsz <= 0 {
			hsz = n
		}
		m := nn.NewRBM(n, hsz, r.Split())
		model, smp = m, sampler.NewMCMC(m, spec.mcmc, r.Split())
	default:
		panic("experiments: unknown model " + spec.model)
	}

	tr := core.New(spec.h, model, smp, opt, cfg)
	start := time.Now()
	curve := tr.Train(spec.iters, nil)
	elapsed := time.Since(start)
	mean, std := tr.Evaluate(spec.evalBatch)
	return runResult{EvalEnergy: mean, EvalStd: std, Curve: curve, TrainTime: elapsed, Trainer: tr}
}

// maxCutInstance builds the fixed problem instance for a dimension: the
// paper samples each instance once per size and reuses it across seeds.
func maxCutInstance(n int) (*graph.Graph, *hamiltonian.MaxCut) {
	g := graph.RandomBernoulli(n, rng.New(uint64(1e6+n)))
	return g, hamiltonian.NewMaxCut(g)
}

// timInstance builds the fixed TIM instance for a dimension.
func timInstance(n int) *hamiltonian.TIM {
	return hamiltonian.RandomTIM(n, rng.New(uint64(2e6+n)))
}

// meanStdOver aggregates per-seed scalars into the "mean +- std" cell the
// paper reports.
func meanStdOver(values []float64) string {
	var m, s float64
	for _, v := range values {
		m += v
	}
	m /= float64(len(values))
	for _, v := range values {
		s += (v - m) * (v - m)
	}
	s = math.Sqrt(s / float64(len(values)))
	return trace.MeanStd(m, s)
}
