package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"paper", "ci", "smoke"} {
		p, err := PresetByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("PresetByName(%q) = %+v, %v", name, p, err)
		}
	}
	if p, err := PresetByName(""); err != nil || p.Name != "ci" {
		t.Fatal("empty preset should default to ci")
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"table1", "fig2", "table2", "fig3", "fig4", "table3", "table4", "table5", "batched", "distsr", "pipecg", "table6", "table7", "eq14"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("bogus", SmokePreset(), &buf, ""); err == nil {
		t.Fatal("unknown id should error")
	}
}

// TestEveryExperimentSmokes runs every experiment at smoke scale, checking
// output and CSV artifacts are produced. This is the integration test of
// the whole harness.
func TestEveryExperimentSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke suite skipped in -short mode")
	}
	p := SmokePreset()
	dir := t.TempDir()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.ID, p, &buf, dir); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s output missing banner:\n%s", e.ID, out)
			}
		})
	}
	// CSVs were written.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 10 {
		t.Fatalf("expected >=10 CSV artifacts, found %d", len(entries))
	}
	for _, want := range []string{"table1_modeled.csv", "table2.csv", "fig3.csv", "fig4.csv", "table7.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing artifact %s", want)
		}
	}
}

func TestTable1ModeledShape(t *testing.T) {
	// The modeled half of Table 1 must show RBM&MCMC slower than MADE&AUTO
	// at every dimension, as in the paper.
	var buf bytes.Buffer
	p := SmokePreset()
	p.MaxRealDim = 0 // skip real runs, keep the modeled table only
	if err := Table1(p, &buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "RBM") || !strings.Contains(out, "MADE") {
		t.Fatalf("Table1 output incomplete:\n%s", out)
	}
}

func TestRealDimsFilter(t *testing.T) {
	p := Preset{Dims: []int{8, 16, 400}, MaxRealDim: 20}
	got := realDims(p)
	if len(got) != 2 || got[0] != 8 || got[1] != 16 {
		t.Fatalf("realDims = %v", got)
	}
}

func TestHiddenMADEFloor(t *testing.T) {
	if hiddenMADE(2) < 8 {
		t.Fatal("hiddenMADE floor not applied")
	}
}

func TestInstancesAreFixed(t *testing.T) {
	// The problem instance for a size must be identical across calls
	// (sampled once, reused over seeds), as in the paper.
	g1, _ := maxCutInstance(16)
	g2, _ := maxCutInstance(16)
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("maxCutInstance not deterministic")
	}
	t1 := timInstance(12)
	t2 := timInstance(12)
	for i := range t1.Alpha {
		if t1.Alpha[i] != t2.Alpha[i] {
			t.Fatal("timInstance not deterministic")
		}
	}
}

func TestMeanStdOver(t *testing.T) {
	s := meanStdOver([]float64{1, 3})
	if !strings.Contains(s, "2") || !strings.Contains(s, "+-") {
		t.Fatalf("meanStdOver = %q", s)
	}
}
