package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
	"github.com/vqmc-scale/parvqmc/internal/trace"
)

// timeEvalPath measures the per-iteration wall time of a full VQMC step
// (sample + local energies + gradient + update) in the given evaluation
// mode, returning ns/iteration. Both modes produce bitwise-identical
// trajectories, so the comparison is pure throughput.
func timeEvalPath(n, h, bs, workers, iters int, mode core.EvalMode) (float64, *core.Trainer) {
	tim := hamiltonian.RandomTIM(n, rng.New(31))
	m := nn.NewMADE(n, h, rng.New(32))
	var smp sampler.Sampler
	if mode == core.EvalScalar {
		smp = sampler.NewAutoMADE(m, true, workers, rng.New(33))
	} else {
		smp = sampler.NewAutoBatched(n, m, workers, rng.New(33))
	}
	tr := core.New(tim, m, smp, optimizer.NewAdam(0.01),
		core.Config{BatchSize: bs, Workers: workers, Eval: mode})
	tr.Step() // warm caches and workspaces
	start := time.Now()
	tr.Train(iters, nil)
	return float64(time.Since(start).Nanoseconds()) / float64(iters), tr
}

// Batched is the scalar-vs-batched A/B: the same training step timed
// through the per-sample path and through the fused-GEMM path, across the
// preset's runnable dimensions. The energy column double-checks that the
// two trajectories are numerically identical (they are bitwise equal by
// construction; the table shows the difference as 0).
func Batched(p Preset, out io.Writer, csvDir string) error {
	workers := p.Workers
	iters := p.Iters / 10
	if iters < 3 {
		iters = 3
	}
	tbl := trace.NewTable(
		fmt.Sprintf("Batched GEMM evaluation vs per-sample path (bs=%d, %d timed iters, preset %s)",
			p.BatchSize, iters, p.Name),
		"n", "h", "scalar ms/iter", "batched ms/iter", "speedup", "|E_scalar - E_batched|")
	for _, n := range realDims(p) {
		h := hiddenMADE(n)
		sNS, trS := timeEvalPath(n, h, p.BatchSize, workers, iters, core.EvalScalar)
		bNS, trB := timeEvalPath(n, h, p.BatchSize, workers, iters, core.EvalAuto)
		eS, _ := trS.Evaluate(p.EvalBatch)
		eB, _ := trB.Evaluate(p.EvalBatch)
		diff := eS - eB
		if diff < 0 {
			diff = -diff
		}
		tbl.AddRow(n, h,
			fmt.Sprintf("%.2f", sNS/1e6),
			fmt.Sprintf("%.2f", bNS/1e6),
			fmt.Sprintf("%.2fx", sNS/bNS),
			fmt.Sprintf("%.1e", diff))
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if csvDir != "" {
		return tbl.WriteCSV(filepath.Join(csvDir, "batched.csv"))
	}
	return nil
}
