package maxcut

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func exhaustiveMaxCut(g *graph.Graph) float64 {
	x := make([]int, g.N)
	best := 0.0
	for ix := 0; ix < 1<<uint(g.N); ix++ {
		hamiltonian.IndexToBits(ix, x)
		if c := g.CutValue(x); c > best {
			best = c
		}
	}
	return best
}

func TestRandomCutNearHalf(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomBernoulli(100, r)
	var total float64
	const runs = 50
	for i := 0; i < runs; i++ {
		total += Random(g, r).Cut
	}
	mean := total / runs
	want := g.TotalWeight() / 2
	if mean < 0.93*want || mean > 1.07*want {
		t.Fatalf("random cut mean %v, want ~%v", mean, want)
	}
}

func TestGWBeatsRandomAndRespectsOptimum(t *testing.T) {
	r := rng.New(2)
	g := graph.RandomBernoulli(14, r)
	opt := exhaustiveMaxCut(g)
	res := GoemansWilliamson(g, GWConfig{}, r)
	if res.Cut > opt {
		t.Fatalf("GW cut %v exceeds optimum %v", res.Cut, opt)
	}
	// GW guarantee is 0.878 * SDP >= 0.878 * OPT in expectation; with 50
	// roundings on a small graph it should do much better than random.
	if res.Cut < 0.878*opt {
		t.Fatalf("GW cut %v below 0.878*opt (%v)", res.Cut, 0.878*opt)
	}
	if res.SDPBound < opt-1e-6 {
		t.Fatalf("SDP bound %v below optimum %v", res.SDPBound, opt)
	}
}

func TestBMFindsOptimumOnSmallGraphs(t *testing.T) {
	for seed := uint64(3); seed < 6; seed++ {
		r := rng.New(seed)
		g := graph.RandomBernoulli(12, r)
		opt := exhaustiveMaxCut(g)
		res := BurerMonteiro(g, BMConfig{}, r)
		if res.Cut != opt {
			t.Fatalf("seed %d: BM cut %v, optimum %v", seed, res.Cut, opt)
		}
	}
}

func TestBMAtLeastGW(t *testing.T) {
	r1, r2 := rng.New(7), rng.New(7)
	g := graph.RandomBernoulli(20, rng.New(8))
	gw := GoemansWilliamson(g, GWConfig{}, r1)
	bm := BurerMonteiro(g, BMConfig{}, r2)
	if bm.Cut < gw.Cut {
		t.Fatalf("BM (%v) worse than GW (%v)", bm.Cut, gw.Cut)
	}
}

func TestLocalSearchNeverDecreases(t *testing.T) {
	r := rng.New(9)
	g := graph.RandomBernoulli(30, r)
	x := make([]int, g.N)
	r.FillBits(x)
	before := g.CutValue(x)
	after := LocalSearch(g, x)
	if after < before {
		t.Fatalf("local search decreased cut: %v -> %v", before, after)
	}
	// 1-swap local optimality: no single flip improves.
	for i := 0; i < g.N; i++ {
		if flipGain(g, x, i) > 1e-9 {
			t.Fatalf("vertex %d still has positive gain", i)
		}
	}
}

func TestLocalSearchReachesHalfGuarantee(t *testing.T) {
	// A 1-swap local optimum cuts at least half the total weight.
	r := rng.New(10)
	g := graph.RandomBernoulli(40, r)
	x := make([]int, g.N)
	cut := LocalSearch(g, x) // start from all-zero (cut 0)
	if cut < g.TotalWeight()/2 {
		t.Fatalf("local optimum %v below W/2 = %v", cut, g.TotalWeight()/2)
	}
}

func TestAssignmentsAreValid(t *testing.T) {
	r := rng.New(11)
	g := graph.RandomBernoulli(10, r)
	for _, res := range []Result{
		Random(g, r),
		GoemansWilliamson(g, GWConfig{Rounds: 5, MaxIter: 50}, r),
		BurerMonteiro(g, BMConfig{Rounds: 5, MaxIter: 20}, r),
	} {
		if len(res.Assignment) != g.N {
			t.Fatal("wrong assignment length")
		}
		if g.CutValue(res.Assignment) != res.Cut {
			t.Fatalf("reported cut %v != assignment cut %v", res.Cut, g.CutValue(res.Assignment))
		}
	}
}

func BenchmarkBurerMonteiro100(b *testing.B) {
	g := graph.RandomBernoulli(100, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BurerMonteiro(g, BMConfig{MaxIter: 40, Rounds: 30}, rng.New(uint64(i)))
	}
}

func BenchmarkGoemansWilliamson100(b *testing.B) {
	g := graph.RandomBernoulli(100, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GoemansWilliamson(g, GWConfig{MaxIter: 200, Rounds: 30}, rng.New(uint64(i)))
	}
}
