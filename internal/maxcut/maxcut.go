// Package maxcut assembles the classical Max-Cut baselines of the paper's
// Table 2: the random 0.5-approximation, the Goemans-Williamson SDP
// rounding algorithm, and the Burer-Monteiro low-rank pipeline with
// Riemannian trust-region optimization, plus the 1-swap local search used
// to polish rounded cuts.
package maxcut

import (
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sdp"
)

// Result is a cut produced by one of the solvers.
type Result struct {
	Cut        float64
	Assignment []int
	// SDPBound is the relaxation value when an SDP was solved (else 0);
	// it upper-bounds the maximum cut at the relaxation optimum.
	SDPBound float64
}

// Random assigns each vertex to a side uniformly at random: the classical
// 0.5-approximation (in expectation it cuts half the total weight).
func Random(g *graph.Graph, r *rng.Rand) Result {
	x := make([]int, g.N)
	r.FillBits(x)
	return Result{Cut: g.CutValue(x), Assignment: x}
}

// GWConfig tunes GoemansWilliamson. Zero values select defaults.
type GWConfig struct {
	Rank      int // factorization rank (default ceil(sqrt(2n))+1)
	Rounds    int // random hyperplanes tried (default 50)
	MaxIter   int // Riemannian GD iterations for the SDP solve (default 500)
	LocalSwap bool
}

// GoemansWilliamson solves the Max-Cut SDP relaxation (via the
// Burer-Monteiro factorization and Riemannian gradient descent, replacing
// the paper's CVXPY interior-point solver) and rounds with random
// hyperplanes, keeping the best cut.
func GoemansWilliamson(g *graph.Graph, cfg GWConfig, r *rng.Rand) Result {
	if cfg.Rank <= 0 {
		cfg.Rank = sdp.DefaultRank(g.N)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 50
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 500
	}
	p := &sdp.Problem{G: g}
	f := sdp.NewRandom(g.N, cfg.Rank, r)
	p.GradientDescent(f, cfg.MaxIter, 1e-5)
	res := roundBest(g, p, f, cfg.Rounds, r)
	if cfg.LocalSwap {
		res.Cut = LocalSearch(g, res.Assignment)
	}
	return res
}

// BMConfig tunes BurerMonteiro. Zero values select defaults.
type BMConfig struct {
	Rank    int // default ceil(sqrt(2n))+1
	Rounds  int // default 200
	MaxIter int // trust-region outer iterations (default 200)
}

// BurerMonteiro runs the stronger baseline: the same low-rank SDP solved to
// higher accuracy with the Riemannian trust-region method (Manopt's
// algorithm), many roundings, and 1-swap local search — mirroring the
// paper's near-deterministic BM results.
func BurerMonteiro(g *graph.Graph, cfg BMConfig, r *rng.Rand) Result {
	if cfg.Rank <= 0 {
		cfg.Rank = sdp.DefaultRank(g.N)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 200
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	p := &sdp.Problem{G: g}
	f := sdp.NewRandom(g.N, cfg.Rank, r)
	// Warm start with a little gradient descent, then polish with RTR.
	p.GradientDescent(f, 50, 1e-2)
	p.TrustRegion(f, sdp.TRConfig{MaxOuter: cfg.MaxIter, Tol: 1e-7})
	res := roundBest(g, p, f, cfg.Rounds, r)
	res.Cut = LocalSearch(g, res.Assignment)
	return res
}

func roundBest(g *graph.Graph, p *sdp.Problem, f *sdp.Factorization, rounds int, r *rng.Rand) Result {
	x := make([]int, g.N)
	best := make([]int, g.N)
	bestCut := -1.0
	for t := 0; t < rounds; t++ {
		sdp.RoundHyperplane(f, r, x)
		if c := g.CutValue(x); c > bestCut {
			bestCut = c
			copy(best, x)
		}
	}
	return Result{Cut: bestCut, Assignment: best, SDPBound: p.SDPCutBound(f)}
}

// LocalSearch greedily flips single vertices while any flip improves the
// cut, modifying x in place and returning the final cut value. Each sweep
// costs O(n^2) on dense graphs; it terminates because the cut strictly
// increases.
func LocalSearch(g *graph.Graph, x []int) float64 {
	n := g.N
	// gain[i] = cut(x with i flipped) - cut(x)
	gain := make([]float64, n)
	for i := 0; i < n; i++ {
		gain[i] = flipGain(g, x, i)
	}
	for {
		best, bestGain := -1, 1e-12
		for i := 0; i < n; i++ {
			if gain[i] > bestGain {
				best, bestGain = i, gain[i]
			}
		}
		if best < 0 {
			break
		}
		x[best] = 1 - x[best]
		// Update gains of the flipped vertex and its neighbours.
		gain[best] = -gain[best]
		for j := 0; j < n; j++ {
			if j != best && g.Weight(best, j) != 0 {
				gain[j] = flipGain(g, x, j)
			}
		}
	}
	return g.CutValue(x)
}

// flipGain computes the cut change from flipping vertex i: edges to the
// same side become cut (+w), edges across become uncut (-w).
func flipGain(g *graph.Graph, x []int, i int) float64 {
	var d float64
	for j := 0; j < g.N; j++ {
		w := g.Weight(i, j)
		if w == 0 {
			continue
		}
		if x[i] == x[j] {
			d += w
		} else {
			d -= w
		}
	}
	return d
}
