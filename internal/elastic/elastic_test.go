package elastic

import (
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/comm"
	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/dist"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// supervisionDeadline bounds every collective in these tests so a scripted
// death surfaces fast; the wall-clock assertions key off it.
const supervisionDeadline = 250 * time.Millisecond

// buildTrainer mirrors the dist package's test fixture: L MADE replicas with
// identical initial parameters (initSeed) and split sampler streams
// (streamSeed), Adam, REINFORCE gradients — one collective per rank per
// step, so FailAt(victim, k-1) kills exactly step k.
func buildTrainer(t testing.TB, n, h, L, mb int, initSeed, streamSeed uint64) *dist.Trainer {
	t.Helper()
	tim := hamiltonian.RandomTIM(n, rng.New(77))
	streams := rng.New(streamSeed).SplitN(L)
	reps := make([]dist.Replica, L)
	for r := range reps {
		m := nn.NewMADE(n, h, rng.New(initSeed))
		reps[r] = dist.Replica{
			Model: m,
			Smp:   sampler.NewAutoMADE(m, true, 1, streams[r]),
			Opt:   optimizer.NewAdam(0.01),
		}
	}
	tr, err := dist.New(tim, reps, mb)
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	tr.SetCollectiveDeadline(supervisionDeadline)
	return tr
}

// madeBuilder is a working ReplicaBuilder for replacements and admissions.
func madeBuilder(rank int, model dist.Model) (dist.Replica, error) {
	m, ok := model.(*nn.MADE)
	if !ok {
		return dist.Replica{}, errors.New("checkpoint did not round-trip a *MADE")
	}
	return dist.Replica{
		Model: m,
		Smp:   sampler.NewAutoMADE(m, true, 1, rng.New(0xDEAD+uint64(rank))),
		Opt:   optimizer.NewSGD(1),
	}, nil
}

// scriptedBuilder consumes one outcome per call: true delegates to
// madeBuilder, false fails. It lets a test script exactly which recovery and
// growth attempts succeed.
func scriptedBuilder(t testing.TB, outcomes []bool) dist.ReplicaBuilder {
	t.Helper()
	i := 0
	return func(rank int, model dist.Model) (dist.Replica, error) {
		if i >= len(outcomes) {
			t.Errorf("builder called %d times, scripted for %d", i+1, len(outcomes))
			return dist.Replica{}, errors.New("elastic test: builder outcome script exhausted")
		}
		ok := outcomes[i]
		i++
		if !ok {
			return dist.Replica{}, errors.New("elastic test: scripted builder failure")
		}
		return madeBuilder(rank, model)
	}
}

func assertSameHistory(t *testing.T, ref, got []core.IterStats) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("history length %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("iter %d stats diverge: got %+v, want %+v", i+1, got[i], ref[i])
		}
	}
}

func assertSameParams(t *testing.T, ref, got *dist.Trainer) {
	t.Helper()
	if err := got.CheckConsistent(); err != nil {
		t.Fatalf("supervised trainer inconsistent: %v", err)
	}
	pr, pg := ref.Reps[0].Model.Params(), got.Reps[0].Model.Params()
	if len(pr) != len(pg) {
		t.Fatalf("param count %d, want %d", len(pg), len(pr))
	}
	for i := range pr {
		if pr[i] != pg[i] {
			t.Fatalf("param %d diverges: got %v, want %v", i, pg[i], pr[i])
		}
	}
}

// TestSupervisedReplaceBitIdentical: one rank death, a working builder —
// the supervisor replaces and the full supervised run is bit-identical to
// the uninterrupted one.
func TestSupervisedReplaceBitIdentical(t *testing.T) {
	const L, mb, steps, failStep = 4, 8, 16, 7
	tr := buildTrainer(t, 8, 10, L, mb, 201, 202)
	tr.InjectFailure(2, failStep-1)
	sup, err := New(tr, Policy{Builder: madeBuilder, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := sup.Train(steps, nil)
	if err != nil {
		t.Fatalf("supervised Train: %v", err)
	}

	ref := buildTrainer(t, 8, 10, L, mb, 201, 202)
	refHist, err := ref.Train(steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameHistory(t, refHist, hist)
	assertSameParams(t, ref, sup.Trainer())
	st := sup.Stats()
	if st.Failures != 1 || st.Replacements != 1 || st.Shrinks != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 failure handled by 1 replacement", st)
	}
	if st.FinalCheckpoint == "" {
		t.Fatal("clean supervised run left no final checkpoint")
	}
	if _, err := nn.LoadFile(st.FinalCheckpoint); err != nil {
		t.Fatalf("final checkpoint does not load: %v", err)
	}
}

// TestSupervisedShrinkFallback: no builder, so the only fix is shrinking —
// and the continuation must match the manual dist-level Shrink run
// bit-for-bit.
func TestSupervisedShrinkFallback(t *testing.T) {
	const L, mb, steps, failStep = 4, 8, 16, 7
	tr := buildTrainer(t, 8, 10, L, mb, 211, 212)
	tr.InjectFailure(1, failStep-1)
	sup, err := New(tr, Policy{MinReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := sup.Train(steps, nil)
	if err != nil {
		t.Fatalf("supervised Train: %v", err)
	}

	// Reference: the same failure handled by hand at the dist layer.
	ref := buildTrainer(t, 8, 10, L, mb, 211, 212)
	ref.InjectFailure(1, failStep-1)
	var refHist []core.IterStats
	for i := 1; i < failStep; i++ {
		s, err := ref.Step(i)
		if err != nil {
			t.Fatalf("reference step %d: %v", i, err)
		}
		refHist = append(refHist, s)
	}
	if _, err := ref.Step(failStep); err == nil {
		t.Fatal("reference failure did not surface")
	}
	refSmall, err := ref.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	for i := failStep; i <= steps; i++ {
		s, err := refSmall.Step(i)
		if err != nil {
			t.Fatalf("reference post-shrink step %d: %v", i, err)
		}
		refHist = append(refHist, s)
	}
	assertSameHistory(t, refHist, hist)
	assertSameParams(t, refSmall, sup.Trainer())
	st := sup.Stats()
	if st.Failures != 1 || st.Shrinks != 1 || st.Replacements != 0 {
		t.Fatalf("stats = %+v, want 1 failure handled by 1 shrink", st)
	}
	if got := sup.Trainer().EffectiveBatch(); got != (L-1)*mb {
		t.Fatalf("EffectiveBatch() = %d after supervised shrink, want %d", got, (L-1)*mb)
	}
}

// TestRetryBackoffCounters scripts two failed replacement attempts before a
// successful third and checks every retry/backoff counter, with the sleeps
// intercepted so the test stays fast and exact.
func TestRetryBackoffCounters(t *testing.T) {
	const L, mb, steps, failStep = 3, 4, 8, 4
	tr := buildTrainer(t, 6, 8, L, mb, 221, 222)
	tr.InjectFailure(0, failStep-1)
	sup, err := New(tr, Policy{
		Builder:    scriptedBuilder(t, []bool{false, false, true}),
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	sup.sleep = func(d time.Duration) { slept = append(slept, d) }

	hist, err := sup.Train(steps, nil)
	if err != nil {
		t.Fatalf("supervised Train: %v", err)
	}
	if len(hist) != steps {
		t.Fatalf("history has %d steps, want %d", len(hist), steps)
	}
	st := sup.Stats()
	if st.Failures != 1 || st.Retries != 2 || st.Replacements != 1 || st.Shrinks != 0 {
		t.Fatalf("stats = %+v, want failure resolved on the second retry", st)
	}
	if st.BackoffWaits != 2 || st.BackoffTotal != 3*time.Millisecond {
		t.Fatalf("backoff stats = %d waits / %v total, want 2 / 3ms", st.BackoffWaits, st.BackoffTotal)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleeps = %v, want [1ms 2ms] (exponential)", slept)
	}
	// The replacement rebuild is bit-identical to the uninterrupted run.
	ref := buildTrainer(t, 6, 8, L, mb, 221, 222)
	refHist, err := ref.Train(steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameHistory(t, refHist, hist)
	assertSameParams(t, ref, sup.Trainer())
}

// TestFloorAbortWritesFinalCheckpoint: a failure below the MinReplicas
// floor must abort with an error AND leave a loadable final checkpoint
// holding the last committed parameters.
func TestFloorAbortWritesFinalCheckpoint(t *testing.T) {
	const L, mb, steps, failStep = 2, 4, 10, 5
	dir := t.TempDir()
	tr := buildTrainer(t, 6, 8, L, mb, 231, 232)
	tr.InjectFailure(1, failStep-1)
	sup, err := New(tr, Policy{MinReplicas: 2, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := sup.Train(steps, nil)
	if err == nil {
		t.Fatal("floor abort did not surface an error")
	}
	if !errors.Is(err, comm.ErrPeerLost) {
		t.Fatalf("abort cause does not wrap the collective failure: %v", err)
	}
	if len(hist) != failStep-1 {
		t.Fatalf("history has %d steps, want the %d committed ones", len(hist), failStep-1)
	}
	st := sup.Stats()
	if st.Failures != 1 || st.FloorAborts != 1 || st.Shrinks != 0 || st.Replacements != 0 {
		t.Fatalf("stats = %+v, want a single floor abort", st)
	}
	want := filepath.Join(dir, "final-step0004.pvq")
	if st.FinalCheckpoint != want {
		t.Fatalf("FinalCheckpoint = %q, want %q", st.FinalCheckpoint, want)
	}
	wf, err := nn.LoadFile(st.FinalCheckpoint)
	if err != nil {
		t.Fatalf("final checkpoint does not load: %v", err)
	}
	// The artifact holds the survivor's last committed bytes.
	got := wf.(*nn.MADE).Params()
	wantP := sup.Trainer().Reps[0].Model.Params()
	for i := range wantP {
		if got[i] != wantP[i] {
			t.Fatalf("final checkpoint param %d = %v, want survivor's %v", i, got[i], wantP[i])
		}
	}
}

// TestAbortWithoutDeadRank: a group condemned without a rank death (a
// straggler past the deadline) has no membership fix; the supervisor must
// abort cleanly — with a final checkpoint — rather than loop.
func TestAbortWithoutDeadRank(t *testing.T) {
	const L, mb = 2, 4
	dir := t.TempDir()
	tr := buildTrainer(t, 6, 8, L, mb, 241, 242)
	sup, err := New(tr, Policy{Builder: madeBuilder, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Train(2, nil); err != nil {
		t.Fatalf("healthy prefix: %v", err)
	}
	tr.InjectStraggler(1, time.Hour)
	start := time.Now()
	_, err = sup.Train(3, nil)
	if err == nil {
		t.Fatal("straggler-condemned run did not abort")
	}
	if elapsed := time.Since(start); elapsed > 20*supervisionDeadline {
		t.Fatalf("abort took %v, want bounded by the %v deadline", elapsed, supervisionDeadline)
	}
	st := sup.Stats()
	if st.Replacements != 0 || st.Shrinks != 0 {
		t.Fatalf("stats = %+v, want no membership change for a non-death abort", st)
	}
	if st.FinalCheckpoint == "" {
		t.Fatal("non-death abort left no final checkpoint")
	}
	if _, err := nn.LoadFile(st.FinalCheckpoint); err != nil {
		t.Fatalf("final checkpoint does not load: %v", err)
	}
}

// TestSupervisedFullSchedule is the acceptance run: a scripted multi-failure
// schedule exercising every policy arm in sequence — replace, shrink, grow,
// multi-rank death, floor abort — terminating with no hang, complete
// forensics, honest per-step batch reporting, and a loadable final
// checkpoint. Run under -race in CI; the goroutine count is checked on exit.
func TestSupervisedFullSchedule(t *testing.T) {
	const L, mb = 4, 4
	before := runtime.NumGoroutine()
	dir := t.TempDir()

	tr := buildTrainer(t, 6, 8, L, mb, 251, 252)
	// Five incarnations, one fault generation each:
	//   gen0: rank 1 dies at step 3            -> builder ok   -> replace (L=4)
	//   gen1: rank 3 dies at step 6 (replay+3) -> builder fail -> shrink  (L=3)
	//   gen2: fault-free; 3 clean steps        -> builder ok   -> grow    (L=4)
	//   gen3: ranks 0+2 die at step 10         -> builder fail -> shrink  (L=2)
	//   gen4: rank 1 dies replaying step 10    -> builder fail -> 1 < floor 2 -> abort
	plan := comm.NewFaultPlan().
		Generation(comm.FaultSpec{Rank: 1, After: 2}).
		Generation(comm.FaultSpec{Rank: 3, After: 3}).
		Generation().
		Generation(comm.FaultSpec{Rank: 0, After: 1}, comm.FaultSpec{Rank: 2, After: 1}).
		Generation(comm.FaultSpec{Rank: 1, After: 0})
	tr.SetFaultPlan(plan)

	sup, err := New(tr, Policy{
		MinReplicas:   2,
		Builder:       scriptedBuilder(t, []bool{true, false, true, false, false}),
		GrowAfter:     3,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	hist, err := sup.Train(20, nil)
	if err == nil {
		t.Fatal("schedule must end in a floor abort")
	}
	if elapsed := time.Since(start); elapsed > 60*supervisionDeadline {
		t.Fatalf("schedule took %v, want bounded by the %v deadline", elapsed, supervisionDeadline)
	}
	if plan.Remaining() != 0 {
		t.Fatalf("fault plan has %d unconsumed generations", plan.Remaining())
	}

	// Nine steps committed; the batch column tells the membership story.
	wantBatch := []int{16, 16, 16, 16, 16, 12, 12, 12, 16}
	if len(hist) != len(wantBatch) {
		t.Fatalf("history has %d steps, want %d", len(hist), len(wantBatch))
	}
	for i, s := range hist {
		if s.Iter != i+1 || s.Batch != wantBatch[i] {
			t.Fatalf("hist[%d] = iter %d batch %d, want iter %d batch %d",
				i, s.Iter, s.Batch, i+1, wantBatch[i])
		}
	}

	st := sup.Stats()
	if st.Failures != 4 || st.Replacements != 1 || st.Shrinks != 2 ||
		st.Grows != 1 || st.GrowAttempts != 1 || st.FloorAborts != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 4 failures: replace, shrink, (grow), shrink, floor-abort", st)
	}

	// Complete forensics across every incarnation.
	recs := sup.Trainer().FailureHistory()
	wantRecs := []dist.FailureRecord{
		{Step: 3, Dead: []int{1}},
		{Step: 6, Dead: []int{3}},
		{Step: 10, Dead: []int{0, 2}},
		{Step: 10, Dead: []int{1}},
	}
	if len(recs) != len(wantRecs) {
		t.Fatalf("FailureHistory() = %+v, want %+v", recs, wantRecs)
	}
	for i, w := range wantRecs {
		g := recs[i]
		if g.Step != w.Step || len(g.Dead) != len(w.Dead) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Dead {
			if g.Dead[j] != w.Dead[j] {
				t.Fatalf("record %d = %+v, want %+v", i, g, w)
			}
		}
	}

	// The final checkpoint is the last committed step's parameters.
	want := filepath.Join(dir, "final-step0009.pvq")
	if st.FinalCheckpoint != want {
		t.Fatalf("FinalCheckpoint = %q, want %q", st.FinalCheckpoint, want)
	}
	if _, err := nn.LoadFile(st.FinalCheckpoint); err != nil {
		t.Fatalf("final checkpoint does not load: %v", err)
	}

	// No goroutines leaked by five incarnations' worth of groups.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
