// Package elastic supervises a distributed trainer through rank failures,
// owning the POLICY the dist mechanisms deliberately do not: when to retry a
// replacement, when to give up and shrink to the survivors, when to re-admit
// ranks, and when the membership has fallen so low the run must stop.
//
// The decision tree, applied on every failed step:
//
//  1. REPLACE — if a ReplicaBuilder is configured, attempt dist.Recover
//     (bit-identical resume at the original width) with bounded retries and
//     exponential backoff. Recovery is retry-safe: a failed attempt leaves
//     the condemned trainer exactly as it found it.
//  2. SHRINK — if replacement is unavailable or exhausted and the survivor
//     count is at or above MinReplicas, dist.Shrink to the survivors and
//     continue as a legal smaller run.
//  3. ABORT — below the MinReplicas floor (or when the group was condemned
//     without a dead rank, leaving no membership fix), write a final atomic
//     checkpoint of the last committed parameters and return the cause.
//
// Every path terminates: the trainer's bounded-wait collectives guarantee a
// failed step SURFACES within the deadline, and the supervisor guarantees
// what happens next is a rebuild or a clean, checkpointed exit — never a
// hang, including failure during recovery and multi-rank simultaneous death.
//
// When capacity returns, the supervisor re-grows: after GrowAfter
// consecutive clean steps below the original width it attempts dist.Grow
// back to the width it started with.
package elastic

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/dist"
	"github.com/vqmc-scale/parvqmc/internal/nn"
)

// Policy configures the supervisor's failure-handling behavior.
type Policy struct {
	// MinReplicas is the membership floor: a failure that would leave fewer
	// survivors aborts the run (with a final checkpoint) instead of
	// shrinking. Zero means 1 — shrink as long as anyone survives.
	MinReplicas int

	// MaxRetries is how many EXTRA replacement attempts follow a failed
	// dist.Recover before the supervisor falls back to shrinking. Zero means
	// one attempt, no retries.
	MaxRetries int

	// Backoff is the wait before the first retry; it doubles per retry, capped
	// at BackoffMax (when positive). Zero disables waiting.
	Backoff time.Duration

	// BackoffMax caps the exponential backoff. Zero means uncapped.
	BackoffMax time.Duration

	// CheckpointDir, when non-empty, is where recovery, growth and final
	// checkpoints are written (atomically, via nn.SaveFile). Empty keeps
	// recovery checkpoints in memory and skips the final artifact.
	CheckpointDir string

	// Builder constructs replacement replicas for dist.Recover and admitted
	// replicas for dist.Grow. Nil disables both — every failure falls through
	// to shrink-or-abort, and the run never re-grows.
	Builder dist.ReplicaBuilder

	// GrowAfter is how many consecutive clean steps below the starting width
	// trigger a re-grow attempt back to it. Zero disables re-growing.
	GrowAfter int
}

// Stats counts what the supervisor did, for observability and tests.
type Stats struct {
	// Failures is the number of failed steps handled.
	Failures int
	// Replacements is the number of successful dist.Recover rebuilds.
	Replacements int
	// Retries is the number of EXTRA recovery attempts after a failed one.
	Retries int
	// BackoffWaits is the number of backoff sleeps taken before retries.
	BackoffWaits int
	// BackoffTotal is the summed duration of those sleeps.
	BackoffTotal time.Duration
	// Shrinks is the number of successful shrink-to-survivors rebuilds.
	Shrinks int
	// Grows is the number of successful re-grow rebuilds.
	Grows int
	// GrowAttempts is the number of re-grows attempted (successful or not).
	GrowAttempts int
	// FloorAborts is 1 when the run stopped at the MinReplicas floor.
	FloorAborts int
	// FinalCheckpoint is the path of the final checkpoint artifact, set when
	// CheckpointDir is configured and the supervised run has ended (cleanly
	// or by abort).
	FinalCheckpoint string
}

// Supervisor drives a dist.Trainer through a training run, rebuilding it
// across failures per its Policy. It is not safe for concurrent use.
type Supervisor struct {
	tr     *dist.Trainer
	policy Policy
	// target is the starting width — the membership Grow steers back toward.
	target int
	stats  Stats
	// clean counts consecutive completed steps since the last failure or
	// membership change; re-grow triggers on it.
	clean int
	// last is the last completed iteration — the step the final checkpoint's
	// parameters correspond to.
	last int
	// sleep is time.Sleep, swappable in tests.
	sleep func(time.Duration)
}

// New wraps tr in a supervisor. The trainer's current width becomes the
// re-grow target. The policy is validated: MinReplicas defaults to 1 and
// must not exceed the trainer's width.
func New(tr *dist.Trainer, p Policy) (*Supervisor, error) {
	if tr == nil {
		return nil, errors.New("elastic: nil trainer")
	}
	if p.MinReplicas <= 0 {
		p.MinReplicas = 1
	}
	if p.MinReplicas > tr.Devices() {
		return nil, fmt.Errorf("elastic: MinReplicas %d exceeds trainer width %d", p.MinReplicas, tr.Devices())
	}
	if p.MaxRetries < 0 {
		return nil, fmt.Errorf("elastic: negative MaxRetries %d", p.MaxRetries)
	}
	if p.CheckpointDir != "" {
		// Fail at construction, not at the first failure, if the artifact
		// directory cannot exist.
		if err := os.MkdirAll(p.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("elastic: checkpoint directory: %w", err)
		}
	}
	return &Supervisor{tr: tr, policy: p, target: tr.Devices(), sleep: time.Sleep}, nil
}

// Trainer returns the CURRENT trainer incarnation — after a supervised run
// this is the trainer that executed the final steps (possibly shrunken or
// re-grown relative to the one New was given).
func (s *Supervisor) Trainer() *dist.Trainer { return s.tr }

// Stats returns a snapshot of the supervisor's counters.
func (s *Supervisor) Stats() Stats { return s.stats }

// Train runs iters supervised steps, invoking cb (when non-nil) after each
// completed one. On a failed step it applies the replace → shrink → abort
// decision tree and, unless aborting, REPLAYS the failed iteration on the
// rebuilt trainer — completed-step statistics are never lost or duplicated.
//
// The returned history holds every completed step. A nil error means all
// iters completed; otherwise the error is the abort cause and the history is
// the prefix that committed. Either way, when CheckpointDir is set the last
// committed parameters are on disk as final-step*.pvq by the time Train
// returns.
func (s *Supervisor) Train(iters int, cb func(core.IterStats)) ([]core.IterStats, error) {
	hist := make([]core.IterStats, 0, iters)
	for i := 1; i <= iters; {
		s.maybeGrow()
		st, err := s.tr.Step(i)
		if err != nil {
			if herr := s.handleFailure(err); herr != nil {
				return hist, herr
			}
			continue // replay iteration i on the rebuilt trainer
		}
		hist = append(hist, st)
		if cb != nil {
			cb(st)
		}
		s.last = i
		s.clean++
		i++
	}
	if err := s.finalCheckpoint(); err != nil {
		return hist, fmt.Errorf("elastic: final checkpoint: %w", err)
	}
	return hist, nil
}

// maybeGrow attempts to re-admit ranks back to the starting width once
// GrowAfter consecutive clean steps have passed below it. A failed attempt
// (no capacity, bad builder) leaves the trainer untouched and resets the
// clean-step counter, so attempts stay paced rather than firing every step.
func (s *Supervisor) maybeGrow() {
	p := &s.policy
	if p.GrowAfter <= 0 || p.Builder == nil || s.tr.Devices() >= s.target || s.clean < p.GrowAfter {
		return
	}
	s.stats.GrowAttempts++
	s.clean = 0
	nt, err := s.tr.Grow(p.CheckpointDir, s.target-s.tr.Devices(), p.Builder)
	if err != nil {
		return
	}
	s.tr = nt
	s.stats.Grows++
}

// handleFailure applies the decision tree to a failed step. A nil return
// means the trainer was rebuilt (replaced or shrunken) and the caller should
// replay the failed iteration; a non-nil return is the abort cause, with the
// final checkpoint already written.
func (s *Supervisor) handleFailure(cause error) error {
	s.stats.Failures++
	s.clean = 0
	dead := s.tr.DeadRanks()
	if len(dead) == 0 {
		// Condemned without a dead rank (explicit abort, straggler past the
		// deadline): there is no membership fix for this.
		return s.abort(fmt.Errorf("elastic: group condemned without a dead rank: %w", cause))
	}

	// 1. REPLACE: bounded retries with exponential backoff.
	var lastRecover error
	if s.policy.Builder != nil {
		backoff := s.policy.Backoff
		for attempt := 0; attempt <= s.policy.MaxRetries; attempt++ {
			if attempt > 0 {
				s.stats.Retries++
				if backoff > 0 {
					s.stats.BackoffWaits++
					s.stats.BackoffTotal += backoff
					s.sleep(backoff)
					backoff *= 2
					if s.policy.BackoffMax > 0 && backoff > s.policy.BackoffMax {
						backoff = s.policy.BackoffMax
					}
				}
			}
			nt, err := s.tr.Recover(s.policy.CheckpointDir, s.policy.Builder)
			if err == nil {
				s.tr = nt
				s.stats.Replacements++
				return nil
			}
			lastRecover = err
		}
	}

	// 2. SHRINK: only above the floor.
	if survivors := s.tr.Devices() - len(dead); survivors < s.policy.MinReplicas {
		s.stats.FloorAborts++
		return s.abort(errors.Join(
			fmt.Errorf("elastic: %d survivors below MinReplicas floor %d: %w", survivors, s.policy.MinReplicas, cause),
			lastRecover))
	}
	nt, err := s.tr.Shrink()
	if err != nil {
		return s.abort(errors.Join(cause, lastRecover, err))
	}
	s.tr = nt
	s.stats.Shrinks++
	return nil
}

// abort finalizes a terminating failure: the final checkpoint is written
// (best effort — a write error joins the cause rather than masking it) and
// the cause is returned for Train to surface.
func (s *Supervisor) abort(cause error) error {
	if err := s.finalCheckpoint(); err != nil {
		return errors.Join(cause, fmt.Errorf("elastic: final checkpoint: %w", err))
	}
	return cause
}

// finalCheckpoint writes the last committed parameters to
// <CheckpointDir>/final-step%04d.pvq. Any replica's bytes will do — dead
// ranks included, since a dead rank's parameters stopped advancing at the
// last committed step like everyone else's — but a survivor is preferred.
func (s *Supervisor) finalCheckpoint() error {
	if s.policy.CheckpointDir == "" {
		return nil
	}
	deadSet := make(map[int]bool)
	for _, r := range s.tr.DeadRanks() {
		deadSet[r] = true
	}
	src := 0
	for r := range s.tr.Reps {
		if !deadSet[r] {
			src = r
			break
		}
	}
	path := filepath.Join(s.policy.CheckpointDir, fmt.Sprintf("final-step%04d.pvq", s.last))
	if err := nn.SaveFile(path, s.tr.Reps[src].Model); err != nil {
		return err
	}
	s.stats.FinalCheckpoint = path
	return nil
}
