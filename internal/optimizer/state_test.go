package optimizer

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// driveSteps applies a deterministic pseudo-random gradient sequence.
func driveSteps(o Optimizer, params tensor.Vector, seed uint64, steps int) {
	r := rng.New(seed)
	g := tensor.NewVector(len(params))
	for s := 0; s < steps; s++ {
		r.FillNorm(g, 1)
		o.Step(params, g)
	}
}

func vectorsEqual(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// cloneMatchesOriginal checks the StateCloner contract: after warm-up, the
// clone must track the original bit-for-bit under further identical steps,
// and must not share storage with it.
func cloneMatchesOriginal(t *testing.T, o StateCloner, d int) {
	t.Helper()
	pOrig := tensor.NewVector(d)
	driveSteps(o, pOrig, 11, 7) // build up internal state
	clone := o.CloneState()
	pClone := append(tensor.Vector(nil), pOrig...)
	driveSteps(o, pOrig, 12, 5)
	driveSteps(clone, pClone, 12, 5)
	if !vectorsEqual(pOrig, pClone) {
		t.Fatal("clone diverged from original under identical gradients")
	}
	// Storage independence: stepping only the original must leave the clone's
	// trajectory unchanged.
	snapshot := append(tensor.Vector(nil), pClone...)
	driveSteps(o, pOrig, 13, 3)
	driveSteps(clone, pClone, 12, 0) // no-op; clone state must be untouched
	if !vectorsEqual(pClone, snapshot) {
		t.Fatal("clone shares storage with original")
	}
}

func TestSGDCloneState(t *testing.T) {
	s := NewSGD(0.1)
	s.Momentum = 0.9
	cloneMatchesOriginal(t, s, 17)
}

func TestSGDCloneStateCold(t *testing.T) {
	// Clone before any step: both start cold and must still agree.
	s := NewSGD(0.05)
	clone := s.CloneState()
	pA, pB := tensor.NewVector(9), tensor.NewVector(9)
	driveSteps(s, pA, 3, 4)
	driveSteps(clone, pB, 3, 4)
	if !vectorsEqual(pA, pB) {
		t.Fatal("cold clone diverged")
	}
}

func TestAdamCloneState(t *testing.T) {
	cloneMatchesOriginal(t, NewAdam(0.01), 17)
}

// TestAdamCloneStepCounter: the bias-correction counter must survive the
// clone — a reset counter changes the very first post-clone update.
func TestAdamCloneStepCounter(t *testing.T) {
	a := NewAdam(0.01)
	p := tensor.NewVector(5)
	driveSteps(a, p, 21, 10)
	clone := a.CloneState().(*Adam)
	if clone.t != a.t {
		t.Fatalf("clone step counter %d, want %d", clone.t, a.t)
	}
}

func TestCloneOptimizerStateRejectsUnknown(t *testing.T) {
	if _, err := CloneOptimizerState(fakeOpt{}); err == nil {
		t.Fatal("unknown optimizer cloned without error")
	}
	if o, err := CloneOptimizerState(NewSGD(0.1)); err != nil || o == nil {
		t.Fatalf("SGD clone failed: %v", err)
	}
}

type fakeOpt struct{}

func (fakeOpt) Step(params, grad tensor.Vector) {}
func (fakeOpt) Name() string                    { return "fake" }

// TestSRCaptureRestore: after a warm-up solve, capture; run more solves;
// restore; the replayed solves must produce bit-identical deltas.
func TestSRCaptureRestore(t *testing.T) {
	const d, n = 8, 32
	r := rng.New(31)
	mkBatch := func() *tensor.Batch {
		b := tensor.NewBatch(n, d)
		r.FillNorm(b.Data, 1)
		return b
	}
	s := NewSR(1e-3)
	g := tensor.NewVector(d)
	r.FillNorm(g, 1)
	s.Precondition(mkBatch(), g) // warm the solver
	snap := s.CaptureState()

	batches := []*tensor.Batch{mkBatch(), mkBatch()}
	grads := make([]tensor.Vector, 2)
	ref := make([]tensor.Vector, 2)
	for i := range ref {
		grads[i] = tensor.NewVector(d)
		r.FillNorm(grads[i], 1)
		ref[i] = append(tensor.Vector(nil), s.Precondition(batches[i], grads[i])...)
	}
	refLast := s.LastSolve()

	s.RestoreState(snap)
	for i := range ref {
		got := s.Precondition(batches[i], grads[i])
		if !vectorsEqual(got, ref[i]) {
			t.Fatalf("solve %d after restore diverged", i)
		}
	}
	if s.LastSolve() != refLast {
		t.Fatal("solve statistics diverged after restore")
	}
}

// TestSRRestoreOntoClone: the recovery path — a fresh Clone() (cold state)
// plus RestoreState must behave exactly like the original SR.
func TestSRRestoreOntoClone(t *testing.T) {
	const d, n = 6, 24
	r := rng.New(37)
	b := tensor.NewBatch(n, d)
	r.FillNorm(b.Data, 1)
	g := tensor.NewVector(d)
	r.FillNorm(g, 1)

	orig := NewSR(1e-3)
	orig.Precondition(b, g)
	snap := orig.CaptureState()

	repl := orig.Clone()
	repl.RestoreState(snap)

	b2 := tensor.NewBatch(n, d)
	r.FillNorm(b2.Data, 1)
	g2 := tensor.NewVector(d)
	r.FillNorm(g2, 1)
	want := append(tensor.Vector(nil), orig.Precondition(b2, g2)...)
	got := repl.Precondition(b2, g2)
	if !vectorsEqual(got, want) {
		t.Fatal("restored clone diverged from original")
	}
}

// TestSRCaptureIsDeepCopy: mutating the solver after capture must not
// corrupt the snapshot.
func TestSRCaptureIsDeepCopy(t *testing.T) {
	const d, n = 5, 16
	r := rng.New(41)
	b := tensor.NewBatch(n, d)
	r.FillNorm(b.Data, 1)
	g := tensor.NewVector(d)
	r.FillNorm(g, 1)
	s := NewSR(1e-3)
	s.Precondition(b, g)
	snap := s.CaptureState()
	saved := append(tensor.Vector(nil), snap.Delta...)
	s.Precondition(b, g) // mutates s.delta in place
	if !vectorsEqual(snap.Delta, saved) {
		t.Fatal("capture aliased the live warm-start vector")
	}
}

// TestSRColdCapture: capturing a never-run solver and restoring it must
// reproduce the cold-start behavior (nil delta).
func TestSRColdCapture(t *testing.T) {
	s := NewSR(1e-3)
	snap := s.CaptureState()
	if snap.Delta != nil {
		t.Fatal("cold capture has a delta")
	}
	const d, n = 4, 8
	r := rng.New(43)
	b := tensor.NewBatch(n, d)
	r.FillNorm(b.Data, 1)
	g := tensor.NewVector(d)
	r.FillNorm(g, 1)
	want := append(tensor.Vector(nil), s.Precondition(b, g)...)
	s.RestoreState(snap)
	got := s.Precondition(b, g)
	if !vectorsEqual(got, want) {
		t.Fatal("cold restore diverged from cold start")
	}
}
