package optimizer

// Optimizer and SR state capture for deterministic recovery. The recovery
// doctrine (docs/ARCHITECTURE.md, "Failure model") rebuilds a lost replica
// so that the resumed run is bit-identical to an uninterrupted one; that
// requires transplanting not just the checkpointed parameters but every
// piece of mutable trainer state — the base optimizer's moment/velocity
// buffers and the SR solver's warm-start vector. Clone()-style constructors
// deliberately zero that state, so capture/restore are separate APIs.

import (
	"fmt"

	"github.com/vqmc-scale/parvqmc/internal/linalg"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// StateCloner is implemented by optimizers whose full mutable state can be
// deep-copied onto a fresh instance of the same rule and hyperparameters.
// Both SGD and Adam implement it; a rule without it cannot participate in
// bit-identical recovery.
type StateCloner interface {
	Optimizer
	// CloneState returns a new optimizer with identical hyperparameters and
	// a deep copy of all mutable state, sharing no storage with the
	// receiver.
	CloneState() Optimizer
}

// CloneState implements StateCloner: hyperparameters plus a deep copy of
// the momentum velocity buffer.
func (s *SGD) CloneState() Optimizer {
	c := &SGD{LR: s.LR, Momentum: s.Momentum}
	if s.vel != nil {
		c.vel = append(tensor.Vector(nil), s.vel...)
	}
	return c
}

// CloneState implements StateCloner: hyperparameters, both moment buffers
// and the step counter (which drives bias correction — dropping it would
// change every subsequent update).
func (a *Adam) CloneState() Optimizer {
	c := &Adam{LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, t: a.t}
	if a.m != nil {
		c.m = append(tensor.Vector(nil), a.m...)
		c.v = append(tensor.Vector(nil), a.v...)
	}
	return c
}

// CloneOptimizerState deep-copies an optimizer via StateCloner, erroring on
// rules that cannot be cloned with state.
func CloneOptimizerState(o Optimizer) (Optimizer, error) {
	sc, ok := o.(StateCloner)
	if !ok {
		return nil, fmt.Errorf("optimizer: %s does not support state cloning", o.Name())
	}
	return sc.CloneState(), nil
}

// SRState is a snapshot of an SR preconditioner's mutable solver state: the
// warm-start vector and the last solve's statistics. Delta is nil when the
// solver has never run (cold start).
type SRState struct {
	// Delta is a deep copy of the warm-start vector carried across solves.
	Delta tensor.Vector
	// Last is the most recent solve's CG statistics.
	Last linalg.CGResult
}

// CaptureState snapshots the solver's warm-start and statistics; restoring
// the snapshot onto an SR with the same configuration replays subsequent
// solves bit-identically.
func (s *SR) CaptureState() SRState {
	st := SRState{Last: s.last}
	if s.delta != nil {
		st.Delta = append(tensor.Vector(nil), s.delta...)
	}
	return st
}

// RestoreState rewinds the solver to a captured snapshot. The SR's
// configuration (Lambda, Tol, MaxIter, MaxStepNorm, Solver) is not part of
// the snapshot and must already match the capture-time configuration for
// bit-identical replay.
func (s *SR) RestoreState(st SRState) {
	if st.Delta == nil {
		s.delta = nil
	} else {
		s.delta = append(tensor.Vector(nil), st.Delta...)
	}
	s.last = st.Last
}

var (
	_ StateCloner = (*SGD)(nil)
	_ StateCloner = (*Adam)(nil)
)
