package optimizer

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/linalg"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// TestFisherPartialWorkerInvariance pins the property the two-level
// distributed trainer depends on: the sweep output is bitwise identical for
// every worker count, because each output element is accumulated in sample
// order by exactly one worker.
func TestFisherPartialWorkerInvariance(t *testing.T) {
	r := rng.New(11)
	d, bs := 17, 29 // deliberately awkward sizes for the partitioner
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	v := tensor.NewVector(d)
	r.FillUniform(v, -1, 1)

	ref := make([]float64, d+1)
	tbuf := make([]float64, bs)
	FisherPartial(ows, v, ref, tbuf, 1)
	for _, w := range []int{2, 3, 5, 8, 64} {
		acc := make([]float64, d+1)
		FisherPartial(ows, v, acc, tbuf, w)
		for i := range ref {
			if acc[i] != ref[i] {
				t.Fatalf("workers=%d: acc[%d] = %v, workers=1 gives %v (must be bitwise equal)", w, i, acc[i], ref[i])
			}
		}
	}
}

// TestFisherApplyDotConsistent checks that the scalar ApplyDot returns is
// the inner product of its two outputs (they are assembled from the same
// pass, so they must agree to rounding).
func TestFisherApplyDotConsistent(t *testing.T) {
	r := rng.New(12)
	d, bs := 10, 25
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	v := tensor.NewVector(d)
	r.FillUniform(v, -1, 1)
	op := NewBatchFisher(ows, 1e-3, 1)
	out := tensor.NewVector(d)
	got := op.ApplyDot(v, out)
	want := v.Dot(out)
	if math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
		t.Fatalf("ApplyDot scalar %v != v.(Av) %v", got, want)
	}
}

// TestSolveFisherCGMatchesLinalgCG cross-validates the FisherOp-driven CG
// against the generic linalg.CG on the same SPD system.
func TestSolveFisherCGMatchesLinalgCG(t *testing.T) {
	r := rng.New(13)
	d, bs := 14, 40
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	b := tensor.NewVector(d)
	r.FillUniform(b, -1, 1)

	op := NewBatchFisher(ows, 1e-2, 1)
	x1 := tensor.NewVector(d)
	res1 := SolveFisherCG(op, b, x1, 1e-12, 500)

	mv := func(v, out []float64) {
		op.ApplyDot(tensor.Vector(v), tensor.Vector(out))
	}
	x2 := tensor.NewVector(d)
	res2 := linalg.CG(mv, b, x2, 1e-12, 500)

	if !res1.Converged || !res2.Converged {
		t.Fatalf("CG did not converge: fisher %+v linalg %+v", res1, res2)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-9 {
			t.Fatalf("solutions differ at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

// TestPreconditionOpMatchesPrecondition: routing a solve through an
// explicit serial FisherOp is bitwise the same computation as the
// convenience Precondition entry point.
func TestPreconditionOpMatchesPrecondition(t *testing.T) {
	r := rng.New(14)
	d, bs := 12, 30
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	grad := tensor.NewVector(d)
	r.FillUniform(grad, -1, 1)

	a := NewSR(1e-3)
	da := a.Precondition(ows, grad)
	b := a.Clone()
	db := b.PreconditionOp(NewBatchFisher(ows, b.Lambda, b.Workers), grad)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("delta[%d]: Precondition %v != PreconditionOp %v", i, da[i], db[i])
		}
	}
	if a.LastSolve() != b.LastSolve() {
		t.Fatalf("solve stats differ: %+v vs %+v", a.LastSolve(), b.LastSolve())
	}
}

// TestSRClone: configuration copied, solver state not shared.
func TestSRClone(t *testing.T) {
	a := NewSR(1e-2)
	a.Tol = 1e-9
	a.MaxIter = 123
	a.MaxStepNorm = 7
	a.Workers = 3
	r := rng.New(15)
	ows := tensor.NewBatch(20, 6)
	r.FillUniform(ows.Data, -1, 1)
	grad := tensor.NewVector(6)
	r.FillUniform(grad, -1, 1)
	a.Precondition(ows, grad) // populate warm-start state

	c := a.Clone()
	if c == a {
		t.Fatal("Clone returned the same instance")
	}
	if c.Lambda != a.Lambda || c.Tol != a.Tol || c.MaxIter != a.MaxIter ||
		c.MaxStepNorm != a.MaxStepNorm || c.Workers != a.Workers {
		t.Fatalf("Clone config mismatch: %+v vs %+v", c, a)
	}
	if c.delta != nil || c.last.Iterations != 0 {
		t.Fatal("Clone must not share solver state")
	}
}
