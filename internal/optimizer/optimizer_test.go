package optimizer

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

func TestSGDStep(t *testing.T) {
	p := tensor.Vector{1, 2}
	g := tensor.Vector{0.5, -1}
	NewSGD(0.1).Step(p, g)
	if math.Abs(p[0]-0.95) > 1e-15 || math.Abs(p[1]-2.1) > 1e-15 {
		t.Fatalf("SGD step got %v", p)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := &SGD{LR: 0.1, Momentum: 0.9}
	p := tensor.Vector{0}
	g := tensor.Vector{1}
	s.Step(p, g) // vel=1, p=-0.1
	s.Step(p, g) // vel=1.9, p=-0.29
	if math.Abs(p[0]-(-0.29)) > 1e-12 {
		t.Fatalf("momentum step got %v, want -0.29", p[0])
	}
}

func TestAdamMatchesReference(t *testing.T) {
	// Hand-computed first two Adam steps for g = [1], lr=0.1.
	a := NewAdam(0.1)
	p := tensor.Vector{0}
	g := tensor.Vector{1}
	a.Step(p, g)
	// t=1: mHat=1, vHat=1 -> p = -0.1/(1+1e-8) ~ -0.1.
	if math.Abs(p[0]+0.1) > 1e-6 {
		t.Fatalf("Adam step1 got %v, want ~-0.1", p[0])
	}
	a.Step(p, g)
	// t=2: m=0.19/... mHat=1, vHat=1 again for constant gradient.
	if math.Abs(p[0]+0.2) > 1e-6 {
		t.Fatalf("Adam step2 got %v, want ~-0.2", p[0])
	}
}

func TestAdamPerCoordinateScaling(t *testing.T) {
	// Adam normalizes per-coordinate: wildly different gradient scales
	// should produce near-equal step magnitudes.
	a := NewAdam(0.01)
	p := tensor.Vector{0, 0}
	g := tensor.Vector{100, 0.001}
	a.Step(p, g)
	if math.Abs(math.Abs(p[0])-math.Abs(p[1])) > 1e-4 {
		t.Fatalf("Adam steps not scale-invariant: %v", p)
	}
}

func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	// Minimize f(x) = 0.5 sum a_i x_i^2 from a fixed start.
	r := rng.New(1)
	a := make([]float64, 10)
	r.FillUniform(a, 0.5, 2)
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.05), &SGD{LR: 0.05, Momentum: 0.9}} {
		p := tensor.NewVector(10)
		r.FillUniform(p, -1, 1)
		g := tensor.NewVector(10)
		for it := 0; it < 500; it++ {
			for i := range g {
				g[i] = a[i] * p[i]
			}
			opt.Step(p, g)
		}
		if n := p.Norm2(); n > 1e-2 {
			t.Errorf("%s failed to converge: |x| = %v", opt.Name(), n)
		}
	}
}

func TestSRMatchesDenseSolve(t *testing.T) {
	r := rng.New(2)
	d, bs := 12, 40
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	grad := tensor.NewVector(d)
	r.FillUniform(grad, -1, 1)

	sr := NewSR(1e-3)
	sr.Tol = 1e-12
	sr.MaxIter = 500
	delta := sr.Precondition(ows, grad)

	// Dense reference: solve (S+lambda I) x = grad by CG on the dense
	// matrix (it is SPD by construction).
	m := sr.DenseFisher(ows)
	// Verify residual of the matrix-free solution against the dense matrix.
	for i := 0; i < d; i++ {
		var s float64
		for j := 0; j < d; j++ {
			s += m[i*d+j] * delta[j]
		}
		if math.Abs(s-grad[i]) > 1e-6 {
			t.Fatalf("SR solution residual %v at row %d", s-grad[i], i)
		}
	}
	if !sr.LastSolve().Converged {
		t.Fatal("SR CG did not converge")
	}
}

func TestSRWarmStartReuse(t *testing.T) {
	r := rng.New(3)
	d, bs := 8, 30
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	grad := tensor.NewVector(d)
	r.FillUniform(grad, -1, 1)
	sr := NewSR(1e-2)
	sr.Precondition(ows, grad)
	first := sr.LastSolve().Iterations
	// Same system again: warm start should converge in fewer iterations.
	sr.Precondition(ows, grad)
	if sr.LastSolve().Iterations > first {
		t.Fatalf("warm start took more iterations (%d > %d)", sr.LastSolve().Iterations, first)
	}
}

func TestSRIdentityFisher(t *testing.T) {
	// If O rows are zero, S = 0 and delta = grad/lambda.
	d := 5
	ows := tensor.NewBatch(10, d)
	grad := tensor.Vector{1, 2, 3, 4, 5}
	sr := NewSR(0.5)
	delta := sr.Precondition(ows, grad)
	for i := range delta {
		if math.Abs(delta[i]-grad[i]/0.5) > 1e-8 {
			t.Fatalf("delta = %v, want grad/lambda", delta)
		}
	}
}

func TestSRNaturalGradientDirection(t *testing.T) {
	// With strongly anisotropic O, SR must rescale the gradient toward the
	// whitened direction: components with large Fisher curvature shrink.
	r := rng.New(4)
	d, bs := 2, 200
	ows := tensor.NewBatch(bs, d)
	for k := 0; k < bs; k++ {
		ows.Sample(k)[0] = r.Norm() * 10 // high variance coordinate
		ows.Sample(k)[1] = r.Norm() * 0.1
	}
	grad := tensor.Vector{1, 1}
	sr := NewSR(1e-6)
	delta := sr.Precondition(ows, grad)
	if delta[0] >= delta[1] {
		t.Fatalf("SR did not whiten: delta = %v", delta)
	}
}

func TestNames(t *testing.T) {
	if NewSGD(0.1).Name() != "SGD" || NewAdam(0.01).Name() != "ADAM" {
		t.Fatal("optimizer names wrong")
	}
}

func BenchmarkAdamStep(b *testing.B) {
	a := NewAdam(0.01)
	p := tensor.NewVector(10000)
	g := tensor.NewVector(10000)
	rng.New(1).FillUniform(g, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(p, g)
	}
}

// BenchmarkSRSolverCG quantifies the matrix-free CG solve ablated in
// DESIGN.md against materializing the dense Fisher matrix.
func BenchmarkSRSolverCG(b *testing.B) {
	r := rng.New(1)
	d, bs := 200, 256
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	grad := tensor.NewVector(d)
	r.FillUniform(grad, -1, 1)
	sr := NewSR(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.delta = nil // cold start each time for a fair benchmark
		sr.Precondition(ows, grad)
	}
}

func BenchmarkSRSolverDense(b *testing.B) {
	r := rng.New(1)
	d, bs := 200, 256
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	sr := NewSR(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sr.DenseFisher(ows)
	}
}
