package optimizer

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// randFisherOp builds a serial Fisher operator over a random O_k batch.
func randFisherOp(seed uint64, bs, d int, lambda float64) (FisherOp, *tensor.Batch) {
	r := rng.New(seed)
	ows := tensor.NewBatch(bs, d)
	r.FillUniform(ows.Data, -1, 1)
	return NewBatchFisher(ows, lambda, 1), ows
}

// TestSolveFisherPipelinedCGMatchesClassic checks that the pipelined solve
// reaches the classic solution on random Fisher systems across dimensions,
// with iteration counts within one — Gropp's recurrences are the same
// Krylov process with a different reduction schedule.
func TestSolveFisherPipelinedCGMatchesClassic(t *testing.T) {
	for _, d := range []int{1, 2, 7, 19, 40} {
		bs := 2*d + 5
		op, _ := randFisherOp(uint64(100+d), bs, d, 1e-2)
		b := tensor.NewVector(d)
		rng.New(uint64(200 + d)).FillUniform(b, -1, 1)

		xC := tensor.NewVector(d)
		xP := tensor.NewVector(d)
		resC := SolveFisherCG(op, b, xC, 1e-13, 50*d)
		resP := SolveFisherPipelinedCG(op.(SplitFisherOp), b, xP, 1e-13, 50*d)
		if !resC.Converged || !resP.Converged {
			t.Fatalf("d=%d: classic converged=%v pipelined converged=%v", d, resC.Converged, resP.Converged)
		}
		if diff := resP.Iterations - resC.Iterations; diff < -1 || diff > 1 {
			t.Fatalf("d=%d: pipelined %d iterations vs classic %d", d, resP.Iterations, resC.Iterations)
		}
		for i := range xC {
			if diff := math.Abs(xC[i] - xP[i]); diff > 1e-10 {
				t.Fatalf("d=%d: solutions differ at %d by %g", d, i, diff)
			}
		}
	}
}

// TestSRSolverKindDispatch checks the SR knob end to end: both kinds solve
// the same preconditioning problem to the same answer, Clone preserves the
// kind, and LastSolve reports a real solve either way.
func TestSRSolverKindDispatch(t *testing.T) {
	const d, bs = 12, 30
	_, ows := randFisherOp(31, bs, d, 1e-3)
	grad := tensor.NewVector(d)
	rng.New(32).FillUniform(grad, -1, 1)

	classic := NewSR(1e-3)
	classic.Tol = 1e-12
	pipelined := classic.Clone()
	pipelined.Solver = SolverPipelined
	if clone := pipelined.Clone(); clone.Solver != SolverPipelined {
		t.Fatal("Clone dropped the solver kind")
	}
	if SolverPipelined.String() != "pipelined" || SolverCG.String() != "cg" {
		t.Fatalf("unexpected solver names %q, %q", SolverPipelined, SolverCG)
	}

	dC := append(tensor.Vector(nil), classic.Precondition(ows, grad)...)
	dP := append(tensor.Vector(nil), pipelined.Precondition(ows, grad)...)
	if classic.LastSolve().Iterations == 0 || pipelined.LastSolve().Iterations == 0 {
		t.Fatal("solver reported zero iterations")
	}
	for i := range dC {
		if diff := math.Abs(dC[i] - dP[i]); diff > 1e-9 {
			t.Fatalf("preconditioned steps differ at %d by %g", i, diff)
		}
	}
}

// corruptingOp wraps a SplitFisherOp and flips one reduced output value in
// a chosen application — inside the Start/Finish window, i.e. exactly where
// a broken non-blocking collective (a corrupted handle, a wait on stale
// bytes) would surface. It proves the equivalence comparisons have teeth:
// if the pipelined solve silently ignored the reduced bytes, the corruption
// would change nothing.
type corruptingOp struct {
	inner     SplitFisherOp
	applies   int
	corruptAt int // 1-based application index to corrupt; 0 = never
}

func (c *corruptingOp) Dim() int { return c.inner.Dim() }
func (c *corruptingOp) ApplyDot(v, out tensor.Vector) float64 {
	c.StartApply(v)
	return c.FinishApply(v, out)
}
func (c *corruptingOp) StartApply(v tensor.Vector) { c.inner.StartApply(v) }
func (c *corruptingOp) FinishApply(v, out tensor.Vector) float64 {
	dot := c.inner.FinishApply(v, out)
	c.applies++
	if c.applies == c.corruptAt {
		out[0] += 1e-7
	}
	return dot
}

// TestPipelinedSolveComparisonHasTeeth injects a perturbation into the
// reduced Fisher product of one mid-solve application and demands the
// solution drift past the tolerance the equivalence tests enforce.
func TestPipelinedSolveComparisonHasTeeth(t *testing.T) {
	const d, bs = 15, 40
	op, _ := randFisherOp(41, bs, d, 1e-3)
	b := tensor.NewVector(d)
	rng.New(42).FillUniform(b, -1, 1)

	clean := tensor.NewVector(d)
	SolveFisherPipelinedCG(op.(SplitFisherOp), b, clean, 1e-13, 500)

	dirty := tensor.NewVector(d)
	SolveFisherPipelinedCG(&corruptingOp{inner: op.(SplitFisherOp), corruptAt: 3}, b, dirty, 1e-13, 500)

	var maxDiff float64
	for i := range clean {
		if diff := math.Abs(clean[i] - dirty[i]); diff > maxDiff {
			maxDiff = diff
		}
	}
	if maxDiff <= 1e-10 {
		t.Fatalf("corrupted in-flight application changed the solution by only %g; the equivalence bound would not catch it", maxDiff)
	}
}

// TestPipelinedSolveBreakdown drives the pipelined Fisher solve into the
// delta <= 0 guard with a "Fisher" operator of negative curvature and
// checks it bails out finitely, like SolveFisherCG.
func TestPipelinedSolveBreakdown(t *testing.T) {
	neg := &negOp{d: 4}
	b := tensor.Vector{1, 2, 3, 4}
	xC := tensor.NewVector(4)
	xP := tensor.NewVector(4)
	resC := SolveFisherCG(neg, b, xC, 1e-12, 20)
	resP := SolveFisherPipelinedCG(neg, b, xP, 1e-12, 20)
	for _, res := range []struct {
		name string
		conv bool
		r    float64
	}{{"classic", resC.Converged, resC.Residual}, {"pipelined", resP.Converged, resP.Residual}} {
		if res.conv {
			t.Fatalf("%s: negative-curvature solve reported converged", res.name)
		}
		if math.IsNaN(res.r) || math.IsInf(res.r, 0) {
			t.Fatalf("%s: non-finite residual %v", res.name, res.r)
		}
	}
	if resC.Iterations != resP.Iterations {
		t.Fatalf("breakdown at different iterations: classic %d, pipelined %d", resC.Iterations, resP.Iterations)
	}
}

// negOp is -I as a SplitFisherOp.
type negOp struct{ d int }

func (n *negOp) Dim() int { return n.d }
func (n *negOp) ApplyDot(v, out tensor.Vector) float64 {
	n.StartApply(v)
	return n.FinishApply(v, out)
}
func (n *negOp) StartApply(tensor.Vector) {}
func (n *negOp) FinishApply(v, out tensor.Vector) float64 {
	for i := range v {
		out[i] = -v[i]
	}
	return v.Dot(out)
}
