// Matrix-free Fisher operator machinery behind stochastic reconfiguration.
//
// The SR solve is conjugate gradients on (S + lambda I) delta = g where
// S = E[O O^T] - E[O] E[O]^T is estimated from per-sample log-derivative
// rows O_k. Everything CG touches is either a replicated d-vector or a batch
// sum over the O_k rows, so the solve distributes naturally when the rows
// are sharded across replicas: each replica forms its local partial sums and
// one all-reduce per CG iteration combines them (the formulation of
// Neuscamman, Umrigar & Chan, arXiv:1108.0900). The FisherOp interface
// carries exactly that split: ApplyDot produces both the operator output and
// the p.Ap inner product from one pass over the rows, so a distributed
// implementation needs a single collective per call.
package optimizer

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/linalg"
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// FisherOp applies the regularized Fisher operator A = S + lambda I without
// materializing it. Implementations are stateful per solve (they hold the
// O_k rows and the batch mean of O) but must not retain v or out across
// calls.
type FisherOp interface {
	// Dim returns the parameter dimension d.
	Dim() int
	// ApplyDot computes out = A v and returns dot(v, out), both assembled
	// from the same one-pass batch statistics. Distributed implementations
	// combine their local partials with exactly one collective per call.
	ApplyDot(v, out tensor.Vector) float64
}

// SplitFisherOp is a FisherOp whose application can be cut at the
// synchronization point: StartApply performs the local O_k sweep and kicks
// off the (non-blocking) reduction of the one-pass statistics; FinishApply
// waits for the reduced bytes and assembles out = A v, returning dot(v, out)
// exactly as ApplyDot would. Between the two calls the reduction is in
// flight and the caller overlaps independent local work — the hook the
// pipelined CG solve is built on. Calls must strictly alternate
// (Start, Finish, Start, ...) with the same v, and v and the operator's
// internal buffers must not be touched while an application is open.
// Serial implementations split at the same point with nothing in flight,
// so the arithmetic — and therefore the trained bytes — are identical.
type SplitFisherOp interface {
	FisherOp
	StartApply(v tensor.Vector)
	FinishApply(v, out tensor.Vector) float64
}

// FisherPartial performs the local sweep over the O_k rows for a
// Fisher-vector product, writing into acc (length d+1)
//
//	acc[:d] = sum_k O_k (O_k . v)   and   acc[d] = sum_k (O_k . v)^2.
//
// The trailing scalar is the same-pass partial of the p.Ap dot product CG
// needs, which is why distributed SR can pack it alongside the vector in a
// single all-reduce (acc can alias the packed collective buffer directly).
// tbuf is an N-length workspace for the per-sample dot products.
//
// The sweep is bitwise independent of the worker count: pass 1 computes
// t_k = O_k . v in parallel over rows (each t_k by exactly one worker),
// pass 2 computes acc[i] = sum_k t_k O_ki in parallel over COLUMNS, so each
// element is accumulated in sample order by exactly one worker, and the
// trailing scalar is reduced serially in sample order. Worker partitioning
// therefore only changes who computes each independent element — the
// invariance that lets two-level replica x worker trainers keep bit-exact
// parity with any other worker configuration.
func FisherPartial(ows *tensor.Batch, v tensor.Vector, acc, tbuf []float64, workers int) {
	d := ows.Dim
	parallel.For(ows.N, workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			tbuf[k] = ows.Sample(k).Dot(v)
		}
	})
	parallel.For(d, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc[i] = 0
		}
		for k := 0; k < ows.N; k++ {
			tk := tbuf[k]
			row := ows.Data[k*d : (k+1)*d]
			for i := lo; i < hi; i++ {
				acc[i] += tk * row[i]
			}
		}
	})
	var s float64
	for k := 0; k < ows.N; k++ {
		s += tbuf[k] * tbuf[k]
	}
	acc[d] = s
}

// FisherFinish turns globally reduced one-pass statistics (the output of
// FisherPartial, summed over all replicas) into the operator application
//
//	out = acc[:d]/B - (obar.v) obar + lambda v
//
// and returns dot(v, out) assembled from the packed scalar:
// acc[d]/B - (obar.v)^2 + lambda (v.v). The dot is the variance form of
// p.Ap (non-negative up to rounding for lambda > 0), so CG's positive-
// definiteness guard keeps working. Every rank of a distributed group
// executes this on bit-identical reduced bytes, producing bit-identical
// outputs.
func FisherFinish(acc []float64, obar, v, out tensor.Vector, lambda, batchN float64) float64 {
	d := len(out)
	ov := obar.Dot(v)
	for i := 0; i < d; i++ {
		out[i] = acc[i]/batchN - ov*obar[i] + lambda*v[i]
	}
	return acc[d]/batchN - ov*ov + lambda*v.Dot(v)
}

// batchFisher is the serial FisherOp: all O_k rows live in one batch on one
// device.
type batchFisher struct {
	ows     *tensor.Batch
	obar    tensor.Vector
	acc     []float64 // d+1 sweep output
	tbuf    []float64 // N per-sample dot products
	lambda  float64
	workers int
}

// NewBatchFisher builds the serial Fisher operator over a full O_k batch,
// computing the batch mean obar up front. workers bounds the row sweep
// parallelism inside ApplyDot.
func NewBatchFisher(ows *tensor.Batch, lambda float64, workers int) FisherOp {
	bs := float64(ows.N)
	obar := tensor.NewVector(ows.Dim)
	for k := 0; k < ows.N; k++ {
		obar.Add(ows.Sample(k))
	}
	obar.Scale(1 / bs)
	return &batchFisher{ows: ows, obar: obar,
		acc: make([]float64, ows.Dim+1), tbuf: make([]float64, ows.N),
		lambda: lambda, workers: workers}
}

// Dim implements FisherOp.
func (f *batchFisher) Dim() int { return f.ows.Dim }

// ApplyDot implements FisherOp.
func (f *batchFisher) ApplyDot(v, out tensor.Vector) float64 {
	f.StartApply(v)
	return f.FinishApply(v, out)
}

// StartApply implements SplitFisherOp: the serial operator has no
// collective to launch, so the "start" is just the one-pass sweep.
func (f *batchFisher) StartApply(v tensor.Vector) {
	FisherPartial(f.ows, v, f.acc, f.tbuf, f.workers)
}

// FinishApply implements SplitFisherOp.
func (f *batchFisher) FinishApply(v, out tensor.Vector) float64 {
	return FisherFinish(f.acc, f.obar, v, out, f.lambda, float64(f.ows.N))
}

// SolveFisherCG runs conjugate gradients on A x = b through a FisherOp,
// starting from the current contents of x. It mirrors linalg.CG exactly
// (same update order, same stopping rules) but sources the p.Ap inner
// product from ApplyDot, so a distributed op pays one collective per
// iteration instead of two. All control flow depends only on replicated
// values, so every rank of a distributed group takes identical branches and
// issues the same number of collectives — the lockstep property the ring
// all-reduce requires.
func SolveFisherCG(op FisherOp, b, x tensor.Vector, tol float64, maxIter int) linalg.CGResult {
	n := len(b)
	r := make([]float64, n)
	p := make([]float64, n)
	ap := tensor.NewVector(n)

	op.ApplyDot(x, ap)
	var bnorm float64
	for i := range b {
		r[i] = b[i] - ap[i]
		bnorm += b[i] * b[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return linalg.CGResult{Converged: true}
	}
	copy(p, r)
	rr := tensor.Vector(r).Dot(tensor.Vector(r))
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rr)/bnorm < tol {
			return linalg.CGResult{Iterations: k, Residual: math.Sqrt(rr) / bnorm, Converged: true}
		}
		pap := op.ApplyDot(p, ap)
		if pap <= 0 {
			// Not positive definite along p; bail out with best iterate.
			return linalg.CGResult{Iterations: k, Residual: math.Sqrt(rr) / bnorm, Converged: false}
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := tensor.Vector(r).Dot(tensor.Vector(r))
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return linalg.CGResult{Iterations: maxIter, Residual: math.Sqrt(rr) / bnorm, Converged: math.Sqrt(rr)/bnorm < tol}
}

// SolveFisherPipelinedCG runs Gropp's overlapped conjugate-gradient variant
// (mirroring linalg.PipelinedCG) on A x = b through a SplitFisherOp. The
// CG vectors are replicated on every rank of a distributed group, so the
// inner products are free local arithmetic and the ONLY synchronization per
// iteration is the operator application itself — which this solver issues
// through StartApply/FinishApply so the ring reduction for iteration k's
// Fisher-vector product is in flight while the beta and search-direction
// recurrences of the same iteration run. Classic SolveFisherCG blocks on
// its collective at the point of maximal dependency (the p.Ap it needs
// immediately); here every collective is non-blocking and the solve issues
// ZERO blocking collectives, paying max(sweep-reduction, recurrence) per
// iteration instead of their sum.
//
// All control flow depends only on replicated values, so every rank takes
// identical branches and issues the same collectives in the same order —
// the lockstep property the ring requires. The cost relative to classic is
// one extra operator application per solve (s0 = A p0 is computed fresh
// rather than inherited), after which s = A p is maintained by the
// recurrence s <- w + beta s with w = A r the fresh product.
func SolveFisherPipelinedCG(op SplitFisherOp, b, x tensor.Vector, tol float64, maxIter int) linalg.CGResult {
	n := len(b)
	r := tensor.NewVector(n)
	p := tensor.NewVector(n)
	s := tensor.NewVector(n) // s = A p, maintained by recurrence
	w := tensor.NewVector(n) // w = A r, the fresh product each iteration

	// r0 = b - A x0; ||b|| is formed while the reduction is in flight.
	op.StartApply(x)
	bnorm := math.Sqrt(b.Dot(b))
	op.FinishApply(x, w)
	for i := range b {
		r[i] = b[i] - w[i]
	}
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return linalg.CGResult{Converged: true}
	}
	copy(p, r)
	// s0 = A p0, overlapped with gamma0 = (r0, r0).
	op.StartApply(p)
	gamma := r.Dot(r)
	op.FinishApply(p, s)

	for k := 0; k < maxIter; k++ {
		if math.Sqrt(gamma)/bnorm < tol {
			return linalg.CGResult{Iterations: k, Residual: math.Sqrt(gamma) / bnorm, Converged: true}
		}
		delta := p.Dot(s)
		if delta <= 0 {
			// Not positive definite along p; bail out with best iterate.
			return linalg.CGResult{Iterations: k, Residual: math.Sqrt(gamma) / bnorm, Converged: false}
		}
		alpha := gamma / delta
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * s[i]
		}
		// Kick off the one fresh Fisher product of the iteration, then run
		// everything that does not depend on it — the residual norm, beta
		// and the direction update — inside the overlap window.
		op.StartApply(r)
		gammaNew := r.Dot(r)
		beta := gammaNew / gamma
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		op.FinishApply(r, w)
		for i := range s {
			s[i] = w[i] + beta*s[i]
		}
		gamma = gammaNew
	}
	return linalg.CGResult{Iterations: maxIter, Residual: math.Sqrt(gamma) / bnorm, Converged: math.Sqrt(gamma)/bnorm < tol}
}
