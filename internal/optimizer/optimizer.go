// Package optimizer implements the three parameter-update rules the paper
// evaluates: plain SGD, Adam, and stochastic reconfiguration (SR) — the
// quantum natural gradient — which preconditions gradients with the Fisher
// information matrix estimated from per-sample log-derivatives (Eq. 5).
package optimizer

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/linalg"
	"github.com/vqmc-scale/parvqmc/internal/tensor"
)

// Optimizer applies an in-place parameter update from a gradient estimate.
type Optimizer interface {
	// Step updates params given the gradient of the loss (descent
	// direction is -grad).
	Step(params, grad tensor.Vector)
	// Name identifies the rule in experiment tables.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      tensor.Vector
}

// NewSGD returns plain SGD with the given learning rate (the paper uses
// 0.1).
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (s *SGD) Step(params, grad tensor.Vector) {
	if s.Momentum == 0 {
		params.AXPY(-s.LR, grad)
		return
	}
	if s.vel == nil {
		s.vel = tensor.NewVector(len(params))
	}
	for i := range params {
		s.vel[i] = s.Momentum*s.vel[i] + grad[i]
		params[i] -= s.LR * s.vel[i]
	}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "SGD" }

// Adam is the Adam optimizer with standard defaults (beta1=0.9,
// beta2=0.999, eps=1e-8); the paper's default learning rate is 0.01.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	m, v                  tensor.Vector
	t                     int
}

// NewAdam returns Adam with standard moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grad tensor.Vector) {
	if a.m == nil {
		a.m = tensor.NewVector(len(params))
		a.v = tensor.NewVector(len(params))
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		g := grad[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "ADAM" }

// SolverKind selects the conjugate-gradient variant behind an SR solve.
type SolverKind int

const (
	// SolverCG is classic conjugate gradients (SolveFisherCG): in a
	// distributed group it blocks on one collective per iteration at the
	// point of maximal dependency.
	SolverCG SolverKind = iota
	// SolverPipelined is Gropp's overlapped variant
	// (SolveFisherPipelinedCG): every per-iteration collective is
	// non-blocking, hidden behind the recurrence updates. Same traffic
	// within one extra operator application per solve; identical
	// arithmetic whether run serially or on any number of ranks.
	SolverPipelined
)

// String names the solver for flags and experiment tables.
func (k SolverKind) String() string {
	if k == SolverPipelined {
		return "pipelined"
	}
	return "cg"
}

// SR preconditions a gradient with the regularized Fisher matrix
// S = E[O O^T] - E[O] E[O]^T (O_k = grad log psi(x_k)), solving
// (S + lambda I) delta = g matrix-free with conjugate gradients. The result
// feeds a base optimizer (the paper pairs SR with SGD, lr 0.1, lambda 1e-3).
type SR struct {
	Lambda  float64
	Tol     float64
	MaxIter int
	Workers int
	// Solver selects the CG variant: SolverCG (default) or
	// SolverPipelined. In a distributed group every replica must carry the
	// same kind — the solvers issue different collective schedules.
	Solver SolverKind
	// MaxStepNorm caps ||delta||: with small lambda the solve can amplify
	// gradient components lying in the Fisher matrix's near-null space by
	// up to 1/lambda, which blows up training when the sample covariance
	// is rank-deficient (correlated MCMC batches). 0 disables the guard.
	MaxStepNorm float64
	delta       tensor.Vector // warm start across iterations
	last        linalg.CGResult
}

// NewSR returns an SR preconditioner with the paper's regularization and a
// conservative step-norm guard that only engages on pathological solves.
func NewSR(lambda float64) *SR {
	return &SR{Lambda: lambda, Tol: 1e-6, MaxIter: 200, MaxStepNorm: 100}
}

// Precondition solves (S + lambda I) delta = grad where S is estimated from
// the per-sample log-derivative batch ows (one row per sample, dim =
// len(grad)). The returned slice is reused across calls as a warm start.
func (s *SR) Precondition(ows *tensor.Batch, grad tensor.Vector) tensor.Vector {
	if ows.Dim != len(grad) {
		panic("optimizer: SR dimension mismatch")
	}
	return s.PreconditionOp(NewBatchFisher(ows, s.Lambda, s.Workers), grad)
}

// PreconditionOp solves (S + lambda I) delta = grad through an arbitrary
// FisherOp — the entry point for the distributed trainer, whose operator
// spans the O_k rows of every replica and performs one collective per CG
// iteration. The warm-start delta, step-norm guard and solve statistics
// behave exactly as in Precondition; in a distributed group every replica's
// SR instance must carry identical (Lambda, Tol, MaxIter, MaxStepNorm) so
// the lockstep CG takes identical branches everywhere.
func (s *SR) PreconditionOp(op FisherOp, grad tensor.Vector) tensor.Vector {
	d := op.Dim()
	if len(grad) != d {
		panic("optimizer: SR dimension mismatch")
	}
	if s.delta == nil || len(s.delta) != d {
		s.delta = tensor.NewVector(d)
	}
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	if sp, ok := op.(SplitFisherOp); ok && s.Solver == SolverPipelined {
		s.last = SolveFisherPipelinedCG(sp, grad, s.delta, s.Tol, maxIter)
	} else {
		// Classic CG; also the fallback for ops that cannot split their
		// application at the synchronization point.
		s.last = SolveFisherCG(op, grad, s.delta, s.Tol, maxIter)
	}
	if s.MaxStepNorm > 0 {
		if n := s.delta.Norm2(); n > s.MaxStepNorm {
			s.delta.Scale(s.MaxStepNorm / n)
		}
	}
	return s.delta
}

// Clone returns a fresh SR with the same configuration and no solver state
// (cold warm-start, zeroed statistics). Distributed replicas each hold a
// private clone so their warm-start vectors evolve independently while the
// identical configuration keeps the lockstep CG branch-consistent.
func (s *SR) Clone() *SR {
	return &SR{Lambda: s.Lambda, Tol: s.Tol, MaxIter: s.MaxIter,
		Workers: s.Workers, MaxStepNorm: s.MaxStepNorm, Solver: s.Solver}
}

// LastSolve reports the CG result of the most recent Precondition call.
func (s *SR) LastSolve() linalg.CGResult { return s.last }

// DenseFisher materializes S + lambda I for validation in tests.
func (s *SR) DenseFisher(ows *tensor.Batch) []float64 {
	d := ows.Dim
	bs := float64(ows.N)
	obar := tensor.NewVector(d)
	for k := 0; k < ows.N; k++ {
		obar.Add(ows.Sample(k))
	}
	obar.Scale(1 / bs)
	m := make([]float64, d*d)
	for k := 0; k < ows.N; k++ {
		ok := ows.Sample(k)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				m[i*d+j] += ok[i] * ok[j] / bs
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			m[i*d+j] -= obar[i] * obar[j]
		}
		m[i*d+i] += s.Lambda
	}
	return m
}
