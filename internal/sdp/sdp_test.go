package sdp

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestRowsUnitNorm(t *testing.T) {
	f := NewRandom(20, 5, rng.New(1))
	for i := 0; i < f.N; i++ {
		if math.Abs(norm(f.Row(i))-1) > 1e-12 {
			t.Fatalf("row %d norm %v", i, norm(f.Row(i)))
		}
	}
}

func TestRetractKeepsManifold(t *testing.T) {
	r := rng.New(2)
	f := NewRandom(10, 4, r)
	u := make([]float64, 40)
	r.FillNorm(u, 1)
	f.Retract(u, 0.3)
	for i := 0; i < f.N; i++ {
		if math.Abs(norm(f.Row(i))-1) > 1e-12 {
			t.Fatal("retraction left the sphere product")
		}
	}
}

func TestEuclideanGradFiniteDifference(t *testing.T) {
	r := rng.New(3)
	g := graph.RandomBernoulli(8, r)
	p := &Problem{G: g}
	f := NewRandom(8, 3, r)
	grad := make([]float64, len(f.V))
	p.EuclideanGrad(f, grad)
	const eps = 1e-6
	for i := range f.V {
		orig := f.V[i]
		f.V[i] = orig + eps
		fp := p.Objective(f)
		f.V[i] = orig - eps
		fm := p.Objective(f)
		f.V[i] = orig
		fd := (fp - fm) / (2 * eps)
		if math.Abs(fd-grad[i]) > 1e-5 {
			t.Fatalf("coordinate %d: grad %v vs fd %v", i, grad[i], fd)
		}
	}
}

func TestRiemannianGradIsTangent(t *testing.T) {
	r := rng.New(4)
	g := graph.RandomBernoulli(10, r)
	p := &Problem{G: g}
	f := NewRandom(10, 4, r)
	grad := make([]float64, len(f.V))
	p.EuclideanGrad(f, grad)
	p.RiemannianGrad(f, grad)
	for i := 0; i < f.N; i++ {
		if d := dot(grad[i*f.R:(i+1)*f.R], f.Row(i)); math.Abs(d) > 1e-12 {
			t.Fatalf("gradient not tangent at row %d: %v", i, d)
		}
	}
}

func TestHessVecSymmetry(t *testing.T) {
	// <u, Hess w> == <w, Hess u> for tangent u, w.
	r := rng.New(5)
	g := graph.RandomBernoulli(8, r)
	p := &Problem{G: g}
	f := NewRandom(8, 3, r)
	av := make([]float64, len(f.V))
	p.EuclideanGrad(f, av)
	project := func(u []float64) {
		for i := 0; i < f.N; i++ {
			vi := f.Row(i)
			ui := u[i*f.R : (i+1)*f.R]
			c := dot(ui, vi)
			for k := range ui {
				ui[k] -= c * vi[k]
			}
		}
	}
	u := make([]float64, len(f.V))
	w := make([]float64, len(f.V))
	r.FillNorm(u, 1)
	r.FillNorm(w, 1)
	project(u)
	project(w)
	hu := make([]float64, len(f.V))
	hw := make([]float64, len(f.V))
	p.HessVec(f, u, av, hu)
	p.HessVec(f, w, av, hw)
	if math.Abs(dot(u, hw)-dot(w, hu)) > 1e-9 {
		t.Fatalf("Hessian not symmetric: %v vs %v", dot(u, hw), dot(w, hu))
	}
}

func TestGradientDescentDecreasesObjective(t *testing.T) {
	r := rng.New(6)
	g := graph.RandomBernoulli(15, r)
	p := &Problem{G: g}
	f := NewRandom(15, DefaultRank(15), r)
	before := p.Objective(f)
	res := p.GradientDescent(f, 300, 1e-4)
	if res.Objective > before {
		t.Fatalf("GD increased objective: %v -> %v", before, res.Objective)
	}
	if res.GradNorm > 1 {
		t.Fatalf("GD left large gradient: %v", res.GradNorm)
	}
}

func TestTrustRegionReachesStationarity(t *testing.T) {
	r := rng.New(7)
	g := graph.RandomBernoulli(12, r)
	p := &Problem{G: g}
	f := NewRandom(12, DefaultRank(12), r)
	res := p.TrustRegion(f, TRConfig{MaxOuter: 200, Tol: 1e-6})
	if !res.Converged && res.GradNorm > 1e-3 {
		t.Fatalf("RTR did not approach stationarity: %+v", res)
	}
}

func TestTrustRegionAtLeastAsGoodAsGD(t *testing.T) {
	r := rng.New(8)
	g := graph.RandomBernoulli(14, r)
	p := &Problem{G: g}
	fGD := NewRandom(14, DefaultRank(14), rng.New(100))
	fTR := NewRandom(14, DefaultRank(14), rng.New(100))
	gd := p.GradientDescent(fGD, 400, 1e-8)
	tr := p.TrustRegion(fTR, TRConfig{MaxOuter: 200, Tol: 1e-8})
	if tr.Objective > gd.Objective+1e-3 {
		t.Fatalf("RTR (%v) worse than GD (%v)", tr.Objective, gd.Objective)
	}
}

func TestSDPBoundDominatesAnyCut(t *testing.T) {
	// At (near-)optimality the SDP relaxation value must upper-bound every
	// cut, in particular the best exhaustive cut.
	r := rng.New(9)
	g := graph.RandomBernoulli(10, r)
	p := &Problem{G: g}
	f := NewRandom(10, DefaultRank(10), r)
	p.TrustRegion(f, TRConfig{MaxOuter: 300, Tol: 1e-8})
	bound := p.SDPCutBound(f)
	x := make([]int, 10)
	best := 0.0
	for ix := 0; ix < 1<<10; ix++ {
		for i := range x {
			x[i] = (ix >> uint(i)) & 1
		}
		if c := g.CutValue(x); c > best {
			best = c
		}
	}
	if bound < best-1e-6 {
		t.Fatalf("SDP bound %v below max cut %v", bound, best)
	}
}

func TestRoundHyperplaneValidAssignment(t *testing.T) {
	r := rng.New(10)
	f := NewRandom(9, 4, r)
	x := make([]int, 9)
	RoundHyperplane(f, r, x)
	for _, b := range x {
		if b != 0 && b != 1 {
			t.Fatalf("invalid side %d", b)
		}
	}
}

func BenchmarkTrustRegion50(b *testing.B) {
	r := rng.New(1)
	g := graph.RandomBernoulli(50, r)
	p := &Problem{G: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewRandom(50, DefaultRank(50), rng.New(uint64(i)))
		p.TrustRegion(f, TRConfig{MaxOuter: 60, Tol: 1e-5})
	}
}
