// Package sdp solves the Max-Cut semidefinite relaxation through the
// Burer-Monteiro low-rank factorization: minimize f(V) = sum_{i<j} w_ij
// v_i.v_j over unit vectors v_i in R^r (rows of V). The feasible set is a
// product of spheres, a Riemannian manifold; the package provides both
// Riemannian gradient descent with backtracking and a Riemannian
// trust-region method with a truncated-CG inner solver — the optimizer
// family behind the paper's Burer-Monteiro baseline (Absil et al.).
package sdp

import (
	"math"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Factorization is a rank-r factor V with unit-norm rows: X = V V^T is the
// PSD matrix of the relaxation.
type Factorization struct {
	N, R int
	V    []float64 // row-major N x R
}

// Row returns row i of V.
func (f *Factorization) Row(i int) []float64 { return f.V[i*f.R : (i+1)*f.R] }

// DefaultRank is the Barvinok-Pataki rank ceil(sqrt(2n)) + 1 at which the
// factorized problem has no spurious local minima generically.
func DefaultRank(n int) int { return int(math.Ceil(math.Sqrt(float64(2*n)))) + 1 }

// NewRandom returns a factorization with iid normal rows projected to the
// sphere.
func NewRandom(n, r int, rnd *rng.Rand) *Factorization {
	f := &Factorization{N: n, R: r, V: make([]float64, n*r)}
	rnd.FillNorm(f.V, 1)
	f.normalizeRows()
	return f
}

func (f *Factorization) normalizeRows() {
	for i := 0; i < f.N; i++ {
		row := f.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		s = math.Sqrt(s)
		if s == 0 {
			row[0] = 1
			continue
		}
		for k := range row {
			row[k] /= s
		}
	}
}

// Problem couples a graph with factorization workspace.
type Problem struct {
	G *graph.Graph
}

// Objective evaluates f(V) = sum_{i<j} w_ij v_i.v_j.
func (p *Problem) Objective(f *Factorization) float64 {
	var obj float64
	for _, e := range p.G.Edges {
		obj += e.W * dot(f.Row(e.U), f.Row(e.V))
	}
	return obj
}

// SDPCutBound returns the relaxation value sum w_ij (1 - v_i.v_j)/2, an
// upper bound (at the SDP optimum) on the maximum cut.
func (p *Problem) SDPCutBound(f *Factorization) float64 {
	var cut float64
	for _, e := range p.G.Edges {
		cut += e.W * (1 - dot(f.Row(e.U), f.Row(e.V))) / 2
	}
	return cut
}

// EuclideanGrad computes G_i = sum_j w_ij v_j into out (same shape as V).
func (p *Problem) EuclideanGrad(f *Factorization, out []float64) {
	for i := range out {
		out[i] = 0
	}
	r := f.R
	for _, e := range p.G.Edges {
		vu, vv := f.Row(e.U), f.Row(e.V)
		ou := out[e.U*r : e.U*r+r]
		ov := out[e.V*r : e.V*r+r]
		for k := 0; k < r; k++ {
			ou[k] += e.W * vv[k]
			ov[k] += e.W * vu[k]
		}
	}
}

// RiemannianGrad projects the Euclidean gradient onto the tangent space of
// the product of spheres: R_i = G_i - (G_i.v_i) v_i. egrad is consumed in
// place.
func (p *Problem) RiemannianGrad(f *Factorization, egrad []float64) {
	r := f.R
	for i := 0; i < f.N; i++ {
		vi := f.Row(i)
		gi := egrad[i*r : i*r+r]
		c := dot(gi, vi)
		for k := range gi {
			gi[k] -= c * vi[k]
		}
	}
}

// HessVec computes the Riemannian Hessian applied to a tangent vector u:
// (Hess f[u])_i = proj_i((A u)_i) - (v_i . (A v)_i) u_i, where A is the
// weighted adjacency operator. av must hold the Euclidean gradient (A V).
func (p *Problem) HessVec(f *Factorization, u, av, out []float64) {
	r := f.R
	// out = A u
	for i := range out {
		out[i] = 0
	}
	for _, e := range p.G.Edges {
		uu := u[e.U*r : e.U*r+r]
		uv := u[e.V*r : e.V*r+r]
		ou := out[e.U*r : e.U*r+r]
		ov := out[e.V*r : e.V*r+r]
		for k := 0; k < r; k++ {
			ou[k] += e.W * uv[k]
			ov[k] += e.W * uu[k]
		}
	}
	for i := 0; i < f.N; i++ {
		vi := f.Row(i)
		oi := out[i*r : i*r+r]
		ui := u[i*r : i*r+r]
		avi := av[i*r : i*r+r]
		c := dot(oi, vi)
		lam := dot(avi, vi)
		for k := range oi {
			oi[k] -= c*vi[k] + lam*ui[k]
		}
	}
}

// Retract moves V along tangent direction u with step t and renormalizes
// each row (the metric projection retraction on the sphere product).
func (f *Factorization) Retract(u []float64, t float64) {
	for i := range f.V {
		f.V[i] += t * u[i]
	}
	f.normalizeRows()
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// GDResult reports a Riemannian gradient descent run.
type GDResult struct {
	Iterations int
	Objective  float64
	GradNorm   float64
	Converged  bool
}

// GradientDescent runs Riemannian gradient descent with backtracking line
// search (Armijo) until the Riemannian gradient norm falls below tol or
// maxIter iterations pass.
func (p *Problem) GradientDescent(f *Factorization, maxIter int, tol float64) GDResult {
	n, r := f.N, f.R
	grad := make([]float64, n*r)
	trial := make([]float64, n*r)
	obj := p.Objective(f)
	step := 1.0 / (1 + p.G.TotalWeight()/float64(n)) // conservative initial step
	var res GDResult
	for it := 0; it < maxIter; it++ {
		p.EuclideanGrad(f, grad)
		p.RiemannianGrad(f, grad)
		gn := norm(grad)
		res = GDResult{Iterations: it, Objective: obj, GradNorm: gn}
		if gn < tol {
			res.Converged = true
			return res
		}
		// Backtracking on the retraction.
		t := step
		for k := 0; k < 40; k++ {
			copy(trial, f.V)
			f.Retract(grad, -t)
			newObj := p.Objective(f)
			if newObj <= obj-1e-4*t*gn*gn {
				obj = newObj
				step = t * 1.5 // optimistic growth
				break
			}
			copy(f.V, trial)
			t /= 2
			if k == 39 {
				res.Converged = gn < tol*10
				return res
			}
		}
	}
	res.Objective = obj
	return res
}

// TRConfig tunes the Riemannian trust-region method. Zero values select
// sensible defaults.
type TRConfig struct {
	MaxOuter   int     // outer iterations (default 100)
	MaxInner   int     // tCG iterations (default dim of the manifold)
	InitRadius float64 // initial trust radius (default sqrt(n)/8)
	MaxRadius  float64 // radius cap (default sqrt(n))
	Tol        float64 // gradient norm tolerance (default 1e-6)
}

// TrustRegion runs the Riemannian trust-region method with a
// Steihaug-Toint truncated-CG inner solver, the algorithm of the paper's
// Burer-Monteiro baseline (Absil, Baker & Gallivan).
func (p *Problem) TrustRegion(f *Factorization, cfg TRConfig) GDResult {
	n, r := f.N, f.R
	dim := n * r
	if cfg.MaxOuter <= 0 {
		cfg.MaxOuter = 100
	}
	if cfg.MaxInner <= 0 {
		cfg.MaxInner = dim
	}
	if cfg.InitRadius <= 0 {
		cfg.InitRadius = math.Sqrt(float64(n)) / 8
	}
	if cfg.MaxRadius <= 0 {
		cfg.MaxRadius = math.Sqrt(float64(n))
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}

	egrad := make([]float64, dim) // A V (kept Euclidean for Hessian)
	rgrad := make([]float64, dim)
	eta := make([]float64, dim)   // tCG solution
	rvec := make([]float64, dim)  // tCG residual
	delta := make([]float64, dim) // tCG direction
	hd := make([]float64, dim)    // Hessian times direction
	trial := make([]float64, dim)

	radius := cfg.InitRadius
	obj := p.Objective(f)
	var res GDResult

	for outer := 0; outer < cfg.MaxOuter; outer++ {
		p.EuclideanGrad(f, egrad)
		copy(rgrad, egrad)
		p.RiemannianGrad(f, rgrad)
		gn := norm(rgrad)
		res = GDResult{Iterations: outer, Objective: obj, GradNorm: gn}
		if gn < cfg.Tol {
			res.Converged = true
			return res
		}

		// --- Steihaug-Toint tCG on the tangent space ---
		for i := range eta {
			eta[i] = 0
			rvec[i] = rgrad[i]
			delta[i] = -rgrad[i]
		}
		rr := dot(rvec, rvec)
		interior := true
		for inner := 0; inner < cfg.MaxInner; inner++ {
			p.HessVec(f, delta, egrad, hd)
			dHd := dot(delta, hd)
			if dHd <= 0 {
				// Negative curvature: go to the boundary.
				tau := boundaryStep(eta, delta, radius)
				axpy(eta, tau, delta)
				interior = false
				break
			}
			alpha := rr / dHd
			// Would the step leave the trust region?
			en2 := normSqAfter(eta, delta, alpha)
			if en2 >= radius*radius {
				tau := boundaryStep(eta, delta, radius)
				axpy(eta, tau, delta)
				interior = false
				break
			}
			axpy(eta, alpha, delta)
			axpy(rvec, alpha, hd)
			rrNew := dot(rvec, rvec)
			if math.Sqrt(rrNew) < 1e-10*gn || math.Sqrt(rrNew) < 1e-14 {
				break
			}
			beta := rrNew / rr
			for i := range delta {
				delta[i] = -rvec[i] + beta*delta[i]
			}
			rr = rrNew
		}

		// Predicted vs actual reduction.
		p.HessVec(f, eta, egrad, hd)
		pred := -(dot(rgrad, eta) + 0.5*dot(eta, hd))
		copy(trial, f.V)
		f.Retract(eta, 1)
		newObj := p.Objective(f)
		actual := obj - newObj
		rho := actual / math.Max(pred, 1e-15)

		switch {
		case rho < 0.25 || pred <= 0:
			radius *= 0.25
			copy(f.V, trial) // reject
		case rho > 0.75 && !interior:
			radius = math.Min(2*radius, cfg.MaxRadius)
			obj = newObj
		default:
			obj = newObj
		}
		if radius < 1e-12 {
			res.Objective = obj
			return res
		}
	}
	res.Objective = obj
	return res
}

// boundaryStep returns tau >= 0 with |eta + tau*delta| = radius.
func boundaryStep(eta, delta []float64, radius float64) float64 {
	ee := dot(eta, eta)
	ed := dot(eta, delta)
	dd := dot(delta, delta)
	disc := ed*ed - dd*(ee-radius*radius)
	if disc < 0 {
		disc = 0
	}
	return (-ed + math.Sqrt(disc)) / dd
}

func normSqAfter(eta, delta []float64, alpha float64) float64 {
	return dot(eta, eta) + 2*alpha*dot(eta, delta) + alpha*alpha*dot(delta, delta)
}

func axpy(dst []float64, a float64, src []float64) {
	for i := range dst {
		dst[i] += a * src[i]
	}
}

// RoundHyperplane rounds the factorization with one random hyperplane
// (Goemans-Williamson): side_i = sign(v_i . g) with g ~ N(0, I_r).
func RoundHyperplane(f *Factorization, rnd *rng.Rand, x []int) {
	g := make([]float64, f.R)
	rnd.FillNorm(g, 1)
	for i := 0; i < f.N; i++ {
		if dot(f.Row(i), g) >= 0 {
			x[i] = 0
		} else {
			x[i] = 1
		}
	}
}
