package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "model", "n", "value")
	tb.AddRow("MADE", 20, 42.4)
	tb.AddRow("RBM", 500, -976.25)
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "MADE") {
		t.Fatalf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
	// Columns align: header "model" starts where rows' first column starts.
	if !strings.HasPrefix(lines[1], "model") || !strings.HasPrefix(lines[3], "MADE") {
		t.Fatalf("alignment broken:\n%s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		42:      "42",
		42.4:    "42.40",
		-976.25: "-976.2",
		0.025:   "0.0250",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestMeanStd(t *testing.T) {
	if got := MeanStd(42.4, 0.8); got != "42.40 +- 0.8000" {
		t.Fatalf("MeanStd = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("x", "a", "b")
	tb.AddRow("hello, world", 1.5)
	tb.AddRow(`quote"d`, 2)
	path := filepath.Join(dir, "sub", "out.csv")
	if err := tb.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "\"hello, world\"") {
		t.Fatalf("comma not escaped: %s", s)
	}
	if !strings.Contains(s, `"quote""d"`) {
		t.Fatalf("quote not escaped: %s", s)
	}
	if !strings.HasPrefix(s, "a,b\n") {
		t.Fatalf("missing header: %s", s)
	}
}

func TestCurve(t *testing.T) {
	c := NewCurve("run")
	c.Append(1, map[string]float64{"energy": -1.5, "std": 0.3})
	c.Append(2, map[string]float64{"energy": -2.0, "std": 0.2})
	if len(c.Iter) != 2 || len(c.Series["energy"]) != 2 {
		t.Fatal("curve did not record")
	}
	keys := c.Keys()
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "curve.csv")
	if err := c.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "iter") {
		t.Fatalf("curve csv missing header: %s", data)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("curve csv rows = %d", len(lines))
	}
}
