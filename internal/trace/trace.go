// Package trace renders experiment results as aligned text tables (the
// shape the paper prints) and CSV files, and records training curves.
package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to read.
func FormatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case v == float64(int64(v)) && a < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// MeanStd formats "mean +- std" the way the paper's tables do.
func MeanStd(mean, std float64) string {
	return fmt.Sprintf("%s +- %s", FormatFloat(mean), FormatFloat(std))
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// WriteCSV writes the table as CSV (header + rows) to path, creating parent
// directories as needed.
func (t *Table) WriteCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := f.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := f.WriteString(csvEscape(c)); err != nil {
				return err
			}
		}
		_, err := f.WriteString("\n")
		return err
	}
	if err := write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

// Curve is a recorded training curve (e.g. energy and std per iteration,
// the series behind the paper's Figure 2).
type Curve struct {
	Name   string
	Iter   []int
	Series map[string][]float64
	order  []string
}

// NewCurve creates an empty curve.
func NewCurve(name string) *Curve {
	return &Curve{Name: name, Series: map[string][]float64{}}
}

// Append records one iteration's values; keys must be consistent across
// calls.
func (c *Curve) Append(iter int, values map[string]float64) {
	c.Iter = append(c.Iter, iter)
	for k, v := range values {
		if _, ok := c.Series[k]; !ok {
			c.order = append(c.order, k)
		}
		c.Series[k] = append(c.Series[k], v)
	}
}

// Keys returns the series names in first-seen order.
func (c *Curve) Keys() []string { return c.order }

// WriteCSV writes iter plus all series as CSV columns.
func (c *Curve) WriteCSV(path string) error {
	t := NewTable("", append([]string{"iter"}, c.order...)...)
	for i, it := range c.Iter {
		cells := make([]interface{}, 0, 1+len(c.order))
		cells = append(cells, it)
		for _, k := range c.order {
			cells = append(cells, c.Series[k][i])
		}
		t.AddRow(cells...)
	}
	return t.WriteCSV(path)
}
