package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func randMatrix(r *rng.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	r.FillUniform(m.Data, -1, 1)
	return m
}

func randVector(r *rng.Rand, n int) Vector {
	v := NewVector(n)
	r.FillUniform(v, -1, 1)
	return v
}

func TestDotBasic(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched Dot")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestAXPYAndScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AXPY(2, Vector{10, 20, 30})
	want := Vector{21, 42, 63}
	if !Equal(v, want, 0) {
		t.Fatalf("AXPY got %v", v)
	}
	v.Scale(0.5)
	if !Equal(v, Vector{10.5, 21, 31.5}, 0) {
		t.Fatalf("Scale got %v", v)
	}
}

func TestSumMaxNorm(t *testing.T) {
	v := Vector{3, -4, 1}
	if v.Sum() != 0 {
		t.Errorf("Sum = %v", v.Sum())
	}
	if v.Max() != 3 {
		t.Errorf("Max = %v", v.Max())
	}
	if math.Abs(Vector{3, 4}.Norm2()-5) > 1e-15 {
		t.Errorf("Norm2 = %v", Vector{3, 4}.Norm2())
	}
}

func TestMulVecAgainstNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		m := randMatrix(r, rows, cols)
		x := randVector(r, cols)
		got := NewVector(rows)
		m.MulVec(got, x)
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += m.At(i, j) * x[j]
			}
			if math.Abs(got[i]-want) > 1e-12 {
				t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want)
			}
		}
	}
}

func TestMulVecTMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		m := randMatrix(r, rows, cols)
		x := randVector(r, rows)
		got := NewVector(cols)
		m.MulVecT(got, x)
		want := NewVector(cols)
		m.T().MulVec(want, x)
		if !Equal(got, want, 1e-12) {
			t.Fatalf("MulVecT mismatch: %v vs %v", got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(3)
	m := randMatrix(r, 7, 5)
	tt := m.T().T()
	if !Equal(Vector(m.Data), Vector(tt.Data), 0) {
		t.Fatal("T().T() differs from original")
	}
}

func TestMaskedMulVec(t *testing.T) {
	r := rng.New(4)
	rows, cols := 8, 6
	m := randMatrix(r, rows, cols)
	mask := NewMatrix(rows, cols)
	for i := range mask.Data {
		mask.Data[i] = float64(r.Bit())
	}
	x := randVector(r, cols)
	got := NewVector(rows)
	m.MaskedMulVec(got, x, mask)
	// Reference: elementwise product then MulVec.
	mm := m.Clone()
	for i := range mm.Data {
		mm.Data[i] *= mask.Data[i]
	}
	want := NewVector(rows)
	mm.MulVec(want, x)
	if !Equal(got, want, 1e-13) {
		t.Fatalf("masked mulvec mismatch: %v vs %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(5)
	n := 9
	a := randMatrix(r, n, n)
	id := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	out := NewMatrix(n, n)
	Mul(out, a, id)
	if !Equal(Vector(out.Data), Vector(a.Data), 1e-14) {
		t.Fatal("A*I != A")
	}
	Mul(out, id, a)
	if !Equal(Vector(out.Data), Vector(a.Data), 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulAssociativity(t *testing.T) {
	r := rng.New(6)
	a, b, c := randMatrix(r, 4, 6), randMatrix(r, 6, 5), randMatrix(r, 5, 3)
	ab := NewMatrix(4, 5)
	Mul(ab, a, b)
	abc1 := NewMatrix(4, 3)
	Mul(abc1, ab, c)
	bc := NewMatrix(6, 3)
	Mul(bc, b, c)
	abc2 := NewMatrix(4, 3)
	Mul(abc2, a, bc)
	if !Equal(Vector(abc1.Data), Vector(abc2.Data), 1e-12) {
		t.Fatal("(AB)C != A(BC)")
	}
}

func TestBatchMulMatchesPerSample(t *testing.T) {
	r := rng.New(7)
	for _, workers := range []int{1, 4} {
		src := NewBatch(13, 5)
		r.FillUniform(src.Data, -1, 1)
		w := randMatrix(r, 8, 5)
		dst := NewBatch(13, 8)
		BatchMul(dst, src, w, workers)
		for s := 0; s < 13; s++ {
			want := NewVector(8)
			w.MulVec(want, src.Sample(s))
			if !Equal(dst.Sample(s), want, 1e-13) {
				t.Fatalf("sample %d mismatch", s)
			}
		}
	}
}

func TestReLUSigmoid(t *testing.T) {
	v := Vector{-2, 0, 3}
	ReLU(v)
	if !Equal(v, Vector{0, 0, 3}, 0) {
		t.Fatalf("ReLU got %v", v)
	}
	s := Vector{0}
	Sigmoid(s)
	if math.Abs(s[0]-0.5) > 1e-15 {
		t.Fatalf("Sigmoid(0) = %v", s[0])
	}
	s = Vector{100, -100}
	Sigmoid(s)
	if s[0] < 0.999 || s[1] > 0.001 {
		t.Fatalf("Sigmoid saturation got %v", s)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	r := rng.New(8)
	f := func(seed uint8) bool {
		rr := rng.New(uint64(seed))
		n := 1 + rr.Intn(30)
		a, b, c := randVector(rr, n), randVector(rr, n), randVector(rr, n)
		alpha := rr.Uniform(-2, 2)
		// <a, alpha*b + c> == alpha<a,b> + <a,c>
		bc := b.Clone()
		bc.Scale(alpha)
		bc.Add(c)
		lhs := a.Dot(bc)
		rhs := alpha*a.Dot(b) + a.Dot(c)
		return math.Abs(lhs-rhs) < 1e-10
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	mc := m.Clone()
	mc.Set(0, 0, 7)
	if m.At(0, 0) != 5 {
		t.Fatal("Matrix Clone aliases original")
	}
	b := NewBatch(2, 2)
	b.Data[0] = 3
	bcl := b.Clone()
	bcl.Data[0] = 4
	if b.Data[0] != 3 {
		t.Fatal("Batch Clone aliases original")
	}
}

func BenchmarkMulVec512(b *testing.B) {
	r := rng.New(1)
	m := randMatrix(r, 512, 512)
	x := randVector(r, 512)
	dst := NewVector(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkBatchMul(b *testing.B) {
	r := rng.New(1)
	src := NewBatch(256, 128)
	r.FillUniform(src.Data, -1, 1)
	w := randMatrix(r, 128, 128)
	dst := NewBatch(256, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchMul(dst, src, w, 0)
	}
}
