// Package tensor implements the dense float64 linear algebra used by the
// neural wavefunctions: vectors, row-major matrices, batched matrix products
// and the masked matrix-vector kernels that implement MADE's autoregressive
// connectivity. Kernels are written cache-friendly (row-major, j-inner loops)
// and the batched entry points can fan out across goroutines.
package tensor

import (
	"fmt"
	"math"

	"github.com/vqmc-scale/parvqmc/internal/parallel"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Dot returns the inner product of v and w. The lengths must match.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// AXPY computes v += a*w in place.
func (v Vector) AXPY(a float64, w Vector) {
	if len(v) != len(w) {
		panic("tensor: AXPY length mismatch")
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Scale multiplies every element by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Add computes v += w in place.
func (v Vector) Add(w Vector) { v.AXPY(1, w) }

// Sub computes v -= w in place.
func (v Vector) Sub(w Vector) { v.AXPY(-1, w) }

// Sum returns the sum of elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element; it panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("tensor: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element to c.
func (m *Matrix) Fill(c float64) {
	for i := range m.Data {
		m.Data[i] = c
	}
}

// T returns a newly allocated transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[base+j]
		}
	}
	return out
}

// MulVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst must not alias x.
func (m *Matrix) MulVec(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("tensor: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = m^T * x without materializing the transpose.
// dst must have length m.Cols and x length m.Rows; dst must not alias x.
func (m *Matrix) MulVecT(dst, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("tensor: MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// MaskedMulVec computes dst = (mask .* m) * x, the MADE kernel, where mask
// holds 0/1 entries with the same shape as m.
func (m *Matrix) MaskedMulVec(dst, x Vector, mask *Matrix) {
	if mask.Rows != m.Rows || mask.Cols != m.Cols {
		panic("tensor: mask shape mismatch")
	}
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("tensor: MaskedMulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		mrow := mask.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * mrow[j] * x[j]
		}
		dst[i] = s
	}
}

// Mul computes dst = a*b. Shapes must agree; dst must not alias a or b.
func Mul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: Mul dimension mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Batch is a batch of row vectors: Data[s] is sample s.
// It is the batched input/activation format used by the wavefunctions.
type Batch struct {
	N, Dim int
	Data   []float64 // row-major N x Dim
}

// NewBatch returns a zero batch of n samples of width dim.
func NewBatch(n, dim int) *Batch {
	return &Batch{N: n, Dim: dim, Data: make([]float64, n*dim)}
}

// Sample returns sample s as a vector aliasing the batch storage.
func (b *Batch) Sample(s int) Vector { return Vector(b.Data[s*b.Dim : (s+1)*b.Dim]) }

// Clone returns a deep copy.
func (b *Batch) Clone() *Batch {
	out := NewBatch(b.N, b.Dim)
	copy(out.Data, b.Data)
	return out
}

// BatchMul computes dst[s] = w * src[s] for every sample, parallelized over
// samples with the given worker count (<=0 means GOMAXPROCS). Equivalent to
// dst = src * w^T in matrix form.
func BatchMul(dst, src *Batch, w *Matrix, workers int) {
	if src.Dim != w.Cols || dst.Dim != w.Rows || src.N != dst.N {
		panic("tensor: BatchMul dimension mismatch")
	}
	parallel.For(src.N, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			w.MulVec(dst.Sample(s), src.Sample(s))
		}
	})
}

// ReLU applies max(0, x) elementwise.
func ReLU(v Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(v Vector) {
	for i, x := range v {
		v[i] = 1 / (1 + math.Exp(-x))
	}
}

// AddBias computes v += b elementwise.
func AddBias(v, b Vector) { v.Add(b) }

// Equal reports whether two vectors differ by at most tol elementwise.
func Equal(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
