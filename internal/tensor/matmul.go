// Blocked, worker-parallel matrix-product kernels for the batched
// wavefunction evaluation path. The kernels block over rows and columns of
// the destination ONLY — every output element is accumulated over the
// contraction index k in the same fixed ascending order the scalar
// matrix-vector kernels use — so the results are bitwise identical to the
// per-sample path and invariant to the worker count and block sizes. That
// exactness is what lets the batched trainer keep package dist's replica
// bit-identity checks meaningful.
package tensor

import "github.com/vqmc-scale/parvqmc/internal/parallel"

// Destination tile sizes for the blocked products. Blocking changes only
// WHICH element is computed when, never the accumulation order within an
// element, so the values do not depend on these constants.
const (
	mmRowBlock = 32
	mmColBlock = 64
)

// accumRow computes drow += av * brow with the av == 1 multiplication
// elided (1.0*x == x bitwise, and the batched layer-1 inputs are exact
// 0/1 floats, so the common case saves the multiply). The 4-way unroll
// only trims loop overhead: every element still receives exactly one
// addition per call, so accumulation order is untouched.
func accumRow(drow, brow []float64, av float64) {
	n := len(brow)
	drow = drow[:n]
	j := 0
	if av == 1 {
		for ; j+4 <= n; j += 4 {
			drow[j] += brow[j]
			drow[j+1] += brow[j+1]
			drow[j+2] += brow[j+2]
			drow[j+3] += brow[j+3]
		}
		for ; j < n; j++ {
			drow[j] += brow[j]
		}
		return
	}
	for ; j+4 <= n; j += 4 {
		drow[j] += av * brow[j]
		drow[j+1] += av * brow[j+1]
		drow[j+2] += av * brow[j+2]
		drow[j+3] += av * brow[j+3]
	}
	for ; j < n; j++ {
		drow[j] += av * brow[j]
	}
}

// MatMul computes dst = a*b (dst: M x N, a: M x K, b: K x N), blocked over
// destination rows and parallelized across up to workers goroutines
// (<= 0 means GOMAXPROCS). Each destination element is accumulated in
// ascending k order, exactly like the serial Mul, so the output is bitwise
// identical to Mul for finite inputs and independent of the worker count.
// dst must not alias a or b.
func MatMul(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul dimension mismatch")
	}
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				for j := range drow {
					drow[j] = 0
				}
				for k, av := range arow {
					if av == 0 {
						continue
					}
					accumRow(drow, b.Data[k*b.Cols:(k+1)*b.Cols], av)
				}
			}
		}
	})
}

// MatMulReLU computes dst = max(0, a)*b without materializing the
// activated copy of a: non-positive a elements contribute relu(av) = +0
// terms, whose additions are exact no-ops (an accumulator that starts at
// +0 and only ever adds finite values can never become -0, and x + (+/-0)
// == x otherwise), so skipping them is bitwise identical to applying ReLU
// and then MatMul. This is the fused hidden-activation + output-layer
// kernel of the batched wavefunction forward. dst must not alias a or b.
func MatMulReLU(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulReLU dimension mismatch")
	}
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				for j := range drow {
					drow[j] = 0
				}
				for k, av := range arow {
					if av <= 0 {
						continue
					}
					accumRow(drow, b.Data[k*b.Cols:(k+1)*b.Cols], av)
				}
			}
		}
	})
}

// MatMulT computes dst = a*b^T (dst: M x N, a: M x K, b: N x K) without
// materializing the transpose: element (i, j) is the dot product of row i
// of a with row j of b, accumulated in ascending k order — the identical
// floating-point sequence MulVec and MaskedMulVec produce for one sample.
// It is the untransposed-operand form of the batched contract for callers
// that hold weights in their natural row-major layout; the MADE hot path
// instead pre-transposes its masked-weight cache and drives MatMul/
// MatMulReLU, whose per-column accumulators pipeline better than this
// kernel's single dot-product chain. Work is blocked over destination
// row/column tiles so the b tile stays cache-resident while a streams
// through, and parallelized over row blocks across up to workers
// goroutines (<= 0 means GOMAXPROCS). dst must not alias a or b.
func MatMulT(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulT dimension mismatch")
	}
	k := a.Cols
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			for j0 := 0; j0 < dst.Cols; j0 += mmColBlock {
				j1 := j0 + mmColBlock
				if j1 > dst.Cols {
					j1 = dst.Cols
				}
				for i := i0; i < i1; i++ {
					arow := a.Data[i*k : (i+1)*k]
					drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
					for j := j0; j < j1; j++ {
						brow := b.Data[j*k : (j+1)*k]
						var s float64
						for l, av := range arow {
							s += av * brow[l]
						}
						drow[j] = s
					}
				}
			}
		}
	})
}

// AddRowBias adds bias to every row of m (bias length m.Cols), parallelized
// over rows. Each element sees exactly one addition, performed after the
// row's products are fully accumulated — the same "dot first, bias second"
// order the scalar forward uses (MaskedMulVec followed by Vector.Add).
func AddRowBias(m *Matrix, bias Vector, workers int) {
	if len(bias) != m.Cols {
		panic("tensor: AddRowBias length mismatch")
	}
	parallel.For(m.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, bv := range bias {
				row[j] += bv
			}
		}
	})
}
