// Blocked, worker-parallel matrix-product kernels for the batched
// wavefunction evaluation path. The kernels block over rows and columns of
// the destination ONLY — every output element is accumulated over the
// contraction index k in the same fixed ascending order the scalar
// matrix-vector kernels use — so the results are bitwise identical to the
// per-sample path and invariant to the worker count and block sizes. That
// exactness is what lets the batched trainer keep package dist's replica
// bit-identity checks meaningful.
package tensor

import "github.com/vqmc-scale/parvqmc/internal/parallel"

// Destination tile sizes for the blocked products. Blocking changes only
// WHICH element is computed when, never the accumulation order within an
// element, so the values do not depend on these constants.
const (
	mmRowBlock = 32
	mmColBlock = 64
)

// accumRow computes drow += av * brow with the av == 1 multiplication
// elided (1.0*x == x bitwise, and the batched layer-1 inputs are exact
// 0/1 floats, so the common case saves the multiply). The 4-way unroll
// only trims loop overhead: every element still receives exactly one
// addition per call, so accumulation order is untouched.
func accumRow(drow, brow []float64, av float64) {
	n := len(brow)
	drow = drow[:n]
	j := 0
	if av == 1 {
		for ; j+4 <= n; j += 4 {
			drow[j] += brow[j]
			drow[j+1] += brow[j+1]
			drow[j+2] += brow[j+2]
			drow[j+3] += brow[j+3]
		}
		for ; j < n; j++ {
			drow[j] += brow[j]
		}
		return
	}
	for ; j+4 <= n; j += 4 {
		drow[j] += av * brow[j]
		drow[j+1] += av * brow[j+1]
		drow[j+2] += av * brow[j+2]
		drow[j+3] += av * brow[j+3]
	}
	for ; j < n; j++ {
		drow[j] += av * brow[j]
	}
}

// MatMul computes dst = a*b (dst: M x N, a: M x K, b: K x N), blocked over
// destination rows and parallelized across up to workers goroutines
// (<= 0 means GOMAXPROCS). Each destination element is accumulated in
// ascending k order, exactly like the serial Mul, so the output is bitwise
// identical to Mul for finite inputs and independent of the worker count.
// dst must not alias a or b.
func MatMul(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul dimension mismatch")
	}
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				for j := range drow {
					drow[j] = 0
				}
				for k, av := range arow {
					if av == 0 {
						continue
					}
					accumRow(drow, b.Data[k*b.Cols:(k+1)*b.Cols], av)
				}
			}
		}
	})
}

// MatMulReLU computes dst = max(0, a)*b without materializing the
// activated copy of a: non-positive a elements contribute relu(av) = +0
// terms, whose additions are exact no-ops (an accumulator that starts at
// +0 and only ever adds finite values can never become -0, and x + (+/-0)
// == x otherwise), so skipping them is bitwise identical to applying ReLU
// and then MatMul. This is the fused hidden-activation + output-layer
// kernel of the batched wavefunction forward. dst must not alias a or b.
func MatMulReLU(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulReLU dimension mismatch")
	}
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				for j := range drow {
					drow[j] = 0
				}
				for k, av := range arow {
					if av <= 0 {
						continue
					}
					accumRow(drow, b.Data[k*b.Cols:(k+1)*b.Cols], av)
				}
			}
		}
	})
}

// colsKernel is the shared body of MatMulCols and MatMulReLUCols: a 4-row
// register-blocked micro-kernel over destination columns [j0, j1). Narrow
// column tails cannot amortize per-(row, k) loop overhead the way the
// full-width kernels do, so four destination rows share each b-row slice.
//
// Bitwise contract: every computed element is still accumulated over k in
// ascending order, receiving exactly one addition per k. Instead of
// skipping k for zero (or, with relu set, non-positive) a-elements, the
// micro-kernel multiplies by the (ReLU'd) coefficient: the skipped terms
// become av*bv == +/-0 additions, which are exact no-ops — an accumulator
// that starts at +0 and only ever adds finite values can never become -0,
// and x + (+/-0) == x otherwise. This is the same argument that makes
// MatMulReLU's skip exact, run in reverse; the av == 1 multiply elision is
// dropped for the same reason (1*x == x bitwise). Results are therefore
// bitwise identical to MatMul / MatMulReLU on the same columns.
func colsKernel(dst, a, b *Matrix, j0, j1 int, relu bool, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: column-range matmul dimension mismatch")
	}
	if j0 < 0 || j1 > dst.Cols || j0 > j1 {
		panic("tensor: column-range matmul bounds out of range")
	}
	if j0 == j1 {
		return
	}
	w := j1 - j0
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			i := i0
			for ; i+4 <= i1; i += 4 {
				a0 := a.Data[(i+0)*a.Cols : (i+1)*a.Cols]
				a1 := a.Data[(i+1)*a.Cols : (i+2)*a.Cols]
				a2 := a.Data[(i+2)*a.Cols : (i+3)*a.Cols]
				a3 := a.Data[(i+3)*a.Cols : (i+4)*a.Cols]
				d0 := dst.Data[(i+0)*dst.Cols+j0 : (i+0)*dst.Cols+j1]
				d1 := dst.Data[(i+1)*dst.Cols+j0 : (i+1)*dst.Cols+j1]
				d2 := dst.Data[(i+2)*dst.Cols+j0 : (i+2)*dst.Cols+j1]
				d3 := dst.Data[(i+3)*dst.Cols+j0 : (i+3)*dst.Cols+j1]
				for j := 0; j < w; j++ {
					d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
				}
				for k := 0; k < a.Cols; k++ {
					v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
					if relu {
						if v0 < 0 {
							v0 = 0
						}
						if v1 < 0 {
							v1 = 0
						}
						if v2 < 0 {
							v2 = 0
						}
						if v3 < 0 {
							v3 = 0
						}
					}
					if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
						continue
					}
					brow := b.Data[k*b.Cols+j0 : k*b.Cols+j0+w]
					for j, bv := range brow {
						d0[j] += v0 * bv
						d1[j] += v1 * bv
						d2[j] += v2 * bv
						d3[j] += v3 * bv
					}
				}
			}
			for ; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1]
				for j := range drow {
					drow[j] = 0
				}
				for k, av := range arow {
					if relu && av < 0 {
						av = 0
					}
					if av == 0 {
						continue
					}
					brow := b.Data[k*b.Cols+j0 : k*b.Cols+j0+w]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	})
}

// MatMulCols computes dst[:, j0:j1) = (a*b)[:, j0:j1), the column-range
// restriction of MatMul: destination columns outside [j0, j1) are left
// untouched (not zeroed, not read). Every computed element is accumulated
// over the contraction index k in the same fixed ascending order as MatMul,
// so the written columns are bitwise identical to a full MatMul (see
// colsKernel) — the kernel exists purely to skip work the caller can prove
// unnecessary (the tail-only flip evaluation, where the autoregressive mask
// guarantees the head columns are already known). dst must not alias a or b.
func MatMulCols(dst, a, b *Matrix, j0, j1, workers int) {
	colsKernel(dst, a, b, j0, j1, false, workers)
}

// MatMulReLUCols computes dst[:, j0:j1) = (max(0, a)*b)[:, j0:j1), the
// column-range restriction of MatMulReLU (same implicit ReLU, same
// ascending-k accumulation per element, columns outside the range left
// untouched; see colsKernel for the exactness argument). dst must not alias
// a or b.
func MatMulReLUCols(dst, a, b *Matrix, j0, j1, workers int) {
	colsKernel(dst, a, b, j0, j1, true, workers)
}

// MatMulT computes dst = a*b^T (dst: M x N, a: M x K, b: N x K) without
// materializing the transpose: element (i, j) is the dot product of row i
// of a with row j of b, accumulated in ascending k order — the identical
// floating-point sequence MulVec and MaskedMulVec produce for one sample.
// It is the untransposed-operand form of the batched contract for callers
// that hold weights in their natural row-major layout; the MADE hot path
// instead pre-transposes its masked-weight cache and drives MatMul/
// MatMulReLU, whose per-column accumulators pipeline better than this
// kernel's single dot-product chain. Work is blocked over destination
// row/column tiles so the b tile stays cache-resident while a streams
// through, and parallelized over row blocks across up to workers
// goroutines (<= 0 means GOMAXPROCS). dst must not alias a or b.
func MatMulT(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulT dimension mismatch")
	}
	k := a.Cols
	nrb := (dst.Rows + mmRowBlock - 1) / mmRowBlock
	parallel.For(nrb, workers, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			i0, i1 := rb*mmRowBlock, (rb+1)*mmRowBlock
			if i1 > dst.Rows {
				i1 = dst.Rows
			}
			for j0 := 0; j0 < dst.Cols; j0 += mmColBlock {
				j1 := j0 + mmColBlock
				if j1 > dst.Cols {
					j1 = dst.Cols
				}
				for i := i0; i < i1; i++ {
					arow := a.Data[i*k : (i+1)*k]
					drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
					for j := j0; j < j1; j++ {
						brow := b.Data[j*k : (j+1)*k]
						var s float64
						for l, av := range arow {
							s += av * brow[l]
						}
						drow[j] = s
					}
				}
			}
		}
	})
}

// rowGrain is the minimum number of rows per parallel range for cheap
// O(cols)-per-row bodies (bias adds): small enough work per row that
// dispatching a worker for a handful of rows costs more than the rows
// themselves. Sized so one range covers at least ~2048 elements. Grain only
// caps how finely rows are partitioned — each row's arithmetic is untouched,
// so results stay bitwise identical at every worker count.
func rowGrain(cols int) int {
	if cols < 1 {
		return 2048
	}
	g := 2048 / cols
	if g < 1 {
		g = 1
	}
	return g
}

// AddRowBias adds bias to every row of m (bias length m.Cols), parallelized
// over rows. Each element sees exactly one addition, performed after the
// row's products are fully accumulated — the same "dot first, bias second"
// order the scalar forward uses (MaskedMulVec followed by Vector.Add).
func AddRowBias(m *Matrix, bias Vector, workers int) {
	if len(bias) != m.Cols {
		panic("tensor: AddRowBias length mismatch")
	}
	parallel.ForGrain(m.Rows, workers, rowGrain(m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, bv := range bias {
				row[j] += bv
			}
		}
	})
}

// AddRowBiasCols adds bias[j0:j1) to columns [j0, j1) of every row of m,
// the column-range restriction of AddRowBias (bias still has length m.Cols;
// columns outside the range are untouched). Same one-addition-per-element,
// dot-first-bias-second contract.
func AddRowBiasCols(m *Matrix, bias Vector, j0, j1, workers int) {
	if len(bias) != m.Cols {
		panic("tensor: AddRowBiasCols length mismatch")
	}
	if j0 < 0 || j1 > m.Cols || j0 > j1 {
		panic("tensor: AddRowBiasCols column range out of bounds")
	}
	if j0 == j1 {
		return
	}
	sub := bias[j0:j1]
	parallel.ForGrain(m.Rows, workers, rowGrain(j1-j0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols+j0 : i*m.Cols+j1]
			for j, bv := range sub {
				row[j] += bv
			}
		}
	})
}
