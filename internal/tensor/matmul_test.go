package tensor

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func randomMatrix(rows, cols int, r *rng.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	r.FillUniform(m.Data, -1, 1)
	// Sprinkle exact zeros so the zero-skip branches are exercised.
	for i := range m.Data {
		if r.Bernoulli(0.2) {
			m.Data[i] = 0
		}
	}
	return m
}

// naive dst = a*b^T through the serial Mul on a materialized transpose is
// NOT a valid reference for bitwise comparison (Mul's k order over b^T rows
// matches, but we want the per-sample kernel): the authoritative scalar
// reference for MatMulT is MulVec row by row.
func mulTByMulVec(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		b.MulVec(out.Row(i), a.Row(i))
	}
	return out
}

func matricesExactlyEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", name, i, v, want.Data[i])
		}
	}
}

// TestMatMulBitwiseMatchesMul: the blocked parallel GEMM must equal the
// serial Mul exactly (==, no tolerance) on ragged shapes for every worker
// count — the property the batched evaluation path's bit-identity
// guarantee is built on.
func TestMatMulBitwiseMatchesMul(t *testing.T) {
	r := rng.New(11)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 5}, {7, 1, 9}, {33, 17, 65}, {64, 64, 64}, {100, 5, 3}, {5, 100, 31}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randomMatrix(m, k, r)
		b := randomMatrix(k, n, r)
		want := NewMatrix(m, n)
		Mul(want, a, b)
		for _, workers := range []int{1, 2, 5} {
			got := NewMatrix(m, n)
			MatMul(got, a, b, workers)
			matricesExactlyEqual(t, "MatMul", got, want)
		}
	}
}

// TestMatMulTBitwiseMatchesMulVec: MatMulT row i must reproduce MulVec of
// row i against b exactly, for ragged shapes and worker counts, so the
// batched forward is the per-sample forward in a different loop order.
func TestMatMulTBitwiseMatchesMulVec(t *testing.T) {
	r := rng.New(13)
	shapes := [][3]int{{1, 1, 1}, {3, 2, 4}, {19, 7, 1}, {65, 33, 40}, {128, 9, 77}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randomMatrix(m, k, r)
		b := randomMatrix(n, k, r)
		want := mulTByMulVec(a, b)
		for _, workers := range []int{1, 2, 5} {
			got := NewMatrix(m, n)
			MatMulT(got, a, b, workers)
			matricesExactlyEqual(t, "MatMulT", got, want)
		}
	}
}

// reluRef materializes max(0, a) for reference products.
func reluRef(a *Matrix) *Matrix {
	out := a.Clone()
	for i := range out.Data {
		if out.Data[i] < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// TestMatMulColsBitwiseMatchesFull: the column-range kernels must
// reproduce the corresponding columns of the full kernels exactly — for
// every sub-range, worker count, and ragged shape — and must leave the
// columns outside the range untouched. This is the tensor-level form of
// the tail-only flip guarantee (the 4-row micro-kernel's
// ReLU-as-multiply-by-zero and dropped 1*x elision are exact no-ops).
func TestMatMulColsBitwiseMatchesFull(t *testing.T) {
	r := rng.New(23)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 5}, {6, 4, 9}, {33, 17, 65}, {13, 64, 32}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randomMatrix(m, k, r)
		b := randomMatrix(k, n, r)
		wantMul := NewMatrix(m, n)
		Mul(wantMul, a, b)
		wantReLU := NewMatrix(m, n)
		Mul(wantReLU, reluRef(a), b)
		ranges := [][2]int{{0, n}, {0, 0}, {n / 2, n}, {0, (n + 1) / 2}, {n / 3, 2*n/3 + 1}}
		for _, jr := range ranges {
			j0, j1 := jr[0], jr[1]
			if j1 > n {
				j1 = n
			}
			for _, workers := range []int{1, 2, 5} {
				got := randomMatrix(m, n, r) // poison so untouched columns are provably untouched
				keep := got.Clone()
				MatMulCols(got, a, b, j0, j1, workers)
				gotR := randomMatrix(m, n, r)
				keepR := gotR.Clone()
				MatMulReLUCols(gotR, a, b, j0, j1, workers)
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						idx := i*n + j
						if j >= j0 && j < j1 {
							if got.Data[idx] != wantMul.Data[idx] {
								t.Fatalf("MatMulCols(%v) shape %v w=%d el (%d,%d): %v != %v",
									jr, s, workers, i, j, got.Data[idx], wantMul.Data[idx])
							}
							if gotR.Data[idx] != wantReLU.Data[idx] {
								t.Fatalf("MatMulReLUCols(%v) shape %v w=%d el (%d,%d): %v != %v",
									jr, s, workers, i, j, gotR.Data[idx], wantReLU.Data[idx])
							}
						} else {
							if got.Data[idx] != keep.Data[idx] || gotR.Data[idx] != keepR.Data[idx] {
								t.Fatalf("column-range kernel touched column %d outside [%d,%d)", j, j0, j1)
							}
						}
					}
				}
			}
		}
	}
}

// TestAddRowBiasCols: the column-range bias add must match AddRowBias on
// the range and leave the rest untouched.
func TestAddRowBiasCols(t *testing.T) {
	r := rng.New(29)
	m := randomMatrix(9, 7, r)
	bias := NewVector(7)
	r.FillUniform(bias, -1, 1)
	want := m.Clone()
	AddRowBias(want, bias, 2)
	got := m.Clone()
	AddRowBiasCols(got, bias, 2, 5, 3)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			idx := i*m.Cols + j
			in := j >= 2 && j < 5
			if in && got.Data[idx] != want.Data[idx] {
				t.Fatalf("AddRowBiasCols el (%d,%d): %v != %v", i, j, got.Data[idx], want.Data[idx])
			}
			if !in && got.Data[idx] != m.Data[idx] {
				t.Fatalf("AddRowBiasCols touched column %d outside [2,5)", j)
			}
		}
	}
}

// TestAddRowBias: one addition per element, after the products.
func TestAddRowBias(t *testing.T) {
	r := rng.New(17)
	m := randomMatrix(9, 5, r)
	want := m.Clone()
	bias := NewVector(5)
	r.FillUniform(bias, -1, 1)
	for i := 0; i < want.Rows; i++ {
		want.Row(i).Add(bias)
	}
	AddRowBias(m, bias, 3)
	matricesExactlyEqual(t, "AddRowBias", m, want)
}

// FuzzMatMulEquivalence fuzzes the blocked GEMM against the naive serial
// Mul (and MatMulT against per-row MulVec) on ragged shapes drawn from the
// fuzzer, asserting exact bitwise equality. Entries are finite uniforms
// seeded from the fuzz input, so the zero-skip in Mul is a true no-op.
func FuzzMatMulEquivalence(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(5), uint64(1), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint64(9), uint8(1))
	f.Add(uint8(33), uint8(65), uint8(17), uint64(42), uint8(5))
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw uint8, seed uint64, wRaw uint8) {
		m := 1 + int(mRaw)%80
		k := 1 + int(kRaw)%80
		n := 1 + int(nRaw)%80
		workers := 1 + int(wRaw)%6
		r := rng.New(seed)
		a := randomMatrix(m, k, r)
		b := randomMatrix(k, n, r)
		want := NewMatrix(m, n)
		Mul(want, a, b)
		got := NewMatrix(m, n)
		MatMul(got, a, b, workers)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMul(%dx%dx%d, w=%d) differs from Mul at %d: %v vs %v",
					m, k, n, workers, i, got.Data[i], want.Data[i])
			}
		}
		bt := randomMatrix(n, k, r)
		wantT := mulTByMulVec(a, bt)
		gotT := NewMatrix(m, n)
		MatMulT(gotT, a, bt, workers)
		for i := range gotT.Data {
			if gotT.Data[i] != wantT.Data[i] {
				t.Fatalf("MatMulT(%dx%dx%d, w=%d) differs from MulVec at %d: %v vs %v",
					m, k, n, workers, i, gotT.Data[i], wantT.Data[i])
			}
		}
	})
}
