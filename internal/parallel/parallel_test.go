package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPartitionCovers(t *testing.T) {
	f := func(n, parts uint8) bool {
		rs := Partition(int(n), int(parts))
		covered := 0
		last := 0
		for _, r := range rs {
			if r.Lo != last || r.Hi <= r.Lo {
				return false
			}
			covered += r.Hi - r.Lo
			last = r.Hi
		}
		return covered == int(n) && (len(rs) == 0) == (n == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	rs := Partition(100, 7)
	for _, r := range rs {
		size := r.Hi - r.Lo
		if size < 100/7 || size > 100/7+1 {
			t.Errorf("unbalanced range %v", r)
		}
	}
}

func TestForVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var count int64
		visited := make([]int32, 1000)
		For(1000, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visited[i], 1)
				atomic.AddInt64(&count, 1)
			}
		})
		if count != 1000 {
			t.Fatalf("workers=%d visited %d indices", workers, count)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("index %d visited %d times", i, v)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty loop")
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestReduceFloat64MatchesSerial(t *testing.T) {
	data := make([]float64, 777)
	for i := range data {
		data[i] = float64(i%13) * 0.5
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := ReduceFloat64(len(data), workers, 2, func(lo, hi int, acc []float64) {
			for i := lo; i < hi; i++ {
				acc[0] += data[i]
				acc[1] += 1
			}
		})
		var want float64
		for _, v := range data {
			want += v
		}
		if got[0] != want || got[1] != float64(len(data)) {
			t.Fatalf("workers=%d got %v want [%v %v]", workers, got, want, len(data))
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := ReduceFloat64(0, 4, 3, func(lo, hi int, acc []float64) { acc[0] = 99 })
	for _, v := range got {
		if v != 0 {
			t.Fatalf("empty reduce returned %v", got)
		}
	}
}

func TestPool(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	var total int64
	tasks := make([]func(), 20)
	for i := range tasks {
		i := i
		tasks[i] = func() { atomic.AddInt64(&total, int64(i)) }
	}
	p.Run(tasks...)
	if total != 190 {
		t.Fatalf("total = %d, want 190", total)
	}
	// Pool is reusable.
	p.Run(func() { atomic.AddInt64(&total, 10) })
	if total != 200 {
		t.Fatalf("total after reuse = %d", total)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, 0, func(lo, hi int) {
			s := 0.0
			for j := lo; j < hi; j++ {
				s += float64(j)
			}
			_ = s
		})
	}
}
