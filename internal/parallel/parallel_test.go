package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPartitionCovers(t *testing.T) {
	f := func(n, parts uint8) bool {
		rs := Partition(int(n), int(parts))
		covered := 0
		last := 0
		for _, r := range rs {
			if r.Lo != last || r.Hi <= r.Lo {
				return false
			}
			covered += r.Hi - r.Lo
			last = r.Hi
		}
		return covered == int(n) && (len(rs) == 0) == (n == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	rs := Partition(100, 7)
	for _, r := range rs {
		size := r.Hi - r.Lo
		if size < 100/7 || size > 100/7+1 {
			t.Errorf("unbalanced range %v", r)
		}
	}
}

func TestForVisitsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var count int64
		visited := make([]int32, 1000)
		For(1000, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visited[i], 1)
				atomic.AddInt64(&count, 1)
			}
		})
		if count != 1000 {
			t.Fatalf("workers=%d visited %d indices", workers, count)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("index %d visited %d times", i, v)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty loop")
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestReduceFloat64MatchesSerial(t *testing.T) {
	data := make([]float64, 777)
	for i := range data {
		data[i] = float64(i%13) * 0.5
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := ReduceFloat64(len(data), workers, 2, func(lo, hi int, acc []float64) {
			for i := lo; i < hi; i++ {
				acc[0] += data[i]
				acc[1] += 1
			}
		})
		var want float64
		for _, v := range data {
			want += v
		}
		if got[0] != want || got[1] != float64(len(data)) {
			t.Fatalf("workers=%d got %v want [%v %v]", workers, got, want, len(data))
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := ReduceFloat64(0, 4, 3, func(lo, hi int, acc []float64) { acc[0] = 99 })
	for _, v := range got {
		if v != 0 {
			t.Fatalf("empty reduce returned %v", got)
		}
	}
}

func TestPool(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	var total int64
	tasks := make([]func(), 20)
	for i := range tasks {
		i := i
		tasks[i] = func() { atomic.AddInt64(&total, int64(i)) }
	}
	p.Run(tasks...)
	if total != 190 {
		t.Fatalf("total = %d, want 190", total)
	}
	// Pool is reusable.
	p.Run(func() { atomic.AddInt64(&total, 10) })
	if total != 200 {
		t.Fatalf("total after reuse = %d", total)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(1024, 0, func(lo, hi int) {
			s := 0.0
			for j := lo; j < hi; j++ {
				s += float64(j)
			}
			_ = s
		})
	}
}

func TestForGrainVisitsAll(t *testing.T) {
	for _, tc := range []struct{ n, workers, grain int }{
		{1000, 8, 1}, {1000, 8, 100}, {1000, 8, 5000},
		{7, 4, 4}, {0, 4, 16}, {1000, 0, 64},
	} {
		var count int64
		visited := make([]int32, tc.n)
		ForGrain(tc.n, tc.workers, tc.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visited[i], 1)
				atomic.AddInt64(&count, 1)
			}
		})
		if count != int64(tc.n) {
			t.Fatalf("%+v: visited %d indices", tc, count)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("%+v: index %d visited %d times", tc, i, v)
			}
		}
	}
}

// TestForGrainInlineBelowThreshold pins the grain contract: once n <= grain
// the whole loop is one inline body call.
func TestForGrainInlineBelowThreshold(t *testing.T) {
	var calls int64
	ForGrain(64, 8, 64, func(lo, hi int) { atomic.AddInt64(&calls, 1) })
	if calls != 1 {
		t.Fatalf("n<=grain made %d body calls, want 1", calls)
	}
	atomic.StoreInt64(&calls, 0)
	ForGrain(129, 8, 64, func(lo, hi int) { atomic.AddInt64(&calls, 1) })
	if calls != 2 {
		t.Fatalf("n=129 grain=64 made %d body calls, want 2", calls)
	}
}

// TestForGrainSameRangesAsFor pins the bitwise doctrine at the scheduling
// layer: for the effective partition, ForGrain executes exactly the ranges
// For would with the capped worker count.
func TestForGrainSameRangesAsFor(t *testing.T) {
	collect := func(run func(body func(lo, hi int))) map[Range]bool {
		var mu sync.Mutex
		got := map[Range]bool{}
		run(func(lo, hi int) {
			mu.Lock()
			got[Range{lo, hi}] = true
			mu.Unlock()
		})
		return got
	}
	a := collect(func(b func(lo, hi int)) { ForGrain(1000, 8, 300, b) })
	b := collect(func(b2 func(lo, hi int)) { For(1000, 3, b2) })
	if len(a) != len(b) {
		t.Fatalf("range sets differ: %v vs %v", a, b)
	}
	for r := range a {
		if !b[r] {
			t.Fatalf("ForGrain range %v not produced by For", r)
		}
	}
}

// TestForNestedNoDeadlock exercises nested fan-out through the persistent
// pool: inner For calls run while every outer range occupies an executor.
// The pool hands work only to provably idle workers (spawning otherwise), so
// this must complete rather than deadlock.
func TestForNestedNoDeadlock(t *testing.T) {
	var total int64
	For(16, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(100, 4, func(l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if total != 1600 {
		t.Fatalf("nested total = %d, want 1600", total)
	}
}

// TestForPoolReuse pins that repeated parallel sections are served by the
// persistent pool rather than unbounded goroutine growth: after a warm-up
// sweep, thousands of For calls must not push the spawn counter past the cap.
func TestForPoolReuse(t *testing.T) {
	for i := 0; i < 2000; i++ {
		For(256, 8, func(lo, hi int) {
			s := 0.0
			for j := lo; j < hi; j++ {
				s += float64(j)
			}
			_ = s
		})
	}
	if n := globalSpawned.Load(); n > maxPoolWorkers {
		t.Fatalf("spawn counter %d exceeds cap %d", n, maxPoolWorkers)
	}
}

func TestPoolCloseTwicePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("second Close did not panic")
		}
	}()
	p.Close()
}

func TestPoolRunAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	p.Run(func() {})
}

func TestPoolConcurrentRunPanics(t *testing.T) {
	p := NewPool(2)
	release := make(chan struct{})
	started := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		p.Run(func() { close(started); <-release })
	}()
	<-started
	panicked := false
	func() {
		defer func() { panicked = recover() != nil }()
		p.Run(func() {})
	}()
	close(release)
	<-firstDone
	p.Close()
	if !panicked {
		t.Fatal("concurrent Run did not panic")
	}
}
