// Package parallel provides small building blocks for data-parallel loops:
// a grain-controlled parallel for, index-range partitioning, and per-worker
// reduction buffers. They follow the channel-of-completions idiom so callers
// never manage goroutine lifecycles directly.
package parallel

import (
	"runtime"
	"sync"
)

// MaxWorkers is the default worker count for For and Map.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Partition splits [0,n) into at most parts near-equal contiguous ranges.
// Empty ranges are omitted, so the result may be shorter than parts.
func Partition(n, parts int) []Range {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, Range{lo, hi})
		}
	}
	return out
}

// For runs body(lo, hi) over a partition of [0,n) using up to workers
// goroutines. workers <= 0 means MaxWorkers. With one worker or tiny n the
// loop runs inline, so For is safe to use unconditionally on hot paths.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = MaxWorkers()
	}
	ranges := Partition(n, workers)
	if len(ranges) == 1 {
		body(ranges[0].Lo, ranges[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for _, r := range ranges[1:] {
		go func(r Range) {
			defer wg.Done()
			body(r.Lo, r.Hi)
		}(r)
	}
	body(ranges[0].Lo, ranges[0].Hi)
	wg.Wait()
}

// ForEach runs body(i) for each i in [0,n) with up to workers goroutines.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ReduceFloat64 runs body over a partition of [0,n), giving each worker a
// private accumulator slice of length dim; partial results are summed into a
// fresh slice. It is the shared-nothing alternative to atomic adds.
func ReduceFloat64(n, workers, dim int, body func(lo, hi int, acc []float64)) []float64 {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	ranges := Partition(n, workers)
	if len(ranges) == 0 {
		return make([]float64, dim)
	}
	parts := make([][]float64, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for w, r := range ranges {
		go func(w int, r Range) {
			defer wg.Done()
			acc := make([]float64, dim)
			body(r.Lo, r.Hi, acc)
			parts[w] = acc
		}(w, r)
	}
	wg.Wait()
	total := make([]float64, dim)
	for _, p := range parts {
		for i, v := range p {
			total[i] += v
		}
	}
	return total
}

// Pool is a fixed-size worker pool for repeatedly dispatching batches of
// closures; it amortizes goroutine startup across many small parallel
// sections (e.g. one VQMC iteration).
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	size  int
}

// NewPool starts a pool with the given number of workers (<=0 means
// MaxWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	p := &Pool{tasks: make(chan func(), workers), size: workers}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Size reports the number of workers.
func (p *Pool) Size() int { return p.size }

// Run dispatches all tasks and waits for them to finish.
func (p *Pool) Run(tasks ...func()) {
	p.wg.Add(len(tasks))
	for _, t := range tasks {
		p.tasks <- t
	}
	p.wg.Wait()
}

// Close shuts the pool down. The pool must be idle.
func (p *Pool) Close() { close(p.tasks) }
