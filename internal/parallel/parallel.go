// Package parallel provides small building blocks for data-parallel loops:
// a parallel for with an optional grain threshold (ForGrain), index-range
// partitioning, and per-worker reduction buffers. Parallel sections are
// dispatched through a process-wide persistent worker pool so hot loops that
// fan out every iteration (the trainer, the batched evaluators) do not pay
// goroutine startup each time; callers never manage goroutine lifecycles
// directly.
//
// Worker count is a throughput knob only: every helper invokes its body on
// exactly the same index ranges for a given (n, workers) pair regardless of
// how the ranges are scheduled, so results stay bitwise identical whether
// ranges run inline, on pooled workers, or on freshly spawned goroutines.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers is the default worker count for For and Map.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Partition splits [0,n) into at most parts near-equal contiguous ranges.
// Empty ranges are omitted, so the result may be shorter than parts.
func Partition(n, parts int) []Range {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, Range{lo, hi})
		}
	}
	return out
}

// poolTask is one unit of work handed to a persistent pool worker.
type poolTask struct {
	fn   func()
	done *sync.WaitGroup
}

// poolWorker is a persistent goroutine that runs tasks one at a time and
// re-registers itself as idle after each.
type poolWorker struct {
	tasks chan poolTask
}

func (w *poolWorker) loop() {
	for t := range w.tasks {
		t.fn()
		// Re-register before signalling completion so back-to-back parallel
		// sections can reclaim this worker immediately. The idle channel is
		// sized to the spawn cap, so the send never blocks.
		globalIdle <- w
		t.done.Done()
	}
}

// maxPoolWorkers caps the persistent pool. Sections wider than the cap fall
// back to one-shot goroutines for the overflow, so nothing queues and nested
// For calls can never deadlock: work is only ever handed to a worker that is
// provably idle.
const maxPoolWorkers = 64

var (
	globalIdle    = make(chan *poolWorker, maxPoolWorkers)
	globalSpawned atomic.Int32
)

// dispatch runs fn on a persistent pool worker when one is idle, growing the
// pool on demand up to maxPoolWorkers, and falls back to a fresh goroutine
// beyond the cap. wg.Done is called exactly once when fn returns.
func dispatch(fn func(), wg *sync.WaitGroup) {
	select {
	case w := <-globalIdle:
		w.tasks <- poolTask{fn, wg}
		return
	default:
	}
	if globalSpawned.Add(1) <= maxPoolWorkers {
		w := &poolWorker{tasks: make(chan poolTask, 1)}
		go w.loop()
		w.tasks <- poolTask{fn, wg}
		return
	}
	globalSpawned.Add(-1)
	go func() {
		fn()
		wg.Done()
	}()
}

// For runs body(lo, hi) over a partition of [0,n) using up to workers
// concurrent executors. workers <= 0 means MaxWorkers. With one worker or
// tiny n the loop runs inline, so For is safe to use unconditionally on hot
// paths; wider sections are dispatched through the persistent process-wide
// pool, spawning goroutines only when the pool is saturated.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = MaxWorkers()
	}
	ranges := Partition(n, workers)
	if len(ranges) == 1 {
		body(ranges[0].Lo, ranges[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for _, r := range ranges[1:] {
		r := r
		dispatch(func() { body(r.Lo, r.Hi) }, &wg)
	}
	body(ranges[0].Lo, ranges[0].Hi)
	wg.Wait()
}

// ForGrain is For with a minimum per-range grain: the worker count is capped
// so every executed range spans at least grain indices, and the whole loop
// runs inline once n <= grain. Use it for cheap per-element bodies (zeroing,
// copies, elementwise maps) where dispatch overhead would dominate below the
// threshold; grain <= 1 is plain For. For a given effective partition the
// executed index ranges are identical to For's, so the grain choice affects
// scheduling only, never results.
func ForGrain(n, workers, grain int, body func(lo, hi int)) {
	if grain > 1 && n > 0 {
		maxParts := n / grain
		if maxParts < 1 {
			maxParts = 1
		}
		if workers <= 0 {
			workers = MaxWorkers()
		}
		if workers > maxParts {
			workers = maxParts
		}
	}
	For(n, workers, body)
}

// ForEach runs body(i) for each i in [0,n) with up to workers goroutines.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ReduceFloat64 runs body over a partition of [0,n), giving each worker a
// private accumulator slice of length dim; partial results are summed into a
// fresh slice in partition order, so the reduction is deterministic for a
// given (n, workers) pair. It is the shared-nothing alternative to atomic
// adds.
func ReduceFloat64(n, workers, dim int, body func(lo, hi int, acc []float64)) []float64 {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	ranges := Partition(n, workers)
	if len(ranges) == 0 {
		return make([]float64, dim)
	}
	parts := make([][]float64, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for w, r := range ranges {
		w, r := w, r
		dispatch(func() {
			acc := make([]float64, dim)
			body(r.Lo, r.Hi, acc)
			parts[w] = acc
		}, &wg)
	}
	wg.Wait()
	total := make([]float64, dim)
	for _, p := range parts {
		for i, v := range p {
			total[i] += v
		}
	}
	return total
}

// Pool is a fixed-size worker pool for repeatedly dispatching batches of
// closures; it amortizes goroutine startup across many small parallel
// sections (e.g. one VQMC iteration).
//
// Contracts (enforced with panics, best-effort under racing misuse):
//   - Run is single-caller: at most one Run may be in flight at a time.
//     Concurrent Run calls would interleave their WaitGroup accounting and
//     return before their own tasks finish.
//   - Close may only be called when the pool is idle (no Run in flight) and
//     at most once; tasks submitted after Close panic on the closed channel.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	size    int
	running atomic.Bool
	closed  atomic.Bool
}

// NewPool starts a pool with the given number of workers (<=0 means
// MaxWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	p := &Pool{tasks: make(chan func(), workers), size: workers}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Size reports the number of workers.
func (p *Pool) Size() int { return p.size }

// Run dispatches all tasks and waits for them to finish. It is single-caller:
// concurrent Run calls on the same Pool panic.
func (p *Pool) Run(tasks ...func()) {
	if !p.running.CompareAndSwap(false, true) {
		panic("parallel: concurrent Pool.Run calls (Run is single-caller)")
	}
	defer p.running.Store(false)
	if p.closed.Load() {
		panic("parallel: Pool.Run after Close")
	}
	p.wg.Add(len(tasks))
	for _, t := range tasks {
		p.tasks <- t
	}
	p.wg.Wait()
}

// Close shuts the pool down. The pool must be idle: Close panics if a Run is
// in flight or the pool is already closed.
func (p *Pool) Close() {
	if p.running.Load() {
		panic("parallel: Pool.Close while Run in flight (pool must be idle)")
	}
	if !p.closed.CompareAndSwap(false, true) {
		panic("parallel: Pool.Close called twice")
	}
	close(p.tasks)
}
