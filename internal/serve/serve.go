// Package serve is the inference service that joins the repo's two halves
// into a product: trained wavefunctions with cheap batched evaluation
// (nn.BatchEvaluator through core.BatchedEval) and combinatorial
// workloads (Max-Cut over internal/maxcut). A Server holds a
// checkpoint-backed model registry and serves concurrent LogPsi /
// local-energy / sample queries by folding in-flight requests from many
// clients into one ConfigBatch GEMM dispatch — the same amortization the
// training hot path uses for B=1024 minibatches, applied to B=1024
// strangers.
//
// The correctness doctrine is the repo's bitwise-equivalence doctrine
// extended to traffic: a served answer is bitwise == to a direct
// single-caller core.BatchedEval call on that request's configurations
// alone, no matter how requests were coalesced. This follows from the
// nn.BatchEvaluator contract (every row's value is pinned to the scalar
// per-row value, so batch composition is invisible) and is enforced by the
// serve conformance suite with exact ==.
//
// Concurrency model: each registered model owns one dispatcher goroutine
// that is the sole toucher of the model's parameters, evaluator scratch and
// sampler — requests, checkpoint hot-swaps and drains all serialize through
// its queue, so swaps are race-free barriers between batches and no lock
// guards the hot path. Admission control is per model: a bounded count of
// pending rows, with immediate ErrOverloaded rejection beyond it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Sentinel errors the endpoints return; the HTTP layer maps them to status
// codes.
var (
	// ErrUnknownModel reports a request for a name with no registry entry.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrOverloaded is the admission-control rejection: accepting the
	// request would exceed the model's MaxPending rows (or the server's
	// MaxSolves concurrent Max-Cut solves). Clients should back off.
	ErrOverloaded = errors.New("serve: overloaded, try again later")
	// ErrDraining reports a submit after Close began: the server finishes
	// queued work but admits nothing new.
	ErrDraining = errors.New("serve: server draining")
	// ErrUnsupported reports an operation the model cannot serve (sampling
	// a non-autoregressive model, energies with no Hamiltonian attached).
	ErrUnsupported = errors.New("serve: operation unsupported by model")
	// ErrBadRequest reports malformed request payloads (wrong site count,
	// non-bit values, non-positive sample counts).
	ErrBadRequest = errors.New("serve: bad request")
)

// Config tunes one model's coalescer and admission control. Zero values
// select the defaults; none of the knobs affect served VALUES, only
// latency, throughput and rejection behavior.
type Config struct {
	// MaxBatch caps the rows folded into one dispatch (default 1024).
	// MaxBatch = 1 disables coalescing: every request is its own dispatch
	// (the A/B baseline the load harness measures against).
	MaxBatch int
	// Window bounds the queue delay: after a request opens a batch, the
	// dispatcher waits at most Window for more arrivals before dispatching
	// a partial batch (default 100us). Window = 0 folds in only requests
	// already queued, never waiting.
	Window time.Duration
	// MaxPending is the admission bound: the maximum rows queued or in
	// flight for this model before submits are rejected with ErrOverloaded
	// (default 4096). A single request larger than MaxPending is always
	// rejected.
	MaxPending int
	// Workers bounds the evaluation fan-out inside a dispatch (<= 0 means
	// GOMAXPROCS). Worker count never affects a served value.
	Workers int
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.Window < 0 {
		c.Window = 0
	} else if c.Window == 0 {
		c.Window = 100 * time.Microsecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.Workers <= 0 {
		c.Workers = parallel.MaxWorkers()
	}
	return c
}

// ExplicitZeroWindow is the Window value selecting "never wait": collect
// only the backlog already queued. (Config.Window == 0 means "default".)
const ExplicitZeroWindow = -1 * time.Nanosecond

// ModelSpec registers one model: the wavefunction, an optional Hamiltonian
// for local-energy queries, and the coalescer tuning.
type ModelSpec struct {
	// WF is the live wavefunction; it must provide a batched evaluation
	// path (nn.BatchEvaluatorBuilder — all four families do).
	WF nn.Wavefunction
	// Ham, when non-nil, enables local-energy queries against it.
	Ham hamiltonian.Hamiltonian
	// Config tunes the coalescer; zero values select defaults.
	Config Config
}

// ModelInfo describes one registry entry for listings.
type ModelInfo struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Sites      int    `json:"sites"`
	Params     int    `json:"params"`
	Sampleable bool   `json:"sampleable"`
	HasEnergy  bool   `json:"has_energy"`
	MaxBatch   int    `json:"max_batch"`
	MaxPending int    `json:"max_pending"`
}

// Stats is a snapshot of one model's serving counters.
type Stats struct {
	// Requests is the number of requests completed successfully.
	Requests uint64 `json:"requests"`
	// Rows is the total configuration rows evaluated.
	Rows uint64 `json:"rows"`
	// Batches is the number of coalesced dispatches through the GEMM path.
	Batches uint64 `json:"batches"`
	// Rejected counts admission-control rejections (ErrOverloaded).
	Rejected uint64 `json:"rejected"`
	// Canceled counts requests that were admitted but whose context ended
	// before evaluation; they are completed without being evaluated.
	Canceled uint64 `json:"canceled"`
	// Swaps counts applied checkpoint hot-swaps.
	Swaps uint64 `json:"swaps"`
}

// ServerConfig tunes server-wide behavior. Zero values select defaults.
type ServerConfig struct {
	// MaxSolves bounds concurrent Max-Cut solves (default 4); beyond it
	// SolveMaxCut rejects with ErrOverloaded.
	MaxSolves int
	// MaxCutNodes caps the vertex count of a served Max-Cut instance
	// (default 4096). The solvers allocate O(n^2) state, so n is vetted
	// against this cap before anything request-sized is allocated — a
	// request the admission control would reject can never cost an
	// allocation first.
	MaxCutNodes int
	// CheckpointDir, when non-empty, is the directory SwapFile resolves
	// checkpoint paths inside; paths must be local (no absolute paths, no
	// ".." escapes). When empty, file-based swaps are disabled with
	// ErrUnsupported — the HTTP swap endpoint must be opted into by the
	// operator, it never exposes the server filesystem by default. The
	// in-process Swap API is unaffected.
	CheckpointDir string
}

// Server is the long-running inference service: a named-model registry
// with per-model coalescing dispatchers plus the Max-Cut solver pool.
// All methods are safe for concurrent use.
type Server struct {
	cfg      ServerConfig
	mu       sync.RWMutex
	models   map[string]*modelService
	draining bool
	solves   chan struct{}
	solveWG  sync.WaitGroup
}

// NewServer builds an empty server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxSolves <= 0 {
		cfg.MaxSolves = 4
	}
	if cfg.MaxCutNodes <= 0 {
		cfg.MaxCutNodes = 4096
	}
	return &Server{
		cfg:    cfg,
		models: make(map[string]*modelService),
		solves: make(chan struct{}, cfg.MaxSolves),
	}
}

// Register adds a model under name and starts its dispatcher. The model
// must provide a batched evaluation path; registering a duplicate name or
// registering on a draining server errors.
func (s *Server) Register(name string, spec ModelSpec) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if spec.WF == nil {
		return fmt.Errorf("serve: model %q has nil wavefunction", name)
	}
	cfg := spec.Config.withDefaults()
	be := core.NewBatchedEval(spec.WF, core.EvalAuto, cfg.Workers)
	if be == nil {
		return fmt.Errorf("serve: model %q (%T) has no batched evaluation path", name, spec.WF)
	}
	m := newModelService(name, spec.WF, spec.Ham, be, cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if _, dup := s.models[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	s.models[name] = m
	m.start()
	return nil
}

// Close drains the server: new submits are rejected with ErrDraining,
// queued requests complete, every dispatcher exits, and in-flight Max-Cut
// solves finish. Close is idempotent and returns after the drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		// Another Close already ran or is running; wait for dispatchers
		// below so every caller returns after the drain.
		s.mu.Unlock()
	} else {
		s.draining = true
		s.mu.Unlock()
	}
	s.mu.RLock()
	ms := make([]*modelService, 0, len(s.models))
	for _, m := range s.models {
		ms = append(ms, m)
	}
	s.mu.RUnlock()
	for _, m := range ms {
		m.close()
	}
	s.solveWG.Wait()
}

// Models lists the registry, sorted by name.
func (s *Server) Models() []ModelInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ModelInfo, 0, len(s.models))
	for name, m := range s.models {
		out = append(out, ModelInfo{
			Name:       name,
			Kind:       nn.KindName(m.wf),
			Sites:      m.sites,
			Params:     m.wf.NumParams(),
			Sampleable: m.smp != nil,
			HasEnergy:  m.ham != nil,
			MaxBatch:   m.cfg.MaxBatch,
			MaxPending: m.cfg.MaxPending,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ModelStats returns a snapshot of one model's serving counters.
func (s *Server) ModelStats(name string) (Stats, error) {
	m, err := s.lookup(name)
	if err != nil {
		return Stats{}, err
	}
	return m.stats(), nil
}

func (s *Server) lookup(name string) (*modelService, error) {
	s.mu.RLock()
	m := s.models[name]
	s.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m, nil
}

// flatten validates configs (each length sites, bits in {0,1}) and packs
// them row-major into a fresh slice the request owns.
func flatten(configs [][]int, sites int) ([]int, int, error) {
	if len(configs) == 0 {
		return nil, 0, fmt.Errorf("%w: no configurations", ErrBadRequest)
	}
	bits := make([]int, len(configs)*sites)
	for k, row := range configs {
		if len(row) != sites {
			return nil, 0, fmt.Errorf("%w: config %d has %d sites, model has %d", ErrBadRequest, k, len(row), sites)
		}
		for i, b := range row {
			if b != 0 && b != 1 {
				return nil, 0, fmt.Errorf("%w: config %d site %d is %d, want 0 or 1", ErrBadRequest, k, i, b)
			}
			bits[k*sites+i] = b
		}
	}
	return bits, len(configs), nil
}

// LogPsi serves log|psi(x)| for each configuration. The returned slice is
// bitwise == to a direct core.BatchedEval.LogPsi (equivalently per-row
// scalar model.LogPsi) on exactly these configurations, regardless of what
// other requests were coalesced into the same dispatch.
func (s *Server) LogPsi(ctx context.Context, model string, configs [][]int) ([]float64, error) {
	m, err := s.lookup(model)
	if err != nil {
		return nil, err
	}
	bits, rows, err := flatten(configs, m.sites)
	if err != nil {
		return nil, err
	}
	r := &request{kind: kindLogPsi, rows: rows, bits: bits, out: make([]float64, rows)}
	if err := m.submit(ctx, r); err != nil {
		return nil, err
	}
	return r.out, nil
}

// LocalEnergy serves the local energy of each configuration under the
// model's registered Hamiltonian, bitwise == to a direct
// core.BatchedEval.LocalEnergies (equivalently scalar core.LocalEnergies)
// on exactly these configurations.
func (s *Server) LocalEnergy(ctx context.Context, model string, configs [][]int) ([]float64, error) {
	m, err := s.lookup(model)
	if err != nil {
		return nil, err
	}
	if m.ham == nil {
		return nil, fmt.Errorf("%w: model %q has no Hamiltonian", ErrUnsupported, model)
	}
	bits, rows, err := flatten(configs, m.sites)
	if err != nil {
		return nil, err
	}
	r := &request{kind: kindEnergy, rows: rows, bits: bits, out: make([]float64, rows)}
	if err := m.submit(ctx, r); err != nil {
		return nil, err
	}
	return r.out, nil
}

// Sample serves count exact ancestral samples from an autoregressive
// model. The sampled bits are bitwise == to a direct
// sampler.NewAutoBatched(sites, model, 1, rng.New(seed)) draw of a
// count-row batch: the server pre-draws the same uniforms in the same
// order at submit time, and per-sample bits are batch-composition- and
// worker-invariant by the nn.BatchAncestralSampler contract, so coalescing
// with strangers never changes a sampled bit.
func (s *Server) Sample(ctx context.Context, model string, count int, seed uint64) ([][]int, error) {
	m, err := s.lookup(model)
	if err != nil {
		return nil, err
	}
	if m.smp == nil {
		return nil, fmt.Errorf("%w: model %q is not exactly sampleable", ErrUnsupported, model)
	}
	if count < 1 {
		return nil, fmt.Errorf("%w: sample count %d", ErrBadRequest, count)
	}
	if count > m.cfg.MaxPending {
		// submit would reject this row count anyway; rejecting here keeps
		// the admission bound ahead of the count*sites buffers and uniform
		// draws below, so an absurd count costs nothing before it is shed
		// (and count*m.sites can never overflow).
		m.rejected.Add(1)
		return nil, fmt.Errorf("%w: sample count %d exceeds admission bound %d", ErrOverloaded, count, m.cfg.MaxPending)
	}
	u := make([]float64, count*m.sites)
	stream := rng.New(seed).SplitN(1)[0]
	for i := range u {
		u[i] = stream.Float64()
	}
	r := &request{kind: kindSample, rows: count, u: u, outBits: make([]int, count*m.sites)}
	if err := m.submit(ctx, r); err != nil {
		return nil, err
	}
	rows := make([][]int, count)
	for k := range rows {
		rows[k] = r.outBits[k*m.sites : (k+1)*m.sites]
	}
	return rows, nil
}

// Swap hot-swaps the live model onto wf's parameters. The swap is applied
// by the model's dispatcher as a queue barrier: requests admitted before
// the swap are evaluated on the old parameters, requests admitted after it
// on the new — no batch ever mixes the two. The architectures must match
// (nn.HotSwapParams validates kind, sites and parameter count).
func (s *Server) Swap(ctx context.Context, model string, wf nn.Wavefunction) error {
	m, err := s.lookup(model)
	if err != nil {
		return err
	}
	if wf == nil {
		return fmt.Errorf("%w: nil wavefunction", ErrBadRequest)
	}
	r := &request{kind: kindSwap, swapTo: wf}
	return m.submit(ctx, r)
}

// SwapFile loads a checkpoint and hot-swaps the live model onto it — the
// serving form of "deploy the new checkpoint". path is resolved inside
// ServerConfig.CheckpointDir and must be local to it (relative, no ".."),
// so a network client can only reach checkpoints the operator staged
// there; with no CheckpointDir configured, file-based swaps are disabled.
func (s *Server) SwapFile(ctx context.Context, model, path string) error {
	if s.cfg.CheckpointDir == "" {
		return fmt.Errorf("%w: file-based swap disabled (no checkpoint directory configured)", ErrUnsupported)
	}
	if !filepath.IsLocal(path) {
		return fmt.Errorf("%w: checkpoint path %q must be relative, inside the checkpoint directory", ErrBadRequest, path)
	}
	wf, err := nn.LoadFile(filepath.Join(s.cfg.CheckpointDir, path))
	if err != nil {
		// An unreadable or corrupt checkpoint is the caller's problem: the
		// live model is untouched, so surface it as a request error.
		return fmt.Errorf("%w: load checkpoint: %v", ErrBadRequest, err)
	}
	return s.Swap(ctx, model, wf)
}
