package serve

import (
	"context"
	"fmt"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/maxcut"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// MaxCutEdge is one weighted undirected edge of a Max-Cut instance.
type MaxCutEdge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// MaxCutRequest describes one Max-Cut solve. Algorithm selects the solver
// ("random", "gw" Goemans-Williamson, "bm" Burer-Monteiro; default "gw");
// the remaining knobs mirror maxcut.GWConfig/BMConfig with zero-value
// defaults. Seed pins the RNG: the same request always produces the same
// cut, bitwise — the serving doctrine applied to the solver endpoint.
type MaxCutRequest struct {
	N         int          `json:"n"`
	Edges     []MaxCutEdge `json:"edges"`
	Algorithm string       `json:"algorithm,omitempty"`
	Rank      int          `json:"rank,omitempty"`
	Rounds    int          `json:"rounds,omitempty"`
	MaxIter   int          `json:"max_iter,omitempty"`
	LocalSwap bool         `json:"local_swap,omitempty"`
	Seed      uint64       `json:"seed"`
}

// MaxCutResult is a served cut.
type MaxCutResult struct {
	Cut        float64 `json:"cut"`
	Assignment []int   `json:"assignment"`
	SDPBound   float64 `json:"sdp_bound,omitempty"`
	Algorithm  string  `json:"algorithm"`
}

// validateMaxCut checks the request shape without allocating anything
// request-sized: vertex bounds (including the server's MaxCutNodes cap —
// the solvers hold O(n^2) state, so n must be vetted before graph.New can
// be asked for it), edge endpoints, and the algorithm name. It returns
// the resolved algorithm.
func validateMaxCut(req MaxCutRequest, maxNodes int) (string, error) {
	if req.N < 2 {
		return "", fmt.Errorf("%w: maxcut n=%d", ErrBadRequest, req.N)
	}
	if req.N > maxNodes {
		return "", fmt.Errorf("%w: maxcut n=%d exceeds server cap %d", ErrBadRequest, req.N, maxNodes)
	}
	if len(req.Edges) == 0 {
		return "", fmt.Errorf("%w: maxcut instance has no edges", ErrBadRequest)
	}
	for i, e := range req.Edges {
		if e.U < 0 || e.U >= req.N || e.V < 0 || e.V >= req.N || e.U == e.V {
			return "", fmt.Errorf("%w: edge %d (%d,%d) out of range for n=%d", ErrBadRequest, i, e.U, e.V, req.N)
		}
	}
	algo := req.Algorithm
	if algo == "" {
		algo = "gw"
	}
	switch algo {
	case "random", "gw", "bm":
	default:
		return "", fmt.Errorf("%w: unknown algorithm %q", ErrBadRequest, algo)
	}
	return algo, nil
}

// buildGraph assembles a validated request's graph.
func buildGraph(req MaxCutRequest) *graph.Graph {
	g := graph.New(req.N)
	for _, e := range req.Edges {
		g.AddEdge(e.U, e.V, e.W)
	}
	return g
}

// SolveMaxCut runs one Max-Cut solve through the solver pool. Concurrency
// is bounded by ServerConfig.MaxSolves (admission control for the
// CPU-heavy endpoint: beyond the bound the request is rejected with
// ErrOverloaded rather than queued without bound), and admission happens
// before the graph's O(n^2) adjacency is built, so even the largest
// admissible instance only allocates inside a pool slot. The result is
// bitwise identical to a direct
// maxcut.Random/GoemansWilliamson/BurerMonteiro call with the same
// configuration and rng.New(req.Seed).
func (s *Server) SolveMaxCut(ctx context.Context, req MaxCutRequest) (MaxCutResult, error) {
	algo, err := validateMaxCut(req, s.cfg.MaxCutNodes)
	if err != nil {
		return MaxCutResult{}, err
	}
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		return MaxCutResult{}, ErrDraining
	}
	select {
	case s.solves <- struct{}{}:
		s.solveWG.Add(1)
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		return MaxCutResult{}, fmt.Errorf("%w: maxcut solver pool full", ErrOverloaded)
	}
	defer func() {
		<-s.solves
		s.solveWG.Done()
	}()
	if err := ctx.Err(); err != nil {
		return MaxCutResult{}, err
	}
	g := buildGraph(req)
	r := rng.New(req.Seed)
	var res maxcut.Result
	switch algo {
	case "random":
		res = maxcut.Random(g, r)
	case "gw":
		res = maxcut.GoemansWilliamson(g, maxcut.GWConfig{
			Rank: req.Rank, Rounds: req.Rounds, MaxIter: req.MaxIter, LocalSwap: req.LocalSwap,
		}, r)
	case "bm":
		res = maxcut.BurerMonteiro(g, maxcut.BMConfig{
			Rank: req.Rank, Rounds: req.Rounds, MaxIter: req.MaxIter,
		}, r)
	}
	return MaxCutResult{Cut: res.Cut, Assignment: res.Assignment, SDPBound: res.SDPBound, Algorithm: algo}, nil
}
