package serve

// FuzzCoalescer drives a live coalescer with a byte-string-derived
// configuration and operation stream — concurrent submits, cancellations,
// and hot-swaps against fuzzer-chosen window/batch/admission tuning — and
// holds the lifecycle invariants: every operation terminates with either a
// bitwise-correct value or a declared error (ErrOverloaded / ErrDraining /
// context error), nothing hangs, and the admission reservation drains to
// zero. Runs in CI's fuzz smoke alongside FuzzChunkBounds.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func FuzzCoalescer(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x13, 0x37})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 || len(ops) > 64 {
			t.Skip()
		}
		const n, h = 7, 8
		at := func(i int) byte { return ops[i%len(ops)] }

		// Fuzzer-chosen tuning. Window spans the degenerate cases: never
		// wait, tiny, and "longer than the test" (forcing MaxBatch or
		// drain to close groups).
		maxBatch := 1 + int(at(0))%16
		maxPending := 1 + int(at(1))%12
		var window time.Duration
		switch at(2) % 3 {
		case 0:
			window = ExplicitZeroWindow
		case 1:
			window = time.Duration(1+at(2)%100) * time.Microsecond
		case 2:
			window = time.Hour
		}

		wfA := buildWF("made", n, h, 71)
		wfB := buildWF("made", n, h, 72)
		live := buildWF("made", n, h, 73)
		s := NewServer(ServerConfig{})
		err := s.Register("m", ModelSpec{WF: live, Config: Config{
			MaxBatch: maxBatch, Window: window, MaxPending: maxPending,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Swap(context.Background(), "m", wfA); err != nil {
			t.Fatal(err)
		}

		// Per-workload references under both parameter sets: any served
		// value must equal one of them, wholesale.
		const workloads = 4
		type ref struct {
			configs [][]int
			a, b    []float64
		}
		refs := make([]ref, workloads)
		for wl := range refs {
			cfgs := clientConfigs(100+wl, 1+wl%2, n)
			refs[wl] = ref{configs: cfgs, a: directLogPsi(wfA, cfgs), b: directLogPsi(wfB, cfgs)}
		}

		var wg sync.WaitGroup
		errCh := make(chan error, len(ops))
		for i := range ops {
			op := at(i)
			wg.Add(1)
			switch op % 8 {
			case 6: // hot-swap
				go func(i int) {
					defer wg.Done()
					src := wfA
					if at(i+1)%2 == 0 {
						src = wfB
					}
					if err := s.Swap(context.Background(), "m", src); err != nil && !errors.Is(err, ErrDraining) {
						errCh <- fmt.Errorf("op %d swap: %v", i, err)
					}
				}(i)
			case 7: // cancelled submit
				go func(i int) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(at(i+1)%50)*time.Microsecond)
					defer cancel()
					wl := refs[int(at(i+2))%workloads]
					got, err := s.LogPsi(ctx, "m", wl.configs)
					checkOutcome(errCh, i, got, err, wl.a, wl.b)
				}(i)
			default: // plain submit
				go func(i int) {
					defer wg.Done()
					wl := refs[int(at(i+3))%workloads]
					got, err := s.LogPsi(context.Background(), "m", wl.configs)
					checkOutcome(errCh, i, got, err, wl.a, wl.b)
				}(i)
			}
		}

		// With an hour-long window the only thing that closes a partial
		// group is MaxBatch or the drain — so the drain below is load-
		// bearing: if it hangs, requests hang, and the fuzz run times out
		// (a found bug, not flake).
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		if window == time.Hour {
			time.Sleep(time.Millisecond)
			s.Close()
		}
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("coalescer hung: operations did not terminate")
		}
		s.Close()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		m, _ := s.lookup("m")
		if p := m.pendingRows.Load(); p != 0 {
			t.Fatalf("pending rows did not drain: %d", p)
		}
	})
}

// checkOutcome classifies one fuzz submit's result: a success must match
// parameter set A or B bitwise and wholesale; failures must be declared
// errors. Anything else is reported.
func checkOutcome(errCh chan<- error, i int, got []float64, err error, a, b []float64) {
	switch {
	case err == nil:
		matchA, matchB := true, true
		for k := range got {
			if got[k] != a[k] {
				matchA = false
			}
			if got[k] != b[k] {
				matchB = false
			}
		}
		if !matchA && !matchB {
			errCh <- fmt.Errorf("op %d: value matches neither parameter set", i)
		}
	case errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrDraining),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
	default:
		errCh <- fmt.Errorf("op %d: undeclared error %v", i, err)
	}
}
