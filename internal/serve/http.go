package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The HTTP layer is a thin JSON veneer over the Server API. Values cross
// the wire as JSON numbers, which Go encodes in the shortest
// round-trippable form and decodes back to the identical float64 bits for
// every finite value — so the bitwise serving doctrine survives the wire
// format (pinned by the HTTP round-trip test).
//
//	GET  /v1/models                      -> []ModelInfo
//	GET  /v1/models/{name}/stats         -> Stats
//	POST /v1/models/{name}/logpsi        {"configs": [[0,1,...],...]}
//	POST /v1/models/{name}/energy        {"configs": [[0,1,...],...]}
//	POST /v1/models/{name}/sample        {"count": 8, "seed": 42}
//	POST /v1/models/{name}/swap          {"path": "model.ckpt"}
//	POST /v1/maxcut                      MaxCutRequest
//	GET  /healthz

// configsRequest is the JSON body of the logpsi/energy endpoints.
type configsRequest struct {
	Configs [][]int `json:"configs"`
}

// valuesResponse is the JSON body of the logpsi/energy responses.
type valuesResponse struct {
	Values []float64 `json:"values"`
}

// sampleRequest is the JSON body of the sample endpoint.
type sampleRequest struct {
	Count int    `json:"count"`
	Seed  uint64 `json:"seed"`
}

// sampleResponse is the JSON body of the sample response.
type sampleResponse struct {
	Configs [][]int `json:"configs"`
}

// swapRequest is the JSON body of the swap endpoint.
type swapRequest struct {
	Path string `json:"path"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// statusOf maps endpoint errors to HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrUnsupported):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// maxBodyBytes caps a request body before it is buffered. The largest
// legitimate payloads (hundreds of configuration rows, dense Max-Cut edge
// lists at the MaxCutNodes cap) fit comfortably; anything bigger is shed
// with 413 instead of being read to arbitrary length.
const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return false
	}
	return true
}

// NewHandler wraps a Server in the JSON HTTP API above. The handler does
// no locking of its own: all concurrency control lives in the Server.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Models())
	})
	mux.HandleFunc("GET /v1/models/{name}/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.ModelStats(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/models/{name}/logpsi", func(w http.ResponseWriter, r *http.Request) {
		var req configsRequest
		if !decodeBody(w, r, &req) {
			return
		}
		vals, err := s.LogPsi(r.Context(), r.PathValue("name"), req.Configs)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, valuesResponse{Values: vals})
	})
	mux.HandleFunc("POST /v1/models/{name}/energy", func(w http.ResponseWriter, r *http.Request) {
		var req configsRequest
		if !decodeBody(w, r, &req) {
			return
		}
		vals, err := s.LocalEnergy(r.Context(), r.PathValue("name"), req.Configs)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, valuesResponse{Values: vals})
	})
	mux.HandleFunc("POST /v1/models/{name}/sample", func(w http.ResponseWriter, r *http.Request) {
		var req sampleRequest
		if !decodeBody(w, r, &req) {
			return
		}
		rows, err := s.Sample(r.Context(), r.PathValue("name"), req.Count, req.Seed)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sampleResponse{Configs: rows})
	})
	mux.HandleFunc("POST /v1/models/{name}/swap", func(w http.ResponseWriter, r *http.Request) {
		var req swapRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := s.SwapFile(r.Context(), r.PathValue("name"), req.Path); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"swapped": true})
	})
	mux.HandleFunc("POST /v1/maxcut", func(w http.ResponseWriter, r *http.Request) {
		var req MaxCutRequest
		if !decodeBody(w, r, &req) {
			return
		}
		res, err := s.SolveMaxCut(r.Context(), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	return mux
}
