package serve

// HTTP round-trip regressions: the JSON wire format must preserve the
// bitwise doctrine (float64 values survive encode/decode exactly), the
// checkpoint-file swap endpoint must hot-swap a live model, error mapping
// must follow statusOf, and the served Max-Cut solve must equal the direct
// solver call.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/maxcut"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// postJSON issues one JSON POST and decodes the response body into out
// when the status matches.
func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any, wantStatus int) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d, want %d (%s)", path, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
}

func TestHTTPBitwiseRoundTrip(t *testing.T) {
	const n, h = 10, 12
	wf := buildWF("made", n, h, 81)
	ham := hamiltonian.RandomTIM(n, rng.New(82))
	s := NewServer(ServerConfig{})
	if err := s.Register("m", ModelSpec{WF: wf, Ham: ham}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	cfgs := clientConfigs(0, 3, n)
	wantLP := directLogPsi(wf, cfgs)
	b := sampler.NewBatch(len(cfgs), n)
	for k, row := range cfgs {
		copy(b.Row(k), row)
	}
	wantEN := make([]float64, b.N)
	core.NewBatchedEval(wf, core.EvalAuto, 1).LocalEnergies(ham, b, 1, wantEN)

	var lp valuesResponse
	postJSON(t, ts, "/v1/models/m/logpsi", configsRequest{Configs: cfgs}, &lp, http.StatusOK)
	for k := range lp.Values {
		if lp.Values[k] != wantLP[k] {
			t.Fatalf("logpsi row %d: wire %v != direct %v (float64 bits lost in JSON)", k, lp.Values[k], wantLP[k])
		}
	}
	var en valuesResponse
	postJSON(t, ts, "/v1/models/m/energy", configsRequest{Configs: cfgs}, &en, http.StatusOK)
	for k := range en.Values {
		if en.Values[k] != wantEN[k] {
			t.Fatalf("energy row %d: wire %v != direct %v", k, en.Values[k], wantEN[k])
		}
	}

	// Sampling over the wire == direct in-process serve call.
	wantSM, err := s.Sample(t.Context(), "m", 4, 999)
	if err != nil {
		t.Fatal(err)
	}
	var sm sampleResponse
	postJSON(t, ts, "/v1/models/m/sample", sampleRequest{Count: 4, Seed: 999}, &sm, http.StatusOK)
	if len(sm.Configs) != len(wantSM) {
		t.Fatalf("sample rows %d, want %d", len(sm.Configs), len(wantSM))
	}
	for k := range sm.Configs {
		for i := range sm.Configs[k] {
			if sm.Configs[k][i] != wantSM[k][i] {
				t.Fatalf("sample row %d bit %d differs over the wire", k, i)
			}
		}
	}

	// Health, model list and stats endpoints respond.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	var models []ModelInfo
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models) != 1 || models[0].Name != "m" || models[0].Sites != n {
		t.Fatalf("model list %+v", models)
	}
	var st Stats
	resp, err = http.Get(ts.URL + "/v1/models/m/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests == 0 {
		t.Fatal("stats show no requests after traffic")
	}
}

func TestHTTPSwapFromCheckpoint(t *testing.T) {
	const n, h = 8, 10
	live := buildWF("made", n, h, 91)
	next := buildWF("made", n, h, 92)
	cfgs := clientConfigs(1, 2, n)
	wantNew := directLogPsi(next, cfgs)

	dir := t.TempDir()
	path := filepath.Join(dir, "next.ckpt")
	if err := nn.SaveFile(path, next); err != nil {
		t.Fatal(err)
	}

	s := NewServer(ServerConfig{CheckpointDir: dir})
	if err := s.Register("m", ModelSpec{WF: live}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// Swap paths are relative to the configured checkpoint directory.
	postJSON(t, ts, "/v1/models/m/swap", swapRequest{Path: "next.ckpt"}, nil, http.StatusOK)
	var lp valuesResponse
	postJSON(t, ts, "/v1/models/m/logpsi", configsRequest{Configs: cfgs}, &lp, http.StatusOK)
	for k := range lp.Values {
		if lp.Values[k] != wantNew[k] {
			t.Fatalf("post-swap row %d: %v != checkpoint params %v", k, lp.Values[k], wantNew[k])
		}
	}
	// Swapping a missing file is a client error, and the live model keeps
	// serving afterwards.
	postJSON(t, ts, "/v1/models/m/swap", swapRequest{Path: "missing.ckpt"}, nil, http.StatusBadRequest)
	postJSON(t, ts, "/v1/models/m/logpsi", configsRequest{Configs: cfgs}, &lp, http.StatusOK)
	// Paths that escape the checkpoint directory are rejected without
	// touching the filesystem: absolute and ".."-relative alike.
	postJSON(t, ts, "/v1/models/m/swap", swapRequest{Path: path}, nil, http.StatusBadRequest)
	postJSON(t, ts, "/v1/models/m/swap", swapRequest{Path: "../next.ckpt"}, nil, http.StatusBadRequest)
	postJSON(t, ts, "/v1/models/m/swap", swapRequest{Path: "/etc/passwd"}, nil, http.StatusBadRequest)
}

func TestHTTPSwapDisabledByDefault(t *testing.T) {
	const n, h = 8, 10
	path := filepath.Join(t.TempDir(), "next.ckpt")
	if err := nn.SaveFile(path, buildWF("made", n, h, 92)); err != nil {
		t.Fatal(err)
	}
	// No CheckpointDir: the swap endpoint must not reach the filesystem at
	// all, even for a path that exists and parses.
	s := NewServer(ServerConfig{})
	if err := s.Register("m", ModelSpec{WF: buildWF("made", n, h, 91)}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	postJSON(t, ts, "/v1/models/m/swap", swapRequest{Path: path}, nil, http.StatusBadRequest)
}

func TestHTTPErrorMapping(t *testing.T) {
	const n, h = 8, 10
	s := NewServer(ServerConfig{})
	if err := s.Register("m", ModelSpec{WF: buildWF("made", n, h, 95)}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	cfgs := clientConfigs(0, 1, n)
	// Unknown model -> 404.
	postJSON(t, ts, "/v1/models/nope/logpsi", configsRequest{Configs: cfgs}, nil, http.StatusNotFound)
	// Bad configs -> 400.
	postJSON(t, ts, "/v1/models/m/logpsi", configsRequest{Configs: [][]int{{0, 2}}}, nil, http.StatusBadRequest)
	// Unknown JSON field -> 400.
	resp, err := http.Post(ts.URL+"/v1/models/m/logpsi", "application/json",
		bytes.NewReader([]byte(`{"configs": [[0,1,0,1,0,1,0,1]], "bogus": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	// Energy without a Hamiltonian -> 400 (unsupported).
	postJSON(t, ts, "/v1/models/m/energy", configsRequest{Configs: cfgs}, nil, http.StatusBadRequest)
	// Drained server -> 503.
	s.Close()
	postJSON(t, ts, "/v1/models/m/logpsi", configsRequest{Configs: cfgs}, nil, http.StatusServiceUnavailable)
}

func TestHTTPMaxCutMatchesDirect(t *testing.T) {
	const nVerts, seed = 24, 4242
	s := NewServer(ServerConfig{})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// A deterministic instance, built identically for serve and direct.
	g := graph.New(nVerts)
	r := rng.New(7)
	var edges []MaxCutEdge
	for u := 0; u < nVerts; u++ {
		for v := u + 1; v < nVerts; v++ {
			if r.Float64() < 0.3 {
				w := r.Float64()
				g.AddEdge(u, v, w)
				edges = append(edges, MaxCutEdge{U: u, V: v, W: w})
			}
		}
	}
	for _, algo := range []string{"random", "gw", "bm"} {
		var got MaxCutResult
		postJSON(t, ts, "/v1/maxcut", MaxCutRequest{N: nVerts, Edges: edges, Algorithm: algo, Seed: seed}, &got, http.StatusOK)
		var want maxcut.Result
		switch algo {
		case "random":
			want = maxcut.Random(g, rng.New(seed))
		case "gw":
			want = maxcut.GoemansWilliamson(g, maxcut.GWConfig{}, rng.New(seed))
		case "bm":
			want = maxcut.BurerMonteiro(g, maxcut.BMConfig{}, rng.New(seed))
		}
		if got.Cut != want.Cut {
			t.Fatalf("%s: served cut %v != direct %v", algo, got.Cut, want.Cut)
		}
		if len(got.Assignment) != len(want.Assignment) {
			t.Fatalf("%s: assignment length %d != %d", algo, len(got.Assignment), len(want.Assignment))
		}
		for i := range got.Assignment {
			if got.Assignment[i] != want.Assignment[i] {
				t.Fatalf("%s: assignment[%d] %d != %d", algo, i, got.Assignment[i], want.Assignment[i])
			}
		}
		if got.SDPBound != want.SDPBound {
			t.Fatalf("%s: SDP bound %v != %v", algo, got.SDPBound, want.SDPBound)
		}
	}
	// Validation teeth on the endpoint.
	postJSON(t, ts, "/v1/maxcut", MaxCutRequest{N: 1, Edges: edges, Seed: 1}, nil, http.StatusBadRequest)
	postJSON(t, ts, "/v1/maxcut", MaxCutRequest{N: 4, Edges: []MaxCutEdge{{U: 0, V: 9, W: 1}}, Seed: 1}, nil, http.StatusBadRequest)
	postJSON(t, ts, "/v1/maxcut", MaxCutRequest{N: nVerts, Edges: edges, Algorithm: "nope", Seed: 1}, nil, http.StatusBadRequest)
}

// TestHTTPResourceBounds pins the admission-before-allocation hardening:
// a single small request must never cost a request-proportional
// allocation the server would reject anyway. Each case here would
// allocate gigabytes (or read an unbounded body) if validation ran after
// the allocation instead of before.
func TestHTTPResourceBounds(t *testing.T) {
	const n, h = 8, 10
	ham := hamiltonian.RandomTIM(n, rng.New(11))
	s := NewServer(ServerConfig{MaxCutNodes: 64})
	if err := s.Register("m", ModelSpec{WF: buildWF("made", n, h, 13), Ham: ham}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// A huge vertex count is rejected before graph.New can be asked for
	// its n^2 adjacency (n=1e6 alone would be an ~8TB allocation).
	postJSON(t, ts, "/v1/maxcut",
		MaxCutRequest{N: 1_000_000, Edges: []MaxCutEdge{{U: 0, V: 1, W: 1}}, Seed: 1},
		nil, http.StatusBadRequest)
	// A vertex count just over the configured cap is rejected; at the cap
	// it solves.
	postJSON(t, ts, "/v1/maxcut",
		MaxCutRequest{N: 65, Edges: []MaxCutEdge{{U: 0, V: 1, W: 1}}, Seed: 1},
		nil, http.StatusBadRequest)
	postJSON(t, ts, "/v1/maxcut",
		MaxCutRequest{N: 64, Edges: []MaxCutEdge{{U: 0, V: 1, W: 1}}, Algorithm: "random", Seed: 1},
		nil, http.StatusOK)

	// A huge sample count is shed with 429 before the count*sites buffers
	// and uniform draws (1e9 rows would be tens of GB).
	postJSON(t, ts, "/v1/models/m/sample", sampleRequest{Count: 1_000_000_000, Seed: 1}, nil, http.StatusTooManyRequests)
	var st Stats
	var err error
	if st, err = s.ModelStats("m"); err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("oversize sample count not counted as an admission rejection")
	}

	// A body over the size cap is refused with 413 instead of buffered.
	huge := append([]byte(`{"configs": [[`), bytes.Repeat([]byte("0,"), maxBodyBytes/2)...)
	resp, err := http.Post(ts.URL+"/v1/models/m/logpsi", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
}
