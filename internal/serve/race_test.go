package serve

// Race and goroutine-leak regressions, run under -race in CI: hot-swap
// under live traffic, server drain during in-flight batches, and admission
// rejection under pressure — each ending with the elastic-package leak
// check (goroutine count returns to baseline).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// leakCheck asserts the goroutine count returns to (near) baseline, with
// the retry loop from internal/elastic: scheduler stragglers get a grace
// window, real leaks fail.
func leakCheck(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHotSwapUnderLiveTraffic hammers one model with concurrent LogPsi
// traffic while another goroutine repeatedly hot-swaps between two
// parameter checkpoints. Every response must be bitwise == to the direct
// evaluation under ONE of the two parameter sets — never a blend, never a
// torn read — and nothing may leak.
func TestHotSwapUnderLiveTraffic(t *testing.T) {
	const n, h = 9, 10
	before := runtime.NumGoroutine()
	wfA := buildWF("made", n, h, 31)
	wfB := buildWF("made", n, h, 32)
	cfgs := clientConfigs(5, 2, n)
	wantA := directLogPsi(wfA, cfgs)
	wantB := directLogPsi(wfB, cfgs)
	for k := range wantA {
		if wantA[k] == wantB[k] {
			t.Fatalf("degenerate fixture: params agree on row %d", k)
		}
	}

	// Serve a third copy that starts on A's parameters, so the originals
	// stay pristine references.
	live := buildWF("made", n, h, 33)
	s := NewServer(ServerConfig{})
	err := s.Register("m", ModelSpec{WF: live, Config: Config{
		MaxBatch: 32, Window: 50 * time.Microsecond, MaxPending: 1 << 14,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(context.Background(), "m", wfA); err != nil {
		t.Fatal(err)
	}

	// Clients do a fixed amount of traffic; the swapper flips parameters
	// as fast as the dispatcher lets it until all clients finish, so the
	// interleaving is guaranteed regardless of scheduling order.
	const clients, itersPerClient = 16, 30
	var clientWG sync.WaitGroup
	errCh := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			for it := 0; it < itersPerClient; it++ {
				got, err := s.LogPsi(context.Background(), "m", cfgs)
				if err != nil {
					errCh <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				// A response must match A or B wholesale: the swap is a
				// batch barrier, so a mixed row pair means torn params.
				matchA := true
				matchB := true
				for k := range got {
					if got[k] != wantA[k] {
						matchA = false
					}
					if got[k] != wantB[k] {
						matchB = false
					}
				}
				if !matchA && !matchB {
					errCh <- fmt.Errorf("client %d: response matches neither parameter set (%v)", c, got)
					return
				}
			}
		}(c)
	}
	clientsDone := make(chan struct{})
	go func() { clientWG.Wait(); close(clientsDone) }()
	swaps := uint64(0)
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-clientsDone:
				return
			default:
			}
			src := wfA
			if i%2 == 0 {
				src = wfB
			}
			if err := s.Swap(context.Background(), "m", src); err != nil {
				errCh <- fmt.Errorf("swap %d: %v", i, err)
				return
			}
			swaps++
		}
	}()
	<-clientsDone
	swapWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st, _ := s.ModelStats("m")
	if st.Swaps != swaps+1 {
		t.Fatalf("swap counter %d, want %d", st.Swaps, swaps+1)
	}
	if want := uint64(clients * itersPerClient); st.Requests != want {
		t.Fatalf("served %d requests, want %d", st.Requests, want)
	}
	if swaps == 0 {
		t.Fatal("no swaps interleaved with traffic")
	}
	s.Close()
	leakCheck(t, before)
}

// TestDrainDuringInFlight closes the server while batches are in flight:
// every outstanding request must resolve — with its correct value (bitwise)
// if it was admitted, or ErrDraining if it arrived after the drain began —
// and no submit may hang or leak.
func TestDrainDuringInFlight(t *testing.T) {
	const n, h = 9, 10
	before := runtime.NumGoroutine()
	wf := buildWF("made", n, h, 51)
	cfgs := clientConfigs(7, 2, n)
	want := directLogPsi(wf, cfgs)

	s := NewServer(ServerConfig{})
	err := s.Register("m", ModelSpec{WF: wf, Config: Config{
		MaxBatch: 64, Window: 500 * time.Microsecond, MaxPending: 1 << 14,
	}})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 32
	var served, drained atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				got, err := s.LogPsi(context.Background(), "m", cfgs)
				switch {
				case err == nil:
					for k := range got {
						if got[k] != want[k] {
							errCh <- fmt.Errorf("client %d: %v != %v", c, got[k], want[k])
							return
						}
					}
					served.Add(1)
				case errors.Is(err, ErrDraining):
					drained.Add(1)
					return
				default:
					errCh <- fmt.Errorf("client %d: unexpected %v", c, err)
					return
				}
			}
		}(c)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let batches get in flight
	s.Close()                        // must not hang; drains queued work
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served before drain")
	}
	if drained.Load() != clients {
		t.Fatalf("%d clients saw ErrDraining, want %d", drained.Load(), clients)
	}
	// Idempotent close.
	s.Close()
	leakCheck(t, before)
}

// TestAdmissionRejectionUnderRace floods a tiny-MaxPending model from many
// goroutines at once (no pacing): the split between served and rejected is
// nondeterministic, but every accepted answer must be bitwise correct,
// rejections must be ErrOverloaded, the reservation must drain to zero, and
// nothing may leak.
func TestAdmissionRejectionUnderRace(t *testing.T) {
	const n, h = 8, 10
	before := runtime.NumGoroutine()
	wf := buildWF("made", n, h, 61)
	cfgs := clientConfigs(2, 1, n)
	want := directLogPsi(wf, cfgs)

	s := NewServer(ServerConfig{})
	err := s.Register("m", ModelSpec{WF: wf, Config: Config{
		MaxBatch: 4, Window: time.Millisecond, MaxPending: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}

	const attempts = 256
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, attempts)
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.LogPsi(context.Background(), "m", cfgs)
			switch {
			case err == nil:
				if got[0] != want[0] {
					errCh <- fmt.Errorf("served %v != %v", got[0], want[0])
					return
				}
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			default:
				errCh <- fmt.Errorf("unexpected %v", err)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if ok.Load()+rejected.Load() != attempts {
		t.Fatalf("accounting: ok=%d rejected=%d, want sum %d", ok.Load(), rejected.Load(), attempts)
	}
	if ok.Load() == 0 {
		t.Fatal("everything rejected; admission too tight to exercise serving")
	}
	m, _ := s.lookup("m")
	deadline := time.Now().Add(2 * time.Second)
	for m.pendingRows.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending rows stuck at %d", m.pendingRows.Load())
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := s.ModelStats("m")
	if st.Rejected != uint64(rejected.Load()) {
		t.Fatalf("rejected counter %d, want %d", st.Rejected, rejected.Load())
	}
	s.Close()
	leakCheck(t, before)
}
