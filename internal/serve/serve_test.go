package serve

// Coalescing-invariance conformance suite: the serve-path extension of the
// dist package's TestEvalConformanceMatrix table doctrine. For every model
// family x batch-window shape x client count, every served LogPsi /
// local-energy / sample answer must be bitwise == (exact, no tolerance) to
// the direct single-caller evaluation of that request's configurations
// alone — no matter how the coalescer folded concurrent strangers into
// shared GEMM dispatches.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// buildWF constructs one model family instance for the serve suites.
func buildWF(kind string, n, h int, seed uint64) nn.Wavefunction {
	switch kind {
	case "made":
		return nn.NewMADE(n, h, rng.New(seed))
	case "rbm":
		return nn.NewRBM(n, h, rng.New(seed))
	case "nade":
		return nn.NewNADE(n, h, rng.New(seed))
	case "rnn":
		return nn.NewRNN(n, h, rng.New(seed))
	}
	panic("unknown kind " + kind)
}

// clientConfigs derives client c's deterministic workload.
func clientConfigs(c, rows, sites int) [][]int {
	b := sampler.NewBatch(rows, sites)
	rng.New(uint64(9000 + c)).FillBits(b.Bits)
	out := make([][]int, rows)
	for k := range out {
		out[k] = b.Row(k)
	}
	return out
}

func TestServeConformanceMatrix(t *testing.T) {
	const n, h, rowsPerReq = 10, 12, 2
	windows := []struct {
		name string
		cfg  Config
	}{
		{"perRequest", Config{MaxBatch: 1, Window: ExplicitZeroWindow}},
		{"smallWindow", Config{MaxBatch: 8, Window: 200 * time.Microsecond}},
		{"wideWindow", Config{MaxBatch: 1024, Window: time.Millisecond}},
	}
	clientCounts := []int{1, 3, 64, 512}

	for _, kind := range []string{"made", "rbm", "nade", "rnn"} {
		for _, win := range windows {
			t.Run(kind+"/"+win.name, func(t *testing.T) {
				wf := buildWF(kind, n, h, 41)
				ham := hamiltonian.RandomTIM(n, rng.New(43))
				_, sampleable := wf.(nn.BatchAncestralBuilder)

				// Direct single-caller references, computed before any
				// traffic: one batch per client holding only that client's
				// rows, through the same shared core dispatch a lone
				// caller would use.
				maxClients := clientCounts[len(clientCounts)-1]
				ref := core.NewBatchedEval(wf, core.EvalAuto, 1)
				wantLP := make([][]float64, maxClients)
				wantEN := make([][]float64, maxClients)
				wantSM := make([][][]int, maxClients)
				for c := 0; c < maxClients; c++ {
					cfgs := clientConfigs(c, rowsPerReq, n)
					b := sampler.NewBatch(rowsPerReq, n)
					for k, row := range cfgs {
						copy(b.Row(k), row)
					}
					wantLP[c] = make([]float64, rowsPerReq)
					ref.LogPsi(b, wantLP[c])
					wantEN[c] = make([]float64, rowsPerReq)
					ref.LocalEnergies(ham, b, 1, wantEN[c])
					if sampleable {
						sb := sampler.NewBatch(rowsPerReq, n)
						smp := sampler.NewAutoBatched(n, wf.(nn.BatchAncestralBuilder), 1, rng.New(uint64(777+c)))
						smp.Sample(sb)
						want := make([][]int, rowsPerReq)
						for k := range want {
							want[k] = append([]int(nil), sb.Row(k)...)
						}
						wantSM[c] = want
					}
				}

				cfg := win.cfg
				cfg.MaxPending = 4 * maxClients * rowsPerReq
				s := NewServer(ServerConfig{})
				if err := s.Register("m", ModelSpec{WF: wf, Ham: ham, Config: cfg}); err != nil {
					t.Fatalf("register: %v", err)
				}
				defer s.Close()

				for _, clients := range clientCounts {
					iters := 2
					if clients >= 512 {
						iters = 1
					}
					errCh := make(chan error, clients)
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						wg.Add(1)
						go func(c int) {
							defer wg.Done()
							ctx := context.Background()
							cfgs := clientConfigs(c, rowsPerReq, n)
							for it := 0; it < iters; it++ {
								lp, err := s.LogPsi(ctx, "m", cfgs)
								if err != nil {
									errCh <- fmt.Errorf("client %d logpsi: %w", c, err)
									return
								}
								for k := range lp {
									if lp[k] != wantLP[c][k] {
										errCh <- fmt.Errorf("client %d logpsi row %d: served %v != direct %v", c, k, lp[k], wantLP[c][k])
										return
									}
								}
								en, err := s.LocalEnergy(ctx, "m", cfgs)
								if err != nil {
									errCh <- fmt.Errorf("client %d energy: %w", c, err)
									return
								}
								for k := range en {
									if en[k] != wantEN[c][k] {
										errCh <- fmt.Errorf("client %d energy row %d: served %v != direct %v", c, k, en[k], wantEN[c][k])
										return
									}
								}
								if sampleable {
									sm, err := s.Sample(ctx, "m", rowsPerReq, uint64(777+c))
									if err != nil {
										errCh <- fmt.Errorf("client %d sample: %w", c, err)
										return
									}
									for k := range sm {
										for i := range sm[k] {
											if sm[k][i] != wantSM[c][k][i] {
												errCh <- fmt.Errorf("client %d sample row %d bit %d: served %d != direct %d",
													c, k, i, sm[k][i], wantSM[c][k][i])
												return
											}
										}
									}
								}
							}
						}(c)
					}
					wg.Wait()
					close(errCh)
					for err := range errCh {
						t.Fatal(err)
					}
				}
				// The coalescer actually coalesced in windowed shapes with
				// many clients (sanity that the suite exercised the fold,
				// not a degenerate one-request-per-batch path).
				st, err := s.ModelStats("m")
				if err != nil {
					t.Fatal(err)
				}
				if win.cfg.MaxBatch > 1 && st.Batches > 0 && st.Rows <= st.Batches {
					t.Logf("note: %s/%s saw no multi-row batches (rows=%d batches=%d)", kind, win.name, st.Rows, st.Batches)
				}
				if st.Rows == 0 {
					t.Fatalf("no rows served")
				}
			})
		}
	}
}

// TestServeSampleUnsupported pins the RBM sampling rejection: the only
// non-autoregressive family cannot be exactly sampled, and the server must
// say so rather than serve garbage.
func TestServeSampleUnsupported(t *testing.T) {
	s := NewServer(ServerConfig{})
	wf := buildWF("rbm", 6, 8, 1)
	if err := s.Register("r", ModelSpec{WF: wf}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Sample(context.Background(), "r", 2, 1); err == nil {
		t.Fatal("RBM sample did not error")
	}
	// Energy without a registered Hamiltonian is likewise unsupported.
	if _, err := s.LocalEnergy(context.Background(), "r", clientConfigs(0, 1, 6)); err == nil {
		t.Fatal("energy without Hamiltonian did not error")
	}
}

// TestServeValidation pins the request-validation and registry teeth.
func TestServeValidation(t *testing.T) {
	s := NewServer(ServerConfig{})
	wf := buildWF("made", 6, 8, 1)
	if err := s.Register("m", ModelSpec{WF: wf, Ham: hamiltonian.RandomTIM(6, rng.New(2))}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.LogPsi(ctx, "nope", clientConfigs(0, 1, 6)); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := s.LogPsi(ctx, "m", nil); err == nil {
		t.Fatal("empty configs accepted")
	}
	if _, err := s.LogPsi(ctx, "m", [][]int{{0, 1}}); err == nil {
		t.Fatal("wrong site count accepted")
	}
	if _, err := s.LogPsi(ctx, "m", [][]int{{0, 1, 2, 0, 1, 0}}); err == nil {
		t.Fatal("non-bit value accepted")
	}
	if _, err := s.Sample(ctx, "m", 0, 1); err == nil {
		t.Fatal("zero sample count accepted")
	}
	if err := s.Register("m", ModelSpec{WF: wf}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := s.Register("", ModelSpec{WF: wf}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Register("x", ModelSpec{}); err == nil {
		t.Fatal("nil wavefunction accepted")
	}
}
