package serve

// Property tests for the coalescer's lifecycle invariants: no request is
// dropped, duplicated, or cross-wired under concurrent submit / cancel /
// timeout, admission control rejects deterministically, and the pending
// reservation always drains back to zero.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// directLogPsi computes the single-caller reference for configs.
func directLogPsi(wf nn.Wavefunction, configs [][]int) []float64 {
	b := sampler.NewBatch(len(configs), len(configs[0]))
	for k, row := range configs {
		copy(b.Row(k), row)
	}
	out := make([]float64, b.N)
	core.NewBatchedEval(wf, core.EvalAuto, 1).LogPsi(b, out)
	return out
}

// TestCoalescerNoDropDupCrosswire floods one model from many clients whose
// workloads all differ, with a mix of request sizes and kinds, and asserts
// every single response carries exactly its own client's values — the
// cross-wiring detector — and that every submit completes exactly once
// (the test would hang on a drop; a duplicate would double-close ready and
// panic).
func TestCoalescerNoDropDupCrosswire(t *testing.T) {
	const n, h = 9, 10
	const clients, iters = 48, 20
	wf := buildWF("made", n, h, 7)
	ham := hamiltonian.RandomTIM(n, rng.New(8))
	s := NewServer(ServerConfig{})
	err := s.Register("m", ModelSpec{WF: wf, Ham: ham, Config: Config{
		MaxBatch: 16, Window: 100 * time.Microsecond, MaxPending: 1 << 14,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref := core.NewBatchedEval(wf, core.EvalAuto, 1)
	refHam := func(configs [][]int) []float64 {
		b := sampler.NewBatch(len(configs), n)
		for k, row := range configs {
			copy(b.Row(k), row)
		}
		out := make([]float64, b.N)
		ref.LocalEnergies(ham, b, 1, out)
		return out
	}
	type workload struct {
		configs [][]int
		lp, en  []float64
	}
	works := make([]workload, clients)
	for c := range works {
		rows := 1 + c%5
		cfgs := clientConfigs(c, rows, n)
		works[c] = workload{configs: cfgs, lp: directLogPsi(wf, cfgs), en: refHam(cfgs)}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := works[c]
			for it := 0; it < iters; it++ {
				var got, want []float64
				var err error
				if (c+it)%2 == 0 {
					got, err = s.LogPsi(context.Background(), "m", w.configs)
					want = w.lp
				} else {
					got, err = s.LocalEnergy(context.Background(), "m", w.configs)
					want = w.en
				}
				if err != nil {
					errCh <- fmt.Errorf("client %d it %d: %w", c, it, err)
					return
				}
				if len(got) != len(want) {
					errCh <- fmt.Errorf("client %d it %d: %d values, want %d", c, it, len(got), len(want))
					return
				}
				for k := range got {
					if got[k] != want[k] {
						errCh <- fmt.Errorf("client %d it %d row %d: cross-wired? served %v != own %v", c, it, k, got[k], want[k])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st, _ := s.ModelStats("m")
	if want := uint64(clients * iters); st.Requests != want {
		t.Fatalf("served %d requests, want %d", st.Requests, want)
	}
	m, _ := s.lookup("m")
	if p := m.pendingRows.Load(); p != 0 {
		t.Fatalf("pending rows did not drain: %d", p)
	}
}

// TestCoalescerCancelAndTimeout races cancellations against a slow window:
// every submit must terminate with either its correct value or a context
// error, never hang, and the admission reservation must drain to zero —
// including for requests cancelled while waiting in the queue.
func TestCoalescerCancelAndTimeout(t *testing.T) {
	const n, h = 8, 10
	wf := buildWF("made", n, h, 11)
	s := NewServer(ServerConfig{})
	// Wide window so a cancel deadline (shorter) reliably fires while
	// requests sit in the open batch.
	err := s.Register("m", ModelSpec{WF: wf, Config: Config{
		MaxBatch: 1 << 12, Window: 20 * time.Millisecond, MaxPending: 1 << 14,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients, iters = 32, 10
	works := make([][][]int, clients)
	wants := make([][]float64, clients)
	for c := range works {
		works[c] = clientConfigs(c, 1+c%3, n)
		wants[c] = directLogPsi(wf, works[c])
	}
	var wg sync.WaitGroup
	var okCount, cancelCount int64
	var mu sync.Mutex
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				switch it % 3 {
				case 1: // deadline inside the window: times out in queue
					ctx, cancel = context.WithTimeout(ctx, time.Duration(c%5)*time.Millisecond)
				case 2: // pre-cancelled
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				}
				got, err := s.LogPsi(ctx, "m", works[c])
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					for k := range got {
						if got[k] != wants[c][k] {
							errCh <- fmt.Errorf("client %d it %d row %d: %v != %v", c, it, k, got[k], wants[c][k])
							return
						}
					}
					mu.Lock()
					okCount++
					mu.Unlock()
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					mu.Lock()
					cancelCount++
					mu.Unlock()
				default:
					errCh <- fmt.Errorf("client %d it %d: unexpected error %v", c, it, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if okCount == 0 || cancelCount == 0 {
		t.Fatalf("degenerate mix: ok=%d cancelled=%d", okCount, cancelCount)
	}
	// The dispatcher owns every admitted request to completion, so the
	// reservation must drain even for abandoned waits.
	m, _ := s.lookup("m")
	deadline := time.Now().Add(2 * time.Second)
	for m.pendingRows.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending rows stuck at %d", m.pendingRows.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionControl pins the rejection path: with a tiny MaxPending and
// a dispatcher parked in a long window, exactly MaxPending rows are
// admitted and the rest bounce with ErrOverloaded — and every admitted
// request still completes correctly once the window fires.
func TestAdmissionControl(t *testing.T) {
	const n, h = 8, 10
	const maxPending = 8
	const attempts = 24
	wf := buildWF("made", n, h, 13)
	s := NewServer(ServerConfig{})
	err := s.Register("m", ModelSpec{WF: wf, Config: Config{
		MaxBatch: 1 << 12, Window: 150 * time.Millisecond, MaxPending: maxPending,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfgs := clientConfigs(0, 1, n)
	want := directLogPsi(wf, cfgs)

	// Park the dispatcher: the first request opens the 150ms window, and
	// nothing completes (releasing reservations) until it fires.
	results := make(chan error, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.LogPsi(context.Background(), "m", cfgs)
			if err == nil && got[0] != want[0] {
				err = fmt.Errorf("wrong value %v != %v", got[0], want[0])
			}
			results <- err
		}()
		// Serialize admission decisions so exactly the first maxPending
		// attempts win the reservation race.
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(results)
	var ok, rejected int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok != maxPending || rejected != attempts-maxPending {
		t.Fatalf("admission split ok=%d rejected=%d, want %d/%d", ok, rejected, maxPending, attempts-maxPending)
	}
	st, _ := s.ModelStats("m")
	if st.Rejected != uint64(rejected) {
		t.Fatalf("rejected counter %d, want %d", st.Rejected, rejected)
	}
}

// TestSwapIsQueueBarrier pins the hot-swap ordering semantics directly on
// the queue: requests enqueued before a swap see the old parameters,
// requests enqueued after it see the new — even when they all sit in the
// same window.
func TestSwapIsQueueBarrier(t *testing.T) {
	const n, h = 8, 10
	live := buildWF("made", n, h, 21)
	next := buildWF("made", n, h, 22)
	cfgs := clientConfigs(3, 2, n)
	wantOld := directLogPsi(live, cfgs)
	wantNew := directLogPsi(next, cfgs)
	for k := range wantOld {
		if wantOld[k] == wantNew[k] {
			t.Fatalf("degenerate fixture: old and new params agree on row %d", k)
		}
	}

	s := NewServer(ServerConfig{})
	// Long window: everything below lands in one collect cycle, forcing
	// the barrier logic (not timing luck) to split the batch.
	err := s.Register("m", ModelSpec{WF: live, Config: Config{
		MaxBatch: 1 << 12, Window: 100 * time.Millisecond, MaxPending: 1 << 12,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type outcome struct {
		got []float64
		err error
	}
	submit := func() chan outcome {
		ch := make(chan outcome, 1)
		go func() {
			got, err := s.LogPsi(context.Background(), "m", cfgs)
			ch <- outcome{got, err}
		}()
		return ch
	}
	// Enqueue strictly: request A, then the swap, then request B. The
	// admission reservation becomes visible just before A's channel send,
	// and the send itself is a handful of non-blocking instructions, so a
	// generous settle after the reservation orders the swap behind A.
	m, _ := s.lookup("m")
	chA := submit()
	deadline := time.Now().Add(2 * time.Second)
	for m.pendingRows.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("request A never admitted")
		}
		time.Sleep(50 * time.Microsecond)
	}
	time.Sleep(20 * time.Millisecond)
	// Swap blocks until applied, which (queue barrier) happens only after
	// A's group — still inside its 100ms window — is dispatched on the old
	// parameters. B then trivially lands after the swap.
	if err := s.Swap(context.Background(), "m", next); err != nil {
		t.Fatalf("swap: %v", err)
	}
	a := <-chA
	if a.err != nil {
		t.Fatalf("A: %v", a.err)
	}
	b := <-submit()
	if b.err != nil {
		t.Fatalf("B: %v", b.err)
	}
	for k := range a.got {
		if a.got[k] != wantOld[k] {
			t.Fatalf("pre-swap request row %d: %v != old %v", k, a.got[k], wantOld[k])
		}
	}
	for k := range b.got {
		if b.got[k] != wantNew[k] {
			t.Fatalf("post-swap request row %d: %v != new %v", k, b.got[k], wantNew[k])
		}
	}
	st, _ := s.ModelStats("m")
	if st.Swaps != 1 {
		t.Fatalf("swap counter %d, want 1", st.Swaps)
	}
}
