package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// reqKind discriminates the operations a model's queue carries.
type reqKind uint8

const (
	kindLogPsi reqKind = iota
	kindEnergy
	kindSample
	kindSwap
)

// request is one client operation in flight. The request owns every buffer
// it references: inputs are copied out of caller storage at submit time and
// results land in request-owned slices, so a caller that abandons the wait
// (context cancellation) never races the dispatcher. ready is closed
// exactly once, after err/out/outBits are final — the happens-before edge
// the caller reads results through.
type request struct {
	kind reqKind
	rows int // admission-control weight (configuration rows)

	bits   []int     // kindLogPsi/kindEnergy: rows x sites input
	u      []float64 // kindSample: rows x sites pre-drawn uniforms
	swapTo nn.Wavefunction

	ctx     context.Context // set by submit; checked before evaluation
	out     []float64       // kindLogPsi/kindEnergy results
	outBits []int           // kindSample results
	err     error
	ready   chan struct{}
}

// modelService owns one registered model. Its run goroutine is the only
// code that touches the wavefunction parameters, the BatchedEval scratch
// and the ancestral sampler after start; every mutation (including
// checkpoint hot-swaps) serializes through reqCh.
type modelService struct {
	name  string
	sites int
	wf    nn.Wavefunction
	ham   hamiltonian.Hamiltonian
	be    *core.BatchedEval
	smp   nn.BatchAncestralSampler
	cfg   Config

	mu       sync.RWMutex // guards draining + the send side of reqCh
	draining bool
	reqCh    chan *request
	done     chan struct{}
	timer    *time.Timer

	pendingRows atomic.Int64

	requests atomic.Uint64
	rowsDone atomic.Uint64
	batches  atomic.Uint64
	rejected atomic.Uint64
	canceled atomic.Uint64
	swaps    atomic.Uint64

	// Dispatcher-owned scratch, grown on demand and reused across batches.
	groupBuf []*request
	lpReqs   []*request
	enReqs   []*request
	smReqs   []*request
	bitsBuf  []int
	outBuf   []float64
	uBuf     []float64
}

func newModelService(name string, wf nn.Wavefunction, ham hamiltonian.Hamiltonian, be *core.BatchedEval, cfg Config) *modelService {
	var smp nn.BatchAncestralSampler
	if b, ok := wf.(nn.BatchAncestralBuilder); ok {
		smp = b.NewBatchAncestralSampler()
	}
	m := &modelService{
		name:  name,
		sites: wf.NumSites(),
		wf:    wf,
		ham:   ham,
		be:    be,
		smp:   smp,
		cfg:   cfg,
		// Capacity above MaxPending so admission (rows) is the binding
		// bound for evaluation requests; the slack absorbs row-less swaps.
		reqCh: make(chan *request, cfg.MaxPending+16),
		done:  make(chan struct{}),
	}
	m.timer = time.NewTimer(time.Hour)
	if !m.timer.Stop() {
		<-m.timer.C
	}
	return m
}

func (m *modelService) start() {
	// Materialize lazy parameter-derived caches before serving so the
	// first batch is not surprised by a rebuild.
	nn.Prewarm(m.wf)
	go m.run()
}

// close drains this model: reject new submits, let the dispatcher finish
// everything queued, and wait for it to exit.
func (m *modelService) close() {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	if !already {
		close(m.reqCh)
	}
	m.mu.Unlock()
	<-m.done
}

func (m *modelService) stats() Stats {
	return Stats{
		Requests: m.requests.Load(),
		Rows:     m.rowsDone.Load(),
		Batches:  m.batches.Load(),
		Rejected: m.rejected.Load(),
		Canceled: m.canceled.Load(),
		Swaps:    m.swaps.Load(),
	}
}

// submit admits r, enqueues it, and blocks until the dispatcher completes
// it or ctx ends. Admission is a row-count reservation released when the
// request completes, so MaxPending bounds queued + in-flight rows.
func (m *modelService) submit(ctx context.Context, r *request) error {
	if ctx == nil {
		ctx = context.Background()
	}
	r.ctx = ctx
	r.ready = make(chan struct{})
	if r.rows > 0 {
		for {
			p := m.pendingRows.Load()
			if p+int64(r.rows) > int64(m.cfg.MaxPending) {
				m.rejected.Add(1)
				return ErrOverloaded
			}
			if m.pendingRows.CompareAndSwap(p, p+int64(r.rows)) {
				break
			}
		}
	}
	m.mu.RLock()
	if m.draining {
		m.mu.RUnlock()
		m.pendingRows.Add(-int64(r.rows))
		return ErrDraining
	}
	select {
	case m.reqCh <- r:
		m.mu.RUnlock()
	default:
		m.mu.RUnlock()
		m.pendingRows.Add(-int64(r.rows))
		m.rejected.Add(1)
		return ErrOverloaded
	}
	select {
	case <-r.ready:
		return r.err
	case <-ctx.Done():
		// The dispatcher still owns r and will complete it (skipping
		// evaluation once it sees the dead context); only the wait is
		// abandoned. r's buffers are request-owned, so no race reaches
		// the caller.
		return ctx.Err()
	}
}

// finish completes r: results/err are final before ready is closed, and
// the admission reservation is released.
func (m *modelService) finish(r *request, err error) {
	r.err = err
	close(r.ready)
	if r.rows > 0 {
		m.pendingRows.Add(-int64(r.rows))
	}
}

// run is the dispatcher loop: pull one request, coalesce a window's worth
// of followers, evaluate the group as fused batches, repeat. Exits when
// the queue is closed and drained.
func (m *modelService) run() {
	defer close(m.done)
	for {
		r, ok := <-m.reqCh
		if !ok {
			return
		}
		if r.kind == kindSwap {
			m.applySwap(r)
			continue
		}
		group, swap := m.collect(r)
		m.dispatch(group)
		if swap != nil {
			m.applySwap(swap)
		}
	}
}

// collect folds queued requests after first into one group, up to MaxBatch
// rows, waiting at most Window for stragglers. A swap in the queue ends
// the group early and is returned to the caller — it must be applied
// AFTER the group is dispatched (queue-barrier semantics: no batch mixes
// parameter versions). A closed queue also ends the group; the outer loop
// then observes the closure and exits after the drain.
func (m *modelService) collect(first *request) (group []*request, swap *request) {
	group = append(m.groupBuf[:0], first)
	rows := first.rows
	var timerC <-chan time.Time
	fired := false
	if m.cfg.Window > 0 && rows < m.cfg.MaxBatch {
		m.timer.Reset(m.cfg.Window)
		timerC = m.timer.C
	}
loop:
	for rows < m.cfg.MaxBatch {
		if timerC == nil {
			select {
			case r, ok := <-m.reqCh:
				if !ok {
					break loop
				}
				if r.kind == kindSwap {
					swap = r
					break loop
				}
				group = append(group, r)
				rows += r.rows
			default:
				break loop
			}
			continue
		}
		select {
		case r, ok := <-m.reqCh:
			if !ok {
				break loop
			}
			if r.kind == kindSwap {
				swap = r
				break loop
			}
			group = append(group, r)
			rows += r.rows
		case <-timerC:
			fired = true
			break loop
		}
	}
	if timerC != nil && !fired && !m.timer.Stop() {
		<-m.timer.C
	}
	m.groupBuf = group
	return group, swap
}

// dispatch evaluates one collected group: requests whose context already
// ended are completed unevaluated, the rest are partitioned by kind and
// each kind folded into one fused batch through the shared core dispatch.
func (m *modelService) dispatch(group []*request) {
	lp, en, sm := m.lpReqs[:0], m.enReqs[:0], m.smReqs[:0]
	for _, r := range group {
		if r.ctx.Err() != nil {
			m.canceled.Add(1)
			m.finish(r, r.ctx.Err())
			continue
		}
		switch r.kind {
		case kindLogPsi:
			lp = append(lp, r)
		case kindEnergy:
			en = append(en, r)
		case kindSample:
			sm = append(sm, r)
		}
	}
	m.lpReqs, m.enReqs, m.smReqs = lp, en, sm
	if len(lp) > 0 {
		m.evalConfigs(lp, false)
	}
	if len(en) > 0 {
		m.evalConfigs(en, true)
	}
	if len(sm) > 0 {
		m.evalSamples(sm)
	}
}

// grow* return reused dispatcher slabs of at least the requested size.
func (m *modelService) growBits(n int) []int {
	if cap(m.bitsBuf) < n {
		m.bitsBuf = make([]int, n)
	}
	return m.bitsBuf[:n]
}

func (m *modelService) growOut(n int) []float64 {
	if cap(m.outBuf) < n {
		m.outBuf = make([]float64, n)
	}
	return m.outBuf[:n]
}

func (m *modelService) growU(n int) []float64 {
	if cap(m.uBuf) < n {
		m.uBuf = make([]float64, n)
	}
	return m.uBuf[:n]
}

// evalConfigs fuses the requests' configuration rows into one batch and
// runs it through the shared core dispatch (LogPsi or LocalEnergies). The
// per-row values are bitwise identical to a direct single-request call by
// the nn.BatchEvaluator contract, so the fold is invisible in results.
func (m *modelService) evalConfigs(reqs []*request, energy bool) {
	total := 0
	for _, r := range reqs {
		total += r.rows
	}
	bits := m.growBits(total * m.sites)
	out := m.growOut(total)
	pos := 0
	for _, r := range reqs {
		copy(bits[pos*m.sites:], r.bits)
		pos += r.rows
	}
	b := &sampler.Batch{N: total, Sites: m.sites, Bits: bits}
	if energy {
		m.be.LocalEnergies(m.ham, b, m.cfg.Workers, out)
	} else {
		m.be.LogPsi(b, out)
	}
	m.batches.Add(1)
	m.rowsDone.Add(uint64(total))
	pos = 0
	for _, r := range reqs {
		copy(r.out, out[pos:pos+r.rows])
		pos += r.rows
		m.requests.Add(1)
		m.finish(r, nil)
	}
}

// evalSamples fuses the requests' pre-drawn uniforms into one batch and
// advances all samples together through the model's fused per-site pass.
// Each request's bits depend only on its own uniforms (per-sample
// arithmetic is row-local by the nn.BatchAncestralSampler contract), so
// the samples are bitwise identical to a direct per-request draw.
func (m *modelService) evalSamples(reqs []*request) {
	total := 0
	for _, r := range reqs {
		total += r.rows
	}
	bits := m.growBits(total * m.sites)
	for i := range bits {
		bits[i] = 0
	}
	u := m.growU(total * m.sites)
	pos := 0
	for _, r := range reqs {
		copy(u[pos*m.sites:], r.u)
		pos += r.rows
	}
	m.smp.Sample(nn.ConfigBatch{N: total, Sites: m.sites, Bits: bits}, u, m.cfg.Workers)
	m.batches.Add(1)
	m.rowsDone.Add(uint64(total))
	pos = 0
	for _, r := range reqs {
		copy(r.outBits, bits[pos*m.sites:(pos+r.rows)*m.sites])
		pos += r.rows
		m.requests.Add(1)
		m.finish(r, nil)
	}
}

// applySwap moves the live model onto the new checkpoint's parameters
// between batches. Evaluator caches are version-counted, so the next
// dispatch rebuilds them against the new parameters; Prewarm does the
// rebuild here, on the dispatcher, instead of inside the next batch.
func (m *modelService) applySwap(r *request) {
	if r.ctx.Err() != nil {
		m.canceled.Add(1)
		m.finish(r, r.ctx.Err())
		return
	}
	err := nn.HotSwapParams(m.wf, r.swapTo)
	if err == nil {
		nn.Prewarm(m.wf)
		m.swaps.Add(1)
	}
	m.finish(r, err)
}
