package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// LoadConfig describes one closed-loop load measurement: Clients goroutines
// each issue one request at a time against a freshly built server for
// Duration. The same configuration with Coalesce=false is the A/B
// baseline: MaxBatch=1 dispatches every request through its own GEMM call,
// so the comparison isolates exactly the cross-request fold.
type LoadConfig struct {
	// Sites/Hidden size the MADE model served (the GEMM working set).
	Sites, Hidden int
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// ConfigsPerRequest is the rows each request carries (default 1 — the
	// "strangers" regime: every row arrives from a different client).
	ConfigsPerRequest int
	// Duration is the measurement wall-clock per run.
	Duration time.Duration
	// Kind selects the endpoint: "logpsi" or "energy".
	Kind string
	// Coalesce=true serves with the default window/batch bound;
	// false forces MaxBatch=1 (per-request dispatch).
	Coalesce bool
	// MaxBatch/Window override the coalesced tuning when nonzero.
	MaxBatch int
	Window   time.Duration
	// Workers bounds eval fan-out (<= 0: GOMAXPROCS).
	Workers int
	// Seed pins the model parameters and client workloads.
	Seed uint64
}

// LoadResult is one load measurement: throughput, latency percentiles and
// coalescing shape. Verified is the number of responses checked bitwise
// against the direct single-caller evaluation (every response is checked;
// a mismatch fails the run), so the harness proves correctness under the
// same load it measures.
type LoadResult struct {
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	P50ms        float64 `json:"p50_ms"`
	P95ms        float64 `json:"p95_ms"`
	P99ms        float64 `json:"p99_ms"`
	Batches      uint64  `json:"batches"`
	RowsPerBatch float64 `json:"rows_per_batch"`
	Verified     int     `json:"verified"`
}

// RunLoad executes one load measurement. Every client's response is
// compared with exact == against the direct core.BatchedEval value for
// that client's configurations, computed up front; any divergence is an
// error. The returned percentiles are per-request wall-clock latencies.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 16
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 32
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.ConfigsPerRequest <= 0 {
		cfg.ConfigsPerRequest = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Kind == "" {
		cfg.Kind = "logpsi"
	}
	if cfg.Kind != "logpsi" && cfg.Kind != "energy" {
		return LoadResult{}, fmt.Errorf("serve: load kind %q", cfg.Kind)
	}

	r := rng.New(cfg.Seed + 1)
	ham := hamiltonian.RandomTIM(cfg.Sites, r)
	wf := nn.NewMADE(cfg.Sites, cfg.Hidden, r.Split())

	sc := Config{Workers: cfg.Workers, MaxBatch: cfg.MaxBatch, Window: cfg.Window}
	if !cfg.Coalesce {
		sc.MaxBatch = 1
		sc.Window = ExplicitZeroWindow
	}
	// Admission must never throttle the measurement: bound well above the
	// worst-case backlog (every client in flight at once).
	sc.MaxPending = 2 * cfg.Clients * cfg.ConfigsPerRequest
	if sc.MaxPending < 4096 {
		sc.MaxPending = 4096
	}

	s := NewServer(ServerConfig{})
	if err := s.Register("m", ModelSpec{WF: wf, Ham: ham, Config: sc}); err != nil {
		return LoadResult{}, err
	}
	defer s.Close()

	// Per-client workloads and their direct single-caller reference
	// values, computed before any traffic: the harness asserts every
	// served response against these, bitwise.
	type clientWork struct {
		configs [][]int
		want    []float64
	}
	works := make([]clientWork, cfg.Clients)
	ref := core.NewBatchedEval(wf, core.EvalAuto, 1)
	for c := range works {
		cr := rng.New(cfg.Seed + 100 + uint64(c))
		b := sampler.NewBatch(cfg.ConfigsPerRequest, cfg.Sites)
		cr.FillBits(b.Bits)
		configs := make([][]int, b.N)
		for k := range configs {
			configs[k] = b.Row(k)
		}
		want := make([]float64, b.N)
		if cfg.Kind == "energy" {
			ref.LocalEnergies(ham, b, 1, want)
		} else {
			ref.LogPsi(b, want)
		}
		works[c] = clientWork{configs: configs, want: want}
	}

	var wg sync.WaitGroup
	lat := make([][]time.Duration, cfg.Clients)
	reqCounts := make([]int, cfg.Clients)
	errs := make([]error, cfg.Clients)
	ctx := context.Background()
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := works[c]
			buf := lat[c][:0]
			for time.Now().Before(deadline) {
				t0 := time.Now()
				var got []float64
				var err error
				if cfg.Kind == "energy" {
					got, err = s.LocalEnergy(ctx, "m", w.configs)
				} else {
					got, err = s.LogPsi(ctx, "m", w.configs)
				}
				d := time.Since(t0)
				if err != nil {
					errs[c] = err
					return
				}
				for k := range got {
					if got[k] != w.want[k] {
						errs[c] = fmt.Errorf("client %d: served %v != direct %v (row %d)", c, got[k], w.want[k], k)
						return
					}
				}
				buf = append(buf, d)
				reqCounts[c]++
			}
			lat[c] = buf
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < cfg.Duration {
		elapsed = cfg.Duration
	}
	for _, err := range errs {
		if err != nil {
			return LoadResult{}, err
		}
	}

	var all []time.Duration
	total := 0
	for c := range lat {
		all = append(all, lat[c]...)
		total += reqCounts[c]
	}
	if total == 0 {
		return LoadResult{}, fmt.Errorf("serve: load run completed zero requests")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e6
	}
	st, err := s.ModelStats("m")
	if err != nil {
		return LoadResult{}, err
	}
	res := LoadResult{
		Requests: total,
		QPS:      float64(total) / elapsed.Seconds(),
		P50ms:    pct(0.50),
		P95ms:    pct(0.95),
		P99ms:    pct(0.99),
		Batches:  st.Batches,
		Verified: total,
	}
	if st.Batches > 0 {
		res.RowsPerBatch = float64(st.Rows) / float64(st.Batches)
	}
	return res, nil
}
