package graph

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 0, 1.5)
	if g.Weight(0, 2) != 1.5 || g.Weight(2, 0) != 1.5 {
		t.Fatal("adjacency not symmetric")
	}
	if len(g.Edges) != 1 || g.Edges[0].U != 0 || g.Edges[0].V != 2 {
		t.Fatalf("edge list %v", g.Edges)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on self loop")
		}
	}()
	New(3).AddEdge(1, 1, 1)
}

func TestRandomBernoulliProperties(t *testing.T) {
	r := rng.New(99)
	n := 60
	g := RandomBernoulli(n, r)
	// Symmetric with zero diagonal.
	for i := 0; i < n; i++ {
		if g.Weight(i, i) != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := 0; j < n; j++ {
			if g.Weight(i, j) != g.Weight(j, i) {
				t.Fatal("asymmetric adjacency")
			}
			if w := g.Weight(i, j); w != 0 && w != 1 {
				t.Fatalf("non-binary weight %v", w)
			}
		}
	}
	// Edge probability should be about 3/4 (B_ij + B_ji >= 1).
	pairs := float64(n * (n - 1) / 2)
	density := float64(len(g.Edges)) / pairs
	if math.Abs(density-0.75) > 0.05 {
		t.Errorf("edge density %v, want ~0.75", density)
	}
}

func TestRandomBernoulliDeterministic(t *testing.T) {
	g1 := RandomBernoulli(20, rng.New(5))
	g2 := RandomBernoulli(20, rng.New(5))
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestCutValueTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	// Any 2-1 split of a triangle cuts exactly 2 edges.
	for _, x := range [][]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if got := g.CutValue(x); got != 2 {
			t.Errorf("CutValue(%v) = %v, want 2", x, got)
		}
	}
	if g.CutValue([]int{0, 0, 0}) != 0 {
		t.Error("empty cut should be 0")
	}
}

func TestCutValueSpinsAgrees(t *testing.T) {
	r := rng.New(3)
	g := RandomBernoulli(15, r)
	for trial := 0; trial < 20; trial++ {
		x := make([]int, g.N)
		s := make([]float64, g.N)
		for i := range x {
			x[i] = r.Bit()
			s[i] = float64(1 - 2*x[i])
		}
		if math.Abs(g.CutValue(x)-g.CutValueSpins(s)) > 1e-12 {
			t.Fatalf("cut mismatch: %v vs %v", g.CutValue(x), g.CutValueSpins(s))
		}
	}
}

func TestCutComplementInvariance(t *testing.T) {
	r := rng.New(4)
	g := RandomBernoulli(12, r)
	x := make([]int, g.N)
	y := make([]int, g.N)
	for i := range x {
		x[i] = r.Bit()
		y[i] = 1 - x[i]
	}
	if g.CutValue(x) != g.CutValue(y) {
		t.Fatal("cut not invariant under complement")
	}
}

func TestLaplacianQuadraticFormIsCut(t *testing.T) {
	// s^T L s / 4 counts = sum_edges w (1 - s_i s_j)/2 ... specifically
	// (1/4) s^T L s = cut(s).
	r := rng.New(6)
	g := RandomBernoulli(10, r)
	l := g.Laplacian()
	s := make([]float64, g.N)
	x := make([]int, g.N)
	for i := range s {
		x[i] = r.Bit()
		s[i] = float64(1 - 2*x[i])
	}
	var quad float64
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			quad += s[i] * l[i*g.N+j] * s[j]
		}
	}
	if math.Abs(quad/4-g.CutValue(x)) > 1e-9 {
		t.Fatalf("s^T L s / 4 = %v, cut = %v", quad/4, g.CutValue(x))
	}
}

func TestDegreeAndTotalWeight(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	if g.Degree(0) != 5 {
		t.Errorf("Degree(0) = %v", g.Degree(0))
	}
	if g.TotalWeight() != 5 {
		t.Errorf("TotalWeight = %v", g.TotalWeight())
	}
}
