// Package graph builds the dense random graphs used by the paper's Max-Cut
// experiments and provides cut-value utilities.
//
// The paper constructs the adjacency matrix by sampling B_ij ~ Bernoulli(0.5)
// once, forming (B + B^T)/2, rounding, and zeroing the diagonal. Entries of
// (B+B^T)/2 lie in {0, 1/2, 1}; rounding half away from zero yields an edge
// whenever B_ij + B_ji >= 1, i.e. with probability 3/4.
package graph

import (
	"fmt"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Edge is an undirected edge between vertices U < V with weight W.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted graph on vertices 0..N-1 with a dense
// adjacency matrix and an edge list kept in sync.
type Graph struct {
	N     int
	Adj   []float64 // row-major N x N, symmetric, zero diagonal
	Edges []Edge    // every edge once, U < V
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{N: n, Adj: make([]float64, n*n)}
}

// Weight returns the weight of edge (i, j); zero means no edge.
func (g *Graph) Weight(i, j int) float64 { return g.Adj[i*g.N+j] }

// AddEdge inserts an undirected edge with the given weight. Adding an edge
// twice overwrites the weight in the adjacency matrix but appends a second
// edge-list entry, so callers should add each pair once.
func (g *Graph) AddEdge(i, j int, w float64) {
	if i == j {
		panic("graph: self loop")
	}
	if i > j {
		i, j = j, i
	}
	g.Adj[i*g.N+j] = w
	g.Adj[j*g.N+i] = w
	g.Edges = append(g.Edges, Edge{U: i, V: j, W: w})
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// Degree returns the weighted degree of vertex i.
func (g *Graph) Degree(i int) float64 {
	var s float64
	for j := 0; j < g.N; j++ {
		s += g.Adj[i*g.N+j]
	}
	return s
}

// RandomBernoulli builds the paper's random dense graph on n vertices:
// round((B+B^T)/2) with B_ij ~ Bernoulli(0.5), zero diagonal, unit weights.
func RandomBernoulli(n int, r *rng.Rand) *Graph {
	b := make([]int, n*n)
	for i := range b {
		b[i] = r.Bit()
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// round((B_ij+B_ji)/2): 0->0, 1/2->1 (half away from zero), 1->1.
			if b[i*n+j]+b[j*n+i] >= 1 {
				g.AddEdge(i, j, 1)
			}
		}
	}
	return g
}

// CutValue returns the total weight of edges crossing the bipartition
// defined by x, where x[i] in {0,1} is vertex i's side.
func (g *Graph) CutValue(x []int) float64 {
	if len(x) != g.N {
		panic(fmt.Sprintf("graph: assignment length %d != n %d", len(x), g.N))
	}
	var cut float64
	for _, e := range g.Edges {
		if x[e.U] != x[e.V] {
			cut += e.W
		}
	}
	return cut
}

// CutValueSpins is CutValue for a +-1 spin assignment s_i = 1-2x_i.
func (g *Graph) CutValueSpins(s []float64) float64 {
	var cut float64
	for _, e := range g.Edges {
		cut += e.W * (1 - s[e.U]*s[e.V]) / 2
	}
	return cut
}

// Laplacian returns the graph Laplacian D - A as a dense row-major matrix.
func (g *Graph) Laplacian() []float64 {
	l := make([]float64, g.N*g.N)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if i == j {
				l[i*g.N+j] = g.Degree(i)
			} else {
				l[i*g.N+j] = -g.Adj[i*g.N+j]
			}
		}
	}
	return l
}
