package sampler

import (
	"math"
	"sync"

	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// Gibbs is a block Gibbs sampler for the RBM wavefunction's Born
// distribution pi(s) ~ psi(s)^2, one of the MCMC variations the paper
// cites (Geman & Geman). It exploits the RBM's bipartite structure: since
//
//	psi(s)^2 = exp(2 a.s) prod_k cosh^2(theta_k),  theta_k = w_k.s + c_k
//
// and cosh^2(theta) = (1/4) sum_{h1,h2 in {+-1}} exp((h1+h2) theta), the
// squared amplitude is the marginal of a joint distribution over s and two
// independent hidden spins per hidden unit. Alternating exact block updates
//
//	P(h_{k,j} = +1 | s) = sigma(2 theta_k(s))
//	P(s_i   = +1 | h) = sigma(2 (2 a_i + sum_k (h_{k,1}+h_{k,2}) W_{ki}))
//
// update every coordinate per sweep — often mixing far better than
// single-bit-flip Metropolis, at O(nh) per sweep.
//
// Like MCMC, the sweeps are sequential per chain and stay scalar; the
// local-energy and gradient phases downstream of the sampled batch
// dispatch to the RBM's nn.BatchEvaluator under core.EvalAuto, bitwise
// unchanged.
type Gibbs struct {
	model  *nn.RBM
	cfg    MCMCConfig // Chains/BurnIn/Thin carry over; BurnIn counts sweeps
	rngs   []*rng.Rand
	states [][]int
	cost   Cost
}

// NewGibbs builds a block Gibbs sampler over an RBM. Zero-valued config
// fields get defaults: 2 chains, burn-in 20 sweeps (full-coordinate sweeps
// mix far faster than single flips), no thinning.
func NewGibbs(model *nn.RBM, cfg MCMCConfig, r *rng.Rand) *Gibbs {
	if cfg.Chains <= 0 {
		cfg.Chains = 2
	}
	if cfg.BurnIn == 0 {
		cfg.BurnIn = 20
	} else if cfg.BurnIn < 0 {
		cfg.BurnIn = 0
	}
	if cfg.Thin <= 0 {
		cfg.Thin = 1
	}
	g := &Gibbs{model: model, cfg: cfg}
	g.rngs = r.SplitN(cfg.Chains)
	g.states = make([][]int, cfg.Chains)
	for c := range g.states {
		st := make([]int, model.NumSites())
		g.rngs[c].FillBits(st)
		g.states[c] = st
	}
	return g
}

// Config returns the effective configuration.
func (g *Gibbs) Config() MCMCConfig { return g.cfg }

// sweep performs one full block update (all hidden, then all visible).
// spins and hsum are workspaces of length n and h respectively.
func (g *Gibbs) sweep(x []int, spins, hsum []float64, rnd *rng.Rand) {
	m := g.model
	n, h := m.NumSites(), m.Hidden()
	for i, b := range x {
		spins[i] = float64(1 - 2*b)
	}
	// Sample H_k = h_{k,1} + h_{k,2} given s: each spin is +1 w.p.
	// sigma(2 theta_k).
	for k := 0; k < h; k++ {
		theta := m.C[k]
		row := m.W.Row(k)
		for i := 0; i < n; i++ {
			theta += row[i] * spins[i]
		}
		p := 1 / (1 + math.Exp(-2*theta))
		var H float64
		if rnd.Float64() < p {
			H++
		} else {
			H--
		}
		if rnd.Float64() < p {
			H++
		} else {
			H--
		}
		hsum[k] = H
	}
	// Sample s_i given h.
	for i := 0; i < n; i++ {
		field := 2 * m.A[i]
		for k := 0; k < h; k++ {
			if hsum[k] != 0 {
				field += hsum[k] * m.W.At(k, i)
			}
		}
		p := 1 / (1 + math.Exp(-2*field))
		if rnd.Float64() < p {
			x[i] = 0 // s_i = +1
		} else {
			x[i] = 1
		}
	}
}

// Sample implements Sampler.
func (g *Gibbs) Sample(b *Batch) {
	n := g.model.NumSites()
	if b.Sites != n {
		panic("sampler: batch sites mismatch")
	}
	chains := g.cfg.Chains
	var wg sync.WaitGroup
	wg.Add(chains)
	for c := 0; c < chains; c++ {
		go func(c int) {
			defer wg.Done()
			lo := c * b.N / chains
			hi := (c + 1) * b.N / chains
			rnd := g.rngs[c]
			if !g.cfg.Persistent {
				rnd.FillBits(g.states[c])
			}
			x := g.states[c]
			spins := make([]float64, n)
			hsum := make([]float64, g.model.Hidden())
			var sweeps int64
			for i := 0; i < g.cfg.BurnIn; i++ {
				g.sweep(x, spins, hsum, rnd)
				sweeps++
			}
			for s := lo; s < hi; s++ {
				for t := 0; t < g.cfg.Thin; t++ {
					g.sweep(x, spins, hsum, rnd)
					sweeps++
				}
				copy(b.Row(s), x)
			}
			g.cost.addSteps(sweeps)
			// One sweep evaluates every hidden and visible unit once:
			// comparable to one forward pass.
			g.cost.addPasses(sweeps)
		}(c)
	}
	wg.Wait()
}

// Cost implements Sampler.
func (g *Gibbs) Cost() Cost { return g.cost }

var _ Sampler = (*Gibbs)(nil)
