package sampler

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// enumerateRBM returns the exact Born distribution pi ~ psi^2 of an RBM.
func enumerateRBM(m *nn.RBM) []float64 {
	n := m.NumSites()
	dim := 1 << uint(n)
	pi := make([]float64, dim)
	x := make([]int, n)
	var z float64
	for ix := 0; ix < dim; ix++ {
		hamiltonian.IndexToBits(ix, x)
		pi[ix] = math.Exp(2 * m.LogPsi(x))
		z += pi[ix]
	}
	for i := range pi {
		pi[i] /= z
	}
	return pi
}

func TestGibbsStationaryDistribution(t *testing.T) {
	r := rng.New(21)
	n := 4
	m := nn.NewRBM(n, 3, r)
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-0.3, 0.3)
	}
	pi := enumerateRBM(m)
	g := NewGibbs(m, MCMCConfig{Chains: 2, BurnIn: 50, Thin: 2}, rng.New(22))
	const total = 30000
	counts := sampleCounts(g, n, 30, total/30)
	chi := chiSquare(counts, pi, total)
	if chi > 150 {
		t.Fatalf("Gibbs chi^2 = %v too large (df=15): wrong stationary distribution", chi)
	}
}

func TestGibbsMatchesMetropolisDistribution(t *testing.T) {
	// Both samplers target the same pi; their empirical histograms must
	// agree within noise.
	r := rng.New(23)
	n := 4
	m := nn.NewRBM(n, 3, r)
	gib := NewGibbs(m, MCMCConfig{Chains: 2, BurnIn: 50}, rng.New(24))
	mh := NewMCMC(m, MCMCConfig{Chains: 2, BurnIn: 500, Thin: 2}, rng.New(25))
	const total = 20000
	cG := sampleCounts(gib, n, 20, total/20)
	cM := sampleCounts(mh, n, 20, total/20)
	for ix := range cG {
		pG := float64(cG[ix]) / total
		pM := float64(cM[ix]) / total
		if math.Abs(pG-pM) > 0.03 {
			t.Fatalf("samplers disagree at state %d: %v vs %v", ix, pG, pM)
		}
	}
}

func TestGibbsDefaults(t *testing.T) {
	m := nn.NewRBM(10, 5, rng.New(26))
	g := NewGibbs(m, MCMCConfig{}, rng.New(27))
	cfg := g.Config()
	if cfg.Chains != 2 || cfg.BurnIn != 20 || cfg.Thin != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestGibbsSweepAccounting(t *testing.T) {
	m := nn.NewRBM(6, 4, rng.New(28))
	g := NewGibbs(m, MCMCConfig{Chains: 2, BurnIn: 10, Thin: 3}, rng.New(29))
	b := NewBatch(10, 6)
	g.Sample(b)
	// Per chain: 10 burn-in + 5*3 = 25 sweeps; 2 chains = 50.
	if got := g.Cost().Steps; got != 50 {
		t.Fatalf("sweeps = %d, want 50", got)
	}
}

func TestGibbsMixesFasterThanMetropolis(t *testing.T) {
	// On a moderately peaked RBM, a Gibbs sweep updates all n sites while
	// an MH step updates at most one: with equal numbers of moves, Gibbs
	// should be closer to the target. Compare chi^2 under a tight budget.
	r := rng.New(30)
	n := 4
	m := nn.NewRBM(n, 3, r)
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-0.4, 0.4)
	}
	pi := enumerateRBM(m)
	const total = 8000
	// 5 sweeps per sample for Gibbs vs 5 single-bit steps for MH.
	gib := NewGibbs(m, MCMCConfig{Chains: 2, BurnIn: 5, Thin: 1}, rng.New(31))
	mh := NewMCMC(m, MCMCConfig{Chains: 2, BurnIn: 5, Thin: 1}, rng.New(31))
	chiG := chiSquare(sampleCounts(gib, n, 10, total/10), pi, total)
	chiM := chiSquare(sampleCounts(mh, n, 10, total/10), pi, total)
	if chiG > chiM {
		t.Fatalf("Gibbs (chi^2=%.1f) mixed worse than Metropolis (chi^2=%.1f) at equal move budget", chiG, chiM)
	}
}

func BenchmarkGibbsRBM(b *testing.B) {
	m := nn.NewRBM(100, 100, rng.New(1))
	g := NewGibbs(m, MCMCConfig{}, rng.New(2))
	batch := NewBatch(32, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Sample(batch)
	}
}
