package sampler

// Resumable sampling: samplers that can capture and restore their complete
// stream position. This is the sampler half of the recovery doctrine (see
// docs/ARCHITECTURE.md, "Failure model"): a replica rebuilt from a
// checkpoint is only bit-identical to the lost one if its sampler resumes
// the exact RNG draw — and, for Markov samplers, the exact chain state —
// where the failed rank stood when the checkpoint's step began.

import (
	"fmt"

	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// State is a sampler's complete stream position: one RNG state per worker
// or chain, plus (for Markov samplers) the persistent per-chain
// configurations. Restoring it replays sampling bit-identically from the
// captured point. The zero value is not a valid state.
type State struct {
	// Rngs holds the per-worker (Auto) or per-chain (MCMC, Gibbs) generator
	// states, in worker/chain order.
	Rngs []rng.State
	// Chains holds the persistent chain configurations for Markov samplers,
	// deep-copied; nil for samplers without chain state (Auto).
	Chains [][]int
}

// Resumable is implemented by samplers whose stream position can be
// captured and restored. All samplers in this package implement it.
type Resumable interface {
	// Snapshot captures the sampler's current stream position. The returned
	// state shares no storage with the sampler.
	Snapshot() State
	// Restore rewinds the sampler to a previously captured position. It
	// panics if the state's shape (worker/chain count, sites) does not
	// match the sampler's.
	Restore(State)
}

// snapshotRngs deep-copies a generator slice's states.
func snapshotRngs(rngs []*rng.Rand) []rng.State {
	out := make([]rng.State, len(rngs))
	for i, r := range rngs {
		out[i] = r.State()
	}
	return out
}

// restoreRngs rewinds a generator slice, enforcing matching counts.
func restoreRngs(rngs []*rng.Rand, states []rng.State, kind string) {
	if len(states) != len(rngs) {
		panic(fmt.Sprintf("sampler: restoring %d RNG states into %s sampler with %d streams",
			len(states), kind, len(rngs)))
	}
	for i, s := range states {
		rngs[i].SetState(s)
	}
}

// snapshotChains deep-copies persistent chain configurations.
func snapshotChains(states [][]int) [][]int {
	out := make([][]int, len(states))
	for i, st := range states {
		out[i] = append([]int(nil), st...)
	}
	return out
}

// restoreChains copies captured chain configurations back in place,
// enforcing matching shapes.
func restoreChains(dst, src [][]int, kind string) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("sampler: restoring %d chains into %s sampler with %d",
			len(src), kind, len(dst)))
	}
	for i, st := range src {
		if len(st) != len(dst[i]) {
			panic(fmt.Sprintf("sampler: %s chain %d has %d sites, snapshot has %d",
				kind, i, len(dst[i]), len(st)))
		}
		copy(dst[i], st)
	}
}

// Snapshot implements Resumable: an Auto sampler's whole position is its
// per-worker RNG streams (ancestral sampling keeps no cross-call state).
func (a *Auto) Snapshot() State {
	return State{Rngs: snapshotRngs(a.rngs)}
}

// Restore implements Resumable.
func (a *Auto) Restore(s State) {
	restoreRngs(a.rngs, s.Rngs, "auto")
}

// Snapshot implements Resumable: per-chain RNG streams plus the persistent
// chain configurations (which seed the next call's walk under Persistent,
// and whose refill draws are part of the stream otherwise).
func (m *MCMC) Snapshot() State {
	return State{Rngs: snapshotRngs(m.rngs), Chains: snapshotChains(m.states)}
}

// Restore implements Resumable.
func (m *MCMC) Restore(s State) {
	restoreRngs(m.rngs, s.Rngs, "mcmc")
	restoreChains(m.states, s.Chains, "mcmc")
}

// Snapshot implements Resumable.
func (g *Gibbs) Snapshot() State {
	return State{Rngs: snapshotRngs(g.rngs), Chains: snapshotChains(g.states)}
}

// Restore implements Resumable.
func (g *Gibbs) Restore(s State) {
	restoreRngs(g.rngs, s.Rngs, "gibbs")
	restoreChains(g.states, s.Chains, "gibbs")
}

var (
	_ Resumable = (*Auto)(nil)
	_ Resumable = (*MCMC)(nil)
	_ Resumable = (*Gibbs)(nil)
)
