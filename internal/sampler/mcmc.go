package sampler

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// MCMCConfig selects the Metropolis-Hastings sampling scheme. The defaults
// reproduce the paper's setting: 2 chains, burn-in k = 3n+100, no thinning
// (Scheme 1). Setting Thin > 1 with BurnIn = 0 gives Scheme 2 of the
// ablation in Section 6.2.
type MCMCConfig struct {
	Chains int // parallel independent chains (default 2)
	BurnIn int // steps discarded per chain per Sample call (default 3n+100)
	Thin   int // keep every Thin-th step (default 1)
	// Persistent keeps chain states across Sample calls instead of
	// reinitializing at random; burn-in is still applied each call because
	// the target distribution moves between parameter updates.
	Persistent bool
}

// DefaultBurnIn is the paper's heuristic k = 3n + 100.
func DefaultBurnIn(n int) int { return 3*n + 100 }

// MCMC is random-walk Metropolis-Hastings with single-bit-flip proposals
// targeting pi(x) proportional to psi(x)^2. It works with any wavefunction
// exposing a FlipCache; with the RBM's O(h) cache each step costs O(h).
//
// Chains are inherently sequential, so sampling itself stays scalar in
// every evaluation mode; the energy and gradient phases that consume the
// sampled batch ride the model's nn.BatchEvaluator (the RBM's theta-GEMM
// path) whenever the trainer's eval mode allows it, bitwise unchanged —
// see core.NewBatchedEval and examples/rbmmcmc.
type MCMC struct {
	model interface {
		nn.Wavefunction
		nn.CacheBuilder
	}
	cfg    MCMCConfig
	rngs   []*rng.Rand
	states [][]int // persistent chain states
	cost   Cost
	// acceptance tracking
	accepted int64
	proposed int64
}

// NewMCMC builds an MCMC sampler. Zero-valued config fields get the paper's
// defaults.
func NewMCMC(model interface {
	nn.Wavefunction
	nn.CacheBuilder
}, cfg MCMCConfig, r *rng.Rand) *MCMC {
	if cfg.Chains <= 0 {
		cfg.Chains = 2
	}
	if cfg.BurnIn < 0 {
		cfg.BurnIn = 0
	} else if cfg.BurnIn == 0 {
		cfg.BurnIn = DefaultBurnIn(model.NumSites())
	}
	if cfg.Thin <= 0 {
		cfg.Thin = 1
	}
	m := &MCMC{model: model, cfg: cfg}
	m.rngs = r.SplitN(cfg.Chains)
	m.states = make([][]int, cfg.Chains)
	for c := range m.states {
		st := make([]int, model.NumSites())
		m.rngs[c].FillBits(st)
		m.states[c] = st
	}
	return m
}

// Config returns the effective configuration after defaulting.
func (m *MCMC) Config() MCMCConfig { return m.cfg }

// Sample implements Sampler: each chain burns in, then records every
// Thin-th state until its share of the batch is filled. Chains run
// concurrently; the batch is split into contiguous chain slabs so output is
// deterministic given the seed and chain count.
func (m *MCMC) Sample(b *Batch) {
	n := m.model.NumSites()
	if b.Sites != n {
		panic("sampler: batch sites mismatch")
	}
	chains := m.cfg.Chains
	var wg sync.WaitGroup
	wg.Add(chains)
	for c := 0; c < chains; c++ {
		go func(c int) {
			defer wg.Done()
			lo := c * b.N / chains
			hi := (c + 1) * b.N / chains
			rnd := m.rngs[c]
			if !m.cfg.Persistent {
				rnd.FillBits(m.states[c])
			}
			cache := m.model.NewFlipCache(m.states[c])
			var steps, acc, prop int64
			step := func() {
				bit := rnd.Intn(n)
				d := cache.Delta(bit)
				prop++
				// Accept with min(1, pi(y)/pi(x)) = min(1, exp(2*d)).
				if d >= 0 || rnd.Float64() < exp2d(d) {
					cache.Flip(bit)
					acc++
				}
				steps++
			}
			for i := 0; i < m.cfg.BurnIn; i++ {
				step()
			}
			for s := lo; s < hi; s++ {
				for t := 0; t < m.cfg.Thin; t++ {
					step()
				}
				copy(b.Row(s), cache.State())
			}
			copy(m.states[c], cache.State())
			m.cost.addSteps(steps)
			// Each MH step needs one amplitude evaluation; count it as a
			// forward pass for cost parity with AUTO (Figure 1).
			m.cost.addPasses(steps)
			atomic.AddInt64(&m.accepted, acc)
			atomic.AddInt64(&m.proposed, prop)
		}(c)
	}
	wg.Wait()
}

// exp2d converts a log-psi difference to the pi ratio exp(2d) used in the
// acceptance test.
func exp2d(d float64) float64 { return math.Exp(2 * d) }

// Cost implements Sampler.
func (m *MCMC) Cost() Cost { return m.cost }

// AcceptanceRate returns the fraction of proposals accepted so far.
func (m *MCMC) AcceptanceRate() float64 {
	p := atomic.LoadInt64(&m.proposed)
	if p == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&m.accepted)) / float64(p)
}

var _ Sampler = (*MCMC)(nil)
