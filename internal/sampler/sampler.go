// Package sampler implements the two sampling strategies the paper
// contrasts: exact autoregressive sampling (AUTO, Algorithm 1) and
// random-walk Metropolis-Hastings MCMC with burn-in and thinning. Both fill
// batches of configurations drawn (exactly or asymptotically) from
// pi_theta(x) = psi_theta(x)^2 / <psi,psi>.
package sampler

import "sync/atomic"

// Batch is a batch of n-bit configurations stored flat for cache locality.
type Batch struct {
	N     int // number of samples
	Sites int // bits per sample
	Bits  []int
}

// NewBatch allocates a zeroed batch.
func NewBatch(n, sites int) *Batch {
	return &Batch{N: n, Sites: sites, Bits: make([]int, n*sites)}
}

// Row returns sample i, aliasing batch storage.
func (b *Batch) Row(i int) []int { return b.Bits[i*b.Sites : (i+1)*b.Sites] }

// Cost accumulates sampling work in the paper's units: full-network forward
// passes and raw Markov-chain steps. Counters are cumulative across Sample
// calls and safe to read concurrently.
type Cost struct {
	ForwardPasses int64
	Steps         int64
}

func (c *Cost) addPasses(n int64) { atomic.AddInt64(&c.ForwardPasses, n) }
func (c *Cost) addSteps(n int64)  { atomic.AddInt64(&c.Steps, n) }

// Sampler draws batches of configurations from the model distribution.
type Sampler interface {
	// Sample fills b with samples; b.Sites must equal the model size.
	Sample(b *Batch)
	// Cost returns cumulative cost counters.
	Cost() Cost
}
