package sampler

import (
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/parallel"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// EvaluatorFactory produces per-worker conditional evaluators. It is
// satisfied by (*nn.MADE).NewNaiveEvaluator (the paper's Algorithm 1) and
// (*nn.MADE).NewIncrementalEvaluator (the O(h)-per-bit fast path).
type EvaluatorFactory func() nn.ConditionalEvaluator

// Auto samples exactly from an autoregressive model by ancestral sampling:
// bit i is drawn from P(x_i | x_<i). Samples are independent, so the batch
// is trivially parallel across workers — the property that removes the
// burn-in bottleneck of MCMC (Section 4 of the paper).
type Auto struct {
	sites   int
	factory EvaluatorFactory
	workers int
	rngs    []*rng.Rand
	evals   []nn.ConditionalEvaluator
	// Batched ancestral mode: when bsmp is non-nil, Sample pre-draws the
	// whole batch's uniforms (in the same per-worker order the scalar loop
	// consumes them) and advances all samples site-by-site through one
	// fused pass per site. Bits are bitwise identical to the scalar
	// incremental mode at the same worker count.
	bsmp nn.BatchAncestralSampler
	ubuf []float64
	cost Cost
}

// NewAuto builds an exact sampler over a model with the given number of
// sites. workers <= 0 means GOMAXPROCS. Each worker owns an independent RNG
// stream split from r, so results are deterministic for a fixed worker
// count.
func NewAuto(sites int, factory EvaluatorFactory, workers int, r *rng.Rand) *Auto {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	a := &Auto{sites: sites, factory: factory, workers: workers}
	a.rngs = r.SplitN(workers)
	a.evals = make([]nn.ConditionalEvaluator, workers)
	for i := range a.evals {
		a.evals[i] = factory()
	}
	return a
}

// NewAutoMADE is a convenience constructor choosing the evaluator by mode:
// incremental=false reproduces Algorithm 1 exactly (n forward passes per
// sample).
func NewAutoMADE(m *nn.MADE, incremental bool, workers int, r *rng.Rand) *Auto {
	f := EvaluatorFactory(m.NewNaiveEvaluator)
	if incremental {
		f = m.NewIncrementalEvaluator
	}
	return NewAuto(m.NumSites(), f, workers, r)
}

// NewAutoBatched builds the batched ancestral sampler: all samples advance
// together site-by-site through the model's BatchAncestralSampler (one
// fused pass over the B x h hidden state per site). The RNG streams, their
// per-worker slab assignment and the drawn bits are bitwise identical to
// the scalar incremental sampler built with the same workers and r — the
// batched mode changes memory layout and loop order, never a sampled bit.
func NewAutoBatched(sites int, builder nn.BatchAncestralBuilder, workers int, r *rng.Rand) *Auto {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	a := &Auto{sites: sites, workers: workers, bsmp: builder.NewBatchAncestralSampler()}
	a.rngs = r.SplitN(workers)
	return a
}

// Sample implements Sampler. Worker w handles a contiguous slab of the
// batch; the assignment depends only on (batch size, worker count), keeping
// runs reproducible.
func (a *Auto) Sample(b *Batch) {
	if b.Sites != a.sites {
		panic("sampler: batch sites mismatch")
	}
	if a.bsmp != nil {
		a.sampleBatched(b)
		return
	}
	ranges := parallel.Partition(b.N, a.workers)
	var before int64
	for _, e := range a.evals {
		before += e.ForwardPasses()
	}
	parallel.ForEach(len(ranges), a.workers, func(w int) {
		ev := a.evals[w]
		rnd := a.rngs[w]
		for s := ranges[w].Lo; s < ranges[w].Hi; s++ {
			row := b.Row(s)
			ev.Reset()
			for i := 0; i < a.sites; i++ {
				p := ev.Prob(i)
				bit := 0
				if rnd.Float64() < p {
					bit = 1
				}
				row[i] = bit
				ev.Fix(i, bit)
			}
		}
	})
	var after int64
	for _, e := range a.evals {
		after += e.ForwardPasses()
	}
	a.cost.addPasses(after - before)
	a.cost.addSteps(int64(b.N) * int64(a.sites))
}

// sampleBatched pre-draws every uniform the scalar loop would consume —
// worker w drawing for its slab in (sample, site) order from its own
// stream, exactly the scalar consumption order — then advances the whole
// batch site-major through the model's fused per-site pass.
func (a *Auto) sampleBatched(b *Batch) {
	if need := b.N * a.sites; cap(a.ubuf) < need {
		a.ubuf = make([]float64, need)
	}
	u := a.ubuf[:b.N*a.sites]
	ranges := parallel.Partition(b.N, a.workers)
	parallel.ForEach(len(ranges), a.workers, func(w int) {
		rnd := a.rngs[w]
		for s := ranges[w].Lo * a.sites; s < ranges[w].Hi*a.sites; s++ {
			u[s] = rnd.Float64()
		}
	})
	a.bsmp.Sample(nn.ConfigBatch{N: b.N, Sites: b.Sites, Bits: b.Bits}, u, a.workers)
	// One full-network forward equivalent per completed sample, matching
	// the incremental evaluator's accounting.
	a.cost.addPasses(int64(b.N))
	a.cost.addSteps(int64(b.N) * int64(a.sites))
}

// Cost implements Sampler.
func (a *Auto) Cost() Cost { return a.cost }

var _ Sampler = (*Auto)(nil)
