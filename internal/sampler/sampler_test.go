package sampler

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestBatchRow(t *testing.T) {
	b := NewBatch(3, 4)
	b.Row(1)[2] = 1
	if b.Bits[1*4+2] != 1 {
		t.Fatal("Row does not alias storage")
	}
	if len(b.Row(0)) != 4 {
		t.Fatal("Row length wrong")
	}
}

// exactDist enumerates pi(x) for a normalized model.
func exactDist(m nn.Normalized) []float64 {
	n := m.NumSites()
	dim := 1 << uint(n)
	pi := make([]float64, dim)
	x := make([]int, n)
	for ix := 0; ix < dim; ix++ {
		hamiltonian.IndexToBits(ix, x)
		pi[ix] = math.Exp(m.LogProb(x))
	}
	return pi
}

// chiSquare compares empirical counts to expected probabilities; returns the
// statistic (df = len(pi)-1).
func chiSquare(counts []int, pi []float64, total int) float64 {
	var chi float64
	for i, c := range counts {
		want := pi[i] * float64(total)
		if want < 1e-12 {
			continue
		}
		d := float64(c) - want
		chi += d * d / want
	}
	return chi
}

func sampleCounts(s Sampler, n, batches, bs int) []int {
	counts := make([]int, 1<<uint(n))
	b := NewBatch(bs, n)
	for it := 0; it < batches; it++ {
		s.Sample(b)
		for i := 0; i < b.N; i++ {
			counts[hamiltonian.BitsToIndex(b.Row(i))]++
		}
	}
	return counts
}

func TestAutoNaiveSamplesExactDistribution(t *testing.T) {
	r := rng.New(1)
	n := 4
	m := nn.NewMADE(n, 6, r)
	// Perturb to a non-uniform distribution.
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-0.8, 0.8)
	}
	pi := exactDist(m)
	a := NewAutoMADE(m, false, 2, rng.New(2))
	const total = 40000
	counts := sampleCounts(a, n, 40, total/40)
	chi := chiSquare(counts, pi, total)
	// df = 15; the 99.9% quantile is ~37.7. Allow margin.
	if chi > 45 {
		t.Fatalf("AUTO naive chi^2 = %v too large (df=15)", chi)
	}
}

func TestAutoIncrementalSamplesExactDistribution(t *testing.T) {
	r := rng.New(3)
	n := 4
	m := nn.NewMADE(n, 6, r)
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-0.8, 0.8)
	}
	pi := exactDist(m)
	a := NewAutoMADE(m, true, 2, rng.New(4))
	const total = 40000
	counts := sampleCounts(a, n, 40, total/40)
	chi := chiSquare(counts, pi, total)
	if chi > 45 {
		t.Fatalf("AUTO incremental chi^2 = %v too large (df=15)", chi)
	}
}

func TestAutoNaiveAndIncrementalIdenticalStreams(t *testing.T) {
	// With the same RNG seed and worker count, both evaluators must produce
	// bit-identical samples: they compute the same conditionals.
	r := rng.New(5)
	n := 9
	m := nn.NewMADE(n, 12, r)
	a1 := NewAutoMADE(m, false, 3, rng.New(6))
	a2 := NewAutoMADE(m, true, 3, rng.New(6))
	b1 := NewBatch(64, n)
	b2 := NewBatch(64, n)
	a1.Sample(b1)
	a2.Sample(b2)
	for i := range b1.Bits {
		if b1.Bits[i] != b2.Bits[i] {
			t.Fatalf("sample streams diverge at flat index %d", i)
		}
	}
}

func TestAutoForwardPassAccounting(t *testing.T) {
	// Algorithm 1 costs exactly n forward passes per sample.
	r := rng.New(7)
	n := 6
	m := nn.NewMADE(n, 5, r)
	a := NewAutoMADE(m, false, 1, rng.New(8))
	b := NewBatch(10, n)
	a.Sample(b)
	if got := a.Cost().ForwardPasses; got != int64(10*n) {
		t.Fatalf("forward passes = %d, want %d", got, 10*n)
	}
	// Incremental charges one pass-equivalent per sample.
	ai := NewAutoMADE(m, true, 1, rng.New(9))
	ai.Sample(b)
	if got := ai.Cost().ForwardPasses; got != 10 {
		t.Fatalf("incremental passes = %d, want 10", got)
	}
}

func TestMCMCConvergesToTargetDistribution(t *testing.T) {
	// Long-run MH empirical distribution must match pi = psi^2/Z for a
	// small RBM.
	r := rng.New(10)
	n := 4
	m := nn.NewRBM(n, 3, r)
	// Sharpen the distribution a little.
	for i := range m.Params() {
		m.Params()[i] += r.Uniform(-0.3, 0.3)
	}
	// Exact pi by enumeration.
	dim := 1 << uint(n)
	pi := make([]float64, dim)
	x := make([]int, n)
	var z float64
	for ix := 0; ix < dim; ix++ {
		hamiltonian.IndexToBits(ix, x)
		pi[ix] = math.Exp(2 * m.LogPsi(x))
		z += pi[ix]
	}
	for i := range pi {
		pi[i] /= z
	}
	mc := NewMCMC(m, MCMCConfig{Chains: 2, BurnIn: 500, Thin: 2}, rng.New(11))
	const total = 30000
	counts := sampleCounts(mc, n, 30, total/30)
	chi := chiSquare(counts, pi, total)
	// Correlated samples inflate chi^2; be generous but still catch a
	// wrong stationary distribution (which gives chi^2 in the thousands).
	if chi > 150 {
		t.Fatalf("MCMC chi^2 = %v too large (df=15)", chi)
	}
}

func TestMCMCDetailedBalance(t *testing.T) {
	// For single-flip MH: pi(x) P(x->y) == pi(y) P(y->x) for neighbours.
	// P(x->y) = (1/n) min(1, pi(y)/pi(x)); verify the identity numerically
	// from the model amplitudes.
	r := rng.New(12)
	n := 5
	m := nn.NewRBM(n, 4, r)
	x := make([]int, n)
	r.FillBits(x)
	logPi := func(c []int) float64 { return 2 * m.LogPsi(c) }
	for bit := 0; bit < n; bit++ {
		y := append([]int(nil), x...)
		y[bit] = 1 - y[bit]
		lx, ly := logPi(x), logPi(y)
		pxy := math.Min(1, math.Exp(ly-lx)) / float64(n)
		pyx := math.Min(1, math.Exp(lx-ly)) / float64(n)
		lhs := math.Exp(lx) * pxy
		rhs := math.Exp(ly) * pyx
		if math.Abs(lhs-rhs) > 1e-12*math.Max(lhs, rhs) {
			t.Fatalf("detailed balance violated at bit %d", bit)
		}
	}
}

func TestMCMCDefaults(t *testing.T) {
	m := nn.NewRBM(50, 10, rng.New(13))
	mc := NewMCMC(m, MCMCConfig{}, rng.New(14))
	cfg := mc.Config()
	if cfg.Chains != 2 {
		t.Errorf("default chains = %d", cfg.Chains)
	}
	if cfg.BurnIn != 3*50+100 {
		t.Errorf("default burn-in = %d, want %d", cfg.BurnIn, 3*50+100)
	}
	if cfg.Thin != 1 {
		t.Errorf("default thin = %d", cfg.Thin)
	}
}

func TestMCMCStepAccounting(t *testing.T) {
	n := 8
	m := nn.NewRBM(n, 4, rng.New(15))
	mc := NewMCMC(m, MCMCConfig{Chains: 2, BurnIn: 100, Thin: 3}, rng.New(16))
	b := NewBatch(20, n)
	mc.Sample(b)
	// Each chain: 100 burn-in + 10*3 thinned = 130 steps; 2 chains = 260.
	if got := mc.Cost().Steps; got != 260 {
		t.Fatalf("steps = %d, want 260", got)
	}
	if rate := mc.AcceptanceRate(); rate <= 0 || rate > 1 {
		t.Fatalf("acceptance rate = %v", rate)
	}
}

func TestMCMCPersistentKeepsState(t *testing.T) {
	n := 6
	m := nn.NewRBM(n, 4, rng.New(17))
	mc := NewMCMC(m, MCMCConfig{Chains: 1, BurnIn: 1, Thin: 1, Persistent: true}, rng.New(18))
	b := NewBatch(4, n)
	mc.Sample(b)
	st := append([]int(nil), mc.states[0]...)
	// The last recorded sample equals the persistent state.
	for i, v := range b.Row(3) {
		if st[i] != v {
			t.Fatal("persistent state does not match last sample")
		}
	}
}

func TestSampleSitesMismatchPanics(t *testing.T) {
	m := nn.NewMADE(4, 3, rng.New(19))
	a := NewAutoMADE(m, false, 1, rng.New(20))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on sites mismatch")
		}
	}()
	a.Sample(NewBatch(2, 5))
}

func BenchmarkAutoNaive(b *testing.B) {
	m := nn.NewMADE(100, 107, rng.New(1))
	a := NewAutoMADE(m, false, 1, rng.New(2))
	batch := NewBatch(32, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(batch)
	}
}

func BenchmarkAutoIncremental(b *testing.B) {
	m := nn.NewMADE(100, 107, rng.New(1))
	a := NewAutoMADE(m, true, 1, rng.New(2))
	batch := NewBatch(32, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(batch)
	}
}

func BenchmarkMCMCRBM(b *testing.B) {
	m := nn.NewRBM(100, 100, rng.New(1))
	mc := NewMCMC(m, MCMCConfig{}, rng.New(2))
	batch := NewBatch(32, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Sample(batch)
	}
}
