package sampler

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func batchesEqual(a, b *Batch) bool {
	if a.N != b.N || a.Sites != b.Sites {
		return false
	}
	for i, v := range a.Bits {
		if v != b.Bits[i] {
			return false
		}
	}
	return true
}

// resumableRoundTrip drives the core contract: sample once, snapshot,
// sample twice more, restore, and demand the replayed batches are
// bit-identical to the originals — the property recovery leans on.
func resumableRoundTrip(t *testing.T, s Sampler, n int) {
	t.Helper()
	r, ok := s.(Resumable)
	if !ok {
		t.Fatal("sampler does not implement Resumable")
	}
	warm := NewBatch(32, n)
	s.Sample(warm) // move off the initial stream position first
	snap := r.Snapshot()
	ref1, ref2 := NewBatch(32, n), NewBatch(32, n)
	s.Sample(ref1)
	s.Sample(ref2)
	r.Restore(snap)
	got1, got2 := NewBatch(32, n), NewBatch(32, n)
	s.Sample(got1)
	s.Sample(got2)
	if !batchesEqual(ref1, got1) || !batchesEqual(ref2, got2) {
		t.Fatal("restored sampler did not replay bit-identical batches")
	}
}

func TestAutoResumable(t *testing.T) {
	n := 8
	m := nn.NewMADE(n, 10, rng.New(41))
	resumableRoundTrip(t, NewAutoMADE(m, true, 3, rng.New(42)), n)
}

func TestAutoBatchedResumable(t *testing.T) {
	n := 8
	m := nn.NewMADE(n, 10, rng.New(41))
	resumableRoundTrip(t, NewAutoBatched(n, m, 3, rng.New(42)), n)
}

func TestMCMCResumable(t *testing.T) {
	n := 6
	m := nn.NewRBM(n, 4, rng.New(43))
	cfg := MCMCConfig{Chains: 3, BurnIn: 10, Persistent: true}
	resumableRoundTrip(t, NewMCMC(m, cfg, rng.New(44)), n)
}

func TestMCMCNonPersistentResumable(t *testing.T) {
	n := 6
	m := nn.NewRBM(n, 4, rng.New(43))
	cfg := MCMCConfig{Chains: 2, BurnIn: 10}
	resumableRoundTrip(t, NewMCMC(m, cfg, rng.New(45)), n)
}

func TestGibbsResumable(t *testing.T) {
	n := 6
	m := nn.NewRBM(n, 4, rng.New(46))
	cfg := MCMCConfig{Chains: 2, BurnIn: 5, Persistent: true}
	resumableRoundTrip(t, NewGibbs(m, cfg, rng.New(47)), n)
}

// TestSnapshotIsDeepCopy: mutating the sampler after Snapshot must not
// corrupt the captured state.
func TestSnapshotIsDeepCopy(t *testing.T) {
	n := 6
	m := nn.NewRBM(n, 4, rng.New(48))
	s := NewMCMC(m, MCMCConfig{Chains: 2, BurnIn: 5, Persistent: true}, rng.New(49))
	snap := s.Snapshot()
	ref := NewBatch(16, n)
	s.Sample(ref) // mutates rngs and chain states
	s.Restore(snap)
	got := NewBatch(16, n)
	s.Sample(got)
	if !batchesEqual(ref, got) {
		t.Fatal("snapshot shared storage with the live sampler")
	}
}

// TestRestoreShapeMismatchPanics: restoring a state with the wrong stream
// count must panic loudly rather than silently desynchronize.
func TestRestoreShapeMismatchPanics(t *testing.T) {
	n := 6
	m := nn.NewRBM(n, 4, rng.New(50))
	a := NewMCMC(m, MCMCConfig{Chains: 2}, rng.New(51))
	b := NewMCMC(m, MCMCConfig{Chains: 3}, rng.New(52))
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Restore did not panic")
		}
	}()
	a.Restore(b.Snapshot())
}
