package sampler

import (
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// TestAutoBatchedBitIdentical: for the same root seed and worker count the
// batched ancestral mode must fill batches with exactly the bits of the
// scalar incremental mode — across batch sizes, worker counts, site counts
// and consecutive Sample calls (stream continuity).
func TestAutoBatchedBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 7, 19} {
		m := nn.NewMADE(n, 6+n, rng.New(uint64(500+n)))
		for _, workers := range []int{1, 2, 5} {
			for _, bs := range []int{1, 3, 64} {
				seed := uint64(1000*n + 10*workers + bs)
				scalar := NewAutoMADE(m, true, workers, rng.New(seed))
				batched := NewAutoBatched(n, m, workers, rng.New(seed))
				for call := 0; call < 3; call++ {
					bs1 := NewBatch(bs, n)
					bs2 := NewBatch(bs, n)
					scalar.Sample(bs1)
					batched.Sample(bs2)
					for i := range bs1.Bits {
						if bs1.Bits[i] != bs2.Bits[i] {
							t.Fatalf("n=%d w=%d B=%d call %d: bit %d scalar %d batched %d",
								n, workers, bs, call, i, bs1.Bits[i], bs2.Bits[i])
						}
					}
				}
				if scalar.Cost().ForwardPasses != batched.Cost().ForwardPasses {
					t.Fatalf("n=%d w=%d B=%d: pass accounting scalar %d batched %d",
						n, workers, bs,
						scalar.Cost().ForwardPasses, batched.Cost().ForwardPasses)
				}
			}
		}
	}
}

func benchAutoSample(b *testing.B, batched bool, workers int) {
	b.Helper()
	const n, h, bs = 32, 64, 1024
	m := nn.NewMADE(n, h, rng.New(1))
	var smp Sampler
	if batched {
		smp = NewAutoBatched(n, m, workers, rng.New(2))
	} else {
		smp = NewAutoMADE(m, true, workers, rng.New(2))
	}
	batch := NewBatch(bs, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.Sample(batch)
	}
}

// BenchmarkAutoSampleScalar and BenchmarkAutoSampleBatched compare the
// per-sample incremental ancestral sampler against the fused site-major
// batched mode at the paper-scale working point (n=32, h=64, B=1024).
func BenchmarkAutoSampleScalar(b *testing.B)  { benchAutoSample(b, false, 0) }
func BenchmarkAutoSampleBatched(b *testing.B) { benchAutoSample(b, true, 0) }
