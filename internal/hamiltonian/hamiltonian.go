// Package hamiltonian implements the sparse random symmetric matrices the
// paper minimizes: the disordered transverse-field Ising model (TIM, Eq. 11)
// and the diagonal Max-Cut/QUBO Hamiltonian, both presented through the
// "row-s sparse and efficiently row computable" interface of Definition 2.1.
//
// States are bit strings x in {0,1}^n with spin s_i = 1-2x_i in {+1,-1}.
// Every off-diagonal matrix element of this family connects configurations
// differing in exactly one bit, so rows are enumerated as a diagonal value
// plus a list of single-bit flip terms.
package hamiltonian

import (
	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

// FlipTerm is one off-diagonal row entry: H[x, x^Bit] = Amp (state
// independent for this Hamiltonian family).
type FlipTerm struct {
	Bit int
	Amp float64
}

// Hamiltonian is a real-symmetric 2^n x 2^n matrix with efficiently
// computable rows (Definition 2.1). Off-diagonal entries must be
// non-positive so that the ground eigenvector is non-negative
// (Perron-Frobenius), which is what justifies the psi = sqrt(pi) ansatz.
type Hamiltonian interface {
	// N is the number of sites (the matrix dimension is 2^N).
	N() int
	// Diagonal returns H_xx for the configuration x (bits 0/1, length N).
	Diagonal(x []int) float64
	// FlipTerms returns the off-diagonal row structure: H[x, x^b] for each
	// single-bit flip b. The slice is shared and must not be modified.
	FlipTerms() []FlipTerm
}

// Spin returns s = 1-2x for a single bit.
func Spin(x int) float64 { return float64(1 - 2*x) }

// TIM is the disordered transverse-field Ising Hamiltonian of Eq. 11:
//
//	H = -sum_i (alpha_i X_i + beta_i Z_i) - sum_{i<j} beta_ij Z_i Z_j
//
// with alpha_i >= 0 so Perron-Frobenius applies.
type TIM struct {
	n     int
	Alpha []float64 // length n, transverse fields, >= 0
	Beta  []float64 // length n, longitudinal fields
	BetaJ []float64 // row-major n x n, couplings; only i<j entries used
	flips []FlipTerm
}

// NewTIM builds a TIM from explicit parameters. BetaJ may be nil for a
// coupling-free model; otherwise it must be length n*n and only the strict
// upper triangle is read.
func NewTIM(alpha, beta, betaJ []float64) *TIM {
	n := len(alpha)
	if len(beta) != n {
		panic("hamiltonian: alpha/beta length mismatch")
	}
	if betaJ == nil {
		betaJ = make([]float64, n*n)
	}
	if len(betaJ) != n*n {
		panic("hamiltonian: betaJ must be n*n")
	}
	t := &TIM{n: n, Alpha: alpha, Beta: beta, BetaJ: betaJ}
	for i, a := range alpha {
		if a < 0 {
			panic("hamiltonian: alpha must be non-negative")
		}
		if a != 0 {
			t.flips = append(t.flips, FlipTerm{Bit: i, Amp: -a})
		}
	}
	return t
}

// RandomTIM samples the paper's disordered instance: alpha_i ~ U(0,1),
// beta_i ~ U(-1,1), beta_ij ~ U(-1,1), each sampled once and fixed.
func RandomTIM(n int, r *rng.Rand) *TIM {
	alpha := make([]float64, n)
	beta := make([]float64, n)
	betaJ := make([]float64, n*n)
	r.FillUniform(alpha, 0, 1)
	r.FillUniform(beta, -1, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			betaJ[i*n+j] = r.Uniform(-1, 1)
		}
	}
	return NewTIM(alpha, beta, betaJ)
}

// N implements Hamiltonian.
func (t *TIM) N() int { return t.n }

// Diagonal implements Hamiltonian:
// H_xx = -sum_i beta_i s_i - sum_{i<j} beta_ij s_i s_j.
func (t *TIM) Diagonal(x []int) float64 {
	var e float64
	for i := 0; i < t.n; i++ {
		si := Spin(x[i])
		e -= t.Beta[i] * si
		row := t.BetaJ[i*t.n : (i+1)*t.n]
		for j := i + 1; j < t.n; j++ {
			if row[j] != 0 {
				e -= row[j] * si * Spin(x[j])
			}
		}
	}
	return e
}

// FlipTerms implements Hamiltonian: H[x, x^i] = -alpha_i.
func (t *TIM) FlipTerms() []FlipTerm { return t.flips }

// DiagonalDelta returns H_{x'x'} - H_xx where x' is x with bit b flipped.
// Cost O(n) instead of O(n^2); used by fast local-energy paths and tests.
func (t *TIM) DiagonalDelta(x []int, b int) float64 {
	sb := Spin(x[b])
	// Flipping b negates s_b: delta = 2 beta_b s_b + 2 s_b sum_{j!=b} beta_bj s_j.
	d := 2 * t.Beta[b] * sb
	for j := 0; j < t.n; j++ {
		if j == b {
			continue
		}
		var c float64
		if b < j {
			c = t.BetaJ[b*t.n+j]
		} else {
			c = t.BetaJ[j*t.n+b]
		}
		if c != 0 {
			d += 2 * c * sb * Spin(x[j])
		}
	}
	return d
}

// MaxCut is the diagonal Hamiltonian whose ground state encodes the maximum
// cut of a graph: H_xx = (1/4) sum_{i<j} L_ij s_i s_j, so that
// cut(x) = W/2 - 2*H_xx with W the total edge weight. Minimizing the energy
// maximizes the cut.
type MaxCut struct {
	G *graph.Graph
}

// NewMaxCut wraps a graph as a Hamiltonian.
func NewMaxCut(g *graph.Graph) *MaxCut { return &MaxCut{G: g} }

// N implements Hamiltonian.
func (m *MaxCut) N() int { return m.G.N }

// Diagonal implements Hamiltonian.
func (m *MaxCut) Diagonal(x []int) float64 {
	var e float64
	for _, ed := range m.G.Edges {
		e += ed.W * Spin(x[ed.U]) * Spin(x[ed.V]) / 4
	}
	return e
}

// FlipTerms implements Hamiltonian; the Max-Cut matrix is diagonal.
func (m *MaxCut) FlipTerms() []FlipTerm { return nil }

// CutFromEnergy converts an energy H_xx to the corresponding cut value.
func (m *MaxCut) CutFromEnergy(e float64) float64 {
	return m.G.TotalWeight()/2 - 2*e
}

// EnergyFromCut is the inverse of CutFromEnergy.
func (m *MaxCut) EnergyFromCut(cut float64) float64 {
	return (m.G.TotalWeight()/2 - cut) / 2
}

// Cut returns the cut value of configuration x.
func (m *MaxCut) Cut(x []int) float64 { return m.G.CutValue(x) }

// Sparsity returns the row sparsity parameter s: the maximum number of
// non-zero entries in any row (diagonal plus flips).
func Sparsity(h Hamiltonian) int { return 1 + len(h.FlipTerms()) }

// Dense materializes the full 2^n x 2^n matrix (row-major). Intended for
// validation with small n; it panics for n > 14.
func Dense(h Hamiltonian) []float64 {
	n := h.N()
	if n > 14 {
		panic("hamiltonian: Dense limited to n <= 14")
	}
	dim := 1 << uint(n)
	out := make([]float64, dim*dim)
	x := make([]int, n)
	for ix := 0; ix < dim; ix++ {
		IndexToBits(ix, x)
		out[ix*dim+ix] = h.Diagonal(x)
		for _, ft := range h.FlipTerms() {
			iy := ix ^ (1 << uint(ft.Bit))
			out[ix*dim+iy] = ft.Amp
		}
	}
	return out
}

// Apply computes out = H v on the full 2^n-dimensional space without
// materializing the matrix. v and out must have length 2^n and not alias.
func Apply(h Hamiltonian, v, out []float64) {
	n := h.N()
	dim := 1 << uint(n)
	if len(v) != dim || len(out) != dim {
		panic("hamiltonian: Apply dimension mismatch")
	}
	flips := h.FlipTerms()
	x := make([]int, n)
	for ix := 0; ix < dim; ix++ {
		IndexToBits(ix, x)
		acc := h.Diagonal(x) * v[ix]
		for _, ft := range flips {
			acc += ft.Amp * v[ix^(1<<uint(ft.Bit))]
		}
		out[ix] = acc
	}
}

// IndexToBits writes the binary expansion of ix into x (bit i of ix becomes
// x[i], i.e. site 0 is the least significant bit).
func IndexToBits(ix int, x []int) {
	for i := range x {
		x[i] = (ix >> uint(i)) & 1
	}
}

// BitsToIndex is the inverse of IndexToBits.
func BitsToIndex(x []int) int {
	ix := 0
	for i, b := range x {
		ix |= b << uint(i)
	}
	return ix
}
