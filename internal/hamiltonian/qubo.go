package hamiltonian

import "github.com/vqmc-scale/parvqmc/internal/rng"

// QUBO is a quadratic unconstrained binary optimization objective
//
//	minimize  f(x) = sum_i Q_ii x_i + sum_{i<j} Q_ij x_i x_j,  x in {0,1}^n
//
// encoded as a diagonal Hamiltonian (H_xx = f(x)) so VQMC can be used as a
// heuristic solver, generalizing Max-Cut (Section 2.4 of the paper).
type QUBO struct {
	n int
	Q []float64 // row-major n x n; diagonal = linear terms, upper triangle = couplings
}

// NewQUBO wraps a coefficient matrix (only the diagonal and strict upper
// triangle are read).
func NewQUBO(q []float64, n int) *QUBO {
	if len(q) != n*n {
		panic("hamiltonian: QUBO matrix must be n*n")
	}
	return &QUBO{n: n, Q: q}
}

// RandomQUBO samples coefficients uniformly from [-1, 1].
func RandomQUBO(n int, r *rng.Rand) *QUBO {
	q := make([]float64, n*n)
	for i := 0; i < n; i++ {
		q[i*n+i] = r.Uniform(-1, 1)
		for j := i + 1; j < n; j++ {
			q[i*n+j] = r.Uniform(-1, 1)
		}
	}
	return NewQUBO(q, n)
}

// N implements Hamiltonian.
func (q *QUBO) N() int { return q.n }

// Diagonal implements Hamiltonian: the QUBO objective value of x.
func (q *QUBO) Diagonal(x []int) float64 {
	var f float64
	for i := 0; i < q.n; i++ {
		if x[i] == 0 {
			continue
		}
		row := q.Q[i*q.n : (i+1)*q.n]
		f += row[i]
		for j := i + 1; j < q.n; j++ {
			if x[j] == 1 {
				f += row[j]
			}
		}
	}
	return f
}

// FlipTerms implements Hamiltonian; QUBO matrices are diagonal.
func (q *QUBO) FlipTerms() []FlipTerm { return nil }

// Objective is an alias for Diagonal with the optimization reading.
func (q *QUBO) Objective(x []int) float64 { return q.Diagonal(x) }

var _ Hamiltonian = (*QUBO)(nil)
