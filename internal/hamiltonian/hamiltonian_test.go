package hamiltonian

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestBitsRoundTrip(t *testing.T) {
	f := func(ix uint16) bool {
		x := make([]int, 16)
		IndexToBits(int(ix), x)
		return BitsToIndex(x) == int(ix)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpin(t *testing.T) {
	if Spin(0) != 1 || Spin(1) != -1 {
		t.Fatalf("Spin(0)=%v Spin(1)=%v", Spin(0), Spin(1))
	}
}

// brute-force TIM energy from the operator definition, for cross-checking
// the O(n^2) Diagonal implementation.
func bruteDiag(tim *TIM, x []int) float64 {
	n := tim.n
	var e float64
	for i := 0; i < n; i++ {
		e -= tim.Beta[i] * Spin(x[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e -= tim.BetaJ[i*n+j] * Spin(x[i]) * Spin(x[j])
		}
	}
	return e
}

func TestTIMDiagonalMatchesBrute(t *testing.T) {
	r := rng.New(1)
	tim := RandomTIM(9, r)
	x := make([]int, 9)
	for trial := 0; trial < 50; trial++ {
		r.FillBits(x)
		if d, b := tim.Diagonal(x), bruteDiag(tim, x); math.Abs(d-b) > 1e-12 {
			t.Fatalf("Diagonal=%v brute=%v", d, b)
		}
	}
}

func TestTIMDiagonalDelta(t *testing.T) {
	r := rng.New(2)
	tim := RandomTIM(8, r)
	x := make([]int, 8)
	y := make([]int, 8)
	for trial := 0; trial < 30; trial++ {
		r.FillBits(x)
		b := r.Intn(8)
		copy(y, x)
		y[b] = 1 - y[b]
		want := tim.Diagonal(y) - tim.Diagonal(x)
		got := tim.DiagonalDelta(x, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("DiagonalDelta=%v, want %v", got, want)
		}
	}
}

func TestTIMFlipTerms(t *testing.T) {
	alpha := []float64{0.5, 0, 0.25}
	tim := NewTIM(alpha, make([]float64, 3), nil)
	fts := tim.FlipTerms()
	if len(fts) != 2 {
		t.Fatalf("FlipTerms = %v, want 2 entries (zero alpha skipped)", fts)
	}
	if fts[0] != (FlipTerm{Bit: 0, Amp: -0.5}) || fts[1] != (FlipTerm{Bit: 2, Amp: -0.25}) {
		t.Fatalf("FlipTerms = %v", fts)
	}
}

func TestNegativeAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative alpha")
		}
	}()
	NewTIM([]float64{-1}, []float64{0}, nil)
}

func TestDenseSymmetric(t *testing.T) {
	r := rng.New(3)
	tim := RandomTIM(6, r)
	d := Dense(tim)
	dim := 1 << 6
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if d[i*dim+j] != d[j*dim+i] {
				t.Fatalf("dense matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestDenseOffDiagonalNonPositive(t *testing.T) {
	r := rng.New(4)
	tim := RandomTIM(6, r)
	d := Dense(tim)
	dim := 1 << 6
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if i != j && d[i*dim+j] > 0 {
				t.Fatalf("positive off-diagonal at (%d,%d): %v", i, j, d[i*dim+j])
			}
		}
	}
}

func TestDenseMatchesEq13SmallCase(t *testing.T) {
	// n=1: H = -(alpha X + beta Z). In the basis {|0>, |1>} with Z|0>=+|0>:
	// H = [[-beta, -alpha], [-alpha, beta]].
	tim := NewTIM([]float64{0.7}, []float64{0.3}, nil)
	d := Dense(tim)
	want := []float64{-0.3, -0.7, -0.7, 0.3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-15 {
			t.Fatalf("dense = %v, want %v", d, want)
		}
	}
}

func TestDenseTwoSiteCoupling(t *testing.T) {
	// n=2, only beta_01 = 1: H = -Z_0 Z_1, diagonal (-1, 1, 1, -1) in the
	// index order 00, 10, 01, 11 (site 0 = LSB).
	betaJ := []float64{0, 1, 0, 0}
	tim := NewTIM([]float64{0, 0}, []float64{0, 0}, betaJ)
	d := Dense(tim)
	wantDiag := []float64{-1, 1, 1, -1}
	for i := 0; i < 4; i++ {
		if math.Abs(d[i*4+i]-wantDiag[i]) > 1e-15 {
			t.Fatalf("diag[%d] = %v, want %v", i, d[i*4+i], wantDiag[i])
		}
	}
}

func TestApplyMatchesDense(t *testing.T) {
	r := rng.New(5)
	tim := RandomTIM(7, r)
	dim := 1 << 7
	d := Dense(tim)
	v := make([]float64, dim)
	r.FillUniform(v, -1, 1)
	got := make([]float64, dim)
	Apply(tim, v, got)
	for i := 0; i < dim; i++ {
		var want float64
		for j := 0; j < dim; j++ {
			want += d[i*dim+j] * v[j]
		}
		if math.Abs(got[i]-want) > 1e-10 {
			t.Fatalf("Apply[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestMaxCutDiagonalCutIdentity(t *testing.T) {
	r := rng.New(6)
	g := graph.RandomBernoulli(12, r)
	mc := NewMaxCut(g)
	x := make([]int, 12)
	for trial := 0; trial < 40; trial++ {
		r.FillBits(x)
		e := mc.Diagonal(x)
		if math.Abs(mc.CutFromEnergy(e)-g.CutValue(x)) > 1e-10 {
			t.Fatalf("CutFromEnergy(%v) = %v, want %v", e, mc.CutFromEnergy(e), g.CutValue(x))
		}
		if math.Abs(mc.EnergyFromCut(g.CutValue(x))-e) > 1e-10 {
			t.Fatal("EnergyFromCut not inverse of CutFromEnergy")
		}
	}
}

func TestMaxCutGroundStateIsMaxCut(t *testing.T) {
	// Exhaustive check on a small graph: the configuration minimizing the
	// energy is the one maximizing the cut.
	r := rng.New(7)
	g := graph.RandomBernoulli(8, r)
	mc := NewMaxCut(g)
	x := make([]int, 8)
	bestCut, minE := -1.0, math.Inf(1)
	var argCut, argE int
	for ix := 0; ix < 256; ix++ {
		IndexToBits(ix, x)
		if c := g.CutValue(x); c > bestCut {
			bestCut, argCut = c, ix
		}
		if e := mc.Diagonal(x); e < minE {
			minE, argE = e, ix
		}
	}
	IndexToBits(argE, x)
	if g.CutValue(x) != bestCut {
		t.Fatalf("energy minimizer has cut %v, max cut is %v (argCut=%d argE=%d)",
			g.CutValue(x), bestCut, argCut, argE)
	}
}

func TestMaxCutIsDiagonal(t *testing.T) {
	g := graph.RandomBernoulli(5, rng.New(8))
	mc := NewMaxCut(g)
	if len(mc.FlipTerms()) != 0 {
		t.Fatal("MaxCut should have no off-diagonal terms")
	}
	if Sparsity(mc) != 1 {
		t.Fatalf("Sparsity = %d, want 1", Sparsity(mc))
	}
}

func TestSparsityTIM(t *testing.T) {
	tim := RandomTIM(10, rng.New(9))
	// alpha ~ U(0,1) is almost surely nonzero, so sparsity = n+1.
	if s := Sparsity(tim); s != 11 {
		t.Fatalf("Sparsity = %d, want 11", s)
	}
}

func BenchmarkTIMDiagonal(b *testing.B) {
	tim := RandomTIM(500, rng.New(1))
	x := make([]int, 500)
	rng.New(2).FillBits(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tim.Diagonal(x)
	}
}

func BenchmarkTIMDiagonalDelta(b *testing.B) {
	tim := RandomTIM(500, rng.New(1))
	x := make([]int, 500)
	rng.New(2).FillBits(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tim.DiagonalDelta(x, i%500)
	}
}
