package hamiltonian

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/graph"
	"github.com/vqmc-scale/parvqmc/internal/rng"
)

func TestQUBOObjective(t *testing.T) {
	// f(x) = 2 x0 - x1 + 3 x0 x1.
	q := NewQUBO([]float64{2, 3, 0, -1}, 2)
	cases := map[[2]int]float64{
		{0, 0}: 0,
		{1, 0}: 2,
		{0, 1}: -1,
		{1, 1}: 4,
	}
	for x, want := range cases {
		if got := q.Objective([]int{x[0], x[1]}); got != want {
			t.Errorf("f(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestQUBOIsDiagonalHamiltonian(t *testing.T) {
	q := RandomQUBO(6, rng.New(1))
	if len(q.FlipTerms()) != 0 {
		t.Fatal("QUBO should be diagonal")
	}
	if q.N() != 6 {
		t.Fatalf("N = %d", q.N())
	}
	if Sparsity(q) != 1 {
		t.Fatalf("Sparsity = %d", Sparsity(q))
	}
}

func TestQUBODenseAgreesWithObjective(t *testing.T) {
	q := RandomQUBO(6, rng.New(2))
	d := Dense(q)
	dim := 1 << 6
	x := make([]int, 6)
	for ix := 0; ix < dim; ix++ {
		IndexToBits(ix, x)
		if math.Abs(d[ix*dim+ix]-q.Objective(x)) > 1e-12 {
			t.Fatalf("dense diagonal disagrees at %d", ix)
		}
	}
}

func TestQUBOSubsumesMaxCut(t *testing.T) {
	// Max-Cut on G is the QUBO with Q_ii = -deg(i)/... easiest check: the
	// QUBO f(x) = sum_{(i,j) in E} w (x_i + x_j - 2 x_i x_j) * (-1) has
	// ground state equal to the maximum cut. Build it and compare optima.
	r := rng.New(3)
	g := graph.RandomBernoulli(8, r)
	n := g.N
	q := make([]float64, n*n)
	for _, e := range g.Edges {
		// -(x_u + x_v - 2 x_u x_v) counts -1 per cut edge.
		q[e.U*n+e.U] -= e.W
		q[e.V*n+e.V] -= e.W
		if e.U < e.V {
			q[e.U*n+e.V] += 2 * e.W
		} else {
			q[e.V*n+e.U] += 2 * e.W
		}
	}
	qubo := NewQUBO(q, n)
	x := make([]int, n)
	bestQ, bestCut := math.Inf(1), 0.0
	for ix := 0; ix < 1<<uint(n); ix++ {
		IndexToBits(ix, x)
		if f := qubo.Objective(x); f < bestQ {
			bestQ = f
		}
		if c := g.CutValue(x); c > bestCut {
			bestCut = c
		}
	}
	if math.Abs(-bestQ-bestCut) > 1e-9 {
		t.Fatalf("QUBO optimum %v != max cut %v", -bestQ, bestCut)
	}
}

func TestQUBOValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size matrix accepted")
		}
	}()
	NewQUBO(make([]float64, 5), 2)
}

func TestRandomQUBODeterministic(t *testing.T) {
	a := RandomQUBO(5, rng.New(7))
	b := RandomQUBO(5, rng.New(7))
	for i := range a.Q {
		if a.Q[i] != b.Q[i] {
			t.Fatal("same seed gave different QUBO")
		}
	}
}
