// Package observables measures physical quantities of a trained
// wavefunction beyond the energy: magnetizations, spin-spin correlation
// functions, sample entropy, and — for validation at small n — the fidelity
// with the exact ground state. Estimators follow the same Monte Carlo
// pattern as the energy (Eq. 6 of the paper): sample from pi_theta,
// average the diagonal observable.
package observables

import (
	"errors"
	"math"

	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

// Magnetization returns the estimators <s_i> for every site from a sampled
// batch (s_i = 1-2x_i).
func Magnetization(b *sampler.Batch) []float64 {
	m := make([]float64, b.Sites)
	for k := 0; k < b.N; k++ {
		row := b.Row(k)
		for i, x := range row {
			m[i] += hamiltonian.Spin(x)
		}
	}
	for i := range m {
		m[i] /= float64(b.N)
	}
	return m
}

// MeanAbsMagnetization returns <|sum_i s_i|>/n, the standard order
// parameter of Ising-type systems.
func MeanAbsMagnetization(b *sampler.Batch) float64 {
	var total float64
	for k := 0; k < b.N; k++ {
		var s float64
		for _, x := range b.Row(k) {
			s += hamiltonian.Spin(x)
		}
		total += math.Abs(s)
	}
	return total / float64(b.N) / float64(b.Sites)
}

// Correlation returns the connected correlation estimator
// <s_i s_j> - <s_i><s_j> for a single pair.
func Correlation(b *sampler.Batch, i, j int) float64 {
	var sij, si, sj float64
	for k := 0; k < b.N; k++ {
		row := b.Row(k)
		a, c := hamiltonian.Spin(row[i]), hamiltonian.Spin(row[j])
		sij += a * c
		si += a
		sj += c
	}
	n := float64(b.N)
	return sij/n - (si/n)*(sj/n)
}

// CorrelationMatrix returns the full connected correlation matrix
// (row-major Sites x Sites; the diagonal holds variances of s_i).
func CorrelationMatrix(b *sampler.Batch) []float64 {
	n := b.Sites
	mean := Magnetization(b)
	out := make([]float64, n*n)
	for k := 0; k < b.N; k++ {
		row := b.Row(k)
		for i := 0; i < n; i++ {
			si := hamiltonian.Spin(row[i])
			for j := i; j < n; j++ {
				out[i*n+j] += si * hamiltonian.Spin(row[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := out[i*n+j]/float64(b.N) - mean[i]*mean[j]
			out[i*n+j] = v
			out[j*n+i] = v
		}
	}
	return out
}

// SampleEntropy estimates the Shannon entropy (in nats) of the sampled
// distribution from the model's own log-probabilities:
// H = -E_x[log pi(x)]. Requires a normalized model.
func SampleEntropy(m nn.Normalized, b *sampler.Batch) float64 {
	var h float64
	for k := 0; k < b.N; k++ {
		h -= m.LogProb(b.Row(k))
	}
	return h / float64(b.N)
}

// Fidelity computes |<psi_exact | psi_theta>|^2 for a normalized model by
// exact enumeration over the 2^n basis. exactVec must be normalized (as
// returned by exact.GroundState). Limited to n <= 22.
func Fidelity(m nn.Normalized, exactVec []float64) (float64, error) {
	n := m.NumSites()
	if len(exactVec) != 1<<uint(n) {
		return 0, errors.New("observables: exact vector dimension mismatch")
	}
	if n > 22 {
		return 0, errors.New("observables: fidelity limited to n <= 22")
	}
	x := make([]int, n)
	var overlap float64
	for ix := range exactVec {
		hamiltonian.IndexToBits(ix, x)
		// psi_theta(x) = sqrt(pi(x)) >= 0; the exact PF ground vector can
		// carry an arbitrary global sign, so take |entry|.
		overlap += math.Abs(exactVec[ix]) * math.Exp(0.5*m.LogProb(x))
	}
	return overlap * overlap, nil
}

// EnergyHistogram bins local energies into nbins equal-width buckets over
// [min, max]; useful for visualizing the collapse of the local-energy
// distribution as the state approaches an eigenstate (Eq. 4).
func EnergyHistogram(locals []float64, nbins int) (edges []float64, counts []int) {
	if nbins < 1 || len(locals) == 0 {
		return nil, nil
	}
	lo, hi := locals[0], locals[0]
	for _, l := range locals {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(nbins)
	}
	counts = make([]int, nbins)
	for _, l := range locals {
		b := int(float64(nbins) * (l - lo) / (hi - lo))
		if b == nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}
