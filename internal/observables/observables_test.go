package observables

import (
	"math"
	"testing"

	"github.com/vqmc-scale/parvqmc/internal/core"
	"github.com/vqmc-scale/parvqmc/internal/exact"
	"github.com/vqmc-scale/parvqmc/internal/hamiltonian"
	"github.com/vqmc-scale/parvqmc/internal/nn"
	"github.com/vqmc-scale/parvqmc/internal/optimizer"
	"github.com/vqmc-scale/parvqmc/internal/rng"
	"github.com/vqmc-scale/parvqmc/internal/sampler"
)

func fixedBatch(rows [][]int) *sampler.Batch {
	b := sampler.NewBatch(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(b.Row(i), r)
	}
	return b
}

func TestMagnetizationExact(t *testing.T) {
	// Two samples: (0,1) -> spins (1,-1); (0,0) -> (1,1). Mean: (1, 0).
	b := fixedBatch([][]int{{0, 1}, {0, 0}})
	m := Magnetization(b)
	if m[0] != 1 || m[1] != 0 {
		t.Fatalf("magnetization %v, want [1 0]", m)
	}
}

func TestMeanAbsMagnetization(t *testing.T) {
	// All-zero sample: |sum s| = n -> 1. Alternating: 0.
	b := fixedBatch([][]int{{0, 0, 0, 0}, {0, 1, 0, 1}})
	if got := MeanAbsMagnetization(b); got != 0.5 {
		t.Fatalf("mean |m| = %v, want 0.5", got)
	}
}

func TestCorrelationPerfectlyAligned(t *testing.T) {
	// Samples where sites 0 and 1 are always equal: connected correlation
	// is 1 - mean^2 with mean 0 here.
	b := fixedBatch([][]int{{0, 0}, {1, 1}, {0, 0}, {1, 1}})
	if c := Correlation(b, 0, 1); math.Abs(c-1) > 1e-12 {
		t.Fatalf("aligned correlation %v, want 1", c)
	}
	// Anti-aligned sites: -1.
	b2 := fixedBatch([][]int{{0, 1}, {1, 0}, {0, 1}, {1, 0}})
	if c := Correlation(b2, 0, 1); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti-aligned correlation %v, want -1", c)
	}
}

func TestCorrelationMatrixSymmetricAndConsistent(t *testing.T) {
	r := rng.New(1)
	b := sampler.NewBatch(200, 5)
	for i := range b.Bits {
		b.Bits[i] = r.Bit()
	}
	cm := CorrelationMatrix(b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if cm[i*5+j] != cm[j*5+i] {
				t.Fatal("correlation matrix not symmetric")
			}
			if math.Abs(cm[i*5+j]-Correlation(b, i, j)) > 1e-12 {
				t.Fatalf("matrix disagrees with pairwise at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal entries are variances of +-1 variables: in [0, 1].
	for i := 0; i < 5; i++ {
		if cm[i*5+i] < 0 || cm[i*5+i] > 1 {
			t.Fatalf("variance out of range: %v", cm[i*5+i])
		}
	}
}

func TestSampleEntropyUniformModel(t *testing.T) {
	// A fresh MADE with zero parameters is the uniform distribution:
	// H = n ln 2.
	n := 6
	m := nn.NewMADE(n, 4, rng.New(2))
	for i := range m.Params() {
		m.Params()[i] = 0
	}
	r := rng.New(3)
	b := sampler.NewBatch(64, n)
	for i := range b.Bits {
		b.Bits[i] = r.Bit()
	}
	h := SampleEntropy(m, b)
	if math.Abs(h-float64(n)*math.Ln2) > 1e-9 {
		t.Fatalf("uniform entropy %v, want %v", h, float64(n)*math.Ln2)
	}
}

func TestFidelityIncreasesWithTraining(t *testing.T) {
	r := rng.New(4)
	n := 8
	tim := hamiltonian.RandomTIM(n, r)
	ex, err := exact.GroundState(tim, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := nn.NewMADE(n, 14, r.Split())
	before, err := Fidelity(m, ex.Vector)
	if err != nil {
		t.Fatal(err)
	}
	smp := sampler.NewAutoMADE(m, true, 2, r.Split())
	tr := core.New(tim, m, smp, optimizer.NewAdam(0.05), core.Config{BatchSize: 256, Workers: 2})
	tr.Train(250, nil)
	after, err := Fidelity(m, ex.Vector)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("fidelity did not increase: %v -> %v", before, after)
	}
	if after < 0.9 {
		t.Fatalf("trained fidelity %v, want > 0.9", after)
	}
	if after > 1+1e-9 {
		t.Fatalf("fidelity %v exceeds 1", after)
	}
}

func TestFidelityValidation(t *testing.T) {
	m := nn.NewMADE(4, 3, rng.New(6))
	if _, err := Fidelity(m, make([]float64, 7)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEnergyHistogram(t *testing.T) {
	locals := []float64{0, 0.1, 0.9, 1.0, 0.5}
	edges, counts := EnergyHistogram(locals, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("shape: %d edges %d counts", len(edges), len(counts))
	}
	if counts[0]+counts[1] != len(locals) {
		t.Fatal("histogram lost samples")
	}
	// Bins are half-open [lo, mid), [mid, hi]: 0.5 lands in the upper bin.
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts %v, want [2 3]", counts)
	}
	// Degenerate inputs.
	if e, c := EnergyHistogram(nil, 3); e != nil || c != nil {
		t.Fatal("empty input should return nil")
	}
	if _, c := EnergyHistogram([]float64{5, 5, 5}, 2); c[0] != 3 {
		t.Fatal("constant input mishandled")
	}
}
