package parvqmc

import (
	"math"
	"os"
	"testing"
)

func TestTrainTIMReachesGroundState(t *testing.T) {
	p := TIM(8, 3)
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(p, Options{
		Hidden: 16, BatchSize: 256, Iterations: 300, EvalBatch: 512,
		Optimizer: "adam", LearningRate: 0.05, Workers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	gap := (res.Energy - exactE) / math.Abs(exactE)
	if gap > 0.05 {
		t.Fatalf("energy %v vs exact %v (gap %.3f)", res.Energy, exactE, gap)
	}
	if len(res.Curve) != 300 {
		t.Fatalf("curve length %d", len(res.Curve))
	}
	if res.ForwardPasses <= 0 {
		t.Fatal("forward passes not counted")
	}
}

func TestTrainMaxCutProducesCut(t *testing.T) {
	p := MaxCut(10, 4)
	res, err := Train(p, Options{
		BatchSize: 256, Iterations: 200, EvalBatch: 512,
		LearningRate: 0.05, Workers: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut <= p.TotalEdgeWeight()/2 {
		t.Fatalf("trained cut %v not better than random baseline %v",
			res.Cut, p.TotalEdgeWeight()/2)
	}
}

func TestRBMRoute(t *testing.T) {
	p := TIM(6, 7)
	res, err := Train(p, Options{
		Model: "rbm", BatchSize: 128, Iterations: 100, EvalBatch: 256,
		LearningRate: 0.02, MCMCBurnIn: 150, Workers: 2, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve[len(res.Curve)-1].Energy >= res.Curve[0].Energy {
		t.Fatal("RBM training did not reduce energy")
	}
}

func TestOptionValidation(t *testing.T) {
	p := TIM(5, 1)
	if _, err := Train(p, Options{Model: "vae"}); err == nil {
		t.Fatal("unknown model should error")
	}
	if _, err := Train(p, Options{Model: "rbm", Sampler: "auto"}); err == nil {
		t.Fatal("rbm+auto should error (unnormalized)")
	}
	if _, err := Train(p, Options{Optimizer: "lion"}); err == nil {
		t.Fatal("unknown optimizer should error")
	}
	if _, err := Train(p, Options{Sampler: "hamiltonian-mc"}); err == nil {
		t.Fatal("unknown sampler should error")
	}
}

func TestSRRoute(t *testing.T) {
	p := TIM(6, 9)
	res, err := Train(p, Options{
		Optimizer: "sgd", StochasticReconfig: true,
		BatchSize: 128, Iterations: 80, EvalBatch: 256, Workers: 2, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy < exactE-0.5 {
		t.Fatalf("SR energy %v below exact %v: estimator broken", res.Energy, exactE)
	}
}

func TestTrainDistributed(t *testing.T) {
	p := TIM(7, 11)
	res, err := TrainDistributed(p, Options{
		Hidden: 12, Iterations: 120, EvalBatch: 256,
		LearningRate: 0.05, Seed: 12,
	}, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	gap := (res.Energy - exactE) / math.Abs(exactE)
	if gap > 0.15 {
		t.Fatalf("distributed energy %v vs exact %v", res.Energy, exactE)
	}
	// Validation errors.
	if _, err := TrainDistributed(p, Options{Model: "rbm"}, 2, 4); err == nil {
		t.Fatal("rbm distributed should error")
	}
	if _, err := TrainDistributed(p, Options{}, 0, 4); err == nil {
		t.Fatal("zero devices should error")
	}
}

// TestTrainDistributedElastic runs the supervised (elastic) path through the
// facade. No fault fires at this layer — the test pins the wiring: the
// elastic run is bit-identical to the plain distributed run with the same
// options, the Batch column reports the global effective batch, the Elastic
// summary is populated, and the final checkpoint artifact lands in
// CheckpointDir and reloads.
func TestTrainDistributedElastic(t *testing.T) {
	p := TIM(7, 11)
	o := Options{Hidden: 12, Iterations: 20, EvalBatch: 128, LearningRate: 0.05, Seed: 12}
	plain, err := TrainDistributed(p, o, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	o.Elastic = true
	o.MinReplicas = 2
	o.CheckpointDir = dir
	res, err := TrainDistributed(p, o, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != plain.Energy || res.Std != plain.Std {
		t.Fatalf("elastic run diverged: energy %v vs %v", res.Energy, plain.Energy)
	}
	if len(res.Curve) != len(plain.Curve) {
		t.Fatalf("curve length %d vs %d", len(res.Curve), len(plain.Curve))
	}
	for i := range res.Curve {
		if res.Curve[i] != plain.Curve[i] {
			t.Fatalf("iteration %d diverged: %+v vs %+v", i+1, res.Curve[i], plain.Curve[i])
		}
		if res.Curve[i].Batch != 3*16 {
			t.Fatalf("iteration %d batch %d, want %d", i+1, res.Curve[i].Batch, 3*16)
		}
	}
	if res.Elastic == nil {
		t.Fatal("elastic run returned no ElasticStats")
	}
	if res.Elastic.FinalReplicas != 3 || res.Elastic.Failures != 0 {
		t.Fatalf("ElasticStats = %+v, want a clean 3-replica run", res.Elastic)
	}
	if res.Elastic.FinalCheckpoint == "" {
		t.Fatal("elastic run left no final checkpoint")
	}
	if _, err := os.Stat(res.Elastic.FinalCheckpoint); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	// MinReplicas above the width is rejected up front.
	bad := o
	bad.MinReplicas = 4
	if _, err := TrainDistributed(p, bad, 3, 16); err == nil {
		t.Fatal("MinReplicas above the device count should error")
	}
}

// TestTrainDistributedSR drives the distributed stochastic-reconfiguration
// route through the facade: 4 replicas x 4 workers, SGD+SR, 50 iterations
// on TIM n=7 must land within 15% of the exact ground energy.
func TestTrainDistributedSR(t *testing.T) {
	p := TIM(7, 11)
	res, err := TrainDistributed(p, Options{
		Hidden: 14, Iterations: 50, EvalBatch: 1024,
		Optimizer: "sgd", StochasticReconfig: true,
		Workers: 4, Seed: 13,
	}, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	gap := (res.Energy - exactE) / math.Abs(exactE)
	if gap > 0.15 {
		t.Fatalf("distributed SR energy %v vs exact %v (gap %.3f)", res.Energy, exactE, gap)
	}
	if len(res.Curve) != 50 {
		t.Fatalf("curve length %d", len(res.Curve))
	}
}

func TestSolveMaxCutClassical(t *testing.T) {
	p := MaxCut(12, 13)
	var cuts []float64
	for _, m := range []string{"random", "gw", "bm"} {
		res, err := SolveMaxCutClassical(p, m, 14)
		if err != nil {
			t.Fatal(err)
		}
		if c, ok := p.CutOfAssignment(res.Assignment); !ok || c != res.Cut {
			t.Fatalf("%s: assignment/cut mismatch", m)
		}
		cuts = append(cuts, res.Cut)
	}
	// Expected ordering: random <= gw <= bm on average; enforce loosely.
	if cuts[2] < cuts[0] {
		t.Fatalf("BM (%v) worse than random (%v)", cuts[2], cuts[0])
	}
	// TIM has no graph.
	if _, err := SolveMaxCutClassical(TIM(5, 1), "gw", 1); err == nil {
		t.Fatal("classical solver on TIM should error")
	}
	if _, err := SolveMaxCutClassical(p, "quantum", 1); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestProblemAccessors(t *testing.T) {
	p := MaxCut(9, 15)
	if p.Kind() != "maxcut" || p.Sites() != 9 {
		t.Fatalf("accessors: %s %d", p.Kind(), p.Sites())
	}
	if _, ok := p.CutOf(0); !ok {
		t.Fatal("CutOf should work for maxcut")
	}
	tim := TIM(5, 16)
	if _, ok := tim.CutOf(0); ok {
		t.Fatal("CutOf should fail for tim")
	}
	if tim.TotalEdgeWeight() != 0 {
		t.Fatal("TIM has no edges")
	}
}

func TestDefaultHidden(t *testing.T) {
	if DefaultHidden("rbm", 100) != 100 {
		t.Fatal("RBM default hidden should be n")
	}
	if h := DefaultHidden("made", 100); h < 100 || h > 112 {
		t.Fatalf("MADE default hidden = %d, want ~106", h)
	}
}

func TestExactGroundEnergyMaxCut(t *testing.T) {
	p := MaxCut(10, 17)
	e, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	cut, _ := p.CutOf(e)
	if cut <= p.TotalEdgeWeight()/2 {
		t.Fatalf("exact max cut %v should beat half weight %v", cut, p.TotalEdgeWeight()/2)
	}
}

func TestMADEWithMCMCSamplerAblation(t *testing.T) {
	// The facade permits MADE+MCMC (used to isolate the sampler's effect).
	p := TIM(6, 19)
	res, err := Train(p, Options{
		Model: "made", Sampler: "mcmc", BatchSize: 128, Iterations: 50,
		EvalBatch: 128, Workers: 2, Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Energy) {
		t.Fatal("NaN energy")
	}
}

func TestNaiveAutoSamplerRoute(t *testing.T) {
	p := TIM(6, 21)
	res, err := Train(p, Options{
		Sampler: "auto-naive", BatchSize: 64, Iterations: 30, EvalBatch: 64,
		Workers: 1, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 charges n passes per sample.
	wantMin := int64(6 * 64 * 30)
	if res.ForwardPasses < wantMin {
		t.Fatalf("forward passes %d < %d", res.ForwardPasses, wantMin)
	}
}

func TestQUBOFacade(t *testing.T) {
	p := RandomQUBO(10, 23)
	if p.Kind() != "qubo" || p.Sites() != 10 {
		t.Fatalf("accessors: %s %d", p.Kind(), p.Sites())
	}
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	// Plain Adam gets trapped in a local optimum of this rugged landscape;
	// stochastic reconfiguration escapes it — the paper's observation that
	// natural gradient "proved essential for converging to a good local
	// optimum" (Section 5.3).
	res, err := Train(p, Options{
		Optimizer: "sgd", StochasticReconfig: true,
		BatchSize: 256, Iterations: 200, EvalBatch: 512,
		LearningRate: 0.05, Workers: 2, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The best evaluation sample should reach the exhaustive optimum on a
	// 10-variable QUBO, and no sample may beat it.
	if res.BestEnergy > exactE+0.05*math.Abs(exactE) {
		t.Fatalf("QUBO best energy %v far from optimum %v", res.BestEnergy, exactE)
	}
	if res.BestEnergy < exactE-1e-9 {
		t.Fatalf("QUBO best energy %v below exhaustive optimum %v", res.BestEnergy, exactE)
	}
	if got := (&Problem{kind: "qubo", ham: p.ham}).ham.Diagonal(res.BestConfig); math.Abs(got-res.BestEnergy) > 1e-9 {
		t.Fatalf("BestConfig objective %v != BestEnergy %v", got, res.BestEnergy)
	}
}

func TestQUBOExplicitMatrix(t *testing.T) {
	// One-variable sanity: f(x) = -2x has optimum -2 at x=1.
	p := QUBO([]float64{-2}, 1)
	e, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if e != -2 {
		t.Fatalf("optimum %v, want -2", e)
	}
}

func TestNADERoute(t *testing.T) {
	p := TIM(8, 25)
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(p, Options{
		Model: "nade", Hidden: 16, BatchSize: 256, Iterations: 300,
		EvalBatch: 512, LearningRate: 0.05, Workers: 2, Seed: 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	gap := (res.Energy - exactE) / math.Abs(exactE)
	if gap > 0.08 {
		t.Fatalf("NADE energy %v vs exact %v (gap %.3f)", res.Energy, exactE, gap)
	}
}

func TestRNNRoute(t *testing.T) {
	p := TIM(8, 27)
	exactE, err := p.ExactGroundEnergy()
	if err != nil {
		t.Fatal(err)
	}
	// The recurrent parametrization needs a gentler learning rate than the
	// feed-forward models.
	res, err := Train(p, Options{
		Model: "rnn", Hidden: 16, BatchSize: 256, Iterations: 300,
		EvalBatch: 512, LearningRate: 0.02, Workers: 2, Seed: 28,
	})
	if err != nil {
		t.Fatal(err)
	}
	gap := (res.Energy - exactE) / math.Abs(exactE)
	if gap > 0.05 {
		t.Fatalf("RNN energy %v vs exact %v (gap %.3f)", res.Energy, exactE, gap)
	}
}

func TestGibbsSamplerRoute(t *testing.T) {
	p := TIM(6, 29)
	res, err := Train(p, Options{
		Model: "rbm", Sampler: "gibbs", BatchSize: 128, Iterations: 150,
		EvalBatch: 256, LearningRate: 0.02, Workers: 2, Seed: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve[len(res.Curve)-1].Energy >= res.Curve[0].Energy {
		t.Fatal("gibbs-sampled RBM training did not reduce energy")
	}
	// gibbs is RBM-only.
	if _, err := Train(p, Options{Model: "made", Sampler: "gibbs"}); err == nil {
		t.Fatal("made+gibbs should error")
	}
}

func TestSaveModel(t *testing.T) {
	p := TIM(5, 31)
	res, err := Train(p, Options{
		BatchSize: 64, Iterations: 20, EvalBatch: 64, Workers: 1, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.pvq"
	if err := res.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	if err := (&Result{}).SaveModel(path); err == nil {
		t.Fatal("empty result should refuse to save")
	}
}
